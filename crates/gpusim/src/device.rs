//! A simulated device with a virtual clock.

use crate::cost::{CostModel, WorkBatch};
use crate::spec::DeviceSpec;
use serde::{Deserialize, Serialize};
// DETERMINISM: raw std mutex — gpusim state is host-side simulation bookkeeping outside the modeled sync surface (no facade in this crate).
use std::sync::Mutex;

/// Cumulative execution statistics for one device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceStats {
    pub batches: u64,
    pub items: u64,
    pub units: u64,
    /// Total modeled busy time, seconds.
    pub busy_s: f64,
}

/// A compute device with a virtual clock.
///
/// Executing a [`WorkBatch`] advances the device's clock by the modeled
/// time. The clock is thread-safe: the scheduler drives each device from
/// its own OS thread (the paper's one-OpenMP-thread-per-GPU structure).
#[derive(Debug)]
pub struct SimDevice {
    id: usize,
    spec: DeviceSpec,
    model: CostModel,
    state: Mutex<DeviceState>,
}

#[derive(Debug)]
struct DeviceState {
    clock_s: f64,
    stats: DeviceStats,
    /// Multiplier on every modeled execution time (1.0 = nominal). Fault
    /// injection uses this to degrade a device mid-run: thermal throttling,
    /// a failing board, ECC retirement storms.
    slowdown: f64,
}

impl Default for DeviceState {
    fn default() -> DeviceState {
        DeviceState { clock_s: 0.0, stats: DeviceStats::default(), slowdown: 1.0 }
    }
}

impl SimDevice {
    pub fn new(id: usize, spec: DeviceSpec) -> SimDevice {
        SimDevice::with_model(id, spec, CostModel::default())
    }

    pub fn with_model(id: usize, spec: DeviceSpec, model: CostModel) -> SimDevice {
        SimDevice { id, spec, model, state: Mutex::new(DeviceState::default()) }
    }

    pub fn id(&self) -> usize {
        self.id
    }

    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Execute a batch: advances the virtual clock and returns the modeled
    /// elapsed time in seconds.
    pub fn execute(&self, batch: &WorkBatch) -> f64 {
        let base = self.model.execution_time(&self.spec, batch);
        // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
        let mut st = self.state.lock().expect("device state mutex poisoned");
        let dt = base * st.slowdown;
        st.clock_s += dt;
        st.stats.batches += 1;
        st.stats.items += batch.items;
        st.stats.units += batch.total_units();
        st.stats.busy_s += dt;
        dt
    }

    /// Modeled time for a batch *without* executing it (used by planners).
    /// Always equals what [`SimDevice::execute`] would charge right now,
    /// including any active [`SimDevice::set_slowdown`] factor.
    pub fn estimate(&self, batch: &WorkBatch) -> f64 {
        // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
        let slowdown = self.state.lock().expect("device state mutex poisoned").slowdown;
        self.model.execution_time(&self.spec, batch) * slowdown
    }

    /// Degrade (or restore) the device: every subsequent modeled execution
    /// time is multiplied by `factor`. `1.0` is nominal; a straggler GPU
    /// that thermally throttles to quarter speed uses `4.0`. Past work is
    /// not re-priced. [`SimDevice::reset`] restores the nominal factor.
    ///
    /// # Panics
    /// Panics if `factor` is not finite and strictly positive.
    pub fn set_slowdown(&self, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "bad slowdown factor {factor}");
        // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
        self.state.lock().expect("device state mutex poisoned").slowdown = factor;
    }

    /// The active slowdown multiplier (1.0 = nominal).
    pub fn slowdown(&self) -> f64 {
        // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
        self.state.lock().expect("device state mutex poisoned").slowdown
    }

    /// The `(kernel, PCIe transfer)` split of a batch's modeled time — see
    /// [`CostModel::time_breakdown`]. Trace instrumentation records this
    /// next to every `DeviceBusy` event. Both components scale with the
    /// active slowdown factor, consistent with [`SimDevice::execute`].
    pub fn time_breakdown(&self, batch: &WorkBatch) -> (f64, f64) {
        // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
        let slowdown = self.state.lock().expect("device state mutex poisoned").slowdown;
        let (kernel, transfer) = self.model.time_breakdown(&self.spec, batch);
        (kernel * slowdown, transfer * slowdown)
    }

    /// The device's catalog name (e.g. `"Tesla K40c"`).
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Current virtual time, seconds.
    pub fn clock(&self) -> f64 {
        // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
        self.state.lock().expect("device state mutex poisoned").clock_s
    }

    /// Advance the clock to at least `t` (idle wait / barrier sync).
    pub fn sync_to(&self, t: f64) {
        // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
        let mut st = self.state.lock().expect("device state mutex poisoned");
        if t > st.clock_s {
            st.clock_s = t;
        }
    }

    /// Add idle time (e.g. host-side serial section attributed to this
    /// device's controlling thread).
    pub fn advance(&self, dt: f64) {
        assert!(dt >= 0.0, "cannot advance clock backwards");
        // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
        self.state.lock().expect("device state mutex poisoned").clock_s += dt;
    }

    /// Reset clock and statistics (between experiments).
    pub fn reset(&self) {
        // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
        *self.state.lock().expect("device state mutex poisoned") = DeviceState::default();
    }

    pub fn stats(&self) -> DeviceStats {
        // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
        self.state.lock().expect("device state mutex poisoned").stats
    }

    /// Fraction of the device's virtual lifetime spent busy.
    pub fn utilization(&self) -> f64 {
        // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
        let st = self.state.lock().expect("device state mutex poisoned");
        if st.clock_s <= 0.0 {
            0.0
        } else {
            st.stats.busy_s / st.clock_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn dev() -> SimDevice {
        SimDevice::new(0, catalog::geforce_gtx_580())
    }

    #[test]
    fn execute_advances_clock() {
        let d = dev();
        assert_eq!(d.clock(), 0.0);
        let dt = d.execute(&WorkBatch::conformations(1000, 1000));
        assert!(dt > 0.0);
        assert_eq!(d.clock(), dt);
        let dt2 = d.execute(&WorkBatch::conformations(1000, 1000));
        assert!((d.clock() - (dt + dt2)).abs() < 1e-15);
    }

    #[test]
    fn estimate_matches_execute_without_side_effects() {
        let d = dev();
        let b = WorkBatch::conformations(512, 2048);
        let est = d.estimate(&b);
        assert_eq!(d.clock(), 0.0, "estimate must not advance the clock");
        assert_eq!(d.execute(&b), est);
    }

    #[test]
    fn stats_accumulate() {
        let d = dev();
        d.execute(&WorkBatch::conformations(10, 100));
        d.execute(&WorkBatch::conformations(20, 100));
        let s = d.stats();
        assert_eq!(s.batches, 2);
        assert_eq!(s.items, 30);
        assert_eq!(s.units, 3000);
        assert!(s.busy_s > 0.0);
    }

    #[test]
    fn sync_to_only_moves_forward() {
        let d = dev();
        d.sync_to(5.0);
        assert_eq!(d.clock(), 5.0);
        d.sync_to(3.0);
        assert_eq!(d.clock(), 5.0);
    }

    #[test]
    fn advance_and_utilization() {
        let d = dev();
        d.execute(&WorkBatch::conformations(100_000, 1000));
        let busy = d.clock();
        d.advance(busy); // equal idle time
        assert!((d.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn negative_advance_panics() {
        dev().advance(-1.0);
    }

    #[test]
    fn reset_clears_everything() {
        let d = dev();
        d.execute(&WorkBatch::conformations(10, 10));
        d.reset();
        assert_eq!(d.clock(), 0.0);
        assert_eq!(d.stats(), DeviceStats::default());
    }

    #[test]
    fn slowdown_scales_future_work_only() {
        let d = dev();
        let b = WorkBatch::conformations(500, 1000);
        let nominal = d.execute(&b);
        let (k0, t0) = d.time_breakdown(&b);
        d.set_slowdown(4.0);
        assert_eq!(d.slowdown(), 4.0);
        assert!((d.estimate(&b) - 4.0 * nominal).abs() < 1e-15);
        let degraded = d.execute(&b);
        assert!((degraded - 4.0 * nominal).abs() < 1e-15);
        // Past work is not re-priced: clock = nominal + 4*nominal.
        assert!((d.clock() - 5.0 * nominal).abs() < 1e-15);
        let (k, t) = d.time_breakdown(&b);
        assert!((k - 4.0 * k0).abs() < 1e-15 && (t - 4.0 * t0).abs() < 1e-15);
    }

    #[test]
    fn estimate_matches_execute_under_slowdown() {
        let d = dev();
        d.set_slowdown(2.5);
        let b = WorkBatch::conformations(512, 2048);
        let est = d.estimate(&b);
        assert_eq!(d.execute(&b), est);
    }

    #[test]
    fn reset_restores_nominal_slowdown() {
        let d = dev();
        d.set_slowdown(8.0);
        d.reset();
        assert_eq!(d.slowdown(), 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_slowdown_rejected() {
        dev().set_slowdown(0.0);
    }

    #[test]
    fn concurrent_execution_is_safe() {
        let d = std::sync::Arc::new(dev());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let d = d.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    d.execute(&WorkBatch::conformations(10, 10));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(d.stats().batches, 800);
    }
}
