//! The concrete devices of the paper's experimental systems (Tables 2–3).

use crate::arch::GpuGeneration;
use crate::spec::{DeviceKind, DeviceSpec};

/// Jupiter's CPU: two hexa-core Intel Xeon E5-2620 @ 2 GHz (12 cores total).
pub fn xeon_e5_2620_dual() -> DeviceSpec {
    DeviceSpec {
        name: "2x Intel Xeon E5-2620".into(),
        kind: DeviceKind::Cpu { cores: 12, simd_factor: 2.0 },
        clock_mhz: 2000.0,
        memory_mb: 32143,
        memory_bandwidth_gbs: 42.66,
        tdp_watts: 190.0,
        year: 2012,
    }
}

/// Hertz's CPU: Intel Xeon E3-1220 (4 cores @ 3.1 GHz).
pub fn xeon_e3_1220() -> DeviceSpec {
    DeviceSpec {
        name: "Intel Xeon E3-1220".into(),
        kind: DeviceKind::Cpu { cores: 4, simd_factor: 2.0 },
        clock_mhz: 3100.0,
        memory_mb: 7964,
        memory_bandwidth_gbs: 21.0,
        tdp_watts: 80.0,
        year: 2011,
    }
}

/// NVIDIA Tesla C2075 (Fermi): 14 SMs × 32 cores = 448 cores @ 1147 MHz.
pub fn tesla_c2075() -> DeviceSpec {
    DeviceSpec {
        name: "Tesla C2075".into(),
        kind: DeviceKind::Gpu {
            generation: GpuGeneration::Fermi,
            multiprocessors: 14,
            cores_per_multiprocessor: 32,
            max_threads_per_sm: 1536,
            max_threads_per_block: 1024,
            shared_memory_kb: 48,
            registers_per_sm: 32768,
            ccc: (2, 0),
        },
        clock_mhz: 1147.0,
        memory_mb: 5375,
        memory_bandwidth_gbs: 144.0,
        tdp_watts: 225.0,
        year: 2012,
    }
}

/// NVIDIA GeForce GTX 590 (Fermi, per-GPU view used by the paper):
/// 16 SMs × 32 cores = 512 cores @ 1215 MHz.
pub fn geforce_gtx_590() -> DeviceSpec {
    DeviceSpec {
        name: "GeForce GTX 590".into(),
        kind: DeviceKind::Gpu {
            generation: GpuGeneration::Fermi,
            multiprocessors: 16,
            cores_per_multiprocessor: 32,
            max_threads_per_sm: 1536,
            max_threads_per_block: 1024,
            shared_memory_kb: 48,
            registers_per_sm: 32768,
            ccc: (2, 0),
        },
        clock_mhz: 1215.0,
        memory_mb: 1536,
        memory_bandwidth_gbs: 163.85,
        tdp_watts: 182.0,
        year: 2011,
    }
}

/// NVIDIA GeForce GTX 580 (Fermi): 16 SMs × 32 cores = 512 @ 1544 MHz.
pub fn geforce_gtx_580() -> DeviceSpec {
    DeviceSpec {
        name: "GeForce GTX 580".into(),
        kind: DeviceKind::Gpu {
            generation: GpuGeneration::Fermi,
            multiprocessors: 16,
            cores_per_multiprocessor: 32,
            max_threads_per_sm: 1536,
            max_threads_per_block: 1024,
            shared_memory_kb: 48,
            registers_per_sm: 32768,
            ccc: (2, 0),
        },
        clock_mhz: 1544.0,
        memory_mb: 1536,
        memory_bandwidth_gbs: 192.4,
        tdp_watts: 244.0,
        year: 2011,
    }
}

/// NVIDIA Tesla K40c (Kepler): 15 SMXs × 192 cores = 2880 cores. The paper
/// quotes the 0.88 GHz boost clock (§4.1); Table 3's 745 MHz is the base.
/// We use the boost clock since the sustained scoring kernel keeps the
/// card boosted. CCC is 3.5 per the text (§5).
pub fn tesla_k40c() -> DeviceSpec {
    DeviceSpec {
        name: "Tesla K40c".into(),
        kind: DeviceKind::Gpu {
            generation: GpuGeneration::Kepler,
            multiprocessors: 15,
            cores_per_multiprocessor: 192,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            shared_memory_kb: 48,
            registers_per_sm: 65536,
            ccc: (3, 5),
        },
        clock_mhz: 875.0,
        memory_mb: 11520,
        memory_bandwidth_gbs: 288.38,
        tdp_watts: 235.0,
        year: 2014,
    }
}

fn kepler(
    name: &str,
    sms: u32,
    clock_mhz: f64,
    mem_mb: u64,
    bw: f64,
    tdp: f64,
    year: u32,
) -> DeviceSpec {
    DeviceSpec {
        name: name.into(),
        kind: DeviceKind::Gpu {
            generation: GpuGeneration::Kepler,
            multiprocessors: sms,
            cores_per_multiprocessor: 192,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            shared_memory_kb: 48,
            registers_per_sm: 65536,
            ccc: (3, 5),
        },
        clock_mhz,
        memory_mb: mem_mb,
        memory_bandwidth_gbs: bw,
        tdp_watts: tdp,
        year,
    }
}

/// NVIDIA Tesla K20 (Kepler, 13 SMXs — §3 names the K20/K20X/K40 ladder as
/// the canonical same-family heterogeneity example).
pub fn tesla_k20() -> DeviceSpec {
    kepler("Tesla K20", 13, 706.0, 5120, 208.0, 225.0, 2012)
}

/// NVIDIA Tesla K20X (Kepler, 14 SMXs).
pub fn tesla_k20x() -> DeviceSpec {
    kepler("Tesla K20X", 14, 732.0, 6144, 250.0, 235.0, 2012)
}

/// One chip of an NVIDIA Tesla K80 (Kepler, 2×13 SMXs per board; the paper
/// notes "the K80 model even reaches 30 multiprocessors split into two
/// chips" — model each chip as a device, as CUDA exposes them).
pub fn tesla_k80_half() -> DeviceSpec {
    kepler("Tesla K80 (half)", 13, 875.0, 12288 / 2 * 2, 240.0, 150.0, 2014)
}

/// NVIDIA GeForce GTX Titan X (Maxwell, 24 SMMs × 128 cores) — the
/// generation Table 1 flags as upcoming.
pub fn geforce_titan_x() -> DeviceSpec {
    DeviceSpec {
        name: "GeForce GTX Titan X".into(),
        kind: DeviceKind::Gpu {
            generation: GpuGeneration::Maxwell,
            multiprocessors: 24,
            cores_per_multiprocessor: 128,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            shared_memory_kb: 96,
            registers_per_sm: 65536,
            ccc: (5, 2),
        },
        clock_mhz: 1075.0,
        memory_mb: 12288,
        memory_bandwidth_gbs: 336.6,
        tdp_watts: 250.0,
        year: 2015,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_jupiter_core_counts() {
        assert_eq!(tesla_c2075().lanes(), 448);
        assert_eq!(geforce_gtx_590().lanes(), 512);
        assert_eq!(xeon_e5_2620_dual().lanes(), 12);
    }

    #[test]
    fn table3_hertz_core_counts() {
        assert_eq!(tesla_k40c().lanes(), 2880);
        assert_eq!(geforce_gtx_580().lanes(), 512);
        assert_eq!(xeon_e3_1220().lanes(), 4);
    }

    #[test]
    fn cccs_match_paper() {
        assert_eq!(tesla_c2075().ccc_string(), "2.0");
        assert_eq!(geforce_gtx_590().ccc_string(), "2.0");
        assert_eq!(geforce_gtx_580().ccc_string(), "2.0");
        assert_eq!(tesla_k40c().ccc_string(), "3.5");
    }

    #[test]
    fn k40c_is_fastest_device() {
        let devs = [tesla_c2075(), geforce_gtx_590(), geforce_gtx_580(), tesla_k40c()];
        let k40 = tesla_k40c().sustained_lane_hz();
        for d in &devs {
            assert!(d.sustained_lane_hz() <= k40, "{} beats K40c", d.name);
        }
    }

    #[test]
    fn gtx590_and_c2075_are_close() {
        // §5: "their computational capabilities are pretty much the same" —
        // the premise for the small heterogeneous gains on Jupiter.
        let a = geforce_gtx_590().sustained_lane_hz();
        let b = tesla_c2075().sustained_lane_hz();
        let ratio = a.max(b) / a.min(b);
        assert!(ratio < 1.35, "Jupiter Fermi cards should be close, ratio {ratio}");
    }

    #[test]
    fn hertz_gpus_are_far_apart() {
        // The premise for the large heterogeneous gains on Hertz.
        let k = tesla_k40c().sustained_lane_hz();
        let g = geforce_gtx_580().sustained_lane_hz();
        assert!(k / g > 1.8, "Hertz GPUs should differ strongly, ratio {}", k / g);
    }

    #[test]
    fn memory_sizes_match_tables() {
        assert_eq!(tesla_c2075().memory_mb, 5375);
        assert_eq!(geforce_gtx_590().memory_mb, 1536);
        assert_eq!(tesla_k40c().memory_mb, 11520);
    }

    #[test]
    fn kepler_family_sm_ladder() {
        // §3: "the Kepler family includes Tesla K20, K20X and K40 models,
        // endowed with 13, 14 and 15 multiprocessors, respectively".
        assert_eq!(tesla_k20().lanes(), 13 * 192);
        assert_eq!(tesla_k20x().lanes(), 14 * 192);
        assert_eq!(tesla_k40c().lanes(), 15 * 192);
        assert_eq!(tesla_k80_half().lanes(), 13 * 192);
        // Two K80 chips reach the quoted 30 multiprocessors (paper: "even
        // reaches 30", counting the pair as 2×13 + scheduling headroom).
        assert_eq!(2 * tesla_k80_half().lanes() / 192, 26);
    }

    #[test]
    fn same_family_cards_still_differ() {
        // The intra-family heterogeneity §3 motivates: K20 vs K40 differ
        // measurably even with identical architecture.
        let r = tesla_k40c().sustained_lane_hz() / tesla_k20().sustained_lane_hz();
        assert!(r > 1.2, "K40:K20 ratio {r}");
    }

    #[test]
    fn maxwell_card_generation() {
        let t = geforce_titan_x();
        assert_eq!(t.lanes(), 3072);
        assert_eq!(t.ccc_string(), "5.2");
    }

    #[test]
    fn tdp_values_physical() {
        for d in [
            xeon_e5_2620_dual(),
            xeon_e3_1220(),
            tesla_c2075(),
            geforce_gtx_590(),
            geforce_gtx_580(),
            tesla_k40c(),
            tesla_k20(),
            tesla_k20x(),
            tesla_k80_half(),
            geforce_titan_x(),
        ] {
            assert!((50.0..400.0).contains(&d.tdp_watts), "{}: {}", d.name, d.tdp_watts);
        }
    }
}
