//! # gpusim — simulated heterogeneous compute devices
//!
//! The paper evaluates on multicore + multi-GPU nodes with heterogeneous
//! cards (Tables 1–3): Fermi GeForce GTX 590/580, Fermi Tesla C2075 and a
//! Kepler Tesla K40c. This crate models those devices so the scheduling
//! strategy (the paper's contribution) can be exercised without CUDA
//! hardware:
//!
//! - [`arch`] — GPU hardware generations (Table 1);
//! - [`spec`] — device descriptors: SM count, cores/SM, clock, memory,
//!   CUDA compute capability, plus CPU descriptors for the OpenMP baseline;
//! - [`catalog`] — the concrete cards and CPUs of the paper's two systems
//!   (Jupiter, Hertz);
//! - [`launch`] — warp/block/grid decomposition and the occupancy
//!   calculator (each candidate solution maps to one CUDA warp, §3.2);
//! - [`cost`] — the roofline-style timing model: compute time vs memory
//!   time, kernel-launch overhead, PCIe transfers;
//! - [`device`] — [`device::SimDevice`]: a device with a *virtual clock*
//!   that advances by modeled time as work batches execute;
//! - [`node`] — [`node::SimNode`]: a multicore + multi-GPU node with the
//!   runtime device-query API (the `cudaGetDeviceCount`/NVML analog) the
//!   heterogeneous scheduler is written against.
//!
//! Timing is *virtual*: batches advance per-device clocks deterministically;
//! the actual numeric work (scoring) runs on host threads owned by the
//! scheduler in `vsched`. See DESIGN.md §1 for why this substitution
//! preserves the paper's experimental behaviour.
#![forbid(unsafe_code)]

pub mod arch;
pub mod catalog;
pub mod cost;
pub mod device;
pub mod energy;
pub mod launch;
pub mod node;
pub mod spec;
pub mod timeline;

pub use arch::GpuGeneration;
pub use cost::{CostModel, KernelClass, WorkBatch, WorkProfile};
pub use device::SimDevice;
pub use energy::{DeviceEnergy, EnergyModel};
pub use launch::{occupancy, LaunchConfig};
pub use node::SimNode;
pub use spec::{DeviceKind, DeviceSpec};
pub use timeline::{LaneStats, Segment, Timeline};
