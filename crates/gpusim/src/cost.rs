//! The roofline-style timing model.
//!
//! A work batch's execution time on a device is
//!
//! ```text
//! t = max(t_compute, t_memory) + t_launch + t_transfer          (GPU)
//! t = max(t_compute, t_memory)                                   (CPU)
//!
//! t_compute = units · cycles_per_unit / (lanes · clock · arch_eff · occ_eff)
//! t_memory  = units · bytes_per_unit / DRAM_bandwidth
//! t_transfer = PCIe latency + bytes / PCIe_bandwidth
//! ```
//!
//! where a *unit* is one atom-pair interaction of the scoring kernel and an
//! *item* is one conformation (= one CUDA warp, §3.2). The model derives
//! relative device throughput purely from the card parameters the paper
//! tabulates (Tables 1–3), which is all the heterogeneity-aware scheduler
//! observes; see DESIGN.md §1.

use crate::launch::occupancy_efficiency;
use crate::spec::{DeviceKind, DeviceSpec};
use serde::{Deserialize, Serialize};

/// The work-unit *regime* of a scoring kernel: what one `unit` in a
/// [`WorkBatch`] physically is, and therefore which per-unit rates the
/// cost model prices it at. The dense kernels, the potential-grid
/// interpolator, and the cell-list cutoff kernel do different work per
/// unit by orders of magnitude — pricing a grid job in pair units would
/// mispredict it by the ratio of receptor atoms to one.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum KernelClass {
    /// One unit = one `ligand × receptor` atom-pair interaction (the dense
    /// Naive/Tiled/Run/Fused kernels). The calibrated default.
    #[default]
    PairSweep,
    /// One unit = one ligand atom interpolated from precomputed potential
    /// grids: ~2×8 corner gathers plus trilinear weights. Gather-dominated
    /// (random node access), so high bytes-per-unit.
    GridInterp,
    /// One unit = one cutoff-shell pair enumerated through a cell list:
    /// the pair math plus neighbor-list chasing (scattered loads, not the
    /// streamed tiles of the dense kernels).
    ShellPairs,
}

impl KernelClass {
    /// Stable numeric id for trace payloads (`vstrace` events carry plain
    /// `u32`s so the trace crate stays independent of this one).
    pub fn ordinal(self) -> u32 {
        match self {
            KernelClass::PairSweep => 0,
            KernelClass::GridInterp => 1,
            KernelClass::ShellPairs => 2,
        }
    }
}

/// One scoring kernel invocation: `items` conformations, each computing
/// `units_per_item` work units of the given [`KernelClass`], with
/// host↔device payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkBatch {
    /// Work items (conformations; one warp each on GPUs).
    pub items: u64,
    /// Work units per item (pairs, ligand atoms, or shell pairs — see
    /// [`WorkBatch::class`]).
    pub units_per_item: u64,
    /// The regime `units_per_item` is counted in.
    pub class: KernelClass,
    /// Host→device bytes for this batch (poses).
    pub bytes_down: u64,
    /// Device→host bytes for this batch (scores).
    pub bytes_up: u64,
}

impl WorkBatch {
    /// A dense pair-sweep conformation batch with the standard payload
    /// sizes: a pose is 7 doubles (quaternion + translation) down, a score
    /// is one double up.
    pub fn conformations(items: u64, pairs_per_item: u64) -> WorkBatch {
        WorkBatch::kernel(items, pairs_per_item, KernelClass::PairSweep)
    }

    /// A conformation batch in an explicit work-unit regime (same standard
    /// pose/score payloads as [`WorkBatch::conformations`]).
    pub fn kernel(items: u64, units_per_item: u64, class: KernelClass) -> WorkBatch {
        WorkBatch { items, units_per_item, class, bytes_down: items * 56, bytes_up: items * 8 }
    }

    pub fn total_units(&self) -> u64 {
        self.items * self.units_per_item
    }
}

/// A kernel's per-item work shape — how many units one conformation costs
/// and which regime those units are priced in. This is what schedulers
/// thread through warm-up splits and deque seeding so the cost model sees
/// grid jobs as grid jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkProfile {
    pub units_per_item: u64,
    pub class: KernelClass,
}

impl WorkProfile {
    pub fn new(units_per_item: u64, class: KernelClass) -> WorkProfile {
        WorkProfile { units_per_item, class }
    }

    /// The dense pair-sweep profile (`pairs = ligand × receptor atoms`).
    pub fn pairs(pairs_per_item: u64) -> WorkProfile {
        WorkProfile { units_per_item: pairs_per_item, class: KernelClass::PairSweep }
    }

    /// A conformation [`WorkBatch`] of `items` items in this profile.
    pub fn batch(&self, items: u64) -> WorkBatch {
        WorkBatch::kernel(items, self.units_per_item, self.class)
    }
}

/// Model constants. Defaults are calibrated once against the paper's
/// OpenMP-vs-GPU speed-up bands (Tables 6–9) and then *never varied per
/// experiment* — every reported number comes from the same model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Lane-cycles per pair interaction (LJ: ~12 FLOPs + table lookup,
    /// amortized over FMA throughput).
    pub cycles_per_unit: f64,
    /// DRAM bytes per pair interaction after shared-memory tiling (receptor
    /// tiles are reused by every warp in a block, so per-pair traffic is
    /// far below the 32 B/atom of an untiled kernel).
    pub bytes_per_unit: f64,
    /// Fixed kernel-launch overhead per batch (GPU only), seconds.
    pub launch_overhead_s: f64,
    /// PCIe bandwidth, GB/s (GPU only).
    pub pcie_bandwidth_gbs: f64,
    /// PCIe/driver latency per transfer direction, seconds (GPU only).
    pub pcie_latency_s: f64,
    /// When true, PCIe transfers overlap kernel execution (CUDA streams +
    /// double buffering): the batch costs `max(kernel, transfer)` instead
    /// of their sum. Off by default — the paper's implementation uses the
    /// simple synchronous copy-compute-copy structure of Algorithm 2.
    pub overlap_transfers: bool,
    /// Lane-cycles per [`KernelClass::GridInterp`] unit (one ligand atom:
    /// 16 corner gathers, 24 weight multiplies, the charge scale).
    pub grid_cycles_per_unit: f64,
    /// DRAM bytes per grid-interpolation unit: the corner gathers are
    /// random-access node reads that tiling cannot coalesce.
    pub grid_bytes_per_unit: f64,
    /// Lane-cycles per [`KernelClass::ShellPairs`] unit: the pair math
    /// plus cell-list index chasing.
    pub shell_cycles_per_unit: f64,
    /// DRAM bytes per shell pair (scattered neighbor loads, no tile reuse).
    pub shell_bytes_per_unit: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cycles_per_unit: 6.0,
            bytes_per_unit: 0.5,
            launch_overhead_s: 12e-6,
            pcie_bandwidth_gbs: 6.0,
            pcie_latency_s: 8e-6,
            overlap_transfers: false,
            grid_cycles_per_unit: 48.0,
            grid_bytes_per_unit: 64.0,
            shell_cycles_per_unit: 9.0,
            shell_bytes_per_unit: 4.0,
        }
    }
}

impl CostModel {
    /// Modeled wall time for `batch` on `spec`, in seconds.
    pub fn execution_time(&self, spec: &DeviceSpec, batch: &WorkBatch) -> f64 {
        let (t_kernel, t_transfer) = self.time_breakdown(spec, batch);
        if spec.is_gpu() {
            if self.overlap_transfers {
                t_kernel.max(t_transfer) + self.launch_overhead_s
            } else {
                t_kernel + self.launch_overhead_s + t_transfer
            }
        } else {
            t_kernel
        }
    }

    /// The `(kernel, PCIe transfer)` components of [`Self::execution_time`],
    /// in seconds — the split the trace's `DeviceBusy` events and the
    /// makespan breakdown report. The fixed launch overhead is in neither
    /// component (it shows up as `busy − kernel − transfer`); transfers are
    /// zero on CPUs, which have no PCIe hop.
    pub fn time_breakdown(&self, spec: &DeviceSpec, batch: &WorkBatch) -> (f64, f64) {
        let t_transfer = if spec.is_gpu() {
            let bytes = (batch.bytes_down + batch.bytes_up) as f64;
            2.0 * self.pcie_latency_s + bytes / (self.pcie_bandwidth_gbs * 1e9)
        } else {
            0.0
        };
        if batch.items == 0 || batch.units_per_item == 0 {
            // Empty launches compute nothing but still pay the fixed
            // per-direction PCIe latency on a GPU.
            return (0.0, t_transfer);
        }
        let units = batch.total_units() as f64;

        let parallel_eff = match spec.kind {
            DeviceKind::Gpu { .. } => occupancy_efficiency(spec, batch.items),
            DeviceKind::Cpu { cores, .. } => (batch.items as f64 / cores as f64).min(1.0),
        };
        let (cycles, bytes) = self.unit_cost(batch.class);
        let lane_hz = spec.sustained_lane_hz() * parallel_eff.max(1e-9);
        let t_compute = units * cycles / lane_hz;
        let t_memory = units * bytes / (spec.memory_bandwidth_gbs * 1e9);
        (t_compute.max(t_memory), t_transfer)
    }

    /// Per-unit `(lane-cycles, DRAM bytes)` for a work-unit regime.
    pub fn unit_cost(&self, class: KernelClass) -> (f64, f64) {
        match class {
            KernelClass::PairSweep => (self.cycles_per_unit, self.bytes_per_unit),
            KernelClass::GridInterp => (self.grid_cycles_per_unit, self.grid_bytes_per_unit),
            KernelClass::ShellPairs => (self.shell_cycles_per_unit, self.shell_bytes_per_unit),
        }
    }

    /// Asymptotic throughput in pair interactions per second for large,
    /// machine-filling batches (the calibrated [`KernelClass::PairSweep`]
    /// regime).
    pub fn peak_units_per_second(&self, spec: &DeviceSpec) -> f64 {
        self.peak_units_per_second_for(spec, KernelClass::PairSweep)
    }

    /// Asymptotic units-per-second in an explicit work-unit regime.
    pub fn peak_units_per_second_for(&self, spec: &DeviceSpec, class: KernelClass) -> f64 {
        let (cycles, bytes) = self.unit_cost(class);
        let compute = spec.sustained_lane_hz() / cycles;
        let memory = spec.memory_bandwidth_gbs * 1e9 / bytes;
        compute.min(memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn big_batch(pairs: u64) -> WorkBatch {
        WorkBatch::conformations(100_000, pairs)
    }

    #[test]
    fn time_scales_linearly_with_units_when_saturated() {
        let m = CostModel::default();
        let d = catalog::geforce_gtx_580();
        // Large units-per-item keeps the fixed transfer cost negligible.
        let t1 = m.execution_time(&d, &big_batch(100_000));
        let t2 = m.execution_time(&d, &big_batch(200_000));
        let ratio = t2 / t1;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn faster_device_is_faster() {
        let m = CostModel::default();
        let b = big_batch(45 * 3264);
        let t_k40 = m.execution_time(&catalog::tesla_k40c(), &b);
        let t_580 = m.execution_time(&catalog::geforce_gtx_580(), &b);
        let t_cpu = m.execution_time(&catalog::xeon_e3_1220(), &b);
        assert!(t_k40 < t_580, "K40c {t_k40} vs 580 {t_580}");
        assert!(t_580 < t_cpu, "580 {t_580} vs CPU {t_cpu}");
    }

    #[test]
    fn gpu_cpu_ratio_in_paper_band() {
        // Tables 6–9: single-node GPU configurations beat OpenMP by tens of
        // times. A single big Fermi card over Jupiter's 12-core Xeon should
        // land in roughly the 5–30× band (4–6 such GPUs give the paper's
        // 50–92×).
        let m = CostModel::default();
        let b = big_batch(45 * 3264);
        let t_gpu = m.execution_time(&catalog::geforce_gtx_590(), &b);
        let t_cpu = m.execution_time(&catalog::xeon_e5_2620_dual(), &b);
        let ratio = t_cpu / t_gpu;
        assert!((5.0..30.0).contains(&ratio), "GPU:CPU ratio {ratio}");
    }

    #[test]
    fn k40_to_580_ratio_matches_hertz_premise() {
        // Hertz's heterogeneous algorithm gains 1.3–1.56×, which requires
        // the K40c to be roughly 2–3× the GTX 580 on this workload.
        let m = CostModel::default();
        let b = big_batch(32 * 8609);
        let t_k40 = m.execution_time(&catalog::tesla_k40c(), &b);
        let t_580 = m.execution_time(&catalog::geforce_gtx_580(), &b);
        let ratio = t_580 / t_k40;
        assert!((1.8..3.5).contains(&ratio), "K40c:580 ratio {ratio}");
    }

    #[test]
    fn empty_batch_costs_only_overheads() {
        let m = CostModel::default();
        let d = catalog::geforce_gtx_580();
        let t = m.execution_time(&d, &WorkBatch::conformations(0, 100));
        assert!(t > 0.0 && t < 1e-3);
        let c = catalog::xeon_e3_1220();
        assert_eq!(m.execution_time(&c, &WorkBatch::conformations(0, 100)), 0.0);
    }

    #[test]
    fn small_batches_pay_occupancy_penalty() {
        // Per-unit cost must be higher for a batch that cannot fill the GPU.
        let m = CostModel::default();
        let d = catalog::tesla_k40c();
        let small = WorkBatch::conformations(8, 10_000);
        let large = WorkBatch::conformations(100_000, 10_000);
        let per_unit_small = m.execution_time(&d, &small) / small.total_units() as f64;
        let per_unit_large = m.execution_time(&d, &large) / large.total_units() as f64;
        assert!(
            per_unit_small > 2.0 * per_unit_large,
            "small {per_unit_small} vs large {per_unit_large}"
        );
    }

    #[test]
    fn cpu_small_batches_underuse_cores() {
        let m = CostModel::default();
        let c = catalog::xeon_e5_2620_dual(); // 12 cores
        let one = WorkBatch::conformations(1, 100_000);
        let twelve = WorkBatch::conformations(12, 100_000);
        let t1 = m.execution_time(&c, &one);
        let t12 = m.execution_time(&c, &twelve);
        // 12 items on 12 cores take the same time as 1 item on 1 core.
        assert!((t1 - t12).abs() / t1 < 1e-9, "{t1} vs {t12}");
    }

    #[test]
    fn transfer_cost_grows_with_items() {
        let m = CostModel::default();
        let d = catalog::geforce_gtx_590();
        // Same total units, different item granularity: more items = more
        // PCIe payload.
        let few = WorkBatch::conformations(1_000, 1_000_000);
        let many = WorkBatch::conformations(1_000_000, 1_000);
        assert!(m.execution_time(&d, &many) > m.execution_time(&d, &few));
    }

    #[test]
    fn peak_throughput_ordering() {
        let m = CostModel::default();
        let mut rates: Vec<(String, f64)> = [
            catalog::xeon_e3_1220(),
            catalog::xeon_e5_2620_dual(),
            catalog::tesla_c2075(),
            catalog::geforce_gtx_590(),
            catalog::geforce_gtx_580(),
            catalog::tesla_k40c(),
        ]
        .iter()
        .map(|d| (d.name.clone(), m.peak_units_per_second(d)))
        .collect();
        rates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let names: Vec<&str> = rates.iter().map(|(n, _)| n.as_str()).collect();
        // CPUs slowest, K40c fastest.
        assert_eq!(names[0], "Intel Xeon E3-1220");
        assert_eq!(names[1], "2x Intel Xeon E5-2620");
        assert_eq!(names[5], "Tesla K40c");
    }

    #[test]
    fn overlapping_transfers_never_slower() {
        let sync = CostModel::default();
        let overlap = CostModel { overlap_transfers: true, ..Default::default() };
        let d = catalog::geforce_gtx_590();
        for (items, pairs) in [(100u64, 100u64), (10_000, 1_000), (1_000_000, 100)] {
            let b = WorkBatch::conformations(items, pairs);
            let ts = sync.execution_time(&d, &b);
            let to = overlap.execution_time(&d, &b);
            assert!(to <= ts + 1e-15, "overlap {to} > sync {ts}");
        }
    }

    #[test]
    fn overlap_helps_balanced_batches_most() {
        // Many tiny items: transfer-dominated; overlap hides almost all of
        // the kernel or transfer time, whichever is smaller.
        let sync = CostModel::default();
        let overlap = CostModel { overlap_transfers: true, ..Default::default() };
        let d = catalog::geforce_gtx_590();
        // Kernel ≈ transfer time: overlap hides nearly half the total.
        let balanced = WorkBatch::conformations(100_000, 800);
        let gain = sync.execution_time(&d, &balanced) / overlap.execution_time(&d, &balanced);
        assert!(gain > 1.5, "balanced-batch overlap gain {gain}");
        // Compute-bound batches barely change.
        let compute_bound = WorkBatch::conformations(10_000, 1_000_000);
        let gain2 =
            sync.execution_time(&d, &compute_bound) / overlap.execution_time(&d, &compute_bound);
        assert!(gain2 < 1.01, "compute-bound overlap gain {gain2}");
    }

    #[test]
    fn batch_constructor_payloads() {
        let b = WorkBatch::conformations(10, 99);
        assert_eq!(b.bytes_down, 560);
        assert_eq!(b.bytes_up, 80);
        assert_eq!(b.total_units(), 990);
        assert_eq!(b.class, KernelClass::PairSweep);
    }

    #[test]
    fn work_profile_builds_batches_in_its_regime() {
        let p = WorkProfile::new(32, KernelClass::GridInterp);
        let b = p.batch(1000);
        assert_eq!(b.items, 1000);
        assert_eq!(b.units_per_item, 32);
        assert_eq!(b.class, KernelClass::GridInterp);
        assert_eq!(b.bytes_down, WorkBatch::conformations(1000, 1).bytes_down);
        assert_eq!(WorkProfile::pairs(7).batch(3), WorkBatch::conformations(3, 7));
    }

    #[test]
    fn grid_jobs_priced_far_below_equivalent_pair_jobs() {
        // The whole point of the per-kernel regime: 32 grid units per item
        // (a 32-atom ligand) must cost orders of magnitude less than the
        // 32×8609 pair units the dense kernel would burn on the same
        // complex — even though grid units are individually pricier.
        let m = CostModel::default();
        for d in [catalog::tesla_k40c(), catalog::xeon_e5_2620_dual()] {
            let grid = WorkBatch::kernel(100_000, 32, KernelClass::GridInterp);
            let dense = WorkBatch::conformations(100_000, 32 * 8609);
            let t_grid = m.execution_time(&d, &grid);
            let t_dense = m.execution_time(&d, &dense);
            assert!(t_grid * 20.0 < t_dense, "{}: grid {t_grid} vs dense {t_dense}", d.name);
        }
    }

    #[test]
    fn per_class_unit_costs_are_distinct_and_ordered() {
        let m = CostModel::default();
        let (pc, pb) = m.unit_cost(KernelClass::PairSweep);
        let (gc, gb) = m.unit_cost(KernelClass::GridInterp);
        let (sc, sb) = m.unit_cost(KernelClass::ShellPairs);
        // A grid unit (one ligand atom, 16 gathers) is pricier than a pair
        // unit; a shell pair is a pair plus index chasing.
        assert!(gc > sc && sc > pc);
        assert!(gb > sb && sb > pb);
        let d = catalog::tesla_k40c();
        let pair_rate = m.peak_units_per_second_for(&d, KernelClass::PairSweep);
        assert_eq!(pair_rate, m.peak_units_per_second(&d));
        assert!(m.peak_units_per_second_for(&d, KernelClass::GridInterp) < pair_rate);
        assert!(m.peak_units_per_second_for(&d, KernelClass::ShellPairs) < pair_rate);
    }
}
