//! Execution timelines — Gantt-style records of what each device ran when.
//!
//! The schedulers in `vsched` are judged by makespans, but *why* a schedule
//! is slow (idle gaps, imbalance, launch storms) is easiest to see on a
//! timeline. [`Timeline`] collects per-device execution segments and
//! renders an ASCII Gantt chart; `vsched::schedule_trace` callers can
//! record into one via [`Timeline::record`].

use crate::cost::WorkBatch;
use crate::device::SimDevice;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// One executed segment on one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    pub device: usize,
    pub device_name: String,
    /// Virtual start/end times, seconds.
    pub start: f64,
    pub end: f64,
    pub items: u64,
}

/// A thread-safe collection of execution segments.
#[derive(Debug, Default)]
pub struct Timeline {
    segments: Mutex<Vec<Segment>>,
}

impl Timeline {
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Execute `batch` on `dev` and record the segment.
    pub fn record(&self, dev: &SimDevice, batch: &WorkBatch) -> f64 {
        let start = dev.clock();
        let dt = dev.execute(batch);
        self.segments.lock().expect("timeline mutex poisoned").push(Segment {
            device: dev.id(),
            device_name: dev.spec().name.clone(),
            start,
            end: start + dt,
            items: batch.items,
        });
        dt
    }

    /// All segments, ordered by (device, start).
    pub fn segments(&self) -> Vec<Segment> {
        let mut v = self.segments.lock().expect("timeline mutex poisoned").clone();
        v.sort_by(|a, b| a.device.cmp(&b.device).then(a.start.partial_cmp(&b.start).unwrap()));
        v
    }

    pub fn is_empty(&self) -> bool {
        self.segments.lock().expect("timeline mutex poisoned").is_empty()
    }

    /// Latest segment end over all devices.
    pub fn makespan(&self) -> f64 {
        self.segments
            .lock()
            .expect("timeline mutex poisoned")
            .iter()
            .map(|s| s.end)
            .fold(0.0, f64::max)
    }

    /// Total idle time of a device within `[0, makespan]`: gaps between its
    /// segments plus the tail after its last segment.
    pub fn idle_time(&self, device: usize) -> f64 {
        let segs = self.segments();
        let horizon = self.makespan();
        let mine: Vec<&Segment> = segs.iter().filter(|s| s.device == device).collect();
        if mine.is_empty() {
            return horizon;
        }
        let mut idle = mine[0].start;
        for w in mine.windows(2) {
            idle += (w[1].start - w[0].end).max(0.0);
        }
        idle + (horizon - mine.last().unwrap().end).max(0.0)
    }

    /// ASCII Gantt chart: one row per device, `width` columns spanning
    /// `[0, makespan]`; `#` marks busy columns.
    pub fn render(&self, width: usize) -> String {
        use std::fmt::Write;
        let segs = self.segments();
        let horizon = self.makespan();
        if segs.is_empty() || horizon <= 0.0 {
            return String::from("(empty timeline)\n");
        }
        let mut device_ids: Vec<usize> = segs.iter().map(|s| s.device).collect();
        device_ids.sort_unstable();
        device_ids.dedup();

        let mut out = String::new();
        for d in device_ids {
            let name = segs
                .iter()
                .find(|s| s.device == d)
                .map(|s| s.device_name.clone())
                .unwrap_or_default();
            let mut row = vec![b'.'; width];
            for s in segs.iter().filter(|s| s.device == d) {
                let a = ((s.start / horizon) * width as f64) as usize;
                let b = (((s.end / horizon) * width as f64).ceil() as usize).min(width);
                for c in row.iter_mut().take(b).skip(a.min(width.saturating_sub(1))) {
                    *c = b'#';
                }
            }
            let _ = writeln!(
                out,
                "dev {d:<2} {name:<20} |{}| idle {:5.1}%",
                String::from_utf8(row).expect("ascii"),
                100.0 * self.idle_time(d) / horizon
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn devices() -> (SimDevice, SimDevice) {
        (SimDevice::new(0, catalog::tesla_k40c()), SimDevice::new(1, catalog::geforce_gtx_580()))
    }

    #[test]
    fn record_captures_segments_in_order() {
        let (a, _) = devices();
        let tl = Timeline::new();
        tl.record(&a, &WorkBatch::conformations(100, 1000));
        tl.record(&a, &WorkBatch::conformations(200, 1000));
        let segs = tl.segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].items, 100);
        assert!((segs[0].end - segs[1].start).abs() < 1e-15, "segments must be contiguous");
        assert!((tl.makespan() - a.clock()).abs() < 1e-15);
    }

    #[test]
    fn idle_time_accounts_gaps_and_tail() {
        let (a, b) = devices();
        let tl = Timeline::new();
        // Device 0 works twice as much as device 1.
        tl.record(&a, &WorkBatch::conformations(100_000, 10_000));
        tl.record(&b, &WorkBatch::conformations(100_000, 2_500));
        let horizon = tl.makespan();
        assert_eq!(tl.idle_time(0), 0.0);
        let idle1 = tl.idle_time(1);
        assert!(idle1 > 0.0 && idle1 < horizon);
        // Busy + idle = horizon for every device.
        let busy1: f64 =
            tl.segments().iter().filter(|s| s.device == 1).map(|s| s.end - s.start).sum();
        assert!((busy1 + idle1 - horizon).abs() < 1e-12);
    }

    #[test]
    fn unknown_device_is_fully_idle() {
        let (a, _) = devices();
        let tl = Timeline::new();
        tl.record(&a, &WorkBatch::conformations(10, 10));
        assert_eq!(tl.idle_time(99), tl.makespan());
    }

    #[test]
    fn render_shape() {
        let (a, b) = devices();
        let tl = Timeline::new();
        tl.record(&a, &WorkBatch::conformations(1000, 1000));
        tl.record(&b, &WorkBatch::conformations(1000, 1000));
        let s = tl.render(40);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains('#'));
        assert!(s.contains("K40c"));
    }

    #[test]
    fn empty_timeline_renders_placeholder() {
        let tl = Timeline::new();
        assert!(tl.is_empty());
        assert!(tl.render(40).contains("empty"));
        assert_eq!(tl.makespan(), 0.0);
    }
}
