//! Execution timelines — Gantt-style records of what each device ran when.
//!
//! The schedulers in `vsched` are judged by makespans, but *why* a schedule
//! is slow (idle gaps, imbalance, launch storms) is easiest to see on a
//! timeline. [`Timeline`] collects per-device execution segments and
//! renders an ASCII Gantt chart; `vsched::schedule_trace` callers can
//! record into one via [`Timeline::record`].
//!
//! Busy/idle accounting goes through one shared segment-merging pass
//! ([`Timeline::device_stats`]) that [`Timeline::idle_time`],
//! [`Timeline::utilization`] and [`Timeline::render`] all consume. A
//! timeline can also carry a [`vstrace::Trace`] ([`Timeline::with_trace`]):
//! every recorded segment then emits a `DeviceBusy` event with the kernel
//! vs. PCIe-transfer split, and [`Timeline::from_events`] rebuilds a
//! timeline from such a trace — so the Gantt view can source from `vstrace`
//! instead of live recording.

use crate::cost::WorkBatch;
use crate::device::SimDevice;
use serde::{Deserialize, Serialize};
// DETERMINISM: raw std mutex — gpusim state is host-side simulation bookkeeping outside the modeled sync surface (no facade in this crate).
use std::sync::Mutex;
use vstrace::{Event, Trace, TraceData};

/// One executed segment on one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    pub device: usize,
    pub device_name: String,
    /// Virtual start/end times, seconds.
    pub start: f64,
    pub end: f64,
    pub items: u64,
}

/// Per-device busy/idle aggregate over `[0, makespan]` — the product of
/// the single segment-merging pass shared by [`Timeline::idle_time`],
/// [`Timeline::utilization`] and [`Timeline::render`].
#[derive(Debug, Clone, PartialEq)]
pub struct LaneStats {
    pub device: usize,
    pub device_name: String,
    /// Sum of segment durations.
    pub busy_s: f64,
    /// Leading gap + inter-segment gaps + tail up to the makespan.
    pub idle_s: f64,
}

/// A thread-safe collection of execution segments.
#[derive(Debug, Default)]
pub struct Timeline {
    segments: Mutex<Vec<Segment>>,
    trace: Trace,
}

impl Timeline {
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Emit a `DeviceBusy` trace event (with the kernel/transfer split)
    /// for every segment recorded from here on.
    pub fn with_trace(mut self, trace: Trace) -> Timeline {
        self.trace = trace;
        self
    }

    /// Rebuild a timeline from the `DeviceBusy` events of a trace
    /// snapshot. Device names come from the snapshot's track names where
    /// set.
    pub fn from_events(data: &TraceData) -> Timeline {
        let tl = Timeline::new();
        {
            // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
            let mut segs = tl.segments.lock().expect("timeline mutex poisoned");
            for s in data.events() {
                if let Event::DeviceBusy { device, vt_start, vt_end, items, .. } = s.event {
                    let device_name = data
                        .track_names
                        .get(&device)
                        .cloned()
                        .unwrap_or_else(|| format!("device {device}"));
                    segs.push(Segment {
                        device: device as usize,
                        device_name,
                        start: vt_start,
                        end: vt_end,
                        items,
                    });
                }
            }
        }
        tl
    }

    /// Execute `batch` on `dev` and record the segment.
    pub fn record(&self, dev: &SimDevice, batch: &WorkBatch) -> f64 {
        let start = dev.clock();
        let dt = dev.execute(batch);
        if self.trace.is_enabled() {
            let (kernel_s, transfer_s) = dev.time_breakdown(batch);
            self.trace.emit(Event::DeviceBusy {
                device: dev.id() as u32,
                vt_start: start,
                vt_end: start + dt,
                kernel_s,
                transfer_s,
                items: batch.items,
            });
        }
        // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
        self.segments.lock().expect("timeline mutex poisoned").push(Segment {
            device: dev.id(),
            device_name: dev.spec().name.clone(),
            start,
            end: start + dt,
            items: batch.items,
        });
        dt
    }

    /// All segments, ordered by (device, start).
    pub fn segments(&self) -> Vec<Segment> {
        // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
        let mut v = self.segments.lock().expect("timeline mutex poisoned").clone();
        v.sort_by(|a, b| a.device.cmp(&b.device).then(a.start.partial_cmp(&b.start).unwrap()));
        v
    }

    pub fn is_empty(&self) -> bool {
        // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
        self.segments.lock().expect("timeline mutex poisoned").is_empty()
    }

    /// Latest segment end over all devices.
    pub fn makespan(&self) -> f64 {
        self.segments
            .lock()
            // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
            .expect("timeline mutex poisoned")
            .iter()
            .map(|s| s.end)
            .fold(0.0, f64::max)
    }

    /// The single merging pass over the sorted segments: per-device busy
    /// and idle within `[0, makespan]`, ordered by device id.
    pub fn device_stats(&self) -> Vec<LaneStats> {
        let segs = self.segments();
        let horizon = segs.iter().map(|s| s.end).fold(0.0f64, f64::max);
        let mut lanes: Vec<LaneStats> = Vec::new();
        let mut last_end = 0.0f64;
        for s in &segs {
            if lanes.last().map(|l| l.device) != Some(s.device) {
                // Close the previous lane's tail, open a new lane with its
                // leading gap.
                if let Some(prev) = lanes.last_mut() {
                    prev.idle_s += (horizon - last_end).max(0.0);
                }
                lanes.push(LaneStats {
                    device: s.device,
                    device_name: s.device_name.clone(),
                    busy_s: 0.0,
                    idle_s: s.start.max(0.0),
                });
            } else {
                // PANICS: the `else` branch runs only after a lane was pushed for this device.
                lanes.last_mut().expect("lane exists").idle_s += (s.start - last_end).max(0.0);
            }
            // PANICS: a lane for this device was pushed by one of the branches above.
            lanes.last_mut().expect("lane exists").busy_s += s.end - s.start;
            last_end = s.end;
        }
        if let Some(prev) = lanes.last_mut() {
            prev.idle_s += (horizon - last_end).max(0.0);
        }
        lanes
    }

    /// Total idle time of a device within `[0, makespan]`: gaps between its
    /// segments plus the tail after its last segment.
    pub fn idle_time(&self, device: usize) -> f64 {
        self.device_stats()
            .iter()
            .find(|l| l.device == device)
            .map(|l| l.idle_s)
            .unwrap_or_else(|| self.makespan())
    }

    /// Fraction of `[0, makespan]` the device spent busy; 0 for unknown
    /// devices or an empty timeline.
    pub fn utilization(&self, device: usize) -> f64 {
        let horizon = self.makespan();
        if horizon <= 0.0 {
            return 0.0;
        }
        self.device_stats()
            .iter()
            .find(|l| l.device == device)
            .map(|l| l.busy_s / horizon)
            .unwrap_or(0.0)
    }

    /// ASCII Gantt chart: one row per device, `width` columns spanning
    /// `[0, makespan]`; `#` marks busy columns.
    pub fn render(&self, width: usize) -> String {
        use std::fmt::Write;
        let segs = self.segments();
        let lanes = self.device_stats();
        let horizon = segs.iter().map(|s| s.end).fold(0.0f64, f64::max);
        if segs.is_empty() || horizon <= 0.0 {
            return String::from("(empty timeline)\n");
        }

        let mut out = String::new();
        for lane in &lanes {
            let mut row = vec![b'.'; width];
            for s in segs.iter().filter(|s| s.device == lane.device) {
                let a = ((s.start / horizon) * width as f64) as usize;
                let b = (((s.end / horizon) * width as f64).ceil() as usize).min(width);
                for c in row.iter_mut().take(b).skip(a.min(width.saturating_sub(1))) {
                    *c = b'#';
                }
            }
            let _ = writeln!(
                out,
                "dev {:<2} {:<20} |{}| idle {:5.1}%",
                lane.device,
                lane.device_name,
                // PANICS: the row buffer is assembled from ASCII bytes only.
                String::from_utf8(row).expect("ascii"),
                100.0 * lane.idle_s / horizon
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn devices() -> (SimDevice, SimDevice) {
        (SimDevice::new(0, catalog::tesla_k40c()), SimDevice::new(1, catalog::geforce_gtx_580()))
    }

    #[test]
    fn record_captures_segments_in_order() {
        let (a, _) = devices();
        let tl = Timeline::new();
        tl.record(&a, &WorkBatch::conformations(100, 1000));
        tl.record(&a, &WorkBatch::conformations(200, 1000));
        let segs = tl.segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].items, 100);
        assert!((segs[0].end - segs[1].start).abs() < 1e-15, "segments must be contiguous");
        assert!((tl.makespan() - a.clock()).abs() < 1e-15);
    }

    #[test]
    fn idle_time_accounts_gaps_and_tail() {
        let (a, b) = devices();
        let tl = Timeline::new();
        // Device 0 works twice as much as device 1.
        tl.record(&a, &WorkBatch::conformations(100_000, 10_000));
        tl.record(&b, &WorkBatch::conformations(100_000, 2_500));
        let horizon = tl.makespan();
        assert_eq!(tl.idle_time(0), 0.0);
        let idle1 = tl.idle_time(1);
        assert!(idle1 > 0.0 && idle1 < horizon);
        // Busy + idle = horizon for every device.
        let busy1: f64 =
            tl.segments().iter().filter(|s| s.device == 1).map(|s| s.end - s.start).sum();
        assert!((busy1 + idle1 - horizon).abs() < 1e-12);
    }

    #[test]
    fn unknown_device_is_fully_idle() {
        let (a, _) = devices();
        let tl = Timeline::new();
        tl.record(&a, &WorkBatch::conformations(10, 10));
        assert_eq!(tl.idle_time(99), tl.makespan());
        assert_eq!(tl.utilization(99), 0.0);
    }

    #[test]
    fn utilization_agrees_with_idle_time() {
        let (a, b) = devices();
        let tl = Timeline::new();
        tl.record(&a, &WorkBatch::conformations(100_000, 10_000));
        tl.record(&b, &WorkBatch::conformations(100_000, 2_500));
        let horizon = tl.makespan();
        for d in [0usize, 1] {
            let util = tl.utilization(d);
            assert!((0.0..=1.0).contains(&util));
            assert!(
                (util - (1.0 - tl.idle_time(d) / horizon)).abs() < 1e-12,
                "busy and idle shares must add to 1 for device {d}"
            );
        }
        assert!((tl.utilization(0) - 1.0).abs() < 1e-12, "busiest device is never idle");
    }

    #[test]
    fn render_shape() {
        let (a, b) = devices();
        let tl = Timeline::new();
        tl.record(&a, &WorkBatch::conformations(1000, 1000));
        tl.record(&b, &WorkBatch::conformations(1000, 1000));
        let s = tl.render(40);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains('#'));
        assert!(s.contains("K40c"));
    }

    #[test]
    fn empty_timeline_renders_placeholder() {
        let tl = Timeline::new();
        assert!(tl.is_empty());
        assert!(tl.render(40).contains("empty"));
        assert_eq!(tl.makespan(), 0.0);
        assert_eq!(tl.utilization(0), 0.0);
    }

    #[test]
    fn traced_timeline_roundtrips_through_events() {
        let (a, b) = devices();
        let trace = Trace::new();
        let tl = Timeline::new().with_trace(trace.clone());
        tl.record(&a, &WorkBatch::conformations(500, 2000));
        tl.record(&b, &WorkBatch::conformations(300, 2000));
        tl.record(&a, &WorkBatch::conformations(200, 2000));

        let data = trace.snapshot();
        assert_eq!(data.len(), 3, "one DeviceBusy per recorded segment");
        // Busy totals agree between the live timeline and the trace.
        for lane in tl.device_stats() {
            let traced = data.device_busy_s(lane.device as u32);
            assert!(
                (lane.busy_s - traced).abs() < 1e-12,
                "device {} busy {} vs traced {traced}",
                lane.device,
                lane.busy_s
            );
        }
        // And the rebuilt timeline reproduces makespan and idle accounting.
        let rebuilt = Timeline::from_events(&data);
        assert!((rebuilt.makespan() - tl.makespan()).abs() < 1e-12);
        for d in [0usize, 1] {
            assert!((rebuilt.idle_time(d) - tl.idle_time(d)).abs() < 1e-12);
        }
        // Kernel + transfer never exceed the recorded busy time.
        for s in data.events() {
            if let Event::DeviceBusy { vt_start, vt_end, kernel_s, transfer_s, .. } = s.event {
                assert!(kernel_s + transfer_s <= vt_end - vt_start + 1e-12);
            }
        }
    }

    #[test]
    fn untraced_timeline_emits_nothing() {
        let (a, _) = devices();
        let trace = Trace::disabled();
        let tl = Timeline::new().with_trace(trace.clone());
        tl.record(&a, &WorkBatch::conformations(10, 10));
        assert!(trace.snapshot().is_empty());
    }
}
