//! Warp/block/grid decomposition and occupancy.
//!
//! The paper maps each candidate solution (conformation) to one CUDA warp
//! and groups warps into thread blocks (§3.2: "we identify each candidate
//! solution to a CUDA warp, and warps are grouped into blocks depending on
//! the CUDA thread block granularity"). This module computes that
//! decomposition and the resulting occupancy, which feeds the cost model:
//! small batches cannot fill the machine and run at reduced efficiency —
//! the effect behind the paper's observation that bigger workloads (M4,
//! larger receptors) reach higher speed-ups.

use crate::spec::{DeviceKind, DeviceSpec};
use serde::{Deserialize, Serialize};

/// A kernel launch configuration: `grid_blocks` blocks of
/// `threads_per_block` threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    pub grid_blocks: u64,
    pub threads_per_block: u32,
    /// Warps per block (`threads_per_block / 32`).
    pub warps_per_block: u32,
}

impl LaunchConfig {
    /// Decompose `items` one-warp work items onto a device, using blocks of
    /// `threads_per_block` threads (clamped to the device maximum and
    /// rounded to whole warps).
    pub fn for_items(device: &DeviceSpec, items: u64, threads_per_block: u32) -> LaunchConfig {
        let warp = device.warp_size().max(1);
        let max_tpb = match device.kind {
            DeviceKind::Gpu { max_threads_per_block, .. } => max_threads_per_block,
            DeviceKind::Cpu { .. } => warp, // degenerate: one item per "block"
        };
        let tpb = threads_per_block.clamp(warp, max_tpb) / warp * warp;
        let warps_per_block = tpb / warp;
        let grid_blocks = items.div_ceil(warps_per_block as u64).max(1);
        LaunchConfig { grid_blocks, threads_per_block: tpb, warps_per_block }
    }

    /// Total warps launched.
    pub fn total_warps(&self) -> u64 {
        self.grid_blocks * self.warps_per_block as u64
    }
}

/// Achieved occupancy estimate for `items` one-warp work items on a device,
/// in `(0, 1]`.
///
/// Occupancy here is the fraction of the latency-hiding warp capacity the
/// launch fills: each SM wants `max_threads_per_sm / 32` resident warps;
/// with `items` warps spread over `multiprocessors` SMs, the achieved
/// fraction saturates at 1. CPUs always return 1 (no latency-hiding
/// requirement in this model — threads are heavyweight and few).
pub fn occupancy(device: &DeviceSpec, items: u64) -> f64 {
    match device.kind {
        DeviceKind::Cpu { .. } => 1.0,
        DeviceKind::Gpu { multiprocessors, max_threads_per_sm, .. } => {
            if items == 0 {
                return 0.0;
            }
            let warps_wanted_per_sm = (max_threads_per_sm / 32) as f64;
            let warps_per_sm = items as f64 / multiprocessors as f64;
            (warps_per_sm / warps_wanted_per_sm).min(1.0)
        }
    }
}

/// Smooth efficiency curve derived from occupancy: even a tiny launch gets
/// *some* throughput (the first warps execute at full lane rate within
/// their SMs), but latency hiding — and therefore sustained throughput —
/// needs the machine filled. Empirically a saturating curve
/// `eff = occ / (occ + k)` normalized to 1 at occ = 1, with `k = 0.25`,
/// matches the measured small-batch penalty of docking kernels.
pub fn occupancy_efficiency(device: &DeviceSpec, items: u64) -> f64 {
    let occ = occupancy(device, items);
    if occ <= 0.0 {
        return 0.0;
    }
    const K: f64 = 0.25;
    (occ / (occ + K)) / (1.0 / (1.0 + K))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn launch_rounds_to_whole_warps() {
        let d = catalog::geforce_gtx_590();
        let lc = LaunchConfig::for_items(&d, 100, 100); // 100 not divisible by 32
        assert_eq!(lc.threads_per_block % 32, 0);
        assert!(lc.threads_per_block >= 32);
    }

    #[test]
    fn launch_covers_all_items() {
        let d = catalog::tesla_k40c();
        for items in [1u64, 31, 32, 33, 1000, 4096] {
            let lc = LaunchConfig::for_items(&d, items, 256);
            assert!(lc.total_warps() >= items, "items={items}: {lc:?}");
            // No more than one extra block of slack.
            assert!(lc.total_warps() < items + lc.warps_per_block as u64);
        }
    }

    #[test]
    fn launch_respects_device_max_threads() {
        let d = catalog::tesla_c2075();
        let lc = LaunchConfig::for_items(&d, 10, 4096);
        assert!(lc.threads_per_block <= 1024);
    }

    #[test]
    fn zero_items_still_one_block() {
        let d = catalog::geforce_gtx_580();
        assert_eq!(LaunchConfig::for_items(&d, 0, 256).grid_blocks, 1);
    }

    #[test]
    fn occupancy_zero_items() {
        let d = catalog::geforce_gtx_580();
        assert_eq!(occupancy(&d, 0), 0.0);
        assert_eq!(occupancy_efficiency(&d, 0), 0.0);
    }

    #[test]
    fn occupancy_saturates_at_one() {
        let d = catalog::geforce_gtx_580();
        // 16 SMs × 48 warps = 768 warps fills the card.
        assert!((occupancy(&d, 768) - 1.0).abs() < 1e-12);
        assert_eq!(occupancy(&d, 1_000_000), 1.0);
    }

    #[test]
    fn occupancy_scales_linearly_below_saturation() {
        let d = catalog::geforce_gtx_580();
        let half = occupancy(&d, 384);
        assert!((half - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cpu_occupancy_is_always_full() {
        let c = catalog::xeon_e3_1220();
        assert_eq!(occupancy(&c, 1), 1.0);
        assert_eq!(occupancy_efficiency(&c, 1), 1.0);
    }

    #[test]
    fn efficiency_monotonic_in_items() {
        let d = catalog::tesla_k40c();
        let mut prev = 0.0;
        for items in [1u64, 8, 64, 256, 1024, 4096] {
            let e = occupancy_efficiency(&d, items);
            assert!(e >= prev, "items={items}: {e} < {prev}");
            assert!(e <= 1.0 + 1e-12);
            prev = e;
        }
    }

    #[test]
    fn efficiency_reaches_one_when_saturated() {
        let d = catalog::geforce_gtx_590();
        assert!((occupancy_efficiency(&d, 1_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_batches_penalized_more_on_bigger_gpus() {
        // The K40c needs more warps to fill than the GTX 580, so the same
        // small batch achieves lower occupancy on it — the effect that
        // favors proportional (heterogeneous) splits only for big runs.
        let k40 = catalog::tesla_k40c();
        let g580 = catalog::geforce_gtx_580();
        let items = 128;
        assert!(occupancy(&k40, items) < occupancy(&g580, items));
    }
}
