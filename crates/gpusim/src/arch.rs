//! GPU hardware generations — the data of the paper's Table 1.

use serde::{Deserialize, Serialize};

/// CUDA hardware generations covered by Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuGeneration {
    /// "Tesla" G80/GT200 generation (2007).
    Tesla,
    /// Fermi (2010) — GTX 590/580, Tesla C2075.
    Fermi,
    /// Kepler (2012) — Tesla K20/K40.
    Kepler,
    /// Maxwell (2014).
    Maxwell,
}

/// One row-set of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationInfo {
    pub generation: GpuGeneration,
    pub starting_year: u32,
    pub max_multiprocessors: u32,
    pub cores_per_multiprocessor: u32,
    pub max_shared_memory_kb: u32,
    /// CUDA Compute Capability major version ("1.x", "2.x", ...).
    pub ccc_major: u32,
    pub peak_sp_gflops: u32,
    /// Approximate performance per watt, normalized to Tesla = 1.
    pub perf_per_watt: u32,
    /// Architectural lane efficiency: the fraction of peak per-lane
    /// throughput a well-tuned arithmetic kernel sustains. Kepler's
    /// 192-core SMX needs instruction-level parallelism the docking kernel
    /// does not expose, so it sustains a lower fraction than Fermi — the
    /// effect behind the paper's moderate (not spec-ratio) K40c advantage.
    pub lane_efficiency: f64,
}

impl GpuGeneration {
    pub const ALL: [GpuGeneration; 4] =
        [GpuGeneration::Tesla, GpuGeneration::Fermi, GpuGeneration::Kepler, GpuGeneration::Maxwell];

    /// Table 1 data for this generation.
    pub fn info(self) -> GenerationInfo {
        match self {
            GpuGeneration::Tesla => GenerationInfo {
                generation: self,
                starting_year: 2007,
                max_multiprocessors: 30,
                cores_per_multiprocessor: 8,
                max_shared_memory_kb: 16,
                ccc_major: 1,
                peak_sp_gflops: 672,
                perf_per_watt: 1,
                lane_efficiency: 0.70,
            },
            GpuGeneration::Fermi => GenerationInfo {
                generation: self,
                starting_year: 2010,
                max_multiprocessors: 16,
                cores_per_multiprocessor: 32,
                max_shared_memory_kb: 48,
                ccc_major: 2,
                peak_sp_gflops: 1178,
                perf_per_watt: 2,
                lane_efficiency: 0.75,
            },
            GpuGeneration::Kepler => GenerationInfo {
                generation: self,
                starting_year: 2012,
                max_multiprocessors: 15,
                cores_per_multiprocessor: 192,
                max_shared_memory_kb: 48,
                ccc_major: 3,
                peak_sp_gflops: 4290,
                perf_per_watt: 6,
                lane_efficiency: 0.55,
            },
            GpuGeneration::Maxwell => GenerationInfo {
                generation: self,
                starting_year: 2014,
                max_multiprocessors: 16,
                cores_per_multiprocessor: 128,
                max_shared_memory_kb: 64,
                ccc_major: 5,
                peak_sp_gflops: 4980,
                perf_per_watt: 12,
                lane_efficiency: 0.70,
            },
        }
    }

    /// Max total core count for the generation (Table 1 row 3).
    pub fn max_total_cores(self) -> u32 {
        let i = self.info();
        i.max_multiprocessors * i.cores_per_multiprocessor
    }

    pub fn name(self) -> &'static str {
        match self {
            GpuGeneration::Tesla => "Tesla",
            GpuGeneration::Fermi => "Fermi",
            GpuGeneration::Kepler => "Kepler",
            GpuGeneration::Maxwell => "Maxwell",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_total_cores() {
        // Table 1 row "Total number of cores (up to)".
        assert_eq!(GpuGeneration::Tesla.max_total_cores(), 240);
        assert_eq!(GpuGeneration::Fermi.max_total_cores(), 512);
        assert_eq!(GpuGeneration::Kepler.max_total_cores(), 2880);
        assert_eq!(GpuGeneration::Maxwell.max_total_cores(), 2048);
    }

    #[test]
    fn table1_years_monotonic() {
        let years: Vec<u32> = GpuGeneration::ALL.iter().map(|g| g.info().starting_year).collect();
        assert!(years.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn table1_perf_per_watt_doubles_roughly() {
        // "power consumption has been reduced by a factor of 2 at each new
        // generation" — perf/watt 1, 2, 6, 12.
        let ppw: Vec<u32> = GpuGeneration::ALL.iter().map(|g| g.info().perf_per_watt).collect();
        assert_eq!(ppw, vec![1, 2, 6, 12]);
        assert!(ppw.windows(2).all(|w| w[1] >= 2 * w[0]));
    }

    #[test]
    fn table1_peak_gflops_increase() {
        let g: Vec<u32> = GpuGeneration::ALL.iter().map(|x| x.info().peak_sp_gflops).collect();
        assert!(g.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn ccc_majors_match_table() {
        assert_eq!(GpuGeneration::Tesla.info().ccc_major, 1);
        assert_eq!(GpuGeneration::Fermi.info().ccc_major, 2);
        assert_eq!(GpuGeneration::Kepler.info().ccc_major, 3);
        assert_eq!(GpuGeneration::Maxwell.info().ccc_major, 5);
    }

    #[test]
    fn lane_efficiency_in_unit_interval() {
        for g in GpuGeneration::ALL {
            let e = g.info().lane_efficiency;
            assert!((0.0..=1.0).contains(&e));
        }
        // Kepler is the hardest to saturate.
        assert!(
            GpuGeneration::Kepler.info().lane_efficiency
                < GpuGeneration::Fermi.info().lane_efficiency
        );
    }
}
