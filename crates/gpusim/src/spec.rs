//! Device descriptors — the per-card data of the paper's Tables 2 and 3.

use crate::arch::GpuGeneration;
use serde::{Deserialize, Serialize};

/// GPU or CPU? The scheduler treats both uniformly as compute devices (the
/// paper's OpenMP baseline runs the same workload on the multicore side).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DeviceKind {
    Gpu {
        generation: GpuGeneration,
        multiprocessors: u32,
        cores_per_multiprocessor: u32,
        /// Max resident threads per multiprocessor (occupancy limit).
        max_threads_per_sm: u32,
        max_threads_per_block: u32,
        shared_memory_kb: u32,
        registers_per_sm: u32,
        /// CUDA compute capability, e.g. (2, 0) or (3, 5).
        ccc: (u32, u32),
    },
    Cpu {
        cores: u32,
        /// Effective SIMD speedup factor of the compiled scalar-ish OpenMP
        /// scoring loop (auto-vectorization gives ~2× on these Xeons).
        simd_factor: f64,
    },
}

/// A compute device of one of the paper's systems.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable model name, e.g. "GeForce GTX 590".
    pub name: String,
    pub kind: DeviceKind,
    /// Core clock in MHz.
    pub clock_mhz: f64,
    /// DRAM size in megabytes.
    pub memory_mb: u64,
    /// DRAM bandwidth in GB/s.
    pub memory_bandwidth_gbs: f64,
    /// Release year (Tables 2–3).
    pub year: u32,
    /// Thermal design power in watts (board/package), for the energy model.
    pub tdp_watts: f64,
}

impl DeviceSpec {
    /// Number of hardware lanes: CUDA cores for GPUs, cores for CPUs.
    pub fn lanes(&self) -> u32 {
        match self.kind {
            DeviceKind::Gpu { multiprocessors, cores_per_multiprocessor, .. } => {
                multiprocessors * cores_per_multiprocessor
            }
            DeviceKind::Cpu { cores, .. } => cores,
        }
    }

    pub fn is_gpu(&self) -> bool {
        matches!(self.kind, DeviceKind::Gpu { .. })
    }

    /// Warp size (32 on every CUDA generation; 1 for CPUs).
    pub fn warp_size(&self) -> u32 {
        if self.is_gpu() {
            32
        } else {
            1
        }
    }

    /// Peak lane-cycles per second: `lanes × clock`. The cost model derates
    /// this by occupancy and architectural lane efficiency.
    pub fn peak_lane_hz(&self) -> f64 {
        self.lanes() as f64 * self.clock_mhz * 1e6
    }

    /// Architectural lane efficiency (see [`GpuGeneration`]); CPUs fold the
    /// SIMD factor in here instead.
    pub fn lane_efficiency(&self) -> f64 {
        match self.kind {
            DeviceKind::Gpu { generation, .. } => generation.info().lane_efficiency,
            DeviceKind::Cpu { simd_factor, .. } => simd_factor,
        }
    }

    /// Sustained pair-interaction throughput ceiling in lane-Hz terms
    /// (before occupancy effects): `lanes × clock × efficiency`.
    pub fn sustained_lane_hz(&self) -> f64 {
        self.peak_lane_hz() * self.lane_efficiency()
    }

    /// Smallest launch (in items, one warp per item) that fills the
    /// machine: the resident-warp capacity `SMs × max_threads_per_SM / 32`
    /// for a GPU, the core count for a CPU. Below this, occupancy — and
    /// therefore sustained throughput — degrades (see
    /// [`crate::launch::occupancy_efficiency`]); schedulers use it as the
    /// floor for work-stealing chunk sizes.
    pub fn saturation_items(&self) -> u64 {
        match self.kind {
            DeviceKind::Gpu { multiprocessors, max_threads_per_sm, .. } => {
                u64::from(multiprocessors) * u64::from(max_threads_per_sm) / 32
            }
            DeviceKind::Cpu { cores, .. } => u64::from(cores),
        }
    }

    /// CUDA compute capability string, or "n/a" for CPUs.
    pub fn ccc_string(&self) -> String {
        match self.kind {
            DeviceKind::Gpu { ccc: (maj, min), .. } => format!("{maj}.{min}"),
            DeviceKind::Cpu { .. } => "n/a".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fermi_gpu() -> DeviceSpec {
        DeviceSpec {
            name: "Test Fermi".into(),
            kind: DeviceKind::Gpu {
                generation: GpuGeneration::Fermi,
                multiprocessors: 16,
                cores_per_multiprocessor: 32,
                max_threads_per_sm: 1536,
                max_threads_per_block: 1024,
                shared_memory_kb: 48,
                registers_per_sm: 32768,
                ccc: (2, 0),
            },
            clock_mhz: 1215.0,
            memory_mb: 1536,
            memory_bandwidth_gbs: 163.85,
            tdp_watts: 244.0,
            year: 2011,
        }
    }

    fn cpu() -> DeviceSpec {
        DeviceSpec {
            name: "Test Xeon".into(),
            kind: DeviceKind::Cpu { cores: 12, simd_factor: 2.0 },
            clock_mhz: 2000.0,
            memory_mb: 32143,
            memory_bandwidth_gbs: 42.66,
            tdp_watts: 95.0,
            year: 2012,
        }
    }

    #[test]
    fn lanes_multiply_for_gpu() {
        assert_eq!(fermi_gpu().lanes(), 512);
        assert_eq!(cpu().lanes(), 12);
    }

    #[test]
    fn warp_size_by_kind() {
        assert_eq!(fermi_gpu().warp_size(), 32);
        assert_eq!(cpu().warp_size(), 1);
    }

    #[test]
    fn peak_lane_hz() {
        let g = fermi_gpu();
        assert!((g.peak_lane_hz() - 512.0 * 1215.0e6).abs() < 1.0);
    }

    #[test]
    fn sustained_below_peak_for_gpu() {
        let g = fermi_gpu();
        assert!(g.sustained_lane_hz() < g.peak_lane_hz());
    }

    #[test]
    fn cpu_simd_factor_scales_sustained() {
        let c = cpu();
        assert!((c.sustained_lane_hz() - 2.0 * c.peak_lane_hz()).abs() < 1.0);
    }

    #[test]
    fn saturation_items_is_resident_warp_capacity() {
        assert_eq!(fermi_gpu().saturation_items(), 16 * 1536 / 32);
        assert_eq!(cpu().saturation_items(), 12);
    }

    #[test]
    fn ccc_strings() {
        assert_eq!(fermi_gpu().ccc_string(), "2.0");
        assert_eq!(cpu().ccc_string(), "n/a");
    }

    #[test]
    fn gpu_outclasses_cpu_in_lane_throughput() {
        // The premise of the paper: the GPU side dwarfs the multicore side
        // (a single Fermi card vs a 12-core dual-socket Xeon).
        assert!(fermi_gpu().sustained_lane_hz() > 5.0 * cpu().sustained_lane_hz());
    }
}
