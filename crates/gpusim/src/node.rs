//! A simulated multicore + multi-GPU node.
//!
//! This is the `cudaGetDeviceCount` + NVML analog the heterogeneous
//! scheduler queries at run time (§3.3: the master thread "creates as many
//! OpenMP threads as GPUs available on a node, which is easily attained by
//! querying the GPU properties at runtime").

use crate::cost::CostModel;
use crate::device::SimDevice;
use crate::spec::DeviceSpec;
use std::sync::Arc;

/// A heterogeneous node: one CPU (hosting the OpenMP baseline and the
/// controlling threads) plus zero or more GPUs.
///
/// ```
/// use gpusim::{catalog, SimNode, WorkBatch};
///
/// let node = SimNode::new("hertz", catalog::xeon_e3_1220(),
///     vec![catalog::tesla_k40c(), catalog::geforce_gtx_580()]);
/// assert_eq!(node.device_count(), 2);             // cudaGetDeviceCount
/// assert_eq!(node.properties(0).lanes(), 2880);   // NVML-style query
///
/// node.gpu(0).execute(&WorkBatch::conformations(4096, 146_880));
/// assert!(node.makespan() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SimNode {
    name: String,
    cpu: Arc<SimDevice>,
    gpus: Vec<Arc<SimDevice>>,
}

impl SimNode {
    /// Build a node from a CPU spec and the GPU specs it hosts.
    pub fn new(name: impl Into<String>, cpu: DeviceSpec, gpu_specs: Vec<DeviceSpec>) -> SimNode {
        SimNode::with_model(name, cpu, gpu_specs, CostModel::default())
    }

    /// Build a node with a custom cost model (applied to every device).
    pub fn with_model(
        name: impl Into<String>,
        cpu: DeviceSpec,
        gpu_specs: Vec<DeviceSpec>,
        model: CostModel,
    ) -> SimNode {
        let cpu = Arc::new(SimDevice::with_model(0, cpu, model));
        let gpus = gpu_specs
            .into_iter()
            .enumerate()
            .map(|(i, s)| Arc::new(SimDevice::with_model(i + 1, s, model)))
            .collect();
        SimNode { name: name.into(), cpu, gpus }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// `cudaGetDeviceCount` analog: number of GPUs.
    pub fn device_count(&self) -> usize {
        self.gpus.len()
    }

    /// The host CPU device.
    pub fn cpu(&self) -> &Arc<SimDevice> {
        &self.cpu
    }

    /// GPU `i` (0-based, like CUDA device ordinals).
    pub fn gpu(&self, i: usize) -> &Arc<SimDevice> {
        &self.gpus[i]
    }

    /// All GPUs.
    pub fn gpus(&self) -> &[Arc<SimDevice>] {
        &self.gpus
    }

    /// NVML analog: device properties by ordinal.
    pub fn properties(&self, i: usize) -> &DeviceSpec {
        self.gpus[i].spec()
    }

    /// Reset every device clock (between experiments).
    pub fn reset(&self) {
        self.cpu.reset();
        for g in &self.gpus {
            g.reset();
        }
    }

    /// The node-level makespan: the latest virtual clock across devices.
    /// With one controlling thread per GPU running concurrently, the
    /// slowest device determines overall execution time (§3.3).
    pub fn makespan(&self) -> f64 {
        let mut t = self.cpu.clock();
        for g in &self.gpus {
            t = t.max(g.clock());
        }
        t
    }

    /// Restrict to a subset of GPUs (e.g. Jupiter's "homogeneous system" =
    /// only the four GTX 590s). Devices are shared, not copied: clocks
    /// carry over.
    pub fn subset(&self, gpu_indices: &[usize]) -> SimNode {
        SimNode {
            name: format!("{}[{:?}]", self.name, gpu_indices),
            cpu: self.cpu.clone(),
            gpus: gpu_indices.iter().map(|&i| self.gpus[i].clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::cost::WorkBatch;

    fn hertz_like() -> SimNode {
        SimNode::new(
            "hertz",
            catalog::xeon_e3_1220(),
            vec![catalog::tesla_k40c(), catalog::geforce_gtx_580()],
        )
    }

    #[test]
    fn device_count_and_ordinals() {
        let n = hertz_like();
        assert_eq!(n.device_count(), 2);
        assert_eq!(n.gpu(0).spec().name, "Tesla K40c");
        assert_eq!(n.gpu(1).spec().name, "GeForce GTX 580");
        assert_eq!(n.properties(0).lanes(), 2880);
        assert!(!n.cpu().spec().is_gpu());
    }

    #[test]
    fn device_ids_are_unique() {
        let n = hertz_like();
        let mut ids = vec![n.cpu().id()];
        ids.extend(n.gpus().iter().map(|g| g.id()));
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn makespan_is_max_clock() {
        let n = hertz_like();
        n.gpu(0).execute(&WorkBatch::conformations(1000, 1000));
        n.gpu(1).execute(&WorkBatch::conformations(1000, 1000));
        let m = n.makespan();
        assert_eq!(m, n.gpu(0).clock().max(n.gpu(1).clock()));
        // GTX 580 is slower, so it dominates.
        assert_eq!(m, n.gpu(1).clock());
    }

    #[test]
    fn reset_clears_all_devices() {
        let n = hertz_like();
        n.cpu().execute(&WorkBatch::conformations(10, 10));
        n.gpu(0).execute(&WorkBatch::conformations(10, 10));
        n.reset();
        assert_eq!(n.makespan(), 0.0);
    }

    #[test]
    fn subset_shares_devices() {
        let n = hertz_like();
        let sub = n.subset(&[1]);
        assert_eq!(sub.device_count(), 1);
        sub.gpu(0).execute(&WorkBatch::conformations(10, 10));
        // Clock visible through the parent node: same device object.
        assert!(n.gpu(1).clock() > 0.0);
    }
}
