//! Energy accounting.
//!
//! The paper motivates heterogeneity-awareness partly by energy ("the
//! energy barrier", §1; Table 1's performance-per-watt row; the authors'
//! earlier work [14] is explicitly about energy efficiency in virtual
//! screening). This module turns the virtual-time accounting of
//! [`crate::SimDevice`] into energy-to-solution numbers: a device burns its
//! TDP while busy and an idle fraction of it while waiting.

use crate::device::SimDevice;
use crate::node::SimNode;
use serde::{Deserialize, Serialize};

/// Simple two-state power model: `P_busy = TDP`, `P_idle = idle_fraction ×
/// TDP`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Idle power as a fraction of TDP (modern boards idle at ~20–35%).
    pub idle_fraction: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel { idle_fraction: 0.30 }
    }
}

/// Energy report for one device over its virtual lifetime `[0, horizon]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceEnergy {
    pub name: String,
    pub busy_s: f64,
    pub idle_s: f64,
    pub joules: f64,
}

impl EnergyModel {
    /// Energy one device consumed up to `horizon` seconds of virtual time
    /// (the node makespan): busy time at TDP, the rest idling.
    ///
    /// # Panics
    /// Panics if `horizon` is shorter than the device's busy time.
    pub fn device_energy(&self, dev: &SimDevice, horizon: f64) -> DeviceEnergy {
        let busy = dev.stats().busy_s;
        assert!(horizon + 1e-12 >= busy, "horizon {horizon} shorter than busy time {busy}");
        let idle = (horizon - busy).max(0.0);
        let tdp = dev.spec().tdp_watts;
        DeviceEnergy {
            name: dev.spec().name.clone(),
            busy_s: busy,
            idle_s: idle,
            joules: tdp * busy + self.idle_fraction * tdp * idle,
        }
    }

    /// Total energy of a node over its makespan: every device (CPU + GPUs)
    /// is powered for the whole run, busy or not — the pessimistic
    /// whole-node accounting the paper's energy discussion implies.
    pub fn node_energy(&self, node: &SimNode) -> f64 {
        let horizon = node.makespan();
        let mut total = self.device_energy(node.cpu(), horizon).joules;
        for g in node.gpus() {
            total += self.device_energy(g, horizon).joules;
        }
        total
    }

    /// Per-device breakdown for a node over its makespan.
    pub fn node_breakdown(&self, node: &SimNode) -> Vec<DeviceEnergy> {
        let horizon = node.makespan();
        let mut out = vec![self.device_energy(node.cpu(), horizon)];
        out.extend(node.gpus().iter().map(|g| self.device_energy(g, horizon)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::cost::WorkBatch;

    #[test]
    fn busy_device_burns_tdp() {
        let d = SimDevice::new(0, catalog::geforce_gtx_580());
        d.execute(&WorkBatch::conformations(100_000, 10_000));
        let t = d.clock();
        let e = EnergyModel::default().device_energy(&d, t);
        assert!((e.joules - 244.0 * t).abs() < 1e-9, "fully busy = TDP × t");
        assert_eq!(e.idle_s, 0.0);
    }

    #[test]
    fn idle_device_burns_idle_fraction() {
        let d = SimDevice::new(0, catalog::tesla_k40c());
        let e = EnergyModel::default().device_energy(&d, 10.0);
        assert!((e.joules - 0.30 * 235.0 * 10.0).abs() < 1e-9);
        assert_eq!(e.busy_s, 0.0);
    }

    #[test]
    fn mixed_busy_idle() {
        let m = EnergyModel { idle_fraction: 0.5 };
        let d = SimDevice::new(0, catalog::geforce_gtx_580());
        d.execute(&WorkBatch::conformations(100_000, 10_000));
        let busy = d.clock();
        let horizon = busy * 2.0;
        let e = m.device_energy(&d, horizon);
        let want = 244.0 * busy + 0.5 * 244.0 * busy;
        assert!((e.joules - want).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn horizon_before_busy_panics() {
        let d = SimDevice::new(0, catalog::geforce_gtx_580());
        d.execute(&WorkBatch::conformations(100_000, 10_000));
        EnergyModel::default().device_energy(&d, d.clock() / 2.0);
    }

    #[test]
    fn node_energy_sums_devices() {
        let node = SimNode::new(
            "n",
            catalog::xeon_e3_1220(),
            vec![catalog::tesla_k40c(), catalog::geforce_gtx_580()],
        );
        node.gpu(0).execute(&WorkBatch::conformations(10_000, 10_000));
        node.gpu(1).execute(&WorkBatch::conformations(10_000, 10_000));
        let m = EnergyModel::default();
        let breakdown = m.node_breakdown(&node);
        assert_eq!(breakdown.len(), 3);
        let sum: f64 = breakdown.iter().map(|e| e.joules).sum();
        assert!((sum - m.node_energy(&node)).abs() < 1e-9);
    }

    #[test]
    fn balanced_schedule_uses_less_energy_than_imbalanced() {
        // Same total work; the balanced version finishes sooner, so the
        // idle tail (and its energy) shrinks — the energy argument for the
        // heterogeneous algorithm.
        let m = EnergyModel::default();
        let make = || {
            SimNode::new(
                "n",
                catalog::xeon_e3_1220(),
                vec![catalog::tesla_k40c(), catalog::geforce_gtx_580()],
            )
        };
        let imbalanced = make();
        imbalanced.gpu(0).execute(&WorkBatch::conformations(50_000, 100_000));
        imbalanced.gpu(1).execute(&WorkBatch::conformations(50_000, 100_000));

        let balanced = make();
        balanced.gpu(0).execute(&WorkBatch::conformations(70_000, 100_000));
        balanced.gpu(1).execute(&WorkBatch::conformations(30_000, 100_000));

        assert!(balanced.makespan() < imbalanced.makespan());
        assert!(m.node_energy(&balanced) < m.node_energy(&imbalanced));
    }
}
