//! Property-based tests for the device model.

use gpusim::{catalog, CostModel, DeviceSpec, EnergyModel, SimDevice, WorkBatch};
use proptest::prelude::*;

fn arb_device() -> impl Strategy<Value = DeviceSpec> {
    (0usize..6).prop_map(|i| match i {
        0 => catalog::xeon_e3_1220(),
        1 => catalog::xeon_e5_2620_dual(),
        2 => catalog::tesla_c2075(),
        3 => catalog::geforce_gtx_590(),
        4 => catalog::geforce_gtx_580(),
        _ => catalog::tesla_k40c(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn execution_time_positive_and_finite(
        d in arb_device(),
        items in 1u64..1_000_000,
        pairs in 1u64..10_000_000,
    ) {
        let t = CostModel::default().execution_time(&d, &WorkBatch::conformations(items, pairs));
        prop_assert!(t.is_finite());
        prop_assert!(t > 0.0);
    }

    #[test]
    fn execution_time_monotone_in_items(
        d in arb_device(),
        items in 1u64..100_000,
        pairs in 1u64..1_000_000,
        extra in 1u64..100_000,
    ) {
        let m = CostModel::default();
        let t1 = m.execution_time(&d, &WorkBatch::conformations(items, pairs));
        let t2 = m.execution_time(&d, &WorkBatch::conformations(items + extra, pairs));
        prop_assert!(t2 >= t1, "{t2} < {t1}");
    }

    #[test]
    fn execution_time_monotone_in_pairs(
        d in arb_device(),
        items in 1u64..100_000,
        pairs in 1u64..1_000_000,
        extra in 1u64..1_000_000,
    ) {
        let m = CostModel::default();
        let t1 = m.execution_time(&d, &WorkBatch::conformations(items, pairs));
        let t2 = m.execution_time(&d, &WorkBatch::conformations(items, pairs + extra));
        prop_assert!(t2 >= t1);
    }

    #[test]
    fn occupancy_in_unit_interval(d in arb_device(), items in 0u64..10_000_000) {
        let o = gpusim::occupancy(&d, items);
        prop_assert!((0.0..=1.0).contains(&o));
        let e = gpusim::launch::occupancy_efficiency(&d, items);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&e));
    }

    #[test]
    fn splitting_work_never_slower_on_second_device(
        items in 2u64..100_000,
        pairs in 1_000u64..1_000_000,
    ) {
        // Makespan of an even split across two identical devices ≤ one
        // device doing everything (superlinear anomalies are model bugs).
        let m = CostModel::default();
        let d = catalog::geforce_gtx_580();
        let whole = m.execution_time(&d, &WorkBatch::conformations(items, pairs));
        let half = m.execution_time(&d, &WorkBatch::conformations(items.div_ceil(2), pairs));
        prop_assert!(half <= whole + 1e-12);
    }

    #[test]
    fn device_clock_equals_sum_of_batches(
        seeds in proptest::collection::vec((1u64..5_000, 1u64..100_000), 1..20),
    ) {
        let dev = SimDevice::new(0, catalog::tesla_k40c());
        let mut sum = 0.0;
        for (items, pairs) in seeds {
            sum += dev.execute(&WorkBatch::conformations(items, pairs));
        }
        prop_assert!((dev.clock() - sum).abs() < 1e-12 * sum.max(1.0));
        prop_assert!((dev.stats().busy_s - sum).abs() < 1e-12 * sum.max(1.0));
    }

    #[test]
    fn energy_nonnegative_and_monotone_in_horizon(
        d in arb_device(),
        items in 1u64..100_000,
        slack in 0.0..100.0f64,
    ) {
        let dev = SimDevice::new(0, d);
        dev.execute(&WorkBatch::conformations(items, 10_000));
        let model = EnergyModel::default();
        let e1 = model.device_energy(&dev, dev.clock()).joules;
        let e2 = model.device_energy(&dev, dev.clock() + slack).joules;
        prop_assert!(e1 >= 0.0);
        prop_assert!(e2 >= e1);
    }

    #[test]
    fn launch_config_covers_items(
        d in arb_device(),
        items in 0u64..1_000_000,
        tpb in 1u32..2048,
    ) {
        let lc = gpusim::LaunchConfig::for_items(&d, items, tpb);
        prop_assert!(lc.total_warps() >= items.max(1) || d.warp_size() == 1);
        prop_assert!(lc.threads_per_block >= 1);
    }
}
