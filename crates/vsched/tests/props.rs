//! Property-based tests for the partition functions: every split must
//! conserve work exactly and stay within one item of the ideal shares, for
//! arbitrary item counts and weight vectors — including the degenerate
//! weight vectors `proportional_split` now survives instead of aborting.

use proptest::prelude::*;
use vsched::{equal_split, proportional_split};

fn arb_weights() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..100.0, 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn equal_split_conserves_items(items in 0u64..2_000_000, n in 1usize..64) {
        let s = equal_split(items, n);
        prop_assert_eq!(s.len(), n);
        prop_assert_eq!(s.iter().sum::<u64>(), items);
    }

    #[test]
    fn equal_split_shares_differ_by_at_most_one(items in 0u64..2_000_000, n in 1usize..64) {
        let s = equal_split(items, n);
        let (min, max) = (s.iter().min().unwrap(), s.iter().max().unwrap());
        prop_assert!(max - min <= 1, "{s:?}");
    }

    #[test]
    fn proportional_split_conserves_items(items in 0u64..2_000_000, w in arb_weights()) {
        let s = proportional_split(items, &w);
        prop_assert_eq!(s.len(), w.len());
        prop_assert_eq!(s.iter().sum::<u64>(), items);
    }

    #[test]
    fn proportional_split_within_one_of_exact(items in 0u64..1_000_000, w in arb_weights()) {
        // Largest-remainder rounding: each share is the floor or ceiling of
        // its exact proportional value — never further than one item off.
        let s = proportional_split(items, &w);
        let total: f64 = w.iter().sum();
        if total > 0.0 {
            for (i, (&share, &wi)) in s.iter().zip(&w).enumerate() {
                let exact = items as f64 * wi / total;
                prop_assert!(
                    (share as f64 - exact).abs() <= 1.0,
                    "device {i}: share {share} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn proportional_split_is_deterministic(items in 0u64..1_000_000, w in arb_weights()) {
        prop_assert_eq!(proportional_split(items, &w), proportional_split(items, &w));
    }

    #[test]
    fn degenerate_weights_fall_back_to_equal(
        items in 0u64..1_000_000,
        w in proptest::collection::vec(-100.0f64..=0.0, 1..12),
    ) {
        // All weights non-positive: clamping leaves nothing, so the split
        // must be exactly the equal fallback — never a panic.
        let s = proportional_split(items, &w);
        prop_assert_eq!(s, equal_split(items, w.len()));
    }

    #[test]
    fn negative_weights_behave_as_zero(
        items in 0u64..1_000_000,
        w in proptest::collection::vec(-50.0f64..50.0, 1..12),
    ) {
        let clamped: Vec<f64> = w.iter().map(|x| x.max(0.0)).collect();
        prop_assert_eq!(proportional_split(items, &w), proportional_split(items, &clamped));
    }

    #[test]
    fn zero_weight_devices_get_nothing(items in 0u64..1_000_000, w in arb_weights()) {
        let s = proportional_split(items, &w);
        if w.iter().any(|&x| x > 0.0) {
            for (&share, &wi) in s.iter().zip(&w) {
                if wi == 0.0 {
                    prop_assert_eq!(share, 0, "zero-weight device must be seeded empty");
                }
            }
        }
    }
}
