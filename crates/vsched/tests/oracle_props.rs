//! Property-based tests for the learned cost oracle's numerics
//! (DESIGN.md §15): fits are deterministic (same observation order →
//! bit-identical coefficients), predictions converge to a synthetic
//! device's true throughput, and the cold-start prior reproduces today's
//! frozen Equation 1 split *exactly* — bitwise — when no observations
//! exist.

use gpusim::KernelClass;
use proptest::prelude::*;
use vsched::{proportional_split, shares_from_times, CostOracle, OracleConfig};

const PS: KernelClass = KernelClass::PairSweep;

fn arb_times(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.001f64..100.0, n..n + 1)
}

/// Observation streams: `(device, units, seconds)` with positive finite
/// measurements over a 3-device node.
fn arb_observations() -> impl Strategy<Value = Vec<(usize, f64, f64)>> {
    proptest::collection::vec((0usize..3, 1.0f64..1e6, 0.001f64..1e3), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fits_are_deterministic(obs in arb_observations(), times in arb_times(3)) {
        // Same observation order must produce bit-identical coefficients —
        // the determinism contract the service's cross-campaign sharing
        // relies on.
        let mut a = CostOracle::new(3, OracleConfig::default());
        let mut b = CostOracle::new(3, OracleConfig::default());
        let units = vec![1000.0; 3];
        a.observe_warmup(PS, &times, &units);
        b.observe_warmup(PS, &times, &units);
        for &(d, u, s) in &obs {
            let ua = a.observe(d, PS, u, s);
            let ub = b.observe(d, PS, u, s);
            prop_assert_eq!(ua.predicted.to_bits(), ub.predicted.to_bits());
            prop_assert_eq!(ua.residual.to_bits(), ub.residual.to_bits());
            prop_assert_eq!(ua.refit, ub.refit);
        }
        let wa = a.seed_weights(PS).unwrap();
        let wb = b.seed_weights(PS).unwrap();
        for (x, y) in wa.iter().zip(&wb) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "coefficients diverged");
        }
        for (((da, ca), fa), ((db, cb), fb)) in a.fits().iter().zip(b.fits().iter()) {
            prop_assert_eq!((da, ca), (db, cb));
            prop_assert_eq!(fa.rate.to_bits(), fb.rate.to_bits());
            prop_assert_eq!(fa.observations, fb.observations);
            prop_assert_eq!(fa.refits, fb.refits);
        }
    }

    #[test]
    fn predictions_converge_to_true_throughput(
        rate in 1.0f64..1e6,
        units in 100.0f64..1e5,
        prior_rate in 1.0f64..1e6,
    ) {
        // A synthetic device with constant true throughput `rate`: after N
        // noise-free observations the decayed fit must predict within 1%,
        // regardless of how wrong the warm-up prior was.
        let mut o = CostOracle::new(1, OracleConfig::default());
        o.observe_warmup(PS, &[1.0], &[prior_rate]);
        // decay 0.25 halves prior error every ~2.4 obs; drift detection
        // snaps large errors immediately. 40 observations is plenty.
        for _ in 0..40 {
            o.observe(0, PS, units, units / rate);
        }
        let predicted = o.predict_seconds(0, PS, units).unwrap();
        let truth = units / rate;
        prop_assert!(
            (predicted - truth).abs() <= 0.01 * truth,
            "predicted {predicted} vs true {truth} (prior rate {prior_rate})"
        );
    }

    #[test]
    fn cold_start_split_is_exactly_equation_one(
        times in arb_times(4),
        items in 1u64..2_000_000,
    ) {
        // Acceptance criterion: with zero observations the oracle's split
        // equals today's `warmup_times` + `proportional_split` output
        // exactly. The weights are required to be bit-identical, so the
        // integer split over them is identical too.
        let mut o = CostOracle::new(4, OracleConfig::default());
        o.observe_warmup(PS, &times, &[1000.0; 4]);
        let w = o.seed_weights(PS).unwrap();
        let frozen = shares_from_times(&times);
        for (a, b) in w.iter().zip(&frozen) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "cold-start weight drifted from Eq. 1");
        }
        prop_assert_eq!(proportional_split(items, &w), proportional_split(items, &frozen));
    }

    #[test]
    fn rates_stay_finite_and_positive(obs in arb_observations()) {
        let mut o = CostOracle::new(3, OracleConfig::default());
        for &(d, u, s) in &obs {
            let up = o.observe(d, PS, u, s);
            prop_assert!(up.predicted.is_finite() && up.predicted > 0.0);
            prop_assert!(up.residual.is_finite());
        }
        for (_, f) in o.fits() {
            prop_assert!(f.rate.is_finite() && f.rate > 0.0, "rate {}", f.rate);
        }
    }
}
