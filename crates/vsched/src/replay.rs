//! Trace replay: schedule a recorded metaheuristic batch stream onto a
//! simulated node.
//!
//! The engine in `metaheur` is deterministic, so the *search trajectory*
//! (and therefore the sequence of scoring-batch sizes) is identical no
//! matter which devices execute the scoring. That lets the experiment
//! harness run the search once, record its [`metaheur::RunResult::batch_trace`],
//! and then replay the same workload under every scheduling strategy to
//! obtain virtual execution times — the mechanism behind Tables 6–9.
//!
//! Replay semantics follow the paper's execution model: devices run
//! *independent* executions of their conformation shares (§3.3 "Parallel
//! runs do not incur any communication overhead"), so there is no
//! cross-device synchronization until the final reduction; the slowest
//! device determines overall time.

use crate::deque::ChunkDeque;
use crate::oracle::{CostOracle, OracleConfig};
use crate::partition::proportional_split;
use crate::runtime::{drain_deques, StealConfig};
use crate::strategy::Strategy;
use gpusim::{EnergyModel, KernelClass, SimDevice, WorkBatch, WorkProfile};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vstrace::{Event, Trace};

/// Outcome of replaying one workload under one strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduleReport {
    pub strategy_label: String,
    pub device_names: Vec<String>,
    /// Final virtual clock per device (seconds).
    pub device_times: Vec<f64>,
    /// Overall execution time: the slowest device's clock.
    pub makespan: f64,
    /// Normalized static shares used (None for CPU-only / dynamic).
    pub shares: Option<Vec<f64>>,
    /// Total conformations scheduled.
    pub total_items: u64,
    /// Whole-configuration energy to solution (joules): every device in
    /// the configuration — including the host CPU — is powered for the
    /// whole makespan, busy or idle ([`gpusim::EnergyModel`]).
    pub energy_joules: f64,
}

/// Replay `trace` (batch sizes, in order) under `strategy`.
///
/// Device clocks are reset first, so the report's `makespan` is the full
/// cost of this workload, including the heterogeneous strategy's warm-up.
///
/// ```
/// use std::sync::Arc;
/// use gpusim::{catalog, SimDevice};
/// use vsched::{schedule_trace, Strategy, WarmupConfig};
///
/// let cpu = Arc::new(SimDevice::new(0, catalog::xeon_e3_1220()));
/// let gpus = vec![
///     Arc::new(SimDevice::new(1, catalog::tesla_k40c())),
///     Arc::new(SimDevice::new(2, catalog::geforce_gtx_580())),
/// ];
/// // 33 generations of 2048 conformations, 45x3264 pairs each.
/// let trace: Vec<u64> = std::iter::repeat(2048).take(33).collect();
///
/// let hom = schedule_trace(&cpu, &gpus, &trace, 45 * 3264, Strategy::HomogeneousSplit);
/// let het = schedule_trace(&cpu, &gpus, &trace, 45 * 3264,
///     Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() });
/// // Equation 1's proportional split beats the equal split on Kepler+Fermi.
/// assert!(het.makespan < hom.makespan);
/// ```
pub fn schedule_trace(
    cpu: &Arc<SimDevice>,
    gpus: &[Arc<SimDevice>],
    trace: &[u64],
    pairs_per_item: u64,
    strategy: Strategy,
) -> ScheduleReport {
    cpu.reset();
    for g in gpus {
        g.reset();
    }
    let total_items: u64 = trace.iter().sum();

    match strategy {
        Strategy::CpuOnly => {
            for &items in trace {
                cpu.execute(&WorkBatch::conformations(items, pairs_per_item));
            }
            ScheduleReport {
                strategy_label: strategy.label().into(),
                device_names: vec![cpu.spec().name.clone()],
                device_times: vec![cpu.clock()],
                makespan: cpu.clock(),
                shares: None,
                total_items,
                energy_joules: config_energy(cpu, gpus, cpu.clock()),
            }
        }
        Strategy::HomogeneousSplit => {
            assert!(!gpus.is_empty(), "GPU strategies need GPUs");
            let weights = vec![1.0; gpus.len()];
            for &items in trace {
                execute_split(gpus, items, &weights, pairs_per_item);
            }
            finish_gpu_report(strategy, cpu, gpus, Some(normalize(&weights)), total_items)
        }
        Strategy::HeterogeneousSplit { warmup } => {
            assert!(!gpus.is_empty(), "GPU strategies need GPUs");
            // Warm-up phase (§3.3): the first few iterations of the actual
            // run execute under the equal split while their per-device
            // times are measured; Equation 1 then fixes the proportional
            // split for the remainder. The warm-up work counts toward the
            // job — it is the start of the real execution.
            let warm_iters = warmup.iterations.min(trace.len());
            let equal = vec![1.0; gpus.len()];
            let mut measured = vec![0.0f64; gpus.len()];
            for &items in &trace[..warm_iters] {
                let shares = proportional_split(items, &equal);
                for ((g, &share), t) in gpus.iter().zip(&shares).zip(measured.iter_mut()) {
                    if share > 0 {
                        *t += g.execute(&WorkBatch::conformations(share, pairs_per_item));
                    }
                }
            }
            let weights = if measured.iter().all(|&t| t > 0.0) {
                crate::warmup::shares_from_times(&measured)
            } else {
                equal
            };
            for &items in &trace[warm_iters..] {
                execute_split(gpus, items, &weights, pairs_per_item);
            }
            finish_gpu_report(strategy, cpu, gpus, Some(normalize(&weights)), total_items)
        }
        Strategy::AdaptiveSplit { rebalance_every, .. } => {
            assert!(!gpus.is_empty(), "GPU strategies need GPUs");
            let every = rebalance_every.max(1);
            let mut weights = vec![1.0; gpus.len()];
            let mut window_items = vec![0u64; gpus.len()];
            let mut window_times = vec![0.0f64; gpus.len()];
            let mut in_window = 0usize;
            for &items in trace {
                let shares = proportional_split(items, &weights);
                for ((g, &share), (wi, wt)) in gpus
                    .iter()
                    .zip(&shares)
                    .zip(window_items.iter_mut().zip(window_times.iter_mut()))
                {
                    if share > 0 {
                        *wt += g.execute(&WorkBatch::conformations(share, pairs_per_item));
                        *wi += share;
                    }
                }
                in_window += 1;
                if in_window >= every {
                    // Re-estimate weights from the window's measured
                    // throughputs (items per second).
                    if window_times.iter().all(|&t| t > 0.0) {
                        weights = window_items
                            .iter()
                            .zip(&window_times)
                            .map(|(&i, &t)| i as f64 / t)
                            .collect();
                    }
                    window_items.iter_mut().for_each(|x| *x = 0);
                    window_times.iter_mut().for_each(|x| *x = 0.0);
                    in_window = 0;
                }
            }
            finish_gpu_report(strategy, cpu, gpus, Some(normalize(&weights)), total_items)
        }
        Strategy::DynamicQueue { chunk } => {
            assert!(!gpus.is_empty(), "GPU strategies need GPUs");
            let chunk = chunk.max(1);
            for &items in trace {
                let mut remaining = items;
                while remaining > 0 {
                    let take = chunk.min(remaining);
                    remaining -= take;
                    // Self-scheduling: the device that is free first takes
                    // the next chunk.
                    let g = gpus
                        .iter()
                        // PANICS: inputs are non-empty by caller contract and scores/clocks are finite.
                        .min_by(|a, b| a.clock().partial_cmp(&b.clock()).unwrap())
                        .expect("non-empty");
                    g.execute(&WorkBatch::conformations(take, pairs_per_item));
                }
            }
            finish_gpu_report(strategy, cpu, gpus, None, total_items)
        }
        Strategy::GuidedQueue { divisor } => {
            assert!(!gpus.is_empty(), "GPU strategies need GPUs");
            let k = divisor.max(1);
            let n = gpus.len() as u64;
            for &items in trace {
                let mut remaining = items;
                while remaining > 0 {
                    // GSS chunk: a 1/(k·n) share of what's left, so chunks
                    // start large (occupancy) and shrink toward the tail
                    // (balance).
                    let take = (remaining / (k * n)).max(1).min(remaining);
                    remaining -= take;
                    let g = gpus
                        .iter()
                        // PANICS: inputs are non-empty by caller contract and scores/clocks are finite.
                        .min_by(|a, b| a.clock().partial_cmp(&b.clock()).unwrap())
                        .expect("non-empty");
                    g.execute(&WorkBatch::conformations(take, pairs_per_item));
                }
            }
            finish_gpu_report(strategy, cpu, gpus, None, total_items)
        }
        Strategy::WorkSteal { warmup, divisor } => {
            assert!(!gpus.is_empty(), "GPU strategies need GPUs");
            // Same warm-up as the heterogeneous algorithm; the Equation 1
            // weights then seed per-device deques every batch instead of
            // freezing a split — the runtime's drain resolves claims and
            // steals in virtual-time order (DESIGN.md §10).
            let warm_iters = warmup.iterations.min(trace.len());
            let equal = vec![1.0; gpus.len()];
            let mut measured = vec![0.0f64; gpus.len()];
            for &items in &trace[..warm_iters] {
                let shares = proportional_split(items, &equal);
                for ((g, &share), t) in gpus.iter().zip(&shares).zip(measured.iter_mut()) {
                    if share > 0 {
                        *t += g.execute(&WorkBatch::conformations(share, pairs_per_item));
                    }
                }
            }
            let weights = if measured.iter().all(|&t| t > 0.0) {
                crate::warmup::shares_from_times(&measured)
            } else {
                equal
            };
            let cfg = StealConfig { divisor: divisor.max(1), min_chunk: 0 };
            let silent = Trace::disabled();
            for &items in &trace[warm_iters..] {
                let deques = seed_deques(items, &weights);
                drain_deques(
                    gpus,
                    &deques,
                    &cfg,
                    WorkProfile::pairs(pairs_per_item),
                    None,
                    &silent,
                );
            }
            finish_gpu_report(strategy, cpu, gpus, Some(normalize(&weights)), total_items)
        }
        Strategy::Oracle { .. } => {
            // The oracle path is the drift engine with no faults: warm-up
            // becomes the cold-start prior, every batch re-seeds from the
            // current fits and feeds its outcome back.
            schedule_trace_drift(
                cpu,
                gpus,
                trace,
                pairs_per_item,
                strategy,
                &[],
                &Trace::disabled(),
                None,
            )
        }
    }
}

/// Contiguous per-device deques proportional to `weights` (the
/// work-stealing replay's per-batch seeding step).
fn seed_deques(items: u64, weights: &[f64]) -> Vec<ChunkDeque> {
    let shares = proportional_split(items, weights);
    let mut deques = Vec::with_capacity(shares.len());
    let mut offset = 0u32;
    for &share in &shares {
        let hi = offset + share as u32;
        deques.push(ChunkDeque::new(offset, hi));
        offset = hi;
    }
    deques
}

fn execute_split(gpus: &[Arc<SimDevice>], items: u64, weights: &[f64], pairs_per_item: u64) {
    let shares = proportional_split(items, weights);
    for (g, &share) in gpus.iter().zip(&shares) {
        if share > 0 {
            g.execute(&WorkBatch::conformations(share, pairs_per_item));
        }
    }
}

/// Replay a trace under a *static* split while recording an execution
/// timeline (Gantt view) — the introspection companion to
/// [`schedule_trace`]. Supports the CPU-only, homogeneous and
/// heterogeneous strategies; the heterogeneous warm-up phase is recorded
/// too.
pub fn schedule_trace_timeline(
    cpu: &Arc<SimDevice>,
    gpus: &[Arc<SimDevice>],
    trace: &[u64],
    pairs_per_item: u64,
    strategy: Strategy,
) -> (ScheduleReport, gpusim::Timeline) {
    cpu.reset();
    for g in gpus {
        g.reset();
    }
    let tl = gpusim::Timeline::new();
    let total_items: u64 = trace.iter().sum();

    let report = match strategy {
        Strategy::CpuOnly => {
            for &items in trace {
                tl.record(cpu, &WorkBatch::conformations(items, pairs_per_item));
            }
            ScheduleReport {
                strategy_label: strategy.label().into(),
                device_names: vec![cpu.spec().name.clone()],
                device_times: vec![cpu.clock()],
                makespan: cpu.clock(),
                shares: None,
                total_items,
                energy_joules: config_energy(cpu, gpus, cpu.clock()),
            }
        }
        Strategy::HomogeneousSplit | Strategy::HeterogeneousSplit { .. } => {
            assert!(!gpus.is_empty(), "GPU strategies need GPUs");
            let (warm_iters, mut weights) = match strategy {
                Strategy::HeterogeneousSplit { warmup } => {
                    (warmup.iterations.min(trace.len()), vec![1.0; gpus.len()])
                }
                _ => (0, vec![1.0; gpus.len()]),
            };
            let mut measured = vec![0.0f64; gpus.len()];
            for (bi, &items) in trace.iter().enumerate() {
                if bi == warm_iters && warm_iters > 0 && measured.iter().all(|&t| t > 0.0) {
                    weights = crate::warmup::shares_from_times(&measured);
                }
                let shares = proportional_split(items, &weights);
                for ((g, &share), t) in gpus.iter().zip(&shares).zip(measured.iter_mut()) {
                    if share > 0 {
                        let dt = tl.record(g, &WorkBatch::conformations(share, pairs_per_item));
                        if bi < warm_iters {
                            *t += dt;
                        }
                    }
                }
            }
            finish_gpu_report(strategy, cpu, gpus, Some(normalize(&weights)), total_items)
        }
        _ => panic!("timeline replay supports CpuOnly / Homogeneous / Heterogeneous"),
    };
    (report, tl)
}

/// Replay `trace` under `strategy` with a mid-run degradation: at batch
/// index `onset_batch` (before it executes), each GPU's future work is
/// slowed by the matching factor in `gpu_slowdowns` (1.0 = healthy; see
/// [`gpusim::SimDevice::set_slowdown`]). This is the virtual-time model of
/// a device that throttles or degrades *after* the warm-up froze its
/// Equation 1 weight — the scenario work stealing exists to heal.
///
/// Steals and device activity are emitted to `events`
/// ([`vstrace::Event::JobMigrated`] per steal under
/// [`Strategy::WorkSteal`]); pass [`Trace::disabled`] when only the report
/// matters.
///
/// # Panics
/// Panics if `gpu_slowdowns.len() != gpus.len()`, on
/// [`Strategy::AdaptiveSplit`] (re-measuring mid-run is the ablation this
/// harness deliberately excludes so onset semantics stay comparable), or
/// if a GPU strategy is given no GPUs.
#[allow(clippy::too_many_arguments)]
pub fn schedule_trace_faulty(
    cpu: &Arc<SimDevice>,
    gpus: &[Arc<SimDevice>],
    trace: &[u64],
    pairs_per_item: u64,
    strategy: Strategy,
    gpu_slowdowns: &[f64],
    onset_batch: usize,
    events: &Trace,
) -> ScheduleReport {
    assert_eq!(gpu_slowdowns.len(), gpus.len(), "one slowdown factor per GPU");
    schedule_trace_drift(
        cpu,
        gpus,
        trace,
        pairs_per_item,
        strategy,
        &[(onset_batch, gpu_slowdowns.to_vec())],
        events,
        None,
    )
}

/// Replay `trace` under `strategy` through a sequence of degradation
/// *phases*: before batch `phases[k].0` executes, every GPU's slowdown is
/// set to the matching factor in `phases[k].1` (1.0 restores nominal
/// speed, so a slow-then-recover drift scenario is two phases). This
/// generalizes [`schedule_trace_faulty`] — a single phase *is* that
/// function — and is the harness behind the `sched_snapshot` drift
/// scenarios.
///
/// For [`Strategy::Oracle`], `oracle` optionally carries learned state
/// across calls (the campaign service's cross-tenant warm start): a warm
/// oracle skips the warm-up phase entirely and seeds from its fits at
/// batch 0, and every observation made here updates the caller's model.
/// Pass `None` for a self-contained run (fresh cold-start oracle). Other
/// strategies ignore the parameter.
///
/// Emits the same events as [`schedule_trace_faulty`] plus
/// [`Event::ModelUpdated`] per oracle observation and an `oracle_reseed`
/// counter per seed query.
///
/// # Panics
/// Panics if any phase's factor list length differs from `gpus.len()`, on
/// [`Strategy::AdaptiveSplit`] (re-measuring mid-run is the ablation this
/// harness deliberately excludes so onset semantics stay comparable), if a
/// GPU strategy is given no GPUs, or if a passed-in oracle was built for a
/// different device count.
#[allow(clippy::too_many_arguments)]
pub fn schedule_trace_drift(
    cpu: &Arc<SimDevice>,
    gpus: &[Arc<SimDevice>],
    trace: &[u64],
    pairs_per_item: u64,
    strategy: Strategy,
    phases: &[(usize, Vec<f64>)],
    events: &Trace,
    oracle: Option<&mut CostOracle>,
) -> ScheduleReport {
    for (_, factors) in phases {
        assert_eq!(factors.len(), gpus.len(), "one slowdown factor per GPU per phase");
    }
    cpu.reset();
    for g in gpus {
        g.reset(); // also restores nominal slowdown from any prior replay
    }
    let total_items: u64 = trace.iter().sum();
    let n = gpus.len();

    // Replay scores in the dense pair-sweep regime; the oracle keys its
    // fits by kernel class, so this is the class every observation lands in.
    const CLASS: KernelClass = KernelClass::PairSweep;

    // Resolve the oracle for Strategy::Oracle: the caller's (shared,
    // cross-campaign) model when given, else a fresh cold-start one.
    let mut local_oracle = None;
    let mut oracle = match (matches!(strategy, Strategy::Oracle { .. }), oracle) {
        (false, _) => None,
        (true, Some(o)) => {
            assert_eq!(o.n_devices(), n, "oracle device count must match the GPUs");
            Some(o)
        }
        (true, None) => {
            Some(local_oracle.insert(CostOracle::new(n.max(1), OracleConfig::default())))
        }
    };

    /// Incremental per-strategy state, advanced one batch at a time so the
    /// fault onset lands exactly where the caller asked.
    enum St {
        Cpu,
        /// Static splits: equal from the start, or equal-while-warming
        /// then frozen Equation 1 weights.
        Split {
            warm_left: usize,
            measured: Vec<f64>,
            weights: Vec<f64>,
        },
        /// Work stealing: same warm-up, then per-batch seeded deque drain.
        Steal {
            warm_left: usize,
            measured: Vec<f64>,
            weights: Vec<f64>,
            cfg: StealConfig,
        },
        /// The learned oracle: warm-up measurements (times and executed
        /// units) become the cold-start prior, then every batch re-seeds
        /// the deques from the current fits and feeds its outcome back.
        Oracle {
            warm_left: usize,
            measured: Vec<f64>,
            units: Vec<f64>,
            last_weights: Vec<f64>,
            cfg: StealConfig,
        },
        /// Self-scheduling: fixed chunks (`Some`) or guided (`None`).
        Greedy {
            fixed: Option<u64>,
            divisor: u64,
        },
    }

    let mut st = match strategy {
        Strategy::CpuOnly => St::Cpu,
        Strategy::HomogeneousSplit => {
            St::Split { warm_left: 0, measured: Vec::new(), weights: vec![1.0; n] }
        }
        Strategy::HeterogeneousSplit { warmup } => St::Split {
            warm_left: warmup.iterations.max(1),
            measured: vec![0.0; n],
            weights: vec![1.0; n],
        },
        Strategy::WorkSteal { warmup, divisor } => St::Steal {
            warm_left: warmup.iterations.max(1),
            measured: vec![0.0; n],
            weights: vec![1.0; n],
            cfg: StealConfig { divisor: divisor.max(1), min_chunk: 0 },
        },
        Strategy::Oracle { warmup, divisor } => St::Oracle {
            // A warm oracle (prior or full fits from an earlier campaign)
            // skips the warm-up: its knowledge replaces the measurements.
            warm_left: match &oracle {
                // PANICS: the oracle option was just populated for Strategy::Oracle above.
                Some(o) if o.is_warm(CLASS) => 0,
                _ => warmup.iterations.max(1),
            },
            measured: vec![0.0; n],
            units: vec![0.0; n],
            last_weights: vec![1.0; n],
            cfg: StealConfig { divisor: divisor.max(1), min_chunk: 0 },
        },
        Strategy::DynamicQueue { chunk } => St::Greedy { fixed: Some(chunk.max(1)), divisor: 1 },
        Strategy::GuidedQueue { divisor } => St::Greedy { fixed: None, divisor: divisor.max(1) },
        Strategy::AdaptiveSplit { .. } => {
            panic!("faulty replay excludes the adaptive ablation (it re-measures mid-run)")
        }
    };
    if !matches!(st, St::Cpu) {
        assert!(!gpus.is_empty(), "GPU strategies need GPUs");
    }

    // Equal-split warm-up batch shared by the Split and Steal states.
    let warm_batch = |items: u64, measured: &mut [f64]| {
        let shares = proportional_split(items, &vec![1.0; n]);
        for ((g, &share), t) in gpus.iter().zip(&shares).zip(measured.iter_mut()) {
            if share > 0 {
                *t += g.execute(&WorkBatch::conformations(share, pairs_per_item));
            }
        }
    };

    for (bi, &items) in trace.iter().enumerate() {
        for (onset, factors) in phases {
            if *onset == bi {
                for (g, &f) in gpus.iter().zip(factors) {
                    if f != 1.0 || g.slowdown() != 1.0 {
                        g.set_slowdown(f);
                    }
                }
            }
        }
        match &mut st {
            St::Cpu => {
                cpu.execute(&WorkBatch::conformations(items, pairs_per_item));
            }
            St::Split { warm_left, measured, weights } => {
                if *warm_left > 0 {
                    warm_batch(items, measured);
                    *warm_left -= 1;
                    if *warm_left == 0 && measured.iter().all(|&t| t > 0.0) {
                        *weights = crate::warmup::shares_from_times(measured);
                    }
                } else {
                    execute_split(gpus, items, weights, pairs_per_item);
                }
            }
            St::Steal { warm_left, measured, weights, cfg } => {
                if *warm_left > 0 {
                    warm_batch(items, measured);
                    *warm_left -= 1;
                    if *warm_left == 0 && measured.iter().all(|&t| t > 0.0) {
                        *weights = crate::warmup::shares_from_times(measured);
                    }
                } else {
                    let deques = seed_deques(items, weights);
                    drain_deques(
                        gpus,
                        &deques,
                        cfg,
                        WorkProfile::pairs(pairs_per_item),
                        None,
                        events,
                    );
                }
            }
            St::Oracle { warm_left, measured, units, last_weights, cfg } => {
                // PANICS: the oracle option is always populated for Strategy::Oracle.
                let oracle = oracle.as_mut().expect("oracle state for Strategy::Oracle");
                if *warm_left > 0 {
                    let shares = proportional_split(items, &vec![1.0; n]);
                    for (i, (g, &share)) in gpus.iter().zip(&shares).enumerate() {
                        if share > 0 {
                            measured[i] +=
                                g.execute(&WorkBatch::conformations(share, pairs_per_item));
                            units[i] += (share * pairs_per_item) as f64;
                        }
                    }
                    *warm_left -= 1;
                    if *warm_left == 0
                        && measured.iter().all(|&t| t > 0.0)
                        && units.iter().all(|&u| u > 0.0)
                    {
                        oracle.observe_warmup(CLASS, measured, units);
                    }
                } else {
                    let weights = oracle.seed_weights(CLASS).unwrap_or_else(|| vec![1.0; n]);
                    if events.is_enabled() {
                        events.emit(Event::Counter {
                            name: "oracle_reseed",
                            value: oracle.reseeds() as f64,
                        });
                    }
                    let clocks_before: Vec<f64> = gpus.iter().map(|g| g.clock()).collect();
                    let deques = seed_deques(items, &weights);
                    let (claims, _) = drain_deques(
                        gpus,
                        &deques,
                        cfg,
                        WorkProfile::pairs(pairs_per_item),
                        None,
                        events,
                    );
                    let mut items_per = vec![0u64; n];
                    for c in &claims {
                        items_per[c.device] += u64::from(c.hi - c.lo);
                    }
                    for (i, g) in gpus.iter().enumerate() {
                        let dt = g.clock() - clocks_before[i];
                        if items_per[i] > 0 && dt > 0.0 {
                            let u = oracle.observe(
                                i,
                                CLASS,
                                (items_per[i] * pairs_per_item) as f64,
                                dt,
                            );
                            if events.is_enabled() {
                                events.emit(Event::ModelUpdated {
                                    device: g.id() as u32,
                                    class: CLASS.ordinal(),
                                    predicted: u.predicted,
                                    observed: u.observed,
                                    residual: u.residual,
                                    refit: u.refit,
                                });
                            }
                        }
                    }
                    *last_weights = weights;
                }
            }
            St::Greedy { fixed, divisor } => {
                let mut remaining = items;
                while remaining > 0 {
                    let take = match fixed {
                        Some(chunk) => (*chunk).min(remaining),
                        None => (remaining / (*divisor * n as u64)).max(1).min(remaining),
                    };
                    remaining -= take;
                    let g = gpus
                        .iter()
                        // PANICS: gpus is non-empty for GPU strategies and clocks are finite.
                        .min_by(|a, b| a.clock().partial_cmp(&b.clock()).unwrap())
                        .expect("non-empty");
                    g.execute(&WorkBatch::conformations(take, pairs_per_item));
                }
            }
        }
    }

    match st {
        St::Cpu => ScheduleReport {
            strategy_label: strategy.label().into(),
            device_names: vec![cpu.spec().name.clone()],
            device_times: vec![cpu.clock()],
            makespan: cpu.clock(),
            shares: None,
            total_items,
            energy_joules: config_energy(cpu, gpus, cpu.clock()),
        },
        St::Split { weights, .. } | St::Steal { weights, .. } => {
            finish_gpu_report(strategy, cpu, gpus, Some(normalize(&weights)), total_items)
        }
        St::Oracle { last_weights, .. } => {
            finish_gpu_report(strategy, cpu, gpus, Some(normalize(&last_weights)), total_items)
        }
        St::Greedy { .. } => finish_gpu_report(strategy, cpu, gpus, None, total_items),
    }
}

fn normalize(w: &[f64]) -> Vec<f64> {
    let s: f64 = w.iter().sum();
    w.iter().map(|x| x / s).collect()
}

fn finish_gpu_report(
    strategy: Strategy,
    cpu: &Arc<SimDevice>,
    gpus: &[Arc<SimDevice>],
    shares: Option<Vec<f64>>,
    total_items: u64,
) -> ScheduleReport {
    let device_times: Vec<f64> = gpus.iter().map(|g| g.clock()).collect();
    let makespan = device_times.iter().cloned().fold(0.0, f64::max);
    ScheduleReport {
        strategy_label: strategy.label().into(),
        device_names: gpus.iter().map(|g| g.spec().name.clone()).collect(),
        device_times,
        makespan,
        shares,
        total_items,
        energy_joules: config_energy(cpu, gpus, makespan),
    }
}

/// Whole-configuration energy: CPU plus every listed GPU, powered for the
/// full makespan.
fn config_energy(cpu: &Arc<SimDevice>, gpus: &[Arc<SimDevice>], makespan: f64) -> f64 {
    let model = EnergyModel::default();
    let mut e = model.device_energy(cpu, makespan).joules;
    for g in gpus {
        e += model.device_energy(g, makespan).joules;
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warmup::WarmupConfig;
    use gpusim::catalog;

    const PAIRS: u64 = 45 * 3264;

    fn hertz() -> (Arc<SimDevice>, Vec<Arc<SimDevice>>) {
        (
            Arc::new(SimDevice::new(0, catalog::xeon_e3_1220())),
            vec![
                Arc::new(SimDevice::new(1, catalog::tesla_k40c())),
                Arc::new(SimDevice::new(2, catalog::geforce_gtx_580())),
            ],
        )
    }

    /// A plausible M1-like trace: init + 32 generations of 64×32 spots —
    /// big enough per batch to put the GPUs in the saturated-occupancy
    /// regime the paper's workloads run in.
    fn trace() -> Vec<u64> {
        std::iter::repeat_n(64 * 32, 33).collect()
    }

    #[test]
    fn cpu_only_uses_cpu() {
        let (cpu, gpus) = hertz();
        let r = schedule_trace(&cpu, &gpus, &trace(), PAIRS, Strategy::CpuOnly);
        assert_eq!(r.device_times.len(), 1);
        assert!(r.makespan > 0.0);
        assert_eq!(gpus[0].clock(), 0.0);
        assert_eq!(r.total_items, 33 * 2048);
    }

    #[test]
    fn gpu_strategies_beat_cpu_by_a_lot() {
        let (cpu, gpus) = hertz();
        let t_cpu = schedule_trace(&cpu, &gpus, &trace(), PAIRS, Strategy::CpuOnly).makespan;
        let t_hom =
            schedule_trace(&cpu, &gpus, &trace(), PAIRS, Strategy::HomogeneousSplit).makespan;
        let speedup = t_cpu / t_hom;
        assert!(speedup > 10.0, "GPU speedup only {speedup}");
    }

    #[test]
    fn heterogeneous_beats_homogeneous_on_hertz() {
        // The paper's headline result: up to 1.56× on the Kepler+Fermi node.
        let (cpu, gpus) = hertz();
        let t_hom =
            schedule_trace(&cpu, &gpus, &trace(), PAIRS, Strategy::HomogeneousSplit).makespan;
        let t_het = schedule_trace(
            &cpu,
            &gpus,
            &trace(),
            PAIRS,
            Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
        )
        .makespan;
        let gain = t_hom / t_het;
        assert!(gain > 1.25, "heterogeneous gain only {gain}");
        assert!(gain < 2.0, "gain suspiciously large: {gain}");
    }

    #[test]
    fn homogeneous_split_bottlenecked_by_slow_gpu() {
        let (cpu, gpus) = hertz();
        let r = schedule_trace(&cpu, &gpus, &trace(), PAIRS, Strategy::HomogeneousSplit);
        // GTX 580 (index 1) is slower and determines the makespan.
        assert!(r.device_times[1] > r.device_times[0]);
        assert_eq!(r.makespan, r.device_times[1]);
    }

    #[test]
    fn heterogeneous_balances_completion_times() {
        // Long run: the warm-up's equal-split imbalance amortizes away and
        // the Equation 1 split keeps both devices finishing together.
        let (cpu, gpus) = hertz();
        let long_trace: Vec<u64> = std::iter::repeat_n(64 * 32, 200).collect();
        let r = schedule_trace(
            &cpu,
            &gpus,
            &long_trace,
            PAIRS,
            Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
        );
        let imbalance = (r.device_times[0] - r.device_times[1]).abs() / r.makespan;
        assert!(imbalance < 0.10, "imbalance {imbalance}: {:?}", r.device_times);
    }

    #[test]
    fn heterogeneous_shares_sum_to_one() {
        let (cpu, gpus) = hertz();
        let r = schedule_trace(
            &cpu,
            &gpus,
            &trace(),
            PAIRS,
            Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
        );
        let s = r.shares.unwrap();
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(s[0] > s[1], "K40c share must dominate: {s:?}");
    }

    #[test]
    fn dynamic_queue_close_to_heterogeneous() {
        let (cpu, gpus) = hertz();
        let t_het = schedule_trace(
            &cpu,
            &gpus,
            &trace(),
            PAIRS,
            Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
        )
        .makespan;
        let t_dyn =
            schedule_trace(&cpu, &gpus, &trace(), PAIRS, Strategy::DynamicQueue { chunk: 512 })
                .makespan;
        // Dynamic self-scheduling also balances, but pays an occupancy
        // penalty for its smaller kernels (an ablation finding: static
        // Eq. 1 splits keep launches large).
        assert!((t_dyn / t_het) < 1.4, "dynamic {t_dyn} vs het {t_het}");
    }

    #[test]
    fn replay_resets_clocks() {
        let (cpu, gpus) = hertz();
        gpus[0].advance(100.0);
        let r = schedule_trace(&cpu, &gpus, &[64], PAIRS, Strategy::HomogeneousSplit);
        assert!(r.makespan < 100.0, "stale clock leaked into report");
    }

    #[test]
    fn identical_gpus_make_strategies_equivalent() {
        // On a truly homogeneous pair the heterogeneous algorithm's split
        // converges to the equal split (paper §5: "minimal differences" on
        // near-identical Fermi cards).
        let cpu = Arc::new(SimDevice::new(0, catalog::xeon_e3_1220()));
        let gpus = vec![
            Arc::new(SimDevice::new(1, catalog::geforce_gtx_590())),
            Arc::new(SimDevice::new(2, catalog::geforce_gtx_590())),
        ];
        let t_hom =
            schedule_trace(&cpu, &gpus, &trace(), PAIRS, Strategy::HomogeneousSplit).makespan;
        let t_het = schedule_trace(
            &cpu,
            &gpus,
            &trace(),
            PAIRS,
            Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
        )
        .makespan;
        let gain = t_hom / t_het;
        assert!((0.95..1.05).contains(&gain), "gain {gain} should be ≈1");
    }

    #[test]
    fn adaptive_matches_heterogeneous_on_stable_devices() {
        // With device speeds constant, re-measuring converges to the same
        // split as the one-shot warm-up; makespans agree within a few %.
        let (cpu, gpus) = hertz();
        let t_het = schedule_trace(
            &cpu,
            &gpus,
            &trace(),
            PAIRS,
            Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
        )
        .makespan;
        let t_ad = schedule_trace(
            &cpu,
            &gpus,
            &trace(),
            PAIRS,
            Strategy::AdaptiveSplit { warmup: WarmupConfig::default(), rebalance_every: 4 },
        )
        .makespan;
        let ratio = t_ad / t_het;
        assert!((0.9..1.1).contains(&ratio), "adaptive {t_ad} vs het {t_het}");
    }

    #[test]
    fn adaptive_shares_favor_fast_device() {
        let (cpu, gpus) = hertz();
        let r = schedule_trace(
            &cpu,
            &gpus,
            &trace(),
            PAIRS,
            Strategy::AdaptiveSplit { warmup: WarmupConfig::default(), rebalance_every: 4 },
        );
        let s = r.shares.unwrap();
        assert!(s[0] > s[1], "K40c share must dominate after re-measurement: {s:?}");
    }

    #[test]
    fn energy_reported_and_sane() {
        let (cpu, gpus) = hertz();
        let r_cpu = schedule_trace(&cpu, &gpus, &trace(), PAIRS, Strategy::CpuOnly);
        let r_het = schedule_trace(
            &cpu,
            &gpus,
            &trace(),
            PAIRS,
            Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
        );
        assert!(r_cpu.energy_joules > 0.0 && r_het.energy_joules > 0.0);
        // The paper's energy argument: the GPU configuration finishes so
        // much sooner that whole-node energy-to-solution plummets even
        // though the GPUs burn more power while busy.
        assert!(
            r_het.energy_joules < r_cpu.energy_joules / 5.0,
            "GPU energy {} vs CPU energy {}",
            r_het.energy_joules,
            r_cpu.energy_joules
        );
    }

    #[test]
    fn heterogeneous_saves_energy_over_homogeneous() {
        let (cpu, gpus) = hertz();
        let e_hom =
            schedule_trace(&cpu, &gpus, &trace(), PAIRS, Strategy::HomogeneousSplit).energy_joules;
        let e_het = schedule_trace(
            &cpu,
            &gpus,
            &trace(),
            PAIRS,
            Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
        )
        .energy_joules;
        assert!(e_het < e_hom, "balanced schedule should cut idle energy: {e_het} vs {e_hom}");
    }

    #[test]
    fn guided_queue_beats_small_fixed_chunks() {
        // GSS keeps early chunks large (occupancy) while a small fixed
        // chunk destroys it.
        let (cpu, gpus) = hertz();
        let fixed =
            schedule_trace(&cpu, &gpus, &trace(), PAIRS, Strategy::DynamicQueue { chunk: 64 })
                .makespan;
        let guided =
            schedule_trace(&cpu, &gpus, &trace(), PAIRS, Strategy::GuidedQueue { divisor: 2 })
                .makespan;
        assert!(guided < fixed, "GSS {guided} should beat fixed-64 {fixed}");
    }

    #[test]
    fn guided_queue_loses_to_static_split_on_gpus() {
        // The ablation finding: GSS was designed for CPU loop scheduling;
        // its geometrically shrinking tail chunks destroy GPU occupancy,
        // so the paper's one-shot Equation 1 split — one large launch per
        // device per batch — wins on occupancy-sensitive hardware.
        let (cpu, gpus) = hertz();
        let het = schedule_trace(
            &cpu,
            &gpus,
            &trace(),
            PAIRS,
            Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
        )
        .makespan;
        let guided =
            schedule_trace(&cpu, &gpus, &trace(), PAIRS, Strategy::GuidedQueue { divisor: 2 })
                .makespan;
        assert!(guided > het, "expected GSS tail chunks to cost occupancy");
        assert!(guided < het * 5.0, "GSS should still be in the same decade: {guided} vs {het}");
    }

    #[test]
    fn timeline_replay_matches_plain_replay() {
        let (cpu, gpus) = hertz();
        let strat = Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() };
        let plain = schedule_trace(&cpu, &gpus, &trace(), PAIRS, strat).makespan;
        let (report, tl) = super::schedule_trace_timeline(&cpu, &gpus, &trace(), PAIRS, strat);
        assert!((report.makespan - plain).abs() < 1e-12 * plain, "{} vs {plain}", report.makespan);
        assert!((tl.makespan() - report.makespan).abs() < 1e-12 * plain);
        // One segment per (batch, device).
        assert_eq!(tl.segments().len(), trace().len() * 2);
    }

    #[test]
    fn timeline_shows_homogeneous_imbalance() {
        // Under the homogeneous split, the K40c idles while the GTX 580
        // finishes — visible as idle time on device 0.
        let (cpu, gpus) = hertz();
        let (_, tl) = super::schedule_trace_timeline(
            &cpu,
            &gpus,
            &trace(),
            PAIRS,
            Strategy::HomogeneousSplit,
        );
        let idle_k40 = tl.idle_time(gpus[0].id());
        let idle_580 = tl.idle_time(gpus[1].id());
        assert!(idle_k40 > idle_580, "K40c should idle more: {idle_k40} vs {idle_580}");
        assert!(idle_k40 / tl.makespan() > 0.3, "imbalance should be large");
        let chart = tl.render(60);
        assert!(chart.contains("K40c") && chart.contains('#'));
    }

    #[test]
    #[should_panic]
    fn timeline_rejects_dynamic_strategy() {
        let (cpu, gpus) = hertz();
        super::schedule_trace_timeline(
            &cpu,
            &gpus,
            &[64],
            PAIRS,
            Strategy::DynamicQueue { chunk: 8 },
        );
    }

    #[test]
    fn empty_trace_zero_makespan_cpu() {
        let (cpu, gpus) = hertz();
        let r = schedule_trace(&cpu, &gpus, &[], PAIRS, Strategy::CpuOnly);
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.total_items, 0);
    }

    #[test]
    #[should_panic]
    fn gpu_strategy_without_gpus_panics() {
        let cpu = Arc::new(SimDevice::new(0, catalog::xeon_e3_1220()));
        schedule_trace(&cpu, &[], &[64], PAIRS, Strategy::HomogeneousSplit);
    }

    fn worksteal() -> Strategy {
        Strategy::WorkSteal { warmup: WarmupConfig::default(), divisor: 2 }
    }

    /// Straggler-scenario trace: generations far above the occupancy floor
    /// so the deques hold many whole chunks and stealing has granularity
    /// to work with.
    fn big_trace() -> Vec<u64> {
        std::iter::repeat_n(16 * 1024, 24).collect()
    }

    #[test]
    fn work_steal_healthy_within_five_percent_of_heterogeneous() {
        // Acceptance: when nothing goes wrong, the seeded deques drain as
        // whole per-device chunks — virtually identical to the frozen
        // Percent split, so stealing costs nothing to carry.
        let (cpu, gpus) = hertz();
        let t_het = schedule_trace(
            &cpu,
            &gpus,
            &trace(),
            PAIRS,
            Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
        )
        .makespan;
        let t_ws = schedule_trace(&cpu, &gpus, &trace(), PAIRS, worksteal()).makespan;
        let ratio = t_ws / t_het;
        assert!(
            ratio <= 1.05,
            "healthy work stealing must not lose to the Percent split: {t_ws} vs {t_het}"
        );
        // It is allowed to *win* (the drain reclaims the warm-up's
        // equal-split imbalance, which the frozen split never recovers),
        // but not by an implausible margin.
        assert!(ratio >= 0.7, "suspiciously large healthy gain: {t_ws} vs {t_het}");
    }

    #[test]
    fn work_steal_shares_favor_fast_device() {
        let (cpu, gpus) = hertz();
        let r = schedule_trace(&cpu, &gpus, &trace(), PAIRS, worksteal());
        assert_eq!(r.strategy_label, "Work stealing");
        let s = r.shares.unwrap();
        assert!(s[0] > s[1], "K40c seed share must dominate: {s:?}");
    }

    #[test]
    fn faulty_replay_with_no_faults_matches_plain_replay() {
        let (cpu, gpus) = hertz();
        for strat in [
            Strategy::HomogeneousSplit,
            Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
            worksteal(),
            Strategy::GuidedQueue { divisor: 2 },
        ] {
            let plain = schedule_trace(&cpu, &gpus, &trace(), PAIRS, strat).makespan;
            let faulty = schedule_trace_faulty(
                &cpu,
                &gpus,
                &trace(),
                PAIRS,
                strat,
                &[1.0, 1.0],
                0,
                &Trace::disabled(),
            )
            .makespan;
            assert_eq!(
                faulty.to_bits(),
                plain.to_bits(),
                "{}: healthy faulty replay must be bit-identical",
                strat.label()
            );
        }
    }

    #[test]
    fn work_steal_heals_midrun_straggler() {
        // Acceptance: a GPU that degrades 4x after the warm-up froze its
        // weight strands its seeded share; the runtime's steals must beat
        // the frozen Percent split by >= 1.3x on makespan.
        let (cpu, gpus) = hertz();
        let onset = WarmupConfig::default().iterations + 2;
        let faults = [1.0, 4.0];
        let t_frozen = schedule_trace_faulty(
            &cpu,
            &gpus,
            &big_trace(),
            PAIRS,
            Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
            &faults,
            onset,
            &Trace::disabled(),
        )
        .makespan;
        let t_steal = schedule_trace_faulty(
            &cpu,
            &gpus,
            &big_trace(),
            PAIRS,
            worksteal(),
            &faults,
            onset,
            &Trace::disabled(),
        )
        .makespan;
        let gain = t_frozen / t_steal;
        assert!(gain >= 1.3, "steal gain only {gain}: {t_steal} vs frozen {t_frozen}");
    }

    #[test]
    fn faulty_work_steal_emits_job_migrations() {
        let (cpu, gpus) = hertz();
        let events = Trace::new();
        let onset = WarmupConfig::default().iterations;
        schedule_trace_faulty(
            &cpu,
            &gpus,
            &big_trace(),
            PAIRS,
            worksteal(),
            &[1.0, 4.0],
            onset,
            &events,
        );
        let data = events.snapshot();
        let migrations =
            data.events().filter(|s| matches!(s.event, vstrace::Event::JobMigrated { .. })).count();
        assert!(migrations > 0, "straggler replay must record steals");
    }

    #[test]
    fn faulty_replay_straggler_slower_than_healthy() {
        let (cpu, gpus) = hertz();
        let healthy = schedule_trace_faulty(
            &cpu,
            &gpus,
            &trace(),
            PAIRS,
            Strategy::HomogeneousSplit,
            &[1.0, 1.0],
            0,
            &Trace::disabled(),
        )
        .makespan;
        let degraded = schedule_trace_faulty(
            &cpu,
            &gpus,
            &trace(),
            PAIRS,
            Strategy::HomogeneousSplit,
            &[1.0, 3.0],
            0,
            &Trace::disabled(),
        )
        .makespan;
        assert!(degraded > healthy * 2.0, "3x straggler must dominate: {degraded} vs {healthy}");
    }

    fn oracle() -> Strategy {
        Strategy::Oracle { warmup: WarmupConfig::default(), divisor: 2 }
    }

    #[test]
    fn oracle_replay_healthy_competitive_with_worksteal() {
        let (cpu, gpus) = hertz();
        let t_ws = schedule_trace(&cpu, &gpus, &trace(), PAIRS, worksteal()).makespan;
        let r = schedule_trace(&cpu, &gpus, &trace(), PAIRS, oracle());
        assert_eq!(r.strategy_label, "Learned oracle");
        let ratio = r.makespan / t_ws;
        assert!((0.9..=1.05).contains(&ratio), "healthy oracle {} vs worksteal {t_ws}", r.makespan);
        let s = r.shares.unwrap();
        assert!(s[0] > s[1], "fitted seed must favor the K40c: {s:?}");
    }

    #[test]
    fn oracle_replay_is_deterministic() {
        let (cpu, gpus) = hertz();
        let a = schedule_trace(&cpu, &gpus, &big_trace(), PAIRS, oracle()).makespan;
        let b = schedule_trace(&cpu, &gpus, &big_trace(), PAIRS, oracle()).makespan;
        assert_eq!(a.to_bits(), b.to_bits(), "oracle replay must be bit-identical per input");
    }

    #[test]
    fn drift_with_no_phases_matches_plain_replay() {
        let (cpu, gpus) = hertz();
        for strat in [worksteal(), Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() }]
        {
            let plain = schedule_trace(&cpu, &gpus, &trace(), PAIRS, strat).makespan;
            let drift = schedule_trace_drift(
                &cpu,
                &gpus,
                &trace(),
                PAIRS,
                strat,
                &[],
                &Trace::disabled(),
                None,
            )
            .makespan;
            assert_eq!(drift.to_bits(), plain.to_bits(), "{}", strat.label());
        }
    }

    #[test]
    fn drift_scenario_oracle_beats_frozen_percent() {
        // A device slows 4x mid-run, then recovers: the frozen Percent
        // split pays the straggler twice (too much work while slow, too
        // little after recovery); the oracle re-fits within a few batches
        // on both transitions.
        let (cpu, gpus) = hertz();
        let onset = WarmupConfig::default().iterations + 2;
        let recover = onset + 8;
        let phases = [(onset, vec![1.0, 4.0]), (recover, vec![1.0, 1.0])];
        let t_frozen = schedule_trace_drift(
            &cpu,
            &gpus,
            &big_trace(),
            PAIRS,
            Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
            &phases,
            &Trace::disabled(),
            None,
        )
        .makespan;
        let t_oracle = schedule_trace_drift(
            &cpu,
            &gpus,
            &big_trace(),
            PAIRS,
            oracle(),
            &phases,
            &Trace::disabled(),
            None,
        )
        .makespan;
        assert!(
            t_oracle < t_frozen,
            "oracle {t_oracle} must strictly beat frozen Percent {t_frozen} under drift"
        );
    }

    #[test]
    fn drift_scenario_oracle_steals_less_than_worksteal() {
        // Pure work stealing heals drift by migrating chunks every batch;
        // the oracle re-prices the seed so most of that traffic vanishes.
        let (cpu, gpus) = hertz();
        let onset = WarmupConfig::default().iterations + 2;
        let phases = [(onset, vec![1.0, 4.0]), (onset + 8, vec![1.0, 1.0])];
        let count_migrations = |strategy: Strategy| {
            let events = Trace::new();
            let t = schedule_trace_drift(
                &cpu,
                &gpus,
                &big_trace(),
                PAIRS,
                strategy,
                &phases,
                &events,
                None,
            )
            .makespan;
            let steals = events
                .snapshot()
                .events()
                .filter(|s| matches!(s.event, Event::JobMigrated { .. }))
                .count();
            (t, steals)
        };
        let (t_ws, steals_ws) = count_migrations(worksteal());
        let (t_or, steals_or) = count_migrations(oracle());
        assert!(steals_ws > 0, "drift must force the frozen-seed drain to steal");
        assert!(
            steals_or < steals_ws,
            "oracle re-seeding must reduce steal traffic: {steals_or} vs {steals_ws}"
        );
        assert!(
            t_or <= t_ws * 1.02,
            "oracle {t_or} must not lose to pure stealing {t_ws} under drift"
        );
    }

    #[test]
    fn warm_oracle_skips_warmup_and_stays_deterministic() {
        // Cross-campaign warm start: a second replay reusing the fitted
        // oracle skips the equal-split warm-up entirely and seeds from the
        // fits at batch 0 — and re-running from a cloned oracle is
        // bit-identical (fits consume only virtual-time measurements).
        let (cpu, gpus) = hertz();
        let mut shared = CostOracle::new(gpus.len(), OracleConfig::default());
        let cold = schedule_trace_drift(
            &cpu,
            &gpus,
            &trace(),
            PAIRS,
            oracle(),
            &[],
            &Trace::disabled(),
            Some(&mut shared),
        )
        .makespan;
        assert!(shared.is_warm(KernelClass::PairSweep));
        let mut warm_a = shared.clone();
        let mut warm_b = shared.clone();
        let warm1 = schedule_trace_drift(
            &cpu,
            &gpus,
            &trace(),
            PAIRS,
            oracle(),
            &[],
            &Trace::disabled(),
            Some(&mut warm_a),
        )
        .makespan;
        let warm2 = schedule_trace_drift(
            &cpu,
            &gpus,
            &trace(),
            PAIRS,
            oracle(),
            &[],
            &Trace::disabled(),
            Some(&mut warm_b),
        )
        .makespan;
        assert_eq!(warm1.to_bits(), warm2.to_bits(), "warm replays must be bit-identical");
        assert!(
            warm1 < cold,
            "warm start must skip the equal-split warm-up cost: {warm1} vs {cold}"
        );
    }

    #[test]
    #[should_panic]
    fn faulty_replay_rejects_adaptive() {
        let (cpu, gpus) = hertz();
        schedule_trace_faulty(
            &cpu,
            &gpus,
            &[64],
            PAIRS,
            Strategy::AdaptiveSplit { warmup: WarmupConfig::default(), rebalance_every: 4 },
            &[1.0, 1.0],
            0,
            &Trace::disabled(),
        );
    }
}
