//! Work partitioning: equal and proportional integer splits.

/// Equal split of `items` across `n` devices — the *homogeneous algorithm*
/// of Algorithm 2, which assumes all devices have the same computational
/// capability. Remainder items go to the first devices, so shares differ by
/// at most one.
pub fn equal_split(items: u64, n: usize) -> Vec<u64> {
    assert!(n > 0, "need at least one device");
    let base = items / n as u64;
    let rem = (items % n as u64) as usize;
    (0..n).map(|i| base + u64::from(i < rem)).collect()
}

/// Proportional split of `items` by `weights` (largest-remainder method):
/// the *heterogeneous algorithm*, where each device's share follows its
/// measured throughput. Deterministic; shares sum exactly to `items`.
///
/// Degenerate weight vectors are survivable, not fatal: negative weights
/// are clamped to zero (a device that measured "negative throughput" is
/// a measurement artifact, not a reason to abort a screen), and if no
/// weight remains positive the split falls back to [`equal_split`] — the
/// caller asked for *some* partition, and equal shares are the only
/// defensible one absent information.
///
/// # Panics
/// Panics on an empty weight slice or non-finite (NaN/∞) weights, which
/// indicate a genuine upstream bug rather than a degenerate measurement.
pub fn proportional_split(items: u64, weights: &[f64]) -> Vec<u64> {
    assert!(!weights.is_empty(), "need at least one device");
    assert!(weights.iter().all(|w| w.is_finite()), "weights must be finite: {weights:?}");
    let clamped: Vec<f64> = weights.iter().map(|w| w.max(0.0)).collect();
    let total: f64 = clamped.iter().sum();
    if total <= 0.0 {
        return equal_split(items, weights.len());
    }
    let weights = &clamped[..];

    let exact: Vec<f64> = weights.iter().map(|w| items as f64 * w / total).collect();
    let mut shares: Vec<u64> = exact.iter().map(|e| e.floor() as u64).collect();
    let assigned: u64 = shares.iter().sum();
    let mut leftover = (items - assigned) as usize;

    // Distribute the remainder to the largest fractional parts; ties break
    // toward lower device index (deterministic).
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = exact[a] - exact[a].floor();
        let fb = exact[b] - exact[b].floor();
        // PANICS: the compared values are finite by construction; NaN would be an upstream bug.
        fb.partial_cmp(&fa).unwrap().then(a.cmp(&b))
    });
    for &i in order.iter().cycle().take(leftover.min(items as usize)) {
        shares[i] += 1;
        leftover -= 1;
        if leftover == 0 {
            break;
        }
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_split_exact_division() {
        assert_eq!(equal_split(12, 4), vec![3, 3, 3, 3]);
    }

    #[test]
    fn equal_split_remainder_to_front() {
        assert_eq!(equal_split(14, 4), vec![4, 4, 3, 3]);
        assert_eq!(equal_split(1, 3), vec![1, 0, 0]);
    }

    #[test]
    fn equal_split_zero_items() {
        assert_eq!(equal_split(0, 3), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic]
    fn equal_split_no_devices_panics() {
        equal_split(5, 0);
    }

    #[test]
    fn proportional_sums_to_items() {
        for items in [0u64, 1, 7, 100, 12345] {
            let s = proportional_split(items, &[1.0, 2.5, 0.3, 4.2]);
            assert_eq!(s.iter().sum::<u64>(), items, "items={items}");
        }
    }

    #[test]
    fn proportional_two_to_one() {
        let s = proportional_split(30, &[2.0, 1.0]);
        assert_eq!(s, vec![20, 10]);
    }

    #[test]
    fn proportional_equal_weights_matches_equal_split() {
        let s = proportional_split(14, &[1.0, 1.0, 1.0, 1.0]);
        let mut sorted = s.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let mut eq = equal_split(14, 4);
        eq.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(sorted, eq);
    }

    #[test]
    fn proportional_zero_weight_gets_nothing() {
        let s = proportional_split(100, &[1.0, 0.0, 1.0]);
        assert_eq!(s[1], 0);
        assert_eq!(s.iter().sum::<u64>(), 100);
    }

    #[test]
    fn proportional_shares_close_to_exact() {
        let weights = [3.7, 1.1, 9.9, 0.4];
        let items = 1000u64;
        let total: f64 = weights.iter().sum();
        let s = proportional_split(items, &weights);
        for (share, w) in s.iter().zip(&weights) {
            let exact = items as f64 * w / total;
            assert!((*share as f64 - exact).abs() <= 1.0, "{share} vs {exact}");
        }
    }

    #[test]
    fn proportional_deterministic_tiebreak() {
        let a = proportional_split(3, &[1.0, 1.0]);
        let b = proportional_split(3, &[1.0, 1.0]);
        assert_eq!(a, b);
        assert_eq!(a.iter().sum::<u64>(), 3);
    }

    #[test]
    fn proportional_all_zero_falls_back_to_equal() {
        assert_eq!(proportional_split(10, &[0.0, 0.0]), equal_split(10, 2));
        assert_eq!(proportional_split(7, &[0.0, 0.0, 0.0]), equal_split(7, 3));
    }

    #[test]
    fn proportional_negative_weight_clamped_to_zero() {
        let s = proportional_split(10, &[1.0, -1.0]);
        assert_eq!(s, vec![10, 0], "negative weight behaves as zero");
        // All-negative degenerates to the equal fallback too.
        assert_eq!(proportional_split(10, &[-1.0, -2.0]), equal_split(10, 2));
    }

    #[test]
    #[should_panic]
    fn proportional_nan_weight_panics() {
        proportional_split(10, &[1.0, f64::NAN]);
    }
}
