//! Synchronization facade for the executor's concurrency core.
//!
//! Normal builds re-export `std` types verbatim — a zero-cost pure alias,
//! so the production executor is bit-for-bit the `std`-based
//! implementation. Under the `vscheck-model` feature the same names
//! resolve to the `vscheck` instrumented primitives, turning every sync
//! operation in [`crate::executor`] into a scheduler choice point so the
//! `model_*` tests can exhaustively explore interleavings (DESIGN.md §9).

#[cfg(not(feature = "vscheck-model"))]
pub(crate) use std::sync::{Condvar, Mutex};
#[cfg(feature = "vscheck-model")]
pub(crate) use vscheck::sync::{Condvar, Mutex};

pub(crate) mod thread {
    #[cfg(not(feature = "vscheck-model"))]
    pub(crate) use std::thread::{Builder, JoinHandle};
    #[cfg(feature = "vscheck-model")]
    pub(crate) use vscheck::thread::{Builder, JoinHandle};
}

pub(crate) mod atomic {
    #[cfg(not(feature = "vscheck-model"))]
    pub(crate) use std::sync::atomic::AtomicU64;
    #[cfg(feature = "vscheck-model")]
    pub(crate) use vscheck::sync::atomic::AtomicU64;
    // The vscheck atomics take `std` orderings (and collapse them to
    // SeqCst), so `Ordering` aliases `std` in both configurations.
    pub(crate) use std::sync::atomic::Ordering;
}
