//! The online learned cost oracle (DESIGN.md §15).
//!
//! The paper's warm-up (§3.3, Equation 1) measures each device once and
//! freezes the `Percent` split for the whole run. [`CostOracle`] replaces
//! that terminal answer with an *online* per-`(device, KernelClass)`
//! throughput model fit incrementally from the telemetry the stack already
//! produces: the warm-up measurements become the cold-start prior, and
//! every subsequent batch's `(units executed, virtual seconds)` pair
//! refines an exponentially-decayed rate estimate. Consumers re-query the
//! oracle at every seeding decision — deque seeds in the work-stealing
//! runtime, generation boundaries in the pipelined engine, campaign cost
//! plans in the service — so a device that drifts mid-run (thermal
//! throttling, the `gpu_victim` fault mode) is re-priced within a few
//! batches instead of never.
//!
//! # Fit
//!
//! Per `(device, class)` the oracle keeps one decayed throughput estimate
//! `rate` in units/second. Each observation of `units` executed in
//! `seconds` updates
//!
//! ```text
//! rate ← (1 − decay) · rate + decay · units/seconds
//! ```
//!
//! unless the relative residual `(observed − predicted) / predicted`
//! exceeds [`OracleConfig::drift_ratio`] on a trusted fit (at least
//! [`OracleConfig::min_observations`] observations), in which case the
//! regime changed and the fit *re-fits*: the rate snaps to the fresh
//! observation so the very next seed reflects the new speed. Both paths
//! are pure `f64` arithmetic over virtual-time measurements in
//! observation order — same observations, same order, bit-identical
//! coefficients (the determinism contract; no wall clock, no entropy).
//!
//! # Cold start
//!
//! With zero observations the oracle answers exactly what the frozen
//! Equation 1 pipeline answers today: [`CostOracle::seed_weights`] returns
//! *literally* [`crate::warmup::shares_from_times`] of the stored warm-up
//! times — not a numerically-equivalent reformulation — so the cold-start
//! split is bit-identical to the frozen `Percent` split (pinned by the
//! `oracle_props` suite). With no prior either, it returns `None` and the
//! caller falls back to the equal split, again matching today's behavior.

use crate::sync::Mutex;
use crate::warmup::shares_from_times;
use gpusim::KernelClass;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Fit hyper-parameters. The defaults favor fast drift response over
/// smoothing: virtual-time measurements are noise-free, so heavy averaging
/// buys nothing and slows convergence after a regime change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleConfig {
    /// Weight of the newest observation in the decayed rate update.
    pub decay: f64,
    /// Relative residual beyond which a trusted fit is discarded and
    /// re-fit from the fresh observation (drift detection).
    pub drift_ratio: f64,
    /// Observations before a fit is trusted enough to drift-reset.
    pub min_observations: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig { decay: 0.25, drift_ratio: 0.35, min_observations: 2 }
    }
}

/// One decayed throughput fit.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Fit {
    /// Units per virtual second.
    rate: f64,
    observations: u64,
    last_residual: f64,
    refits: u64,
}

/// Read-only view of one `(device, class)` fit for observability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitSnapshot {
    pub rate: f64,
    pub observations: u64,
    pub last_residual: f64,
    pub refits: u64,
}

/// Outcome of one [`CostOracle::observe`] call — the payload of the
/// `vstrace::Event::ModelUpdated` event consumers emit per observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelUpdate {
    /// Seconds the oracle predicted for this batch before seeing it.
    pub predicted: f64,
    /// Seconds actually measured (virtual time).
    pub observed: f64,
    /// Relative residual `(observed - predicted) / predicted`.
    pub residual: f64,
    /// The residual exceeded the drift threshold and the fit was reset.
    pub refit: bool,
}

/// Warm-up prior for one kernel class: the raw Equation 1 measurements
/// plus the units each device executed to produce them.
#[derive(Debug, Clone, PartialEq)]
struct Prior {
    times: Vec<f64>,
    units: Vec<f64>,
}

/// The online per-device cost model. See the module docs for the fit,
/// drift and cold-start semantics.
#[derive(Debug, Clone)]
pub struct CostOracle {
    cfg: OracleConfig,
    n_devices: usize,
    priors: BTreeMap<KernelClass, Prior>,
    fits: BTreeMap<(usize, KernelClass), Fit>,
    reseeds: u64,
}

impl CostOracle {
    /// An empty oracle for `n_devices` devices.
    ///
    /// # Panics
    /// Panics if `n_devices == 0` or the config is degenerate.
    pub fn new(n_devices: usize, cfg: OracleConfig) -> CostOracle {
        assert!(n_devices > 0, "oracle needs devices");
        assert!(cfg.decay > 0.0 && cfg.decay <= 1.0, "bad decay {}", cfg.decay);
        assert!(cfg.drift_ratio > 0.0, "bad drift ratio {}", cfg.drift_ratio);
        CostOracle { cfg, n_devices, priors: BTreeMap::new(), fits: BTreeMap::new(), reseeds: 0 }
    }

    pub fn n_devices(&self) -> usize {
        self.n_devices
    }

    /// Install the Equation 1 warm-up measurements as the cold-start prior
    /// for `class`: `times[d]` seconds to execute `units[d]` work units on
    /// device `d`. A later warm-up for the same class replaces the prior.
    ///
    /// # Panics
    /// Panics on length mismatch or non-finite / non-positive entries.
    pub fn observe_warmup(&mut self, class: KernelClass, times: &[f64], units: &[f64]) {
        assert_eq!(times.len(), self.n_devices, "one warm-up time per device");
        assert_eq!(units.len(), self.n_devices, "one warm-up unit count per device");
        assert!(
            times.iter().chain(units).all(|v| v.is_finite() && *v > 0.0),
            "bad warm-up prior: times {times:?}, units {units:?}"
        );
        self.priors.insert(class, Prior { times: times.to_vec(), units: units.to_vec() });
    }

    /// Whether [`Self::seed_weights`] has anything better than the equal
    /// split for `class` — a prior, or a fit on every device. Consumers
    /// use this to skip redundant warm-up phases (the cross-campaign warm
    /// start in `vscluster::service`).
    pub fn is_warm(&self, class: KernelClass) -> bool {
        self.priors.contains_key(&class)
            || (0..self.n_devices).all(|d| self.fits.contains_key(&(d, class)))
    }

    fn prior_rate(&self, device: usize, class: KernelClass) -> Option<f64> {
        self.priors.get(&class).map(|p| p.units[device] / p.times[device])
    }

    /// Ingest one measurement: device `device` executed `units` work units
    /// of `class` in `seconds` of virtual time. Returns the prediction
    /// residual and whether drift was detected (the fit reset).
    ///
    /// # Panics
    /// Panics on an out-of-range device or non-positive measurement.
    pub fn observe(
        &mut self,
        device: usize,
        class: KernelClass,
        units: f64,
        seconds: f64,
    ) -> ModelUpdate {
        assert!(device < self.n_devices, "device {device} out of range");
        assert!(
            units.is_finite() && units > 0.0 && seconds.is_finite() && seconds > 0.0,
            "bad observation: {units} units in {seconds} s"
        );
        let observed_rate = units / seconds;
        let decay = self.cfg.decay;
        let prior = self.prior_rate(device, class);
        match self.fits.get_mut(&(device, class)) {
            None => {
                // First observation: predict from the prior when one
                // exists, and blend the prior into the initial rate so a
                // single noisy batch cannot erase the warm-up evidence.
                let predicted = prior.map_or(seconds, |r| units / r);
                let residual = (seconds - predicted) / predicted;
                let rate =
                    prior.map_or(observed_rate, |r| (1.0 - decay) * r + decay * observed_rate);
                self.fits.insert(
                    (device, class),
                    Fit { rate, observations: 1, last_residual: residual, refits: 0 },
                );
                ModelUpdate { predicted, observed: seconds, residual, refit: false }
            }
            Some(fit) => {
                let predicted = units / fit.rate;
                let residual = (seconds - predicted) / predicted;
                let refit = fit.observations >= self.cfg.min_observations
                    && residual.abs() > self.cfg.drift_ratio;
                if refit {
                    // Regime change: the old rate is evidence about a
                    // device that no longer exists. Snap to the fresh
                    // measurement so the next seed already reflects it.
                    fit.rate = observed_rate;
                    fit.observations = 1;
                    fit.refits += 1;
                } else {
                    fit.rate = (1.0 - decay) * fit.rate + decay * observed_rate;
                    fit.observations += 1;
                }
                fit.last_residual = residual;
                ModelUpdate { predicted, observed: seconds, residual, refit }
            }
        }
    }

    /// Predicted seconds for `units` work units of `class` on `device`:
    /// from the fit when one exists, else from the warm-up prior, else
    /// `None` (the oracle knows nothing about this regime yet).
    pub fn predict_seconds(&self, device: usize, class: KernelClass, units: f64) -> Option<f64> {
        assert!(device < self.n_devices, "device {device} out of range");
        self.fits
            .get(&(device, class))
            .map(|f| f.rate)
            .or_else(|| self.prior_rate(device, class))
            .map(|rate| units / rate)
    }

    /// Per-device deque-seeding weights for `class` — the oracle's answer
    /// to "how should the next batch split".
    ///
    /// - Every device fitted: weights are the fitted rates (units/second),
    ///   so shares track *current* observed throughput.
    /// - No fits but a warm-up prior: returns **exactly**
    ///   [`shares_from_times`] of the prior times — the bit-identical
    ///   Equation 1 cold-start split (see the module docs).
    /// - Neither: `None`; the caller keeps the equal split.
    pub fn seed_weights(&mut self, class: KernelClass) -> Option<Vec<f64>> {
        self.reseeds += 1;
        let fitted: Vec<f64> =
            (0..self.n_devices).map_while(|d| self.fits.get(&(d, class)).map(|f| f.rate)).collect();
        if fitted.len() == self.n_devices {
            return Some(fitted);
        }
        self.priors.get(&class).map(|p| shares_from_times(&p.times))
    }

    /// How many times [`Self::seed_weights`] was consulted.
    pub fn reseeds(&self) -> u64 {
        self.reseeds
    }

    /// Observations ingested for one `(device, class)` pair.
    pub fn observations(&self, device: usize, class: KernelClass) -> u64 {
        self.fits.get(&(device, class)).map_or(0, |f| f.observations)
    }

    /// Every fit, in deterministic `(device, class)` order.
    pub fn fits(&self) -> Vec<((usize, KernelClass), FitSnapshot)> {
        self.fits
            .iter()
            .map(|(&k, f)| {
                (
                    k,
                    FitSnapshot {
                        rate: f.rate,
                        observations: f.observations,
                        last_residual: f.last_residual,
                        refits: f.refits,
                    },
                )
            })
            .collect()
    }
}

/// A [`CostOracle`] shared across consumers (the campaign service shares
/// one per node across every campaign, so tenant N+1 starts warm from
/// tenant N's observations). The interior mutex resolves through the
/// crate's sync facade, so the `model_*` suite explores concurrent
/// ingestion exhaustively under `vscheck-model`.
#[derive(Clone)]
pub struct SharedOracle {
    inner: Arc<Mutex<CostOracle>>,
}

// Manual impl: the instrumented vscheck-model Mutex has no Debug, and
// locking inside Debug::fmt could deadlock a formatter mid-exploration.
impl std::fmt::Debug for SharedOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedOracle").finish_non_exhaustive()
    }
}

impl SharedOracle {
    pub fn new(n_devices: usize) -> SharedOracle {
        SharedOracle::with_config(n_devices, OracleConfig::default())
    }

    pub fn with_config(n_devices: usize, cfg: OracleConfig) -> SharedOracle {
        SharedOracle { inner: Arc::new(Mutex::new(CostOracle::new(n_devices, cfg))) }
    }

    /// Run `f` with the oracle locked. Callers keep the closure short; the
    /// service holds it across one virtual-time replay, which is safe
    /// because replays take no other facade locks.
    pub fn with<R>(&self, f: impl FnOnce(&mut CostOracle) -> R) -> R {
        // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
        let mut guard = self.inner.lock().expect("oracle mutex poisoned");
        f(&mut guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: KernelClass = KernelClass::PairSweep;

    fn oracle(n: usize) -> CostOracle {
        CostOracle::new(n, OracleConfig::default())
    }

    #[test]
    fn empty_oracle_seeds_nothing() {
        let mut o = oracle(2);
        assert!(o.seed_weights(PS).is_none());
        assert!(!o.is_warm(PS));
        assert!(o.predict_seconds(0, PS, 100.0).is_none());
        assert_eq!(o.reseeds(), 1, "a None answer is still a seed decision");
    }

    #[test]
    fn cold_start_is_exactly_equation_one() {
        let mut o = oracle(3);
        let times = [0.8, 1.9, 3.3];
        o.observe_warmup(PS, &times, &[100.0, 100.0, 100.0]);
        let w = o.seed_weights(PS).unwrap();
        let eq1 = shares_from_times(&times);
        for (a, b) in w.iter().zip(&eq1) {
            assert_eq!(a.to_bits(), b.to_bits(), "cold start must be bitwise Eq. 1");
        }
    }

    #[test]
    fn prior_predicts_and_first_observation_blends() {
        let mut o = oracle(1);
        // 100 units in 2 s → prior rate 50 units/s.
        o.observe_warmup(PS, &[2.0], &[100.0]);
        assert_eq!(o.predict_seconds(0, PS, 200.0), Some(4.0));
        let u = o.observe(0, PS, 200.0, 4.0);
        assert_eq!(u.predicted, 4.0);
        assert_eq!(u.residual, 0.0);
        assert!(!u.refit);
        assert_eq!(o.observations(0, PS), 1);
    }

    #[test]
    fn fitted_weights_track_observed_rates() {
        let mut o = oracle(2);
        for _ in 0..8 {
            o.observe(0, PS, 300.0, 1.0); // 300 units/s
            o.observe(1, PS, 100.0, 1.0); // 100 units/s
        }
        let w = o.seed_weights(PS).unwrap();
        let ratio = w[0] / w[1];
        assert!((ratio - 3.0).abs() < 0.05, "rate ratio {ratio} should be ~3");
    }

    #[test]
    fn drift_triggers_refit_and_reprices_immediately() {
        let mut o = oracle(1);
        for _ in 0..4 {
            o.observe(0, PS, 400.0, 1.0); // 400 units/s steady
        }
        // Device throttles 4x: observed seconds 4x the prediction.
        let u = o.observe(0, PS, 400.0, 4.0);
        assert!(u.refit, "4x drift must reset the fit: {u:?}");
        assert!(u.residual > 2.0, "residual {}", u.residual);
        // The very next prediction reflects the new regime exactly.
        assert_eq!(o.predict_seconds(0, PS, 400.0), Some(4.0));
        assert_eq!(o.fits()[0].1.refits, 1);
        // A fresh 1-observation fit is not trusted to drift again until
        // min_observations confirm it...
        let u = o.observe(0, PS, 400.0, 4.0);
        assert!(!u.refit, "one-observation fits must confirm before re-drifting");
        // ...after which recovery drifts back just as fast.
        let u = o.observe(0, PS, 400.0, 1.0);
        assert!(u.refit, "recovery is drift too");
        assert_eq!(o.predict_seconds(0, PS, 400.0), Some(1.0));
        assert_eq!(o.fits()[0].1.refits, 2);
    }

    #[test]
    fn small_residuals_decay_not_refit() {
        let mut o = oracle(1);
        o.observe(0, PS, 100.0, 1.0);
        o.observe(0, PS, 100.0, 1.0);
        let u = o.observe(0, PS, 100.0, 1.1); // ~10% residual, under threshold
        assert!(!u.refit);
        assert_eq!(o.observations(0, PS), 3);
    }

    #[test]
    fn classes_are_independent() {
        let mut o = oracle(1);
        o.observe(0, KernelClass::PairSweep, 100.0, 1.0);
        assert!(o.predict_seconds(0, KernelClass::GridInterp, 10.0).is_none());
        o.observe_warmup(KernelClass::GridInterp, &[0.5], &[10.0]);
        assert_eq!(o.predict_seconds(0, KernelClass::GridInterp, 10.0), Some(0.5));
        // PairSweep fit untouched.
        assert_eq!(o.predict_seconds(0, KernelClass::PairSweep, 100.0), Some(1.0));
    }

    #[test]
    fn partial_fits_fall_back_to_prior() {
        let mut o = oracle(2);
        o.observe_warmup(PS, &[1.0, 2.0], &[100.0, 100.0]);
        o.observe(0, PS, 100.0, 1.0); // only device 0 fitted
        let w = o.seed_weights(PS).unwrap();
        let eq1 = shares_from_times(&[1.0, 2.0]);
        assert_eq!(w[0].to_bits(), eq1[0].to_bits(), "partial fits must not mix sources");
        assert_eq!(w[1].to_bits(), eq1[1].to_bits());
    }

    #[test]
    fn shared_oracle_round_trips() {
        let s = SharedOracle::new(2);
        s.with(|o| {
            o.observe(0, PS, 100.0, 1.0);
            o.observe(1, PS, 100.0, 2.0);
        });
        let w = s.with(|o| o.seed_weights(PS)).unwrap();
        assert!(w[0] > w[1]);
        // Clones share state.
        let s2 = s.clone();
        assert_eq!(s2.with(|o| o.observations(0, PS)), 1);
    }

    #[test]
    #[should_panic]
    fn zero_second_observation_rejected() {
        oracle(1).observe(0, PS, 10.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_device_rejected() {
        oracle(1).observe(1, PS, 10.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn warmup_prior_length_mismatch_rejected() {
        oracle(2).observe_warmup(PS, &[1.0], &[1.0]);
    }
}

/// Exhaustive interleaving checks of concurrent observation ingestion into
/// a [`SharedOracle`] (run with
/// `cargo test -p vsched --features vscheck-model model_`).
///
/// The campaign service shares one oracle per node across campaigns; the
/// invariant is that concurrent ingestion loses no observations and never
/// produces a non-finite rate, for every bounded interleaving of the
/// facade mutex.
#[cfg(all(test, feature = "vscheck-model"))]
mod model_tests {
    use super::*;
    use vscheck::{explore, Config};

    #[test]
    fn model_concurrent_ingestion_loses_nothing() {
        let report = explore(Config::with_bound(2), || {
            let shared = SharedOracle::new(2);
            let a = shared.clone();
            let b = shared.clone();
            let ta = vscheck::thread::Builder::new()
                .name("ingest-a".into())
                .spawn(move || {
                    for _ in 0..2 {
                        a.with(|o| o.observe(0, gpusim::KernelClass::PairSweep, 100.0, 1.0));
                    }
                })
                .unwrap();
            let tb = vscheck::thread::Builder::new()
                .name("ingest-b".into())
                .spawn(move || {
                    for _ in 0..2 {
                        b.with(|o| o.observe(1, gpusim::KernelClass::PairSweep, 100.0, 2.0));
                    }
                })
                .unwrap();
            ta.join().unwrap();
            tb.join().unwrap();
            shared.with(|o| {
                assert_eq!(o.observations(0, gpusim::KernelClass::PairSweep), 2);
                assert_eq!(o.observations(1, gpusim::KernelClass::PairSweep), 2);
                let w = o.seed_weights(gpusim::KernelClass::PairSweep).unwrap();
                assert!(w.iter().all(|x| x.is_finite() && *x > 0.0), "{w:?}");
            });
        });
        report.assert_passed();
        assert!(report.complete, "bounded state space must be exhausted");
    }
}
