//! # vsched — heterogeneity-aware scheduling
//!
//! The paper's contribution (§3): distribute the conformations of a
//! metaheuristic-based virtual screen across a heterogeneous
//! multicore + multi-GPU node so the slowest device no longer determines
//! execution time.
//!
//! - [`partition`] — equal splits (the *homogeneous algorithm*,
//!   Algorithm 2) and proportional splits;
//! - [`warmup`] — the run-time performance-monitoring phase: 5–10
//!   metaheuristic iterations per device establish performance
//!   differences, reduced to `Percent = t_device / t_slowest` (Equation 1,
//!   the *heterogeneous algorithm*);
//! - [`strategy`] — the scheduling strategies the experiments compare:
//!   CPU-only (OpenMP baseline), homogeneous split, heterogeneous split,
//!   dynamic work queue;
//! - [`replay`] — schedule a recorded metaheuristic batch trace onto a
//!   simulated node and report per-device virtual times and makespan (the
//!   mechanism behind Tables 6–9);
//! - [`runtime`] — the unified node runtime (DESIGN.md §10): one
//!   *persistent* host worker thread per device (the paper's
//!   one-OpenMP-thread-per-GPU structure; workers are spawned once, fed
//!   disjoint index ranges per batch, and joined on drop), with both a
//!   contiguous-shares path and a work-stealing drain over per-device
//!   [`deque`]s seeded by Equation 1 weights;
//! - [`oracle`] — the online learned cost model (DESIGN.md §15):
//!   per-(device, kernel-class) exponentially-decayed throughput fits that
//!   turn the one-shot Equation 1 warm-up into a cold-start prior and
//!   re-price devices from live batch telemetry, with drift detection;
//! - [`executor`] — the real-compute path: a
//!   [`metaheur::BatchEvaluator`] facade over the runtime that resolves a
//!   [`Strategy`] into per-batch shares or deque seeds and keeps the
//!   warm-up / trace bookkeeping;
//! - [`spec`] — [`spec::EvaluatorSpec`], the single declarative factory
//!   for scoring backends (serial CPU / pooled CPU / device-scheduled),
//!   replacing per-call-site constructor picking;
//! - [`cooperative`] — dynamic assignment of independent metaheuristic
//!   *jobs* to devices plus cooperative solution sharing between jobs
//!   (abstract §: "A cooperative scheduling of jobs optimizes the quality
//!   of the solution and the overall performance").

#![deny(unsafe_op_in_unsafe_fn)]

pub mod cooperative;
pub mod deque;
pub mod executor;
pub mod oracle;
pub mod partition;
pub mod replay;
pub mod runtime;
pub mod spec;
pub mod strategy;
pub(crate) mod sync;
pub mod warmup;

pub use deque::ChunkDeque;
pub use executor::DeviceEvaluator;
pub use oracle::{CostOracle, FitSnapshot, ModelUpdate, OracleConfig, SharedOracle};
pub use partition::{equal_split, proportional_split};
pub use replay::{
    schedule_trace, schedule_trace_drift, schedule_trace_faulty, schedule_trace_timeline,
    ScheduleReport,
};
pub use runtime::{drain_deques, work_profile, Claim, NodeRuntime, StealConfig, StealStats};
pub use spec::EvaluatorSpec;
pub use strategy::Strategy;
pub use warmup::{percent_factors, shares_from_times, warmup_times, WarmupConfig};
