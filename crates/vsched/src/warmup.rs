//! The warm-up phase and Equation 1.
//!
//! §3.3: "a warm-up phase is performed to establish performance differences
//! among all targeted GPUs, running the scoring function for a few
//! candidate solutions. This phase measures, at run-time, the execution
//! time of a small number of iterations of the metaheuristic (five to ten)
//! [...] The execution times in this warm-up phase on all GPUs are reduced
//! to obtain the maximum value [...] Thus, the Percent parameter is
//! eventually determined as
//!
//! ```text
//! Percent = t_actualGPU / t_slowestGPU                (Equation 1)
//! ```
//!
//! The slowest GPU has Percent = 1; a GPU twice as fast has Percent = 0.5."
//!
//! # Per-regime warm-up sizing
//!
//! The warm-up batch size scales with the kernel's cost regime
//! ([`WarmupConfig::items_for`]). A flat 8×64 items was tuned for the
//! pair-sweep regime, whose per-item cost grows with pairs; grid
//! interpolation is orders of magnitude cheaper per pose, so the same 64
//! items barely move the device clocks and Equation 1 ratios come out of
//! transfer noise rather than compute — the split under-samples. Cheaper
//! regimes therefore warm up with proportionally more items per iteration
//! (grid-interp 64×, shell-pairs 8×); the pair-sweep size is unchanged so
//! existing pair-sweep splits are bit-identical to before.
//!
//! With the learned oracle ([`crate::oracle`]) these measurements are no
//! longer a terminal answer: they are ingested as the cold-start prior and
//! refined by every subsequent batch.

use gpusim::{KernelClass, SimDevice, WorkProfile};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Warm-up parameters. The paper uses five to ten iterations of the
/// metaheuristic over a small set of candidate solutions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WarmupConfig {
    /// Metaheuristic iterations to time (paper: 5–10).
    pub iterations: usize,
    /// Candidate solutions scored per iteration per device, for the
    /// baseline pair-sweep regime. Cheaper regimes scale this up — see
    /// [`Self::items_for`] and the module docs.
    pub items_per_iteration: u64,
}

impl Default for WarmupConfig {
    fn default() -> Self {
        WarmupConfig { iterations: 8, items_per_iteration: 64 }
    }
}

impl WarmupConfig {
    /// Items per warm-up iteration for `class`. Cheap-per-pose regimes
    /// need more poses for the device clocks to move past transfer noise:
    /// grid interpolation costs ~3 flops per pose-atom versus a full
    /// pairwise sweep, shell pairs sit in between.
    pub fn items_for(self, class: KernelClass) -> u64 {
        match class {
            KernelClass::PairSweep => self.items_per_iteration,
            KernelClass::GridInterp => self.items_per_iteration * 64,
            KernelClass::ShellPairs => self.items_per_iteration * 8,
        }
    }
}

/// Run the warm-up on every device and return the measured per-device
/// times. The warm-up batches *really execute* (they advance the device
/// clocks), exactly as the paper's warm-up spends real runtime. The runs
/// are not trying to solve the docking problem — they only expose the
/// performance differences.
///
/// The `profile` carries the scoring kernel's cost regime
/// ([`crate::runtime::work_profile`]): warming up in the wrong regime —
/// timing dense pair sweeps when the run will interpolate grids — would
/// hand Equation 1 throughput ratios from the wrong curve.
pub fn warmup_times(
    devices: &[Arc<SimDevice>],
    profile: WorkProfile,
    config: WarmupConfig,
) -> Vec<f64> {
    assert!(!devices.is_empty(), "warm-up needs devices");
    assert!(config.iterations > 0 && config.items_per_iteration > 0, "degenerate warm-up");
    let items = config.items_for(profile.class);
    devices
        .iter()
        .map(|d| {
            let mut t = 0.0;
            for _ in 0..config.iterations {
                t += d.execute(&profile.batch(items));
            }
            t
        })
        .collect()
}

/// Equation 1: `Percent_d = t_d / max_i t_i`. The slowest device gets 1.0.
pub fn percent_factors(times: &[f64]) -> Vec<f64> {
    assert!(!times.is_empty(), "no measurements");
    assert!(times.iter().all(|t| t.is_finite() && *t > 0.0), "bad warm-up times: {times:?}");
    let t_max = times.iter().cloned().fold(f64::MIN, f64::max);
    times.iter().map(|t| t / t_max).collect()
}

/// Throughput weights from warm-up times: a device's share of the
/// conformations is proportional to `1 / Percent` (equivalently `1 / t`),
/// so every device finishes its share at the same time.
pub fn shares_from_times(times: &[f64]) -> Vec<f64> {
    percent_factors(times).iter().map(|p| 1.0 / p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::catalog;

    fn devices() -> Vec<Arc<SimDevice>> {
        vec![
            Arc::new(SimDevice::new(0, catalog::tesla_k40c())),
            Arc::new(SimDevice::new(1, catalog::geforce_gtx_580())),
        ]
    }

    #[test]
    fn warmup_measures_slower_device_slower() {
        let devs = devices();
        let times = warmup_times(&devs, WorkProfile::pairs(45 * 3264), WarmupConfig::default());
        assert_eq!(times.len(), 2);
        assert!(times[0] < times[1], "K40c must beat GTX 580: {times:?}");
    }

    #[test]
    fn warmup_advances_clocks() {
        let devs = devices();
        let times = warmup_times(&devs, WorkProfile::pairs(1000), WarmupConfig::default());
        for (d, t) in devs.iter().zip(&times) {
            assert!((d.clock() - t).abs() < 1e-15, "warm-up cost must be charged");
        }
    }

    #[test]
    fn percent_slowest_is_one() {
        let p = percent_factors(&[2.0, 4.0, 1.0]);
        assert_eq!(p[1], 1.0);
        assert_eq!(p[0], 0.5);
        assert_eq!(p[2], 0.25);
    }

    #[test]
    fn percent_identical_devices() {
        let p = percent_factors(&[3.0, 3.0, 3.0]);
        assert!(p.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn percent_in_unit_interval() {
        let p = percent_factors(&[0.123, 7.7, 3.25, 0.5]);
        assert!(p.iter().all(|&x| x > 0.0 && x <= 1.0));
    }

    #[test]
    fn paper_example_twice_as_fast_is_half() {
        // "a GPU two times faster than slowest GPU would have Percent = 0.5"
        let p = percent_factors(&[1.0, 2.0]);
        assert_eq!(p[0], 0.5);
        assert_eq!(p[1], 1.0);
    }

    #[test]
    fn shares_inverse_of_times() {
        let s = shares_from_times(&[1.0, 2.0, 4.0]);
        // Weights 4:2:1 after normalizing by the max.
        assert!((s[0] / s[1] - 2.0).abs() < 1e-12);
        assert!((s[1] / s[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shares_balance_completion_time() {
        // If device rates are r_d = 1/t_d, assigning n_d ∝ 1/t_d items
        // makes n_d × t_d equal across devices.
        let times = [0.8, 1.9, 3.3];
        let shares = shares_from_times(&times);
        let completion: Vec<f64> = shares.iter().zip(&times).map(|(s, t)| s * t).collect();
        for w in completion.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn warmup_items_scale_with_regime_cheapness() {
        let cfg = WarmupConfig::default();
        assert_eq!(cfg.items_for(KernelClass::PairSweep), 64);
        assert_eq!(cfg.items_for(KernelClass::ShellPairs), 64 * 8);
        assert_eq!(cfg.items_for(KernelClass::GridInterp), 64 * 64);
    }

    #[test]
    fn grid_interp_warmup_samples_more_items() {
        // Same iteration count, but the cheap regime executes enough items
        // that the measured ratio reflects compute, not per-batch noise.
        let devs = devices();
        let profile = WorkProfile::new(4, KernelClass::GridInterp);
        let times = warmup_times(&devs, profile, WarmupConfig::default());
        let stats = devs[0].stats();
        assert_eq!(stats.items, 8 * 64 * 64, "grid-interp warm-up must up-sample");
        assert!(times.iter().all(|t| *t > 0.0));
    }

    #[test]
    #[should_panic]
    fn percent_rejects_zero_time() {
        percent_factors(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn percent_rejects_empty() {
        percent_factors(&[]);
    }

    #[test]
    #[should_panic]
    fn warmup_zero_iterations_panics() {
        warmup_times(
            &devices(),
            WorkProfile::pairs(10),
            WarmupConfig { iterations: 0, items_per_iteration: 1 },
        );
    }
}
