//! The unified heterogeneous node runtime: every execution path on a node
//! — static Percent splits, warm-up batches, and the work-stealing mode —
//! funnels through one [`NodeRuntime`] that owns the persistent per-device
//! worker threads and the virtual-time accounting.
//!
//! # Architecture
//!
//! The runtime separates *scheduling* (which device claims which chunk,
//! decided in virtual time) from *scoring* (the real numeric computation):
//!
//! 1. **Claiming** runs on the submitting thread. For the work-stealing
//!    mode, per-device [`ChunkDeque`]s are seeded with contiguous index
//!    ranges proportional to the Equation 1 warm-up weights; the drain
//!    loop then repeatedly lets the device with the *smallest virtual
//!    clock* claim next (ties broken by device index): it pops a
//!    guided-size chunk from the front of its own deque
//!    (`remaining / divisor`, floor-clamped — see [`StealConfig`]), or, if
//!    its deque is empty, steals half the tail of the most-loaded victim's
//!    deque, emitting a [`vstrace::Event::JobMigrated`] per steal. Each
//!    claim advances the claiming device's clock by the cost model's
//!    estimate immediately, so the entire claim order is a deterministic
//!    function of (batch, weights, cost model, active slowdowns).
//! 2. **Scoring** runs on one long-lived worker thread per device. Workers
//!    receive the claimed ranges and score them with the real
//!    Lennard-Jones kernels; because all ranges are disjoint and each
//!    conformation's score is independent, results are bit-identical to
//!    the serial path no matter which device claimed what.
//!
//! The deque itself is linearizable under true concurrency (model-checked
//! in [`crate::deque`]); the runtime drives it from one thread only so
//! that virtual-time claim ordering — and therefore makespans and traces —
//! are exactly reproducible (DESIGN.md §10 determinism contract).

use crate::deque::ChunkDeque;
use crate::partition::proportional_split;
use crate::sync::thread::{Builder, JoinHandle};
use crate::sync::{Condvar, Mutex};
use gpusim::{KernelClass, SimDevice, Timeline, WorkProfile};
use std::sync::Arc;
use vsmol::Conformation;
use vsscore::{Exec, ScoreBatch, Scorer};
use vstrace::{Event, Trace};

/// Chunk-sizing knobs for the work-stealing drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealConfig {
    /// Guided self-scheduling divisor: an owner's claim takes
    /// `remaining_own / divisor` items (clamped below by the floor).
    pub divisor: u64,
    /// Lower bound on chunk size. `0` (the default) selects each device's
    /// occupancy floor — [`gpusim::DeviceSpec::saturation_items`] — so no
    /// claim launches a machine-starving kernel. When the remaining deque
    /// is shorter than twice the floor the claim takes everything,
    /// avoiding a sub-saturated tail launch.
    pub min_chunk: u32,
}

impl Default for StealConfig {
    fn default() -> StealConfig {
        StealConfig { divisor: 2, min_chunk: 0 }
    }
}

/// What the drain did, for tests, benches and the `runtime_steal` example.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Total chunks claimed (own pops + steals).
    pub chunks: u64,
    /// Chunks claimed from another device's deque.
    pub steals: u64,
    /// Items moved by those steals.
    pub stolen_items: u64,
}

impl StealStats {
    pub fn merge(&mut self, other: StealStats) {
        self.chunks += other.chunks;
        self.steals += other.steals;
        self.stolen_items += other.stolen_items;
    }
}

/// One resolved claim from the drain: `device` scores `[lo, hi)`;
/// `stolen_from` names the victim deque when the claim was a steal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Claim {
    pub device: usize,
    pub lo: u32,
    pub hi: u32,
    pub stolen_from: Option<usize>,
}

/// The chunk an owner claims from its own deque: guided self-scheduling
/// (`len / divisor`), clamped below by `floor`, merging short tails
/// (`len < 2 × floor`) into one claim so the last launch still saturates
/// the device.
fn chunk_size(len: u32, divisor: u64, floor: u32) -> u32 {
    debug_assert!(len > 0);
    if len < floor.saturating_mul(2) {
        len
    } else {
        let guided = (u64::from(len) / divisor.max(1)) as u32;
        guided.max(floor).min(len)
    }
}

fn floor_for(dev: &SimDevice, cfg: &StealConfig) -> u32 {
    let floor =
        if cfg.min_chunk == 0 { dev.spec().saturation_items() } else { u64::from(cfg.min_chunk) };
    floor.clamp(1, u64::from(u32::MAX)) as u32
}

/// The cost-model regime a scorer's kernel runs in: dense kernels sweep
/// ligand × receptor *pairs*, [`vsscore::Kernel::Grid`] interpolates per
/// *ligand atom*, and [`vsscore::Kernel::CellList`] visits only the
/// *shell pairs* inside its cutoff. The scheduler must price batches in
/// the kernel's own unit — charging a grid job by pair count would
/// mispredict it by orders of magnitude and wreck the Eq. 1 splits.
pub fn work_profile(scorer: &Scorer) -> WorkProfile {
    let class = match scorer.options().kernel {
        vsscore::Kernel::Grid { .. } => KernelClass::GridInterp,
        vsscore::Kernel::CellList { .. } => KernelClass::ShellPairs,
        _ => KernelClass::PairSweep,
    };
    WorkProfile::new(scorer.work_units_per_eval(), class)
}

/// Charge one claimed chunk to `dev`'s virtual clock (through the
/// timeline when one is attached, so Gantt segments are recorded) and
/// emit the `DeviceBusy` trace event when tracing without a timeline —
/// an attached *traced* timeline emits `DeviceBusy` itself.
fn charge(
    dev: &SimDevice,
    items: u64,
    profile: WorkProfile,
    timeline: Option<&Timeline>,
    trace: &Trace,
) {
    let batch = profile.batch(items);
    let vt_start = dev.clock();
    match timeline {
        Some(tl) => {
            tl.record(dev, &batch);
        }
        None => {
            dev.execute(&batch);
            if trace.is_enabled() {
                let (kernel_s, transfer_s) = dev.time_breakdown(&batch);
                trace.emit(Event::DeviceBusy {
                    device: dev.id() as u32,
                    vt_start,
                    vt_end: dev.clock(),
                    kernel_s,
                    transfer_s,
                    items,
                });
            }
        }
    }
}

/// Drain seeded per-device deques in virtual-time order, charging every
/// claim to the claiming device's clock as it happens. This is the shared
/// scheduling core: the real-compute [`NodeRuntime`] feeds the resulting
/// claims to its workers, and the analytic replay
/// ([`crate::replay::schedule_trace`]) uses the clocks alone.
///
/// # Panics
/// Panics if `devices` and `deques` lengths differ or are empty.
pub fn drain_deques(
    devices: &[Arc<SimDevice>],
    deques: &[ChunkDeque],
    cfg: &StealConfig,
    profile: WorkProfile,
    timeline: Option<&Timeline>,
    trace: &Trace,
) -> (Vec<Claim>, StealStats) {
    assert_eq!(devices.len(), deques.len(), "one deque per device");
    assert!(!devices.is_empty(), "drain needs devices");
    let mut claims = Vec::new();
    let mut stats = StealStats::default();
    loop {
        if deques.iter().all(ChunkDeque::is_empty) {
            break;
        }
        // Claimant: smallest virtual clock, ties to the lowest device
        // index. Devices with empty deques stay eligible — they steal.
        let mut who = 0usize;
        let mut best = f64::INFINITY;
        for (i, d) in devices.iter().enumerate() {
            let c = d.clock();
            if c < best {
                best = c;
                who = i;
            }
        }
        let floor = floor_for(&devices[who], cfg);
        let own_len = deques[who].len();
        let claim =
            if own_len > 0 {
                deques[who]
                    .pop_front(chunk_size(own_len, cfg.divisor, floor))
                    .map(|(lo, hi)| Claim { device: who, lo, hi, stolen_from: None })
            } else {
                // Steal half the tail of the most-loaded victim.
                let (victim, vlen) = deques
                    .iter()
                    .map(ChunkDeque::len)
                    .enumerate()
                    .filter(|&(i, _)| i != who)
                    .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                    // PANICS: a device only claims with an empty own deque while some
                    // deque is non-empty, so another device (and a victim) exists.
                    .expect("n >= 2 when an empty-deque device claims");
                debug_assert!(vlen > 0, "non-empty victim must exist while work remains");
                deques[victim].steal_back(chunk_size(vlen, 2, floor)).map(|(lo, hi)| Claim {
                    device: who,
                    lo,
                    hi,
                    stolen_from: Some(victim),
                })
            };
        let Some(claim) = claim else { continue };
        let items = u64::from(claim.hi - claim.lo);
        stats.chunks += 1;
        if let Some(victim) = claim.stolen_from {
            stats.steals += 1;
            stats.stolen_items += items;
            if trace.is_enabled() {
                trace.emit(Event::JobMigrated {
                    job: (stats.chunks - 1) as u32,
                    from_node: devices[victim].id() as u32,
                    to_node: devices[claim.device].id() as u32,
                });
            }
        }
        charge(&devices[claim.device], items, profile, timeline, trace);
        claims.push(claim);
    }
    (claims, stats)
}

/// Work descriptor consumed by one runtime worker: the claimed index
/// ranges of the caller's conformation batch.
struct RtJob {
    confs: *mut Conformation,
    len: usize,
    /// Disjoint half-open ranges into `confs`, in claim order.
    ranges: Vec<(u32, u32)>,
    /// Test hook: the worker panics instead of scoring, to pin panic
    /// propagation through the completion handshake.
    #[cfg(test)]
    induce_panic: bool,
}

// SAFETY: the pointer is only dereferenced between job publication and the
// completion signal, during which the submitting thread is blocked in
// `dispatch` keeping the `&mut [Conformation]` borrow alive; per-device
// jobs cover disjoint ranges of that slice.
unsafe impl Send for RtJob {}

struct RtState {
    generation: u64,
    shutdown: bool,
    jobs: Vec<Option<RtJob>>,
    remaining: usize,
    /// Set by any worker whose job body panicked; re-raised on the
    /// submitter once all workers have checked in (a wedged `remaining`
    /// would otherwise block the submitter forever).
    panicked: bool,
}

struct RtShared {
    state: Mutex<RtState>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// The per-node execution core: persistent per-device scoring workers plus
/// the virtual-time claim engine. [`crate::DeviceEvaluator`] is a thin
/// facade over this type; it owns strategy bookkeeping (warm-up, Equation
/// 1 weights) and delegates every batch here via [`NodeRuntime::run_shares`]
/// (static splits) or [`NodeRuntime::run_steal`] (work stealing).
pub struct NodeRuntime {
    devices: Vec<Arc<SimDevice>>,
    scorer: Arc<Scorer>,
    timeline: Option<Arc<Timeline>>,
    trace: Trace,
    shared: Arc<RtShared>,
    workers: Vec<JoinHandle<()>>,
    /// Test hook: every worker panics on the next dispatch.
    #[cfg(test)]
    pub(crate) panic_next: bool,
}

impl NodeRuntime {
    /// Spawn one persistent scoring worker per device.
    ///
    /// # Panics
    /// Panics if `devices` is empty.
    pub fn new(devices: Vec<Arc<SimDevice>>, scorer: Arc<Scorer>) -> NodeRuntime {
        assert!(!devices.is_empty(), "need at least one device");
        let n = devices.len();
        let shared = Arc::new(RtShared {
            state: Mutex::new(RtState {
                generation: 0,
                shutdown: false,
                jobs: (0..n).map(|_| None).collect(),
                remaining: 0,
                panicked: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (0..n)
            .map(|index| {
                let shared = Arc::clone(&shared);
                let scorer = Arc::clone(&scorer);
                Builder::new()
                    .name(format!("vsched-rt-{index}"))
                    .spawn(move || runtime_worker(&shared, index, &scorer))
                    .expect("failed to spawn runtime worker")
            })
            .collect();
        NodeRuntime {
            devices,
            scorer,
            timeline: None,
            trace: Trace::disabled(),
            shared,
            workers,
            #[cfg(test)]
            panic_next: false,
        }
    }

    /// Record every device execution into `timeline` (Gantt introspection).
    pub fn set_timeline(&mut self, timeline: Arc<Timeline>) {
        self.timeline = Some(timeline);
    }

    /// Emit structured `vstrace` events from here on; device track names
    /// are registered from the catalog names.
    pub fn set_trace(&mut self, trace: Trace) {
        for dev in &self.devices {
            trace.set_track_name(dev.id() as u32, dev.name());
        }
        self.trace = trace;
    }

    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    pub fn devices(&self) -> &[Arc<SimDevice>] {
        &self.devices
    }

    pub fn scorer(&self) -> &Arc<Scorer> {
        &self.scorer
    }

    /// The overall virtual execution time so far (slowest device).
    pub fn makespan(&self) -> f64 {
        self.devices.iter().map(|d| d.clock()).fold(0.0, f64::max)
    }

    /// Advance every device clock to at least `vt`, emitting a
    /// `DeviceIdle` span for each device that was waiting. This is how a
    /// streamed batch's host-side release time (the generational engine's
    /// variation/selection work) charges the devices: a batch submitted at
    /// `vt` cannot start before `vt`, and any gap since the device's last
    /// work is genuine idleness the pipelined engine exists to remove.
    pub fn release_until(&mut self, vt: f64) {
        for dev in &self.devices {
            let clock = dev.clock();
            if clock < vt {
                self.trace.emit(Event::DeviceIdle {
                    device: dev.id() as u32,
                    vt_start: clock,
                    vt_end: vt,
                });
                dev.sync_to(vt);
            }
        }
    }

    /// Execute `confs` with one contiguous chunk per device, sized by
    /// `shares` (which must sum to `confs.len()`). Virtual time is charged
    /// per device up front; scoring runs on the persistent workers.
    pub fn run_shares(&mut self, confs: &mut [Conformation], shares: &[u64]) {
        assert_eq!(shares.len(), self.devices.len(), "one share per device");
        let profile = work_profile(&self.scorer);
        let mut ranges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.devices.len()];
        let mut offset = 0u32;
        for (i, &share) in shares.iter().enumerate() {
            if share > 0 {
                let hi = offset + share as u32;
                ranges[i].push((offset, hi));
                offset = hi;
                charge(&self.devices[i], share, profile, self.timeline.as_deref(), &self.trace);
            }
        }
        debug_assert_eq!(offset as usize, confs.len(), "shares must cover the batch");
        self.dispatch(confs, ranges);
    }

    /// Execute `confs` through the work-stealing drain: deques seeded
    /// proportionally to `weights`, claims and steals resolved in virtual
    /// time, scoring dispatched to the workers. Returns the drain's
    /// statistics.
    pub fn run_steal(
        &mut self,
        confs: &mut [Conformation],
        weights: &[f64],
        cfg: &StealConfig,
    ) -> StealStats {
        let n = self.devices.len();
        assert_eq!(weights.len(), n, "one weight per device");
        let items = confs.len() as u64;
        let shares = proportional_split(items, weights);
        let mut deques = Vec::with_capacity(n);
        let mut offset = 0u32;
        for (i, &share) in shares.iter().enumerate() {
            let hi = offset + share as u32;
            deques.push(ChunkDeque::new(offset, hi));
            if self.trace.is_enabled() {
                self.trace.emit(Event::PartitionDecision {
                    device: self.devices[i].id() as u32,
                    share: share as f64 / items.max(1) as f64,
                    weight: weights[i],
                });
            }
            offset = hi;
        }
        let (claims, stats) = drain_deques(
            &self.devices,
            &deques,
            cfg,
            work_profile(&self.scorer),
            self.timeline.as_deref(),
            &self.trace,
        );
        let mut ranges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for c in &claims {
            ranges[c.device].push((c.lo, c.hi));
        }
        self.dispatch(confs, ranges);
        stats
    }

    /// Publish one job per worker and block until every worker checked in;
    /// re-raises any worker panic on the calling thread.
    fn dispatch(&mut self, confs: &mut [Conformation], ranges: Vec<Vec<(u32, u32)>>) {
        {
            // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
            let mut st = self.shared.state.lock().expect("runtime mutex poisoned");
            for (slot, ranges) in st.jobs.iter_mut().zip(ranges) {
                debug_assert!(ranges
                    .iter()
                    .all(|&(lo, hi)| lo <= hi && hi as usize <= confs.len()));
                *slot = Some(RtJob {
                    confs: confs.as_mut_ptr(),
                    len: confs.len(),
                    ranges,
                    #[cfg(test)]
                    induce_panic: self.panic_next,
                });
            }
            st.generation += 1;
            st.remaining = self.workers.len();
        }
        self.shared.work_cv.notify_all();
        #[cfg(test)]
        {
            self.panic_next = false;
        }
        let panicked = {
            // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
            let mut st = self.shared.state.lock().expect("runtime mutex poisoned");
            while st.remaining > 0 {
                // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating is deliberate.
                st = self.shared.done_cv.wait(st).expect("runtime mutex poisoned");
            }
            std::mem::take(&mut st.panicked)
        };
        if panicked {
            panic!("device worker panicked");
        }
    }
}

impl Drop for NodeRuntime {
    fn drop(&mut self) {
        {
            // PANICS: lock poisoning means a worker already panicked; propagating from drop is deliberate.
            let mut st = self.shared.state.lock().expect("runtime mutex poisoned");
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn runtime_worker(shared: &RtShared, index: usize, scorer: &Scorer) {
    let mut scratch = vsscore::PoseScratch::new();
    let mut seen_generation = 0u64;
    loop {
        let job = {
            // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
            let mut st = shared.state.lock().expect("runtime mutex poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen_generation {
                    seen_generation = st.generation;
                    break st.jobs[index].take();
                }
                // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
                st = shared.work_cv.wait(st).expect("runtime mutex poisoned");
            }
        };

        // Run the claimed ranges under catch_unwind: a panicking scorer
        // must still decrement `remaining` (otherwise the submitter blocks
        // forever); the panic is recorded and re-raised on the submitter.
        let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(job) = &job {
                #[cfg(test)]
                {
                    if job.induce_panic {
                        panic!("induced device worker panic");
                    }
                }
                if !job.ranges.is_empty() {
                    // SAFETY: see the RtJob safety comment — the submitter
                    // blocks in `dispatch` until every worker decrements
                    // `remaining`, and jobs cover disjoint slice ranges.
                    let confs = unsafe { std::slice::from_raw_parts_mut(job.confs, job.len) };
                    for &(lo, hi) in &job.ranges {
                        let chunk = &mut confs[lo as usize..hi as usize];
                        if !chunk.is_empty() {
                            scorer.score_batch(
                                ScoreBatch::Confs(chunk),
                                &mut scratch,
                                Exec::Serial,
                            );
                        }
                    }
                }
            }
        }));

        // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
        let mut st = shared.state.lock().expect("runtime mutex poisoned");
        if body.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::catalog;
    use vsmath::{RigidTransform, RngStream};
    use vsmol::synth;

    fn scorer() -> Arc<Scorer> {
        let rec = synth::synth_receptor("r", 400, 1);
        let lig = synth::synth_ligand("l", 12, 2);
        Arc::new(Scorer::new(&rec, &lig, Default::default()))
    }

    fn hertz_devices() -> Vec<Arc<SimDevice>> {
        vec![
            Arc::new(SimDevice::new(0, catalog::tesla_k40c())),
            Arc::new(SimDevice::new(1, catalog::geforce_gtx_580())),
        ]
    }

    fn confs(n: usize, seed: u64) -> Vec<Conformation> {
        let mut rng = RngStream::from_seed(seed);
        (0..n)
            .map(|_| Conformation::new(RigidTransform::new(rng.rotation(), rng.in_ball(25.0)), 0))
            .collect()
    }

    fn serial_scores(sc: &Scorer, confs: &[Conformation]) -> Vec<f64> {
        let mut b = confs.to_vec();
        let mut scratch = vsscore::PoseScratch::new();
        sc.score_batch(ScoreBatch::Confs(&mut b), &mut scratch, Exec::Serial);
        b.iter().map(|c| c.score).collect()
    }

    #[test]
    fn chunk_size_guided_floor_and_tail_merge() {
        // Guided: len/divisor when comfortably above the floor.
        assert_eq!(chunk_size(4000, 2, 960), 2000);
        // Floor clamp.
        assert_eq!(chunk_size(2100, 4, 960), 960);
        // Tail merge: below 2x floor the claim takes everything, so the
        // last launch still saturates the device.
        assert_eq!(chunk_size(1919, 2, 960), 1919);
        assert_eq!(chunk_size(5, 2, 1), 2);
        assert_eq!(chunk_size(1, 2, 1), 1);
    }

    #[test]
    fn drain_healthy_matches_seeded_shares_with_whole_chunks() {
        // At paper-scale generation sizes (items < 2x the occupancy floor
        // per deque) the healthy drain claims each deque in one chunk:
        // identical device assignment — and virtual time — to the static
        // Percent split, so work stealing costs nothing when nothing
        // goes wrong.
        let devs = hertz_devices();
        let deques = [ChunkDeque::new(0, 1229), ChunkDeque::new(1229, 2048)];
        let (claims, stats) = drain_deques(
            &devs,
            &deques,
            &StealConfig::default(),
            WorkProfile::pairs(146_880),
            None,
            &Trace::disabled(),
        );
        assert_eq!(stats.steals, 0, "healthy paper-scale batch must not steal");
        assert_eq!(claims.len(), 2);
        assert_eq!(claims[0], Claim { device: 0, lo: 0, hi: 1229, stolen_from: None });
        assert_eq!(claims[1], Claim { device: 1, lo: 1229, hi: 2048, stolen_from: None });
        assert_eq!(devs[0].stats().items, 1229);
        assert_eq!(devs[1].stats().items, 819);
    }

    #[test]
    fn drain_steals_from_straggler() {
        // Device 1 degrades 8x after seeding (stale weights): its first
        // guided claim inflates its clock, and device 0 — done with its
        // own deque — steals the victim's tail.
        let devs = hertz_devices();
        devs[1].set_slowdown(8.0);
        let deques = [ChunkDeque::new(0, 12_000), ChunkDeque::new(12_000, 20_000)];
        let trace = Trace::new();
        let (claims, stats) = drain_deques(
            &devs,
            &deques,
            &StealConfig::default(),
            WorkProfile::pairs(146_880),
            None,
            &trace,
        );
        assert!(stats.steals > 0, "straggler tail must be stolen: {stats:?}");
        assert!(
            claims.iter().any(|c| c.device == 0 && c.stolen_from == Some(1)),
            "healthy device must steal from the straggler: {claims:?}"
        );
        // Every steal produced a JobMigrated event.
        let data = trace.snapshot();
        let migrations =
            data.events().filter(|s| matches!(s.event, Event::JobMigrated { .. })).count() as u64;
        assert_eq!(migrations, stats.steals);
        // All 20k items were claimed exactly once.
        let mut ranges: Vec<(u32, u32)> = claims.iter().map(|c| (c.lo, c.hi)).collect();
        ranges.sort_unstable();
        let mut next = 0;
        for (lo, hi) in ranges {
            assert_eq!(lo, next);
            next = hi;
        }
        assert_eq!(next, 20_000);
    }

    #[test]
    fn drain_is_deterministic() {
        let run = || {
            let devs = hertz_devices();
            devs[1].set_slowdown(4.0);
            let deques = [ChunkDeque::new(0, 9_000), ChunkDeque::new(9_000, 16_000)];
            let (claims, stats) = drain_deques(
                &devs,
                &deques,
                &StealConfig::default(),
                WorkProfile::pairs(4_800),
                None,
                &Trace::disabled(),
            );
            (claims, stats, devs[0].clock(), devs[1].clock())
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0, "claim sequence must be reproducible");
        assert_eq!(a.1, b.1);
        assert_eq!(a.2.to_bits(), b.2.to_bits());
        assert_eq!(a.3.to_bits(), b.3.to_bits());
    }

    #[test]
    fn run_shares_scores_bit_identical_to_serial() {
        let sc = scorer();
        let mut rt = NodeRuntime::new(hertz_devices(), Arc::clone(&sc));
        let mut c = confs(50, 3);
        let want = serial_scores(&sc, &c);
        rt.run_shares(&mut c, &[30, 20]);
        for (got, want) in c.iter().zip(&want) {
            assert_eq!(got.score.to_bits(), want.to_bits());
        }
        assert!(rt.makespan() > 0.0);
    }

    #[test]
    fn run_steal_scores_bit_identical_to_serial() {
        let sc = scorer();
        let mut rt = NodeRuntime::new(hertz_devices(), Arc::clone(&sc));
        // Small min_chunk forces many chunks and (with a straggler) steals
        // — the scores must not care.
        rt.devices()[1].set_slowdown(6.0);
        let mut c = confs(257, 7);
        let want = serial_scores(&sc, &c);
        let stats = rt.run_steal(&mut c, &[1.0, 1.0], &StealConfig { divisor: 2, min_chunk: 8 });
        assert!(stats.chunks >= 2);
        assert!(stats.steals > 0, "expected steals with a 6x straggler: {stats:?}");
        for (i, (got, want)) in c.iter().zip(&want).enumerate() {
            assert_eq!(got.score.to_bits(), want.to_bits(), "conf {i}");
        }
    }

    #[test]
    fn zero_weight_device_is_seeded_empty_but_can_steal() {
        let sc = scorer();
        let mut rt = NodeRuntime::new(hertz_devices(), Arc::clone(&sc));
        let mut c = confs(64, 9);
        let stats = rt.run_steal(&mut c, &[0.0, 1.0], &StealConfig { divisor: 2, min_chunk: 4 });
        assert!(c.iter().all(|x| x.is_scored()));
        // Device 0 starts empty; anything it executed was stolen.
        let d0 = rt.devices()[0].stats().items;
        assert!(stats.stolen_items >= d0, "{stats:?} vs device 0 items {d0}");
    }

    #[test]
    fn timeline_records_steal_claims() {
        let sc = scorer();
        let tl = Arc::new(Timeline::new());
        let mut rt = NodeRuntime::new(hertz_devices(), Arc::clone(&sc));
        rt.set_timeline(Arc::clone(&tl));
        let mut c = confs(120, 4);
        let stats = rt.run_steal(&mut c, &[1.0, 1.0], &StealConfig { divisor: 2, min_chunk: 16 });
        assert_eq!(tl.segments().len() as u64, stats.chunks, "one Gantt segment per claim");
        let recorded: u64 = tl.segments().iter().map(|s| s.items).sum();
        assert_eq!(recorded, 120);
        assert!((tl.makespan() - rt.makespan()).abs() < 1e-15);
    }
}
