//! Unified evaluator construction.
//!
//! Every experiment driver used to pick between divergent per-backend
//! constructors (serial CPU, pooled CPU, device-scheduled) at each call
//! site. [`EvaluatorSpec`] is the single factory: a declarative
//! description of *where* batches are scored
//! that [`EvaluatorSpec::build`]s into a boxed [`BatchEvaluator`], with
//! [`EvaluatorSpec::build_traced`] threading a [`vstrace::Trace`] through
//! the instrumented backends.

use crate::executor::DeviceEvaluator;
use crate::strategy::Strategy;
use gpusim::SimDevice;
use metaheur::{BatchEvaluator, CpuEvaluator};
use std::sync::Arc;
use vsscore::{Exec, Scorer};
use vstrace::Trace;

/// A declarative description of a scoring backend.
#[derive(Debug, Clone)]
pub enum EvaluatorSpec {
    /// Single-threaded CPU scoring on the calling thread.
    SerialCpu,
    /// The persistent shared CPU worker pool — the paper's OpenMP baseline.
    PooledCpu { threads: usize },
    /// Batches partitioned across simulated devices by `strategy` and
    /// computed on the persistent per-device workers
    /// ([`crate::DeviceEvaluator`]).
    Device { devices: Vec<Arc<SimDevice>>, strategy: Strategy },
}

impl EvaluatorSpec {
    /// Build the evaluator this spec describes, uninstrumented. The box is
    /// `Send` so the result can feed the pipelined engine's scoring stage
    /// ([`metaheur::run_exec`]) as well as the classic lockstep loop.
    pub fn build(&self, scorer: Arc<Scorer>) -> Box<dyn BatchEvaluator + Send> {
        self.build_traced(scorer, Trace::disabled())
    }

    /// Build the evaluator with `trace` attached where the backend supports
    /// instrumentation (a disabled trace costs nothing).
    pub fn build_traced(
        &self,
        scorer: Arc<Scorer>,
        trace: Trace,
    ) -> Box<dyn BatchEvaluator + Send> {
        match self {
            EvaluatorSpec::SerialCpu => {
                Box::new(CpuEvaluator::new((*scorer).clone(), Exec::Serial).with_trace(trace))
            }
            EvaluatorSpec::PooledCpu { threads } => Box::new(
                CpuEvaluator::new((*scorer).clone(), Exec::Pool(*threads)).with_trace(trace),
            ),
            EvaluatorSpec::Device { devices, strategy } => {
                Box::new(DeviceEvaluator::new(devices.clone(), scorer, *strategy).with_trace(trace))
            }
        }
    }

    /// Human-readable label for reports.
    pub fn label(&self) -> String {
        match self {
            EvaluatorSpec::SerialCpu => "serial CPU".into(),
            EvaluatorSpec::PooledCpu { threads } => format!("CPU pool ({threads} threads)"),
            EvaluatorSpec::Device { devices, strategy } => {
                format!("{} ({} devices)", strategy.label(), devices.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::catalog;
    use vsmath::{RigidTransform, RngStream};
    use vsmol::synth;
    use vsmol::Conformation;

    fn scorer() -> Arc<Scorer> {
        let rec = synth::synth_receptor("r", 300, 1);
        let lig = synth::synth_ligand("l", 10, 2);
        Arc::new(Scorer::new(&rec, &lig, Default::default()))
    }

    fn confs(n: usize, seed: u64) -> Vec<Conformation> {
        let mut rng = RngStream::from_seed(seed);
        (0..n)
            .map(|_| Conformation::new(RigidTransform::new(rng.rotation(), rng.in_ball(25.0)), 0))
            .collect()
    }

    #[test]
    fn all_backends_agree_bitwise() {
        let sc = scorer();
        let specs = [
            EvaluatorSpec::SerialCpu,
            EvaluatorSpec::PooledCpu { threads: 3 },
            EvaluatorSpec::Device {
                devices: vec![
                    Arc::new(SimDevice::new(0, catalog::tesla_k40c())),
                    Arc::new(SimDevice::new(1, catalog::geforce_gtx_580())),
                ],
                strategy: Strategy::HomogeneousSplit,
            },
        ];
        let mut reference: Option<Vec<u64>> = None;
        for spec in &specs {
            let mut ev = spec.build(sc.clone());
            let mut c = confs(37, 5);
            ev.evaluate(&mut c);
            let bits: Vec<u64> = c.iter().map(|x| x.score.to_bits()).collect();
            match &reference {
                Some(want) => assert_eq!(want, &bits, "{} diverged", spec.label()),
                None => reference = Some(bits),
            }
        }
    }

    #[test]
    fn built_evaluator_reports_pairs() {
        let sc = scorer();
        let ev = EvaluatorSpec::SerialCpu.build(sc.clone());
        assert_eq!(ev.pairs_per_eval(), sc.pairs_per_eval());
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(EvaluatorSpec::SerialCpu.label(), "serial CPU");
        assert_eq!(EvaluatorSpec::PooledCpu { threads: 8 }.label(), "CPU pool (8 threads)");
    }
}
