//! Lock-free per-device chunk deque for the work-stealing runtime.
//!
//! Each device owns one [`ChunkDeque`]: a half-open index range
//! `[lo, hi)` over the current batch's conformations, packed into a single
//! `AtomicU64` (`lo` in the high 32 bits, `hi` in the low 32). The owning
//! device claims chunks from the *front* ([`ChunkDeque::pop_front`],
//! advancing `lo`); idle thieves claim from the *back*
//! ([`ChunkDeque::steal_back`], retreating `hi`). Both ends are plain CAS
//! loops on the one word, so every claim is linearizable: a successful CAS
//! transfers ownership of exactly the claimed sub-range, and no
//! interleaving of owners and thieves can lose or double-claim an index —
//! the property the `model_*` suite below explores exhaustively under the
//! `vscheck-model` feature (DESIGN.md §10).
//!
//! # Memory ordering
//!
//! All operations use `Relaxed` loads and a `Relaxed`-failure CAS
//! (entered in `xlint`'s Relaxed allowlist). This is sound because the
//! packed range word is the *entire* shared state: the indices themselves
//! are the transferred data, carried by the CAS value, and the
//! conformation slice the indices refer to is written only *after* all
//! claims are handed to workers through a `Mutex`-protected job slot
//! (`runtime::RtShared`), which provides the necessary happens-before
//! edge. No payload is published through the deque word, so no
//! acquire/release pairing is needed on it.

use crate::sync::atomic::{AtomicU64, Ordering};

#[inline]
fn pack(lo: u32, hi: u32) -> u64 {
    (u64::from(lo) << 32) | u64::from(hi)
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// A range deque holding the not-yet-claimed chunk `[lo, hi)` of one
/// device's seeded share. See the module docs for the concurrency
/// contract.
pub struct ChunkDeque {
    range: AtomicU64,
}

impl ChunkDeque {
    /// A deque holding the half-open range `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn new(lo: u32, hi: u32) -> ChunkDeque {
        assert!(lo <= hi, "inverted range [{lo}, {hi})");
        ChunkDeque { range: AtomicU64::new(pack(lo, hi)) }
    }

    /// Items not yet claimed.
    pub fn len(&self) -> u32 {
        let (lo, hi) = unpack(self.range.load(Ordering::Relaxed));
        hi.saturating_sub(lo)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unclaimed `(lo, hi)` bounds (a racy snapshot under concurrency,
    /// exact when quiescent).
    pub fn bounds(&self) -> (u32, u32) {
        unpack(self.range.load(Ordering::Relaxed))
    }

    /// Owner end: claim up to `max` items from the front. Returns the
    /// claimed half-open range, or `None` if the deque is empty or
    /// `max == 0`.
    pub fn pop_front(&self, max: u32) -> Option<(u32, u32)> {
        if max == 0 {
            return None;
        }
        let mut cur = self.range.load(Ordering::Relaxed);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            let take = max.min(hi - lo);
            match self.range.compare_exchange(
                cur,
                pack(lo + take, hi),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some((lo, lo + take)),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Thief end: claim up to `max` items from the back. Returns the
    /// claimed half-open range, or `None` if the deque is empty or
    /// `max == 0`.
    pub fn steal_back(&self, max: u32) -> Option<(u32, u32)> {
        if max == 0 {
            return None;
        }
        let mut cur = self.range.load(Ordering::Relaxed);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            let take = max.min(hi - lo);
            match self.range.compare_exchange(
                cur,
                pack(lo, hi - take),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some((hi - take, hi)),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Test-and-teaching hook: a deliberately *broken* pop that performs
    /// the claim as a non-atomic load/store pair instead of a CAS. Two
    /// concurrent broken pops can both read the same `lo` and hand out the
    /// same chunk twice — the defect the model-checking suite proves
    /// `explore` finds and `replay` reproduces deterministically.
    #[cfg(any(test, feature = "vscheck-model"))]
    pub fn racy_pop_for_test(&self, max: u32) -> Option<(u32, u32)> {
        let (lo, hi) = unpack(self.range.load(Ordering::Relaxed));
        if lo >= hi || max == 0 {
            return None;
        }
        let take = max.min(hi - lo);
        // Lost update on purpose: another claim between the load above and
        // this store is silently overwritten.
        self.range.store(pack(lo + take, hi), Ordering::Relaxed);
        Some((lo, lo + take))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_drains_front_in_order() {
        let d = ChunkDeque::new(0, 10);
        assert_eq!(d.pop_front(4), Some((0, 4)));
        assert_eq!(d.pop_front(4), Some((4, 8)));
        assert_eq!(d.pop_front(4), Some((8, 10)), "final pop clips to the remainder");
        assert_eq!(d.pop_front(4), None);
        assert!(d.is_empty());
    }

    #[test]
    fn steal_takes_from_tail() {
        let d = ChunkDeque::new(0, 10);
        assert_eq!(d.steal_back(3), Some((7, 10)));
        assert_eq!(d.steal_back(100), Some((0, 7)), "oversized steal clips");
        assert_eq!(d.steal_back(1), None);
    }

    #[test]
    fn pop_and_steal_partition_the_range() {
        let d = ChunkDeque::new(5, 25);
        let a = d.pop_front(8).unwrap();
        let b = d.steal_back(8).unwrap();
        let c = d.pop_front(100).unwrap();
        assert_eq!(a, (5, 13));
        assert_eq!(b, (17, 25));
        assert_eq!(c, (13, 17));
        assert!(d.is_empty());
    }

    #[test]
    fn zero_max_claims_nothing() {
        let d = ChunkDeque::new(0, 4);
        assert_eq!(d.pop_front(0), None);
        assert_eq!(d.steal_back(0), None);
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn empty_range_allowed() {
        let d = ChunkDeque::new(7, 7);
        assert!(d.is_empty());
        assert_eq!(d.pop_front(1), None);
        assert_eq!(d.steal_back(1), None);
        assert_eq!(d.bounds(), (7, 7));
    }

    #[test]
    #[should_panic]
    fn inverted_range_rejected() {
        ChunkDeque::new(3, 2);
    }

    /// OS-thread stress: an owner popping and two thieves stealing must
    /// partition the range exactly once (coarse real-concurrency check;
    /// the exhaustive version is the `model_*` suite).
    #[test]
    fn concurrent_claims_cover_exactly_once() {
        use std::sync::{Arc, Mutex};
        const N: u32 = 50_000;
        let d = Arc::new(ChunkDeque::new(0, N));
        let claimed = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for thief in [false, true, true] {
            let d = Arc::clone(&d);
            let claimed = Arc::clone(&claimed);
            handles.push(std::thread::spawn(move || {
                let mut local = Vec::new();
                loop {
                    let got = if thief { d.steal_back(7) } else { d.pop_front(13) };
                    match got {
                        Some(r) => local.push(r),
                        None => break,
                    }
                }
                claimed.lock().unwrap().extend(local);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut ranges = claimed.lock().unwrap().clone();
        ranges.sort_unstable();
        let mut next = 0u32;
        for (lo, hi) in ranges {
            assert_eq!(lo, next, "gap or overlap at {lo}");
            assert!(hi > lo);
            next = hi;
        }
        assert_eq!(next, N, "tail lost");
    }
}

/// Exhaustive interleaving checks of the deque's claim protocol under the
/// `vscheck` model checker (run with
/// `cargo test -p vsched --features vscheck-model model_`).
///
/// Invariant: under *every* bounded interleaving of two claiming workers
/// plus one stealer, the union of claimed ranges is exactly the seeded
/// range — no chunk lost, none double-executed. A deliberately broken
/// (non-CAS) variant shows the checker finds the violation and that the
/// reported schedule replays it deterministically.
#[cfg(all(test, feature = "vscheck-model"))]
mod model_tests {
    use super::*;
    use crate::sync::thread::Builder;
    use crate::sync::Mutex;
    use std::sync::Arc;
    use vscheck::{explore, replay, Config};

    /// Run `claimers` threads against one deque of `n` items; each thread
    /// repeatedly invokes its claim function until the deque is empty.
    /// Returns the sorted list of claimed ranges.
    fn claim_all(n: u32, claimers: &[fn(&ChunkDeque) -> Option<(u32, u32)>]) -> Vec<(u32, u32)> {
        let deque = Arc::new(ChunkDeque::new(0, n));
        let claimed = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = claimers
            .iter()
            .map(|&claim| {
                let deque = Arc::clone(&deque);
                let claimed = Arc::clone(&claimed);
                Builder::new()
                    .name("claimer".into())
                    .spawn(move || {
                        while let Some(r) = claim(&deque) {
                            claimed.lock().expect("claim log poisoned").push(r);
                        }
                    })
                    .expect("spawn claimer")
            })
            .collect();
        for h in handles {
            h.join().expect("claimer panicked");
        }
        let mut ranges = claimed.lock().expect("claim log poisoned").clone();
        ranges.sort_unstable();
        ranges
    }

    fn assert_exact_cover(ranges: &[(u32, u32)], n: u32) {
        let mut next = 0u32;
        for &(lo, hi) in ranges {
            assert_eq!(lo, next, "chunk lost or double-claimed at index {lo} (got {ranges:?})");
            assert!(hi > lo, "empty claim in {ranges:?}");
            next = hi;
        }
        assert_eq!(next, n, "tail of the range lost ({ranges:?})");
    }

    #[test]
    fn model_two_workers_one_stealer_exact_coverage() {
        let report = explore(Config::with_bound(2), || {
            let ranges = claim_all(
                6,
                &[
                    |d| d.pop_front(2),  // worker, guided-size grabs
                    |d| d.pop_front(3),  // second worker, larger grabs
                    |d| d.steal_back(2), // thief at the tail
                ],
            );
            assert_exact_cover(&ranges, 6);
        });
        report.assert_passed();
        assert!(report.complete, "bounded state space must be exhausted");
    }

    #[test]
    fn model_thieves_only_still_partition() {
        let report = explore(Config::with_bound(2), || {
            let ranges = claim_all(5, &[|d| d.steal_back(2), |d| d.steal_back(3)]);
            assert_exact_cover(&ranges, 5);
        });
        report.assert_passed();
        assert!(report.complete);
    }

    #[test]
    fn model_broken_pop_found_and_replays_deterministically() {
        // The non-CAS pop loses updates: two concurrent claims can hand
        // out the same chunk. `explore` must find such an interleaving,
        // and the reported schedule must reproduce the same failure via
        // `replay` — the satellite's "a found violation replays
        // deterministically" contract.
        let check = || {
            let ranges = claim_all(4, &[|d| d.racy_pop_for_test(2), |d| d.racy_pop_for_test(2)]);
            assert_exact_cover(&ranges, 4);
        };
        let report = explore(Config::with_bound(2), check);
        let failure = report.failure.expect("the racy pop must be caught");
        assert!(
            failure.message.contains("double-claimed") || failure.message.contains("lost"),
            "unexpected failure: {}",
            failure.message
        );
        for _ in 0..2 {
            let replayed = replay(&failure.schedule, check);
            let again = replayed.failure.expect("replay must reproduce the violation");
            assert_eq!(again.message, failure.message, "replay diverged");
        }
    }
}
