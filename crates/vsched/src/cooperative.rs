//! Job-level scheduling and cooperation.
//!
//! Abstract: "Our solution finds a good workload balance via dynamic
//! assignment of jobs to heterogeneous resources which perform independent
//! metaheuristic executions under different molecular interactions. A
//! cooperative scheduling of jobs optimizes the quality of the solution and
//! the overall performance of the simulation."
//!
//! Two pieces:
//!
//! - [`assign_jobs_dynamic`] — a whole metaheuristic execution (a *job*,
//!   e.g. one ligand × one spot set) is the assignment unit; jobs are dealt
//!   LPT-greedily to the device that frees up first.
//! - [`cooperative_search`] — several independent executions of the same
//!   docking problem run in epochs; after each epoch the per-spot incumbent
//!   bests are shared, seeding every job's next epoch ("the final solution
//!   is chosen from all independent executions", §3.3 — cooperation makes
//!   the independent executions exchange incumbents instead of only
//!   reducing at the end).

use gpusim::{SimDevice, WorkBatch};
use metaheur::{run_seeded, BatchEvaluator, MetaheuristicParams};
use std::sync::Arc;
use vsmol::{conformation::score_cmp, Conformation, Spot};

/// A job: a self-contained workload of `items` conformation evaluations at
/// `pairs_per_item` pair interactions each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobCost {
    pub id: usize,
    pub items: u64,
    pub pairs_per_item: u64,
}

/// Result of dynamically assigning jobs to devices.
#[derive(Debug, Clone)]
pub struct JobSchedule {
    /// `assignment[j]` = device index that ran job `j`.
    pub assignment: Vec<usize>,
    /// Final per-device virtual clocks.
    pub device_times: Vec<f64>,
    pub makespan: f64,
}

/// Dynamically assign whole jobs to heterogeneous devices: jobs are sorted
/// longest-processing-time-first and each goes to the device with the
/// earliest virtual clock (greedy list scheduling). Device clocks advance.
pub fn assign_jobs_dynamic(devices: &[Arc<SimDevice>], jobs: &[JobCost]) -> JobSchedule {
    assert!(!devices.is_empty(), "need devices");
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    // LPT by estimated cost on the fastest device (any consistent measure
    // works for ordering).
    order.sort_by(|&a, &b| {
        let ka = jobs[a].items * jobs[a].pairs_per_item;
        let kb = jobs[b].items * jobs[b].pairs_per_item;
        kb.cmp(&ka).then(a.cmp(&b))
    });

    let mut assignment = vec![usize::MAX; jobs.len()];
    for &j in &order {
        let (di, dev) = devices
            .iter()
            .enumerate()
            // PANICS: inputs are non-empty by caller contract and scores/clocks are finite.
            .min_by(|a, b| a.1.clock().partial_cmp(&b.1.clock()).unwrap())
            .expect("non-empty");
        dev.execute(&WorkBatch::conformations(jobs[j].items, jobs[j].pairs_per_item));
        assignment[j] = di;
    }
    let device_times: Vec<f64> = devices.iter().map(|d| d.clock()).collect();
    let makespan = device_times.iter().cloned().fold(0.0, f64::max);
    JobSchedule { assignment, device_times, makespan }
}

/// Outcome of a cooperative multi-job search.
#[derive(Debug, Clone)]
pub struct CoopResult {
    /// Best conformation found by any job.
    pub best: Conformation,
    /// Incumbent best per spot after the final epoch.
    pub best_per_spot: Vec<Conformation>,
    /// Global best after each epoch.
    pub epoch_history: Vec<f64>,
    /// Total scoring evaluations across all jobs and epochs.
    pub evaluations: u64,
}

/// Run `n_jobs` independent executions of `params` for `epochs` rounds,
/// sharing the per-spot incumbent bests between rounds.
///
/// `make_evaluator` supplies a fresh evaluator per (job, epoch) — in tests
/// a synthetic landscape, in production a [`crate::DeviceEvaluator`].
pub fn cooperative_search<E, F>(
    params: &MetaheuristicParams,
    spots: &[Spot],
    mut make_evaluator: F,
    n_jobs: usize,
    epochs: usize,
    seed: u64,
) -> CoopResult
where
    E: BatchEvaluator,
    F: FnMut() -> E,
{
    assert!(n_jobs > 0 && epochs > 0, "need at least one job and one epoch");
    let mut incumbents: Vec<Option<Conformation>> = vec![None; spots.len()];
    let mut epoch_history = Vec::with_capacity(epochs);
    let mut evaluations = 0;

    for epoch in 0..epochs {
        let seeds: Vec<Conformation> = incumbents.iter().flatten().copied().collect();
        for job in 0..n_jobs {
            let mut ev = make_evaluator();
            let job_seed = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((epoch * n_jobs + job) as u64 + 1);
            let r = run_seeded(params, spots, &mut ev, job_seed, &seeds);
            evaluations += r.evaluations;
            for (slot, found) in incumbents.iter_mut().zip(&r.best_per_spot) {
                let better = match slot {
                    Some(cur) => found.score < cur.score,
                    None => true,
                };
                if better {
                    *slot = Some(*found);
                }
            }
        }
        let best_now = incumbents.iter().flatten().map(|c| c.score).fold(f64::INFINITY, f64::min);
        epoch_history.push(best_now);
    }

    let best_per_spot: Vec<Conformation> =
        // PANICS: the epoch loop dispatches work to every spot, and scores are finite.
        incumbents.into_iter().map(|c| c.expect("every spot searched")).collect();
    let best = *best_per_spot.iter().min_by(|a, b| score_cmp(a, b)).expect("non-empty");
    CoopResult { best, best_per_spot, epoch_history, evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::catalog;
    use metaheur::{m1, SyntheticEvaluator};
    use vsmath::Vec3;

    fn devices() -> Vec<Arc<SimDevice>> {
        vec![
            Arc::new(SimDevice::new(0, catalog::tesla_k40c())),
            Arc::new(SimDevice::new(1, catalog::geforce_gtx_580())),
        ]
    }

    fn jobs(n: usize) -> Vec<JobCost> {
        (0..n)
            .map(|i| JobCost { id: i, items: 2048 + 512 * (i as u64 % 5), pairs_per_item: 100_000 })
            .collect()
    }

    #[test]
    fn all_jobs_assigned() {
        let devs = devices();
        let js = jobs(12);
        let sched = assign_jobs_dynamic(&devs, &js);
        assert_eq!(sched.assignment.len(), 12);
        assert!(sched.assignment.iter().all(|&d| d < 2));
        assert!(sched.makespan > 0.0);
    }

    #[test]
    fn fast_device_takes_more_jobs() {
        let devs = devices();
        let sched = assign_jobs_dynamic(&devs, &jobs(20));
        let to_k40 = sched.assignment.iter().filter(|&&d| d == 0).count();
        let to_580 = 20 - to_k40;
        assert!(to_k40 > to_580, "K40c got {to_k40}, GTX 580 got {to_580}");
    }

    #[test]
    fn dynamic_beats_round_robin() {
        // Round-robin: assign alternately regardless of device speed.
        let devs_rr = devices();
        let js = jobs(16);
        for (i, j) in js.iter().enumerate() {
            devs_rr[i % 2].execute(&WorkBatch::conformations(j.items, j.pairs_per_item));
        }
        let rr_makespan = devs_rr.iter().map(|d| d.clock()).fold(0.0, f64::max);

        let devs_dyn = devices();
        let dyn_makespan = assign_jobs_dynamic(&devs_dyn, &js).makespan;
        assert!(
            dyn_makespan < rr_makespan,
            "dynamic {dyn_makespan} should beat round-robin {rr_makespan}"
        );
    }

    #[test]
    fn job_schedule_balances_clocks() {
        let devs = devices();
        let sched = assign_jobs_dynamic(&devs, &jobs(40));
        let imb = (sched.device_times[0] - sched.device_times[1]).abs() / sched.makespan;
        assert!(imb < 0.25, "imbalance {imb}");
    }

    fn coop_spots(n: usize) -> Vec<Spot> {
        (0..n)
            .map(|i| Spot {
                id: i,
                center: Vec3::new(12.0 * i as f64, 0.0, 0.0),
                normal: Vec3::Z,
                radius: 5.0,
                anchor_atom: 0,
            })
            .collect()
    }

    #[test]
    fn cooperative_history_is_monotone() {
        let sp = coop_spots(3);
        let optima: Vec<Vec3> = sp.iter().map(|s| s.center + Vec3::new(1.0, 0.5, 0.0)).collect();
        let r =
            cooperative_search(&m1(0.2), &sp, || SyntheticEvaluator::new(optima.clone()), 3, 4, 99);
        for w in r.epoch_history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "incumbent regressed: {:?}", r.epoch_history);
        }
        assert_eq!(r.best_per_spot.len(), 3);
    }

    #[test]
    fn cooperation_beats_independent_runs_at_equal_budget() {
        // 3 jobs × 2 epochs WITH incumbent sharing vs 6 independent jobs
        // (1 epoch: nothing is ever shared). Same width, same evaluation
        // budget; sharing lets second-epoch jobs refine the incumbents, so
        // it must not be worse.
        let sp = coop_spots(2);
        let optima: Vec<Vec3> = sp.iter().map(|s| s.center + Vec3::new(1.5, 1.0, 0.0)).collect();
        let coop =
            cooperative_search(&m1(0.2), &sp, || SyntheticEvaluator::new(optima.clone()), 3, 2, 7);
        let indep =
            cooperative_search(&m1(0.2), &sp, || SyntheticEvaluator::new(optima.clone()), 6, 1, 7);
        assert_eq!(coop.evaluations, indep.evaluations, "budgets must match");
        assert!(
            coop.best.score <= indep.best.score + 1e-9,
            "cooperative {} vs independent {}",
            coop.best.score,
            indep.best.score
        );
    }

    #[test]
    fn evaluations_accumulate_across_jobs() {
        let sp = coop_spots(1);
        let p = m1(0.1);
        let r =
            cooperative_search(&p, &sp, || SyntheticEvaluator::new(vec![sp[0].center]), 2, 3, 1);
        assert_eq!(r.evaluations, p.evals_per_spot() * 2 * 3);
    }

    #[test]
    #[should_panic]
    fn zero_jobs_panics() {
        let sp = coop_spots(1);
        cooperative_search(&m1(0.1), &sp, || SyntheticEvaluator::new(vec![Vec3::ZERO]), 0, 1, 1);
    }
}
