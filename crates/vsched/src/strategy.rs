//! Scheduling strategies compared in the paper's evaluation.

use crate::warmup::{shares_from_times, warmup_times, WarmupConfig};
use gpusim::{SimDevice, WorkProfile};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How conformations are assigned to devices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// All work on the host CPU — the paper's OpenMP baseline column.
    CpuOnly,
    /// Equal split across GPUs (Algorithm 2): the *homogeneous algorithm*,
    /// blind to device differences.
    HomogeneousSplit,
    /// Warm-up + Equation 1 proportional split: the *heterogeneous
    /// algorithm* (§3.3).
    HeterogeneousSplit { warmup: WarmupConfig },
    /// Dynamic self-scheduling: conformations are dealt in chunks to
    /// whichever device has the earliest virtual clock (ablation beyond
    /// the paper's static splits).
    DynamicQueue { chunk: u64 },
    /// Adaptive split (ablation beyond the paper): like the heterogeneous
    /// algorithm, but the Equation 1 weights are re-measured from the last
    /// window every `rebalance_every` batches — robust to devices whose
    /// speed changes mid-run (thermal throttling, contention).
    AdaptiveSplit { warmup: WarmupConfig, rebalance_every: usize },
    /// Guided self-scheduling (Polychronopoulos & Kuck): dynamic chunks of
    /// `remaining / (k × devices)` — large early chunks keep occupancy
    /// high, shrinking tail chunks balance the finish. The classic answer
    /// to the fixed-chunk dilemma the chunk-size ablation exposes.
    GuidedQueue { divisor: u64 },
    /// The unified runtime's work-stealing mode (DESIGN.md §10): warm-up +
    /// Equation 1 weights seed per-device deques each batch, owners drain
    /// their deque in guided chunks (`remaining / divisor`, floor-clamped
    /// at the device's occupancy saturation), and idle devices steal half
    /// the tail of the most-loaded victim. Heals mispredicted or degraded
    /// devices that the frozen Percent split would leave stranded.
    WorkSteal { warmup: WarmupConfig, divisor: u64 },
    /// The learned cost oracle (DESIGN.md §15): the warm-up is ingested as
    /// a cold-start prior instead of a terminal answer, every batch's
    /// `(units, virtual seconds)` refines per-(device, kernel-class)
    /// throughput fits, and the work-stealing deques are re-seeded from
    /// the *current* fitted rates before each batch. Drift (a device
    /// slowing or recovering mid-run) re-fits the model within a few
    /// batches, so seeds track reality and stealing shrinks to a safety
    /// net.
    Oracle { warmup: WarmupConfig, divisor: u64 },
}

impl Strategy {
    /// Human-readable label matching the paper's table columns.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::CpuOnly => "OpenMP",
            Strategy::HomogeneousSplit => "Homogeneous computation",
            Strategy::HeterogeneousSplit { .. } => "Heterogeneous computation",
            Strategy::DynamicQueue { .. } => "Dynamic queue",
            Strategy::AdaptiveSplit { .. } => "Adaptive split",
            Strategy::GuidedQueue { .. } => "Guided self-scheduling",
            Strategy::WorkSteal { .. } => "Work stealing",
            Strategy::Oracle { .. } => "Learned oracle",
        }
    }

    /// Compute per-device weights for the static strategies. For the
    /// heterogeneous strategy this *runs the warm-up* (charging its cost to
    /// the device clocks) in the given cost regime
    /// ([`crate::runtime::work_profile`] maps a scorer to its profile).
    /// Returns `None` for strategies that do not use static weights
    /// (CPU-only, dynamic).
    pub fn device_weights(
        &self,
        devices: &[Arc<SimDevice>],
        profile: WorkProfile,
    ) -> Option<Vec<f64>> {
        match self {
            Strategy::CpuOnly
            | Strategy::DynamicQueue { .. }
            | Strategy::AdaptiveSplit { .. }
            | Strategy::GuidedQueue { .. }
            // Work stealing and the oracle derive their seed weights inside
            // the executor / replay (per-batch deque seeds queried from the
            // warm-up or the live fits, not a fixed split).
            | Strategy::WorkSteal { .. }
            | Strategy::Oracle { .. } => None,
            Strategy::HomogeneousSplit => Some(vec![1.0; devices.len()]),
            Strategy::HeterogeneousSplit { warmup } => {
                let times = warmup_times(devices, profile, *warmup);
                Some(shares_from_times(&times))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::catalog;

    fn hertz_gpus() -> Vec<Arc<SimDevice>> {
        vec![
            Arc::new(SimDevice::new(0, catalog::tesla_k40c())),
            Arc::new(SimDevice::new(1, catalog::geforce_gtx_580())),
        ]
    }

    #[test]
    fn labels() {
        assert_eq!(Strategy::CpuOnly.label(), "OpenMP");
        assert_eq!(Strategy::HomogeneousSplit.label(), "Homogeneous computation");
        assert_eq!(
            Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() }.label(),
            "Heterogeneous computation"
        );
    }

    #[test]
    fn homogeneous_weights_are_equal() {
        let w = Strategy::HomogeneousSplit
            .device_weights(&hertz_gpus(), WorkProfile::pairs(1000))
            .unwrap();
        assert_eq!(w, vec![1.0, 1.0]);
    }

    #[test]
    fn heterogeneous_weights_favor_fast_device() {
        let devs = hertz_gpus();
        let w = Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() }
            .device_weights(&devs, WorkProfile::pairs(45 * 3264))
            .unwrap();
        assert!(w[0] > w[1], "K40c should get the larger share: {w:?}");
        // Warm-up charged.
        assert!(devs[0].clock() > 0.0 && devs[1].clock() > 0.0);
    }

    #[test]
    fn cpu_and_dynamic_have_no_static_weights() {
        let devs = hertz_gpus();
        assert!(Strategy::CpuOnly.device_weights(&devs, WorkProfile::pairs(10)).is_none());
        assert!(Strategy::DynamicQueue { chunk: 32 }
            .device_weights(&devs, WorkProfile::pairs(10))
            .is_none());
    }
}
