//! The real-compute batch evaluator: a thin strategy facade over the
//! unified node runtime ([`crate::runtime::NodeRuntime`]).
//!
//! [`DeviceEvaluator`] owns the *policy*: resolving a [`Strategy`] into
//! per-batch device shares (running the paper's warm-up and Equation 1
//! where the strategy calls for it) and the associated trace bookkeeping
//! (`WarmupSample`, `PartitionDecision`, `BatchScored`). All *mechanism* —
//! persistent per-device worker threads, virtual-time accounting, the
//! work-stealing deque drain — lives in the runtime, which every execution
//! path on a node shares (DESIGN.md §10).
//!
//! # Determinism
//!
//! Device shares are disjoint index ranges scored serially per worker with
//! the same kernel as [`vsscore::Scorer::score_batch`], so scores are
//! bit-identical to the serial CPU path for every strategy — including
//! work stealing, where chunk migration changes *which device is charged*,
//! never the numeric result — for whichever kernel the scorer is
//! configured with (DESIGN §7 per-kernel bit-identity).

use crate::oracle::{CostOracle, OracleConfig};
use crate::partition::proportional_split;
use crate::runtime::{work_profile, NodeRuntime, StealConfig, StealStats};
use crate::strategy::Strategy;
use gpusim::SimDevice;
use metaheur::BatchEvaluator;
use std::sync::Arc;
use vsmol::Conformation;
use vsscore::Scorer;
use vstrace::{Event, Trace, BATCH_TRACK};

/// How the dynamic (self-scheduling) mode sizes its greedy chunks.
enum DynamicChunking {
    /// [`Strategy::DynamicQueue`]: fixed chunk size per grab.
    Fixed(u64),
    /// [`Strategy::GuidedQueue`]: chunk shrinks with the remaining work,
    /// `remaining / (divisor × n_devices)`, floored at 1.
    Guided { divisor: u64 },
}

/// What the warm-up resolves into once Equation 1 has its measurements.
enum AfterWarmup {
    /// Freeze the weights as a static proportional split.
    Static,
    /// Seed the work-stealing deques with the weights every batch.
    Steal { divisor: u64 },
    /// Feed the measurements to the learned cost oracle as the cold-start
    /// prior and re-seed the deques from its fits every batch.
    Oracle { divisor: u64 },
}

enum Mode {
    /// Fixed proportional weights.
    Static(Vec<f64>),
    /// The paper's warm-up phase in progress: the next `left` batches run
    /// under the equal split while per-device times (and, for the oracle,
    /// executed work units) accumulate; Equation 1 then fixes the weights
    /// and `then` decides what they seed.
    WarmingUp { left: usize, times: Vec<f64>, units: Vec<f64>, then: AfterWarmup },
    /// Greedy self-scheduling by virtual clock.
    Dynamic(DynamicChunking),
    /// The runtime's work-stealing drain, seeded by Equation 1 weights.
    Steal { weights: Vec<f64>, cfg: StealConfig },
    /// The learned-oracle drain (DESIGN.md §15): deques are re-seeded from
    /// the oracle's current fits before every batch, and every device's
    /// `(units, seconds)` outcome is fed back as an observation.
    Oracle { oracle: CostOracle, cfg: StealConfig },
}

/// A [`BatchEvaluator`] that executes scoring on a set of simulated devices.
///
/// Construction resolves the strategy (running the warm-up for the
/// heterogeneous strategies — its cost lands on the device clocks, as in
/// the paper) and spawns the runtime's persistent per-device worker
/// threads. Each `evaluate` call then routes the batch through the
/// runtime: one contiguous share per device for the split strategies, or
/// the seeded-deque work-stealing drain for [`Strategy::WorkSteal`].
pub struct DeviceEvaluator {
    runtime: NodeRuntime,
    mode: Mode,
    warmup_done: u32,
    steal_stats: StealStats,
}

impl DeviceEvaluator {
    /// Build an evaluator over `devices` using `strategy` to assign work.
    ///
    /// For [`Strategy::HeterogeneousSplit`] and [`Strategy::WorkSteal`],
    /// the first `warmup.iterations` batches of real work execute under
    /// the equal split while being timed (the paper's warm-up phase,
    /// §3.3); Equation 1 then fixes the weights for the rest of the run.
    ///
    /// # Panics
    /// Panics if `devices` is empty or the strategy is [`Strategy::CpuOnly`]
    /// (use [`metaheur::CpuEvaluator`] for the baseline).
    pub fn new(
        devices: Vec<Arc<SimDevice>>,
        scorer: Arc<Scorer>,
        strategy: Strategy,
    ) -> DeviceEvaluator {
        let n = devices.len();
        let mode = match strategy {
            Strategy::CpuOnly => panic!("use CpuEvaluator for the CPU-only baseline"),
            Strategy::DynamicQueue { chunk } => Mode::Dynamic(DynamicChunking::Fixed(chunk.max(1))),
            Strategy::GuidedQueue { divisor } => {
                Mode::Dynamic(DynamicChunking::Guided { divisor: divisor.max(1) })
            }
            Strategy::HomogeneousSplit => Mode::Static(vec![1.0; n]),
            Strategy::HeterogeneousSplit { warmup } => Mode::WarmingUp {
                left: warmup.iterations.max(1),
                times: vec![0.0; n],
                units: vec![0.0; n],
                then: AfterWarmup::Static,
            },
            // The adaptive ablation re-measures continuously; in the
            // real-compute executor it starts like the heterogeneous
            // warm-up and then keeps the latest window's weights.
            Strategy::AdaptiveSplit { warmup, .. } => Mode::WarmingUp {
                left: warmup.iterations.max(1),
                times: vec![0.0; n],
                units: vec![0.0; n],
                then: AfterWarmup::Static,
            },
            Strategy::WorkSteal { warmup, divisor } => Mode::WarmingUp {
                left: warmup.iterations.max(1),
                times: vec![0.0; n],
                units: vec![0.0; n],
                then: AfterWarmup::Steal { divisor: divisor.max(1) },
            },
            Strategy::Oracle { warmup, divisor } => Mode::WarmingUp {
                left: warmup.iterations.max(1),
                times: vec![0.0; n],
                units: vec![0.0; n],
                then: AfterWarmup::Oracle { divisor: divisor.max(1) },
            },
        };
        DeviceEvaluator {
            runtime: NodeRuntime::new(devices, scorer),
            mode,
            warmup_done: 0,
            steal_stats: StealStats::default(),
        }
    }

    /// Record every device execution into `timeline` (Gantt introspection
    /// of the real-compute path).
    pub fn with_timeline(mut self, timeline: Arc<gpusim::Timeline>) -> Self {
        self.runtime.set_timeline(timeline);
        self
    }

    /// Emit structured `vstrace` events (`DeviceBusy`, `BatchScored`,
    /// `WarmupSample`, `PartitionDecision`, `JobMigrated`) for every batch
    /// from here on. Device track names are registered from the catalog
    /// names.
    pub fn with_trace(mut self, trace: Trace) -> Self {
        trace.set_track_name(BATCH_TRACK, "batches");
        self.runtime.set_trace(trace);
        self
    }

    pub fn devices(&self) -> &[Arc<SimDevice>] {
        self.runtime.devices()
    }

    /// The overall virtual execution time so far (slowest device).
    pub fn makespan(&self) -> f64 {
        self.runtime.makespan()
    }

    /// Static or deque-seed weights in use (empty while warming up or in
    /// dynamic mode).
    pub fn weights(&self) -> &[f64] {
        match &self.mode {
            Mode::Static(w) => w,
            Mode::Steal { weights, .. } => weights,
            _ => &[],
        }
    }

    /// Cumulative work-stealing statistics (all zeros unless the strategy
    /// is [`Strategy::WorkSteal`] or [`Strategy::Oracle`]).
    pub fn steal_stats(&self) -> StealStats {
        self.steal_stats
    }

    /// The learned cost oracle, once [`Strategy::Oracle`] finished its
    /// warm-up (`None` before that or under any other strategy).
    pub fn oracle(&self) -> Option<&CostOracle> {
        match &self.mode {
            Mode::Oracle { oracle, .. } => Some(oracle),
            _ => None,
        }
    }

    /// Test hook: every worker panics on the next `evaluate` call, which
    /// must re-raise on the submitter and leave the evaluator usable.
    #[cfg(test)]
    fn induce_worker_panic(&mut self) {
        self.runtime.panic_next = true;
    }

    /// Per-device shares for the split modes (everything except `Steal`).
    fn shares_for(&self, items: u64) -> Vec<u64> {
        let devices = self.runtime.devices();
        match &self.mode {
            Mode::Steal { .. } | Mode::Oracle { .. } => {
                unreachable!("deque-seeded modes do not use contiguous shares")
            }
            Mode::Static(w) => proportional_split(items, w),
            Mode::WarmingUp { .. } => proportional_split(items, &vec![1.0; devices.len()]),
            Mode::Dynamic(chunking) => {
                // Greedy chunking by current virtual clock, coalesced into
                // one contiguous share per device to keep host scoring
                // cache-friendly. Chunk sizing honors the strategy's
                // parameters: a fixed grab for DynamicQueue, a
                // remaining-proportional grab for GuidedQueue.
                let n = devices.len() as u64;
                let profile = work_profile(self.runtime.scorer());
                let mut clocks: Vec<f64> = devices.iter().map(|d| d.clock()).collect();
                let mut shares = vec![0u64; devices.len()];
                let mut remaining = items;
                while remaining > 0 {
                    let take = match *chunking {
                        DynamicChunking::Fixed(chunk) => chunk.min(remaining),
                        DynamicChunking::Guided { divisor } => {
                            (remaining / (divisor * n)).max(1).min(remaining)
                        }
                    };
                    remaining -= take;
                    let (idx, _) = clocks
                        .iter()
                        .enumerate()
                        // PANICS: clocks are finite (never NaN) and there is at least one device.
                        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                        .expect("non-empty");
                    shares[idx] += take;
                    clocks[idx] += devices[idx].estimate(&profile.batch(take));
                }
                shares
            }
        }
    }
}

impl BatchEvaluator for DeviceEvaluator {
    fn evaluate(&mut self, confs: &mut [Conformation]) {
        if confs.is_empty() {
            return;
        }
        let clocks_before: Vec<f64> = self.runtime.devices().iter().map(|d| d.clock()).collect();
        let items_before: Vec<u64> =
            self.runtime.devices().iter().map(|d| d.stats().items).collect();
        let profile = work_profile(self.runtime.scorer());
        let trace = self.runtime.trace().clone();

        // Resolve the deque-seeded modes' weights up front (the oracle
        // re-queries its fits before *every* batch — that is the point).
        let seed = match &mut self.mode {
            Mode::Steal { weights, cfg } => Some((weights.clone(), *cfg)),
            Mode::Oracle { oracle, cfg } => {
                let n = clocks_before.len();
                let weights = oracle.seed_weights(profile.class).unwrap_or_else(|| vec![1.0; n]);
                if trace.is_enabled() {
                    trace.emit(Event::Counter {
                        name: "oracle_reseed",
                        value: oracle.reseeds() as f64,
                    });
                }
                Some((weights, *cfg))
            }
            _ => None,
        };
        if let Some((weights, cfg)) = seed {
            let stats = self.runtime.run_steal(confs, &weights, &cfg);
            self.steal_stats.merge(stats);
        } else {
            let shares = self.shares_for(confs.len() as u64);
            self.runtime.run_shares(confs, &shares);
        }

        if trace.is_enabled() {
            let vt_start = clocks_before.iter().copied().fold(f64::INFINITY, f64::min);
            // For the dense kernels `units_per_item` *is* the pair count;
            // grid/cell-list batches report their own regime's unit so the
            // trace matches what the cost model actually charged.
            trace.emit(Event::BatchScored {
                device: BATCH_TRACK,
                items: confs.len() as u64,
                pairs_per_item: work_profile(self.runtime.scorer()).units_per_item,
                vt_start,
                vt_end: self.runtime.makespan(),
            });
        }

        // Oracle feedback: every device's `(units, virtual seconds)` for
        // this batch becomes an observation, refining the fits the *next*
        // batch's seed will query.
        if let Mode::Oracle { oracle, .. } = &mut self.mode {
            let devices = self.runtime.devices();
            for (i, d) in devices.iter().enumerate() {
                let di = d.stats().items - items_before[i];
                let dt = d.clock() - clocks_before[i];
                if di > 0 && dt > 0.0 {
                    let u =
                        oracle.observe(i, profile.class, (di * profile.units_per_item) as f64, dt);
                    if trace.is_enabled() {
                        trace.emit(Event::ModelUpdated {
                            device: d.id() as u32,
                            class: profile.class.ordinal(),
                            predicted: u.predicted,
                            observed: u.observed,
                            residual: u.residual,
                            refit: u.refit,
                        });
                    }
                }
            }
        }

        // Warm-up bookkeeping: accumulate measured per-device times (and
        // executed units, for the oracle prior) and hand the Equation 1
        // weights to the follow-on mode once enough iterations ran.
        if let Mode::WarmingUp { left, times, units, then } = &mut self.mode {
            let devices = self.runtime.devices();
            for (i, d) in devices.iter().enumerate() {
                let dt = d.clock() - clocks_before[i];
                times[i] += dt;
                units[i] += ((d.stats().items - items_before[i]) * profile.units_per_item) as f64;
                if trace.is_enabled() {
                    trace.emit(Event::WarmupSample {
                        device: d.id() as u32,
                        iteration: self.warmup_done,
                        seconds: dt,
                    });
                }
            }
            self.warmup_done += 1;
            *left -= 1;
            if *left == 0 {
                let weights = if times.iter().all(|&t| t > 0.0) {
                    crate::warmup::shares_from_times(times)
                } else {
                    vec![1.0; devices.len()]
                };
                if trace.is_enabled() {
                    let total: f64 = weights.iter().sum();
                    for (d, &w) in devices.iter().zip(&weights) {
                        trace.emit(Event::PartitionDecision {
                            device: d.id() as u32,
                            share: if total > 0.0 { w / total } else { 0.0 },
                            weight: w,
                        });
                    }
                }
                self.mode = match then {
                    AfterWarmup::Static => Mode::Static(weights),
                    AfterWarmup::Steal { divisor } => Mode::Steal {
                        weights,
                        cfg: StealConfig { divisor: *divisor, min_chunk: 0 },
                    },
                    AfterWarmup::Oracle { divisor } => {
                        let mut oracle = CostOracle::new(devices.len(), OracleConfig::default());
                        if times.iter().all(|&t| t > 0.0) && units.iter().all(|&u| u > 0.0) {
                            oracle.observe_warmup(profile.class, times, units);
                        }
                        Mode::Oracle {
                            oracle,
                            cfg: StealConfig { divisor: *divisor, min_chunk: 0 },
                        }
                    }
                };
            }
        }
    }

    fn pairs_per_eval(&self) -> u64 {
        self.runtime.scorer().pairs_per_eval()
    }

    /// Streamed-batch entry point for the pipelined engine: the batch was
    /// released by the host at virtual time `release`, so every device
    /// first idles forward to that instant (visible as `DeviceIdle` spans
    /// — the metric `pipeline_report.sh` gates on), then scores exactly as
    /// [`Self::evaluate`] would. Returns the node makespan, i.e. when the
    /// batch's scores are available to the selector stage.
    fn evaluate_after(&mut self, confs: &mut [Conformation], release: f64) -> f64 {
        self.runtime.release_until(release);
        self.evaluate(confs);
        self.runtime.makespan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warmup::WarmupConfig;
    use gpusim::catalog;
    use metaheur::CpuEvaluator;
    use vsmath::{RigidTransform, RngStream};
    use vsmol::synth;
    use vsscore::{Exec, ScoreBatch};

    fn scorer() -> Arc<Scorer> {
        let rec = synth::synth_receptor("r", 400, 1);
        let lig = synth::synth_ligand("l", 12, 2);
        Arc::new(Scorer::new(&rec, &lig, Default::default()))
    }

    fn hertz_devices() -> Vec<Arc<SimDevice>> {
        vec![
            Arc::new(SimDevice::new(0, catalog::tesla_k40c())),
            Arc::new(SimDevice::new(1, catalog::geforce_gtx_580())),
        ]
    }

    fn confs(n: usize, seed: u64) -> Vec<Conformation> {
        let mut rng = RngStream::from_seed(seed);
        (0..n)
            .map(|_| Conformation::new(RigidTransform::new(rng.rotation(), rng.in_ball(25.0)), 0))
            .collect()
    }

    #[test]
    fn scores_match_cpu_evaluator() {
        let sc = scorer();
        let mut dev_eval =
            DeviceEvaluator::new(hertz_devices(), sc.clone(), Strategy::HomogeneousSplit);
        let mut cpu_eval = CpuEvaluator::new((*sc).clone(), Exec::Serial);
        let mut a = confs(50, 3);
        let mut b = a.clone();
        dev_eval.evaluate(&mut a);
        cpu_eval.evaluate(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.score, y.score, "device path must compute identical scores");
        }
    }

    #[test]
    fn repeated_evaluates_stay_bit_identical() {
        // Persistent workers must be reusable: many evaluate calls on the
        // same evaluator, every one bit-identical to the serial path.
        let sc = scorer();
        let mut dev_eval =
            DeviceEvaluator::new(hertz_devices(), sc.clone(), Strategy::HomogeneousSplit);
        for seed in 0..6 {
            let mut a = confs(10 + 7 * seed as usize, seed);
            let mut b = a.clone();
            dev_eval.evaluate(&mut a);
            let mut scratch = vsscore::PoseScratch::new();
            sc.score_batch(ScoreBatch::Confs(&mut b), &mut scratch, Exec::Serial);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "seed {seed}");
            }
        }
    }

    #[test]
    fn device_path_bit_identical_for_every_kernel() {
        // DESIGN §7: for a fixed kernel, the device path must reproduce
        // the serial path bitwise — including the run-layout kernels.
        use vsscore::scorer::{Kernel, ScorerOptions, ScoringModel};
        let rec = synth::synth_receptor("r", 400, 1);
        let lig = synth::synth_ligand("l", 12, 2);
        let model = ScoringModel::Full { dielectric: 4.0, hbond_epsilon: 1.0 };
        for kernel in [
            Kernel::Naive,
            Kernel::Tiled,
            Kernel::Run,
            Kernel::Fused,
            Kernel::CellList { cutoff: 16.0 },
            Kernel::Grid { spacing: 0.6 },
        ] {
            let sc = Arc::new(Scorer::new(&rec, &lig, ScorerOptions { model, kernel }));
            let mut ev =
                DeviceEvaluator::new(hertz_devices(), sc.clone(), Strategy::HomogeneousSplit);
            let mut a = confs(31, 17);
            let mut serial = a.clone();
            let mut scratch = vsscore::PoseScratch::new();
            sc.score_batch(ScoreBatch::Confs(&mut serial), &mut scratch, Exec::Serial);
            ev.evaluate(&mut a);
            for (c, s) in a.iter().zip(&serial) {
                assert_eq!(c.score.to_bits(), s.score.to_bits(), "kernel {kernel:?}");
            }
        }
    }

    #[test]
    fn single_conformation_batch() {
        let sc = scorer();
        let mut ev = DeviceEvaluator::new(hertz_devices(), sc.clone(), Strategy::HomogeneousSplit);
        let mut c = confs(1, 42);
        let want = sc.score(&c[0].pose);
        ev.evaluate(&mut c);
        assert_eq!(c[0].score.to_bits(), want.to_bits());
    }

    #[test]
    fn drop_joins_workers() {
        // Worker threads must not outlive the evaluator. The runtime's
        // workers own scorer clones; join-on-drop guarantees those clones
        // are released by the time drop returns, and the runtime's device
        // handles go with it.
        let devs = hertz_devices();
        let sc = scorer();
        {
            let mut ev = DeviceEvaluator::new(devs.clone(), sc.clone(), Strategy::HomogeneousSplit);
            let mut c = confs(16, 13);
            ev.evaluate(&mut c);
            // Alive: our handle + the runtime's devices vec (workers are
            // pure scorers and hold no device handles).
            assert_eq!(Arc::strong_count(&devs[0]), 2);
        }
        assert_eq!(Arc::strong_count(&devs[0]), 1, "drop must release the runtime's devices");
        assert_eq!(Arc::strong_count(&devs[1]), 1);
        assert_eq!(Arc::strong_count(&sc), 1, "drop must join all scoring workers");
    }

    #[test]
    fn clocks_advance_per_batch() {
        let devs = hertz_devices();
        let mut ev = DeviceEvaluator::new(devs.clone(), scorer(), Strategy::HomogeneousSplit);
        let mut c = confs(64, 4);
        ev.evaluate(&mut c);
        assert!(devs[0].clock() > 0.0);
        assert!(devs[1].clock() > 0.0);
        assert_eq!(ev.makespan(), devs[0].clock().max(devs[1].clock()));
    }

    #[test]
    fn heterogeneous_strategy_warms_up_then_favors_k40() {
        let devs = hertz_devices();
        let warmup = WarmupConfig { iterations: 3, ..Default::default() };
        let mut ev =
            DeviceEvaluator::new(devs.clone(), scorer(), Strategy::HeterogeneousSplit { warmup });
        // During warm-up: no static weights yet, equal split in force.
        assert!(ev.weights().is_empty());
        for i in 0..3 {
            let mut c = confs(1000, 5 + i);
            ev.evaluate(&mut c);
        }
        // Warm-up complete: Equation 1 weights favor the K40c.
        let w = ev.weights().to_vec();
        assert_eq!(w.len(), 2);
        assert!(w[0] > w[1], "K40c share must dominate: {w:?}");

        let before = (devs[0].stats().items, devs[1].stats().items);
        let mut c = confs(1000, 9);
        ev.evaluate(&mut c);
        let d0 = devs[0].stats().items - before.0;
        let d1 = devs[1].stats().items - before.1;
        assert!(d0 > d1, "post-warm-up batch split {d0}/{d1}");
    }

    #[test]
    fn work_steal_warms_up_then_seeds_deques() {
        let devs = hertz_devices();
        let warmup = WarmupConfig { iterations: 2, ..Default::default() };
        let mut ev = DeviceEvaluator::new(
            devs.clone(),
            scorer(),
            Strategy::WorkSteal { warmup, divisor: 2 },
        );
        assert!(ev.weights().is_empty(), "no weights during warm-up");
        for i in 0..2 {
            let mut c = confs(500, 40 + i);
            ev.evaluate(&mut c);
        }
        let w = ev.weights().to_vec();
        assert_eq!(w.len(), 2);
        assert!(w[0] > w[1], "Equation 1 must favor the K40c: {w:?}");

        // Healthy post-warm-up batch: claims follow the seeded shares.
        let before = (devs[0].stats().items, devs[1].stats().items);
        let mut c = confs(1000, 44);
        ev.evaluate(&mut c);
        let d0 = devs[0].stats().items - before.0;
        let d1 = devs[1].stats().items - before.1;
        assert_eq!(d0 + d1, 1000);
        assert!(d0 > d1, "seeded deques must favor the faster device: {d0}/{d1}");
    }

    #[test]
    fn work_steal_absorbs_midrun_straggler() {
        // Degrade the GTX 580 8x *after* warm-up froze the weights: the
        // stale seed strands work on the straggler, and the K40c must
        // steal it (observable in the evaluator's steal statistics).
        let devs = hertz_devices();
        let warmup = WarmupConfig { iterations: 2, ..Default::default() };
        let mut ev = DeviceEvaluator::new(
            devs.clone(),
            scorer(),
            Strategy::WorkSteal { warmup, divisor: 2 },
        );
        for i in 0..2 {
            let mut c = confs(400, 50 + i);
            ev.evaluate(&mut c);
        }
        assert_eq!(ev.steal_stats().chunks, 0, "warm-up batches run as equal splits");
        devs[1].set_slowdown(8.0);
        // Large batch so the deques hold many occupancy-floor chunks.
        let mut c = confs(12_000, 52);
        let mut serial = c.clone();
        ev.evaluate(&mut c);
        let stats = ev.steal_stats();
        assert!(stats.steals > 0, "straggler work must migrate: {stats:?}");
        // Scores still bit-identical to serial despite migration.
        let sc = scorer();
        let mut scratch = vsscore::PoseScratch::new();
        sc.score_batch(ScoreBatch::Confs(&mut serial), &mut scratch, Exec::Serial);
        for (x, y) in c.iter().zip(&serial) {
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn oracle_warms_up_then_tracks_drift() {
        // The oracle seeds from the warm-up prior, then re-prices a device
        // that slows 6x mid-run: the fits drift-reset and subsequent seeds
        // shrink the straggler's share instead of relying on steals.
        let devs = hertz_devices();
        let warmup = WarmupConfig { iterations: 2, ..Default::default() };
        let mut ev =
            DeviceEvaluator::new(devs.clone(), scorer(), Strategy::Oracle { warmup, divisor: 2 });
        assert!(ev.oracle().is_none(), "no oracle during warm-up");
        for i in 0..2 {
            let mut c = confs(500, 60 + i);
            ev.evaluate(&mut c);
        }
        let o = ev.oracle().expect("warm-up must hand off to the oracle");
        assert!(o.is_warm(gpusim::KernelClass::PairSweep), "prior must be installed");

        // Healthy batches: fits form, K40c keeps the larger share.
        let before = (devs[0].stats().items, devs[1].stats().items);
        let mut c = confs(1000, 62);
        ev.evaluate(&mut c);
        let d0 = devs[0].stats().items - before.0;
        let d1 = devs[1].stats().items - before.1;
        assert!(d0 > d1, "oracle seed must favor the faster device: {d0}/{d1}");

        // Slow the GTX 580 6x; a few batches later the *seed itself*
        // reflects the new regime (share ratio widens well past warm-up's).
        devs[1].set_slowdown(6.0);
        for i in 0..3 {
            let mut c = confs(2000, 63 + i);
            ev.evaluate(&mut c);
        }
        let before = (devs[0].stats().items, devs[1].stats().items);
        let mut c = confs(2000, 70);
        ev.evaluate(&mut c);
        let d0 = (devs[0].stats().items - before.0) as f64;
        let d1 = (devs[1].stats().items - before.1) as f64;
        let o = ev.oracle().unwrap();
        assert!(o.fits().iter().any(|(_, f)| f.refits > 0), "6x drift must refit");
        assert!(d0 / d1.max(1.0) > 4.0, "post-drift seed must starve the straggler: {d0}/{d1}");
        // Scores stay bit-identical to serial throughout.
        let sc = scorer();
        let mut serial = c.clone();
        let mut scratch = vsscore::PoseScratch::new();
        sc.score_batch(ScoreBatch::Confs(&mut serial), &mut scratch, Exec::Serial);
        for (x, y) in c.iter().zip(&serial) {
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn oracle_emits_model_updates_and_reseed_counter() {
        let devs = hertz_devices();
        let trace = Trace::new();
        let warmup = WarmupConfig { iterations: 1, ..Default::default() };
        let mut ev = DeviceEvaluator::new(devs, scorer(), Strategy::Oracle { warmup, divisor: 2 })
            .with_trace(trace.clone());
        for i in 0..3 {
            let mut c = confs(400, 80 + i);
            ev.evaluate(&mut c);
        }
        let data = trace.snapshot();
        let kinds: Vec<&str> = data.events().map(|s| s.event.kind()).collect();
        assert!(kinds.contains(&"ModelUpdated"), "{kinds:?}");
        assert!(kinds.contains(&"WarmupSample"), "{kinds:?}");
        let reseeds = data
            .events()
            .filter_map(|s| match s.event {
                Event::Counter { name: "oracle_reseed", value } => Some(value),
                _ => None,
            })
            .fold(0.0f64, f64::max);
        assert!(reseeds >= 2.0, "each post-warm-up batch re-seeds: {reseeds}");
    }

    #[test]
    fn full_metaheuristic_run_through_oracle() {
        let sc = scorer();
        let spots = vec![vsmol::Spot {
            id: 0,
            center: vsmath::Vec3::new(18.0, 0.0, 0.0),
            normal: vsmath::Vec3::X,
            radius: 4.0,
            anchor_atom: 0,
        }];
        let devs = hertz_devices();
        let mut ev = DeviceEvaluator::new(
            devs.clone(),
            sc,
            Strategy::Oracle { warmup: WarmupConfig::default(), divisor: 2 },
        );
        let params = metaheur::m3(0.5);
        let r = metaheur::run(&params, &spots, &mut ev, 11);
        assert!(r.best.is_scored());
        assert_eq!(r.evaluations, params.evals_per_spot());
        assert!(ev.oracle().is_some());
    }

    #[test]
    fn dynamic_strategy_balances_clocks() {
        let devs = hertz_devices();
        let mut ev =
            DeviceEvaluator::new(devs.clone(), scorer(), Strategy::DynamicQueue { chunk: 16 });
        let mut c = confs(512, 6);
        ev.evaluate(&mut c);
        let (t0, t1) = (devs[0].clock(), devs[1].clock());
        let imbalance = (t0 - t1).abs() / t0.max(t1);
        assert!(imbalance < 0.35, "dynamic imbalance {imbalance}: {t0} vs {t1}");
    }

    #[test]
    fn dynamic_queue_honors_chunk_parameter() {
        // A chunk at least as large as the batch is grabbed whole by the
        // first idle device; a chunk of 1 spreads work across both. The
        // old implementation ignored `chunk` entirely, so both cases split
        // identically — this pins the fix.
        let coarse_devs = hertz_devices();
        let mut coarse = DeviceEvaluator::new(
            coarse_devs.clone(),
            scorer(),
            Strategy::DynamicQueue { chunk: 10_000 },
        );
        let mut c = confs(128, 21);
        coarse.evaluate(&mut c);
        let coarse_split = (coarse_devs[0].stats().items, coarse_devs[1].stats().items);
        assert_eq!(coarse_split.0 + coarse_split.1, 128, "all items must be scheduled");
        assert!(
            coarse_split.0 == 128 || coarse_split.1 == 128,
            "oversized chunk must land on a single device: {coarse_split:?}"
        );

        let fine_devs = hertz_devices();
        let mut fine =
            DeviceEvaluator::new(fine_devs.clone(), scorer(), Strategy::DynamicQueue { chunk: 1 });
        let mut c = confs(128, 21);
        fine.evaluate(&mut c);
        let fine_split = (fine_devs[0].stats().items, fine_devs[1].stats().items);
        assert!(
            fine_split.0 > 0 && fine_split.1 > 0,
            "chunk=1 must use both devices: {fine_split:?}"
        );
        assert_ne!(coarse_split, fine_split, "chunk parameter must change the split");
    }

    #[test]
    fn guided_queue_honors_divisor_parameter() {
        // GuidedQueue grabs remaining/(divisor*n) per step: a huge divisor
        // degenerates to chunk=1 (both devices busy); divisor=1 starts
        // with half the batch in one grab.
        let eager_devs = hertz_devices();
        let mut eager = DeviceEvaluator::new(
            eager_devs.clone(),
            scorer(),
            Strategy::GuidedQueue { divisor: 1 },
        );
        let mut c = confs(128, 22);
        eager.evaluate(&mut c);
        let eager_split = (eager_devs[0].stats().items, eager_devs[1].stats().items);

        let fine_devs = hertz_devices();
        let mut fine = DeviceEvaluator::new(
            fine_devs.clone(),
            scorer(),
            Strategy::GuidedQueue { divisor: 1_000 },
        );
        let mut c = confs(128, 22);
        fine.evaluate(&mut c);
        let fine_split = (fine_devs[0].stats().items, fine_devs[1].stats().items);
        assert!(fine_split.0 > 0 && fine_split.1 > 0, "fine split {fine_split:?}");
        assert_ne!(eager_split, fine_split, "divisor must change the split");
    }

    #[test]
    fn empty_batch_is_noop() {
        let devs = hertz_devices();
        let mut ev = DeviceEvaluator::new(devs.clone(), scorer(), Strategy::HomogeneousSplit);
        ev.evaluate(&mut []);
        assert_eq!(devs[0].clock(), 0.0);
    }

    #[test]
    fn single_device_gets_everything() {
        let devs = vec![Arc::new(SimDevice::new(0, catalog::geforce_gtx_590()))];
        let mut ev = DeviceEvaluator::new(devs.clone(), scorer(), Strategy::HomogeneousSplit);
        let mut c = confs(33, 7);
        ev.evaluate(&mut c);
        assert_eq!(devs[0].stats().items, 33);
        assert!(c.iter().all(|x| x.is_scored()));
    }

    #[test]
    fn timeline_records_real_compute_path() {
        let devs = hertz_devices();
        let tl = Arc::new(gpusim::Timeline::new());
        let mut ev = DeviceEvaluator::new(devs.clone(), scorer(), Strategy::HomogeneousSplit)
            .with_timeline(tl.clone());
        let mut c = confs(40, 8);
        ev.evaluate(&mut c);
        ev.evaluate(&mut c);
        assert_eq!(tl.segments().len(), 4, "2 batches x 2 devices");
        assert!((tl.makespan() - ev.makespan()).abs() < 1e-15);
        let recorded: u64 = tl.segments().iter().map(|s| s.items).sum();
        assert_eq!(recorded, 80);
    }

    #[test]
    fn traced_executor_emits_structured_events() {
        let devs = hertz_devices();
        let trace = Trace::new();
        let warmup = WarmupConfig { iterations: 2, ..Default::default() };
        let mut ev =
            DeviceEvaluator::new(devs.clone(), scorer(), Strategy::HeterogeneousSplit { warmup })
                .with_trace(trace.clone());
        for i in 0..3 {
            let mut c = confs(200, 30 + i);
            ev.evaluate(&mut c);
        }
        let data = trace.snapshot();
        let kinds: Vec<&str> = data.events().map(|s| s.event.kind()).collect();
        assert!(kinds.contains(&"DeviceBusy"), "{kinds:?}");
        assert!(kinds.contains(&"BatchScored"), "{kinds:?}");
        assert!(kinds.contains(&"WarmupSample"), "{kinds:?}");
        assert!(kinds.contains(&"PartitionDecision"), "{kinds:?}");
        // Per-device traced busy totals must match the device clocks: every
        // execution was recorded.
        for d in &devs {
            let traced = data.device_busy_s(d.id() as u32);
            assert!(
                (traced - d.clock()).abs() < 1e-12,
                "device {} traced {traced} vs clock {}",
                d.id(),
                d.clock()
            );
        }
        // Track names registered from the catalog.
        assert_eq!(data.track_names.get(&0).map(String::as_str), Some("Tesla K40c"));
    }

    #[test]
    fn untraced_executor_emits_nothing() {
        let trace = Trace::disabled();
        let mut ev = DeviceEvaluator::new(hertz_devices(), scorer(), Strategy::HomogeneousSplit)
            .with_trace(trace.clone());
        let mut c = confs(32, 9);
        ev.evaluate(&mut c);
        assert!(trace.snapshot().is_empty(), "disabled sink must record zero events");
        assert!(c.iter().all(|x| x.is_scored()));
    }

    #[test]
    fn worker_panic_propagates_and_evaluator_survives() {
        let sc = scorer();
        let mut ev = DeviceEvaluator::new(hertz_devices(), sc.clone(), Strategy::HomogeneousSplit);
        ev.induce_worker_panic();
        let mut c = confs(8, 31);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ev.evaluate(&mut c);
        }));
        assert!(caught.is_err(), "worker panic must re-raise on the submitter");
        // The completion bookkeeping must have recovered: the next batch
        // runs to completion and scores correctly.
        let mut a = confs(12, 32);
        let mut b = a.clone();
        ev.evaluate(&mut a);
        let mut scratch = vsscore::PoseScratch::new();
        sc.score_batch(ScoreBatch::Confs(&mut b), &mut scratch, Exec::Serial);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    #[should_panic]
    fn cpu_only_strategy_rejected() {
        DeviceEvaluator::new(hertz_devices(), scorer(), Strategy::CpuOnly);
    }

    #[test]
    #[should_panic]
    fn empty_device_list_rejected() {
        DeviceEvaluator::new(Vec::new(), scorer(), Strategy::HomogeneousSplit);
    }

    #[test]
    fn full_metaheuristic_run_through_devices() {
        // End-to-end: Algorithm 1 driving the heterogeneous executor.
        let sc = scorer();
        let spots = vec![vsmol::Spot {
            id: 0,
            center: vsmath::Vec3::new(18.0, 0.0, 0.0),
            normal: vsmath::Vec3::X,
            radius: 4.0,
            anchor_atom: 0,
        }];
        let devs = hertz_devices();
        let mut ev = DeviceEvaluator::new(
            devs.clone(),
            sc,
            Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
        );
        let params = metaheur::m3(0.5);
        let r = metaheur::run(&params, &spots, &mut ev, 11);
        assert!(r.best.is_scored());
        assert!(ev.makespan() > 0.0);
        assert_eq!(
            r.evaluations,
            params.evals_per_spot(),
            "evaluation accounting must survive the device path"
        );
    }
}

/// Exhaustive interleaving checks of the runtime's per-device job
/// handoff, via the `vscheck` model checker (run with
/// `cargo test -p vsched --features vscheck-model model_`).
///
/// Invariants (the PR 1 review caught a clobbered job slot and a deadlock
/// on worker panic here by eyeball; these explore every interleaving
/// within the preemption bound): every conformation scored exactly once
/// with serial-identical results, `remaining` never underflows (underflow
/// aborts a schedule as a debug panic), a worker panic re-raises on the
/// submitter without wedging the handshake, and drop joins every worker.
#[cfg(all(test, feature = "vscheck-model"))]
mod model_tests {
    use super::*;
    use gpusim::catalog;
    use vscheck::{explore, Config};
    use vsmath::{RigidTransform, RngStream};
    use vsmol::synth;
    use vsscore::{Exec, ScoreBatch};

    /// Tiny scorer: immutable after construction and free of facade sync
    /// ops, so sharing one across schedules is deterministic.
    fn tiny_scorer() -> Arc<Scorer> {
        let rec = synth::synth_receptor("r", 30, 1);
        let lig = synth::synth_ligand("l", 4, 1);
        Arc::new(Scorer::new(&rec, &lig, Default::default()))
    }

    fn tiny_confs(n: usize) -> Vec<Conformation> {
        let mut rng = RngStream::from_seed(23);
        (0..n)
            .map(|_| Conformation::new(RigidTransform::new(rng.rotation(), rng.in_ball(25.0)), 0))
            .collect()
    }

    /// Devices are mutated per batch (virtual clocks), so they must be
    /// fresh per schedule — construct them inside the closure.
    fn two_devices() -> Vec<Arc<SimDevice>> {
        vec![
            Arc::new(SimDevice::new(0, catalog::tesla_k40c())),
            Arc::new(SimDevice::new(1, catalog::geforce_gtx_580())),
        ]
    }

    fn serial(s: &Scorer, confs: &[Conformation]) -> Vec<f64> {
        let mut b = confs.to_vec();
        let mut scratch = vsscore::PoseScratch::new();
        s.score_batch(ScoreBatch::Confs(&mut b), &mut scratch, Exec::Serial);
        b.iter().map(|c| c.score).collect()
    }

    #[test]
    fn model_every_conformation_scored() {
        let sc = tiny_scorer();
        let base = tiny_confs(3);
        let want = serial(&sc, &base);
        let report = explore(Config::with_bound(2), move || {
            let mut ev =
                DeviceEvaluator::new(two_devices(), Arc::clone(&sc), Strategy::HomogeneousSplit);
            let mut c = base.clone();
            ev.evaluate(&mut c);
            for (got, want) in c.iter().zip(&want) {
                assert_eq!(
                    got.score.to_bits(),
                    want.to_bits(),
                    "conformation left unscored or misscored"
                );
            }
            drop(ev); // a lost shutdown wakeup would deadlock here
        });
        report.assert_passed();
        assert!(report.complete, "bounded state space must be exhausted");
    }

    #[test]
    fn model_back_to_back_batches_reuse_workers() {
        // The generation handshake must hand each worker exactly its own
        // share each round, even when a worker from round 1 has not parked
        // yet when round 2 is published.
        let sc = tiny_scorer();
        let base = tiny_confs(2);
        let want = serial(&sc, &base);
        let report = explore(Config::with_bound(1), move || {
            let mut ev =
                DeviceEvaluator::new(two_devices(), Arc::clone(&sc), Strategy::HomogeneousSplit);
            for _ in 0..2 {
                let mut c = base.clone();
                ev.evaluate(&mut c);
                for (got, want) in c.iter().zip(&want) {
                    assert_eq!(got.score.to_bits(), want.to_bits());
                }
            }
        });
        report.assert_passed();
        assert!(report.complete);
    }

    #[test]
    fn model_steal_mode_scores_exactly_once() {
        // The work-stealing drain resolves claims on the submitter, so the
        // worker handshake sees a list of disjoint ranges per device; the
        // exactly-once property must survive every bounded interleaving of
        // the dispatch/completion protocol.
        let sc = tiny_scorer();
        let base = tiny_confs(3);
        let want = serial(&sc, &base);
        let report = explore(Config::with_bound(1), move || {
            let mut rt = NodeRuntime::new(two_devices(), Arc::clone(&sc));
            let mut c = base.clone();
            rt.run_steal(&mut c, &[1.0, 1.0], &StealConfig { divisor: 2, min_chunk: 1 });
            for (got, want) in c.iter().zip(&want) {
                assert_eq!(got.score.to_bits(), want.to_bits());
            }
            drop(rt);
        });
        report.assert_passed();
        assert!(report.complete);
    }

    #[test]
    fn model_worker_panic_reaches_submitter_and_evaluator_survives() {
        let sc = tiny_scorer();
        let base = tiny_confs(2);
        let want = serial(&sc, &base);
        let report = explore(Config::with_bound(1), move || {
            let mut ev =
                DeviceEvaluator::new(two_devices(), Arc::clone(&sc), Strategy::HomogeneousSplit);
            ev.induce_worker_panic();
            let mut c = base.clone();
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                ev.evaluate(&mut c);
            }));
            assert!(caught.is_err(), "worker panic must re-raise on the submitter");
            let mut c = base.clone();
            ev.evaluate(&mut c);
            for (got, want) in c.iter().zip(&want) {
                assert_eq!(got.score.to_bits(), want.to_bits());
            }
        });
        report.assert_passed();
        assert!(report.complete);
    }

    #[test]
    fn model_idle_evaluator_drop_joins_cleanly() {
        let report = explore(Config::with_bound(2), || {
            let ev = DeviceEvaluator::new(two_devices(), tiny_scorer(), Strategy::HomogeneousSplit);
            drop(ev);
        });
        report.assert_passed();
        assert!(report.complete);
    }
}
