//! The real-compute execution path: scoring batches are partitioned across
//! simulated devices, *numerically computed* on one host OS thread per
//! device (mirroring the paper's one-OpenMP-thread-per-GPU design,
//! Algorithm 2), and each device's virtual clock is charged the modeled
//! kernel time.

use crate::partition::proportional_split;
use crate::strategy::Strategy;
use gpusim::{SimDevice, WorkBatch};
use metaheur::BatchEvaluator;
use std::sync::Arc;
use vsmol::Conformation;
use vsscore::Scorer;

/// A [`BatchEvaluator`] that executes scoring on a set of simulated devices.
///
/// Construction resolves the strategy to static per-device weights (running
/// the warm-up for the heterogeneous strategy — its cost lands on the
/// device clocks, as in the paper). Each `evaluate` call then:
///
/// 1. splits the batch into contiguous per-device shares;
/// 2. spawns one scoped host thread per device, which scores its share with
///    the real Lennard-Jones scorer and calls [`SimDevice::execute`] to
///    advance the device's virtual clock;
/// 3. joins — scores land back in the caller's slice in order.
enum Mode {
    /// Fixed proportional weights.
    Static(Vec<f64>),
    /// The paper's warm-up phase in progress: the next `left` batches run
    /// under the equal split while per-device times accumulate; Equation 1
    /// then fixes the weights.
    WarmingUp { left: usize, times: Vec<f64> },
    /// Greedy self-scheduling by virtual clock.
    Dynamic,
}

pub struct DeviceEvaluator {
    devices: Vec<Arc<SimDevice>>,
    scorer: Arc<Scorer>,
    mode: Mode,
    timeline: Option<Arc<gpusim::Timeline>>,
}

impl DeviceEvaluator {
    /// Build an evaluator over `devices` using `strategy` to fix shares.
    ///
    /// For [`Strategy::HeterogeneousSplit`], the first `warmup.iterations`
    /// batches of real work execute under the equal split while being
    /// timed (the paper's warm-up phase, §3.3); Equation 1 then fixes the
    /// proportional split for the rest of the run.
    ///
    /// # Panics
    /// Panics if `devices` is empty or the strategy is [`Strategy::CpuOnly`]
    /// (use [`metaheur::CpuEvaluator`] for the baseline).
    pub fn new(devices: Vec<Arc<SimDevice>>, scorer: Arc<Scorer>, strategy: Strategy) -> DeviceEvaluator {
        assert!(!devices.is_empty(), "need at least one device");
        let n = devices.len();
        let mode = match strategy {
            Strategy::CpuOnly => panic!("use CpuEvaluator for the CPU-only baseline"),
            Strategy::DynamicQueue { .. } | Strategy::GuidedQueue { .. } => Mode::Dynamic,
            Strategy::HomogeneousSplit => Mode::Static(vec![1.0; n]),
            Strategy::HeterogeneousSplit { warmup } => {
                Mode::WarmingUp { left: warmup.iterations.max(1), times: vec![0.0; n] }
            }
            // The adaptive ablation re-measures continuously; in the
            // real-compute executor it starts like the heterogeneous
            // warm-up and then keeps the latest window's weights.
            Strategy::AdaptiveSplit { warmup, .. } => {
                Mode::WarmingUp { left: warmup.iterations.max(1), times: vec![0.0; n] }
            }
        };
        DeviceEvaluator { devices, scorer, mode, timeline: None }
    }

    /// Record every device execution into `timeline` (Gantt introspection
    /// of the real-compute path).
    pub fn with_timeline(mut self, timeline: Arc<gpusim::Timeline>) -> Self {
        self.timeline = Some(timeline);
        self
    }

    pub fn devices(&self) -> &[Arc<SimDevice>] {
        &self.devices
    }

    /// The overall virtual execution time so far (slowest device).
    pub fn makespan(&self) -> f64 {
        self.devices.iter().map(|d| d.clock()).fold(0.0, f64::max)
    }

    /// Static shares in use (empty while warming up or in dynamic mode).
    pub fn weights(&self) -> &[f64] {
        match &self.mode {
            Mode::Static(w) => w,
            _ => &[],
        }
    }

    fn shares_for(&self, items: u64) -> Vec<u64> {
        match &self.mode {
            Mode::Static(w) => proportional_split(items, w),
            Mode::WarmingUp { .. } => equal_weights_split(items, self.devices.len()),
            Mode::Dynamic => {
                // Greedy chunking by current virtual clock, coalesced into
                // one contiguous share per device to keep host scoring
                // cache-friendly.
                let mut clocks: Vec<f64> = self.devices.iter().map(|d| d.clock()).collect();
                let mut shares = vec![0u64; self.devices.len()];
                let chunk = (items / (self.devices.len() as u64 * 8)).max(1);
                let mut remaining = items;
                while remaining > 0 {
                    let take = chunk.min(remaining);
                    remaining -= take;
                    let (idx, _) = clocks
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                        .expect("non-empty");
                    shares[idx] += take;
                    clocks[idx] += self.devices[idx]
                        .estimate(&WorkBatch::conformations(take, self.scorer.pairs_per_eval()));
                }
                shares
            }
        }
    }
}

fn equal_weights_split(items: u64, n: usize) -> Vec<u64> {
    proportional_split(items, &vec![1.0; n])
}

impl BatchEvaluator for DeviceEvaluator {
    fn evaluate(&mut self, confs: &mut [Conformation]) {
        if confs.is_empty() {
            return;
        }
        let shares = self.shares_for(confs.len() as u64);
        let pairs = self.scorer.pairs_per_eval();
        let clocks_before: Vec<f64> = self.devices.iter().map(|d| d.clock()).collect();

        // Slice the batch contiguously by share.
        let mut rest = confs;
        let mut chunks: Vec<(&mut [Conformation], &Arc<SimDevice>)> = Vec::new();
        for (dev, &share) in self.devices.iter().zip(&shares) {
            let (head, tail) = rest.split_at_mut(share as usize);
            if !head.is_empty() {
                chunks.push((head, dev));
            }
            rest = tail;
        }
        debug_assert!(rest.is_empty());

        let scorer = &self.scorer;
        let timeline = self.timeline.as_ref();
        crossbeam::scope(|s| {
            for (chunk, dev) in chunks {
                s.spawn(move |_| {
                    let poses: Vec<_> = chunk.iter().map(|c| c.pose).collect();
                    let scores = scorer.score_batch(&poses);
                    for (c, sc) in chunk.iter_mut().zip(scores) {
                        c.score = sc;
                    }
                    let batch = WorkBatch::conformations(chunk.len() as u64, pairs);
                    match timeline {
                        Some(tl) => {
                            tl.record(dev, &batch);
                        }
                        None => {
                            dev.execute(&batch);
                        }
                    }
                });
            }
        })
        .expect("device scoring thread panicked");

        // Warm-up bookkeeping: accumulate measured per-device times and
        // switch to the Equation 1 split once enough iterations ran.
        if let Mode::WarmingUp { left, times } = &mut self.mode {
            for ((t, d), before) in times.iter_mut().zip(&self.devices).zip(&clocks_before) {
                *t += d.clock() - before;
            }
            *left -= 1;
            if *left == 0 {
                let weights = if times.iter().all(|&t| t > 0.0) {
                    crate::warmup::shares_from_times(times)
                } else {
                    vec![1.0; self.devices.len()]
                };
                self.mode = Mode::Static(weights);
            }
        }
    }

    fn pairs_per_eval(&self) -> u64 {
        self.scorer.pairs_per_eval()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warmup::WarmupConfig;
    use gpusim::catalog;
    use metaheur::CpuEvaluator;
    use vsmath::{RigidTransform, RngStream};
    use vsmol::synth;

    fn scorer() -> Arc<Scorer> {
        let rec = synth::synth_receptor("r", 400, 1);
        let lig = synth::synth_ligand("l", 12, 2);
        Arc::new(Scorer::new(&rec, &lig, Default::default()))
    }

    fn hertz_devices() -> Vec<Arc<SimDevice>> {
        vec![
            Arc::new(SimDevice::new(0, catalog::tesla_k40c())),
            Arc::new(SimDevice::new(1, catalog::geforce_gtx_580())),
        ]
    }

    fn confs(n: usize, seed: u64) -> Vec<Conformation> {
        let mut rng = RngStream::from_seed(seed);
        (0..n)
            .map(|_| Conformation::new(RigidTransform::new(rng.rotation(), rng.in_ball(25.0)), 0))
            .collect()
    }

    #[test]
    fn scores_match_cpu_evaluator() {
        let sc = scorer();
        let mut dev_eval =
            DeviceEvaluator::new(hertz_devices(), sc.clone(), Strategy::HomogeneousSplit);
        let mut cpu_eval = CpuEvaluator::new((*sc).clone());
        let mut a = confs(50, 3);
        let mut b = a.clone();
        dev_eval.evaluate(&mut a);
        cpu_eval.evaluate(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.score, y.score, "device path must compute identical scores");
        }
    }

    #[test]
    fn clocks_advance_per_batch() {
        let devs = hertz_devices();
        let mut ev = DeviceEvaluator::new(devs.clone(), scorer(), Strategy::HomogeneousSplit);
        let mut c = confs(64, 4);
        ev.evaluate(&mut c);
        assert!(devs[0].clock() > 0.0);
        assert!(devs[1].clock() > 0.0);
        assert_eq!(ev.makespan(), devs[0].clock().max(devs[1].clock()));
    }

    #[test]
    fn heterogeneous_strategy_warms_up_then_favors_k40() {
        let devs = hertz_devices();
        let warmup = WarmupConfig { iterations: 3, ..Default::default() };
        let mut ev =
            DeviceEvaluator::new(devs.clone(), scorer(), Strategy::HeterogeneousSplit { warmup });
        // During warm-up: no static weights yet, equal split in force.
        assert!(ev.weights().is_empty());
        for i in 0..3 {
            let mut c = confs(1000, 5 + i);
            ev.evaluate(&mut c);
        }
        // Warm-up complete: Equation 1 weights favor the K40c.
        let w = ev.weights().to_vec();
        assert_eq!(w.len(), 2);
        assert!(w[0] > w[1], "K40c share must dominate: {w:?}");

        let before = (devs[0].stats().items, devs[1].stats().items);
        let mut c = confs(1000, 9);
        ev.evaluate(&mut c);
        let d0 = devs[0].stats().items - before.0;
        let d1 = devs[1].stats().items - before.1;
        assert!(d0 > d1, "post-warm-up batch split {d0}/{d1}");
    }

    #[test]
    fn dynamic_strategy_balances_clocks() {
        let devs = hertz_devices();
        let mut ev =
            DeviceEvaluator::new(devs.clone(), scorer(), Strategy::DynamicQueue { chunk: 16 });
        let mut c = confs(512, 6);
        ev.evaluate(&mut c);
        let (t0, t1) = (devs[0].clock(), devs[1].clock());
        let imbalance = (t0 - t1).abs() / t0.max(t1);
        assert!(imbalance < 0.35, "dynamic imbalance {imbalance}: {t0} vs {t1}");
    }

    #[test]
    fn empty_batch_is_noop() {
        let devs = hertz_devices();
        let mut ev = DeviceEvaluator::new(devs.clone(), scorer(), Strategy::HomogeneousSplit);
        ev.evaluate(&mut []);
        assert_eq!(devs[0].clock(), 0.0);
    }

    #[test]
    fn single_device_gets_everything() {
        let devs = vec![Arc::new(SimDevice::new(0, catalog::geforce_gtx_590()))];
        let mut ev = DeviceEvaluator::new(devs.clone(), scorer(), Strategy::HomogeneousSplit);
        let mut c = confs(33, 7);
        ev.evaluate(&mut c);
        assert_eq!(devs[0].stats().items, 33);
        assert!(c.iter().all(|x| x.is_scored()));
    }

    #[test]
    fn timeline_records_real_compute_path() {
        let devs = hertz_devices();
        let tl = Arc::new(gpusim::Timeline::new());
        let mut ev = DeviceEvaluator::new(devs.clone(), scorer(), Strategy::HomogeneousSplit)
            .with_timeline(tl.clone());
        let mut c = confs(40, 8);
        ev.evaluate(&mut c);
        ev.evaluate(&mut c);
        assert_eq!(tl.segments().len(), 4, "2 batches x 2 devices");
        assert!((tl.makespan() - ev.makespan()).abs() < 1e-15);
        let recorded: u64 = tl.segments().iter().map(|s| s.items).sum();
        assert_eq!(recorded, 80);
    }

    #[test]
    #[should_panic]
    fn cpu_only_strategy_rejected() {
        DeviceEvaluator::new(hertz_devices(), scorer(), Strategy::CpuOnly);
    }

    #[test]
    #[should_panic]
    fn empty_device_list_rejected() {
        DeviceEvaluator::new(Vec::new(), scorer(), Strategy::HomogeneousSplit);
    }

    #[test]
    fn full_metaheuristic_run_through_devices() {
        // End-to-end: Algorithm 1 driving the heterogeneous executor.
        let sc = scorer();
        let spots = vec![vsmol::Spot {
            id: 0,
            center: vsmath::Vec3::new(18.0, 0.0, 0.0),
            normal: vsmath::Vec3::X,
            radius: 4.0,
            anchor_atom: 0,
        }];
        let devs = hertz_devices();
        let mut ev = DeviceEvaluator::new(
            devs.clone(),
            sc,
            Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
        );
        let params = metaheur::m3(0.5);
        let r = metaheur::run(&params, &spots, &mut ev, 11);
        assert!(r.best.is_scored());
        assert!(ev.makespan() > 0.0);
        assert_eq!(
            r.evaluations,
            params.evals_per_spot(),
            "evaluation accounting must survive the device path"
        );
    }
}
