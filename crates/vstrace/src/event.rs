//! The typed event model.
//!
//! Every observable fact about a run is one of these variants. Payloads
//! carry *virtual* (simulated) times and deterministic quantities only;
//! the wall-clock stamp lives in the [`Stamped`] wrapper so that two runs
//! with the same seed produce identical event streams modulo wall-clock
//! fields (the determinism contract, tested in `tests/`).
//!
//! Events are `Copy` (no heap payloads) so the ring-buffer writer is a
//! plain memcpy; human-readable names for device/node tracks are attached
//! out of band via [`crate::Trace::set_track_name`].

/// One structured observation. All times are seconds of *virtual* device
/// time unless the field name says otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A batch of poses was scored end to end (submitter's view).
    BatchScored {
        /// Submitting evaluator's device id, or `u32::MAX` for "all".
        device: u32,
        items: u64,
        pairs_per_item: u64,
        vt_start: f64,
        vt_end: f64,
    },
    /// A device executed work for `[vt_start, vt_end]`, split into modeled
    /// kernel time and PCIe transfer time (`kernel_s + transfer_s` may be
    /// less than the busy interval when launch overhead is charged).
    DeviceBusy {
        device: u32,
        vt_start: f64,
        vt_end: f64,
        kernel_s: f64,
        transfer_s: f64,
        items: u64,
    },
    /// A device sat idle for `[vt_start, vt_end]` (barrier wait, straggler).
    DeviceIdle { device: u32, vt_start: f64, vt_end: f64 },
    /// One warm-up iteration measurement (Eq. 1 input).
    WarmupSample { device: u32, iteration: u32, seconds: f64 },
    /// The scheduler fixed a device's share of the workload.
    PartitionDecision { device: u32, share: f64, weight: f64 },
    /// A metaheuristic generation finished.
    GenerationDone { generation: u32, best_score: f64, evaluations: u64 },
    /// A receptor potential-grid field was built (or fetched from the
    /// keyed build cache). `build_s` is wall-clock and — like
    /// [`Stamped::mono_ns`] — excluded from the determinism contract.
    GridBuilt { nodes: u64, grids: u32, bytes: u64, build_s: f64, cached: bool },
    /// A cluster job ran on a different node than the static plan intended.
    JobMigrated { job: u32, from_node: u32, to_node: u32 },
    /// A node was degraded by the fault plan.
    FaultInjected { node: u32, slowdown: f64 },
    /// The campaign service admitted a submission into the bounded queue
    /// (`vscluster::service`). `vt` is the virtual arrival time; `jobs` the
    /// per-ligand fan-out the campaign expands into.
    JobAdmitted { campaign: u32, jobs: u32, interactive: bool, vt: f64 },
    /// Admission control turned a submission away: the bounded queue held
    /// `queued` of `capacity` jobs at the campaign's arrival — backpressure
    /// made observable.
    JobRejected { campaign: u32, jobs: u32, queued: u32, capacity: u32, vt: f64 },
    /// A per-ligand job was served from the results cache instead of the
    /// device fleet: a duplicate `(receptor, ligand, seed, kernel)` key.
    CacheHit { campaign: u32, ligand: u32, vt: f64 },
    /// An elastic scale-up event: a node joined the campaign service
    /// mid-run and became eligible for dispatch at `vt`.
    NodeJoined { node: u32, vt: f64 },
    /// An elastic scale-down event: a node left at `vt`; `requeued` counts
    /// the in-flight jobs that were aborted and returned to the queue.
    NodeLeft { node: u32, vt: f64, requeued: u32 },
    /// Begin of a named wall-clock span (paired with [`Event::SpanEnd`]).
    SpanBegin { name: &'static str },
    /// End of the innermost open span with the same name on this thread.
    SpanEnd { name: &'static str },
    /// A sampled scalar (rendered as a counter track in chrome-trace).
    Counter { name: &'static str, value: f64 },
    /// Occupancy of one bounded stage channel in the pipelined engine,
    /// sampled after a send (`metaheur::pipeline`). `depth` is the number
    /// of queued messages; the channel capacity bounds it.
    StageDepth { stage: &'static str, depth: u32 },
    /// The learned cost oracle ingested one observation (`vsched::oracle`,
    /// DESIGN.md §15): device `device` ran a `class` batch (stable kernel
    /// ordinal: 0 pair-sweep, 1 grid-interp, 2 shell-pairs) in `observed`
    /// virtual seconds against a `predicted` estimate; `residual` is the
    /// relative error and `refit` marks a drift-triggered model reset.
    ModelUpdated {
        device: u32,
        class: u32,
        predicted: f64,
        observed: f64,
        residual: f64,
        refit: bool,
    },
}

impl Event {
    /// Short kind label used by exporters and summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::BatchScored { .. } => "BatchScored",
            Event::DeviceBusy { .. } => "DeviceBusy",
            Event::DeviceIdle { .. } => "DeviceIdle",
            Event::WarmupSample { .. } => "WarmupSample",
            Event::PartitionDecision { .. } => "PartitionDecision",
            Event::GenerationDone { .. } => "GenerationDone",
            Event::GridBuilt { .. } => "GridBuilt",
            Event::JobMigrated { .. } => "JobMigrated",
            Event::FaultInjected { .. } => "FaultInjected",
            Event::JobAdmitted { .. } => "JobAdmitted",
            Event::JobRejected { .. } => "JobRejected",
            Event::CacheHit { .. } => "CacheHit",
            Event::NodeJoined { .. } => "NodeJoined",
            Event::NodeLeft { .. } => "NodeLeft",
            Event::SpanBegin { .. } => "SpanBegin",
            Event::SpanEnd { .. } => "SpanEnd",
            Event::Counter { .. } => "Counter",
            Event::StageDepth { .. } => "StageDepth",
            Event::ModelUpdated { .. } => "ModelUpdated",
        }
    }
}

/// An event plus its recording context: wall-clock monotonic nanoseconds
/// since the trace was created and the recording thread's ring id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stamped {
    /// Monotonic wall-clock nanoseconds since [`crate::Trace::new`].
    /// Excluded from the determinism contract.
    pub mono_ns: u64,
    /// Ring (thread) id the event was recorded on.
    pub thread: u32,
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_are_distinct() {
        let evs = [
            Event::BatchScored {
                device: 0,
                items: 1,
                pairs_per_item: 1,
                vt_start: 0.0,
                vt_end: 1.0,
            },
            Event::DeviceBusy {
                device: 0,
                vt_start: 0.0,
                vt_end: 1.0,
                kernel_s: 0.5,
                transfer_s: 0.5,
                items: 1,
            },
            Event::DeviceIdle { device: 0, vt_start: 0.0, vt_end: 1.0 },
            Event::WarmupSample { device: 0, iteration: 0, seconds: 0.1 },
            Event::PartitionDecision { device: 0, share: 0.5, weight: 1.0 },
            Event::GenerationDone { generation: 0, best_score: -1.0, evaluations: 64 },
            Event::GridBuilt { nodes: 1, grids: 1, bytes: 4, build_s: 0.1, cached: false },
            Event::JobMigrated { job: 0, from_node: 0, to_node: 1 },
            Event::FaultInjected { node: 0, slowdown: 2.0 },
            Event::JobAdmitted { campaign: 0, jobs: 4, interactive: true, vt: 0.0 },
            Event::JobRejected { campaign: 1, jobs: 4, queued: 8, capacity: 8, vt: 0.0 },
            Event::CacheHit { campaign: 0, ligand: 2, vt: 0.1 },
            Event::NodeJoined { node: 2, vt: 0.5 },
            Event::NodeLeft { node: 1, vt: 0.7, requeued: 3 },
            Event::SpanBegin { name: "x" },
            Event::SpanEnd { name: "x" },
            Event::Counter { name: "x", value: 1.0 },
            Event::StageDepth { stage: "x", depth: 1 },
            Event::ModelUpdated {
                device: 0,
                class: 0,
                predicted: 1.0,
                observed: 1.2,
                residual: 0.2,
                refit: false,
            },
        ];
        let mut kinds: Vec<&str> = evs.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), evs.len());
    }
}
