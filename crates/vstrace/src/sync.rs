//! Synchronization facade for the seqlock ring.
//!
//! Normal builds re-export the `std` atomics verbatim — a zero-cost pure
//! alias, so the production ring is bit-for-bit the `std`-based
//! implementation. Under the `vscheck-model` feature the same names
//! resolve to the `vscheck` instrumented atomics, turning every seqlock
//! word access in [`crate::ring`] into a scheduler choice point so the
//! `model_*` tests can exhaustively explore writer/reader interleavings
//! (DESIGN.md §9). Orderings are honored in normal builds and collapse to
//! SeqCst in the model — weak-memory effects are outside vscheck's scope.

pub(crate) mod atomic {
    #[cfg(not(feature = "vscheck-model"))]
    pub(crate) use std::sync::atomic::AtomicU64;
    #[cfg(feature = "vscheck-model")]
    pub(crate) use vscheck::sync::atomic::AtomicU64;
}
