//! The [`Trace`] handle and its sink.
//!
//! `Trace` is a cheap-clone handle threaded through the hot paths. A
//! disabled handle ([`Trace::disabled`]) carries no sink: every `emit`,
//! `span` and `counter` call reduces to an `Option` check that the
//! optimizer folds away, so instrumented code costs nothing when tracing
//! is off (the overhead contract, DESIGN.md "Observability").
//!
//! An enabled handle routes records to a per-thread [`Ring`]: the first
//! emit from a thread registers a fresh ring with the sink and caches it
//! in a thread-local, so the steady-state emit path is a thread-local
//! lookup plus a wait-free ring push — no locks, no allocation.

use crate::event::{Event, Stamped};
use crate::ring::Ring;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
// DETERMINISM: vstrace is the sanctioned base layer — its cold-path registry mutexes sit under the facade everything else imports.
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-thread ring capacity (records).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 14;

static NEXT_SINK_ID: AtomicU64 = AtomicU64::new(1);

struct Sink {
    id: u64,
    epoch: Instant,
    capacity: usize,
    next_thread: AtomicU32,
    rings: Mutex<Vec<(u32, Arc<Ring>)>>,
    track_names: Mutex<BTreeMap<u32, String>>,
}

thread_local! {
    /// sink id → this thread's ring in that sink.
    static LOCAL_RINGS: RefCell<HashMap<u64, (u32, Arc<Ring>)>> = RefCell::new(HashMap::new());
}

impl Sink {
    fn local_ring(&self) -> (u32, Arc<Ring>) {
        LOCAL_RINGS.with(|map| {
            let mut map = map.borrow_mut();
            if let Some(entry) = map.get(&self.id) {
                return entry.clone();
            }
            let thread = self.next_thread.fetch_add(1, Ordering::Relaxed);
            let ring = Arc::new(Ring::new(self.capacity));
            // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
            self.rings.lock().expect("trace ring registry poisoned").push((thread, ring.clone()));
            map.insert(self.id, (thread, ring.clone()));
            (thread, ring)
        })
    }

    fn emit(&self, event: Event) {
        let (thread, ring) = self.local_ring();
        let mono_ns = self.epoch.elapsed().as_nanos() as u64;
        ring.push(Stamped { mono_ns, thread, event });
    }
}

/// Handle to a trace sink; clone freely, pass by value or reference.
#[derive(Clone)]
pub struct Trace {
    inner: Option<Arc<Sink>>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(s) => {
                write!(f, "Trace(enabled, {} rings)", s.rings.lock().map(|r| r.len()).unwrap_or(0))
            }
            None => write!(f, "Trace(disabled)"),
        }
    }
}

impl Default for Trace {
    fn default() -> Trace {
        Trace::disabled()
    }
}

impl Trace {
    /// An enabled trace with the default per-thread ring capacity.
    pub fn new() -> Trace {
        Trace::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An enabled trace retaining at most `capacity` records per thread
    /// (oldest records are dropped on overflow).
    pub fn with_capacity(capacity: usize) -> Trace {
        Trace {
            inner: Some(Arc::new(Sink {
                id: NEXT_SINK_ID.fetch_add(1, Ordering::Relaxed),
                // DETERMINISM: the epoch is the one sanctioned wall-clock read; everything downstream is relative to it.
                epoch: Instant::now(),
                capacity,
                next_thread: AtomicU32::new(0),
                rings: Mutex::new(Vec::new()),
                track_names: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// The no-op handle: records nothing, costs an `Option` check.
    pub fn disabled() -> Trace {
        Trace { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Seconds since this trace's epoch; `0.0` on a disabled handle.
    ///
    /// This is the sanctioned clock edge for deterministic crates: code
    /// that wants to *report* wall time (grid build cost, span lengths)
    /// takes a clock closure from its caller and the caller passes this,
    /// so `Instant::now()` never appears outside vstrace itself.
    pub fn now_s(&self) -> f64 {
        // DETERMINISM: the trace epoch is the one sanctioned wall-clock read; disabled handles return a constant.
        self.inner.as_ref().map_or(0.0, |s| s.epoch.elapsed().as_secs_f64())
    }

    /// Record one event (no-op when disabled).
    #[inline]
    pub fn emit(&self, event: Event) {
        if let Some(sink) = &self.inner {
            sink.emit(event);
        }
    }

    /// Record a sampled scalar (no-op when disabled).
    #[inline]
    pub fn counter(&self, name: &'static str, value: f64) {
        self.emit(Event::Counter { name, value });
    }

    /// Open a named wall-clock span; the end event is recorded when the
    /// returned guard drops. The guard owns a handle clone, so it does not
    /// borrow the trace (hot paths can keep mutating `self` underneath it).
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.emit(Event::SpanBegin { name });
        SpanGuard { trace: self.clone(), name }
    }

    /// Attach a human-readable name to a device/node track id (cold path;
    /// exporters use it to label timeline rows).
    pub fn set_track_name(&self, track: u32, name: &str) {
        if let Some(sink) = &self.inner {
            sink.track_names
                .lock()
                // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
                .expect("trace name registry poisoned")
                .insert(track, name.to_string());
        }
    }

    /// Snapshot everything recorded so far. Returns an empty snapshot for
    /// a disabled trace.
    pub fn snapshot(&self) -> TraceData {
        let Some(sink) = &self.inner else {
            return TraceData { threads: Vec::new(), track_names: BTreeMap::new(), dropped: 0 };
        };
        // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
        let rings = sink.rings.lock().expect("trace ring registry poisoned").clone();
        let mut threads: Vec<ThreadEvents> = rings
            .iter()
            .map(|(thread, ring)| {
                let events = ring.snapshot();
                let dropped = ring.pushed() - events.len() as u64;
                ThreadEvents { thread: *thread, events, dropped }
            })
            .collect();
        threads.sort_by_key(|t| t.thread);
        let dropped = threads.iter().map(|t| t.dropped).sum();
        TraceData {
            threads,
            // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
            track_names: sink.track_names.lock().expect("trace name registry poisoned").clone(),
            dropped,
        }
    }
}

/// RAII guard closing a span (see [`Trace::span`]).
pub struct SpanGuard {
    trace: Trace,
    name: &'static str,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.trace.emit(Event::SpanEnd { name: self.name });
    }
}

/// Events recorded by one thread, in emission order.
#[derive(Debug, Clone)]
pub struct ThreadEvents {
    pub thread: u32,
    pub events: Vec<Stamped>,
    /// Records lost to ring wraparound on this thread.
    pub dropped: u64,
}

/// A snapshot of a trace: per-thread event streams plus track metadata.
#[derive(Debug, Clone)]
pub struct TraceData {
    /// Per-thread streams, sorted by thread id. Within a thread the order
    /// is the emission order; across threads only virtual/wall stamps
    /// order events.
    pub threads: Vec<ThreadEvents>,
    /// Device/node track id → display name.
    pub track_names: BTreeMap<u32, String>,
    /// Total records lost to wraparound across all threads.
    pub dropped: u64,
}

impl TraceData {
    /// All events flattened in (thread, emission-order) order.
    pub fn events(&self) -> impl Iterator<Item = &Stamped> {
        self.threads.iter().flat_map(|t| t.events.iter())
    }

    pub fn len(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The event payloads only (wall-clock stamps and thread ids
    /// stripped) — the deterministic projection of the stream.
    pub fn payloads(&self) -> Vec<Event> {
        self.events().map(|s| s.event).collect()
    }

    /// Total modeled busy seconds for one device track, summed over
    /// [`Event::DeviceBusy`] events.
    pub fn device_busy_s(&self, device: u32) -> f64 {
        self.events()
            .filter_map(|s| match s.event {
                Event::DeviceBusy { device: d, vt_start, vt_end, .. } if d == device => {
                    Some(vt_end - vt_start)
                }
                _ => None,
            })
            .sum()
    }

    /// Total modeled idle seconds for one device track, summed over
    /// [`Event::DeviceIdle`] events — time the device spent waiting on a
    /// host release rather than scoring.
    pub fn device_idle_s(&self, device: u32) -> f64 {
        self.events()
            .filter_map(|s| match s.event {
                Event::DeviceIdle { device: d, vt_start, vt_end } if d == device => {
                    Some(vt_end - vt_start)
                }
                _ => None,
            })
            .sum()
    }

    /// Device ids appearing in busy/idle events, ascending.
    pub fn devices(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .events()
            .filter_map(|s| match s.event {
                Event::DeviceBusy { device, .. } | Event::DeviceIdle { device, .. } => Some(device),
                _ => None,
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::disabled();
        assert!(!t.is_enabled());
        t.emit(Event::FaultInjected { node: 0, slowdown: 2.0 });
        t.counter("x", 1.0);
        {
            let _g = t.span("work");
        }
        t.set_track_name(0, "gpu");
        let snap = t.snapshot();
        assert!(snap.is_empty(), "disabled sink must record zero events");
        assert_eq!(snap.len(), 0);
        assert!(snap.track_names.is_empty());
    }

    #[test]
    fn span_guard_emits_begin_and_end() {
        let t = Trace::new();
        {
            let _g = t.span("outer");
            t.counter("inside", 3.0);
        }
        let p = t.snapshot().payloads();
        assert_eq!(
            p,
            vec![
                Event::SpanBegin { name: "outer" },
                Event::Counter { name: "inside", value: 3.0 },
                Event::SpanEnd { name: "outer" },
            ]
        );
    }

    #[test]
    fn threads_get_separate_rings() {
        let t = Trace::new();
        t.counter("main", 0.0);
        let t2 = t.clone();
        std::thread::spawn(move || t2.counter("worker", 1.0)).join().unwrap();
        let snap = t.snapshot();
        assert_eq!(snap.threads.len(), 2);
        assert_eq!(snap.len(), 2);
        let mut threads: Vec<u32> = snap.threads.iter().map(|th| th.thread).collect();
        threads.dedup();
        assert_eq!(threads.len(), 2, "distinct ring ids");
    }

    #[test]
    fn wall_stamps_are_monotonic_per_thread() {
        let t = Trace::new();
        for i in 0..100 {
            t.counter("i", i as f64);
        }
        let snap = t.snapshot();
        let stamps: Vec<u64> = snap.threads[0].events.iter().map(|s| s.mono_ns).collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn dropped_counts_wraparound() {
        let t = Trace::with_capacity(8);
        for i in 0..20 {
            t.counter("i", i as f64);
        }
        let snap = t.snapshot();
        assert_eq!(snap.len(), 8);
        assert_eq!(snap.dropped, 12);
    }

    #[test]
    fn device_busy_helper_sums_per_device() {
        let t = Trace::new();
        t.emit(Event::DeviceBusy {
            device: 0,
            vt_start: 0.0,
            vt_end: 1.5,
            kernel_s: 1.0,
            transfer_s: 0.5,
            items: 10,
        });
        t.emit(Event::DeviceBusy {
            device: 1,
            vt_start: 0.0,
            vt_end: 0.5,
            kernel_s: 0.4,
            transfer_s: 0.1,
            items: 4,
        });
        t.emit(Event::DeviceBusy {
            device: 0,
            vt_start: 2.0,
            vt_end: 2.5,
            kernel_s: 0.4,
            transfer_s: 0.1,
            items: 4,
        });
        let snap = t.snapshot();
        assert!((snap.device_busy_s(0) - 2.0).abs() < 1e-12);
        assert!((snap.device_busy_s(1) - 0.5).abs() < 1e-12);
        assert_eq!(snap.devices(), vec![0, 1]);
    }
}
