//! Chrome-trace (Trace Event Format) exporter.
//!
//! The output loads in `chrome://tracing` and <https://ui.perfetto.dev>.
//! Two synthetic processes separate the clock domains:
//!
//! - **pid 0 — wall clock**: host-thread spans (`B`/`E` pairs), counters
//!   (`C`) and instant annotations (`i`) stamped with monotonic wall time;
//! - **pid 1 — virtual device time**: `DeviceBusy`/`DeviceIdle`/
//!   `BatchScored` complete events (`X`) stamped with the gpusim virtual
//!   clock, one timeline row per device.
//!
//! All timestamps are microseconds (the format's unit). The document is
//! re-parseable with [`crate::json::parse`], which is what the
//! well-formedness tests and `scripts/trace_report.sh` do.

use crate::event::Event;
use crate::json::escape;
use crate::sink::TraceData;
use std::fmt::Write;

const WALL_PID: u32 = 0;
const VIRTUAL_PID: u32 = 1;
/// Track id used for whole-evaluator batch events ([`Event::BatchScored`]
/// with `device == u32::MAX`).
pub const BATCH_TRACK: u32 = u32::MAX;

/// JSON-safe number rendering (non-finite values become 0).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

fn push_event(out: &mut String, fields: &str) {
    out.push_str("    {");
    out.push_str(fields);
    out.push_str("},\n");
}

/// Serialize a snapshot to a chrome-trace JSON document.
pub fn chrome_trace_json(data: &TraceData) -> String {
    let mut out = String::with_capacity(256 + data.len() * 96);
    out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");

    // Metadata: name the two clock-domain processes and every track.
    push_event(
        &mut out,
        &format!(
            "\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {WALL_PID}, \"tid\": 0, \
             \"args\": {{\"name\": \"wall clock (host threads)\"}}"
        ),
    );
    push_event(
        &mut out,
        &format!(
            "\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {VIRTUAL_PID}, \"tid\": 0, \
             \"args\": {{\"name\": \"virtual device time\"}}"
        ),
    );
    for t in &data.threads {
        push_event(
            &mut out,
            &format!(
                "\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {WALL_PID}, \"tid\": {}, \
                 \"args\": {{\"name\": \"host thread {}\"}}",
                t.thread, t.thread
            ),
        );
    }
    let mut tracks: Vec<(u32, String)> =
        data.track_names.iter().map(|(id, name)| (*id, name.clone())).collect();
    tracks.sort_by_key(|(id, _)| *id);
    for (id, name) in &tracks {
        push_event(
            &mut out,
            &format!(
                "\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {VIRTUAL_PID}, \"tid\": {id}, \
                 \"args\": {{\"name\": \"{}\"}}",
                escape(name)
            ),
        );
    }
    if data
        .events()
        .any(|s| matches!(s.event, Event::BatchScored { device, .. } if device == BATCH_TRACK))
        && !data.track_names.contains_key(&BATCH_TRACK)
    {
        push_event(
            &mut out,
            &format!(
                "\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {VIRTUAL_PID}, \
                 \"tid\": {BATCH_TRACK}, \"args\": {{\"name\": \"batch stream\"}}"
            ),
        );
    }

    for t in &data.threads {
        for s in &t.events {
            let wall_us = s.mono_ns as f64 / 1e3;
            let tid = t.thread;
            match s.event {
                Event::SpanBegin { name } => push_event(
                    &mut out,
                    &format!(
                        "\"name\": \"{}\", \"ph\": \"B\", \"pid\": {WALL_PID}, \"tid\": {tid}, \
                         \"ts\": {}",
                        escape(name),
                        num(wall_us)
                    ),
                ),
                Event::SpanEnd { name } => push_event(
                    &mut out,
                    &format!(
                        "\"name\": \"{}\", \"ph\": \"E\", \"pid\": {WALL_PID}, \"tid\": {tid}, \
                         \"ts\": {}",
                        escape(name),
                        num(wall_us)
                    ),
                ),
                Event::Counter { name, value } => push_event(
                    &mut out,
                    &format!(
                        "\"name\": \"{}\", \"ph\": \"C\", \"pid\": {WALL_PID}, \"tid\": {tid}, \
                         \"ts\": {}, \"args\": {{\"value\": {}}}",
                        escape(name),
                        num(wall_us),
                        num(value)
                    ),
                ),
                Event::DeviceBusy { device, vt_start, vt_end, kernel_s, transfer_s, items } => {
                    push_event(
                        &mut out,
                        &format!(
                            "\"name\": \"busy\", \"ph\": \"X\", \"pid\": {VIRTUAL_PID}, \
                             \"tid\": {device}, \"ts\": {}, \"dur\": {}, \"args\": {{\
                             \"items\": {items}, \"kernel_us\": {}, \"transfer_us\": {}}}",
                            num(vt_start * 1e6),
                            num((vt_end - vt_start) * 1e6),
                            num(kernel_s * 1e6),
                            num(transfer_s * 1e6)
                        ),
                    )
                }
                Event::DeviceIdle { device, vt_start, vt_end } => push_event(
                    &mut out,
                    &format!(
                        "\"name\": \"idle\", \"ph\": \"X\", \"pid\": {VIRTUAL_PID}, \
                         \"tid\": {device}, \"ts\": {}, \"dur\": {}",
                        num(vt_start * 1e6),
                        num((vt_end - vt_start) * 1e6)
                    ),
                ),
                Event::BatchScored { device, items, pairs_per_item, vt_start, vt_end } => {
                    push_event(
                        &mut out,
                        &format!(
                            "\"name\": \"batch\", \"ph\": \"X\", \"pid\": {VIRTUAL_PID}, \
                             \"tid\": {device}, \"ts\": {}, \"dur\": {}, \"args\": {{\
                             \"items\": {items}, \"pairs_per_item\": {pairs_per_item}}}",
                            num(vt_start * 1e6),
                            num((vt_end - vt_start) * 1e6)
                        ),
                    )
                }
                Event::WarmupSample { device, iteration, seconds } => push_event(
                    &mut out,
                    &format!(
                        "\"name\": \"WarmupSample\", \"ph\": \"i\", \"s\": \"t\", \
                         \"pid\": {WALL_PID}, \"tid\": {tid}, \"ts\": {}, \"args\": {{\
                         \"device\": {device}, \"iteration\": {iteration}, \"seconds\": {}}}",
                        num(wall_us),
                        num(seconds)
                    ),
                ),
                Event::PartitionDecision { device, share, weight } => push_event(
                    &mut out,
                    &format!(
                        "\"name\": \"PartitionDecision\", \"ph\": \"i\", \"s\": \"t\", \
                         \"pid\": {WALL_PID}, \"tid\": {tid}, \"ts\": {}, \"args\": {{\
                         \"device\": {device}, \"share\": {}, \"weight\": {}}}",
                        num(wall_us),
                        num(share),
                        num(weight)
                    ),
                ),
                Event::GenerationDone { generation, best_score, evaluations } => push_event(
                    &mut out,
                    &format!(
                        "\"name\": \"GenerationDone\", \"ph\": \"i\", \"s\": \"t\", \
                         \"pid\": {WALL_PID}, \"tid\": {tid}, \"ts\": {}, \"args\": {{\
                         \"generation\": {generation}, \"best_score\": {}, \
                         \"evaluations\": {evaluations}}}",
                        num(wall_us),
                        num(best_score)
                    ),
                ),
                Event::GridBuilt { nodes, grids, bytes, build_s, cached } => push_event(
                    &mut out,
                    &format!(
                        "\"name\": \"GridBuilt\", \"ph\": \"i\", \"s\": \"t\", \
                         \"pid\": {WALL_PID}, \"tid\": {tid}, \"ts\": {}, \"args\": {{\
                         \"nodes\": {nodes}, \"grids\": {grids}, \"bytes\": {bytes}, \
                         \"build_s\": {}, \"cached\": {cached}}}",
                        num(wall_us),
                        num(build_s)
                    ),
                ),
                Event::JobMigrated { job, from_node, to_node } => push_event(
                    &mut out,
                    &format!(
                        "\"name\": \"JobMigrated\", \"ph\": \"i\", \"s\": \"g\", \
                         \"pid\": {WALL_PID}, \"tid\": {tid}, \"ts\": {}, \"args\": {{\
                         \"job\": {job}, \"from_node\": {from_node}, \"to_node\": {to_node}}}",
                        num(wall_us)
                    ),
                ),
                Event::FaultInjected { node, slowdown } => push_event(
                    &mut out,
                    &format!(
                        "\"name\": \"FaultInjected\", \"ph\": \"i\", \"s\": \"g\", \
                         \"pid\": {WALL_PID}, \"tid\": {tid}, \"ts\": {}, \"args\": {{\
                         \"node\": {node}, \"slowdown\": {}}}",
                        num(wall_us),
                        num(slowdown)
                    ),
                ),
                Event::JobAdmitted { campaign, jobs, interactive, vt } => push_event(
                    &mut out,
                    &format!(
                        "\"name\": \"JobAdmitted\", \"ph\": \"i\", \"s\": \"g\", \
                         \"pid\": {WALL_PID}, \"tid\": {tid}, \"ts\": {}, \"args\": {{\
                         \"campaign\": {campaign}, \"jobs\": {jobs}, \
                         \"interactive\": {interactive}, \"vt\": {}}}",
                        num(wall_us),
                        num(vt)
                    ),
                ),
                Event::JobRejected { campaign, jobs, queued, capacity, vt } => push_event(
                    &mut out,
                    &format!(
                        "\"name\": \"JobRejected\", \"ph\": \"i\", \"s\": \"g\", \
                         \"pid\": {WALL_PID}, \"tid\": {tid}, \"ts\": {}, \"args\": {{\
                         \"campaign\": {campaign}, \"jobs\": {jobs}, \"queued\": {queued}, \
                         \"capacity\": {capacity}, \"vt\": {}}}",
                        num(wall_us),
                        num(vt)
                    ),
                ),
                Event::CacheHit { campaign, ligand, vt } => push_event(
                    &mut out,
                    &format!(
                        "\"name\": \"CacheHit\", \"ph\": \"i\", \"s\": \"t\", \
                         \"pid\": {WALL_PID}, \"tid\": {tid}, \"ts\": {}, \"args\": {{\
                         \"campaign\": {campaign}, \"ligand\": {ligand}, \"vt\": {}}}",
                        num(wall_us),
                        num(vt)
                    ),
                ),
                Event::NodeJoined { node, vt } => push_event(
                    &mut out,
                    &format!(
                        "\"name\": \"NodeJoined\", \"ph\": \"i\", \"s\": \"g\", \
                         \"pid\": {WALL_PID}, \"tid\": {tid}, \"ts\": {}, \"args\": {{\
                         \"node\": {node}, \"vt\": {}}}",
                        num(wall_us),
                        num(vt)
                    ),
                ),
                Event::NodeLeft { node, vt, requeued } => push_event(
                    &mut out,
                    &format!(
                        "\"name\": \"NodeLeft\", \"ph\": \"i\", \"s\": \"g\", \
                         \"pid\": {WALL_PID}, \"tid\": {tid}, \"ts\": {}, \"args\": {{\
                         \"node\": {node}, \"vt\": {}, \"requeued\": {requeued}}}",
                        num(wall_us),
                        num(vt)
                    ),
                ),
                Event::StageDepth { stage, depth } => push_event(
                    &mut out,
                    &format!(
                        "\"name\": \"depth:{}\", \"ph\": \"C\", \"pid\": {WALL_PID}, \
                         \"tid\": {tid}, \"ts\": {}, \"args\": {{\"value\": {depth}}}",
                        escape(stage),
                        num(wall_us)
                    ),
                ),
                Event::ModelUpdated { device, class, predicted, observed, residual, refit } => {
                    push_event(
                        &mut out,
                        &format!(
                            "\"name\": \"ModelUpdated\", \"ph\": \"i\", \"s\": \"t\", \
                             \"pid\": {WALL_PID}, \"tid\": {tid}, \"ts\": {}, \"args\": {{\
                             \"device\": {device}, \"class\": {class}, \"predicted\": {}, \
                             \"observed\": {}, \"residual\": {}, \"refit\": {refit}}}",
                            num(wall_us),
                            num(predicted),
                            num(observed),
                            num(residual)
                        ),
                    )
                }
            }
        }
    }

    // Drop the trailing comma from the last event line.
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    let _ = write!(out, "  ],\n  \"droppedEvents\": {}\n}}\n", data.dropped);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};
    use crate::Trace;

    fn sample_trace() -> Trace {
        let t = Trace::new();
        t.set_track_name(0, "Tesla K40c");
        t.set_track_name(1, "GeForce GTX 580");
        {
            let _g = t.span("run \"quoted\"");
            t.counter("best", -7.25);
            t.emit(Event::WarmupSample { device: 0, iteration: 1, seconds: 0.003 });
            t.emit(Event::PartitionDecision { device: 0, share: 0.7, weight: 1.4 });
        }
        t.emit(Event::DeviceBusy {
            device: 0,
            vt_start: 0.0,
            vt_end: 0.002,
            kernel_s: 0.0015,
            transfer_s: 0.0004,
            items: 64,
        });
        t.emit(Event::DeviceIdle { device: 1, vt_start: 0.0, vt_end: 0.001 });
        t.emit(Event::BatchScored {
            device: BATCH_TRACK,
            items: 64,
            pairs_per_item: 1000,
            vt_start: 0.0,
            vt_end: 0.002,
        });
        t.emit(Event::GenerationDone { generation: 0, best_score: -7.25, evaluations: 64 });
        t.emit(Event::JobMigrated { job: 3, from_node: 0, to_node: 1 });
        t.emit(Event::FaultInjected { node: 0, slowdown: 2.0 });
        t.emit(Event::JobAdmitted { campaign: 0, jobs: 12, interactive: false, vt: 0.0 });
        t.emit(Event::JobRejected { campaign: 1, jobs: 3, queued: 12, capacity: 12, vt: 0.001 });
        t.emit(Event::CacheHit { campaign: 2, ligand: 7, vt: 0.002 });
        t.emit(Event::NodeJoined { node: 2, vt: 0.003 });
        t.emit(Event::NodeLeft { node: 0, vt: 0.004, requeued: 1 });
        t.emit(Event::ModelUpdated {
            device: 0,
            class: 0,
            predicted: 0.002,
            observed: 0.0024,
            residual: 0.2,
            refit: false,
        });
        t
    }

    #[test]
    fn export_parses_back_and_has_every_event() {
        let t = sample_trace();
        let data = t.snapshot();
        let json = chrome_trace_json(&data);
        let doc = parse(&json).expect("exporter must emit valid JSON");
        let events = doc.get("traceEvents").and_then(Value::as_arr).expect("traceEvents array");
        // Every element is an object with name/ph and numeric pid/tid.
        for e in events {
            let obj = e.as_obj().expect("event is an object");
            assert!(obj.contains_key("name") && obj.contains_key("ph"), "bad event: {obj:?}");
            assert!(e.get("pid").and_then(Value::as_num).is_some());
            assert!(e.get("tid").and_then(Value::as_num).is_some());
        }
        // Non-metadata events carry the recorded payloads.
        let names: Vec<&str> =
            events.iter().filter_map(|e| e.get("name").and_then(Value::as_str)).collect();
        for expect in [
            "busy",
            "idle",
            "batch",
            "WarmupSample",
            "PartitionDecision",
            "GenerationDone",
            "JobMigrated",
            "FaultInjected",
            "JobAdmitted",
            "JobRejected",
            "CacheHit",
            "NodeJoined",
            "NodeLeft",
            "ModelUpdated",
            "best",
        ] {
            assert!(names.contains(&expect), "missing {expect} in {names:?}");
        }
    }

    #[test]
    fn busy_durations_survive_the_roundtrip() {
        let t = sample_trace();
        let data = t.snapshot();
        let doc = parse(&chrome_trace_json(&data)).unwrap();
        let busy_us: f64 = doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .filter(|e| {
                e.get("name").and_then(Value::as_str) == Some("busy")
                    && e.get("tid").and_then(Value::as_num) == Some(0.0)
            })
            .filter_map(|e| e.get("dur").and_then(Value::as_num))
            .sum();
        assert!((busy_us / 1e6 - data.device_busy_s(0)).abs() < 1e-12);
    }

    #[test]
    fn track_names_are_escaped_metadata() {
        let t = Trace::new();
        t.set_track_name(7, "odd \"name\"\n");
        t.counter("x", 1.0);
        let json = chrome_trace_json(&t.snapshot());
        let doc = parse(&json).expect("escaped names keep the JSON valid");
        let found = doc.get("traceEvents").and_then(Value::as_arr).unwrap().iter().any(|e| {
            e.get("args").and_then(|a| a.get("name")).and_then(Value::as_str)
                == Some("odd \"name\"\n")
        });
        assert!(found);
    }

    #[test]
    fn empty_trace_exports_metadata_only() {
        let t = Trace::new();
        let json = chrome_trace_json(&t.snapshot());
        let doc = parse(&json).unwrap();
        assert!(doc.get("traceEvents").and_then(Value::as_arr).is_some());
    }
}
