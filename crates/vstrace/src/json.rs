//! A minimal validating JSON parser.
//!
//! The workspace's `serde` shim is marker-traits only (offline build — see
//! the workspace README), so the "parse the exported trace back" tests and
//! `scripts/trace_report.sh` validation need a real parser. This is a
//! small recursive-descent implementation covering the full JSON grammar;
//! it exists to *validate* exporter output, not to be fast.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup (None on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|o| o.get(key))
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            got => Err(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char,
                self.pos,
                got.map(|g| g as char)
            )),
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(map)),
                other => return Err(format!("expected ',' or '}}' got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                other => return Err(format!("expected ',' or ']' got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + (d as char).to_digit(16).ok_or("bad hex in \\u escape")?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) if c < 0x20 => return Err("raw control char in string".into()),
                Some(c) => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump();
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // PANICS: the scanned range holds only ASCII sign/digit/exponent bytes.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Value::Num).map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

/// Escape a string for embedding in JSON output (used by the exporters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}, null], "c": -2}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_num), Some(-2.0));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").and_then(Value::as_str), Some("x"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated", "{'a':1}", ""] {
            assert!(parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn unicode_and_escapes_roundtrip() {
        let v = parse("\"\\u0041µ→\"").unwrap();
        assert_eq!(v, Value::Str("Aµ→".into()));
        let original = "quote\" back\\ nl\n tab\t µ";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap(), Value::Str(original.into()));
    }
}
