//! Plain-text run summary.
//!
//! Aggregates a [`TraceData`] snapshot into the numbers the paper's
//! evaluation revolves around: per-device busy/idle/utilization with the
//! kernel vs. PCIe-transfer split, the makespan breakdown, a batch-size
//! histogram ([`vsmath::Histogram`]) and wall-clock span totals.

use crate::event::Event;
use crate::sink::TraceData;
use std::collections::BTreeMap;
use std::fmt::Write;
use vsmath::Histogram;

#[derive(Debug, Default, Clone, Copy)]
struct ModelAgg {
    observations: u64,
    refits: u64,
    last_residual: f64,
}

/// Human label for the stable kernel-class ordinal carried by
/// `Event::ModelUpdated` (`gpusim::KernelClass::ordinal`; vstrace stays
/// independent of gpusim, so the mapping is repeated here).
fn class_label(class: u32) -> &'static str {
    match class {
        0 => "pair-sweep",
        1 => "grid-interp",
        2 => "shell-pairs",
        _ => "unknown",
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct DeviceAgg {
    busy_s: f64,
    kernel_s: f64,
    transfer_s: f64,
    idle_s: f64,
    batches: u64,
    items: u64,
    last_end: f64,
}

/// Render the text summary of a snapshot.
pub fn text_summary(data: &TraceData) -> String {
    let mut devices: BTreeMap<u32, DeviceAgg> = BTreeMap::new();
    let mut batch_sizes: Vec<f64> = Vec::new();
    let mut spans: BTreeMap<&'static str, (u64, f64)> = BTreeMap::new();
    let mut open_spans: BTreeMap<(u32, &'static str), Vec<u64>> = BTreeMap::new();
    let mut stages: BTreeMap<&'static str, (u64, u32)> = BTreeMap::new();
    let mut generations = 0u64;
    let mut best_score = f64::INFINITY;
    let mut evaluations = 0u64;
    let mut migrations = 0u64;
    let mut faults = 0u64;
    let mut admitted = 0u64;
    let mut admitted_jobs = 0u64;
    let mut rejected = 0u64;
    let mut cache_hits = 0u64;
    let mut node_joins = 0u64;
    let mut node_leaves = 0u64;
    let mut requeued = 0u64;
    let mut grid_builds = 0u64;
    let mut grid_cached = 0u64;
    let mut grid_build_s = 0.0f64;
    let mut grid_bytes = 0u64;
    let mut model: BTreeMap<(u32, u32), ModelAgg> = BTreeMap::new();
    let mut reseeds = 0u64;

    for s in data.events() {
        match s.event {
            Event::DeviceBusy { device, vt_start, vt_end, kernel_s, transfer_s, items } => {
                let d = devices.entry(device).or_default();
                d.busy_s += vt_end - vt_start;
                d.kernel_s += kernel_s;
                d.transfer_s += transfer_s;
                d.batches += 1;
                d.items += items;
                d.last_end = d.last_end.max(vt_end);
                batch_sizes.push(items as f64);
            }
            Event::DeviceIdle { device, vt_start, vt_end } => {
                let d = devices.entry(device).or_default();
                d.idle_s += vt_end - vt_start;
                d.last_end = d.last_end.max(vt_end);
            }
            Event::BatchScored { items, .. } => batch_sizes.push(items as f64),
            Event::SpanBegin { name } => {
                open_spans.entry((s.thread, name)).or_default().push(s.mono_ns);
            }
            Event::SpanEnd { name } => {
                if let Some(begin) = open_spans.get_mut(&(s.thread, name)).and_then(Vec::pop) {
                    let e = spans.entry(name).or_insert((0, 0.0));
                    e.0 += 1;
                    e.1 += s.mono_ns.saturating_sub(begin) as f64 / 1e9;
                }
            }
            Event::GenerationDone { best_score: b, evaluations: e, .. } => {
                generations += 1;
                best_score = best_score.min(b);
                evaluations = evaluations.max(e);
            }
            Event::StageDepth { stage, depth } => {
                let e = stages.entry(stage).or_insert((0, 0));
                e.0 += 1;
                e.1 = e.1.max(depth);
            }
            Event::JobMigrated { .. } => migrations += 1,
            Event::FaultInjected { .. } => faults += 1,
            Event::JobAdmitted { jobs, .. } => {
                admitted += 1;
                admitted_jobs += u64::from(jobs);
            }
            Event::JobRejected { .. } => rejected += 1,
            Event::CacheHit { .. } => cache_hits += 1,
            Event::NodeJoined { .. } => node_joins += 1,
            Event::NodeLeft { requeued: r, .. } => {
                node_leaves += 1;
                requeued += u64::from(r);
            }
            Event::ModelUpdated { device, class, residual, refit, .. } => {
                let m = model.entry((device, class)).or_default();
                m.observations += 1;
                m.refits += u64::from(refit);
                m.last_residual = residual;
            }
            Event::Counter { name: "oracle_reseed", value } => {
                // The oracle emits its cumulative re-seed count; keep the max.
                reseeds = reseeds.max(value as u64);
            }
            Event::GridBuilt { bytes, build_s, cached, .. } => {
                grid_builds += 1;
                if cached {
                    grid_cached += 1;
                } else {
                    grid_build_s += build_s;
                    grid_bytes = grid_bytes.max(bytes);
                }
            }
            _ => {}
        }
    }

    let makespan = devices.values().map(|d| d.last_end).fold(0.0f64, f64::max);
    let mut out = String::new();
    let _ =
        writeln!(out, "vstrace summary: {} events on {} threads", data.len(), data.threads.len());
    if data.dropped > 0 {
        let _ = writeln!(out, "  (ring overflow dropped {} records)", data.dropped);
    }

    if !devices.is_empty() {
        let _ = writeln!(out, "\nvirtual makespan: {makespan:.6} s");
        let _ = writeln!(
            out,
            "{:<24} {:>10} {:>10} {:>10} {:>10} {:>8} {:>9} {:>8}",
            "device",
            "busy (s)",
            "kernel",
            "transfer",
            "idle (s)",
            "util %",
            "idle frac",
            "batches"
        );
        for (id, d) in &devices {
            let label = data.track_names.get(id).cloned().unwrap_or_else(|| format!("device {id}"));
            // Idle: prefer explicit DeviceIdle events, else makespan - busy.
            let idle = if d.idle_s > 0.0 { d.idle_s } else { (makespan - d.busy_s).max(0.0) };
            let util = if makespan > 0.0 { 100.0 * d.busy_s / makespan } else { 0.0 };
            // Fraction of the device's own span spent idle — the
            // pipelined-engine acceptance metric (DESIGN.md §12).
            let span = d.busy_s + idle;
            let idle_frac = if span > 0.0 { idle / span } else { 0.0 };
            let _ = writeln!(
                out,
                "{label:<24} {:>10.6} {:>10.6} {:>10.6} {:>10.6} {:>8.2} {:>9.3} {:>8}",
                d.busy_s, d.kernel_s, d.transfer_s, idle, util, idle_frac, d.batches
            );
        }
        let kernel: f64 = devices.values().map(|d| d.kernel_s).sum();
        let transfer: f64 = devices.values().map(|d| d.transfer_s).sum();
        let busy: f64 = devices.values().map(|d| d.busy_s).sum();
        let overhead = (busy - kernel - transfer).max(0.0);
        if busy > 0.0 {
            let _ = writeln!(
                out,
                "makespan breakdown (busy time): kernel {:.1}%, PCIe transfer {:.1}%, launch/other {:.1}%",
                100.0 * kernel / busy,
                100.0 * transfer / busy,
                100.0 * overhead / busy
            );
        }
    }

    if !batch_sizes.is_empty() {
        if let Some(h) = Histogram::auto(&batch_sizes, 8.min(batch_sizes.len())) {
            let _ = writeln!(out, "\nbatch sizes ({} batches):", batch_sizes.len());
            let _ = write!(out, "{}", h.render(40));
        }
    }

    if generations > 0 {
        let _ = writeln!(
            out,
            "\nsearch: {generations} generations, best score {best_score:.3}, {evaluations} evaluations"
        );
    }
    if faults + migrations > 0 {
        let _ = writeln!(out, "cluster: {faults} faults injected, {migrations} jobs migrated");
    }
    if admitted + rejected + cache_hits + node_joins + node_leaves > 0 {
        let _ = writeln!(
            out,
            "campaign service: {admitted} campaigns admitted ({admitted_jobs} jobs), \
             {rejected} rejected, {cache_hits} cache hits"
        );
        if node_joins + node_leaves > 0 {
            let _ = writeln!(
                out,
                "  elastic fleet: {node_joins} joins, {node_leaves} leaves \
                 ({requeued} jobs requeued)"
            );
        }
    }
    if grid_builds > 0 {
        let _ = writeln!(
            out,
            "potential grids: {grid_builds} requests ({grid_cached} cache hits), \
             {grid_build_s:.3} s building, {:.1} MiB largest field",
            grid_bytes as f64 / (1024.0 * 1024.0)
        );
    }

    if !model.is_empty() || reseeds > 0 {
        let total: u64 = model.values().map(|m| m.observations).sum();
        let _ = writeln!(
            out,
            "\ncost model (learned oracle): {total} observations, {reseeds} re-seeds"
        );
        let _ = writeln!(
            out,
            "{:<24} {:<12} {:>12} {:>8} {:>14}",
            "device", "class", "observations", "refits", "last residual"
        );
        for ((device, class), m) in &model {
            let label =
                data.track_names.get(device).cloned().unwrap_or_else(|| format!("device {device}"));
            let _ = writeln!(
                out,
                "{label:<24} {:<12} {:>12} {:>8} {:>14.4}",
                class_label(*class),
                m.observations,
                m.refits,
                m.last_residual
            );
        }
    }

    if !stages.is_empty() {
        let _ = writeln!(out, "\nstage channels (pipelined engine):");
        let _ = writeln!(out, "{:<24} {:>8} {:>10}", "stage", "sends", "max depth");
        for (name, (sends, max_depth)) in &stages {
            let _ = writeln!(out, "{name:<24} {sends:>8} {max_depth:>10}");
        }
    }

    if !spans.is_empty() {
        let _ = writeln!(out, "\nwall-clock spans:");
        let _ = writeln!(out, "{:<24} {:>8} {:>14}", "span", "count", "total (s)");
        for (name, (count, total)) in &spans {
            let _ = writeln!(out, "{name:<24} {count:>8} {total:>14.6}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    #[test]
    fn summary_reports_utilization_and_histogram() {
        let t = Trace::new();
        t.set_track_name(0, "K40c");
        t.set_track_name(1, "GTX580");
        for (dev, end, items) in [(0u32, 1.0f64, 64u64), (1, 0.5, 32), (0, 2.0, 64)] {
            t.emit(Event::DeviceBusy {
                device: dev,
                vt_start: end - 0.5,
                vt_end: end,
                kernel_s: 0.4,
                transfer_s: 0.05,
                items,
            });
        }
        {
            let _g = t.span("generation");
        }
        t.emit(Event::GenerationDone { generation: 0, best_score: -4.5, evaluations: 160 });
        let s = text_summary(&t.snapshot());
        assert!(s.contains("K40c"), "{s}");
        assert!(s.contains("GTX580"), "{s}");
        assert!(s.contains("virtual makespan: 2.0"), "{s}");
        // K40c: busy 1.0s over makespan 2.0s = 50% utilization.
        assert!(s.contains("50.00"), "{s}");
        assert!(s.contains("batch sizes (3 batches)"), "{s}");
        assert!(s.contains("generation"), "{s}");
        assert!(s.contains("best score -4.500"), "{s}");
        assert!(s.contains("makespan breakdown"), "{s}");
    }

    #[test]
    fn summary_reports_idle_fraction_and_stage_depths() {
        let t = Trace::new();
        t.set_track_name(0, "K40c");
        t.emit(Event::DeviceBusy {
            device: 0,
            vt_start: 0.0,
            vt_end: 3.0,
            kernel_s: 2.5,
            transfer_s: 0.2,
            items: 128,
        });
        t.emit(Event::DeviceIdle { device: 0, vt_start: 3.0, vt_end: 4.0 });
        t.emit(Event::StageDepth { stage: "breed", depth: 2 });
        t.emit(Event::StageDepth { stage: "breed", depth: 3 });
        let s = text_summary(&t.snapshot());
        assert!(s.contains("idle frac"), "{s}");
        // idle 1.0 over span busy 3.0 + idle 1.0 = 0.250.
        assert!(s.contains("0.250"), "{s}");
        assert!(s.contains("stage channels"), "{s}");
        assert!(s.contains("breed"), "{s}");
        assert!(s.contains("2"), "{s}"); // 2 sends, max depth 3
    }

    #[test]
    fn summary_reports_campaign_service_section() {
        let t = Trace::new();
        t.emit(Event::JobAdmitted { campaign: 0, jobs: 10, interactive: false, vt: 0.0 });
        t.emit(Event::JobAdmitted { campaign: 1, jobs: 2, interactive: true, vt: 0.5 });
        t.emit(Event::JobRejected { campaign: 2, jobs: 5, queued: 12, capacity: 12, vt: 0.6 });
        t.emit(Event::CacheHit { campaign: 3, ligand: 1, vt: 0.7 });
        t.emit(Event::NodeJoined { node: 4, vt: 0.8 });
        t.emit(Event::NodeLeft { node: 0, vt: 0.9, requeued: 3 });
        let s = text_summary(&t.snapshot());
        assert!(s.contains("2 campaigns admitted (12 jobs)"), "{s}");
        assert!(s.contains("1 rejected"), "{s}");
        assert!(s.contains("1 cache hits"), "{s}");
        assert!(s.contains("1 joins, 1 leaves (3 jobs requeued)"), "{s}");
    }

    #[test]
    fn summary_reports_cost_model_section() {
        let t = Trace::new();
        t.set_track_name(0, "K40c");
        for (obs, refit) in [(1.05f64, false), (4.2, true), (0.01, false)] {
            t.emit(Event::ModelUpdated {
                device: 0,
                class: 0,
                predicted: 1.0,
                observed: obs,
                residual: obs - 1.0,
                refit,
            });
        }
        t.emit(Event::ModelUpdated {
            device: 1,
            class: 1,
            predicted: 2.0,
            observed: 2.0,
            residual: 0.0,
            refit: false,
        });
        t.emit(Event::Counter { name: "oracle_reseed", value: 5.0 });
        let s = text_summary(&t.snapshot());
        assert!(s.contains("cost model (learned oracle): 4 observations, 5 re-seeds"), "{s}");
        assert!(s.contains("pair-sweep"), "{s}");
        assert!(s.contains("grid-interp"), "{s}");
        assert!(s.contains("K40c"), "{s}");
        // Last residual for (K40c, pair-sweep) is the final event's -0.99.
        assert!(s.contains("-0.9900"), "{s}");
        // One drift refit recorded.
        let line = s.lines().find(|l| l.contains("pair-sweep")).unwrap();
        assert!(line.contains('1'), "{line}");
    }

    #[test]
    fn empty_snapshot_summarizes_without_panicking() {
        let s = text_summary(&Trace::new().snapshot());
        assert!(s.contains("0 events"));
    }
}
