//! # vstrace — structured run observability
//!
//! The paper's whole argument rests on *measured* per-device behaviour:
//! warm-up times, Percent splits (Eq. 1), per-device busy/idle and
//! makespan (Tables 6–9). This crate is the instrumentation spine that
//! makes one run visible end to end:
//!
//! - a typed [`event::Event`] model (`BatchScored`, `DeviceBusy/Idle`,
//!   `WarmupSample`, `PartitionDecision`, `GenerationDone`, `JobMigrated`,
//!   `FaultInjected`, plus spans and counters);
//! - per-thread **lock-free ring buffers** ([`ring`]) behind a cheap-clone
//!   [`Trace`] handle — a disabled handle ([`Trace::disabled`]) compiles
//!   every call site down to an `Option` check, so instrumented hot paths
//!   cost nothing when tracing is off;
//! - exporters: [`export::chrome_trace_json`] (loadable in
//!   `chrome://tracing` / Perfetto) and [`summary::text_summary`]
//!   (per-device utilization %, makespan breakdown, batch-size histogram
//!   via `vsmath::Histogram`);
//! - a minimal validating JSON parser ([`json`]) so tests and
//!   `scripts/trace_report.sh` can parse exported traces back (the
//!   workspace's offline `serde` shim cannot).
//!
//! Events carry **virtual** (simulated-device) times in their payloads and
//! wall-clock stamps only in the [`event::Stamped`] wrapper: two runs with
//! the same seed produce identical payload streams
//! ([`sink::TraceData::payloads`]) — the determinism contract.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod event;
pub mod export;
pub mod json;
mod ring;
pub mod sink;
pub mod summary;
pub(crate) mod sync;

pub use event::{Event, Stamped};
pub use export::{chrome_trace_json, BATCH_TRACK};
pub use sink::{SpanGuard, ThreadEvents, Trace, TraceData, DEFAULT_RING_CAPACITY};
pub use summary::text_summary;
