//! Per-thread lock-free ring buffer.
//!
//! Each recording thread owns one [`Ring`]: a fixed-capacity circular
//! buffer of [`Stamped`] records with drop-oldest semantics. The writer
//! (the owning thread) is wait-free — a push is two atomic stores around a
//! plain copy. Readers (the exporter draining a live trace) never block
//! the writer: every slot carries a seqlock word, and a reader that races
//! a concurrent overwrite simply discards the torn record.
//!
//! Slot seq protocol: `2*i + 1` (odd) while generation-`i` data is being
//! written, `2*(i + 1)` (even) once it is published. A reader accepts a
//! slot only if it observes the same even value before and after copying.

use crate::event::Stamped;
use crate::sync::atomic::AtomicU64;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::Ordering;

struct Slot {
    seq: AtomicU64,
    data: UnsafeCell<MaybeUninit<Stamped>>,
}

/// Single-producer ring; any number of concurrent readers.
pub(crate) struct Ring {
    slots: Box<[Slot]>,
    /// Total records ever pushed (monotonic write cursor).
    head: AtomicU64,
}

// SAFETY: cross-thread access to `data` is mediated by the per-slot
// seqlock — readers validate `seq` before and after the copy and discard
// torn reads; `Stamped` is `Copy` with no drop glue.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    pub(crate) fn new(capacity: usize) -> Ring {
        assert!(capacity > 0, "ring capacity must be positive");
        let slots = (0..capacity)
            .map(|_| Slot { seq: AtomicU64::new(0), data: UnsafeCell::new(MaybeUninit::uninit()) })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring { slots, head: AtomicU64::new(0) }
    }

    /// Wait-free push; overwrites the oldest record when full.
    ///
    /// Must only be called from the owning thread (single producer).
    pub(crate) fn push(&self, rec: Stamped) {
        let i = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(i % self.slots.len() as u64) as usize];
        slot.seq.store(2 * i + 1, Ordering::Release);
        // SAFETY: single producer — no other writer touches this slot; the
        // odd seq warns readers off while the copy is in flight.
        unsafe { *slot.data.get() = MaybeUninit::new(rec) };
        slot.seq.store(2 * (i + 1), Ordering::Release);
        self.head.store(i + 1, Ordering::Release);
    }

    /// Number of records ever pushed (not clamped to capacity).
    pub(crate) fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Snapshot the retained records, oldest first. Records overwritten or
    /// torn mid-copy by a concurrent push are silently skipped.
    pub(crate) fn snapshot(&self) -> Vec<Stamped> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let first = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - first) as usize);
        for i in first..head {
            let slot = &self.slots[(i % cap) as usize];
            let want = 2 * (i + 1);
            if slot.seq.load(Ordering::Acquire) != want {
                continue; // being overwritten right now
            }
            // SAFETY: the even seq published generation-i data; we validate
            // it again after the copy and discard the value if it changed.
            let rec = unsafe { (*slot.data.get()).assume_init() };
            if slot.seq.load(Ordering::Acquire) == want {
                out.push(rec);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn rec(i: u64) -> Stamped {
        Stamped { mono_ns: i, thread: 0, event: Event::Counter { name: "t", value: i as f64 } }
    }

    #[test]
    fn retains_everything_under_capacity() {
        let r = Ring::new(8);
        for i in 0..5 {
            r.push(rec(i));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(snap[0].mono_ns, 0);
        assert_eq!(snap[4].mono_ns, 4);
    }

    #[test]
    fn wraparound_drops_oldest() {
        let r = Ring::new(4);
        for i in 0..11 {
            r.push(rec(i));
        }
        assert_eq!(r.pushed(), 11);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 4, "capacity bounds retention");
        let stamps: Vec<u64> = snap.iter().map(|s| s.mono_ns).collect();
        assert_eq!(stamps, vec![7, 8, 9, 10], "most recent records survive, oldest first");
    }

    #[test]
    fn capacity_one_keeps_last() {
        let r = Ring::new(1);
        for i in 0..3 {
            r.push(rec(i));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].mono_ns, 2);
    }

    #[test]
    fn concurrent_reader_never_sees_torn_garbage() {
        use std::sync::Arc;
        let r = Arc::new(Ring::new(16));
        let writer = {
            let r = r.clone();
            std::thread::spawn(move || {
                for i in 0..20_000 {
                    r.push(rec(i));
                }
            })
        };
        // Reader: every observed record must be one the writer produced.
        for _ in 0..200 {
            for s in r.snapshot() {
                match s.event {
                    Event::Counter { value, .. } => assert_eq!(value as u64, s.mono_ns),
                    other => panic!("unexpected event {other:?}"),
                }
            }
        }
        writer.join().unwrap();
        assert_eq!(r.snapshot().len(), 16);
    }
}

/// Exhaustive interleaving checks of the seqlock writer/reader protocol,
/// via the `vscheck` model checker (run with
/// `cargo test -p vstrace --features vscheck-model model_`).
///
/// Under the model every `seq`/`head` access is a scheduler choice point,
/// so these explore every writer/reader interleaving within the
/// preemption bound. Invariant: a reader never *accepts* a torn or stale
/// slot — everything `snapshot` returns is a record the writer actually
/// pushed, in order. (The non-atomic `Stamped` copy itself executes as
/// one model step; byte-level tearing is covered by vscheck's toy-seqlock
/// self-test, see DESIGN.md §9.)
#[cfg(all(test, feature = "vscheck-model"))]
mod model_tests {
    use super::*;
    use crate::event::Event;
    use std::sync::Arc;
    use vscheck::{explore, Config};

    fn rec(i: u64) -> Stamped {
        Stamped { mono_ns: i, thread: 0, event: Event::Counter { name: "t", value: i as f64 } }
    }

    /// Every snapshot taken while the writer wraps the ring contains only
    /// records the writer pushed (value == stamp), with strictly
    /// increasing stamps — torn or half-overwritten slots are discarded,
    /// never returned.
    #[test]
    fn model_reader_never_accepts_torn_or_stale_records() {
        let report = explore(Config::with_bound(2), || {
            let ring = Arc::new(Ring::new(2));
            let w = Arc::clone(&ring);
            let writer = vscheck::thread::spawn(move || {
                for i in 0..3 {
                    w.push(rec(i));
                }
            });
            let snap = ring.snapshot();
            for s in &snap {
                match s.event {
                    Event::Counter { value, .. } => {
                        assert_eq!(value as u64, s.mono_ns, "torn record accepted");
                    }
                    ref other => panic!("garbage event accepted: {other:?}"),
                }
            }
            for pair in snap.windows(2) {
                assert!(pair[0].mono_ns < pair[1].mono_ns, "snapshot order violated");
            }
            writer.join().unwrap();
        });
        report.assert_passed();
        assert!(report.complete, "bounded state space must be exhausted");
        assert!(report.schedules > 10, "instrumentation inactive? {} schedules", report.schedules);
    }

    /// After the writer finishes, a snapshot retains exactly the newest
    /// `capacity` records — no interleaving of the final head/seq stores
    /// can make a completed ring under-report.
    #[test]
    fn model_quiescent_snapshot_is_complete() {
        let report = explore(Config::with_bound(2), || {
            let ring = Arc::new(Ring::new(2));
            let w = Arc::clone(&ring);
            let writer = vscheck::thread::spawn(move || {
                for i in 0..3 {
                    w.push(rec(i));
                }
            });
            writer.join().unwrap();
            assert_eq!(ring.pushed(), 3);
            let stamps: Vec<u64> = ring.snapshot().iter().map(|s| s.mono_ns).collect();
            assert_eq!(stamps, vec![1, 2], "quiescent ring must retain the newest records");
        });
        report.assert_passed();
        assert!(report.complete);
    }
}
