//! `grid_accuracy` — the grid-ablation harness: voxel-pitch sweep of the
//! potential-grid scoring path against the exact Fused kernel.
//!
//! For each pitch the harness scores a cloud of near-surface poses with
//! both kernels and reports the absolute error (max / mean / p99) plus
//! serial poses/sec, then gates:
//!
//! 1. **Accuracy** — at the default pitch, the p99 of
//!    `|grid - fused| / (0.3·|fused| + n_lig·(0.25 + 0.75·h²))` over
//!    non-clashing poses must be ≤ 1 (the documented DESIGN §11 budget,
//!    shared with the `grid_error_bounded_by_pitch_budget` proptest).
//! 2. **Throughput** — on the 8609-atom Table 5 complex at the default
//!    pitch, Grid must deliver ≥ 3× the Fused poses/sec.
//!
//! Usage:
//!   cargo run --release -p vs-bench --bin grid_accuracy -- [OUT.json]
//!
//! Defaults to `target/BENCH_grid.json`. Exits nonzero on gate failure.

use std::process::ExitCode;
use std::time::Instant;
use vsmath::{RigidTransform, RngStream};
use vsmol::{synth, Molecule};
use vsscore::scorer::{Kernel, ScorerOptions, ScoringModel};
use vsscore::{Exec, GridOptions, PoseScratch, ScoreBatch, Scorer};

/// Pitch sweep on the 2BSM-sized complex; the default pitch is the gated
/// point and also runs on the larger complex.
const SWEEP_SPACINGS: [f64; 4] = [1.5, 1.0, 0.75, 0.5];

/// Seconds of measured scoring per throughput cell.
const MEASURE_SECS: f64 = 0.3;

/// Poses in the error cloud per complex.
const ERROR_POSES: usize = 200;

/// Throughput gate: Grid over Fused on the 8609-atom complex.
const MIN_GRID_SPEEDUP: f64 = 3.0;

/// The DESIGN §11 error budget at pitch `h` (shared with the vsscore
/// proptests): valid on non-clashing poses; scales with the ligand size
/// because each atom in contact contributes its own interpolation error.
fn grid_error_budget(exact: f64, spacing: f64, lig_atoms: usize) -> f64 {
    0.3 * exact.abs() + lig_atoms as f64 * (0.25 + 0.75 * spacing * spacing)
}

/// Random rigid poses hovering 1–5 Å off the receptor's bounding sphere —
/// the regime the metaheuristic actually explores (surface spots).
fn surface_poses(rec: &Molecule, n: usize, seed: u64) -> Vec<RigidTransform> {
    let radius = rec.positions().iter().map(|p| p.norm()).fold(0.0, f64::max);
    let mut rng = RngStream::from_seed(seed);
    (0..n)
        .map(|_| {
            RigidTransform::new(
                rng.rotation(),
                rng.unit_vector() * (radius + rng.uniform_range(2.0, 8.0)),
            )
        })
        .collect()
}

struct ErrorStats {
    max: f64,
    mean: f64,
    p99: f64,
    /// p99 of `|err| / budget` over non-clashing poses (gate metric).
    p99_budget_ratio: f64,
    clashes: usize,
}

fn error_stats(exact: &[f64], approx: &[f64], spacing: f64, lig_atoms: usize) -> ErrorStats {
    let mut errs = Vec::new();
    let mut ratios = Vec::new();
    let mut clashes = 0usize;
    for (&e, &a) in exact.iter().zip(approx) {
        if e > 0.0 {
            // Clash: the clamped grid only promises "repulsive"; agreement
            // in sign is checked, magnitude is not budgeted.
            clashes += 1;
            continue;
        }
        let err = (a - e).abs();
        errs.push(err);
        ratios.push(err / grid_error_budget(e, spacing, lig_atoms));
    }
    errs.sort_by(|x, y| x.total_cmp(y));
    ratios.sort_by(|x, y| x.total_cmp(y));
    let pick_p99 = |v: &[f64]| -> f64 {
        if v.is_empty() {
            return 0.0;
        }
        v[((v.len() - 1) as f64 * 0.99) as usize]
    };
    ErrorStats {
        max: errs.last().copied().unwrap_or(0.0),
        mean: errs.iter().sum::<f64>() / errs.len().max(1) as f64,
        p99: pick_p99(&errs),
        p99_budget_ratio: pick_p99(&ratios),
        clashes,
    }
}

fn poses_per_sec(scorer: &Scorer, poses: &[RigidTransform]) -> f64 {
    let mut scratch = PoseScratch::new();
    let mut out = vec![0.0; poses.len()];
    scorer.score_batch(ScoreBatch::Poses { poses, out: &mut out }, &mut scratch, Exec::Serial);
    let start = Instant::now();
    let mut batches = 0u64;
    loop {
        scorer.score_batch(ScoreBatch::Poses { poses, out: &mut out }, &mut scratch, Exec::Serial);
        batches += 1;
        if start.elapsed().as_secs_f64() >= MEASURE_SECS {
            break;
        }
    }
    std::hint::black_box(&out);
    (batches * poses.len() as u64) as f64 / start.elapsed().as_secs_f64()
}

fn score_all(scorer: &Scorer, poses: &[RigidTransform]) -> Vec<f64> {
    let mut scratch = PoseScratch::new();
    let mut out = vec![0.0; poses.len()];
    scorer.score_batch(ScoreBatch::Poses { poses, out: &mut out }, &mut scratch, Exec::Serial);
    out
}

fn main() -> ExitCode {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "target/BENCH_grid.json".to_string());
    let default_pitch = GridOptions::default().spacing;
    let model = ScoringModel::LennardJones;
    let mut rows = Vec::new();
    let mut failures = Vec::new();

    // (receptor atoms, ligand atoms, pitches swept on this complex)
    let complexes: [(usize, usize, &[f64]); 2] =
        [(3264, 45, &SWEEP_SPACINGS), (8609, 32, &[default_pitch])];

    for (n_rec, n_lig, spacings) in complexes {
        let rec = synth::synth_receptor("r", n_rec, 3);
        let lig = synth::synth_ligand("l", n_lig, 7);
        let fused = Scorer::new(&rec, &lig, ScorerOptions { model, kernel: Kernel::Fused });
        let cells = Scorer::new(
            &rec,
            &lig,
            ScorerOptions {
                model,
                kernel: Kernel::CellList { cutoff: GridOptions::default().cutoff },
            },
        );
        let poses = surface_poses(&rec, ERROR_POSES, 11);
        let exact = score_all(&fused, &poses);
        let fused_pps = poses_per_sec(&fused, &poses[..16.min(poses.len())]);
        let cells_pps = poses_per_sec(&cells, &poses[..16.min(poses.len())]);
        for &spacing in spacings {
            let grid =
                Scorer::new(&rec, &lig, ScorerOptions { model, kernel: Kernel::Grid { spacing } });
            let approx = score_all(&grid, &poses);
            let stats = error_stats(&exact, &approx, spacing, n_lig);
            let grid_pps = poses_per_sec(&grid, &poses[..16.min(poses.len())]);
            let speedup = grid_pps / fused_pps;
            eprintln!(
                "{n_rec}x{n_lig} h={spacing:<5}: err max {:.3} mean {:.4} p99 {:.3} \
                 (budget ratio p99 {:.3}, {} clash poses), grid {:.0} poses/s \
                 ({speedup:.2}x fused, cells {:.0})",
                stats.max,
                stats.mean,
                stats.p99,
                stats.p99_budget_ratio,
                stats.clashes,
                grid_pps,
                cells_pps
            );
            let gated = (spacing - default_pitch).abs() < 1e-12;
            if gated && stats.p99_budget_ratio > 1.0 {
                failures.push(format!(
                    "{n_rec}x{n_lig} h={spacing}: p99 budget ratio {:.3} > 1",
                    stats.p99_budget_ratio
                ));
            }
            if gated && n_rec == 8609 && speedup < MIN_GRID_SPEEDUP {
                failures.push(format!(
                    "{n_rec}x{n_lig} h={spacing}: grid only {speedup:.2}x fused (< {MIN_GRID_SPEEDUP}x)"
                ));
            }
            rows.push(format!(
                "    {{ \"receptor_atoms\": {n_rec}, \"ligand_atoms\": {n_lig}, \
                 \"spacing\": {spacing}, \"err_max\": {:.4}, \"err_mean\": {:.5}, \
                 \"err_p99\": {:.4}, \"p99_budget_ratio\": {:.4}, \"clash_poses\": {}, \
                 \"grid_poses_per_sec\": {grid_pps:.1}, \"fused_poses_per_sec\": {fused_pps:.1}, \
                 \"cells_poses_per_sec\": {cells_pps:.1}, \"grid_over_fused\": {speedup:.3} }}",
                stats.max, stats.mean, stats.p99, stats.p99_budget_ratio, stats.clashes
            ));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"grid_accuracy\",\n  \"model\": \"lj\",\n  \
         \"budget\": \"0.3*|exact| + 2.0 + 6*h^2\",\n  \"default_pitch\": {default_pitch},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    // PANICS: the harness cannot proceed without its output file; aborting is correct.
    std::fs::write(&out_path, &json).expect("write grid snapshot");
    eprintln!("wrote {out_path}");

    if failures.is_empty() {
        eprintln!("grid_accuracy: all gates passed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("grid_accuracy: GATE FAILED: {f}");
        }
        ExitCode::FAILURE
    }
}
