//! Pipelined-engine performance snapshot: device idle fraction and
//! makespan, charged lockstep vs the stage pipeline at depths {1, 2, 4},
//! on the Hertz node's GPUs under dynamic distribution, written as
//! `BENCH_pipeline.json`.
//!
//! Both modes share one [`HostCosts`] model, so the comparison isolates
//! exactly what the pipeline changes: whether host variation/selection
//! overlaps device scoring or serializes with it. Virtual times are
//! deterministic, so the snapshot doubles as a regression gate — the best
//! pipelined depth must cut the device idle fraction by at least 25%
//! relative to lockstep without regressing the makespan, and every mode
//! must land on the bit-identical best pose.
//!
//! Usage:
//!   cargo run --release -p vs-bench --bin pipeline_snapshot -- [OUT.json]
//!
//! Defaults to `BENCH_pipeline.json` in the current directory.

use metaheur::{run_exec_cfg, EngineExec, HostCosts, PipelineConfig};
use std::sync::Arc;
use vsched::{DeviceEvaluator, Strategy};
use vscreen::platform;
use vsmol::Dataset;
use vsscore::{Kernel, ScorerOptions};
use vstrace::Trace;

const SPOTS: usize = 32;
const SEED: u64 = 2016;

struct ModeStats {
    label: String,
    makespan_s: f64,
    idle_frac: f64,
    best_bits: u64,
    evaluations: u64,
    batches: usize,
}

fn run_mode(screen: &vscreen::VirtualScreen, label: &str, exec: EngineExec) -> ModeStats {
    let params = metaheur::m2(0.2);
    let node = platform::hertz();
    // The paper's deployment: the host orchestrates (variation, selection,
    // batch marshalling) while the node's GPUs score, fed dynamically.
    let devices = node.gpus().to_vec();
    let strategy = Strategy::DynamicQueue { chunk: 256 };
    let trace = Trace::new();
    let mut ev =
        DeviceEvaluator::new(devices.clone(), screen.scorer(), strategy).with_trace(trace.clone());
    let cfg = PipelineConfig { costs: HostCosts::default(), ..PipelineConfig::default() };
    let run = run_exec_cfg(&params, screen.spots(), &mut ev, SEED, &[], &trace, exec, &cfg);
    let makespan = ev.makespan();

    // steal_report-style cross-check: the trace's per-device busy + idle
    // totals must stay within each device's own clock, and no clock can
    // outrun the makespan — the trace and the simulated hardware agree.
    let snap = trace.snapshot();
    let (mut busy_total, mut idle_total) = (0.0, 0.0);
    for dev in &devices {
        let busy = snap.device_busy_s(dev.id() as u32);
        let idle = snap.device_idle_s(dev.id() as u32);
        let clock = dev.clock();
        assert!(busy > 0.0, "{label}: device {} never scored", dev.id());
        assert!(
            busy + idle <= clock + 1e-9,
            "{label}: device {} trace busy {busy:.6}s + idle {idle:.6}s exceeds its clock {clock:.6}s",
            dev.id()
        );
        assert!(
            clock <= makespan + 1e-9,
            "{label}: device {} clock {clock:.6}s exceeds makespan {makespan:.6}s",
            dev.id()
        );
        eprintln!(
            "  [{label}] dev {}: busy {busy:.4}s idle {idle:.4}s clock {clock:.4}s",
            dev.id()
        );
        busy_total += busy;
        idle_total += idle;
    }
    // Idle fraction in the `vstrace::text_summary` sense: the share of
    // accounted device time spent stalled on a host release rather than
    // scoring — the cost of the per-generation barrier.
    let idle_frac = idle_total / (busy_total + idle_total);

    ModeStats {
        label: label.to_string(),
        makespan_s: makespan,
        idle_frac,
        best_bits: run.best.score.to_bits(),
        evaluations: run.evaluations,
        batches: run.batch_trace.len(),
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let screen = Arc::new(
        vscreen::VirtualScreen::builder(Dataset::TwoBsm)
            .max_spots(SPOTS)
            .seed(7)
            .scorer_options(ScorerOptions { kernel: Kernel::Fused, ..Default::default() })
            .build(),
    );
    eprintln!(
        "pipeline_snapshot: 2BSM, {} spots, M2 (scale 0.2), hertz GPUs under dynamic queue",
        screen.spots().len()
    );

    let mut stats = vec![run_mode(&screen, "lockstep", EngineExec::Lockstep)];
    for depth in [1usize, 2, 4] {
        stats.push(run_mode(
            &screen,
            &format!("pipelined:{depth}"),
            EngineExec::Pipelined { depth },
        ));
    }
    for s in &stats {
        eprintln!(
            "{:>12}: makespan {:.5}s  idle {:.1}%  ({} evals in {} batches)",
            s.label,
            s.makespan_s,
            100.0 * s.idle_frac,
            s.evaluations,
            s.batches
        );
    }

    // The pipeline must not change the search: bit-identical best pose and
    // evaluation count in every mode.
    let lock = &stats[0];
    for s in &stats[1..] {
        assert_eq!(lock.best_bits, s.best_bits, "{}: best pose moved", s.label);
        assert_eq!(lock.evaluations, s.evaluations, "{}: evaluation count moved", s.label);
    }

    // Regression gates: the best pipelined depth must cut device idle time
    // by >= 25% relative to charged lockstep, with makespan no worse.
    let best = stats[1..]
        .iter()
        .min_by(|a, b| a.idle_frac.total_cmp(&b.idle_frac))
        .expect("pipelined modes");
    let idle_drop = 1.0 - best.idle_frac / lock.idle_frac;
    eprintln!(
        "best pipelined ({}) idle {:.1}% vs lockstep {:.1}% — relative drop {:.1}%",
        best.label,
        100.0 * best.idle_frac,
        100.0 * lock.idle_frac,
        100.0 * idle_drop
    );
    assert!(
        idle_drop >= 0.25,
        "pipelining only cut device idle by {:.1}% (< 25%): {:.4} -> {:.4}",
        100.0 * idle_drop,
        lock.idle_frac,
        best.idle_frac
    );
    assert!(
        best.makespan_s <= lock.makespan_s * (1.0 + 1e-9),
        "pipelined makespan {:.6}s regressed past lockstep {:.6}s",
        best.makespan_s,
        lock.makespan_s
    );

    let mode_blocks: Vec<String> = stats
        .iter()
        .map(|s| {
            format!(
                "    {{\n      \"mode\": \"{}\",\n      \"makespan_s\": {:.6},\n      \"device_idle_frac\": {:.4},\n      \"evaluations\": {},\n      \"batches\": {}\n    }}",
                s.label, s.makespan_s, s.idle_frac, s.evaluations, s.batches
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"pipeline\",\n  \"units\": \"virtual_seconds\",\n  \"node\": \"hertz\",\n  \"dataset\": \"2BSM\",\n  \"meta\": \"M2\",\n  \"spots\": {},\n  \"idle_drop_rel\": {:.4},\n  \"modes\": [\n{}\n  ]\n}}\n",
        screen.spots().len(),
        idle_drop,
        mode_blocks.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    eprintln!("wrote {out_path}");
}
