//! Campaign-service performance snapshot: bursty multi-tenant traffic on
//! an elastic Hertz fleet plus a cold-vs-cached resubmission cell, written
//! as `BENCH_campaign.json`.
//!
//! Virtual-time makespans are deterministic, so the snapshot doubles as a
//! regression gate: interactive p99 queue latency must stay under the
//! bound, fleet utilization must stay at or above 85% under saturating
//! load, and a duplicate resubmission must be served from the results
//! cache at least 100x faster than the cold run.
//!
//! Usage:
//!   cargo run --release -p vs-bench --bin campaign_snapshot -- [OUT.json]
//!
//! Defaults to `BENCH_campaign.json` in the current directory.

use vsched::Strategy;
use vscluster::{
    bursty_traffic, Campaign, NetModel, ScalePlan, Service, ServiceConfig, SimCluster,
    TrafficConfig,
};
use vscreen::platform;

const NODES: usize = 4;
const TRAFFIC_SEED: u64 = 42;

/// Interactive p99 queue-latency bound (virtual seconds). Interactive
/// bursts ride the admission reserve and the 4:1 weighted-fair drain, so
/// even under a saturating bulk backlog they must clear the queue fast.
const INTERACTIVE_P99_BOUND_S: f64 = 0.1;

/// Utilization floor under saturating load with one join and one leave.
const UTILIZATION_FLOOR: f64 = 0.85;

/// Cache-hit resubmission must beat the cold campaign by this factor.
const CACHE_SPEEDUP_FLOOR: f64 = 100.0;

/// Saturating tenant mix: the bulk sweeps alone exceed the fleet's
/// capacity over the arrival horizon, so nodes stay busy while the
/// interactive bursts exercise the reserve + weighted-fair path.
fn traffic() -> TrafficConfig {
    TrafficConfig {
        horizon_s: 0.3,
        bulk_campaigns: 3,
        bulk_jobs: 32,
        bursts: 4,
        burst_size: 3,
        interactive_jobs: 2,
        duplicate_fraction: 0.25,
        scale: 1.0,
        ..TrafficConfig::default()
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_campaign.json".to_string());
    let cluster = SimCluster::uniform(NODES, NetModel::infiniband(), platform::hertz);

    // Scenario A: bursty traffic on an elastic fleet (one node joins
    // mid-campaign, one departs and its in-flight work is requeued).
    let mut svc = Service::new(cluster.clone(), ServiceConfig::default());
    svc.scale(ScalePlan::new().join_at(0.05, platform::hertz()).leave_at(0.18, 1));
    for c in bursty_traffic(&traffic(), TRAFFIC_SEED) {
        svc.submit(c);
    }
    let r = svc.drain();
    eprintln!(
        "bursty_elastic: makespan {:.4}s  p50 {:.4}s  p95 {:.4}s  p99 {:.4}s  \
         interactive p99 {:.4}s  util {:.1}%  hits {}  requeued {}",
        r.makespan,
        r.queue_p50_s,
        r.queue_p95_s,
        r.queue_p99_s,
        r.interactive_p99_s,
        100.0 * r.utilization,
        r.cache_hits,
        r.requeued_jobs
    );

    // Scenario B: cold campaign, then the identical submission again on
    // the warmed service — every job must come back from the cache.
    let jobs = vscluster::synthetic_library(48, &metaheur::m3(1.0), 9);
    let campaign = || Campaign::library(3264, 16, jobs.clone(), Strategy::HomogeneousSplit).seed(7);
    let mut svc = Service::new(cluster, ServiceConfig::default());
    svc.submit(campaign());
    let cold = svc.drain();
    svc.submit(campaign());
    let warm = svc.drain();
    let hit_speedup = cold.makespan / warm.makespan;
    eprintln!(
        "cache_resubmission: cold {:.5}s  warm {:.7}s  speedup {:.0}x  \
         (warm hits {} / evals {})",
        cold.makespan, warm.makespan, hit_speedup, warm.cache_hits, warm.device_evals
    );

    // Regression gates: the acceptance bars of the campaign service.
    assert!(r.completed_jobs == r.total_jobs, "lost jobs: {}/{}", r.completed_jobs, r.total_jobs);
    assert!(r.campaigns_rejected == 0, "saturation scenario must fit the queue");
    assert!(
        r.interactive_p99_s <= INTERACTIVE_P99_BOUND_S,
        "interactive p99 queue latency {:.4}s above the {INTERACTIVE_P99_BOUND_S}s bound",
        r.interactive_p99_s
    );
    assert!(
        r.utilization >= UTILIZATION_FLOOR,
        "fleet utilization {:.3} below the {UTILIZATION_FLOOR} floor",
        r.utilization
    );
    assert!(warm.device_evals == 0, "warm resubmission ran {} device evals", warm.device_evals);
    assert!(
        hit_speedup >= CACHE_SPEEDUP_FLOOR,
        "cache-hit speedup {hit_speedup:.1}x below the {CACHE_SPEEDUP_FLOOR}x floor"
    );

    let json = format!(
        "{{\n  \"bench\": \"campaign\",\n  \"units\": \"virtual_seconds\",\n  \"node\": \"hertz\",\n  \"fleet\": {NODES},\n  \"traffic_seed\": {TRAFFIC_SEED},\n  \"scenarios\": [\n    {{\n      \"scenario\": \"bursty_elastic\",\n      \"makespan_s\": {:.6},\n      \"total_jobs\": {},\n      \"completed_jobs\": {},\n      \"campaigns_admitted\": {},\n      \"campaigns_rejected\": {},\n      \"queue_p50_s\": {:.6},\n      \"queue_p95_s\": {:.6},\n      \"queue_p99_s\": {:.6},\n      \"interactive_p99_s\": {:.6},\n      \"utilization\": {:.4},\n      \"cache_hits\": {},\n      \"device_evals\": {},\n      \"node_joins\": {},\n      \"node_leaves\": {},\n      \"requeued_jobs\": {}\n    }},\n    {{\n      \"scenario\": \"cache_resubmission\",\n      \"cold_s\": {:.6},\n      \"warm_s\": {:.9},\n      \"hit_speedup\": {:.1},\n      \"warm_device_evals\": {}\n    }}\n  ]\n}}\n",
        r.makespan,
        r.total_jobs,
        r.completed_jobs,
        r.campaigns_admitted,
        r.campaigns_rejected,
        r.queue_p50_s,
        r.queue_p95_s,
        r.queue_p99_s,
        r.interactive_p99_s,
        r.utilization,
        r.cache_hits,
        r.device_evals,
        r.node_joins,
        r.node_leaves,
        r.requeued_jobs,
        cold.makespan,
        warm.makespan,
        hit_speedup,
        warm.device_evals
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    eprintln!("wrote {out_path}");
}
