//! Scoring-kernel performance snapshot: kernel → poses/sec at the paper's
//! Table 5 complex sizes, written as `BENCH_scoring.json`.
//!
//! This is the start of the perf trajectory: each PR that touches the
//! scoring hot path reruns the snapshot (`scripts/bench_snapshot.sh`) and
//! records the headline speedups in CHANGES.md, so kernel regressions are
//! visible as numbers, not vibes.
//!
//! Usage:
//!   cargo run --release -p vs-bench --bin bench_snapshot -- [OUT.json]
//!
//! Defaults to `BENCH_scoring.json` in the current directory.

use std::time::Instant;
use vsmath::{RigidTransform, RngStream};
use vsmol::synth;
use vsscore::scorer::{Kernel, ScorerOptions, ScoringModel};
use vsscore::{Exec, PoseScratch, ScoreBatch, Scorer};

/// Table 5 complexes: (receptor atoms, ligand atoms).
const COMPLEXES: [(usize, usize); 2] = [(3264, 45), (8609, 32)];

const MODELS: [(&str, ScoringModel); 2] = [
    ("lj", ScoringModel::LennardJones),
    ("full", ScoringModel::Full { dielectric: 4.0, hbond_epsilon: 1.0 }),
];

const KERNELS: [(&str, Kernel); 6] = [
    ("naive", Kernel::Naive),
    ("tiled", Kernel::Tiled),
    ("run", Kernel::Run),
    ("fused", Kernel::Fused),
    ("cells", Kernel::CellList { cutoff: 12.0 }),
    ("grid", Kernel::Grid { spacing: 0.75 }),
];

/// Seconds of measured scoring per (complex, model, kernel) cell.
const MEASURE_SECS: f64 = 0.4;

fn poses_per_sec(scorer: &Scorer, poses: &[RigidTransform]) -> f64 {
    let mut scratch = PoseScratch::new();
    let mut out = vec![0.0; poses.len()];
    // Warm-up: bind the scratch, fault pages, settle the clock.
    scorer.score_batch(ScoreBatch::Poses { poses, out: &mut out }, &mut scratch, Exec::Serial);
    let start = Instant::now();
    let mut batches = 0u64;
    loop {
        scorer.score_batch(ScoreBatch::Poses { poses, out: &mut out }, &mut scratch, Exec::Serial);
        batches += 1;
        if start.elapsed().as_secs_f64() >= MEASURE_SECS {
            break;
        }
    }
    std::hint::black_box(&out);
    (batches * poses.len() as u64) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_scoring.json".to_string());
    let mut rng = RngStream::from_seed(5);
    let poses: Vec<RigidTransform> =
        (0..16).map(|_| RigidTransform::new(rng.rotation(), rng.in_ball(30.0))).collect();

    let mut complex_blocks = Vec::new();
    let mut speedup_line = String::new();
    for (n_rec, n_lig) in COMPLEXES {
        let rec = synth::synth_receptor("r", n_rec, 3);
        let lig = synth::synth_ligand("l", n_lig, 7);
        let mut model_blocks = Vec::new();
        for (mlabel, model) in MODELS {
            let mut cells = Vec::new();
            let mut tiled_pps = 0.0;
            let mut fused_pps = 0.0;
            let mut grid_pps = 0.0;
            for (klabel, kernel) in KERNELS {
                let scorer = Scorer::new(&rec, &lig, ScorerOptions { model, kernel });
                let pps = poses_per_sec(&scorer, &poses);
                eprintln!("{n_rec}x{n_lig} {mlabel:>4} {klabel:>5}: {pps:>10.1} poses/s");
                if klabel == "tiled" {
                    tiled_pps = pps;
                }
                if klabel == "fused" {
                    fused_pps = pps;
                }
                if klabel == "grid" {
                    grid_pps = pps;
                }
                cells.push(format!("\"{klabel}\": {pps:.1}"));
            }
            let fused_over_tiled = fused_pps / tiled_pps;
            let grid_over_fused = grid_pps / fused_pps;
            eprintln!(
                "{n_rec}x{n_lig} {mlabel:>4} fused/tiled: {fused_over_tiled:.2}x, \
                 grid/fused: {grid_over_fused:.2}x"
            );
            speedup_line.push_str(&format!(
                "{n_rec}x{n_lig}/{mlabel}: fused {fused_over_tiled:.2}x, grid {grid_over_fused:.2}x; "
            ));
            model_blocks.push(format!(
                "      \"{mlabel}\": {{ {}, \"fused_over_tiled\": {fused_over_tiled:.3}, \"grid_over_fused\": {grid_over_fused:.3} }}",
                cells.join(", ")
            ));
        }
        complex_blocks.push(format!(
            "    {{\n      \"receptor_atoms\": {n_rec},\n      \"ligand_atoms\": {n_lig},\n{}\n    }}",
            model_blocks.join(",\n")
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"scoring\",\n  \"units\": \"poses_per_sec\",\n  \"poses_per_batch\": 16,\n  \"complexes\": [\n{}\n  ]\n}}\n",
        complex_blocks.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    eprintln!("wrote {out_path}");
    eprintln!("summary: {speedup_line}");
}
