//! `dock` — command-line virtual screening.
//!
//! Docks a ligand (or a whole SDF library) against a receptor over its
//! detected surface spots, on a simulated heterogeneous node.
//!
//! ```text
//! dock --receptor rec.pdb --ligand lig.sdf \
//!      [--meta m1|m2|m3|m4] [--scale 0.2] [--spots 16] \
//!      [--node hertz|jupiter] [--strategy cpu|hom|het|dynamic|steal|oracle] \
//!      [--kernel fused|grid|cells|naive|tiled|run] \
//!      [--exec lockstep|pipelined|pipelined:4] \
//!      [--threads 8] [--seed 42] [--out pose.pdb] [--complex complex.pdb]
//! ```
//!
//! Without `--receptor`/`--ligand`, the built-in 2BSM benchmark compounds
//! are used (Table 5 atom counts).

use std::process::ExitCode;
use vscreen::prelude::*;

struct Args {
    receptor: Option<String>,
    ligand: Option<String>,
    meta: String,
    scale: f64,
    spots: usize,
    node: String,
    strategy: String,
    kernel: String,
    exec: Option<EngineExec>,
    threads: usize,
    seed: u64,
    out: Option<String>,
    complex: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        receptor: None,
        ligand: None,
        meta: "m2".into(),
        scale: 0.2,
        spots: 16,
        node: "hertz".into(),
        strategy: "het".into(),
        kernel: "fused".into(),
        exec: None,
        threads: 8,
        seed: 2016,
        out: None,
        complex: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--receptor" => args.receptor = Some(val("--receptor")?),
            "--ligand" => args.ligand = Some(val("--ligand")?),
            "--meta" => args.meta = val("--meta")?.to_lowercase(),
            "--scale" => {
                args.scale = val("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?
            }
            "--spots" => {
                args.spots = val("--spots")?.parse().map_err(|e| format!("--spots: {e}"))?
            }
            "--node" => args.node = val("--node")?.to_lowercase(),
            "--strategy" => args.strategy = val("--strategy")?.to_lowercase(),
            "--kernel" => args.kernel = val("--kernel")?.to_lowercase(),
            "--exec" => args.exec = Some(val("--exec")?.to_lowercase().parse()?),
            "--threads" => {
                args.threads = val("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => args.out = Some(val("--out")?),
            "--complex" => args.complex = Some(val("--complex")?),
            "--help" | "-h" => {
                return Err("usage: dock [--receptor rec.pdb] [--ligand lig.{pdb,sdf}] \
                            [--meta m1..m4] [--scale F] [--spots N] [--node hertz|jupiter] \
                            [--strategy cpu|hom|het|dynamic|steal|oracle] \
                            [--kernel fused|grid|cells|naive|tiled|run] \
                            [--exec lockstep|pipelined[:depth]] [--threads N] \
                            [--seed N] [--out pose.pdb] [--complex complex.pdb]"
                    .into())
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn load_molecule(path: &str, what: &str) -> Result<Molecule, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{what} {path}: {e}"))?;
    if path.ends_with(".sdf") || path.ends_with(".mol") {
        let mols = vsmol::sdf::parse(&text, what).map_err(|e| format!("{path}: {e}"))?;
        mols.into_iter().next().ok_or_else(|| format!("{path}: empty SDF"))
    } else {
        // PDB: prefer the structured parse so HETATM-only ligand files and
        // full complexes both work.
        let s = vsmol::pdb::parse_structure(&text, what).map_err(|e| format!("{path}: {e}"))?;
        let protein = s.protein();
        if what == "receptor" {
            if !protein.is_empty() {
                Ok(protein)
            } else {
                vsmol::pdb::parse(&text, what).map_err(|e| format!("{path}: {e}"))
            }
        } else {
            s.ligands().into_iter().next().filter(|m| !m.is_empty()).map(Ok).unwrap_or_else(|| {
                vsmol::pdb::parse(&text, what).map_err(|e| format!("{path}: {e}"))
            })
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dock: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    let (receptor, ligand) = match (&args.receptor, &args.ligand) {
        (Some(r), Some(l)) => (load_molecule(r, "receptor")?, load_molecule(l, "ligand")?),
        (None, None) => {
            eprintln!("dock: no input files; using the built-in 2BSM benchmark compounds");
            (Dataset::TwoBsm.receptor(), Dataset::TwoBsm.ligand())
        }
        _ => return Err("provide both --receptor and --ligand, or neither".into()),
    };

    let params = match args.meta.as_str() {
        "m1" => metaheur::m1(args.scale),
        "m2" => metaheur::m2(args.scale),
        "m3" => metaheur::m3(args.scale),
        "m4" => metaheur::m4(args.scale),
        other => return Err(format!("unknown metaheuristic {other:?} (m1..m4)")),
    };

    // Kernel selection: `fused` is the exact default; `grid` trades
    // bounded accuracy for O(ligand) evaluations, `cells` for an exact
    // 12 Å cutoff. The scheduler prices each in its own cost regime.
    let kernel = match args.kernel.as_str() {
        "fused" => vsscore::Kernel::Fused,
        "grid" => vsscore::Kernel::Grid { spacing: vsscore::GridOptions::default().spacing },
        "cells" => vsscore::Kernel::CellList { cutoff: vsscore::GridOptions::default().cutoff },
        "naive" => vsscore::Kernel::Naive,
        "tiled" => vsscore::Kernel::Tiled,
        "run" => vsscore::Kernel::Run,
        other => {
            return Err(format!("unknown kernel {other:?} (fused|grid|cells|naive|tiled|run)"))
        }
    };

    let screen = VirtualScreen::from_molecules(receptor, ligand)
        .max_spots(args.spots)
        .seed(args.seed)
        .scorer_options(vsscore::ScorerOptions { kernel, ..Default::default() })
        .build();
    eprintln!(
        "dock: receptor {} atoms, ligand {} atoms, {} spots, {} ({} evals/spot), {} kernel",
        screen.receptor().len(),
        screen.ligand().len(),
        screen.spots().len(),
        params.name,
        params.evals_per_spot(),
        args.kernel
    );

    let node = match args.node.as_str() {
        "hertz" => platform::hertz(),
        "jupiter" => platform::jupiter(),
        other => return Err(format!("unknown node {other:?} (hertz|jupiter)")),
    };
    let strategy = match args.strategy.as_str() {
        "cpu" => Strategy::CpuOnly,
        "hom" => Strategy::HomogeneousSplit,
        "het" => Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
        "dynamic" => Strategy::DynamicQueue { chunk: 512 },
        "steal" => Strategy::WorkSteal { warmup: WarmupConfig::default(), divisor: 2 },
        "oracle" => Strategy::Oracle { warmup: WarmupConfig::default(), divisor: 2 },
        other => {
            return Err(format!("unknown strategy {other:?} (cpu|hom|het|dynamic|steal|oracle)"))
        }
    };

    // `--exec` selects the engine execution mode (DESIGN.md §12): without
    // it the classic uncharged loop runs; `lockstep` charges host costs;
    // `pipelined[:depth]` overlaps variation with device scoring.
    let mut spec = RunSpec::on_node(&params, &node, strategy);
    if let Some(exec) = args.exec {
        spec = spec.exec(exec);
    }
    let outcome = screen.run(spec);

    println!(
        "best score {:.3} at spot {} ({} evaluations, {:.4} virtual s on {} / {})",
        outcome.best.score,
        outcome.best.spot_id,
        outcome.evaluations,
        outcome.virtual_time,
        node.name(),
        strategy.label()
    );
    println!("spot ranking:");
    for (rank, c) in outcome.ranked.iter().take(10).enumerate() {
        println!("  #{:<2} spot {:>3}  {:>10.3}", rank + 1, c.spot_id, c.score);
    }

    if let Some(path) = &args.out {
        std::fs::write(path, screen.pose_pdb(&outcome.best)).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("dock: best pose written to {path}");
    }
    if let Some(path) = &args.complex {
        std::fs::write(path, screen.complex_pdb(&outcome.best))
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("dock: receptor+ligand complex written to {path}");
    }
    Ok(())
}
