//! Heterogeneous-scheduler performance snapshot: static Percent split vs
//! the work-stealing node runtime on the Hertz model, healthy and with a
//! 4x mid-run straggler, written as `BENCH_sched.json`.
//!
//! Virtual-time makespans from the trace replay are deterministic, so the
//! snapshot doubles as a regression gate: the straggler gain must stay at
//! least 1.3x and the healthy overhead within 5% of the frozen split.
//!
//! Usage:
//!   cargo run --release -p vs-bench --bin sched_snapshot -- [OUT.json]
//!
//! Defaults to `BENCH_sched.json` in the current directory.

use vsched::{schedule_trace_faulty, Strategy, WarmupConfig};
use vscreen::platform;
use vstrace::Trace;

/// 2BSM pair interactions per conformation (Table 5).
const PAIRS: u64 = 45 * 3264;

/// Generations far above the GPUs' occupancy floors so the deques split
/// into many steals' worth of chunks.
const GENERATIONS: usize = 24;
const ITEMS_PER_GENERATION: u64 = 16 * 1024;

fn makespan(strategy: Strategy, faults: &[f64], onset: usize) -> f64 {
    let node = platform::hertz();
    let trace: Vec<u64> = std::iter::repeat_n(ITEMS_PER_GENERATION, GENERATIONS).collect();
    schedule_trace_faulty(
        node.cpu(),
        node.gpus(),
        &trace,
        PAIRS,
        strategy,
        faults,
        onset,
        &Trace::disabled(),
    )
    .makespan
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_sched.json".to_string());
    let percent = Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() };
    let steal = Strategy::WorkSteal { warmup: WarmupConfig::default(), divisor: 2 };
    let onset = WarmupConfig::default().iterations + 2;

    let mut scenario_blocks = Vec::new();
    let mut gains = Vec::new();
    for (label, faults, fault_onset) in
        [("healthy", [1.0, 1.0], 0), ("straggler_4x", [1.0, 4.0], onset)]
    {
        let t_percent = makespan(percent, &faults, fault_onset);
        let t_steal = makespan(steal, &faults, fault_onset);
        let gain = t_percent / t_steal;
        eprintln!("{label:>12}: percent {t_percent:.5}s  worksteal {t_steal:.5}s  gain {gain:.2}x");
        gains.push((label, gain));
        scenario_blocks.push(format!(
            "    {{\n      \"scenario\": \"{label}\",\n      \"percent_split_s\": {t_percent:.6},\n      \"work_steal_s\": {t_steal:.6},\n      \"steal_gain\": {gain:.3}\n    }}"
        ));
    }

    // Regression gate: the acceptance bars of the stealing runtime.
    let healthy = gains.iter().find(|(l, _)| *l == "healthy").unwrap().1;
    let straggler = gains.iter().find(|(l, _)| *l == "straggler_4x").unwrap().1;
    assert!(
        healthy >= 1.0 / 1.05,
        "healthy work stealing regressed past 5% of the Percent split: gain {healthy:.3}"
    );
    assert!(straggler >= 1.3, "straggler steal gain {straggler:.3} below the 1.3x acceptance bar");

    let json = format!(
        "{{\n  \"bench\": \"scheduler\",\n  \"units\": \"virtual_seconds\",\n  \"node\": \"hertz\",\n  \"generations\": {GENERATIONS},\n  \"items_per_generation\": {ITEMS_PER_GENERATION},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        scenario_blocks.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    eprintln!("wrote {out_path}");
}
