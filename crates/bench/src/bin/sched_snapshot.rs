//! Heterogeneous-scheduler performance snapshot: static Percent split vs
//! the work-stealing node runtime vs the learned cost oracle on the Hertz
//! model — healthy, with a 4x mid-run straggler, and with a drift
//! scenario (4x slowdown that later recovers) — written as
//! `BENCH_sched.json`.
//!
//! Virtual-time makespans from the trace replay are deterministic, so the
//! snapshot doubles as a regression gate: the straggler gain must stay at
//! least 1.3x, the healthy overhead within 5% of the frozen split, the
//! oracle's drift makespan strictly under the frozen Percent split with
//! less steal traffic than pure work-stealing, and a repeated oracle run
//! bit-identical (re-seeding changes schedules, never determinism).
//!
//! Usage:
//!   cargo run --release -p vs-bench --bin sched_snapshot -- [OUT.json]
//!
//! Defaults to `BENCH_sched.json` in the current directory.

use vsched::{schedule_trace_drift, Strategy, WarmupConfig};
use vscreen::platform;
use vstrace::{Event, Trace};

/// 2BSM pair interactions per conformation (Table 5).
const PAIRS: u64 = 45 * 3264;

/// A slowdown timeline: at batch index `.0`, GPU lane slowdowns `.1`.
type Phases = Vec<(usize, Vec<f64>)>;

/// Generations far above the GPUs' occupancy floors so the deques split
/// into many steals' worth of chunks.
const GENERATIONS: usize = 24;
const ITEMS_PER_GENERATION: u64 = 16 * 1024;

/// Replay one strategy through a slowdown timeline; returns the
/// virtual-time makespan and the intra-node steal count (`JobMigrated`
/// events on the device lanes).
fn run(strategy: Strategy, phases: &[(usize, Vec<f64>)]) -> (f64, usize) {
    let node = platform::hertz();
    let trace: Vec<u64> = std::iter::repeat_n(ITEMS_PER_GENERATION, GENERATIONS).collect();
    let events = Trace::new();
    let makespan = schedule_trace_drift(
        node.cpu(),
        node.gpus(),
        &trace,
        PAIRS,
        strategy,
        phases,
        &events,
        None,
    )
    .makespan;
    let steals = events
        .snapshot()
        .payloads()
        .into_iter()
        .filter(|e| matches!(e, Event::JobMigrated { .. }))
        .count();
    (makespan, steals)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_sched.json".to_string());
    let percent = Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() };
    let steal = Strategy::WorkSteal { warmup: WarmupConfig::default(), divisor: 2 };
    let oracle = Strategy::Oracle { warmup: WarmupConfig::default(), divisor: 2 };
    let onset = WarmupConfig::default().iterations + 2;

    // Slowdown timelines, applied to the GPU lanes [K40c, GTX 580]:
    // healthy never degrades, the straggler stays degraded to the end, and
    // the drift scenario recovers 8 generations after onset — the case a
    // frozen split can never re-price but the online oracle re-fits twice.
    let scenarios: [(&str, Phases); 3] = [
        ("healthy", vec![]),
        ("straggler_4x", vec![(onset, vec![1.0, 4.0])]),
        ("drift_4x_recover", vec![(onset, vec![1.0, 4.0]), (onset + 8, vec![1.0, 1.0])]),
    ];

    let mut scenario_blocks = Vec::new();
    let mut table = Vec::new();
    for (label, phases) in &scenarios {
        let (t_percent, _) = run(percent, phases);
        let (t_steal, steal_steals) = run(steal, phases);
        let (t_oracle, oracle_steals) = run(oracle, phases);
        let gain = t_percent / t_steal;
        let oracle_gain = t_percent / t_oracle;
        eprintln!(
            "{label:>16}: percent {t_percent:.5}s  worksteal {t_steal:.5}s ({steal_steals} steals)  \
             oracle {t_oracle:.5}s ({oracle_steals} steals)"
        );
        table.push((*label, gain, oracle_gain, t_oracle, oracle_steals, steal_steals));
        scenario_blocks.push(format!(
            "    {{\n      \"scenario\": \"{label}\",\n      \"percent_split_s\": {t_percent:.6},\n      \"work_steal_s\": {t_steal:.6},\n      \"oracle_s\": {t_oracle:.6},\n      \"steal_gain\": {gain:.3},\n      \"oracle_gain\": {oracle_gain:.3},\n      \"work_steal_migrations\": {steal_steals},\n      \"oracle_migrations\": {oracle_steals}\n    }}"
        ));
    }

    // Regression gates: the acceptance bars of the stealing runtime and
    // the learned oracle.
    let find = |l: &str| table.iter().find(|(label, ..)| *label == l).unwrap();
    let &(_, healthy_gain, healthy_oracle_gain, ..) = find("healthy");
    let &(_, straggler_gain, ..) = find("straggler_4x");
    let &(_, _, drift_oracle_gain, t_drift_oracle, drift_oracle_steals, drift_steal_steals) =
        find("drift_4x_recover");
    assert!(
        healthy_gain >= 1.0 / 1.05,
        "healthy work stealing regressed past 5% of the Percent split: gain {healthy_gain:.3}"
    );
    assert!(
        straggler_gain >= 1.3,
        "straggler steal gain {straggler_gain:.3} below the 1.3x acceptance bar"
    );
    assert!(
        healthy_oracle_gain >= 1.0 / 1.05,
        "healthy oracle regressed past 5% of the Percent split: gain {healthy_oracle_gain:.3}"
    );
    assert!(
        drift_oracle_gain > 1.0,
        "oracle must strictly beat the frozen Percent split under drift: gain {drift_oracle_gain:.3}"
    );
    assert!(
        drift_oracle_steals < drift_steal_steals,
        "oracle re-seeding must cut steal traffic under drift: {drift_oracle_steals} vs {drift_steal_steals}"
    );
    let (_, drift_phases) = &scenarios[2];
    let (t_again, steals_again) = run(oracle, drift_phases);
    assert!(
        t_again.to_bits() == t_drift_oracle.to_bits() && steals_again == drift_oracle_steals,
        "oracle drift replay must be bit-identical across runs"
    );

    let json = format!(
        "{{\n  \"bench\": \"scheduler\",\n  \"units\": \"virtual_seconds\",\n  \"node\": \"hertz\",\n  \"generations\": {GENERATIONS},\n  \"items_per_generation\": {ITEMS_PER_GENERATION},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        scenario_blocks.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    eprintln!("wrote {out_path}");
}
