//! Regenerate every table and figure of the paper's evaluation.
//!
//! Usage:
//!   cargo run --release -p vs-bench --bin tables -- all
//!   cargo run --release -p vs-bench --bin tables -- table6 table8
//!   cargo run --release -p vs-bench --bin tables -- figure1 eq1
//!   cargo run --release -p vs-bench --bin tables -- all --scale quick
//!
//! Tables 6–9 report virtual times from the gpusim cost model; the shape
//! (who wins, by roughly what factor) reproduces the paper — see
//! EXPERIMENTS.md for the paper-vs-measured record.

use vsched::{percent_factors, warmup_times};
use vscreen::experiment::{hertz_table, jupiter_table, render_table, ExperimentScale};
use vscreen::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ExperimentScale::Full;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().map(String::as_str).unwrap_or("full");
                scale = match v {
                    "quick" => ExperimentScale::Quick,
                    "full" => ExperimentScale::Full,
                    other => ExperimentScale::Custom(
                        other.parse().expect("--scale takes quick|full|<factor>"),
                    ),
                };
            }
            t => targets.push(t.to_string()),
        }
    }
    if targets.is_empty() || targets.iter().any(|t| t == "all") {
        targets = (1..=9).map(|i| format!("table{i}")).collect();
        targets.push("figure1".into());
        targets.push("eq1".into());
        targets.push("energy".into());
        targets.push("ablation".into());
        targets.push("scaling".into());
        targets.push("timeline".into());
    }

    for t in &targets {
        match t.as_str() {
            "table1" => println!("{}", vs_bench::render_table1()),
            "table2" => println!("{}", vs_bench::render_table2()),
            "table3" => println!("{}", vs_bench::render_table3()),
            "table4" => println!("{}", vs_bench::render_table4()),
            "table5" => println!("{}", vs_bench::render_table5()),
            "table6" => {
                println!("Table 6:");
                println!("{}", render_table(&jupiter_table(Dataset::TwoBsm, scale)));
            }
            "table7" => {
                println!("Table 7:");
                println!("{}", render_table(&jupiter_table(Dataset::TwoBxg, scale)));
            }
            "table8" => {
                println!("Table 8:");
                println!("{}", render_table(&hertz_table(Dataset::TwoBsm, scale)));
            }
            "table9" => {
                println!("Table 9:");
                println!("{}", render_table(&hertz_table(Dataset::TwoBxg, scale)));
            }
            "figure1" => figure1(),
            "eq1" => eq1(),
            "energy" => energy(),
            "ablation" => ablation(),
            "distribution" => distribution(),
            "quality" => quality(),
            "cooperative" => cooperative(),
            "scaling" => scaling(),
            "timeline" => timeline(),
            "json" => {
                let report = vscreen::report::full_report(scale);
                let path = std::path::Path::new("reproduction_report.json");
                std::fs::write(path, vscreen::report::to_json(&report)).expect("write report");
                println!("machine-readable report written to {}", path.display());
            }
            other => eprintln!(
                "unknown target {other:?} (use table1..table9, figure1, eq1, energy, ablation, distribution, all)"
            ),
        }
    }
}

/// Figure 1 analog: dock the 2BSM ligand and emit the bound pose as PDB.
fn figure1() {
    println!("Figure 1: receptor-ligand binding (best docked pose, PDB format)");
    let screen = VirtualScreen::builder(Dataset::TwoBsm).max_spots(6).seed(1).build();
    let params = metaheur::m2(0.1);
    let out = screen.run(RunSpec::cpu(&params, 8));
    println!(
        "best pose: score {:.2} at spot {} ({} evaluations)",
        out.best.score, out.best.spot_id, out.evaluations
    );
    let pdb = screen.pose_pdb(&out.best);
    let path = std::path::Path::new("figure1_pose.pdb");
    std::fs::write(path, &pdb).expect("write pose");
    let complex_path = std::path::Path::new("figure1_complex.pdb");
    std::fs::write(complex_path, screen.complex_pdb(&out.best)).expect("write complex");
    println!(
        "pose written to {} ({} atoms); full receptor+ligand complex to {}",
        path.display(),
        screen.ligand().len(),
        complex_path.display()
    );
    for line in pdb.lines().take(5) {
        println!("  {line}");
    }
    println!();
}

/// Energy-to-solution experiment (paper §1 energy discussion, Table 1
/// perf/watt row).
fn energy() {
    use vscreen::ablation::{energy_table, render_energy_table};
    for d in Dataset::ALL {
        let rows = energy_table(d);
        println!("{}", render_energy_table(d, &rows));
    }
}

/// Ablations: warm-up length and dynamic-queue chunk size (DESIGN.md §6).
fn ablation() {
    use vscreen::ablation::{chunk_sweep, warmup_sweep};
    println!("Ablation: warm-up length (Hertz, M1, 2BSM; gain = hom/het makespan)");
    println!("{:>12} {:>14} {:>8}", "iterations", "het time (s)", "gain");
    for p in warmup_sweep(Dataset::TwoBsm, &[1, 2, 5, 8, 10, 16, 25, 33]) {
        println!("{:>12} {:>14.4} {:>8.3}", p.iterations, p.het_makespan, p.gain);
    }
    println!("\nAblation: dynamic-queue chunk size (Hertz, M1, 2BSM)");
    println!("{:>8} {:>14} {:>10}", "chunk", "makespan (s)", "vs het");
    for p in chunk_sweep(Dataset::TwoBsm, &[8, 32, 128, 512, 1024, 2048]) {
        println!("{:>8} {:>14.4} {:>10.3}", p.chunk, p.makespan, p.vs_heterogeneous);
    }
    println!();
}

/// Execution timelines: why the heterogeneous algorithm wins on Hertz —
/// the homogeneous split leaves the K40c idle while the GTX 580 finishes.
fn timeline() {
    use vsched::schedule_trace_timeline;
    let node = platform::hertz();
    let n_spots = vscreen::experiment::spot_count(Dataset::TwoBsm);
    let pairs = (Dataset::TwoBsm.ligand_atoms() * Dataset::TwoBsm.receptor_atoms()) as u64;
    let trace = vscreen::trace::synthetic_trace(&metaheur::m1(1.0), n_spots);
    for strat in [
        Strategy::HomogeneousSplit,
        Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
    ] {
        let (report, tl) = schedule_trace_timeline(node.cpu(), node.gpus(), &trace, pairs, strat);
        println!("{} (makespan {:.4}s):", report.strategy_label, report.makespan);
        print!("{}", tl.render(64));
        println!();
    }
}

/// GPU-count scaling sweep (§5 scalability claim).
fn scaling() {
    use vscreen::scaling::{gpu_scaling, render_scaling};
    for d in Dataset::ALL {
        println!("{}", render_scaling(d, &gpu_scaling(d, &metaheur::m1(1.0))));
    }
}

/// Solution-quality comparison across algorithm families (real scoring).
fn quality() {
    use vscreen::quality::{quality_comparison, render_quality};
    let rows = quality_comparison(Dataset::TwoBsm, 6, 0.15, 8, 2016);
    println!("{}", render_quality(Dataset::TwoBsm, &rows));
}

/// Cooperative vs independent job scheduling at equal budget (abstract: "a
/// cooperative scheduling of jobs optimizes the quality of the solution").
fn cooperative() {
    use vsched::cooperative::cooperative_search;
    let screen = VirtualScreen::builder(Dataset::TwoBsm).max_spots(4).seed(3).build();
    let spots = screen.spots().to_vec();
    let scorer = screen.scorer();
    let params = metaheur::m1(0.1);
    let spec = vsched::EvaluatorSpec::PooledCpu { threads: 8 };
    let coop = cooperative_search(&params, &spots, || spec.build(scorer.clone()), 3, 2, 41);
    let indep = cooperative_search(&params, &spots, || spec.build(scorer.clone()), 6, 1, 41);
    println!("Cooperative vs independent jobs (equal budget of {} evaluations):", coop.evaluations);
    println!("  3 jobs x 2 epochs, incumbent sharing: best {:.2}", coop.best.score);
    println!("  6 jobs x 1 epoch, fully independent:  best {:.2}", indep.best.score);
    println!("  epoch history (cooperative): {:?}", coop.epoch_history);
    println!();
}

/// Score distribution over the protein surface (BINDSURF's spot-discovery
/// analysis, §2.1).
fn distribution() {
    println!("Score distribution over the 2BSM surface (best score per spot)");
    let screen = VirtualScreen::builder(Dataset::TwoBsm).max_spots(24).seed(3).build();
    let params = metaheur::m1(0.1);
    let out = screen.run(RunSpec::cpu(&params, 8));
    let h = out.score_histogram(8).expect("scored spots");
    print!("{}", h.render(40));
    println!();
}

/// Equation 1 demo: the warm-up phase and Percent factors on Hertz.
fn eq1() {
    println!("Equation 1: Percent = t_actualGPU / t_slowestGPU (warm-up on Hertz)");
    let node = platform::hertz();
    let pairs = (Dataset::TwoBsm.ligand_atoms() * Dataset::TwoBsm.receptor_atoms()) as u64;
    let times =
        warmup_times(node.gpus(), gpusim::WorkProfile::pairs(pairs), WarmupConfig::default());
    for (i, (t, p)) in times.iter().zip(percent_factors(&times)).enumerate() {
        println!("  GPU {i} {:<18} warm-up {:.5}s  Percent = {:.3}", node.properties(i).name, t, p);
    }
    println!();
}
