//! # vs-bench — benchmark and reproduction harness
//!
//! Two halves:
//!
//! - the `tables` binary (`src/bin/tables.rs`) regenerates every table and
//!   figure of the paper's evaluation: `cargo run -p vs-bench --release
//!   --bin tables -- all`;
//! - the Criterion benches (`benches/`) measure the *real* wall-time
//!   behaviour of the Rust kernels — scoring (naive vs tiled vs
//!   grid-cutoff, receptor-size scaling, thread scaling), the metaheuristic
//!   engine, the schedulers, and the device cost model — validating the
//!   micro-level claims (tiling helps; bigger receptors amortize overhead;
//!   scheduling cost is negligible next to scoring).
//!
//! This library half hosts the table renderers for Tables 1–5 (static
//! hardware/parameter/dataset tables) shared by the binary and tests.
#![forbid(unsafe_code)]

use gpusim::{catalog, DeviceSpec, GpuGeneration};
use std::fmt::Write;
use vsmol::Dataset;

/// Table 1: CUDA summary by generation.
pub fn render_table1() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 1: CUDA summary by generation");
    let _ =
        writeln!(s, "{:<46} {:>8} {:>8} {:>8} {:>8}", "", "Tesla", "Fermi", "Kepler", "Maxwell");
    let infos: Vec<_> = GpuGeneration::ALL.iter().map(|g| g.info()).collect();
    let row = |label: &str, vals: Vec<String>| -> String {
        format!("{:<46} {:>8} {:>8} {:>8} {:>8}\n", label, vals[0], vals[1], vals[2], vals[3])
    };
    s.push_str(&row("Starting year", infos.iter().map(|i| i.starting_year.to_string()).collect()));
    s.push_str(&row(
        "Multiprocessors per die (up to)",
        infos.iter().map(|i| i.max_multiprocessors.to_string()).collect(),
    ));
    s.push_str(&row(
        "Cores per multiprocessor",
        infos.iter().map(|i| i.cores_per_multiprocessor.to_string()).collect(),
    ));
    s.push_str(&row(
        "Total number of cores (up to)",
        GpuGeneration::ALL.iter().map(|g| g.max_total_cores().to_string()).collect(),
    ));
    s.push_str(&row(
        "Shared memory size (max KB)",
        infos.iter().map(|i| i.max_shared_memory_kb.to_string()).collect(),
    ));
    s.push_str(&row(
        "CUDA Compute Capabilities",
        infos.iter().map(|i| format!("{}.x", i.ccc_major)).collect(),
    ));
    s.push_str(&row(
        "Peak single-precision GFLOPS",
        infos.iter().map(|i| i.peak_sp_gflops.to_string()).collect(),
    ));
    s.push_str(&row(
        "Performance per watt (normalized)",
        infos.iter().map(|i| i.perf_per_watt.to_string()).collect(),
    ));
    s
}

fn render_device_block(s: &mut String, d: &DeviceSpec) {
    let _ = writeln!(
        s,
        "  {:<22} year {}  lanes {:>5} @ {:>6.0} MHz  mem {:>6} MB @ {:>6.1} GB/s  CCC {}",
        d.name,
        d.year,
        d.lanes(),
        d.clock_mhz,
        d.memory_mb,
        d.memory_bandwidth_gbs,
        d.ccc_string()
    );
}

/// Table 2: the Jupiter system.
pub fn render_table2() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 2: Hardware resources on Jupiter");
    render_device_block(&mut s, &catalog::xeon_e5_2620_dual());
    for _ in 0..4 {
        render_device_block(&mut s, &catalog::geforce_gtx_590());
    }
    for _ in 0..2 {
        render_device_block(&mut s, &catalog::tesla_c2075());
    }
    s
}

/// Table 3: the Hertz system.
pub fn render_table3() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 3: Hardware resources on Hertz");
    render_device_block(&mut s, &catalog::xeon_e3_1220());
    render_device_block(&mut s, &catalog::tesla_k40c());
    render_device_block(&mut s, &catalog::geforce_gtx_580());
    s
}

/// Table 4: algorithm parameters for the four metaheuristics.
pub fn render_table4() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 4: Algorithm parameters for the four metaheuristics");
    let _ = writeln!(
        s,
        "{:<6} {:>18} {:>14} {:>14} {:>16}",
        "Meta", "Initial pop (S)", "% selected", "% improved", "evals/spot(full)"
    );
    for p in metaheur::paper_suite(1.0) {
        let sel = match p.select {
            metaheur::SelectStrategy::TruncationBest { fraction } => {
                if p.single_pass {
                    "n/a".to_string()
                } else {
                    format!("{:.0}%", fraction * 100.0)
                }
            }
            metaheur::SelectStrategy::Tournament { k } => format!("tourn-{k}"),
        };
        let _ = writeln!(
            s,
            "{:<6} {:>15}*spots {:>14} {:>13.0}% {:>16}",
            p.name,
            p.population_per_spot,
            sel,
            p.improve_fraction * 100.0,
            p.evals_per_spot()
        );
    }
    s
}

/// Table 5: atom counts of the benchmark compounds.
pub fn render_table5() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 5: Number of atoms of the benchmark compounds");
    let _ = writeln!(s, "{:<18} {:>8}", "Compound", "Atoms");
    for d in Dataset::ALL {
        let _ = writeln!(s, "{:<18} {:>8}", format!("{} Receptor", d.pdb_id()), d.receptor_atoms());
        let _ = writeln!(s, "{:<18} {:>8}", format!("{} Ligand", d.pdb_id()), d.ligand_atoms());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_generations() {
        let t = render_table1();
        for g in ["Tesla", "Fermi", "Kepler", "Maxwell", "2880", "672"] {
            assert!(t.contains(g), "missing {g}:\n{t}");
        }
    }

    #[test]
    fn table2_lists_jupiter_hardware() {
        let t = render_table2();
        assert!(t.contains("Xeon E5-2620"));
        assert_eq!(t.matches("GeForce GTX 590").count(), 4);
        assert_eq!(t.matches("Tesla C2075").count(), 2);
    }

    #[test]
    fn table3_lists_hertz_hardware() {
        let t = render_table3();
        assert!(t.contains("Xeon E3-1220"));
        assert!(t.contains("Tesla K40c"));
        assert!(t.contains("GeForce GTX 580"));
    }

    #[test]
    fn table4_has_paper_populations() {
        let t = render_table4();
        assert!(t.contains("M1"));
        assert!(t.contains("M4"));
        assert!(t.contains("1024"));
        assert!(t.contains("64"));
        assert!(t.contains("20%"));
    }

    #[test]
    fn table5_matches_paper_counts() {
        let t = render_table5();
        for v in ["3264", "45", "8609", "32"] {
            assert!(t.contains(v), "missing {v}");
        }
    }
}
