//! Wall-time benches of the metaheuristic engine itself (Algorithm 1
//! overhead, excluding scoring): selection, crossover, local-search
//! bookkeeping and population maintenance. The paper assigns "the most
//! costly parts to the GPUs" while the CPU runs this engine — these
//! benches confirm the engine side is cheap relative to scoring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vsmath::Vec3;
use vsmol::Spot;

fn spots(n: usize) -> Vec<Spot> {
    (0..n)
        .map(|i| Spot {
            id: i,
            center: Vec3::new(12.0 * i as f64, 0.0, 0.0),
            normal: Vec3::Z,
            radius: 5.0,
            anchor_atom: 0,
        })
        .collect()
}

fn engine_on_synthetic_landscape(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for n_spots in [4usize, 16, 64] {
        let sp = spots(n_spots);
        let optima: Vec<Vec3> = sp.iter().map(|s| s.center).collect();
        group.bench_with_input(BenchmarkId::new("m1_scale_0.1", n_spots), &n_spots, |b, _| {
            b.iter(|| {
                let mut ev = metaheur::SyntheticEvaluator::new(optima.clone());
                black_box(metaheur::run(&metaheur::m1(0.1), &sp, &mut ev, 42))
            })
        });
    }
    group.finish();
}

fn suite_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("suite_engine_overhead");
    group.sample_size(10);
    let sp = spots(8);
    let optima: Vec<Vec3> = sp.iter().map(|s| s.center).collect();
    for params in metaheur::paper_suite(0.05) {
        group.bench_function(&params.name, |b| {
            b.iter(|| {
                let mut ev = metaheur::SyntheticEvaluator::new(optima.clone());
                black_box(metaheur::run(&params, &sp, &mut ev, 7))
            })
        });
    }
    group.finish();
}

fn trace_generation(c: &mut Criterion) {
    // The analytic trace is the experiment harness's inner loop.
    let mut group = c.benchmark_group("synthetic_trace");
    group.sample_size(30);
    for params in metaheur::paper_suite(1.0) {
        group.bench_function(&params.name, |b| {
            b.iter(|| black_box(vscreen::trace::synthetic_trace(&params, 128)))
        });
    }
    group.finish();
}

fn extension_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("extension_engines");
    group.sample_size(10);
    let sp = spots(8);
    let optima: Vec<Vec3> = sp.iter().map(|s| s.center).collect();
    group.bench_function("pso_24x20", |b| {
        let params =
            metaheur::PsoParams { swarm_per_spot: 24, iterations: 20, ..Default::default() };
        b.iter(|| {
            let mut ev = metaheur::SyntheticEvaluator::new(optima.clone());
            black_box(metaheur::run_pso(&params, &sp, &mut ev, 3))
        })
    });
    group.bench_function("tabu_30x8", |b| {
        let params = metaheur::TabuParams { iterations: 30, neighbors: 8, ..Default::default() };
        b.iter(|| {
            let mut ev = metaheur::SyntheticEvaluator::new(optima.clone());
            black_box(metaheur::run_tabu(&params, &sp, &mut ev, 3))
        })
    });
    group.bench_function("memetic_2epochs", |b| {
        let params = metaheur::MemeticParams {
            name: "bench".into(),
            ga: metaheur::m1(0.1),
            tabu: metaheur::TabuParams { iterations: 10, neighbors: 8, ..Default::default() },
            epochs: 2,
        };
        b.iter(|| {
            let mut ev = metaheur::SyntheticEvaluator::new(optima.clone());
            black_box(metaheur::run_memetic(&params, &sp, &mut ev, 3))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    engine_on_synthetic_landscape,
    suite_comparison,
    trace_generation,
    extension_engines
);
criterion_main!(benches);
