//! Poses/sec for the zero-allocation batch pipeline vs the old per-batch
//! style, across batch sizes and the paper's Table 5 complex sizes.
//!
//! Two axes of host-side overhead were removed:
//!
//! - *per-pose allocation*: the old `score` path built a fresh ligand
//!   frame (5 Vecs) and scratch per pose; `score_batch` reuses one
//!   [`PoseScratch`] across the whole batch;
//! - *per-batch thread spawning*: the old parallel path spawned and joined
//!   OS threads on every batch; [`CpuPool`] keeps a persistent worker team
//!   parked on a condvar.
//!
//! The `spawn_per_batch` baselines below reconstruct the old behavior from
//! public APIs (per-pose `score` = fresh scratch each call, plus
//! `std::thread::scope` per batch with the same contiguous chunking), so
//! the comparison isolates exactly the overhead the pipeline eliminates.
//! Small batches are where it matters: spawn/join cost is constant per
//! batch while kernel work shrinks with the batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vsmath::{RigidTransform, RngStream};
use vsmol::synth;
use vsscore::{CpuPool, Exec, PoseScratch, ScoreBatch, Scorer, ScorerOptions};

const THREADS: usize = 4;

fn poses(n: usize, seed: u64) -> Vec<RigidTransform> {
    let mut rng = RngStream::from_seed(seed);
    (0..n).map(|_| RigidTransform::new(rng.rotation(), rng.in_ball(28.0))).collect()
}

/// The old multithreaded batch path: spawn a thread team, score chunks
/// pose-by-pose with a fresh scratch per pose, join.
fn spawn_per_batch(scorer: &Scorer, ps: &[RigidTransform], out: &mut [f64]) {
    let chunk = ps.len().div_ceil(THREADS);
    std::thread::scope(|s| {
        for (pchunk, ochunk) in ps.chunks(chunk).zip(out.chunks_mut(chunk)) {
            s.spawn(move || {
                for (p, o) in pchunk.iter().zip(ochunk.iter_mut()) {
                    *o = scorer.score(p);
                }
            });
        }
    });
}

fn serial_alloc_vs_scratch(c: &mut Criterion) {
    // Serial axis: per-pose allocation vs reused scratch, Table 5 sizes.
    let mut group = c.benchmark_group("serial_pipeline");
    group.sample_size(12);
    for (n_rec, n_lig) in [(3264usize, 45usize), (8609, 32)] {
        let rec = synth::synth_receptor("r", n_rec, 3);
        let lig = synth::synth_ligand("l", n_lig, 7);
        let scorer = Scorer::new(&rec, &lig, ScorerOptions::default());
        let ps = poses(256, 17);
        group.throughput(Throughput::Elements(ps.len() as u64));
        let label = format!("{n_rec}x{n_lig}");
        group.bench_function(BenchmarkId::new("alloc_per_pose", &label), |b| {
            b.iter(|| black_box(ps.iter().map(|p| scorer.score(p)).collect::<Vec<f64>>()))
        });
        let mut scratch = PoseScratch::new();
        let mut out = vec![0.0; ps.len()];
        group.bench_function(BenchmarkId::new("scratch_reuse", &label), |b| {
            b.iter(|| {
                scorer.score_batch(
                    ScoreBatch::Poses { poses: &ps, out: &mut out },
                    &mut scratch,
                    Exec::Serial,
                );
                black_box(out[0])
            })
        });
    }
    group.finish();
}

fn pool_vs_spawn(c: &mut Criterion) {
    // Parallel axis: persistent pool vs spawn-per-batch, across batch
    // sizes. The small receptor makes per-batch overhead visible; the
    // Table 5 complexes show the effect shrinking as kernel work grows.
    let mut group = c.benchmark_group("batch_pipeline");
    group.sample_size(10);
    let pool = CpuPool::new(THREADS);
    // The 100-atom receptor is the overhead-dominated regime (per-batch
    // spawn cost rivals kernel time); the other complexes are Table 5.
    for (n_rec, n_lig) in [(100usize, 45usize), (600, 45), (3264, 45), (8609, 32)] {
        let rec = synth::synth_receptor("r", n_rec, 3);
        let lig = synth::synth_ligand("l", n_lig, 7);
        let scorer = Scorer::new(&rec, &lig, ScorerOptions::default());
        for batch in [32usize, 256, 2048] {
            let ps = poses(batch, 23);
            let mut out = vec![0.0; batch];
            group.throughput(Throughput::Elements(batch as u64));
            let label = format!("{n_rec}x{n_lig}/batch{batch}");
            group.bench_function(BenchmarkId::new("spawn_per_batch", &label), |b| {
                b.iter(|| {
                    spawn_per_batch(&scorer, &ps, &mut out);
                    black_box(out[0])
                })
            });
            group.bench_function(BenchmarkId::new("persistent_pool", &label), |b| {
                b.iter(|| {
                    pool.score_batch(&scorer, ScoreBatch::Poses { poses: &ps, out: &mut out });
                    black_box(out[0])
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, serial_alloc_vs_scratch, pool_vs_spawn);
criterion_main!(benches);
