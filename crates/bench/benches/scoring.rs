//! Real wall-time benches of the scoring kernels.
//!
//! Validates the micro-level claims behind the paper's evaluation:
//!
//! - the cache-tiled kernel (the CUDA shared-memory tiling analog) beats
//!   the naive all-pairs loop once the receptor exceeds cache;
//! - per-pair cost shrinks (or at least does not grow) with receptor size —
//!   the data-locality effect behind "this advantage is bigger the larger
//!   the number of atoms in the receptor protein" (§5);
//! - grid-cutoff scoring trades accuracy for asymptotic speed (ablation);
//! - multithreaded batch scoring (the OpenMP baseline path) scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vsmath::RngStream;
use vsmol::{synth, LjTable};
use vsscore::lj::{lj_naive, lj_tiled, Frame, PairTable};
use vsscore::run::{fused_run, lj_run, RunFrame};
use vsscore::scorer::{Kernel, ScorerOptions, ScoringModel};
use vsscore::{Exec, PoseScratch, ScoreBatch, Scorer};

fn kernels_by_receptor_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("lj_kernel");
    group.sample_size(15);
    let lig = Frame::from_molecule(&synth::synth_ligand("l", 45, 7));
    let table = PairTable::new(&LjTable::standard());
    for n_rec in [512usize, 3264, 8609, 32768] {
        let rec = Frame::from_molecule(&synth::synth_receptor("r", n_rec, 3));
        let runs = RunFrame::from_frame(&rec);
        let pairs = (45 * n_rec) as u64;
        group.throughput(Throughput::Elements(pairs));
        group.bench_with_input(BenchmarkId::new("naive", n_rec), &n_rec, |b, _| {
            b.iter(|| black_box(lj_naive(&lig, &rec, &table)))
        });
        group.bench_with_input(BenchmarkId::new("tiled", n_rec), &n_rec, |b, _| {
            b.iter(|| black_box(lj_tiled(&lig, &rec, &table)))
        });
        group.bench_with_input(BenchmarkId::new("run", n_rec), &n_rec, |b, _| {
            b.iter(|| black_box(lj_run(&lig, &runs, &table)))
        });
        group.bench_with_input(BenchmarkId::new("fused_lj", n_rec), &n_rec, |b, _| {
            b.iter(|| black_box(fused_run(&lig, &runs, &table, None, None)))
        });
    }
    group.finish();
}

/// Full kernel sweep at the paper's Table 5 complex sizes (2BSM: 3264×45,
/// 2BXG: 8609×32), LJ-only and Full models. Throughput is poses/sec —
/// the number the `BENCH_scoring.json` snapshot tracks across PRs.
fn table5_kernel_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_kernels");
    group.sample_size(10);
    for (n_rec, n_lig) in [(3264usize, 45usize), (8609, 32)] {
        let rec = synth::synth_receptor("r", n_rec, 3);
        let lig = synth::synth_ligand("l", n_lig, 7);
        let mut rng = RngStream::from_seed(5);
        let pose = vsmath::RigidTransform::new(rng.rotation(), rng.in_ball(30.0));
        for (mlabel, model) in [
            ("lj", ScoringModel::LennardJones),
            ("full", ScoringModel::Full { dielectric: 4.0, hbond_epsilon: 1.0 }),
        ] {
            for (klabel, kernel) in [
                ("naive", Kernel::Naive),
                ("tiled", Kernel::Tiled),
                ("run", Kernel::Run),
                ("fused", Kernel::Fused),
            ] {
                let scorer = Scorer::new(&rec, &lig, ScorerOptions { model, kernel });
                let mut scratch = PoseScratch::new();
                group.throughput(Throughput::Elements(1));
                group.bench_function(format!("{n_rec}x{n_lig}/{mlabel}/{klabel}"), |b| {
                    b.iter(|| black_box(scorer.score_with(&pose, &mut scratch)))
                });
            }
        }
    }
    group.finish();
}

fn cutoff_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cutoff_ablation");
    group.sample_size(15);
    let rec = synth::synth_receptor("r", 8609, 3);
    let lig = synth::synth_ligand("l", 32, 7);
    let mut rng = RngStream::from_seed(5);
    let pose = vsmath::RigidTransform::new(rng.rotation(), rng.in_ball(30.0));
    for (label, kernel) in [
        ("all_pairs_tiled", Kernel::Tiled),
        ("cells_8A", Kernel::CellList { cutoff: 8.0 }),
        ("cells_16A", Kernel::CellList { cutoff: 16.0 }),
    ] {
        let scorer =
            Scorer::new(&rec, &lig, ScorerOptions { model: ScoringModel::LennardJones, kernel });
        group.bench_function(label, |b| b.iter(|| black_box(scorer.score(&pose))));
    }
    group.finish();
}

fn parallel_batch_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("openmp_baseline_scaling");
    group.sample_size(10);
    let rec = synth::synth_receptor("r", 3264, 3);
    let lig = synth::synth_ligand("l", 45, 7);
    let scorer = Scorer::new(&rec, &lig, ScorerOptions::default());
    let mut rng = RngStream::from_seed(9);
    let poses: Vec<_> =
        (0..64).map(|_| vsmath::RigidTransform::new(rng.rotation(), rng.in_ball(30.0))).collect();
    group.throughput(Throughput::Elements(poses.len() as u64));
    let mut scratch = PoseScratch::new();
    let mut out = vec![0.0; poses.len()];
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| {
                scorer.score_batch(
                    ScoreBatch::Poses { poses: &poses, out: &mut out },
                    &mut scratch,
                    Exec::Pool(t),
                );
                black_box(out[0])
            })
        });
    }
    group.finish();
}

fn coulomb_extension(c: &mut Criterion) {
    let mut group = c.benchmark_group("scoring_model");
    group.sample_size(15);
    let rec = synth::synth_receptor("r", 3264, 3);
    let lig = synth::synth_ligand("l", 45, 7);
    let mut rng = RngStream::from_seed(11);
    let pose = vsmath::RigidTransform::new(rng.rotation(), rng.in_ball(25.0));
    for (label, model) in [
        ("lennard_jones", ScoringModel::LennardJones),
        ("lj_plus_coulomb", ScoringModel::LennardJonesCoulomb { dielectric: 4.0 }),
    ] {
        let scorer = Scorer::new(&rec, &lig, ScorerOptions { model, kernel: Kernel::Tiled });
        group.bench_function(label, |b| b.iter(|| black_box(scorer.score(&pose))));
    }
    group.finish();
}

fn grid_potential_tradeoff(c: &mut Criterion) {
    // The AutoDock-style precomputed grid: O(ligand) per pose after a
    // one-time build vs O(ligand x receptor) exact scoring.
    let mut group = c.benchmark_group("grid_potential");
    group.sample_size(20);
    let rec = synth::synth_receptor("r", 3264, 3);
    let lig = synth::synth_ligand("l", 45, 7);
    let mut rng = RngStream::from_seed(13);
    let pose = vsmath::RigidTransform::new(rng.rotation(), rng.unit_vector() * 27.0);

    let exact = Scorer::new(&rec, &lig, ScorerOptions::default());
    group.bench_function("exact_tiled_per_pose", |b| b.iter(|| black_box(exact.score(&pose))));

    let grid = vsscore::GridScorer::new(
        &rec,
        &lig,
        vsscore::GridOptions { spacing: 1.0, ..Default::default() },
    );
    group.bench_function("grid_interpolated_per_pose", |b| b.iter(|| black_box(grid.score(&pose))));
    group.bench_function("grid_build_300atom_receptor", |b| {
        let small_rec = synth::synth_receptor("r", 300, 5);
        b.iter(|| {
            black_box(vsscore::GridScorer::new(
                &small_rec,
                &lig,
                vsscore::GridOptions { spacing: 1.5, ..Default::default() },
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    kernels_by_receptor_size,
    table5_kernel_sweep,
    cutoff_ablation,
    parallel_batch_scaling,
    coulomb_extension,
    grid_potential_tradeoff
);
criterion_main!(benches);
