//! Wall-time benches of the work-stealing node runtime: the deque drain in
//! virtual time (the scheduling overhead the paper's node-level execution
//! pays per batch) and the full faulty replay under stealing vs the frozen
//! Percent split. The drain must stay negligible next to scoring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpusim::{catalog, SimDevice, WorkProfile};
use std::hint::black_box;
use std::sync::Arc;
use vsched::{
    drain_deques, proportional_split, schedule_trace_faulty, ChunkDeque, StealConfig, Strategy,
    WarmupConfig,
};
use vstrace::Trace;

const PAIRS: u64 = 45 * 3264;

fn hertz() -> (Arc<SimDevice>, Vec<Arc<SimDevice>>) {
    let cpu = Arc::new(SimDevice::new(0, catalog::xeon_e3_1220()));
    let gpus = vec![
        Arc::new(SimDevice::new(1, catalog::tesla_k40c())),
        Arc::new(SimDevice::new(2, catalog::geforce_gtx_580())),
    ];
    (cpu, gpus)
}

fn deque_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("steal_drain");
    group.sample_size(50);
    let (_, gpus) = hertz();
    let weights = [1.6, 1.0];
    let cfg = StealConfig { divisor: 2, min_chunk: 0 };
    for items in [16_384u64, 262_144] {
        group.bench_with_input(BenchmarkId::new("drain_2gpu", items), &items, |b, &n| {
            b.iter(|| {
                for g in &gpus {
                    g.reset();
                }
                let shares = proportional_split(n, &weights);
                let mut lo = 0u32;
                let deques: Vec<ChunkDeque> = shares
                    .iter()
                    .map(|&s| {
                        let d = ChunkDeque::new(lo, lo + s as u32);
                        lo += s as u32;
                        d
                    })
                    .collect();
                black_box(drain_deques(
                    &gpus,
                    &deques,
                    &cfg,
                    WorkProfile::pairs(PAIRS),
                    None,
                    &Trace::disabled(),
                ))
            })
        });
    }
    group.finish();
}

fn faulty_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("faulty_replay");
    group.sample_size(20);
    let (cpu, gpus) = hertz();
    let trace: Vec<u64> = std::iter::repeat_n(16 * 1024, 24).collect();
    let onset = WarmupConfig::default().iterations + 2;
    let strategies = [
        ("percent_frozen", Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() }),
        ("work_steal", Strategy::WorkSteal { warmup: WarmupConfig::default(), divisor: 2 }),
    ];
    for (label, strat) in strategies {
        group.bench_function(BenchmarkId::new("straggler_4x", label), |b| {
            b.iter(|| {
                black_box(schedule_trace_faulty(
                    &cpu,
                    &gpus,
                    &trace,
                    PAIRS,
                    strat,
                    &[1.0, 4.0],
                    onset,
                    &Trace::disabled(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, deque_drain, faulty_replay);
criterion_main!(benches);
