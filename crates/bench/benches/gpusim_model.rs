//! Wall-time benches of the device cost model — the experiment harness
//! evaluates it once per (batch × device), so it must be O(ns).

use criterion::{criterion_group, criterion_main, Criterion};
use gpusim::{catalog, CostModel, WorkBatch};
use std::hint::black_box;

fn cost_model_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_model");
    group.sample_size(50);
    let model = CostModel::default();
    let devices = [catalog::xeon_e5_2620_dual(), catalog::geforce_gtx_590(), catalog::tesla_k40c()];
    let batch = WorkBatch::conformations(4096, 45 * 3264);
    for d in &devices {
        group.bench_function(d.name.replace(' ', "_"), |b| {
            b.iter(|| black_box(model.execution_time(d, &batch)))
        });
    }
    group.finish();
}

fn occupancy_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("occupancy");
    group.sample_size(50);
    let k40 = catalog::tesla_k40c();
    group.bench_function("occupancy_efficiency", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for items in [1u64, 64, 512, 4096] {
                acc += gpusim::launch::occupancy_efficiency(&k40, black_box(items));
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, cost_model_eval, occupancy_eval);
criterion_main!(benches);
