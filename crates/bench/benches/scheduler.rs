//! Wall-time benches of the scheduling machinery: partitioning, warm-up,
//! trace replay under each strategy, and cluster job assignment. These
//! costs must be negligible next to scoring for the paper's design to make
//! sense — the benches quantify that.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpusim::{catalog, SimDevice};
use std::hint::black_box;
use std::sync::Arc;
use vsched::{equal_split, proportional_split, schedule_trace, Strategy, WarmupConfig};

fn partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    group.sample_size(50);
    let weights = [2.34, 1.0, 1.7, 0.9, 3.1, 1.2];
    for items in [1_000u64, 1_000_000] {
        group.bench_with_input(BenchmarkId::new("equal_6dev", items), &items, |b, &n| {
            b.iter(|| black_box(equal_split(n, 6)))
        });
        group.bench_with_input(BenchmarkId::new("proportional_6dev", items), &items, |b, &n| {
            b.iter(|| black_box(proportional_split(n, &weights)))
        });
    }
    group.finish();
}

fn trace_replay_by_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_replay");
    group.sample_size(20);
    let cpu = Arc::new(SimDevice::new(0, catalog::xeon_e3_1220()));
    let gpus = vec![
        Arc::new(SimDevice::new(1, catalog::tesla_k40c())),
        Arc::new(SimDevice::new(2, catalog::geforce_gtx_580())),
    ];
    let trace: Vec<u64> = std::iter::repeat_n(64 * 64, 120).collect();
    let pairs = (45 * 3264) as u64;
    let strategies = [
        ("cpu_only", Strategy::CpuOnly),
        ("homogeneous", Strategy::HomogeneousSplit),
        ("heterogeneous", Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() }),
        ("dynamic_q512", Strategy::DynamicQueue { chunk: 512 }),
    ];
    for (label, strat) in strategies {
        group.bench_function(label, |b| {
            b.iter(|| black_box(schedule_trace(&cpu, &gpus, &trace, pairs, strat)))
        });
    }
    group.finish();
}

fn cluster_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster");
    group.sample_size(10);
    let jobs = vscluster::synthetic_library(64, &metaheur::m3(1.0), 3);
    for nodes in [2usize, 8] {
        group.bench_with_input(BenchmarkId::new("campaign_service", nodes), &nodes, |b, &n| {
            let cluster = vscluster::SimCluster::uniform(
                n,
                vscluster::NetModel::infiniband(),
                vscreen::platform::hertz,
            );
            b.iter(|| {
                // Fresh service per iteration: the results cache would
                // otherwise turn every pass after the first into hits.
                let mut svc =
                    vscluster::Service::new(cluster.clone(), vscluster::ServiceConfig::default());
                svc.submit(vscluster::Campaign::library(
                    3264,
                    32,
                    jobs.clone(),
                    Strategy::HomogeneousSplit,
                ));
                black_box(svc.drain())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, partitioning, trace_replay_by_strategy, cluster_assignment);
criterion_main!(benches);
