//! End-to-end tests of the `dock` and `tables` binaries.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (bool, String, String) {
    let out = Command::new(bin)
        .args(args)
        .current_dir(std::env::temp_dir())
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn dock_runs_builtin_benchmark() {
    let (ok, stdout, stderr) =
        run(env!("CARGO_BIN_EXE_dock"), &["--spots", "3", "--scale", "0.03", "--meta", "m1"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("best score"), "{stdout}");
    assert!(stdout.contains("spot ranking"), "{stdout}");
    assert!(stderr.contains("2BSM"), "should announce the builtin fallback");
}

#[test]
fn dock_writes_pose_files() {
    let dir = std::env::temp_dir().join("vs_dock_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let pose = dir.join("pose.pdb");
    let complex = dir.join("complex.pdb");
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_dock"),
        &[
            "--spots",
            "2",
            "--scale",
            "0.03",
            "--meta",
            "m3",
            "--strategy",
            "hom",
            "--node",
            "jupiter",
            "--out",
            pose.to_str().unwrap(),
            "--complex",
            complex.to_str().unwrap(),
        ],
    );
    assert!(ok, "stderr: {stderr}");
    let pose_text = std::fs::read_to_string(&pose).unwrap();
    assert!(pose_text.contains("HETATM"));
    let complex_text = std::fs::read_to_string(&complex).unwrap();
    assert!(complex_text.contains("ATOM") && complex_text.contains("TER"));
    let parsed = vsmol::pdb::parse_structure(&complex_text, "c").unwrap();
    assert_eq!(parsed.protein().len(), 3264);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dock_accepts_file_inputs() {
    let dir = std::env::temp_dir().join("vs_dock_cli_inputs");
    std::fs::create_dir_all(&dir).unwrap();
    let rec_path = dir.join("rec.pdb");
    let lig_path = dir.join("lig.sdf");
    std::fs::write(&rec_path, vsmol::pdb::write(&vsmol::synth::synth_receptor("r", 400, 1)))
        .unwrap();
    std::fs::write(&lig_path, vsmol::sdf::write(&[vsmol::synth::synth_ligand("l", 10, 2)]))
        .unwrap();
    let (ok, stdout, stderr) = run(
        env!("CARGO_BIN_EXE_dock"),
        &[
            "--receptor",
            rec_path.to_str().unwrap(),
            "--ligand",
            lig_path.to_str().unwrap(),
            "--spots",
            "2",
            "--scale",
            "0.03",
            "--meta",
            "m1",
        ],
    );
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("best score"));
    assert!(stderr.contains("ligand 10 atoms"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dock_rejects_bad_flags() {
    let (ok, _, stderr) = run(env!("CARGO_BIN_EXE_dock"), &["--bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"));

    let (ok2, _, stderr2) = run(env!("CARGO_BIN_EXE_dock"), &["--meta", "m9"]);
    assert!(!ok2);
    assert!(stderr2.contains("unknown metaheuristic"));

    let (ok3, _, stderr3) = run(env!("CARGO_BIN_EXE_dock"), &["--receptor", "only-one-given.pdb"]);
    assert!(!ok3);
    assert!(stderr3.contains("both"));
}

#[test]
fn tables_emits_requested_tables() {
    let (ok, stdout, _) =
        run(env!("CARGO_BIN_EXE_tables"), &["table1", "table5", "table8", "--scale", "quick"]);
    assert!(ok);
    assert!(stdout.contains("CUDA summary"));
    assert!(stdout.contains("8609"));
    assert!(stdout.contains("Hertz"));
    for m in ["M1", "M2", "M3", "M4"] {
        assert!(stdout.contains(m), "missing {m}");
    }
}

#[test]
fn tables_eq1_reports_percent() {
    let (ok, stdout, _) = run(env!("CARGO_BIN_EXE_tables"), &["eq1"]);
    assert!(ok);
    assert!(stdout.contains("Percent = 1.000"), "{stdout}");
    assert!(stdout.contains("Tesla K40c"));
}
