//! Lennard-Jones kernels over flattened structure-of-arrays layouts.
//!
//! The kernels operate on a [`Frame`] — receptor atoms flattened into
//! coordinate and element-index arrays — so the hot loop touches dense
//! memory only. Two variants live here:
//!
//! - [`lj_naive`]: ligand-outer/receptor-inner all-pairs loop. Streams the
//!   whole receptor through cache once per ligand atom.
//! - [`lj_tiled`]: receptor-outer blocked loop; a receptor *tile* stays
//!   resident in L1/L2 while every ligand atom consumes it. This is the CPU
//!   analog of the paper's CUDA shared-memory tiling and is measurably
//!   faster for receptors that exceed cache (see `bench/benches/scoring.rs`).
//!
//! Both pay a per-pair **indexed gather** `table.at(le, rec.elem[j])` in
//! the innermost loop. The two loads depend on `rec.elem[j]`, so the
//! compiler cannot hoist them or prove them contiguous, and the loop does
//! not autovectorize — every pair serializes behind two data-dependent
//! table reads. The [`crate::run`] module removes that gather structurally
//! (permute the receptor into element runs once, hoist `(σ², 4ε)` per
//! run); these scalar kernels remain as the reference and as ablation
//! baselines.
//!
//! Distances are clamped below by [`MIN_DIST_SQ`] so overlapping atoms
//! produce a large-but-finite repulsion instead of `inf`, which keeps the
//! metaheuristics' score comparisons total.
//!
//! All scalar kernels share one summation discipline: a per-ligand-atom
//! accumulator flushed into the running total, so each kernel's order is
//! fixed and documented (the per-kernel bit-identity policy, DESIGN §7).

use vsmath::Vec3;
use vsmol::{Element, LjTable, Molecule};

/// Squared-distance clamp: pairs closer than 0.5 Å are treated as 0.5 Å.
pub const MIN_DIST_SQ: f64 = 0.25;

/// Receptor tile size for [`lj_tiled`], in atoms. 512 atoms × 32 B ≈ 16 KB,
/// matching both an L1 slice and the 16–48 KB shared-memory budget of the
/// paper's GPUs (Tables 2–3).
pub const TILE: usize = 512;

/// A molecule flattened for kernel consumption.
#[derive(Debug, Clone, Default)]
pub struct Frame {
    pub x: Vec<f64>,
    pub y: Vec<f64>,
    pub z: Vec<f64>,
    /// `Element::index()` per atom.
    pub elem: Vec<u8>,
    /// Partial charge per atom (used by the Coulomb kernel).
    pub charge: Vec<f64>,
}

impl Frame {
    pub fn from_molecule(mol: &Molecule) -> Frame {
        let n = mol.len();
        let mut f = Frame {
            x: Vec::with_capacity(n),
            y: Vec::with_capacity(n),
            z: Vec::with_capacity(n),
            elem: Vec::with_capacity(n),
            charge: Vec::with_capacity(n),
        };
        for a in mol.atoms() {
            f.x.push(a.position.x);
            f.y.push(a.position.y);
            f.z.push(a.position.z);
            f.elem.push(a.element.index() as u8);
            f.charge.push(a.charge);
        }
        f
    }

    /// Build directly from parallel arrays (used for transformed ligands).
    pub fn from_parts(positions: &[Vec3], elements: &[Element], charges: &[f64]) -> Frame {
        assert_eq!(positions.len(), elements.len());
        assert_eq!(positions.len(), charges.len());
        Frame {
            x: positions.iter().map(|p| p.x).collect(),
            y: positions.iter().map(|p| p.y).collect(),
            z: positions.iter().map(|p| p.z).collect(),
            elem: elements.iter().map(|e| e.index() as u8).collect(),
            charge: charges.to_vec(),
        }
    }

    pub fn len(&self) -> usize {
        self.x.len()
    }

    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// Flattened `(σ², 4ε)` lookup: `idx = lig_elem * Element::COUNT + rec_elem`.
#[derive(Debug, Clone)]
pub struct PairTable {
    sigma_sq: Vec<f64>,
    four_eps: Vec<f64>,
}

impl PairTable {
    pub fn new(table: &LjTable) -> PairTable {
        let n = Element::COUNT;
        let mut sigma_sq = vec![0.0; n * n];
        let mut four_eps = vec![0.0; n * n];
        for a in Element::ALL {
            for b in Element::ALL {
                let (s2, e4) = table.pair(a, b);
                sigma_sq[a.index() * n + b.index()] = s2;
                four_eps[a.index() * n + b.index()] = e4;
            }
        }
        PairTable { sigma_sq, four_eps }
    }

    #[inline]
    fn at(&self, lig_elem: u8, rec_elem: u8) -> (f64, f64) {
        let k = lig_elem as usize * Element::COUNT + rec_elem as usize;
        (self.sigma_sq[k], self.four_eps[k])
    }

    /// Public `(σ², 4ε)` lookup by element indices.
    #[inline]
    pub fn lookup(&self, lig_elem: u8, rec_elem: u8) -> (f64, f64) {
        self.at(lig_elem, rec_elem)
    }
}

/// LJ pair energy from `(σ², 4ε)` at squared distance `r_sq` (clamped).
#[inline(always)]
pub fn lj_pair(sigma_sq: f64, four_eps: f64, r_sq: f64) -> f64 {
    let r2 = if r_sq < MIN_DIST_SQ { MIN_DIST_SQ } else { r_sq };
    let q = sigma_sq / r2;
    let s6 = q * q * q;
    four_eps * (s6 * s6 - s6)
}

/// Naive all-pairs kernel: for each ligand atom, stream all receptor atoms.
pub fn lj_naive(lig: &Frame, rec: &Frame, table: &PairTable) -> f64 {
    let mut total = 0.0;
    for i in 0..lig.len() {
        let (lx, ly, lz, le) = (lig.x[i], lig.y[i], lig.z[i], lig.elem[i]);
        let mut acc = 0.0;
        for j in 0..rec.len() {
            let dx = lx - rec.x[j];
            let dy = ly - rec.y[j];
            let dz = lz - rec.z[j];
            let r_sq = dx * dx + dy * dy + dz * dz;
            let (s2, e4) = table.at(le, rec.elem[j]);
            acc += lj_pair(s2, e4, r_sq);
        }
        total += acc;
    }
    total
}

/// Tiled kernel: receptor is processed in [`TILE`]-atom blocks; each block
/// stays cache-resident while every ligand atom consumes it.
pub fn lj_tiled(lig: &Frame, rec: &Frame, table: &PairTable) -> f64 {
    let mut total = 0.0;
    let n_rec = rec.len();
    let mut start = 0;
    while start < n_rec {
        let end = (start + TILE).min(n_rec);
        for i in 0..lig.len() {
            let (lx, ly, lz, le) = (lig.x[i], lig.y[i], lig.z[i], lig.elem[i]);
            let mut acc = 0.0;
            for j in start..end {
                let dx = lx - rec.x[j];
                let dy = ly - rec.y[j];
                let dz = lz - rec.z[j];
                let r_sq = dx * dx + dy * dy + dz * dz;
                let (s2, e4) = table.at(le, rec.elem[j]);
                acc += lj_pair(s2, e4, r_sq);
            }
            total += acc;
        }
        start = end;
    }
    total
}

/// Naive kernel with a spherical cutoff: pairs beyond `cutoff` contribute
/// nothing. The reference for grid-accelerated cutoff scoring (which
/// visits pairs in grid-cell order, so agreement is within summation
/// slack, not bitwise). Shares the per-ligand-atom accumulator discipline
/// of [`lj_naive`]/[`lj_tiled`].
pub fn lj_naive_cutoff(lig: &Frame, rec: &Frame, table: &PairTable, cutoff: f64) -> f64 {
    let c2 = cutoff * cutoff;
    let mut total = 0.0;
    for i in 0..lig.len() {
        let (lx, ly, lz, le) = (lig.x[i], lig.y[i], lig.z[i], lig.elem[i]);
        let mut acc = 0.0;
        for j in 0..rec.len() {
            let dx = lx - rec.x[j];
            let dy = ly - rec.y[j];
            let dz = lz - rec.z[j];
            let r_sq = dx * dx + dy * dy + dz * dz;
            if r_sq <= c2 {
                let (s2, e4) = table.at(le, rec.elem[j]);
                acc += lj_pair(s2, e4, r_sq);
            }
        }
        total += acc;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsmath::RngStream;
    use vsmol::{synth, Atom, LjParams};

    fn frames(n_rec: usize, n_lig: usize, seed: u64) -> (Frame, Frame, PairTable) {
        let rec = synth::synth_receptor("r", n_rec, seed);
        let lig = synth::synth_ligand("l", n_lig, seed + 1);
        let table = PairTable::new(&LjTable::standard());
        (Frame::from_molecule(&lig), Frame::from_molecule(&rec), table)
    }

    #[test]
    fn single_pair_matches_reference() {
        let table = PairTable::new(&LjTable::standard());
        let lig = Frame::from_parts(&[Vec3::ZERO], &[Element::C], &[0.0]);
        let rec = Frame::from_parts(&[Vec3::new(4.0, 0.0, 0.0)], &[Element::O], &[0.0]);
        let got = lj_naive(&lig, &rec, &table);
        let want = LjParams::combine(LjParams::of(Element::C), LjParams::of(Element::O))
            .energy_at_sq(16.0);
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn tiled_matches_naive() {
        let (lig, rec, table) = frames(1500, 30, 11);
        let a = lj_naive(&lig, &rec, &table);
        let b = lj_tiled(&lig, &rec, &table);
        // Different summation order: allow tiny FP slack.
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn tiled_matches_naive_at_tile_boundaries() {
        // Receptor sizes straddling multiples of TILE.
        for n in [TILE - 1, TILE, TILE + 1, 2 * TILE, 2 * TILE + 7] {
            let (lig, rec, table) = frames(n, 10, 13);
            let a = lj_naive(&lig, &rec, &table);
            let b = lj_tiled(&lig, &rec, &table);
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "n={n}: {a} vs {b}");
        }
    }

    #[test]
    fn empty_frames_score_zero() {
        let table = PairTable::new(&LjTable::standard());
        let empty = Frame::from_parts(&[], &[], &[]);
        let one = Frame::from_parts(&[Vec3::ZERO], &[Element::C], &[0.0]);
        assert_eq!(lj_naive(&empty, &one, &table), 0.0);
        assert_eq!(lj_naive(&one, &empty, &table), 0.0);
        assert_eq!(lj_tiled(&empty, &empty, &table), 0.0);
    }

    #[test]
    fn overlapping_atoms_finite_and_repulsive() {
        let table = PairTable::new(&LjTable::standard());
        let lig = Frame::from_parts(&[Vec3::ZERO], &[Element::C], &[0.0]);
        let rec = Frame::from_parts(&[Vec3::ZERO], &[Element::C], &[0.0]);
        let e = lj_naive(&lig, &rec, &table);
        assert!(e.is_finite());
        assert!(e > 1e3, "overlap must be strongly repulsive, got {e}");
    }

    #[test]
    fn clamp_kicks_in_below_threshold() {
        let table = PairTable::new(&LjTable::standard());
        let (s2, e4) = (9.0, 1.0);
        assert_eq!(lj_pair(s2, e4, 0.0), lj_pair(s2, e4, MIN_DIST_SQ));
        assert_eq!(lj_pair(s2, e4, 0.1), lj_pair(s2, e4, MIN_DIST_SQ));
        assert_ne!(lj_pair(s2, e4, 0.3), lj_pair(s2, e4, MIN_DIST_SQ));
        let _ = table;
    }

    #[test]
    fn cutoff_inf_matches_all_pairs() {
        let (lig, rec, table) = frames(400, 12, 17);
        let a = lj_naive(&lig, &rec, &table);
        let b = lj_naive_cutoff(&lig, &rec, &table, 1e9);
        assert!((a - b).abs() < 1e-9 * a.abs().max(1.0));
    }

    #[test]
    fn cutoff_zero_scores_nothing_at_distance() {
        let table = PairTable::new(&LjTable::standard());
        let lig = Frame::from_parts(&[Vec3::ZERO], &[Element::C], &[0.0]);
        let rec = Frame::from_parts(&[Vec3::new(5.0, 0.0, 0.0)], &[Element::C], &[0.0]);
        assert_eq!(lj_naive_cutoff(&lig, &rec, &table, 1.0), 0.0);
    }

    #[test]
    fn cutoff_approximation_converges() {
        // Larger cutoffs approach the all-pairs score monotonically-ish.
        let (lig, rec, table) = frames(800, 20, 23);
        let full = lj_naive(&lig, &rec, &table);
        let e8 = lj_naive_cutoff(&lig, &rec, &table, 8.0);
        let e16 = lj_naive_cutoff(&lig, &rec, &table, 16.0);
        assert!((e16 - full).abs() < (e8 - full).abs() + 1e-9);
    }

    #[test]
    fn frame_from_molecule_roundtrip() {
        let m = vsmol::Molecule::new(
            "m",
            vec![
                Atom::with_charge(Vec3::new(1.0, 2.0, 3.0), Element::N, -0.3),
                Atom::with_charge(Vec3::new(-1.0, 0.0, 0.5), Element::C, 0.1),
            ],
        );
        let f = Frame::from_molecule(&m);
        assert_eq!(f.len(), 2);
        assert_eq!(f.x, vec![1.0, -1.0]);
        assert_eq!(f.elem, vec![Element::N.index() as u8, Element::C.index() as u8]);
        assert_eq!(f.charge, vec![-0.3, 0.1]);
    }

    #[test]
    fn score_is_rotation_invariant_for_symmetric_system() {
        // Rotating BOTH frames together must not change the score.
        let mut rng = RngStream::from_seed(31);
        let rot = rng.rotation();
        let lig_m = synth::synth_ligand("l", 8, 3);
        let rec_m = synth::synth_receptor("r", 200, 4);
        let table = PairTable::new(&LjTable::standard());
        let tf = vsmath::RigidTransform::from_rotation(rot);
        let a = lj_naive(&Frame::from_molecule(&lig_m), &Frame::from_molecule(&rec_m), &table);
        let b = lj_naive(
            &Frame::from_molecule(&lig_m.transformed(&tf)),
            &Frame::from_molecule(&rec_m.transformed(&tf)),
            &table,
        );
        assert!((a - b).abs() < 1e-6 * a.abs().max(1.0), "{a} vs {b}");
    }
}
