//! The [`Scorer`] facade: prepare a receptor/ligand pair once, then score
//! arbitrary poses cheaply, serially or in parallel batches.
//!
//! # The zero-allocation batch path
//!
//! The hot loop of every metaheuristic generation is "score this batch of
//! poses". To keep host-side overhead out of that loop (it distorts both
//! throughput and the warm-up timing the Eq. 1 split is computed from),
//! scoring is allocation-free per pose after warm-up:
//!
//! - a [`PoseScratch`] owns a *mutable ligand SoA frame*; applying a pose
//!   writes the transformed coordinates directly into the frame's
//!   `x`/`y`/`z` arrays ([`vsmath::RigidTransform::apply_all_soa`]) — no
//!   per-pose [`Frame`] construction, no `Vec<Vec3>` round-trip;
//! - [`Scorer::score_batch`] is the **single batch entry point**: it takes
//!   a [`ScoreBatch`] input (poses scored into a caller-owned output
//!   slice, or conformations scored in place) plus an [`Exec`] policy —
//!   [`Exec::Serial`] for the caller's thread, [`Exec::Pool`] for the
//!   shared *persistent* worker pool ([`crate::pool::CpuPool`]) with one
//!   reused scratch per worker thread — so the batch path allocates
//!   nothing and spawns nothing once scratch and output buffers exist.
//!
//! Every execution policy produces bit-identical scores for a fixed
//! kernel (the schedule-invariance invariant, DESIGN §7).

use crate::coulomb::{coulomb_naive, coulomb_pair};
use crate::lj::{lj_naive, lj_pair, lj_tiled, Frame, PairTable};
use crate::run::{fused_run, lj_run, RunFrame};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use vsmath::{RigidTransform, SpatialGrid, Vec3};
use vsmol::{Conformation, Element, LjTable, Molecule};

/// Which physical terms the score includes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ScoringModel {
    /// The paper's baseline: Lennard-Jones only (§3.1).
    #[default]
    LennardJones,
    /// Extension (§6 future work): LJ plus Coulomb with a
    /// distance-dependent dielectric.
    LennardJonesCoulomb { dielectric: f64 },
    /// Full extension: LJ + Coulomb + the 10–12 hydrogen-bond term
    /// ([`crate::hbond`]).
    Full { dielectric: f64, hbond_epsilon: f64 },
}

impl ScoringModel {
    /// The dielectric scale, if the model has an electrostatic term.
    pub fn dielectric(&self) -> Option<f64> {
        match *self {
            ScoringModel::LennardJones => None,
            ScoringModel::LennardJonesCoulomb { dielectric }
            | ScoringModel::Full { dielectric, .. } => Some(dielectric),
        }
    }

    /// The H-bond well depth, if the model has an H-bond term.
    pub fn hbond_epsilon(&self) -> Option<f64> {
        match *self {
            ScoringModel::Full { hbond_epsilon, .. } => Some(hbond_epsilon),
            _ => None,
        }
    }
}

/// Which kernel executes the pair loop.
///
/// Every kernel's summation order is part of its definition: a fixed
/// kernel is bit-identical across execution paths (serial, `CpuPool`,
/// `DeviceEvaluator`); different kernels agree within 1e-9 relative
/// (DESIGN §7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Kernel {
    /// All-pairs, ligand-outer loop.
    Naive,
    /// All-pairs, receptor-tile-outer loop (cache-blocking; the CUDA
    /// shared-memory tiling analog).
    Tiled,
    /// Element-run receptor layout ([`crate::run::RunFrame`]): the LJ pass
    /// hoists `(σ², 4ε)` per run (no per-pair gather); Coulomb/H-bond
    /// terms stream the permuted frame in separate passes.
    Run,
    /// Element-run layout with LJ + Coulomb + run-gated H-bond fused into
    /// a **single receptor pass** ([`crate::run::fused_run`]). Default.
    #[default]
    Fused,
    /// Exact spherical cutoff through a receptor cell list
    /// ([`vsmath::SpatialGrid`]): only the receptor atoms inside the
    /// cutoff shell are enumerated, so cost scales with shell occupancy,
    /// not receptor size. An approximation only in that pairs beyond
    /// `cutoff` Å contribute nothing.
    CellList { cutoff: f64 },
    /// Precomputed receptor potential grids
    /// ([`crate::grid_potential::GridScorer`]): trilinear interpolation at
    /// `spacing` Å pitch, `O(ligand_atoms)` per pose and independent of
    /// receptor size. Grid-resolution error applies (DESIGN §11 budget);
    /// builds are cached per (receptor, ligand element set, options).
    Grid { spacing: f64 },
}

impl Kernel {
    /// Whether this kernel scores through the element-run receptor layout.
    pub fn uses_run_layout(&self) -> bool {
        matches!(self, Kernel::Run | Kernel::Fused)
    }
}

/// Scorer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ScorerOptions {
    pub model: ScoringModel,
    pub kernel: Kernel,
}

/// Reusable per-thread scratch: a mutable ligand frame that pose
/// transforms write into directly.
///
/// The frame's `elem`/`charge` columns are (re)filled from the scorer when
/// the scratch is bound to it; the `x`/`y`/`z` columns are overwritten per
/// pose. After the first use with a given ligand size, scoring through a
/// scratch performs **zero heap allocations per pose** — buffers retain
/// their capacity across poses, batches, and `evaluate` calls.
///
/// The scratch remembers which scorer it is bound to (the scorer's
/// binding id plus ligand length), so repeated `score_with` /
/// `score_batch` calls against the same scorer skip the
/// `elem`/`charge` column refill entirely.
#[derive(Debug, Default, Clone)]
pub struct PoseScratch {
    lig: Frame,
    /// `(binding_id, ligand_len)` of the scorer the columns were last
    /// filled from; `None` until first bound.
    bound: Option<(u64, usize)>,
}

impl PoseScratch {
    /// An empty scratch; it binds (sizes itself) to a scorer lazily on
    /// first use and rebinds transparently if used with another scorer.
    pub fn new() -> PoseScratch {
        PoseScratch::default()
    }
}

/// A prepared receptor/ligand scoring context.
///
/// Construction flattens the receptor once ([`Frame`]); each [`Scorer::score`]
/// call applies a pose to the centered ligand and runs the configured kernel.
#[derive(Debug, Clone)]
pub struct Scorer {
    rec_frame: Frame,
    /// Element-run permutation of `rec_frame`, built once for the run
    /// kernels ([`Kernel::Run`] / [`Kernel::Fused`]).
    rec_runs: Option<RunFrame>,
    rec_grid: Option<SpatialGrid>,
    /// Potential-grid interpolator, built (or fetched from the keyed build
    /// cache) for [`Kernel::Grid`].
    grid: Option<crate::grid_potential::GridScorer>,
    /// Per-receptor-atom H-bond capability (original atom order), so the
    /// cell-list path gates pairs with one indexed bit instead of an
    /// `Element::ALL` round-trip per visited pair.
    rec_hb_capable: Vec<bool>,
    lig_local: Vec<Vec3>,
    lig_elem: Vec<Element>,
    lig_charge: Vec<f64>,
    table: PairTable,
    opts: ScorerOptions,
    /// Kernel work units per pose for the cost model: pair interactions
    /// for the dense kernels, ligand atoms for [`Kernel::Grid`], estimated
    /// shell pairs for [`Kernel::CellList`] (fixed at construction).
    units_per_eval: u64,
    /// Process-unique identity for scratch binding. Clones share the id —
    /// sound, because a clone carries identical ligand columns, so a
    /// scratch bound to either is bound to both.
    binding_id: u64,
}

/// Source of [`Scorer::binding_id`]; `fetch_add` never hands out the same
/// id twice, so a dropped scorer's id is never reused by a new one.
static NEXT_BINDING_ID: AtomicU64 = AtomicU64::new(1);

impl Scorer {
    /// Prepare a scorer. The ligand is re-centered at its centroid so pose
    /// translations place the ligand *center*. The receptor is flattened
    /// once; the run kernels additionally permute it into element runs
    /// here, so the per-pose hot loop never touches unsorted elements.
    pub fn new(receptor: &Molecule, ligand: &Molecule, opts: ScorerOptions) -> Scorer {
        Scorer::new_inner(receptor, ligand, opts, None)
    }

    /// [`Scorer::new`] plus trace visibility into any potential-grid build
    /// ([`vstrace::Event::GridBuilt`]) the kernel choice triggers.
    pub fn new_traced(
        receptor: &Molecule,
        ligand: &Molecule,
        opts: ScorerOptions,
        trace: &vstrace::Trace,
    ) -> Scorer {
        Scorer::new_inner(receptor, ligand, opts, Some(trace))
    }

    fn new_inner(
        receptor: &Molecule,
        ligand: &Molecule,
        opts: ScorerOptions,
        trace: Option<&vstrace::Trace>,
    ) -> Scorer {
        let lig = ligand.centered();
        let rec_grid = match opts.kernel {
            Kernel::CellList { cutoff } => {
                assert!(cutoff > 0.0, "cutoff must be positive");
                Some(SpatialGrid::build(receptor.positions(), cutoff.max(1.0)))
            }
            _ => None,
        };
        let grid = match opts.kernel {
            Kernel::Grid { spacing } => {
                let gopts = crate::grid_potential::GridOptions {
                    spacing,
                    dielectric: opts.model.dielectric(),
                    hbond_epsilon: opts.model.hbond_epsilon(),
                    ..Default::default()
                };
                Some(match trace {
                    Some(t) => {
                        crate::grid_potential::GridScorer::new_traced(receptor, ligand, gopts, t)
                    }
                    None => crate::grid_potential::GridScorer::new(receptor, ligand, gopts),
                })
            }
            _ => None,
        };
        let rec_frame = Frame::from_molecule(receptor);
        let rec_runs = opts.kernel.uses_run_layout().then(|| RunFrame::from_frame(&rec_frame));
        let rec_hb_capable: Vec<bool> =
            rec_frame.elem.iter().map(|&e| crate::hbond::is_hbond_capable_idx(e)).collect();
        let lig_atoms = lig.positions().len();
        let units_per_eval = match opts.kernel {
            Kernel::Grid { .. } => lig_atoms as u64,
            Kernel::CellList { cutoff } => {
                // PANICS: the CellList arm above always builds the spatial grid.
                let sg = rec_grid.as_ref().expect("cell-list kernel without spatial grid");
                lig_atoms as u64 * mean_shell_occupancy(sg, receptor.positions(), cutoff)
            }
            _ => crate::pairs_per_eval(lig_atoms, rec_frame.len()),
        };
        Scorer {
            rec_frame,
            rec_runs,
            rec_grid,
            grid,
            rec_hb_capable,
            lig_local: lig.positions().to_vec(),
            lig_elem: lig.elements().to_vec(),
            lig_charge: lig.charges(),
            table: PairTable::new(&LjTable::standard()),
            opts,
            units_per_eval,
            binding_id: NEXT_BINDING_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    pub fn receptor_atoms(&self) -> usize {
        self.rec_frame.len()
    }

    pub fn ligand_atoms(&self) -> usize {
        self.lig_local.len()
    }

    /// Pair interactions per evaluation (the dense-kernel workload unit).
    pub fn pairs_per_eval(&self) -> u64 {
        crate::pairs_per_eval(self.ligand_atoms(), self.receptor_atoms())
    }

    /// Kernel work units per evaluation in this kernel's *own* regime:
    /// `ligand × receptor` pairs for the dense kernels, ligand atoms for
    /// [`Kernel::Grid`], estimated shell pairs for [`Kernel::CellList`].
    /// This is what the cost model should multiply by its per-unit rates —
    /// feeding pair counts for a grid job would mispredict it by orders of
    /// magnitude.
    pub fn work_units_per_eval(&self) -> u64 {
        self.units_per_eval
    }

    pub fn options(&self) -> ScorerOptions {
        self.opts
    }

    /// Score a single pose (lower is better).
    ///
    /// Convenience wrapper over [`Scorer::score_with`] that pays one
    /// scratch construction; batch callers and repeated single-pose
    /// callers should hold a [`PoseScratch`] and use the `_with` form.
    pub fn score(&self, pose: &RigidTransform) -> f64 {
        let mut scratch = PoseScratch::new();
        self.score_with(pose, &mut scratch)
    }

    /// Bind `scratch` to this scorer: size the ligand frame and refresh the
    /// per-atom element/charge columns. A scratch already bound to this
    /// scorer (same binding id and ligand length — e.g. on every batch
    /// after the first against a persistent worker's scratch) returns
    /// immediately without touching the columns; an actual rebind is a
    /// memcpy of ligand-atom width, allocation-free once capacities are
    /// warm.
    fn bind_scratch(&self, scratch: &mut PoseScratch) {
        let key = (self.binding_id, self.lig_local.len());
        if scratch.bound == Some(key) {
            return;
        }
        let n = self.lig_local.len();
        scratch.lig.x.resize(n, 0.0);
        scratch.lig.y.resize(n, 0.0);
        scratch.lig.z.resize(n, 0.0);
        scratch.lig.elem.clear();
        scratch.lig.elem.extend(self.lig_elem.iter().map(|e| e.index() as u8));
        scratch.lig.charge.clear();
        scratch.lig.charge.extend_from_slice(&self.lig_charge);
        scratch.bound = Some(key);
    }

    /// Score a single pose through a caller-owned, reusable scratch.
    pub fn score_with(&self, pose: &RigidTransform, scratch: &mut PoseScratch) -> f64 {
        self.bind_scratch(scratch);
        self.score_bound(pose, scratch)
    }

    /// Score one pose assuming `scratch` is already bound to this scorer.
    /// This is the innermost hot path: one `apply_all_soa` plus the kernel,
    /// zero allocations.
    pub(crate) fn score_bound(&self, pose: &RigidTransform, scratch: &mut PoseScratch) -> f64 {
        let lig = &mut scratch.lig;
        pose.apply_all_soa(&self.lig_local, &mut lig.x, &mut lig.y, &mut lig.z);
        match self.opts.kernel {
            Kernel::CellList { cutoff } => self.score_cell_list(lig, cutoff),
            Kernel::Grid { .. } => {
                // PANICS: the constructor builds the interpolator whenever this kernel is selected; absence is an internal invariant breach.
                let grid = self.grid.as_ref().expect("grid kernel without potential grid");
                grid.score_frame_soa(&lig.x, &lig.y, &lig.z)
            }
            Kernel::Fused => {
                // PANICS: the constructor builds the run frame whenever this kernel is selected; absence is an internal invariant breach.
                let runs = self.rec_runs.as_ref().expect("fused kernel without run frame");
                fused_run(
                    lig,
                    runs,
                    &self.table,
                    self.opts.model.dielectric(),
                    self.opts.model.hbond_epsilon(),
                )
            }
            kernel => {
                // The multi-pass kernels: one LJ pass, then one pass per
                // enabled model term. `Run` streams the permuted frame in
                // the extra passes (same memory its LJ pass touched).
                let (lj, rec) = match kernel {
                    Kernel::Naive => (lj_naive(lig, &self.rec_frame, &self.table), &self.rec_frame),
                    Kernel::Tiled => (lj_tiled(lig, &self.rec_frame, &self.table), &self.rec_frame),
                    Kernel::Run => {
                        // PANICS: the constructor builds the run frame whenever this kernel is selected; absence is an internal invariant breach.
                        let runs = self.rec_runs.as_ref().expect("run kernel without run frame");
                        (lj_run(lig, runs, &self.table), runs.frame())
                    }
                    Kernel::Fused | Kernel::CellList { .. } | Kernel::Grid { .. } => unreachable!(),
                };
                let mut total = lj;
                if let Some(dielectric) = self.opts.model.dielectric() {
                    total += coulomb_naive(lig, rec, dielectric);
                }
                if let Some(eps) = self.opts.model.hbond_epsilon() {
                    total += crate::hbond::hbond_naive(lig, rec, eps);
                }
                total
            }
        }
    }

    fn score_cell_list(&self, lig: &Frame, cutoff: f64) -> f64 {
        // PANICS: the constructor builds the grid whenever this kernel is selected; absence is an internal invariant breach.
        let grid = self.rec_grid.as_ref().expect("cell-list kernel without spatial grid");
        let dielectric = self.opts.model.dielectric();
        let hbond_eps = self.opts.model.hbond_epsilon();
        let mut total = 0.0;
        for i in 0..lig.len() {
            let p = Vec3::new(lig.x[i], lig.y[i], lig.z[i]);
            let le = self.lig_elem[i].index() as u8;
            let lig_capable = crate::hbond::is_hbond_capable(self.lig_elem[i]);
            let qi = self.lig_charge[i];
            grid.for_each_within(p, cutoff, |j, _, r_sq| {
                let (s2, e4) = self.pair_at(le, self.rec_frame.elem[j]);
                total += lj_pair(s2, e4, r_sq);
                if let Some(eps) = dielectric {
                    total += coulomb_pair(qi, self.rec_frame.charge[j], r_sq, eps);
                }
                if let Some(hb) = hbond_eps {
                    if lig_capable && self.rec_hb_capable[j] {
                        total += crate::hbond::hbond_pair(hb, r_sq);
                    }
                }
            });
        }
        total
    }

    /// Score a pose and compute the net force/torque on the rigid ligand —
    /// the gradient the Lamarckian improver in `metaheur` descends. The
    /// gradient covers the LJ and Coulomb terms (the H-bond term, when
    /// enabled, contributes to the score but not the descent direction).
    pub fn score_and_gradient(&self, pose: &RigidTransform) -> (f64, crate::forces::RigidGradient) {
        let mut scratch = PoseScratch::new();
        self.score_and_gradient_with(pose, &mut scratch)
    }

    /// [`Scorer::score_and_gradient`] through a reusable scratch: the
    /// transformed ligand frame produced by scoring is fed straight to the
    /// gradient kernel, with no per-pose allocation. Scorers on a run
    /// kernel descend the run-layout gradient kernel (hoisted `(σ², 4ε)`,
    /// no per-pair gather), same force field either way.
    pub fn score_and_gradient_with(
        &self,
        pose: &RigidTransform,
        scratch: &mut PoseScratch,
    ) -> (f64, crate::forces::RigidGradient) {
        let score = self.score_with(pose, scratch);
        let dielectric = self.opts.model.dielectric();
        let grad = match &self.rec_runs {
            Some(runs) => crate::forces::rigid_gradient_run(
                &scratch.lig,
                runs,
                &self.table,
                pose.translation,
                dielectric,
            ),
            None => crate::forces::rigid_gradient(
                &scratch.lig,
                &self.rec_frame,
                &self.table,
                pose.translation,
                dielectric,
            ),
        };
        (score, grad)
    }

    #[inline]
    fn pair_at(&self, lig_elem: u8, rec_elem: u8) -> (f64, f64) {
        self.table.lookup(lig_elem, rec_elem)
    }

    /// Score a batch — the single batch entry point every other scoring
    /// path is built on.
    ///
    /// `input` selects the shape: [`ScoreBatch::Poses`] scores `poses[i]`
    /// into `out[i]` (equal lengths required); [`ScoreBatch::Confs`]
    /// scores `confs[i].pose` into `confs[i].score` in place (the
    /// `metaheur` evaluate shape) — no pose/score round-trips through
    /// temporary vectors either way.
    ///
    /// `exec` selects the policy: [`Exec::Serial`] binds `scratch` once
    /// and runs in the caller's thread, allocation-free per pose;
    /// [`Exec::Pool`]`(n)` runs on a shared *persistent*
    /// [`crate::pool::CpuPool`] with `n` workers — the "OpenMP" CPU path
    /// of the paper's baseline. Pools are keyed by the requested thread
    /// count (created on first use), so repeated batch calls pay no
    /// spawn/join cost and reuse each worker's scratch; single-item
    /// batches and `n <= 1` fall back to the serial path. Scores are
    /// bit-identical across policies for a fixed kernel (DESIGN §7).
    pub fn score_batch(&self, input: ScoreBatch<'_>, scratch: &mut PoseScratch, exec: Exec) {
        input.assert_valid();
        match exec {
            Exec::Pool(threads) if threads > 1 && input.len() >= 2 => {
                crate::pool::shared_pool(threads).score_batch(self, input);
            }
            Exec::Serial | Exec::Pool(_) => self.score_batch_serial(input, scratch),
        }
    }

    /// The serial batch loop: bind the scratch once, then score each item
    /// against the bound frame. Also the per-worker body of the pool path
    /// (each worker passes its own scratch and contiguous chunk), which is
    /// what makes pool scores bit-identical to serial ones.
    pub(crate) fn score_batch_serial(&self, input: ScoreBatch<'_>, scratch: &mut PoseScratch) {
        if input.is_empty() {
            return;
        }
        self.bind_scratch(scratch);
        match input {
            ScoreBatch::Poses { poses, out } => {
                for (p, o) in poses.iter().zip(out.iter_mut()) {
                    *o = self.score_bound(p, scratch);
                }
            }
            ScoreBatch::Confs(confs) => {
                for c in confs.iter_mut() {
                    c.score = self.score_bound(&c.pose, scratch);
                }
            }
        }
    }
}

/// Mean receptor atoms inside a `cutoff` shell, sampled at up to 256
/// receptor-atom positions (strided for coverage). The cell-list kernel's
/// per-ligand-atom cost is proportional to this; it prices a ligand *near*
/// the receptor, which is where every docking pose of interest sits.
fn mean_shell_occupancy(grid: &SpatialGrid, positions: &[Vec3], cutoff: f64) -> u64 {
    if positions.is_empty() {
        return 1;
    }
    let stride = positions.len().div_ceil(256);
    let mut total = 0u64;
    let mut samples = 0u64;
    for p in positions.iter().step_by(stride) {
        total += grid.count_within(*p, cutoff) as u64;
        samples += 1;
    }
    (total / samples.max(1)).max(1)
}

/// Execution policy for [`Scorer::score_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Exec {
    /// Score in the calling thread.
    Serial,
    /// Score on the shared persistent worker pool with this many threads
    /// (`0` and `1` are equivalent to [`Exec::Serial`]).
    Pool(usize),
}

/// Batch input shape for [`Scorer::score_batch`].
#[derive(Debug)]
pub enum ScoreBatch<'a> {
    /// Score `poses[i]` into `out[i]`; the slices must have equal length.
    Poses { poses: &'a [RigidTransform], out: &'a mut [f64] },
    /// Score `confs[i].pose` into `confs[i].score`, in place.
    Confs(&'a mut [Conformation]),
}

impl ScoreBatch<'_> {
    /// Number of items to score.
    pub fn len(&self) -> usize {
        match self {
            ScoreBatch::Poses { poses, .. } => poses.len(),
            ScoreBatch::Confs(confs) => confs.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn assert_valid(&self) {
        if let ScoreBatch::Poses { poses, out } = self {
            assert_eq!(poses.len(), out.len(), "output slice length must match pose count");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsmath::{Quat, RngStream};
    use vsmol::synth;

    fn setup(kernel: Kernel) -> Scorer {
        let rec = synth::synth_receptor("r", 600, 5);
        let lig = synth::synth_ligand("l", 16, 6);
        Scorer::new(&rec, &lig, ScorerOptions { model: ScoringModel::LennardJones, kernel })
    }

    fn random_poses(n: usize, seed: u64, spread: f64) -> Vec<RigidTransform> {
        let mut rng = RngStream::from_seed(seed);
        (0..n).map(|_| RigidTransform::new(rng.rotation(), rng.in_ball(spread))).collect()
    }

    fn batch_scores(s: &Scorer, poses: &[RigidTransform], exec: Exec) -> Vec<f64> {
        let mut out = vec![0.0; poses.len()];
        let mut scratch = PoseScratch::new();
        s.score_batch(ScoreBatch::Poses { poses, out: &mut out }, &mut scratch, exec);
        out
    }

    #[test]
    fn naive_and_tiled_scorers_agree() {
        let a = setup(Kernel::Naive);
        let b = setup(Kernel::Tiled);
        for pose in random_poses(10, 1, 30.0) {
            let sa = a.score(&pose);
            let sb = b.score(&pose);
            assert!((sa - sb).abs() <= 1e-9 * sa.abs().max(1.0), "{sa} vs {sb}");
        }
    }

    #[test]
    fn fused_is_the_default_kernel() {
        assert_eq!(ScorerOptions::default().kernel, Kernel::Fused);
        assert!(Kernel::Fused.uses_run_layout());
        assert!(Kernel::Run.uses_run_layout());
        assert!(!Kernel::Tiled.uses_run_layout());
    }

    #[test]
    fn all_dense_kernels_agree_for_every_model() {
        let rec = synth::synth_receptor("r", 600, 5);
        let lig = synth::synth_ligand("l", 16, 6);
        for model in [
            ScoringModel::LennardJones,
            ScoringModel::LennardJonesCoulomb { dielectric: 4.0 },
            ScoringModel::Full { dielectric: 4.0, hbond_epsilon: 1.0 },
        ] {
            let reference = Scorer::new(&rec, &lig, ScorerOptions { model, kernel: Kernel::Naive });
            for kernel in [Kernel::Tiled, Kernel::Run, Kernel::Fused] {
                let s = Scorer::new(&rec, &lig, ScorerOptions { model, kernel });
                for pose in random_poses(6, 2, 25.0) {
                    let want = reference.score(&pose);
                    let got = s.score(&pose);
                    assert!(
                        (want - got).abs() <= 1e-9 * want.abs().max(1.0),
                        "{model:?}/{kernel:?}: {want} vs {got}"
                    );
                }
            }
        }
    }

    #[test]
    fn scratch_skips_rebind_for_same_scorer() {
        let s = setup(Kernel::Fused);
        let mut scratch = PoseScratch::new();
        assert!(scratch.bound.is_none());
        let pose = random_poses(1, 7, 20.0)[0];
        let first = s.score_with(&pose, &mut scratch);
        let key = scratch.bound.expect("scoring must bind the scratch");
        // Repeated scoring against the same scorer keeps the binding (the
        // refill is skipped) and stays bit-identical.
        let second = s.score_with(&pose, &mut scratch);
        assert_eq!(first.to_bits(), second.to_bits());
        assert_eq!(scratch.bound, Some(key));
        // A clone shares the binding id (identical ligand columns), so the
        // scratch stays bound to it too.
        let clone = s.clone();
        assert_eq!(clone.score_with(&pose, &mut scratch).to_bits(), first.to_bits());
        assert_eq!(scratch.bound, Some(key));
        // A different scorer rebinds and still scores correctly.
        let rec2 = synth::synth_receptor("r2", 300, 9);
        let lig2 = synth::synth_ligand("l2", 7, 10);
        let other = Scorer::new(&rec2, &lig2, ScorerOptions::default());
        let via_scratch = other.score_with(&pose, &mut scratch);
        assert_ne!(scratch.bound, Some(key), "different scorer must rebind");
        assert_eq!(via_scratch.to_bits(), other.score(&pose).to_bits());
        // And back: binding to the first scorer again is a fresh rebind.
        assert_eq!(s.score_with(&pose, &mut scratch).to_bits(), first.to_bits());
        assert_eq!(scratch.bound, Some(key));
    }

    #[test]
    fn cell_list_matches_naive_cutoff() {
        let rec = synth::synth_receptor("r", 600, 5);
        let lig = synth::synth_ligand("l", 16, 6);
        let cutoff = 10.0;
        let grid = Scorer::new(
            &rec,
            &lig,
            ScorerOptions {
                model: ScoringModel::LennardJones,
                kernel: Kernel::CellList { cutoff },
            },
        );
        // Reference: naive cutoff over the same transformed ligand.
        let table = PairTable::new(&LjTable::standard());
        let rec_frame = Frame::from_molecule(&rec);
        let lig_centered = lig.centered();
        for pose in random_poses(8, 2, 25.0) {
            let lig_t = lig_centered.transformed(&pose);
            let lf = Frame::from_molecule(&lig_t);
            let want = crate::lj::lj_naive_cutoff(&lf, &rec_frame, &table, cutoff);
            let got = grid.score(&pose);
            assert!((got - want).abs() <= 1e-9 * want.abs().max(1.0), "{got} vs {want}");
        }
    }

    #[test]
    fn batch_matches_single() {
        let s = setup(Kernel::Tiled);
        let poses = random_poses(12, 3, 20.0);
        let batch = batch_scores(&s, &poses, Exec::Serial);
        for (p, &b) in poses.iter().zip(&batch) {
            assert_eq!(s.score(p), b);
        }
    }

    #[test]
    fn batch_scores_conformations_in_place() {
        let s = setup(Kernel::Tiled);
        let poses = random_poses(9, 13, 20.0);
        let mut confs: Vec<Conformation> = poses.iter().map(|p| Conformation::new(*p, 0)).collect();
        let mut scratch = PoseScratch::new();
        s.score_batch(ScoreBatch::Confs(&mut confs), &mut scratch, Exec::Serial);
        let want = batch_scores(&s, &poses, Exec::Serial);
        let got: Vec<f64> = confs.iter().map(|c| c.score).collect();
        assert_eq!(want, got);
    }

    #[test]
    fn pool_exec_matches_serial() {
        let s = setup(Kernel::Tiled);
        let poses = random_poses(37, 4, 20.0);
        let serial = batch_scores(&s, &poses, Exec::Serial);
        for n_threads in [0, 1, 2, 3, 8, 64] {
            let par = batch_scores(&s, &poses, Exec::Pool(n_threads));
            assert_eq!(serial, par, "n_threads={n_threads}");
        }
    }

    #[test]
    fn pool_exec_empty_and_single() {
        let s = setup(Kernel::Tiled);
        assert!(batch_scores(&s, &[], Exec::Pool(4)).is_empty());
        let one = random_poses(1, 5, 10.0);
        assert_eq!(batch_scores(&s, &one, Exec::Pool(4)), batch_scores(&s, &one, Exec::Serial));
    }

    #[test]
    #[should_panic(expected = "output slice length must match pose count")]
    fn mismatched_output_length_panics() {
        let s = setup(Kernel::Tiled);
        let poses = random_poses(3, 6, 10.0);
        let mut out = vec![0.0; 2];
        let mut scratch = PoseScratch::new();
        s.score_batch(
            ScoreBatch::Poses { poses: &poses, out: &mut out },
            &mut scratch,
            Exec::Serial,
        );
    }

    #[test]
    fn coulomb_model_changes_score() {
        let rec = synth::synth_receptor("r", 300, 7);
        let lig = synth::synth_ligand("l", 10, 8);
        let lj = Scorer::new(&rec, &lig, ScorerOptions::default());
        let ljc = Scorer::new(
            &rec,
            &lig,
            ScorerOptions {
                model: ScoringModel::LennardJonesCoulomb { dielectric: 4.0 },
                kernel: Kernel::Tiled,
            },
        );
        let pose = RigidTransform::from_translation(Vec3::new(25.0, 0.0, 0.0));
        assert_ne!(lj.score(&pose), ljc.score(&pose));
    }

    #[test]
    fn far_away_ligand_scores_near_zero() {
        let s = setup(Kernel::Tiled);
        let far = RigidTransform::from_translation(Vec3::new(1e5, 0.0, 0.0));
        assert!(s.score(&far).abs() < 1e-6);
    }

    #[test]
    fn ligand_inside_receptor_is_unfavorable() {
        let s = setup(Kernel::Tiled);
        let inside = RigidTransform::IDENTITY; // ligand at receptor center
        let surface = RigidTransform::from_translation(Vec3::new(19.0, 0.0, 0.0));
        assert!(
            s.score(&inside) > s.score(&surface),
            "buried clash must score worse than surface contact"
        );
    }

    #[test]
    fn there_exists_a_favorable_pose() {
        // Somewhere near the surface the LJ attraction wins: score < 0.
        let s = setup(Kernel::Tiled);
        let mut best = f64::INFINITY;
        let mut rng = RngStream::from_seed(9);
        for _ in 0..300 {
            let r = rng.uniform_range(16.0, 24.0);
            let dir = rng.unit_vector();
            let pose = RigidTransform::new(rng.rotation(), dir * r);
            best = best.min(s.score(&pose));
        }
        assert!(best < 0.0, "no favorable pose found, best {best}");
    }

    #[test]
    fn rotation_changes_score() {
        let s = setup(Kernel::Tiled);
        let t = Vec3::new(18.0, 2.0, 1.0);
        let a = s.score(&RigidTransform::new(Quat::IDENTITY, t));
        let b = s.score(&RigidTransform::new(Quat::from_axis_angle(Vec3::X, 1.5), t));
        assert_ne!(a, b);
    }

    #[test]
    fn pairs_per_eval_exposed() {
        let s = setup(Kernel::Tiled);
        assert_eq!(s.pairs_per_eval(), (s.ligand_atoms() * s.receptor_atoms()) as u64);
    }

    #[test]
    fn full_model_adds_hbond_term() {
        let rec = synth::synth_receptor("r", 300, 7);
        let lig = synth::synth_ligand("l", 10, 8);
        let ljc = Scorer::new(
            &rec,
            &lig,
            ScorerOptions {
                model: ScoringModel::LennardJonesCoulomb { dielectric: 4.0 },
                kernel: Kernel::Tiled,
            },
        );
        let full = Scorer::new(
            &rec,
            &lig,
            ScorerOptions {
                model: ScoringModel::Full { dielectric: 4.0, hbond_epsilon: 1.0 },
                kernel: Kernel::Tiled,
            },
        );
        // Scan poses until one differs (N/O contact); a zero-eps Full model
        // must equal LJC everywhere.
        let zero = Scorer::new(
            &rec,
            &lig,
            ScorerOptions {
                model: ScoringModel::Full { dielectric: 4.0, hbond_epsilon: 0.0 },
                kernel: Kernel::Tiled,
            },
        );
        let mut rng = RngStream::from_seed(21);
        let mut any_diff = false;
        for _ in 0..40 {
            let pose = RigidTransform::new(rng.rotation(), rng.unit_vector() * 19.0);
            let a = ljc.score(&pose);
            let b = full.score(&pose);
            let c = zero.score(&pose);
            assert!((a - c).abs() < 1e-12, "zero-eps H-bond must be inert");
            if (a - b).abs() > 1e-9 {
                any_diff = true;
            }
        }
        assert!(any_diff, "H-bond term never engaged across 40 contact poses");
    }

    #[test]
    fn full_model_cell_list_matches_dense_within_cutoff_tolerance() {
        let rec = synth::synth_receptor("r", 300, 7);
        let lig = synth::synth_ligand("l", 10, 8);
        let model = ScoringModel::Full { dielectric: 4.0, hbond_epsilon: 1.0 };
        let dense = Scorer::new(&rec, &lig, ScorerOptions { model, kernel: Kernel::Tiled });
        let grid = Scorer::new(
            &rec,
            &lig,
            ScorerOptions { model, kernel: Kernel::CellList { cutoff: 25.0 } },
        );
        let mut rng = RngStream::from_seed(23);
        let pose = RigidTransform::new(rng.rotation(), rng.unit_vector() * 18.0);
        let a = dense.score(&pose);
        let b = grid.score(&pose);
        // 25 Å truncates the slow 1/r² Coulomb tail; allow a sub-kcal/mol
        // absolute discrepancy.
        assert!((a - b).abs() < 0.5, "{a} vs {b}");
    }

    #[test]
    fn model_accessors() {
        assert_eq!(ScoringModel::LennardJones.dielectric(), None);
        assert_eq!(ScoringModel::LennardJonesCoulomb { dielectric: 2.0 }.dielectric(), Some(2.0));
        let f = ScoringModel::Full { dielectric: 3.0, hbond_epsilon: 0.5 };
        assert_eq!(f.dielectric(), Some(3.0));
        assert_eq!(f.hbond_epsilon(), Some(0.5));
        assert_eq!(ScoringModel::LennardJones.hbond_epsilon(), None);
    }

    #[test]
    #[should_panic]
    fn non_positive_cutoff_panics() {
        let rec = synth::synth_receptor("r", 50, 1);
        let lig = synth::synth_ligand("l", 5, 2);
        Scorer::new(
            &rec,
            &lig,
            ScorerOptions {
                model: ScoringModel::LennardJones,
                kernel: Kernel::CellList { cutoff: 0.0 },
            },
        );
    }

    #[test]
    fn grid_kernel_matches_grid_scorer_and_batch_paths() {
        let rec = synth::synth_receptor("r", 300, 7);
        let lig = synth::synth_ligand("l", 10, 8);
        let model = ScoringModel::Full { dielectric: 4.0, hbond_epsilon: 1.0 };
        let spacing = 0.6;
        let s = Scorer::new(&rec, &lig, ScorerOptions { model, kernel: Kernel::Grid { spacing } });
        let direct = crate::grid_potential::GridScorer::new(
            &rec,
            &lig,
            crate::grid_potential::GridOptions {
                spacing,
                dielectric: model.dielectric(),
                hbond_epsilon: model.hbond_epsilon(),
                ..Default::default()
            },
        );
        let mut rng = RngStream::from_seed(31);
        let poses: Vec<RigidTransform> = (0..24)
            .map(|_| RigidTransform::new(rng.rotation(), rng.unit_vector() * 16.0))
            .collect();
        // score_bound's SoA frame path must agree bit-for-bit with the
        // interpolator's own pose path (same transform, same lanes).
        for pose in &poses {
            assert_eq!(s.score(pose).to_bits(), direct.score(pose).to_bits());
        }
        // And the batch entry point reaches it under every policy.
        let serial = batch_scores(&s, &poses, Exec::Serial);
        let pooled = batch_scores(&s, &poses, Exec::Pool(4));
        assert_eq!(serial, pooled);
        assert_eq!(serial[0].to_bits(), s.score(&poses[0]).to_bits());
    }

    #[test]
    fn work_units_reflect_each_kernels_regime() {
        let rec = synth::synth_receptor("r", 600, 5);
        let lig = synth::synth_ligand("l", 16, 6);
        let mk = |kernel| {
            Scorer::new(&rec, &lig, ScorerOptions { model: ScoringModel::LennardJones, kernel })
        };
        let dense = mk(Kernel::Fused);
        assert_eq!(dense.work_units_per_eval(), dense.pairs_per_eval());
        let grid = mk(Kernel::Grid { spacing: 1.0 });
        assert_eq!(grid.work_units_per_eval(), grid.ligand_atoms() as u64);
        let cells = mk(Kernel::CellList { cutoff: 8.0 });
        let units = cells.work_units_per_eval();
        assert!(
            units > cells.ligand_atoms() as u64 && units < cells.pairs_per_eval(),
            "shell pairs ({units}) should sit between ligand atoms and dense pairs"
        );
    }
}
