//! # vsscore — scoring functions and batch kernels
//!
//! The scoring function measures the strength of the non-covalent
//! interaction between receptor and ligand; the paper's VS technique "uses
//! a scoring function based on the Lennard-Jones potential" (§3.1), the
//! most time-consuming kernel in virtual screening (up to 80% of execution
//! time in molecular dynamics, §2.1).
//!
//! This crate provides:
//!
//! - [`lj`] — the Lennard-Jones pair potential over flattened
//!   structure-of-arrays layouts, in a *naive* all-pairs kernel and a
//!   *tiled* kernel (the CPU analog of the paper's CUDA shared-memory
//!   tiling, §5: "Our CUDA implementations take advantage of data-locality
//!   through tiling implementation via shared memory");
//! - [`run`] — the *element-run* receptor layout ([`run::RunFrame`]:
//!   receptor permuted once so same-element atoms are contiguous) and the
//!   kernels built on it: a gather-free LJ kernel and the **fused**
//!   single-pass kernel ([`run::fused_run`], the default scoring path)
//!   that accumulates LJ + Coulomb + run-gated H-bond in one receptor
//!   sweep;
//! - [`coulomb`] — the electrostatic term (paper §2.1 names Coulomb as the
//!   other relevant non-bonded potential; §6 lists richer scoring functions
//!   as future work);
//! - [`scorer`] — the [`scorer::Scorer`] facade that prepares a
//!   receptor/ligand pair once and scores arbitrary poses; all batch work
//!   goes through the single [`scorer::Scorer::score_batch`] entry point,
//!   parameterized by an [`scorer::Exec`] policy (serial or pooled);
//! - [`pool`] — the persistent [`pool::CpuPool`] worker team behind the
//!   multithreaded batch path: threads are spawned once and reused across
//!   batches, each with its own [`scorer::PoseScratch`], so steady-state
//!   batch scoring allocates nothing and spawns nothing.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod coulomb;
pub mod forces;
pub mod grid_potential;
pub mod hbond;
pub mod lj;
pub mod pool;
pub mod run;
pub mod scorer;
pub(crate) mod sync;

pub use forces::RigidGradient;
pub use grid_potential::{
    exact_cutoff_score, GridBuildStats, GridField, GridOptions, GridScorer, MAX_NODE_POTENTIAL,
};
pub use pool::{shared_pool, CpuPool};
pub use run::RunFrame;
pub use scorer::{Exec, Kernel, PoseScratch, ScoreBatch, Scorer, ScorerOptions, ScoringModel};

/// Number of atom-pair interactions one pose evaluation computes — the
/// workload unit the GPU cost model in `gpusim` charges for.
pub fn pairs_per_eval(ligand_atoms: usize, receptor_atoms: usize) -> u64 {
    ligand_atoms as u64 * receptor_atoms as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn pairs_per_eval_multiplies() {
        assert_eq!(super::pairs_per_eval(45, 3264), 45 * 3264);
        assert_eq!(super::pairs_per_eval(0, 100), 0);
    }
}
