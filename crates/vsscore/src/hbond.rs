//! Hydrogen-bond term — a scoring-function extension (§6: "many other
//! types of scoring functions still to be explored").
//!
//! Crystal structures carry no hydrogens, so the standard
//! heavy-atom-geometry approximation is used: donor/acceptor-capable
//! heteroatom pairs (N, O) interact through a 10–12 potential
//!
//! ```text
//! E_hb(r) = ε_hb [5 (σ_hb/r)¹² − 6 (σ_hb/r)¹⁰]
//! ```
//!
//! with its minimum of exactly `−ε_hb` at `r = σ_hb ≈ 2.9 Å` — the
//! canonical N/O···N/O hydrogen-bond distance. The 10–12 form is the
//! classic AutoDock/ECEPP hydrogen-bond function.

use crate::lj::{Frame, MIN_DIST_SQ};
use vsmol::Element;

/// Equilibrium heavy-atom H-bond distance, Å.
pub const HB_SIGMA: f64 = 2.9;

/// Default well depth, kcal/mol.
pub const HB_EPSILON: f64 = 1.0;

/// Whether an element can participate in (heavy-atom) hydrogen bonding.
#[inline]
pub fn is_hbond_capable(e: Element) -> bool {
    matches!(e, Element::N | Element::O)
}

/// [`is_hbond_capable`] by dense element index ([`Element::index`]) — the
/// form the frame kernels use. Because capability is an element property,
/// it is constant over an element run, which is what lets the fused run
/// kernel gate whole runs instead of testing every pair.
#[inline]
pub fn is_hbond_capable_idx(elem: u8) -> bool {
    elem == Element::N.index() as u8 || elem == Element::O.index() as u8
}

/// 10–12 pair energy at squared distance `r_sq` (clamped like the LJ
/// kernel), for a well depth `epsilon`.
#[inline]
pub fn hbond_pair(epsilon: f64, r_sq: f64) -> f64 {
    let r2 = if r_sq < MIN_DIST_SQ { MIN_DIST_SQ } else { r_sq };
    let q = HB_SIGMA * HB_SIGMA / r2; // (σ/r)²
    let q5 = q * q * q * q * q;
    epsilon * (5.0 * q5 * q - 6.0 * q5)
}

/// All-pairs hydrogen-bond energy between two frames; only N/O pairs
/// contribute.
pub fn hbond_naive(lig: &Frame, rec: &Frame, epsilon: f64) -> f64 {
    assert!(epsilon >= 0.0, "well depth must be non-negative");
    if epsilon == 0.0 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..lig.len() {
        if !is_hbond_capable_idx(lig.elem[i]) {
            continue;
        }
        let (lx, ly, lz) = (lig.x[i], lig.y[i], lig.z[i]);
        for j in 0..rec.len() {
            if !is_hbond_capable_idx(rec.elem[j]) {
                continue;
            }
            let dx = lx - rec.x[j];
            let dy = ly - rec.y[j];
            let dz = lz - rec.z[j];
            total += hbond_pair(epsilon, dx * dx + dy * dy + dz * dz);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsmath::Vec3;

    #[test]
    fn minimum_at_sigma_with_depth_epsilon() {
        let e = hbond_pair(1.0, HB_SIGMA * HB_SIGMA);
        assert!((e + 1.0).abs() < 1e-12, "minimum should be -eps: {e}");
        // Neighborhood is higher.
        assert!(hbond_pair(1.0, (HB_SIGMA * 1.1).powi(2)) > e);
        assert!(hbond_pair(1.0, (HB_SIGMA * 0.9).powi(2)) > e);
    }

    #[test]
    fn repulsive_at_short_range_attractive_at_medium() {
        assert!(hbond_pair(1.0, (HB_SIGMA * 0.7).powi(2)) > 0.0);
        assert!(hbond_pair(1.0, (HB_SIGMA * 1.3).powi(2)) < 0.0);
    }

    #[test]
    fn decays_to_zero() {
        assert!(hbond_pair(1.0, (HB_SIGMA * 10.0).powi(2)).abs() < 1e-6);
    }

    #[test]
    fn clamped_core_is_finite() {
        let e = hbond_pair(1.0, 0.0);
        assert!(e.is_finite());
        assert_eq!(e, hbond_pair(1.0, MIN_DIST_SQ));
    }

    #[test]
    fn capability_set() {
        assert!(is_hbond_capable(Element::N));
        assert!(is_hbond_capable(Element::O));
        assert!(!is_hbond_capable(Element::C));
        assert!(!is_hbond_capable(Element::S));
        assert!(!is_hbond_capable(Element::H));
    }

    fn frame_of(specs: &[(Vec3, Element)]) -> Frame {
        let pos: Vec<Vec3> = specs.iter().map(|(p, _)| *p).collect();
        let el: Vec<Element> = specs.iter().map(|(_, e)| *e).collect();
        let q = vec![0.0; specs.len()];
        Frame::from_parts(&pos, &el, &q)
    }

    #[test]
    fn only_no_pairs_contribute() {
        let lig = frame_of(&[(Vec3::ZERO, Element::C)]);
        let rec = frame_of(&[(Vec3::new(HB_SIGMA, 0.0, 0.0), Element::O)]);
        assert_eq!(hbond_naive(&lig, &rec, 1.0), 0.0, "carbon never H-bonds");

        let lig2 = frame_of(&[(Vec3::ZERO, Element::N)]);
        let e = hbond_naive(&lig2, &rec, 1.0);
        assert!((e + 1.0).abs() < 1e-12, "N···O at sigma: {e}");
    }

    #[test]
    fn energy_scales_with_epsilon() {
        let lig = frame_of(&[(Vec3::ZERO, Element::O)]);
        let rec = frame_of(&[(Vec3::new(3.2, 0.0, 0.0), Element::N)]);
        let e1 = hbond_naive(&lig, &rec, 1.0);
        let e2 = hbond_naive(&lig, &rec, 2.0);
        assert!((e2 - 2.0 * e1).abs() < 1e-12);
        assert_eq!(hbond_naive(&lig, &rec, 0.0), 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_epsilon_panics() {
        let f = frame_of(&[(Vec3::ZERO, Element::O)]);
        hbond_naive(&f, &f, -1.0);
    }
}
