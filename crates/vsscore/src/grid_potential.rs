//! Precomputed potential grids — the AutoDock-style scoring optimization.
//!
//! The paper's kernels recompute all `ligand × receptor` pair interactions
//! per conformation. Production docking codes (AutoDock, the paper's ref
//! [24]) instead precompute, once per receptor, a 3-D grid of interaction
//! potentials per ligand atom *type*; scoring a pose then costs one
//! trilinear interpolation per ligand atom — `O(ligand)` instead of
//! `O(ligand × receptor)`, at the price of grid-resolution error and an
//! upfront build. This module implements that trade-off as an extension
//! (§6: scoring-function variants as future work) and the benches quantify
//! it.

use crate::coulomb::COULOMB_K;
use crate::lj::{lj_pair, Frame, PairTable, MIN_DIST_SQ};
use vsmath::{Aabb, RigidTransform, SpatialGrid, Vec3};
use vsmol::{Element, LjTable, Molecule};

/// Grid build options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridOptions {
    /// Node spacing in Å (AutoDock default is 0.375; coarser is faster).
    pub spacing: f64,
    /// Margin beyond the receptor bounding box, Å (covers surface spots).
    pub margin: f64,
    /// Pair cutoff while accumulating node potentials, Å.
    pub cutoff: f64,
    /// Include the electrostatic grid (distance-dependent dielectric).
    pub dielectric: Option<f64>,
}

impl Default for GridOptions {
    fn default() -> Self {
        GridOptions { spacing: 0.75, margin: 8.0, cutoff: 12.0, dielectric: None }
    }
}

/// Cap on stored node potentials: inside the repulsive core the true LJ
/// value diverges and trilinear interpolation of it is meaningless; any
/// pose touching such a node is a rejected clash either way. AutoDock's
/// grid maps clamp identically.
pub const MAX_NODE_POTENTIAL: f32 = 1.0e4;

/// A precomputed potential field over the receptor: one LJ grid per element
/// type present in the ligand, plus an optional electrostatic grid.
#[derive(Debug, Clone)]
pub struct GridScorer {
    origin: Vec3,
    spacing: f64,
    dims: [usize; 3],
    /// `lj[t][node]` for ligand element-type slot `t`.
    lj: Vec<Vec<f32>>,
    /// Electrostatic potential per unit charge (empty when disabled).
    elec: Vec<f32>,
    /// Slot per `Element::index()`, usize::MAX when absent from the ligand.
    type_slot: [usize; Element::COUNT],
    lig_local: Vec<Vec3>,
    lig_elem: Vec<Element>,
    lig_charge: Vec<f64>,
    opts: GridOptions,
}

impl GridScorer {
    /// Build the grids for a receptor/ligand pair. Cost:
    /// `nodes × avg-neighbors × ligand-element-types`, paid once.
    pub fn new(receptor: &Molecule, ligand: &Molecule, opts: GridOptions) -> GridScorer {
        assert!(opts.spacing > 0.0, "spacing must be positive");
        assert!(opts.cutoff > 0.0, "cutoff must be positive");
        let lig = ligand.centered();

        // Distinct ligand element types get grid slots.
        let mut type_slot = [usize::MAX; Element::COUNT];
        let mut types: Vec<Element> = Vec::new();
        for &e in lig.elements() {
            if type_slot[e.index()] == usize::MAX {
                type_slot[e.index()] = types.len();
                types.push(e);
            }
        }

        let bb = Aabb::from_points(receptor.positions()).inflated(opts.margin);
        let extent = bb.extent();
        let dims = [
            (extent.x / opts.spacing).ceil() as usize + 1,
            (extent.y / opts.spacing).ceil() as usize + 1,
            (extent.z / opts.spacing).ceil() as usize + 1,
        ];
        let n_nodes = dims[0] * dims[1] * dims[2];

        let rec_grid = SpatialGrid::build(receptor.positions(), opts.cutoff);
        let table = PairTable::new(&LjTable::standard());
        let rec_elem: Vec<u8> = receptor.elements().iter().map(|e| e.index() as u8).collect();
        let rec_charge = receptor.charges();

        let mut lj = vec![vec![0f32; n_nodes]; types.len()];
        let mut elec = if opts.dielectric.is_some() { vec![0f32; n_nodes] } else { Vec::new() };

        for iz in 0..dims[2] {
            for iy in 0..dims[1] {
                for ix in 0..dims[0] {
                    let node = (iz * dims[1] + iy) * dims[0] + ix;
                    let p = bb.min + Vec3::new(ix as f64, iy as f64, iz as f64) * opts.spacing;
                    rec_grid.for_each_within(p, opts.cutoff, |j, _, r_sq| {
                        for (t, &te) in types.iter().enumerate() {
                            let (s2, e4) = table.lookup(te.index() as u8, rec_elem[j]);
                            lj[t][node] += lj_pair(s2, e4, r_sq) as f32;
                        }
                        if let Some(eps) = opts.dielectric {
                            let r2 = r_sq.max(MIN_DIST_SQ);
                            elec[node] += (COULOMB_K * rec_charge[j] / (eps * r2)) as f32;
                        }
                    });
                    for grid_t in lj.iter_mut() {
                        grid_t[node] = grid_t[node].min(MAX_NODE_POTENTIAL);
                    }
                }
            }
        }

        GridScorer {
            origin: bb.min,
            spacing: opts.spacing,
            dims,
            lj,
            elec,
            type_slot,
            lig_local: lig.positions().to_vec(),
            lig_elem: lig.elements().to_vec(),
            lig_charge: lig.charges(),
            opts,
        }
    }

    pub fn options(&self) -> GridOptions {
        self.opts
    }

    pub fn ligand_atoms(&self) -> usize {
        self.lig_local.len()
    }

    /// Grid memory footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        let nodes = self.dims[0] * self.dims[1] * self.dims[2];
        (self.lj.len() * nodes + self.elec.len()) * std::mem::size_of::<f32>()
    }

    /// Trilinear interpolation of field `f` at `p`; positions outside the
    /// grid clamp to the boundary (far from the receptor the potential is
    /// ~0 anyway, given the build cutoff).
    fn interpolate(&self, f: &[f32], p: Vec3) -> f64 {
        let g = (p - self.origin) / self.spacing;
        let clampf = |v: f64, hi: usize| -> f64 { v.max(0.0).min(hi as f64 - 1.000001) };
        let gx = clampf(g.x, self.dims[0]);
        let gy = clampf(g.y, self.dims[1]);
        let gz = clampf(g.z, self.dims[2]);
        let (x0, y0, z0) = (gx as usize, gy as usize, gz as usize);
        let (fx, fy, fz) = (gx - x0 as f64, gy - y0 as f64, gz - z0 as f64);
        let at = |x: usize, y: usize, z: usize| -> f64 {
            f[(z * self.dims[1] + y) * self.dims[0] + x] as f64
        };
        let c00 = at(x0, y0, z0) * (1.0 - fx) + at(x0 + 1, y0, z0) * fx;
        let c10 = at(x0, y0 + 1, z0) * (1.0 - fx) + at(x0 + 1, y0 + 1, z0) * fx;
        let c01 = at(x0, y0, z0 + 1) * (1.0 - fx) + at(x0 + 1, y0, z0 + 1) * fx;
        let c11 = at(x0, y0 + 1, z0 + 1) * (1.0 - fx) + at(x0 + 1, y0 + 1, z0 + 1) * fx;
        let c0 = c00 * (1.0 - fy) + c10 * fy;
        let c1 = c01 * (1.0 - fy) + c11 * fy;
        c0 * (1.0 - fz) + c1 * fz
    }

    /// Score a pose by interpolation: `O(ligand_atoms)`.
    pub fn score(&self, pose: &RigidTransform) -> f64 {
        let mut total = 0.0;
        for (i, &local) in self.lig_local.iter().enumerate() {
            let p = pose.apply(local);
            let slot = self.type_slot[self.lig_elem[i].index()];
            total += self.interpolate(&self.lj[slot], p);
            if !self.elec.is_empty() {
                total += self.lig_charge[i] * self.interpolate(&self.elec, p);
            }
        }
        total
    }

    /// Score a batch of poses.
    pub fn score_batch(&self, poses: &[RigidTransform]) -> Vec<f64> {
        poses.iter().map(|p| self.score(p)).collect()
    }
}

/// Reference: the exact cutoff score the grid approximates (same cutoff,
/// same terms), for accuracy tests and benches.
pub fn exact_cutoff_score(
    receptor: &Molecule,
    ligand: &Molecule,
    pose: &RigidTransform,
    opts: GridOptions,
) -> f64 {
    let lig = ligand.centered().transformed(pose);
    let lf = Frame::from_molecule(&lig);
    let rf = Frame::from_molecule(receptor);
    let table = PairTable::new(&LjTable::standard());
    let mut total = crate::lj::lj_naive_cutoff(&lf, &rf, &table, opts.cutoff);
    if let Some(eps) = opts.dielectric {
        let c2 = opts.cutoff * opts.cutoff;
        for i in 0..lf.len() {
            for j in 0..rf.len() {
                let dx = lf.x[i] - rf.x[j];
                let dy = lf.y[i] - rf.y[j];
                let dz = lf.z[i] - rf.z[j];
                let r_sq = dx * dx + dy * dy + dz * dz;
                if r_sq <= c2 {
                    total += crate::coulomb::coulomb_pair(lf.charge[i], rf.charge[j], r_sq, eps);
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsmath::RngStream;
    use vsmol::synth;

    fn setup(spacing: f64) -> (Molecule, Molecule, GridScorer) {
        let rec = synth::synth_receptor("r", 300, 3);
        let lig = synth::synth_ligand("l", 10, 4);
        let grid = GridScorer::new(&rec, &lig, GridOptions { spacing, ..Default::default() });
        (rec, lig, grid)
    }

    /// Surface poses for the 300-atom test receptor (radius ≈ 11.7 Å).
    fn surface_poses(n: usize, seed: u64) -> Vec<RigidTransform> {
        let mut rng = RngStream::from_seed(seed);
        (0..n)
            .map(|_| {
                RigidTransform::new(
                    rng.rotation(),
                    rng.unit_vector() * rng.uniform_range(13.0, 17.0),
                )
            })
            .collect()
    }

    #[test]
    fn grid_tracks_exact_scores_on_surface_poses() {
        let (rec, lig, grid) = setup(0.6);
        let mut checked = 0;
        for (k, pose) in surface_poses(12, 5).iter().enumerate() {
            let exact = exact_cutoff_score(&rec, &lig, pose, grid.options());
            if exact > 0.0 {
                // Repulsive pose: near and inside the clamped core the grid
                // only guarantees "bad", not the exact value.
                assert!(grid.score(pose) > 0.0, "pose {k}: clash not flagged");
                continue;
            }
            let approx = grid.score(pose);
            // Grid error scales with the potential's local curvature; on
            // non-clashing surface poses a 0.6 Å grid stays within
            // ~15% + 1.0 absolute.
            let tol = 0.15 * exact.abs() + 1.0;
            assert!((approx - exact).abs() < tol, "pose {k}: grid {approx} vs exact {exact}");
            checked += 1;
        }
        assert!(checked >= 5, "too few non-clashing poses ({checked})");
    }

    #[test]
    fn finer_grids_are_more_accurate() {
        let (rec, lig, _) = setup(0.6);
        let coarse =
            GridScorer::new(&rec, &lig, GridOptions { spacing: 1.5, ..Default::default() });
        let fine = GridScorer::new(&rec, &lig, GridOptions { spacing: 0.5, ..Default::default() });
        let poses = surface_poses(20, 7);
        let err = |g: &GridScorer| -> f64 {
            poses
                .iter()
                .map(|p| (g.score(p) - exact_cutoff_score(&rec, &lig, p, g.options())).abs())
                .sum::<f64>()
        };
        let (ec, ef) = (err(&coarse), err(&fine));
        assert!(ef < ec, "fine {ef} should beat coarse {ec}");
    }

    #[test]
    fn grid_preserves_pose_ranking() {
        // What the metaheuristic needs is the *ordering* of scores, not the
        // values: check rank agreement between grid and exact on a pose set.
        let (rec, lig, grid) = setup(0.6);
        let poses = surface_poses(15, 9);
        let approx: Vec<f64> = poses.iter().map(|p| grid.score(p)).collect();
        let exact: Vec<f64> =
            poses.iter().map(|p| exact_cutoff_score(&rec, &lig, p, grid.options())).collect();
        // Count concordant pairs (Kendall-style).
        let mut concordant = 0;
        let mut total = 0;
        for i in 0..poses.len() {
            for j in (i + 1)..poses.len() {
                if (exact[i] - exact[j]).abs() < 0.2 {
                    continue; // near-ties don't count
                }
                total += 1;
                if (approx[i] < approx[j]) == (exact[i] < exact[j]) {
                    concordant += 1;
                }
            }
        }
        assert!(concordant as f64 >= 0.85 * total as f64, "rank agreement {concordant}/{total}");
    }

    #[test]
    fn far_outside_grid_scores_near_zero() {
        let (_, _, grid) = setup(1.0);
        let far = RigidTransform::from_translation(Vec3::new(500.0, 0.0, 0.0));
        assert!(grid.score(&far).abs() < 1.0, "boundary clamp leaked: {}", grid.score(&far));
    }

    #[test]
    fn electrostatic_grid_contributes() {
        let rec = synth::synth_receptor("r", 200, 8);
        let lig = synth::synth_ligand("l", 8, 9);
        let no_elec =
            GridScorer::new(&rec, &lig, GridOptions { spacing: 1.0, ..Default::default() });
        let with_elec = GridScorer::new(
            &rec,
            &lig,
            GridOptions { spacing: 1.0, dielectric: Some(4.0), ..Default::default() },
        );
        let pose = RigidTransform::from_translation(Vec3::new(12.0, 0.0, 0.0));
        assert_ne!(no_elec.score(&pose), with_elec.score(&pose));
    }

    #[test]
    fn batch_matches_singles() {
        let (_, _, grid) = setup(1.0);
        let poses = surface_poses(6, 11);
        let batch = grid.score_batch(&poses);
        for (p, &b) in poses.iter().zip(&batch) {
            assert_eq!(grid.score(p), b);
        }
    }

    #[test]
    fn footprint_scales_with_types_and_volume() {
        let (_, _, grid) = setup(1.0);
        assert!(grid.footprint_bytes() > 0);
        let (_, _, fine) = setup(0.5);
        assert!(fine.footprint_bytes() > 4 * grid.footprint_bytes());
    }

    #[test]
    #[should_panic]
    fn zero_spacing_panics() {
        let rec = synth::synth_receptor("r", 50, 1);
        let lig = synth::synth_ligand("l", 5, 2);
        GridScorer::new(&rec, &lig, GridOptions { spacing: 0.0, ..Default::default() });
    }
}
