//! Precomputed potential grids — the AutoDock-style scoring optimization.
//!
//! The paper's kernels recompute all `ligand × receptor` pair interactions
//! per conformation. Production docking codes (AutoDock, the paper's ref
//! [24]) instead precompute, once per receptor, a 3-D grid of interaction
//! potentials per ligand atom *type*; scoring a pose then costs one
//! trilinear interpolation per ligand atom — `O(ligand)` instead of
//! `O(ligand × receptor)`, at the price of grid-resolution error and an
//! upfront build (DESIGN §11 documents the error budget).
//!
//! Layout and kernel shape:
//!
//! - [`GridField`] holds every per-type LJ(+H-bond) grid in **one flat SoA
//!   slab** `lj[slot * n_nodes + node]`, plus an optional electrostatic
//!   grid storing potential *per unit charge* (the ligand charge multiplies
//!   in at interpolation time). Node potentials are clamped at
//!   [`MAX_NODE_POTENTIAL`] like AutoDock's maps.
//! - [`GridScorer`] interpolates 8 ligand atoms per step with explicit
//!   [`vsmath::F32x8`] lanes; [`GridScorer::score_scalar`] replays the same
//!   IEEE operations lane by lane and is **bit-identical** (tested), so the
//!   wide path is a pure speedup, never a numerics fork.
//! - Builds are cached per (receptor content, ligand element set, options)
//!   in a small keyed store so repeated screens of the same complex skip
//!   the upfront cost; [`GridScorer::new_traced`] records a
//!   [`vstrace::Event::GridBuilt`] with build time and memory.

use crate::coulomb::COULOMB_K;
use crate::hbond::{hbond_pair, is_hbond_capable_idx};
use crate::lj::{lj_pair, Frame, PairTable, MIN_DIST_SQ};
// DETERMINISM: raw std mutex — the grid cache is process-global memoization that outlives any vscheck exploration, like `shared_pool`'s registry.
use std::sync::{Arc, Mutex, OnceLock};
use vsmath::{Aabb, F32x8, RigidTransform, SpatialGrid, Vec3};
use vsmol::{Element, LjTable, Molecule};

/// Grid build options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridOptions {
    /// Node spacing in Å. The `Default` is a deliberately coarse 0.75 Å —
    /// half the memory and an 8th of the build cost of AutoDock's classic
    /// 0.375 Å, accurate enough for metaheuristic *ranking* (see the rank
    /// tests below); use [`GridOptions::autodock`] when publication-grade
    /// pose energies matter.
    pub spacing: f64,
    /// Margin beyond the receptor bounding box, Å (covers surface spots).
    pub margin: f64,
    /// Pair cutoff while accumulating node potentials, Å.
    pub cutoff: f64,
    /// Include the electrostatic grid (distance-dependent dielectric).
    pub dielectric: Option<f64>,
    /// Bake the 10–12 H-bond term into N/O-capable type grids with this
    /// well depth (the term is pairwise in *element capability* only, so it
    /// precomputes exactly like LJ).
    pub hbond_epsilon: Option<f64>,
}

impl Default for GridOptions {
    fn default() -> Self {
        GridOptions {
            spacing: 0.75,
            margin: 8.0,
            cutoff: 12.0,
            dielectric: None,
            hbond_epsilon: None,
        }
    }
}

impl GridOptions {
    /// AutoDock's classic map resolution: 0.375 Å spacing. 8x the node
    /// count (and build time) of the coarse [`Default`].
    pub fn autodock() -> GridOptions {
        GridOptions { spacing: 0.375, ..GridOptions::default() }
    }
}

/// Cap on stored node potentials: inside the repulsive core the true LJ
/// value diverges and trilinear interpolation of it is meaningless; any
/// pose touching such a node is a rejected clash either way. AutoDock's
/// grid maps clamp identically.
pub const MAX_NODE_POTENTIAL: f32 = 1.0e4;

/// What one grid build cost, for the `GridBuilt` trace event and reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridBuildStats {
    /// Nodes per grid.
    pub nodes: u64,
    /// Grid count: one per ligand element type present, plus the
    /// electrostatic grid when enabled.
    pub grids: u32,
    /// Total grid memory, bytes.
    pub bytes: u64,
    /// Seconds the build took on the caller-supplied clock — the trace
    /// epoch for [`GridScorer::new_traced`], a constant `0.0` untraced.
    /// Excluded from the determinism contract, like `Stamped::mono_ns`.
    pub build_seconds: f64,
    /// Whether this scorer reused a cached field instead of building.
    pub cached: bool,
}

/// Cache key: receptor content hash + ligand element-type bitmask + the
/// exact build options (floats compared by bit pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GridKey {
    receptor: u64,
    rec_atoms: u64,
    elems: u32,
    opts: [u64; 7],
}

fn fnv1a_u64(mut h: u64, w: u64) -> u64 {
    for b in w.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn receptor_hash(m: &Molecule) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in m.positions() {
        h = fnv1a_u64(h, p.x.to_bits());
        h = fnv1a_u64(h, p.y.to_bits());
        h = fnv1a_u64(h, p.z.to_bits());
    }
    for e in m.elements() {
        h = fnv1a_u64(h, e.index() as u64);
    }
    for q in m.charges() {
        h = fnv1a_u64(h, q.to_bits());
    }
    h
}

fn options_key(o: GridOptions) -> [u64; 7] {
    [
        o.spacing.to_bits(),
        o.margin.to_bits(),
        o.cutoff.to_bits(),
        o.dielectric.is_some() as u64,
        o.dielectric.unwrap_or(0.0).to_bits(),
        o.hbond_epsilon.is_some() as u64,
        o.hbond_epsilon.unwrap_or(0.0).to_bits(),
    ]
}

/// The immutable build product: per-type potential grids over one receptor.
/// Shared (`Arc`) between every [`GridScorer`] whose (receptor, ligand
/// element set, options) triple matches.
#[derive(Debug)]
pub struct GridField {
    origin: Vec3,
    spacing: f64,
    dims: [usize; 3],
    n_nodes: usize,
    /// Flat SoA slab: `lj[slot * n_nodes + node]` — type-major so one
    /// type's grid is contiguous and a pose's gathers stay in one slab.
    lj: Vec<f32>,
    /// Electrostatic potential per unit charge (empty when disabled).
    elec: Vec<f32>,
    /// Slot per `Element::index()`, `usize::MAX` when absent.
    type_slot: [usize; Element::COUNT],
    n_slots: usize,
    opts: GridOptions,
    /// Build time in caller-clock seconds (reporting only; `0.0` for the
    /// untraced path).
    build_seconds: f64,
}

impl GridField {
    /// Build the field for one receptor and a ligand element-type bitmask
    /// (bit `Element::index()`). Cost: `nodes × avg-neighbors × types`.
    /// `clock` supplies seconds for the build-time stat — callers pass
    /// [`vstrace::Trace::now_s`] (or a constant) so this crate never reads
    /// the OS clock itself.
    fn build(
        receptor: &Molecule,
        elem_mask: u32,
        opts: GridOptions,
        clock: &dyn Fn() -> f64,
    ) -> GridField {
        assert!(opts.spacing > 0.0, "spacing must be positive");
        assert!(opts.cutoff > 0.0, "cutoff must be positive");
        let t0 = clock();

        // Slots in ascending element-index order (deterministic for a mask).
        let mut type_slot = [usize::MAX; Element::COUNT];
        let mut slot_elem: Vec<u8> = Vec::new();
        for (idx, slot) in type_slot.iter_mut().enumerate() {
            if elem_mask & (1 << idx) != 0 {
                *slot = slot_elem.len();
                slot_elem.push(idx as u8);
            }
        }
        let n_slots = slot_elem.len();

        let bb = Aabb::from_points(receptor.positions()).inflated(opts.margin);
        let extent = bb.extent();
        let dims = [
            (extent.x / opts.spacing).ceil() as usize + 1,
            (extent.y / opts.spacing).ceil() as usize + 1,
            (extent.z / opts.spacing).ceil() as usize + 1,
        ];
        let n_nodes = dims[0] * dims[1] * dims[2];

        let rec_grid = SpatialGrid::build(receptor.positions(), opts.cutoff);
        let table = PairTable::new(&LjTable::standard());
        let rec_elem: Vec<u8> = receptor.elements().iter().map(|e| e.index() as u8).collect();
        let rec_charge = receptor.charges();

        // Per (receptor element, ligand slot) pair parameters, hoisted out
        // of the node loop: LJ (σ², 4ε) plus the H-bond capability gate.
        let pair_params: Vec<Vec<(f64, f64, bool)>> = (0..Element::COUNT as u8)
            .map(|re| {
                slot_elem
                    .iter()
                    .map(|&le| {
                        let (s2, e4) = table.lookup(le, re);
                        let hb = opts.hbond_epsilon.is_some()
                            && is_hbond_capable_idx(le)
                            && is_hbond_capable_idx(re);
                        (s2, e4, hb)
                    })
                    .collect()
            })
            .collect();
        let hb_eps = opts.hbond_epsilon.unwrap_or(0.0);

        let mut lj = vec![0f32; n_slots * n_nodes];
        let mut elec = if opts.dielectric.is_some() { vec![0f32; n_nodes] } else { Vec::new() };

        for iz in 0..dims[2] {
            for iy in 0..dims[1] {
                for ix in 0..dims[0] {
                    let node = (iz * dims[1] + iy) * dims[0] + ix;
                    let p = bb.min + Vec3::new(ix as f64, iy as f64, iz as f64) * opts.spacing;
                    rec_grid.for_each_within(p, opts.cutoff, |j, _, r_sq| {
                        let params = &pair_params[rec_elem[j] as usize];
                        for (t, &(s2, e4, hb)) in params.iter().enumerate() {
                            let mut v = lj_pair(s2, e4, r_sq);
                            if hb {
                                v += hbond_pair(hb_eps, r_sq);
                            }
                            lj[t * n_nodes + node] += v as f32;
                        }
                        if let Some(eps) = opts.dielectric {
                            let r2 = r_sq.max(MIN_DIST_SQ);
                            elec[node] += (COULOMB_K * rec_charge[j] / (eps * r2)) as f32;
                        }
                    });
                    for t in 0..n_slots {
                        let v = &mut lj[t * n_nodes + node];
                        *v = v.min(MAX_NODE_POTENTIAL);
                    }
                }
            }
        }

        GridField {
            origin: bb.min,
            spacing: opts.spacing,
            dims,
            n_nodes,
            lj,
            elec,
            type_slot,
            n_slots,
            opts,
            build_seconds: clock() - t0,
        }
    }

    /// Grid memory footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        (self.lj.len() + self.elec.len()) * std::mem::size_of::<f32>()
    }

    /// Nodes per grid.
    pub fn nodes(&self) -> usize {
        self.n_nodes
    }

    /// Grid count (per-type LJ grids + electrostatic grid when present).
    pub fn grid_count(&self) -> u32 {
        self.n_slots as u32 + u32::from(!self.elec.is_empty())
    }
}

const GRID_CACHE_CAP: usize = 4;

type GridCache = Mutex<Vec<(GridKey, Arc<GridField>)>>;

fn grid_cache() -> &'static GridCache {
    static CACHE: OnceLock<GridCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Look up or build the field for a key. Builds happen *outside* the lock
/// so two threads building different receptors don't serialize; a losing
/// racer adopts the winner's field.
fn cached_field(
    receptor: &Molecule,
    elem_mask: u32,
    opts: GridOptions,
    clock: &dyn Fn() -> f64,
) -> (Arc<GridField>, bool) {
    let key = GridKey {
        receptor: receptor_hash(receptor),
        rec_atoms: receptor.len() as u64,
        elems: elem_mask,
        opts: options_key(opts),
    };
    {
        // PANICS: mutex poisoning means a build already panicked; propagate.
        let cache = grid_cache().lock().expect("grid cache poisoned");
        if let Some((_, f)) = cache.iter().find(|(k, _)| *k == key) {
            return (f.clone(), true);
        }
    }
    let built = Arc::new(GridField::build(receptor, elem_mask, opts, clock));
    // PANICS: mutex poisoning means a build already panicked; propagate.
    let mut cache = grid_cache().lock().expect("grid cache poisoned");
    if let Some((_, f)) = cache.iter().find(|(k, _)| *k == key) {
        return (f.clone(), true);
    }
    if cache.len() == GRID_CACHE_CAP {
        cache.remove(0);
    }
    cache.push((key, built.clone()));
    (built, false)
}

/// Per-chunk interpolation inputs for up to 8 ligand atoms: base node
/// index, per-slot LJ slab index, fractional weights, charge, and a 0/1
/// lane mask (trailing lanes of a short final chunk score 0).
#[derive(Default)]
struct Chunk {
    base: [usize; 8],
    lj_idx: [usize; 8],
    fx: [f32; 8],
    fy: [f32; 8],
    fz: [f32; 8],
    q: [f32; 8],
    mask: [f32; 8],
}

/// `out[l] = f[idx[l] + off]` — a gather at a fixed corner offset.
#[inline]
fn gather_off(f: &[f32], idx: &[usize; 8], off: usize) -> F32x8 {
    let mut a = [0f32; 8];
    for l in 0..8 {
        a[l] = f[idx[l] + off];
    }
    F32x8::from_array(a)
}

/// Wide trilinear interpolation: 8 corner gathers weighted and summed in a
/// fixed order (000, 100, 010, 110, 001, 101, 011, 111). The scalar twin
/// [`trilerp_lane`] replays the same order per lane — keep them in sync.
#[inline]
fn trilerp_wide(
    f: &[f32],
    idx: &[usize; 8],
    ox: usize,
    oy: usize,
    oz: usize,
    w: &[F32x8; 8],
) -> F32x8 {
    let mut v = gather_off(f, idx, 0) * w[0];
    v = v + gather_off(f, idx, ox) * w[1];
    v = v + gather_off(f, idx, oy) * w[2];
    v = v + gather_off(f, idx, ox + oy) * w[3];
    v = v + gather_off(f, idx, oz) * w[4];
    v = v + gather_off(f, idx, ox + oz) * w[5];
    v = v + gather_off(f, idx, oy + oz) * w[6];
    v = v + gather_off(f, idx, ox + oy + oz) * w[7];
    v
}

/// Scalar twin of [`trilerp_wide`]: identical IEEE ops in identical order.
#[inline]
fn trilerp_lane(f: &[f32], i: usize, ox: usize, oy: usize, oz: usize, w: &[f32; 8]) -> f32 {
    let mut v = f[i] * w[0];
    v += f[i + ox] * w[1];
    v += f[i + oy] * w[2];
    v += f[i + ox + oy] * w[3];
    v += f[i + oz] * w[4];
    v += f[i + ox + oz] * w[5];
    v += f[i + oy + oz] * w[6];
    v += f[i + ox + oy + oz] * w[7];
    v
}

/// A ligand bound to a (possibly shared) [`GridField`]: scores poses by
/// trilinear interpolation, `O(ligand_atoms)` per pose.
#[derive(Debug, Clone)]
pub struct GridScorer {
    field: Arc<GridField>,
    lig_local: Vec<Vec3>,
    /// Precomputed LJ slab offset (`slot * n_nodes`) per ligand atom.
    lig_slab: Vec<usize>,
    lig_charge: Vec<f32>,
    stats: GridBuildStats,
}

impl GridScorer {
    /// Build (or fetch from the keyed cache) the grids for a
    /// receptor/ligand pair. Cost on a cache miss:
    /// `nodes × avg-neighbors × ligand-element-types`, paid once.
    pub fn new(receptor: &Molecule, ligand: &Molecule, opts: GridOptions) -> GridScorer {
        // Untraced builds report 0.0 build seconds rather than read the
        // OS clock; [`GridScorer::new_traced`] threads the trace epoch in.
        GridScorer::new_with_clock(receptor, ligand, opts, &|| 0.0)
    }

    fn new_with_clock(
        receptor: &Molecule,
        ligand: &Molecule,
        opts: GridOptions,
        clock: &dyn Fn() -> f64,
    ) -> GridScorer {
        assert!(opts.spacing > 0.0, "spacing must be positive");
        assert!(opts.cutoff > 0.0, "cutoff must be positive");
        let lig = ligand.centered();
        let mut elem_mask = 0u32;
        for &e in lig.elements() {
            elem_mask |= 1 << e.index();
        }
        let (field, cached) = cached_field(receptor, elem_mask, opts, clock);
        let stats = GridBuildStats {
            nodes: field.n_nodes as u64,
            grids: field.grid_count(),
            bytes: field.footprint_bytes() as u64,
            build_seconds: field.build_seconds,
            cached,
        };
        let lig_slab: Vec<usize> =
            lig.elements().iter().map(|e| field.type_slot[e.index()] * field.n_nodes).collect();
        let lig_charge: Vec<f32> = lig.charges().iter().map(|&q| q as f32).collect();
        GridScorer { field, lig_local: lig.positions().to_vec(), lig_slab, lig_charge, stats }
    }

    /// [`GridScorer::new`] plus a [`vstrace::Event::GridBuilt`] record of
    /// what the build cost (or that the cache was hit).
    pub fn new_traced(
        receptor: &Molecule,
        ligand: &Molecule,
        opts: GridOptions,
        trace: &vstrace::Trace,
    ) -> GridScorer {
        let scorer = GridScorer::new_with_clock(receptor, ligand, opts, &|| trace.now_s());
        let s = scorer.stats;
        trace.emit(vstrace::Event::GridBuilt {
            nodes: s.nodes,
            grids: s.grids,
            bytes: s.bytes,
            build_s: s.build_seconds,
            cached: s.cached,
        });
        scorer
    }

    pub fn options(&self) -> GridOptions {
        self.field.opts
    }

    pub fn ligand_atoms(&self) -> usize {
        self.lig_local.len()
    }

    /// Grid memory footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.field.footprint_bytes()
    }

    /// Build cost and cache status for this scorer's field.
    pub fn build_stats(&self) -> GridBuildStats {
        self.stats
    }

    /// Whether two scorers share one cached [`GridField`] allocation.
    pub fn shares_field_with(&self, other: &GridScorer) -> bool {
        Arc::ptr_eq(&self.field, &other.field)
    }

    /// Fill one 8-atom chunk's interpolation inputs. Positions outside the
    /// grid clamp to the boundary (far from the receptor the potential is
    /// ~0 anyway, given the build cutoff). Shared verbatim by the wide and
    /// scalar paths so they interpolate the exact same corners and weights.
    #[inline]
    fn prep_chunk(&self, pos: &dyn Fn(usize) -> Vec3, a0: usize) -> Chunk {
        let f = &*self.field;
        let n = self.lig_local.len();
        let clampf = |v: f64, hi: usize| -> f64 { v.max(0.0).min(hi as f64 - 1.000001) };
        let mut c = Chunk::default();
        for l in 0..F32x8::LANES {
            let a = a0 + l;
            if a >= n {
                continue; // mask stays 0.0; index 0 gathers are in-bounds
            }
            c.mask[l] = 1.0;
            let g = (pos(a) - f.origin) / f.spacing;
            let gx = clampf(g.x, f.dims[0]);
            let gy = clampf(g.y, f.dims[1]);
            let gz = clampf(g.z, f.dims[2]);
            let (x0, y0, z0) = (gx as usize, gy as usize, gz as usize);
            c.fx[l] = (gx - x0 as f64) as f32;
            c.fy[l] = (gy - y0 as f64) as f32;
            c.fz[l] = (gz - z0 as f64) as f32;
            let base = (z0 * f.dims[1] + y0) * f.dims[0] + x0;
            c.base[l] = base;
            c.lj_idx[l] = self.lig_slab[a] + base;
            c.q[l] = self.lig_charge[a];
        }
        c
    }

    /// Wide-lane scoring core: 8 atoms per step through [`F32x8`].
    fn score_wide_with(&self, pos: &dyn Fn(usize) -> Vec3) -> f64 {
        let f = &*self.field;
        let n = self.lig_local.len();
        let (ox, oy, oz) = (1usize, f.dims[0], f.dims[0] * f.dims[1]);
        let one = F32x8::splat(1.0);
        let mut total = 0.0f64;
        let mut a0 = 0;
        while a0 < n {
            let c = self.prep_chunk(pos, a0);
            let (fx, fy, fz) =
                (F32x8::from_array(c.fx), F32x8::from_array(c.fy), F32x8::from_array(c.fz));
            let (wx0, wy0, wz0) = (one - fx, one - fy, one - fz);
            let w = [
                (wx0 * wy0) * wz0,
                (fx * wy0) * wz0,
                (wx0 * fy) * wz0,
                (fx * fy) * wz0,
                (wx0 * wy0) * fz,
                (fx * wy0) * fz,
                (wx0 * fy) * fz,
                (fx * fy) * fz,
            ];
            let mut contrib = trilerp_wide(&f.lj, &c.lj_idx, ox, oy, oz, &w);
            if !f.elec.is_empty() {
                let e = trilerp_wide(&f.elec, &c.base, ox, oy, oz, &w);
                contrib = contrib + F32x8::from_array(c.q) * e;
            }
            total += (contrib * F32x8::from_array(c.mask)).horizontal_sum() as f64;
            a0 += F32x8::LANES;
        }
        total
    }

    /// Scalar fallback: replays the wide path's per-lane IEEE operations in
    /// the same order, so results are bit-identical (tested below).
    fn score_scalar_with(&self, pos: &dyn Fn(usize) -> Vec3) -> f64 {
        let f = &*self.field;
        let n = self.lig_local.len();
        let (ox, oy, oz) = (1usize, f.dims[0], f.dims[0] * f.dims[1]);
        let mut total = 0.0f64;
        let mut a0 = 0;
        while a0 < n {
            let c = self.prep_chunk(pos, a0);
            let mut lanes = [0f32; 8];
            for (l, lane) in lanes.iter_mut().enumerate() {
                let (fx, fy, fz) = (c.fx[l], c.fy[l], c.fz[l]);
                let (wx0, wy0, wz0) = (1.0 - fx, 1.0 - fy, 1.0 - fz);
                let w = [
                    (wx0 * wy0) * wz0,
                    (fx * wy0) * wz0,
                    (wx0 * fy) * wz0,
                    (fx * fy) * wz0,
                    (wx0 * wy0) * fz,
                    (fx * wy0) * fz,
                    (wx0 * fy) * fz,
                    (fx * fy) * fz,
                ];
                let mut contrib = trilerp_lane(&f.lj, c.lj_idx[l], ox, oy, oz, &w);
                if !f.elec.is_empty() {
                    contrib += c.q[l] * trilerp_lane(&f.elec, c.base[l], ox, oy, oz, &w);
                }
                *lane = contrib * c.mask[l];
            }
            total += F32x8::from_array(lanes).horizontal_sum() as f64;
            a0 += F32x8::LANES;
        }
        total
    }

    /// Score a pose by interpolation: `O(ligand_atoms)`.
    pub fn score(&self, pose: &RigidTransform) -> f64 {
        let lig = &self.lig_local;
        self.score_wide_with(&|i| pose.apply(lig[i]))
    }

    /// Scalar-fallback twin of [`GridScorer::score`]; bit-identical.
    pub fn score_scalar(&self, pose: &RigidTransform) -> f64 {
        let lig = &self.lig_local;
        self.score_scalar_with(&|i| pose.apply(lig[i]))
    }

    /// Score already-transformed ligand coordinates in SoA form (the layout
    /// `Scorer::score_bound` produces). Slices must hold `ligand_atoms()`
    /// values in the ligand's atom order.
    pub fn score_frame_soa(&self, x: &[f64], y: &[f64], z: &[f64]) -> f64 {
        assert_eq!(x.len(), self.lig_local.len(), "frame length != ligand atoms");
        self.score_wide_with(&|i| Vec3::new(x[i], y[i], z[i]))
    }

    /// Scalar-fallback twin of [`GridScorer::score_frame_soa`].
    pub fn score_frame_soa_scalar(&self, x: &[f64], y: &[f64], z: &[f64]) -> f64 {
        assert_eq!(x.len(), self.lig_local.len(), "frame length != ligand atoms");
        self.score_scalar_with(&|i| Vec3::new(x[i], y[i], z[i]))
    }

    /// Score a batch of poses.
    pub fn score_batch(&self, poses: &[RigidTransform]) -> Vec<f64> {
        poses.iter().map(|p| self.score(p)).collect()
    }
}

/// Reference: the exact cutoff score the grid approximates (same cutoff,
/// same terms — LJ, Coulomb, H-bond as enabled), for accuracy tests and
/// benches.
pub fn exact_cutoff_score(
    receptor: &Molecule,
    ligand: &Molecule,
    pose: &RigidTransform,
    opts: GridOptions,
) -> f64 {
    let lig = ligand.centered().transformed(pose);
    let lf = Frame::from_molecule(&lig);
    let rf = Frame::from_molecule(receptor);
    let table = PairTable::new(&LjTable::standard());
    let mut total = crate::lj::lj_naive_cutoff(&lf, &rf, &table, opts.cutoff);
    if opts.dielectric.is_some() || opts.hbond_epsilon.is_some() {
        let c2 = opts.cutoff * opts.cutoff;
        for i in 0..lf.len() {
            for j in 0..rf.len() {
                let dx = lf.x[i] - rf.x[j];
                let dy = lf.y[i] - rf.y[j];
                let dz = lf.z[i] - rf.z[j];
                let r_sq = dx * dx + dy * dy + dz * dz;
                if r_sq > c2 {
                    continue;
                }
                if let Some(eps) = opts.dielectric {
                    total += crate::coulomb::coulomb_pair(lf.charge[i], rf.charge[j], r_sq, eps);
                }
                if let Some(hb) = opts.hbond_epsilon {
                    if is_hbond_capable_idx(lf.elem[i]) && is_hbond_capable_idx(rf.elem[j]) {
                        total += hbond_pair(hb, r_sq);
                    }
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsmath::RngStream;
    use vsmol::synth;

    fn setup(spacing: f64) -> (Molecule, Molecule, GridScorer) {
        let rec = synth::synth_receptor("r", 300, 3);
        let lig = synth::synth_ligand("l", 10, 4);
        let grid = GridScorer::new(&rec, &lig, GridOptions { spacing, ..Default::default() });
        (rec, lig, grid)
    }

    /// Surface poses for the 300-atom test receptor (radius ≈ 11.7 Å).
    fn surface_poses(n: usize, seed: u64) -> Vec<RigidTransform> {
        let mut rng = RngStream::from_seed(seed);
        (0..n)
            .map(|_| {
                RigidTransform::new(
                    rng.rotation(),
                    rng.unit_vector() * rng.uniform_range(13.0, 17.0),
                )
            })
            .collect()
    }

    #[test]
    fn grid_tracks_exact_scores_on_surface_poses() {
        let (rec, lig, grid) = setup(0.6);
        let mut checked = 0;
        for (k, pose) in surface_poses(12, 5).iter().enumerate() {
            let exact = exact_cutoff_score(&rec, &lig, pose, grid.options());
            if exact > 0.0 {
                // Repulsive pose: near and inside the clamped core the grid
                // only guarantees "bad", not the exact value.
                assert!(grid.score(pose) > 0.0, "pose {k}: clash not flagged");
                continue;
            }
            let approx = grid.score(pose);
            // Grid error scales with the potential's local curvature; on
            // non-clashing surface poses a 0.6 Å grid stays within
            // ~15% + 1.0 absolute.
            let tol = 0.15 * exact.abs() + 1.0;
            assert!((approx - exact).abs() < tol, "pose {k}: grid {approx} vs exact {exact}");
            checked += 1;
        }
        assert!(checked >= 5, "too few non-clashing poses ({checked})");
    }

    #[test]
    fn finer_grids_are_more_accurate() {
        let (rec, lig, _) = setup(0.6);
        let coarse =
            GridScorer::new(&rec, &lig, GridOptions { spacing: 1.5, ..Default::default() });
        let fine = GridScorer::new(&rec, &lig, GridOptions { spacing: 0.5, ..Default::default() });
        let poses = surface_poses(20, 7);
        let err = |g: &GridScorer| -> f64 {
            poses
                .iter()
                .map(|p| (g.score(p) - exact_cutoff_score(&rec, &lig, p, g.options())).abs())
                .sum::<f64>()
        };
        let (ec, ef) = (err(&coarse), err(&fine));
        assert!(ef < ec, "fine {ef} should beat coarse {ec}");
    }

    #[test]
    fn grid_preserves_pose_ranking() {
        // What the metaheuristic needs is the *ordering* of scores, not the
        // values: check rank agreement between grid and exact on a pose set.
        let (rec, lig, grid) = setup(0.6);
        let poses = surface_poses(15, 9);
        let approx: Vec<f64> = poses.iter().map(|p| grid.score(p)).collect();
        let exact: Vec<f64> =
            poses.iter().map(|p| exact_cutoff_score(&rec, &lig, p, grid.options())).collect();
        // Count concordant pairs (Kendall-style).
        let mut concordant = 0;
        let mut total = 0;
        for i in 0..poses.len() {
            for j in (i + 1)..poses.len() {
                if (exact[i] - exact[j]).abs() < 0.2 {
                    continue; // near-ties don't count
                }
                total += 1;
                if (approx[i] < approx[j]) == (exact[i] < exact[j]) {
                    concordant += 1;
                }
            }
        }
        assert!(concordant as f64 >= 0.85 * total as f64, "rank agreement {concordant}/{total}");
    }

    #[test]
    fn far_outside_grid_scores_near_zero() {
        let (_, _, grid) = setup(1.0);
        let far = RigidTransform::from_translation(Vec3::new(500.0, 0.0, 0.0));
        assert!(grid.score(&far).abs() < 1.0, "boundary clamp leaked: {}", grid.score(&far));
    }

    #[test]
    fn electrostatic_grid_contributes() {
        let rec = synth::synth_receptor("r", 200, 8);
        let lig = synth::synth_ligand("l", 8, 9);
        let no_elec =
            GridScorer::new(&rec, &lig, GridOptions { spacing: 1.0, ..Default::default() });
        let with_elec = GridScorer::new(
            &rec,
            &lig,
            GridOptions { spacing: 1.0, dielectric: Some(4.0), ..Default::default() },
        );
        let pose = RigidTransform::from_translation(Vec3::new(12.0, 0.0, 0.0));
        assert_ne!(no_elec.score(&pose), with_elec.score(&pose));
    }

    #[test]
    fn hbond_term_bakes_into_capable_grids() {
        let rec = synth::synth_receptor("r", 200, 8);
        let lig = synth::synth_ligand("l", 8, 9);
        assert!(
            lig.elements().iter().any(|&e| matches!(e, Element::N | Element::O)),
            "test ligand must carry an H-bond-capable atom"
        );
        let plain = GridScorer::new(&rec, &lig, GridOptions { spacing: 0.6, ..Default::default() });
        let hb = GridScorer::new(
            &rec,
            &lig,
            GridOptions { spacing: 0.6, hbond_epsilon: Some(1.0), ..Default::default() },
        );
        let pose = RigidTransform::from_translation(Vec3::new(12.0, 0.0, 0.0));
        assert_ne!(plain.score(&pose), hb.score(&pose), "H-bond grids should shift the score");
        // And the H-bond grid tracks the H-bond-inclusive exact reference.
        let exact = exact_cutoff_score(&rec, &lig, &pose, hb.options());
        if exact <= 0.0 {
            let tol = 0.15 * exact.abs() + 1.0;
            assert!((hb.score(&pose) - exact).abs() < tol, "{} vs {exact}", hb.score(&pose));
        }
    }

    #[test]
    fn wide_and_scalar_paths_bit_identical() {
        let rec = synth::synth_receptor("r", 200, 8);
        let lig = synth::synth_ligand("l", 13, 9); // 13 atoms: exercises a masked tail chunk
        let grid = GridScorer::new(
            &rec,
            &lig,
            GridOptions { spacing: 0.8, dielectric: Some(4.0), ..Default::default() },
        );
        let mut poses = surface_poses(16, 21);
        poses.push(RigidTransform::from_translation(Vec3::new(400.0, -30.0, 2.0)));
        for (k, pose) in poses.iter().enumerate() {
            let w = grid.score(pose);
            let s = grid.score_scalar(pose);
            assert_eq!(w.to_bits(), s.to_bits(), "pose {k}: wide {w} != scalar {s}");
        }
    }

    #[test]
    fn frame_soa_matches_pose_scoring() {
        let (_, _, grid) = setup(1.0);
        for pose in surface_poses(4, 23) {
            let n = grid.ligand_atoms();
            let (mut x, mut y, mut z) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
            for (i, &p) in grid.lig_local.iter().enumerate() {
                let q = pose.apply(p);
                (x[i], y[i], z[i]) = (q.x, q.y, q.z);
            }
            let a = grid.score(&pose);
            let b = grid.score_frame_soa(&x, &y, &z);
            let c = grid.score_frame_soa_scalar(&x, &y, &z);
            assert_eq!(a.to_bits(), b.to_bits());
            assert_eq!(b.to_bits(), c.to_bits());
        }
    }

    #[test]
    fn batch_matches_singles() {
        let (_, _, grid) = setup(1.0);
        let poses = surface_poses(6, 11);
        let batch = grid.score_batch(&poses);
        for (p, &b) in poses.iter().zip(&batch) {
            assert_eq!(grid.score(p), b);
        }
    }

    #[test]
    fn footprint_scales_with_types_and_volume() {
        let (_, _, grid) = setup(1.0);
        assert!(grid.footprint_bytes() > 0);
        let (_, _, fine) = setup(0.5);
        assert!(fine.footprint_bytes() > 4 * grid.footprint_bytes());
    }

    #[test]
    fn default_is_deliberately_coarse_and_autodock_preset_is_finer() {
        assert_eq!(GridOptions::default().spacing, 0.75, "documented coarse default");
        assert_eq!(GridOptions::autodock().spacing, 0.375, "AutoDock map resolution");
        assert_eq!(GridOptions::autodock().cutoff, GridOptions::default().cutoff);
    }

    #[test]
    fn build_cache_shares_fields_between_scorers() {
        // Dedicated receptor + spacing so no other test matches this key.
        let rec = synth::synth_receptor("cache-test", 120, 77);
        let lig = synth::synth_ligand("cache-lig", 9, 78);
        let opts = GridOptions { spacing: 0.9, ..Default::default() };
        let a = GridScorer::new(&rec, &lig, opts);
        let b = GridScorer::new(&rec, &lig, opts);
        assert!(b.shares_field_with(&a), "second build must hit the cache");
        assert!(b.build_stats().cached, "cache hit must be visible in stats");
        assert_eq!(a.build_stats().bytes, b.build_stats().bytes);
        // A different pitch is a different key.
        let c = GridScorer::new(&rec, &lig, GridOptions { spacing: 1.1, ..Default::default() });
        assert!(!c.shares_field_with(&a));
    }

    #[test]
    fn traced_build_emits_grid_built_event() {
        let rec = synth::synth_receptor("trace-test", 110, 81);
        let lig = synth::synth_ligand("trace-lig", 7, 82);
        let opts = GridOptions { spacing: 1.0, ..Default::default() };
        let trace = vstrace::Trace::new();
        let g = GridScorer::new_traced(&rec, &lig, opts, &trace);
        let data = trace.snapshot();
        let built: Vec<_> = data
            .payloads()
            .into_iter()
            .filter(|e| matches!(e, vstrace::Event::GridBuilt { .. }))
            .collect();
        assert_eq!(built.len(), 1);
        if let vstrace::Event::GridBuilt { nodes, grids, bytes, .. } = built[0] {
            assert_eq!(nodes, g.build_stats().nodes);
            assert_eq!(grids, g.build_stats().grids);
            assert_eq!(bytes, g.build_stats().bytes);
        }
    }

    #[test]
    #[should_panic]
    fn zero_spacing_panics() {
        let rec = synth::synth_receptor("r", 50, 1);
        let lig = synth::synth_ligand("l", 5, 2);
        GridScorer::new(&rec, &lig, GridOptions { spacing: 0.0, ..Default::default() });
    }
}
