//! A persistent CPU worker pool for batch scoring.
//!
//! The paper's CPU baseline ("OpenMP") keeps a thread team alive for the
//! whole run; the previous implementation here spawned and joined fresh OS
//! threads on *every batch*, which is pure host-side overhead in the hot
//! loop. [`CpuPool`] replaces that: workers are spawned once, parked on a
//! condvar, and fed work descriptors; each worker owns a [`PoseScratch`]
//! that it reuses across batches, so the steady-state batch path performs
//! no thread creation and no per-pose allocation.
//!
//! # Determinism
//!
//! Work is split into the same contiguous chunks as the old
//! spawn-per-batch path (`ceil(len / workers)` per worker, in order), and
//! every pose is scored by the identical serial kernel, so results are
//! bit-identical to the serial [`Scorer::score_batch`] path regardless of
//! worker count or interleaving — the schedule-invariance invariant
//! (DESIGN §7).
//!
//! # Safety model
//!
//! A submitted job carries raw pointers to the caller's pose/score slices.
//! The pool's `State` has a single job slot, so submissions are serialized
//! through a submitter mutex held for the entire `run_job` — concurrent
//! callers (shared pools are handed to every evaluator with the same
//! thread count) queue up rather than clobbering each other's job.
//! Submission blocks until every worker has signalled completion, so the
//! borrows those pointers were derived from strictly outlive all worker
//! access; workers only touch disjoint index ranges, so no two threads
//! alias the same element.
//!
//! # Panics
//!
//! Workers run each job body under `catch_unwind`: a panicking scorer
//! cannot wedge the completion count. The panic is re-raised on the
//! submitting thread ("scoring worker panicked"), and the pool remains
//! usable for subsequent batches.

use crate::scorer::{PoseScratch, ScoreBatch, Scorer};
use crate::sync::thread::{Builder, JoinHandle};
use crate::sync::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use vsmath::RigidTransform;
use vsmol::Conformation;

/// What one batch submission asks the workers to do.
#[derive(Clone, Copy)]
enum JobKind {
    /// Score `poses[i]` into `out[i]`.
    Poses { poses: *const RigidTransform, out: *mut f64 },
    /// Score `confs[i].pose` into `confs[i].score`.
    Confs { confs: *mut Conformation },
    /// Test-only: panic in every worker, to pin panic propagation.
    #[cfg(test)]
    Panic,
}

#[derive(Clone, Copy)]
struct Job {
    scorer: *const Scorer,
    kind: JobKind,
    len: usize,
    /// Number of workers the length was chunked over.
    workers: usize,
}

// SAFETY: the pointers are only dereferenced between job publication and
// the completion signal, during which the submitting thread is blocked in
// `run_job` keeping the underlying borrows alive; chunk ranges are
// disjoint per worker.
unsafe impl Send for Job {}

struct State {
    generation: u64,
    shutdown: bool,
    job: Option<Job>,
    remaining: usize,
    /// Set by any worker whose job body panicked; re-raised by the
    /// submitter once the batch completes.
    panicked: bool,
}

struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// A fixed-size team of persistent scoring workers.
///
/// Dropping the pool shuts the workers down and joins them — no threads
/// outlive the pool.
pub struct CpuPool {
    shared: Arc<Shared>,
    /// Serializes submitters: the pool has one job slot, and shared pools
    /// (`shared_pool`) are reachable from many threads at once.
    submit: Mutex<()>,
    workers: Vec<JoinHandle<()>>,
}

impl CpuPool {
    /// Spawn a pool of `threads` persistent workers (at least one).
    pub fn new(threads: usize) -> CpuPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                generation: 0,
                shutdown: false,
                job: None,
                remaining: 0,
                panicked: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                Builder::new()
                    .name(format!("vsscore-cpu-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    // PANICS: worker spawn fails only on OS thread exhaustion; the pool has no degraded mode.
                    .expect("failed to spawn scoring worker")
            })
            .collect();
        CpuPool { shared, submit: Mutex::new(()), workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Run one batch across the pool — same input shape as
    /// [`Scorer::score_batch`]; this is the [`crate::Exec::Pool`] backend.
    /// Bit-identical to the serial path for a fixed kernel.
    pub fn score_batch(&self, scorer: &Scorer, input: ScoreBatch<'_>) {
        input.assert_valid();
        if input.is_empty() {
            return;
        }
        let len = input.len();
        let kind = match input {
            ScoreBatch::Poses { poses, out } => {
                JobKind::Poses { poses: poses.as_ptr(), out: out.as_mut_ptr() }
            }
            ScoreBatch::Confs(confs) => JobKind::Confs { confs: confs.as_mut_ptr() },
        };
        self.run_job(Job { scorer, kind, len, workers: self.workers.len() });
    }

    /// Publish a job to every worker and block until all have finished.
    ///
    /// Holds the submitter lock for the whole call: the single job slot in
    /// `State` can only describe one batch, and the raw pointers in `job`
    /// must not be overwritten while workers still dereference them. A
    /// worker panic is re-raised here after all workers have checked in.
    fn run_job(&self, job: Job) {
        // `into_inner` rather than `expect`: a prior submitter that
        // re-raised a worker panic while holding this guard must not
        // poison the pool for everyone after it.
        let _submitting = self.submit.lock().unwrap_or_else(|e| e.into_inner());
        {
            // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            st.job = Some(job);
            st.generation += 1;
            st.remaining = self.workers.len();
        }
        self.shared.work_cv.notify_all();

        let panicked = {
            // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            while st.remaining > 0 {
                // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating is deliberate.
                st = self.shared.done_cv.wait(st).expect("pool mutex poisoned");
            }
            st.job = None;
            std::mem::take(&mut st.panicked)
        };
        if panicked {
            panic!("scoring worker panicked");
        }
    }
}

impl Drop for CpuPool {
    fn drop(&mut self) {
        {
            // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut scratch = PoseScratch::new();
    let mut seen_generation = 0u64;
    loop {
        let job = {
            // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
            let mut st = shared.state.lock().expect("pool mutex poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen_generation {
                    seen_generation = st.generation;
                    // PANICS: a generation bump always publishes a job; the model tests explore this exhaustively.
                    break st.job.expect("job published with generation bump");
                }
                // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating is deliberate.
                st = shared.work_cv.wait(st).expect("pool mutex poisoned");
            }
        };

        // Same contiguous chunking as serial iteration order: worker i
        // owns [i*chunk, (i+1)*chunk) ∩ [0, len). The body runs under
        // catch_unwind so a panicking scorer still decrements `remaining`
        // (otherwise the submitter would block forever); the panic is
        // recorded and re-raised by `run_job`.
        let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let chunk = job.len.div_ceil(job.workers);
            let start = (index * chunk).min(job.len);
            let end = ((index + 1) * chunk).min(job.len);
            if start < end {
                // SAFETY: see the module-level safety model; the submitting
                // thread blocks until `remaining` hits zero, and [start, end)
                // ranges are disjoint across workers.
                let scorer = unsafe { &*job.scorer };
                match job.kind {
                    // SAFETY: [start, end) ⊆ [0, job.len) and chunk ranges
                    // are disjoint per worker, so `poses`/`out` elements in
                    // this range are accessed by this thread only; both
                    // borrows outlive the job (submitter blocked).
                    JobKind::Poses { poses, out } => unsafe {
                        let poses = std::slice::from_raw_parts(poses.add(start), end - start);
                        let out = std::slice::from_raw_parts_mut(out.add(start), end - start);
                        scorer.score_batch_serial(ScoreBatch::Poses { poses, out }, &mut scratch);
                    },
                    // SAFETY: same disjoint-chunk argument for the in-place
                    // conformation variant.
                    JobKind::Confs { confs } => unsafe {
                        let confs = std::slice::from_raw_parts_mut(confs.add(start), end - start);
                        scorer.score_batch_serial(ScoreBatch::Confs(confs), &mut scratch);
                    },
                    #[cfg(test)]
                    JobKind::Panic => panic!("induced test panic"),
                }
            }
        }));

        // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
        let mut st = shared.state.lock().expect("pool mutex poisoned");
        if body.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// Process-wide shared pools, one per distinct thread count.
///
/// The [`crate::Exec::Pool`] policy of [`Scorer::score_batch`] and
/// `metaheur::CpuEvaluator` route through these so that repeated
/// evaluator construction (common in the experiment runners) still reuses
/// one persistent thread team instead of growing a new one each time.
/// Shared pools live for the process; ad-hoc pools from [`CpuPool::new`]
/// join their workers on drop.
pub fn shared_pool(threads: usize) -> Arc<CpuPool> {
    // The registry is process-global state that outlives any one vscheck
    // exploration, so it must never be scheduler-managed.
    // DETERMINISM: deliberately raw `std::sync::Mutex`, not the crate::sync facade (see above).
    static POOLS: OnceLock<std::sync::Mutex<BTreeMap<usize, Arc<CpuPool>>>> = OnceLock::new();
    let threads = threads.max(1);
    let pools = POOLS.get_or_init(|| std::sync::Mutex::new(BTreeMap::new()));
    // PANICS: lock poisoning means a sibling thread panicked while holding it; propagating the panic is deliberate.
    let mut map = pools.lock().expect("shared pool registry poisoned");
    Arc::clone(map.entry(threads).or_insert_with(|| Arc::new(CpuPool::new(threads))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scorer::ScorerOptions;
    use vsmath::RngStream;
    use vsmol::synth;

    fn scorer() -> Scorer {
        let rec = synth::synth_receptor("r", 500, 5);
        let lig = synth::synth_ligand("l", 14, 6);
        Scorer::new(&rec, &lig, ScorerOptions::default())
    }

    fn poses(n: usize, seed: u64) -> Vec<RigidTransform> {
        let mut rng = RngStream::from_seed(seed);
        (0..n).map(|_| RigidTransform::new(rng.rotation(), rng.in_ball(25.0))).collect()
    }

    /// Serial reference scores through the unified entry point.
    fn serial_scores(s: &Scorer, ps: &[RigidTransform]) -> Vec<f64> {
        let mut out = vec![0.0; ps.len()];
        let mut scratch = PoseScratch::new();
        s.score_batch(
            ScoreBatch::Poses { poses: ps, out: &mut out },
            &mut scratch,
            crate::Exec::Serial,
        );
        out
    }

    fn pool_scores(pool: &CpuPool, s: &Scorer, ps: &[RigidTransform]) -> Vec<f64> {
        let mut out = vec![0.0; ps.len()];
        pool.score_batch(s, ScoreBatch::Poses { poses: ps, out: &mut out });
        out
    }

    #[test]
    fn pool_matches_serial_bitwise() {
        let s = scorer();
        let ps = poses(41, 1);
        let serial = serial_scores(&s, &ps);
        for threads in [1, 2, 3, 7, 16] {
            let pool = CpuPool::new(threads);
            assert_eq!(serial, pool_scores(&pool, &s, &ps), "threads={threads}");
        }
    }

    #[test]
    fn pool_matches_serial_bitwise_for_every_kernel() {
        // The per-kernel bit-identity policy (DESIGN §7): for a *fixed*
        // kernel, the pool path must reproduce serial scores bitwise.
        use crate::scorer::{Kernel, ScoringModel};
        let rec = synth::synth_receptor("r", 500, 5);
        let lig = synth::synth_ligand("l", 14, 6);
        let ps = poses(23, 2);
        let model = ScoringModel::Full { dielectric: 4.0, hbond_epsilon: 1.0 };
        for kernel in [Kernel::Naive, Kernel::Tiled, Kernel::Run, Kernel::Fused] {
            let s = Scorer::new(&rec, &lig, ScorerOptions { model, kernel });
            let serial = serial_scores(&s, &ps);
            let pool = CpuPool::new(3);
            let out = pool_scores(&pool, &s, &ps);
            for (a, b) in serial.iter().zip(&out) {
                assert_eq!(a.to_bits(), b.to_bits(), "kernel {kernel:?}");
            }
        }
    }

    #[test]
    fn pool_reuse_across_batches() {
        let s = scorer();
        let pool = CpuPool::new(4);
        for seed in 0..5 {
            let ps = poses(17 + seed as usize, seed);
            assert_eq!(pool_scores(&pool, &s, &ps), serial_scores(&s, &ps), "batch #{seed}");
        }
    }

    #[test]
    fn pool_handles_empty_and_single() {
        let s = scorer();
        let pool = CpuPool::new(4);
        assert!(pool_scores(&pool, &s, &[]).is_empty());
        let one = poses(1, 9);
        assert_eq!(pool_scores(&pool, &s, &one), serial_scores(&s, &one));
    }

    #[test]
    fn pool_scores_conformations_in_place() {
        let s = scorer();
        let pool = CpuPool::new(3);
        let mut rng = RngStream::from_seed(11);
        let mut confs: Vec<Conformation> = (0..23)
            .map(|_| Conformation::new(RigidTransform::new(rng.rotation(), rng.in_ball(25.0)), 0))
            .collect();
        let want: Vec<f64> = serial_scores(&s, &confs.iter().map(|c| c.pose).collect::<Vec<_>>());
        pool.score_batch(&s, ScoreBatch::Confs(&mut confs));
        let got: Vec<f64> = confs.iter().map(|c| c.score).collect();
        assert_eq!(want, got);
    }

    #[test]
    fn drop_joins_workers() {
        // Every worker owns an Arc clone of the pool's shared state;
        // join-on-drop guarantees all clones are gone when drop returns.
        let pool = CpuPool::new(4);
        let weak = Arc::downgrade(&pool.shared);
        let s = scorer();
        let ps = poses(8, 5);
        let _ = pool_scores(&pool, &s, &ps);
        drop(pool);
        assert!(weak.upgrade().is_none(), "drop must join all pool workers");
    }

    #[test]
    fn concurrent_submitters_are_serialized() {
        // Shared pools hand the same CpuPool to every caller with the same
        // thread count; parallel submissions must queue, not race on the
        // single job slot (each used to be able to clobber the other's
        // job, leaving batches unscored or `remaining` underflowed).
        let pool = CpuPool::new(4);
        let s = scorer();
        let ps = poses(33, 7);
        let want = serial_scores(&s, &ps);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..10 {
                        assert_eq!(want, pool_scores(&pool, &s, &ps));
                    }
                });
            }
        });
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let s = scorer();
        let pool = CpuPool::new(3);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_job(Job { scorer: &s, kind: JobKind::Panic, len: 3, workers: 3 });
        }));
        assert!(caught.is_err(), "worker panic must re-raise on the submitter");
        // The pool must stay fully usable: workers caught their panics and
        // the completion bookkeeping recovered.
        let ps = poses(19, 3);
        assert_eq!(pool_scores(&pool, &s, &ps), serial_scores(&s, &ps));
    }

    #[test]
    fn shared_pool_is_cached_per_thread_count() {
        let a = shared_pool(2);
        let b = shared_pool(2);
        assert!(Arc::ptr_eq(&a, &b));
        let c = shared_pool(3);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.threads(), 3);
    }
}

/// Exhaustive interleaving checks of the pool's submit/park protocol,
/// via the `vscheck` model checker (run with
/// `cargo test -p vsscore --features vscheck-model model_`).
///
/// These pin the invariants PR 1 fixed by hand: no batch left unscored,
/// no `remaining` underflow (an underflow aborts a schedule as a panic in
/// debug builds), concurrent submitters serialized through the submit
/// lock, a worker panic observed by the submitter without wedging the
/// pool, and drop joining every worker (a lost shutdown wakeup shows up
/// as a deadlock).
#[cfg(all(test, feature = "vscheck-model"))]
mod model_tests {
    use super::*;
    use crate::scorer::ScorerOptions;
    use vscheck::{explore, Config};
    use vsmath::RngStream;
    use vsmol::synth;

    /// Tiny scorer: immutable after construction and free of facade sync
    /// ops, so sharing one across schedules is deterministic.
    fn tiny_scorer() -> Arc<Scorer> {
        let rec = synth::synth_receptor("r", 30, 1);
        let lig = synth::synth_ligand("l", 4, 1);
        Arc::new(Scorer::new(&rec, &lig, ScorerOptions::default()))
    }

    fn tiny_poses(n: usize) -> Vec<RigidTransform> {
        let mut rng = RngStream::from_seed(7);
        (0..n).map(|_| RigidTransform::new(rng.rotation(), rng.in_ball(25.0))).collect()
    }

    fn serial(s: &Scorer, ps: &[RigidTransform]) -> Vec<f64> {
        let mut out = vec![0.0; ps.len()];
        let mut scratch = PoseScratch::new();
        s.score_batch(
            ScoreBatch::Poses { poses: ps, out: &mut out },
            &mut scratch,
            crate::Exec::Serial,
        );
        out
    }

    #[test]
    fn model_no_batch_left_unscored() {
        let s = tiny_scorer();
        let ps = tiny_poses(3);
        let want = serial(&s, &ps);
        let report = explore(Config::with_bound(2), move || {
            let pool = CpuPool::new(2);
            let mut out = vec![f64::NAN; ps.len()];
            pool.score_batch(&s, ScoreBatch::Poses { poses: &ps, out: &mut out });
            for (got, want) in out.iter().zip(&want) {
                assert_eq!(got.to_bits(), want.to_bits(), "pose left unscored or misscored");
            }
            drop(pool); // a lost shutdown wakeup would deadlock here
        });
        report.assert_passed();
        assert!(report.complete, "bounded state space must be exhausted");
    }

    #[test]
    fn model_two_batches_back_to_back() {
        // The generation handshake must not lose or double-run a batch
        // when a worker is still parked (or not yet parked) from the
        // previous one.
        let s = tiny_scorer();
        let ps = tiny_poses(2);
        let want = serial(&s, &ps);
        let report = explore(Config::with_bound(2), move || {
            let pool = CpuPool::new(1);
            for _ in 0..2 {
                let mut out = vec![f64::NAN; ps.len()];
                pool.score_batch(&s, ScoreBatch::Poses { poses: &ps, out: &mut out });
                for (got, want) in out.iter().zip(&want) {
                    assert_eq!(got.to_bits(), want.to_bits());
                }
            }
        });
        report.assert_passed();
        assert!(report.complete);
    }

    #[test]
    fn model_concurrent_submitters_are_serialized() {
        // Two submitters share one pool: each must get its own complete,
        // correct result — the single job slot must never be clobbered
        // (the PR 1 race) and `remaining` must never underflow.
        let s = tiny_scorer();
        let ps = tiny_poses(2);
        let want = serial(&s, &ps);
        let report = explore(Config::with_bound(1), move || {
            let pool = Arc::new(CpuPool::new(1));
            let (p2, s2, ps2, want2) =
                (Arc::clone(&pool), Arc::clone(&s), ps.clone(), want.clone());
            let other = vscheck::thread::spawn(move || {
                let mut out = vec![f64::NAN; ps2.len()];
                p2.score_batch(&s2, ScoreBatch::Poses { poses: &ps2, out: &mut out });
                for (got, want) in out.iter().zip(&want2) {
                    assert_eq!(got.to_bits(), want.to_bits(), "submitter B clobbered");
                }
            });
            let mut out = vec![f64::NAN; ps.len()];
            pool.score_batch(&s, ScoreBatch::Poses { poses: &ps, out: &mut out });
            for (got, want) in out.iter().zip(&want) {
                assert_eq!(got.to_bits(), want.to_bits(), "submitter A clobbered");
            }
            other.join().unwrap();
        });
        report.assert_passed();
        assert!(report.complete);
    }

    #[test]
    fn model_worker_panic_reaches_submitter_and_pool_survives() {
        let s = tiny_scorer();
        let ps = tiny_poses(2);
        let want = serial(&s, &ps);
        let report = explore(Config::with_bound(2), move || {
            let pool = CpuPool::new(1);
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run_job(Job { scorer: &*s, kind: JobKind::Panic, len: 1, workers: 1 });
            }));
            assert!(caught.is_err(), "worker panic must re-raise on the submitter");
            // Completion bookkeeping must have recovered: the next batch
            // runs to completion with correct scores.
            let mut out = vec![f64::NAN; ps.len()];
            pool.score_batch(&s, ScoreBatch::Poses { poses: &ps, out: &mut out });
            for (got, want) in out.iter().zip(&want) {
                assert_eq!(got.to_bits(), want.to_bits());
            }
        });
        report.assert_passed();
        assert!(report.complete);
    }

    #[test]
    fn model_idle_pool_drop_joins_cleanly() {
        // Spawn-then-shutdown with no job: the shutdown flag and wakeup
        // must reach workers in every interleaving (lost wakeup = deadlock).
        let report = explore(Config::with_bound(2), || {
            let pool = CpuPool::new(2);
            drop(pool);
        });
        report.assert_passed();
        assert!(report.complete);
    }
}
