//! Coulomb (electrostatic) term.
//!
//! The paper's baseline scoring function is Lennard-Jones only (§3.1), but
//! §2.1 identifies Coulomb as the other relevant non-bonded potential and
//! §6 calls richer scoring functions future work. This module implements
//! the standard docking form with a distance-dependent dielectric
//! `ε(r) = ε_scale · r`, giving pair energies `k·qᵢqⱼ / (ε_scale·r²)` —
//! conveniently sqrt-free, like the LJ kernel.

use crate::lj::{Frame, MIN_DIST_SQ};

/// Coulomb constant in kcal·Å/(mol·e²).
pub const COULOMB_K: f64 = 332.0636;

/// Default dielectric scale for the distance-dependent dielectric.
pub const DEFAULT_DIELECTRIC: f64 = 4.0;

/// Pair energy with distance-dependent dielectric at squared distance
/// `r_sq` (clamped like the LJ kernel).
#[inline(always)]
pub fn coulomb_pair(qi: f64, qj: f64, r_sq: f64, dielectric_scale: f64) -> f64 {
    let r2 = if r_sq < MIN_DIST_SQ { MIN_DIST_SQ } else { r_sq };
    COULOMB_K * qi * qj / (dielectric_scale * r2)
}

/// All-pairs electrostatic energy between two frames.
pub fn coulomb_naive(lig: &Frame, rec: &Frame, dielectric_scale: f64) -> f64 {
    assert!(dielectric_scale > 0.0, "dielectric scale must be positive");
    let mut total = 0.0;
    for i in 0..lig.len() {
        let (lx, ly, lz, qi) = (lig.x[i], lig.y[i], lig.z[i], lig.charge[i]);
        if qi == 0.0 {
            continue;
        }
        let mut acc = 0.0;
        for j in 0..rec.len() {
            let dx = lx - rec.x[j];
            let dy = ly - rec.y[j];
            let dz = lz - rec.z[j];
            let r_sq = dx * dx + dy * dy + dz * dz;
            acc += coulomb_pair(qi, rec.charge[j], r_sq, dielectric_scale);
        }
        total += acc;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsmath::Vec3;
    use vsmol::Element;

    fn point_frame(p: Vec3, q: f64) -> Frame {
        Frame::from_parts(&[p], &[Element::C], &[q])
    }

    #[test]
    fn opposite_charges_attract() {
        let a = point_frame(Vec3::ZERO, 1.0);
        let b = point_frame(Vec3::new(3.0, 0.0, 0.0), -1.0);
        assert!(coulomb_naive(&a, &b, DEFAULT_DIELECTRIC) < 0.0);
    }

    #[test]
    fn like_charges_repel() {
        let a = point_frame(Vec3::ZERO, 0.5);
        let b = point_frame(Vec3::new(3.0, 0.0, 0.0), 0.5);
        assert!(coulomb_naive(&a, &b, DEFAULT_DIELECTRIC) > 0.0);
    }

    #[test]
    fn energy_magnitude_matches_formula() {
        let a = point_frame(Vec3::ZERO, 1.0);
        let b = point_frame(Vec3::new(2.0, 0.0, 0.0), 1.0);
        let got = coulomb_naive(&a, &b, 4.0);
        let want = COULOMB_K * 1.0 * 1.0 / (4.0 * 4.0);
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn neutral_atoms_contribute_nothing() {
        let a = point_frame(Vec3::ZERO, 0.0);
        let b = point_frame(Vec3::new(1.0, 0.0, 0.0), 5.0);
        assert_eq!(coulomb_naive(&a, &b, 4.0), 0.0);
    }

    #[test]
    fn decays_with_distance() {
        let a = point_frame(Vec3::ZERO, 1.0);
        let near = point_frame(Vec3::new(2.0, 0.0, 0.0), 1.0);
        let far = point_frame(Vec3::new(8.0, 0.0, 0.0), 1.0);
        assert!(
            coulomb_naive(&a, &near, 4.0) > coulomb_naive(&a, &far, 4.0),
            "1/r² decay violated"
        );
    }

    #[test]
    fn overlap_is_finite() {
        let a = point_frame(Vec3::ZERO, 1.0);
        let b = point_frame(Vec3::ZERO, 1.0);
        let e = coulomb_naive(&a, &b, 4.0);
        assert!(e.is_finite());
        assert_eq!(e, COULOMB_K / (4.0 * MIN_DIST_SQ));
    }

    #[test]
    #[should_panic]
    fn zero_dielectric_panics() {
        let a = point_frame(Vec3::ZERO, 1.0);
        coulomb_naive(&a, &a, 0.0);
    }
}
