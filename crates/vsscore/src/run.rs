//! Element-run receptor layout and the kernels that exploit it.
//!
//! # Why runs
//!
//! The naive/tiled kernels pay a per-pair indexed gather
//! `table.at(lig_elem, rec.elem[j])` in the innermost loop. That gather is
//! what blocks autovectorization: the compiler cannot prove the `(σ², 4ε)`
//! loads are loop-invariant (they depend on `rec.elem[j]`), so every pair
//! costs two data-dependent table loads and the loop stays scalar.
//!
//! A [`RunFrame`] removes the dependence structurally instead of asking the
//! compiler to guess: the receptor is permuted **once** at scorer
//! construction so that atoms of the same element are contiguous. The atom
//! set is unchanged — only the iteration order moves — and the layout
//! records:
//!
//! - the permuted SoA columns (a plain [`Frame`], reusable by every
//!   existing kernel);
//! - a run table of `(elem, start, len)` spans, at most one per element;
//! - the permutation itself (`perm[k]` = original index of permuted atom
//!   `k`), so anything producing *per-receptor-atom* results (e.g. force
//!   scatter) can map back to the original order.
//!
//! Inside one run the element is constant, so `(σ², 4ε)` hoist out of the
//! inner loop as loop constants and the body becomes a pure FMA-able
//! distance/energy computation over contiguous memory. The kernels
//! restructure the sum into four independent lane accumulators
//! ([`LANES`]) so LLVM can vectorize without reassociating a single serial
//! dependency chain, and compose with the existing [`TILE`] cache
//! blocking (tile *within* run) so a receptor block stays L1/L2-resident
//! while every ligand atom consumes it.
//!
//! # Kernels
//!
//! - [`lj_run`]: Lennard-Jones only, the run-layout counterpart of
//!   [`crate::lj::lj_tiled`].
//! - [`fused_run`]: LJ + Coulomb + hydrogen bond accumulated in a **single
//!   receptor pass**. The H-bond gate is free here: capability is an
//!   element property, hence a *run constant* — whole runs are gated
//!   outside the inner loop instead of testing every pair.
//!
//! # Canonical summation order
//!
//! Each kernel's summation order is part of its definition (DESIGN §7):
//! for the run kernels the canonical order is run-major, tile-minor,
//! ligand-atom, then the four-lane accumulation of [`fused_span`]/
//! [`lj_span`]. Every execution path (serial, `CpuPool`,
//! `DeviceEvaluator`) runs this exact code, so scores are bit-identical
//! across paths for a fixed kernel; *different* kernels agree within 1e-9
//! relative (pinned by tests here and in `tests/props.rs`).

use crate::coulomb::COULOMB_K;
use crate::hbond::{is_hbond_capable_idx, HB_SIGMA};
use crate::lj::{lj_pair, Frame, PairTable, MIN_DIST_SQ, TILE};
use vsmol::Element;

/// Independent accumulator lanes in the inner loops. Four f64 lanes cover
/// an AVX2 register; on narrower ISAs the compiler splits them for free.
pub const LANES: usize = 4;

/// One maximal span of same-element receptor atoms in a [`RunFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// `Element::index()` shared by every atom in the span.
    pub elem: u8,
    /// First atom of the span in the permuted frame.
    pub start: usize,
    /// Number of atoms in the span.
    pub len: usize,
}

/// A receptor frame permuted so same-element atoms are contiguous, plus
/// the run table and the permutation back to the original atom order.
#[derive(Debug, Clone, Default)]
pub struct RunFrame {
    frame: Frame,
    runs: Vec<Run>,
    perm: Vec<u32>,
}

impl RunFrame {
    /// Permute `rec` into element runs. Stable: within a run, atoms keep
    /// their original relative order (a counting sort by element index).
    pub fn from_frame(rec: &Frame) -> RunFrame {
        let n = rec.len();
        let ne = Element::COUNT;
        let mut counts = vec![0usize; ne];
        for &e in &rec.elem {
            counts[e as usize] += 1;
        }
        let mut starts = vec![0usize; ne];
        let mut acc = 0;
        for e in 0..ne {
            starts[e] = acc;
            acc += counts[e];
        }
        let mut perm = vec![0u32; n];
        let mut cursor = starts.clone();
        for (orig, &e) in rec.elem.iter().enumerate() {
            perm[cursor[e as usize]] = orig as u32;
            cursor[e as usize] += 1;
        }
        let mut frame = Frame {
            x: vec![0.0; n],
            y: vec![0.0; n],
            z: vec![0.0; n],
            elem: vec![0; n],
            charge: vec![0.0; n],
        };
        for (k, &o) in perm.iter().enumerate() {
            let o = o as usize;
            frame.x[k] = rec.x[o];
            frame.y[k] = rec.y[o];
            frame.z[k] = rec.z[o];
            frame.elem[k] = rec.elem[o];
            frame.charge[k] = rec.charge[o];
        }
        let runs = (0..ne)
            .filter(|&e| counts[e] > 0)
            .map(|e| Run { elem: e as u8, start: starts[e], len: counts[e] })
            .collect();
        RunFrame { frame, runs, perm }
    }

    /// The permuted SoA columns — a plain [`Frame`] any kernel can stream.
    pub fn frame(&self) -> &Frame {
        &self.frame
    }

    /// The run table, ordered by element index.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// `perm()[k]` is the original receptor index of permuted atom `k`
    /// (the scatter map for per-receptor-atom results).
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    pub fn len(&self) -> usize {
        self.frame.len()
    }

    pub fn is_empty(&self) -> bool {
        self.frame.is_empty()
    }
}

/// LJ sum of one ligand atom against one contiguous same-element span,
/// with `(σ², 4ε)` as loop constants and [`LANES`] independent
/// accumulators. The lane split (element `j` goes to lane `j % LANES`,
/// remainder into a scalar tail) is the canonical order for this kernel.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn lj_span(lx: f64, ly: f64, lz: f64, s2: f64, e4: f64, xs: &[f64], ys: &[f64], zs: &[f64]) -> f64 {
    let n = xs.len();
    debug_assert!(ys.len() == n && zs.len() == n);
    let mut acc = [0.0f64; LANES];
    let mut j = 0;
    while j + LANES <= n {
        for l in 0..LANES {
            let dx = lx - xs[j + l];
            let dy = ly - ys[j + l];
            let dz = lz - zs[j + l];
            acc[l] += lj_pair(s2, e4, dx * dx + dy * dy + dz * dz);
        }
        j += LANES;
    }
    let mut tail = 0.0;
    while j < n {
        let dx = lx - xs[j];
        let dy = ly - ys[j];
        let dz = lz - zs[j];
        tail += lj_pair(s2, e4, dx * dx + dy * dy + dz * dz);
        j += 1;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Run-layout Lennard-Jones kernel: run-major, [`TILE`]-blocked within
/// each run, `(σ², 4ε)` hoisted per (ligand atom × run).
pub fn lj_run(lig: &Frame, rec: &RunFrame, table: &PairTable) -> f64 {
    let rf = &rec.frame;
    let mut total = 0.0;
    for run in &rec.runs {
        let run_end = run.start + run.len;
        let mut start = run.start;
        while start < run_end {
            let end = (start + TILE).min(run_end);
            let (xs, ys, zs) = (&rf.x[start..end], &rf.y[start..end], &rf.z[start..end]);
            for i in 0..lig.len() {
                let (s2, e4) = table.lookup(lig.elem[i], run.elem);
                total += lj_span(lig.x[i], lig.y[i], lig.z[i], s2, e4, xs, ys, zs);
            }
            start = end;
        }
    }
    total
}

/// Fused span: one pass over a same-element receptor span accumulating LJ
/// plus (statically gated) Coulomb and H-bond terms. One reciprocal per
/// pair is shared by all three terms. `ck` is the hoisted per-ligand-atom
/// Coulomb constant `k·qᵢ/ε_scale`; `hb_eps` the H-bond well depth.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn fused_span<const COUL: bool, const HB: bool>(
    lx: f64,
    ly: f64,
    lz: f64,
    s2: f64,
    e4: f64,
    ck: f64,
    hb_eps: f64,
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    qs: &[f64],
) -> f64 {
    const HB2: f64 = HB_SIGMA * HB_SIGMA;
    let n = xs.len();
    debug_assert!(ys.len() == n && zs.len() == n && qs.len() == n);
    #[inline(always)]
    fn pair<const COUL: bool, const HB: bool>(
        r_sq: f64,
        s2: f64,
        e4: f64,
        ck: f64,
        hb_eps: f64,
        qj: f64,
    ) -> f64 {
        let r2 = if r_sq < MIN_DIST_SQ { MIN_DIST_SQ } else { r_sq };
        let inv = 1.0 / r2;
        let q = s2 * inv;
        let s6 = q * q * q;
        let mut e = e4 * (s6 * s6 - s6);
        if COUL {
            e += ck * qj * inv;
        }
        if HB {
            let qh = HB2 * inv;
            let q5 = qh * qh * qh * qh * qh;
            e += hb_eps * (5.0 * q5 * qh - 6.0 * q5);
        }
        e
    }
    let mut acc = [0.0f64; LANES];
    let mut j = 0;
    while j + LANES <= n {
        for l in 0..LANES {
            let dx = lx - xs[j + l];
            let dy = ly - ys[j + l];
            let dz = lz - zs[j + l];
            let r_sq = dx * dx + dy * dy + dz * dz;
            acc[l] += pair::<COUL, HB>(r_sq, s2, e4, ck, hb_eps, qs[j + l]);
        }
        j += LANES;
    }
    let mut tail = 0.0;
    while j < n {
        let dx = lx - xs[j];
        let dy = ly - ys[j];
        let dz = lz - zs[j];
        let r_sq = dx * dx + dy * dy + dz * dz;
        tail += pair::<COUL, HB>(r_sq, s2, e4, ck, hb_eps, qs[j]);
        j += 1;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

fn fused_impl<const COUL: bool, const HB: bool>(
    lig: &Frame,
    rec: &RunFrame,
    table: &PairTable,
    dielectric: f64,
    hb_eps: f64,
) -> f64 {
    let rf = &rec.frame;
    let mut total = 0.0;
    for run in &rec.runs {
        // Capability is an element property, hence constant over the run:
        // whole runs are gated here, never per pair.
        let run_capable = HB && is_hbond_capable_idx(run.elem);
        let run_end = run.start + run.len;
        let mut start = run.start;
        while start < run_end {
            let end = (start + TILE).min(run_end);
            let xs = &rf.x[start..end];
            let ys = &rf.y[start..end];
            let zs = &rf.z[start..end];
            let qs = &rf.charge[start..end];
            for i in 0..lig.len() {
                let le = lig.elem[i];
                let (s2, e4) = table.lookup(le, run.elem);
                let ck = if COUL { COULOMB_K * lig.charge[i] / dielectric } else { 0.0 };
                let (lx, ly, lz) = (lig.x[i], lig.y[i], lig.z[i]);
                total += if run_capable && is_hbond_capable_idx(le) {
                    fused_span::<COUL, true>(lx, ly, lz, s2, e4, ck, hb_eps, xs, ys, zs, qs)
                } else {
                    fused_span::<COUL, false>(lx, ly, lz, s2, e4, ck, 0.0, xs, ys, zs, qs)
                };
            }
            start = end;
        }
    }
    total
}

/// Fused single-pass kernel over the run layout: LJ always, Coulomb when
/// `dielectric` is set, the 10–12 H-bond term when `hbond_eps` is set and
/// positive (a zero well depth is inert, matching
/// [`crate::hbond::hbond_naive`]). Matches the sum of the separate
/// per-term kernels within 1e-9 relative.
pub fn fused_run(
    lig: &Frame,
    rec: &RunFrame,
    table: &PairTable,
    dielectric: Option<f64>,
    hbond_eps: Option<f64>,
) -> f64 {
    if let Some(d) = dielectric {
        assert!(d > 0.0, "dielectric scale must be positive");
    }
    if let Some(e) = hbond_eps {
        assert!(e >= 0.0, "well depth must be non-negative");
    }
    match (dielectric, hbond_eps.filter(|&e| e > 0.0)) {
        (None, None) => fused_impl::<false, false>(lig, rec, table, 1.0, 0.0),
        (Some(d), None) => fused_impl::<true, false>(lig, rec, table, d, 0.0),
        (None, Some(e)) => fused_impl::<false, true>(lig, rec, table, 1.0, e),
        (Some(d), Some(e)) => fused_impl::<true, true>(lig, rec, table, d, e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coulomb::coulomb_naive;
    use crate::hbond::hbond_naive;
    use crate::lj::lj_naive;
    use vsmath::{RngStream, Vec3};
    use vsmol::{synth, LjTable};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(1.0)
    }

    fn table() -> PairTable {
        PairTable::new(&LjTable::standard())
    }

    /// A receptor frame with exactly the given per-element run lengths,
    /// in random (interleaved) original order.
    fn frame_with_runs(spec: &[(Element, usize)], seed: u64) -> Frame {
        let mut rng = RngStream::from_seed(seed);
        let mut atoms: Vec<(Vec3, Element, f64)> = Vec::new();
        for &(e, n) in spec {
            for _ in 0..n {
                atoms.push((rng.in_ball(15.0), e, rng.uniform_range(-0.5, 0.5)));
            }
        }
        // Shuffle so runs are *not* already contiguous in the input.
        for i in (1..atoms.len()).rev() {
            let j = rng.index(i + 1);
            atoms.swap(i, j);
        }
        let pos: Vec<Vec3> = atoms.iter().map(|a| a.0).collect();
        let el: Vec<Element> = atoms.iter().map(|a| a.1).collect();
        let q: Vec<f64> = atoms.iter().map(|a| a.2).collect();
        Frame::from_parts(&pos, &el, &q)
    }

    fn synth_frames(n_rec: usize, n_lig: usize, seed: u64) -> (Frame, Frame) {
        let rec = synth::synth_receptor("r", n_rec, seed);
        let lig = synth::synth_ligand("l", n_lig, seed + 1);
        (Frame::from_molecule(&lig), Frame::from_molecule(&rec))
    }

    #[test]
    fn permutation_roundtrip_and_runs_cover_frame() {
        let rec = frame_with_runs(&[(Element::C, 37), (Element::N, 5), (Element::O, 12)], 3);
        let rf = RunFrame::from_frame(&rec);
        assert_eq!(rf.len(), rec.len());
        // Permuted columns match the original through the permutation.
        for (k, &o) in rf.perm().iter().enumerate() {
            let o = o as usize;
            assert_eq!(rf.frame().x[k], rec.x[o]);
            assert_eq!(rf.frame().y[k], rec.y[o]);
            assert_eq!(rf.frame().z[k], rec.z[o]);
            assert_eq!(rf.frame().elem[k], rec.elem[o]);
            assert_eq!(rf.frame().charge[k], rec.charge[o]);
        }
        // Runs are contiguous, disjoint, element-homogeneous, and cover
        // the whole frame in element-index order.
        let mut expected_start = 0;
        for run in rf.runs() {
            assert_eq!(run.start, expected_start);
            assert!(run.len > 0);
            for k in run.start..run.start + run.len {
                assert_eq!(rf.frame().elem[k], run.elem);
            }
            expected_start += run.len;
        }
        assert_eq!(expected_start, rec.len());
        let elems: Vec<u8> = rf.runs().iter().map(|r| r.elem).collect();
        let mut sorted = elems.clone();
        sorted.sort_unstable();
        assert_eq!(elems, sorted, "runs ordered by element index");
    }

    #[test]
    fn run_matches_naive() {
        let (lig, rec) = synth_frames(1500, 30, 11);
        let t = table();
        let a = lj_naive(&lig, &rec, &t);
        let b = lj_run(&lig, &RunFrame::from_frame(&rec), &t);
        assert!(close(a, b), "{a} vs {b}");
    }

    #[test]
    fn run_matches_naive_at_run_boundaries() {
        // Run lengths straddling the lane width and the tile size, the
        // mirror of `tiled_matches_naive_at_tile_boundaries`. Length 0 is
        // the absent-element case (no run emitted).
        let t = table();
        for len in [1usize, 2, 3, LANES, LANES + 1, TILE - 1, TILE, TILE + 1] {
            let rec = frame_with_runs(&[(Element::C, len), (Element::O, 1)], 7 + len as u64);
            let lig = Frame::from_molecule(&synth::synth_ligand("l", 9, 13));
            let a = lj_naive(&lig, &rec, &t);
            let b = lj_run(&lig, &RunFrame::from_frame(&rec), &t);
            assert!(close(a, b), "len={len}: {a} vs {b}");
        }
    }

    #[test]
    fn single_element_receptor_is_one_run() {
        let rec = frame_with_runs(&[(Element::C, 2 * TILE + 7)], 17);
        let rf = RunFrame::from_frame(&rec);
        assert_eq!(rf.runs().len(), 1);
        let lig = Frame::from_molecule(&synth::synth_ligand("l", 12, 19));
        let t = table();
        assert!(close(lj_naive(&lig, &rec, &t), lj_run(&lig, &rf, &t)));
    }

    #[test]
    fn all_elements_receptor_one_atom_each() {
        let spec: Vec<(Element, usize)> = Element::ALL.iter().map(|&e| (e, 1)).collect();
        let rec = frame_with_runs(&spec, 23);
        let rf = RunFrame::from_frame(&rec);
        assert_eq!(rf.runs().len(), Element::COUNT);
        assert!(rf.runs().iter().all(|r| r.len == 1));
        let lig = Frame::from_molecule(&synth::synth_ligand("l", 7, 29));
        let t = table();
        assert!(close(lj_naive(&lig, &rec, &t), lj_run(&lig, &rf, &t)));
        let a = fused_run(&lig, &rf, &t, Some(4.0), Some(1.0));
        let want = lj_naive(&lig, &rec, &t)
            + coulomb_naive(&lig, &rec, 4.0)
            + hbond_naive(&lig, &rec, 1.0);
        assert!(close(want, a), "{want} vs {a}");
    }

    #[test]
    fn empty_frames_score_zero() {
        let t = table();
        let empty = Frame::from_parts(&[], &[], &[]);
        let rf = RunFrame::from_frame(&empty);
        assert!(rf.is_empty());
        assert!(rf.runs().is_empty());
        let one = Frame::from_parts(&[Vec3::ZERO], &[Element::C], &[0.1]);
        assert_eq!(lj_run(&one, &rf, &t), 0.0);
        assert_eq!(fused_run(&one, &rf, &t, Some(4.0), Some(1.0)), 0.0);
        let one_rf = RunFrame::from_frame(&one);
        assert_eq!(lj_run(&empty, &one_rf, &t), 0.0);
    }

    #[test]
    fn fused_matches_separate_terms_for_every_model() {
        let (lig, rec) = synth_frames(900, 24, 31);
        let rf = RunFrame::from_frame(&rec);
        let t = table();
        let lj = lj_naive(&lig, &rec, &t);
        // LJ only.
        assert!(close(lj, fused_run(&lig, &rf, &t, None, None)));
        // LJ + Coulomb.
        let ljc = lj + coulomb_naive(&lig, &rec, 4.0);
        assert!(close(ljc, fused_run(&lig, &rf, &t, Some(4.0), None)));
        // Full.
        let full = ljc + hbond_naive(&lig, &rec, 1.0);
        let got = fused_run(&lig, &rf, &t, Some(4.0), Some(1.0));
        assert!(close(full, got), "{full} vs {got}");
    }

    #[test]
    fn fused_zero_hbond_depth_is_inert() {
        let (lig, rec) = synth_frames(400, 12, 37);
        let rf = RunFrame::from_frame(&rec);
        let t = table();
        let a = fused_run(&lig, &rf, &t, Some(4.0), None);
        let b = fused_run(&lig, &rf, &t, Some(4.0), Some(0.0));
        assert_eq!(a.to_bits(), b.to_bits(), "zero well depth must be bit-inert");
    }

    #[test]
    fn fused_is_deterministic() {
        let (lig, rec) = synth_frames(700, 20, 41);
        let rf = RunFrame::from_frame(&rec);
        let t = table();
        let a = fused_run(&lig, &rf, &t, Some(4.0), Some(1.0));
        let b = fused_run(&lig, &rf, &t, Some(4.0), Some(1.0));
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    #[should_panic]
    fn fused_rejects_non_positive_dielectric() {
        let (lig, rec) = synth_frames(10, 3, 43);
        let rf = RunFrame::from_frame(&rec);
        fused_run(&lig, &rf, &table(), Some(0.0), None);
    }

    #[test]
    #[should_panic]
    fn fused_rejects_negative_hbond_depth() {
        let (lig, rec) = synth_frames(10, 3, 47);
        let rf = RunFrame::from_frame(&rec);
        fused_run(&lig, &rf, &table(), None, Some(-1.0));
    }
}
