//! Analytic gradients of the scoring function.
//!
//! AutoDock's Lamarckian genetic algorithm (the paper's reference [24])
//! improves individuals with gradient-informed local search; this module
//! supplies the gradients: the net force and torque the receptor exerts on
//! a posed rigid ligand. The `metaheur::ImproveStrategy::Lamarckian`
//! improver descends them.
//!
//! Derivatives (all in squared-distance form, matching the kernels):
//!
//! - LJ: `E = 4ε[(σ²/r²)⁶ − (σ²/r²)³]`, so
//!   `dE/dr² = −3·4ε·s6·(2·s6 − 1)/r²` with `s6 = (σ²/r²)³`;
//! - Coulomb (distance-dependent dielectric): `E = k q q′/(ε_s r²)`, so
//!   `dE/dr² = −k q q′/(ε_s r⁴)`.
//!
//! Inside the clamped core (`r² < MIN_DIST_SQ`) the energy is constant, so
//! the gradient is zero — local search escapes clashes by the stochastic
//! moves instead of exploding gradients.

use crate::coulomb::COULOMB_K;
use crate::lj::{Frame, PairTable, MIN_DIST_SQ};
use crate::run::RunFrame;
use vsmath::Vec3;

/// Net generalized force on a rigid ligand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RigidGradient {
    /// Net force (negative energy gradient w.r.t. translation).
    pub force: Vec3,
    /// Net torque about the ligand centroid.
    pub torque: Vec3,
}

impl RigidGradient {
    pub const ZERO: RigidGradient = RigidGradient { force: Vec3::ZERO, torque: Vec3::ZERO };
}

/// LJ pair-energy derivative w.r.t. squared distance.
#[inline]
fn lj_de_dr2(sigma_sq: f64, four_eps: f64, r_sq: f64) -> f64 {
    if r_sq < MIN_DIST_SQ {
        return 0.0;
    }
    let q = sigma_sq / r_sq;
    let s6 = q * q * q;
    -3.0 * four_eps * s6 * (2.0 * s6 - 1.0) / r_sq
}

/// Coulomb (distance-dependent dielectric) derivative w.r.t. squared
/// distance; zero inside the clamp.
#[inline]
fn coulomb_de_dr2(qi: f64, qj: f64, r_sq: f64, dielectric_scale: f64) -> f64 {
    if r_sq < MIN_DIST_SQ {
        return 0.0;
    }
    -COULOMB_K * qi * qj / (dielectric_scale * r_sq * r_sq)
}

/// Net force and torque (about `center`) on the posed ligand frame `lig`
/// from receptor frame `rec`, under LJ plus (optionally) Coulomb.
///
/// `lig` must already be in receptor space (pose applied).
pub fn rigid_gradient(
    lig: &Frame,
    rec: &Frame,
    table: &PairTable,
    center: Vec3,
    dielectric: Option<f64>,
) -> RigidGradient {
    let mut force = Vec3::ZERO;
    let mut torque = Vec3::ZERO;
    for i in 0..lig.len() {
        let p = Vec3::new(lig.x[i], lig.y[i], lig.z[i]);
        let le = lig.elem[i];
        let qi = lig.charge[i];
        let mut f_atom = Vec3::ZERO;
        for j in 0..rec.len() {
            let d = p - Vec3::new(rec.x[j], rec.y[j], rec.z[j]);
            let r_sq = d.norm_sq();
            let (s2, e4) = table.lookup(le, rec.elem[j]);
            let mut de_dr2 = lj_de_dr2(s2, e4, r_sq);
            if let Some(eps) = dielectric {
                de_dr2 += coulomb_de_dr2(qi, rec.charge[j], r_sq, eps);
            }
            // F = −∇E = −dE/dr² · 2 d.
            f_atom -= d * (2.0 * de_dr2);
        }
        force += f_atom;
        torque += (p - center).cross(f_atom);
    }
    RigidGradient { force, torque }
}

/// [`rigid_gradient`] over the element-run receptor layout: `(σ², 4ε)`
/// hoist out per (ligand atom × run) instead of a per-pair table gather.
/// Same force field, different (still deterministic) summation order; the
/// net force/torque agrees with [`rigid_gradient`] to floating-point
/// reassociation slack. Per-receptor-atom forces, if ever needed, scatter
/// back through [`RunFrame::perm`].
pub fn rigid_gradient_run(
    lig: &Frame,
    rec: &RunFrame,
    table: &PairTable,
    center: Vec3,
    dielectric: Option<f64>,
) -> RigidGradient {
    let rf = rec.frame();
    let mut force = Vec3::ZERO;
    let mut torque = Vec3::ZERO;
    for i in 0..lig.len() {
        let p = Vec3::new(lig.x[i], lig.y[i], lig.z[i]);
        let le = lig.elem[i];
        let qi = lig.charge[i];
        let mut f_atom = Vec3::ZERO;
        for run in rec.runs() {
            let (s2, e4) = table.lookup(le, run.elem);
            for j in run.start..run.start + run.len {
                let d = p - Vec3::new(rf.x[j], rf.y[j], rf.z[j]);
                let r_sq = d.norm_sq();
                let mut de_dr2 = lj_de_dr2(s2, e4, r_sq);
                if let Some(eps) = dielectric {
                    de_dr2 += coulomb_de_dr2(qi, rf.charge[j], r_sq, eps);
                }
                f_atom -= d * (2.0 * de_dr2);
            }
        }
        force += f_atom;
        torque += (p - center).cross(f_atom);
    }
    RigidGradient { force, torque }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coulomb::coulomb_naive;
    use crate::lj::{lj_naive, lj_pair};
    use vsmath::{Quat, RigidTransform, RngStream};
    use vsmol::{synth, Element, LjTable, Molecule};

    fn frames() -> (Molecule, Frame, PairTable) {
        let rec = synth::synth_receptor("r", 300, 1);
        let rec_frame = Frame::from_molecule(&rec);
        (rec, rec_frame, PairTable::new(&LjTable::standard()))
    }

    fn posed_ligand(lig: &Molecule, pose: &RigidTransform) -> Frame {
        Frame::from_molecule(&lig.centered().transformed(pose))
    }

    /// Finite-difference check of the force against the energy.
    #[test]
    fn force_matches_finite_difference() {
        let (_, rec_frame, table) = frames();
        let lig = synth::synth_ligand("l", 8, 2);
        let mut rng = RngStream::from_seed(3);
        for trial in 0..5 {
            let pose = RigidTransform::new(rng.rotation(), rng.unit_vector() * 19.0);
            let lf = posed_ligand(&lig, &pose);
            let g = rigid_gradient(&lf, &rec_frame, &table, pose.translation, None);

            let h = 1e-6;
            for (axis, fa) in [(Vec3::X, g.force.x), (Vec3::Y, g.force.y), (Vec3::Z, g.force.z)] {
                let ep = lj_naive(
                    &posed_ligand(
                        &lig,
                        &RigidTransform::new(pose.rotation, pose.translation + axis * h),
                    ),
                    &rec_frame,
                    &table,
                );
                let em = lj_naive(
                    &posed_ligand(
                        &lig,
                        &RigidTransform::new(pose.rotation, pose.translation - axis * h),
                    ),
                    &rec_frame,
                    &table,
                );
                let numeric = -(ep - em) / (2.0 * h);
                let scale = numeric.abs().max(fa.abs()).max(1e-3);
                assert!(
                    (numeric - fa).abs() / scale < 1e-3,
                    "trial {trial}: force {fa} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn torque_matches_finite_difference() {
        let (_, rec_frame, table) = frames();
        let lig = synth::synth_ligand("l", 8, 2);
        let mut rng = RngStream::from_seed(4);
        let pose = RigidTransform::new(rng.rotation(), rng.unit_vector() * 19.5);
        let lf = posed_ligand(&lig, &pose);
        let g = rigid_gradient(&lf, &rec_frame, &table, pose.translation, None);

        let h = 1e-6;
        for (axis, ta) in [(Vec3::X, g.torque.x), (Vec3::Y, g.torque.y), (Vec3::Z, g.torque.z)] {
            let rot = |angle: f64| {
                RigidTransform::new(
                    (Quat::from_axis_angle(axis, angle) * pose.rotation).renormalize(),
                    pose.translation,
                )
            };
            let ep = lj_naive(&posed_ligand(&lig, &rot(h)), &rec_frame, &table);
            let em = lj_naive(&posed_ligand(&lig, &rot(-h)), &rec_frame, &table);
            let numeric = -(ep - em) / (2.0 * h);
            let scale = numeric.abs().max(ta.abs()).max(1e-3);
            assert!((numeric - ta).abs() / scale < 1e-3, "torque {ta} vs numeric {numeric}");
        }
    }

    #[test]
    fn coulomb_gradient_matches_finite_difference() {
        let (_, rec_frame, table) = frames();
        let lig = synth::synth_ligand("l", 6, 5);
        let mut rng = RngStream::from_seed(6);
        let pose = RigidTransform::new(rng.rotation(), rng.unit_vector() * 20.0);
        let lf = posed_ligand(&lig, &pose);
        let g = rigid_gradient(&lf, &rec_frame, &table, pose.translation, Some(4.0));

        let energy = |p: &RigidTransform| {
            let f = posed_ligand(&lig, p);
            lj_naive(&f, &rec_frame, &table) + coulomb_naive(&f, &rec_frame, 4.0)
        };
        let h = 1e-6;
        let ep = energy(&RigidTransform::new(pose.rotation, pose.translation + Vec3::X * h));
        let em = energy(&RigidTransform::new(pose.rotation, pose.translation - Vec3::X * h));
        let numeric = -(ep - em) / (2.0 * h);
        let scale = numeric.abs().max(g.force.x.abs()).max(1e-3);
        assert!((numeric - g.force.x).abs() / scale < 1e-3, "{numeric} vs {}", g.force.x);
    }

    #[test]
    fn run_gradient_matches_gather_gradient() {
        let (_, rec_frame, table) = frames();
        let runs = RunFrame::from_frame(&rec_frame);
        let lig = synth::synth_ligand("l", 8, 2);
        let mut rng = RngStream::from_seed(7);
        for trial in 0..5 {
            let pose = RigidTransform::new(rng.rotation(), rng.unit_vector() * 19.0);
            let lf = posed_ligand(&lig, &pose);
            for dielectric in [None, Some(4.0)] {
                let a = rigid_gradient(&lf, &rec_frame, &table, pose.translation, dielectric);
                let b = rigid_gradient_run(&lf, &runs, &table, pose.translation, dielectric);
                let scale = a.force.norm().max(1e-6);
                assert!(
                    (a.force - b.force).norm() / scale < 1e-9,
                    "trial {trial}: force {:?} vs {:?}",
                    a.force,
                    b.force
                );
                let tscale = a.torque.norm().max(1e-6);
                assert!(
                    (a.torque - b.torque).norm() / tscale < 1e-9,
                    "trial {trial}: torque {:?} vs {:?}",
                    a.torque,
                    b.torque
                );
            }
        }
    }

    #[test]
    fn gradient_zero_inside_clamp() {
        assert_eq!(lj_de_dr2(9.0, 1.0, 0.1), 0.0);
        assert_eq!(coulomb_de_dr2(1.0, 1.0, 0.1, 4.0), 0.0);
        // And continuity outside: tiny but nonzero just above the clamp.
        assert_ne!(lj_de_dr2(9.0, 1.0, MIN_DIST_SQ + 1e-6), 0.0);
    }

    #[test]
    fn attractive_pair_pulls_together() {
        // Two carbons at r > r_min attract: force on the ligand atom points
        // toward the receptor atom.
        let table = PairTable::new(&LjTable::standard());
        let lig = Frame::from_parts(&[Vec3::new(5.0, 0.0, 0.0)], &[Element::C], &[0.0]);
        let rec = Frame::from_parts(&[Vec3::ZERO], &[Element::C], &[0.0]);
        let g = rigid_gradient(&lig, &rec, &table, Vec3::new(5.0, 0.0, 0.0), None);
        assert!(g.force.x < 0.0, "attraction should pull toward origin: {:?}", g.force);
    }

    #[test]
    fn repulsive_pair_pushes_apart() {
        let table = PairTable::new(&LjTable::standard());
        let p = LjTable::standard().pair(Element::C, Element::C).0.sqrt(); // σ
        let lig = Frame::from_parts(&[Vec3::new(p * 0.9, 0.0, 0.0)], &[Element::C], &[0.0]);
        let rec = Frame::from_parts(&[Vec3::ZERO], &[Element::C], &[0.0]);
        let g = rigid_gradient(&lig, &rec, &table, Vec3::new(p * 0.9, 0.0, 0.0), None);
        assert!(g.force.x > 0.0, "repulsion should push away: {:?}", g.force);
    }

    #[test]
    fn force_at_minimum_is_zero() {
        let table = PairTable::new(&LjTable::standard());
        let sigma = LjTable::standard().pair(Element::C, Element::C).0.sqrt();
        let r_min = 2f64.powf(1.0 / 6.0) * sigma;
        let lig = Frame::from_parts(&[Vec3::new(r_min, 0.0, 0.0)], &[Element::C], &[0.0]);
        let rec = Frame::from_parts(&[Vec3::ZERO], &[Element::C], &[0.0]);
        let g = rigid_gradient(&lig, &rec, &table, Vec3::new(r_min, 0.0, 0.0), None);
        assert!(g.force.norm() < 1e-10, "force at minimum: {:?}", g.force);
        let _ = lj_pair; // keep reference import alive
    }

    #[test]
    fn single_centered_atom_has_no_torque() {
        let table = PairTable::new(&LjTable::standard());
        let c = Vec3::new(4.0, 0.0, 0.0);
        let lig = Frame::from_parts(&[c], &[Element::C], &[0.0]);
        let rec = Frame::from_parts(&[Vec3::ZERO], &[Element::C], &[0.0]);
        let g = rigid_gradient(&lig, &rec, &table, c, None);
        assert!(g.torque.norm() < 1e-12);
    }
}
