//! Property-based tests for the scoring engine.

use proptest::prelude::*;
use vsmath::{RigidTransform, RngStream, Vec3};
use vsmol::synth;
use vsscore::scorer::{Kernel, ScorerOptions, ScoringModel};
use vsscore::{Exec, PoseScratch, ScoreBatch, Scorer};

fn arb_pose() -> impl Strategy<Value = RigidTransform> {
    (any::<u64>(), 0.0..40.0f64).prop_map(|(seed, r)| {
        let mut rng = RngStream::from_seed(seed);
        RigidTransform::new(rng.rotation(), rng.unit_vector() * r)
    })
}

fn scorer(kernel: Kernel, model: ScoringModel) -> Scorer {
    let rec = synth::synth_receptor("r", 250, 7);
    let lig = synth::synth_ligand("l", 10, 8);
    Scorer::new(&rec, &lig, ScorerOptions { model, kernel })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn score_is_always_finite(pose in arb_pose()) {
        for model in [
            ScoringModel::LennardJones,
            ScoringModel::LennardJonesCoulomb { dielectric: 4.0 },
            ScoringModel::Full { dielectric: 4.0, hbond_epsilon: 1.0 },
        ] {
            let s = scorer(Kernel::Tiled, model);
            prop_assert!(s.score(&pose).is_finite());
        }
    }

    #[test]
    fn kernels_agree_on_any_pose(pose in arb_pose()) {
        let naive = scorer(Kernel::Naive, ScoringModel::LennardJones);
        let tiled = scorer(Kernel::Tiled, ScoringModel::LennardJones);
        let a = naive.score(&pose);
        let b = tiled.score(&pose);
        prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{} vs {}", a, b);
    }

    #[test]
    fn run_and_fused_match_naive_on_random_frames(
        pose in arb_pose(),
        n_rec in 1usize..400,
        n_lig in 1usize..24,
        seed in any::<u64>(),
    ) {
        // Random frames × random poses × all three scoring models: the
        // run-layout kernels must reproduce the naive reference within
        // 1e-9 relative (the per-kernel agreement policy, DESIGN §7).
        let rec = synth::synth_receptor("r", n_rec, seed);
        let lig = synth::synth_ligand("l", n_lig, seed ^ 0x9e37_79b9);
        for model in [
            ScoringModel::LennardJones,
            ScoringModel::LennardJonesCoulomb { dielectric: 4.0 },
            ScoringModel::Full { dielectric: 4.0, hbond_epsilon: 1.0 },
        ] {
            let want = Scorer::new(&rec, &lig, ScorerOptions { model, kernel: Kernel::Naive })
                .score(&pose);
            for kernel in [Kernel::Run, Kernel::Fused] {
                let got = Scorer::new(&rec, &lig, ScorerOptions { model, kernel }).score(&pose);
                prop_assert!(
                    (want - got).abs() <= 1e-9 * want.abs().max(1.0),
                    "{:?}/{:?}: {} vs {}", model, kernel, want, got
                );
            }
        }
    }

    #[test]
    fn batch_matches_singles(poses in proptest::collection::vec(arb_pose(), 1..12)) {
        let s = scorer(Kernel::Tiled, ScoringModel::LennardJones);
        let mut scratch = PoseScratch::new();
        let mut batch = vec![0.0; poses.len()];
        s.score_batch(ScoreBatch::Poses { poses: &poses, out: &mut batch }, &mut scratch, Exec::Serial);
        for (p, &b) in poses.iter().zip(&batch) {
            prop_assert_eq!(s.score(p), b);
        }
        let mut par = vec![0.0; poses.len()];
        s.score_batch(ScoreBatch::Poses { poses: &poses, out: &mut par }, &mut scratch, Exec::Pool(3));
        prop_assert_eq!(batch, par);
    }

    #[test]
    fn gradient_is_finite_and_consistent(pose in arb_pose()) {
        let s = scorer(Kernel::Tiled, ScoringModel::LennardJonesCoulomb { dielectric: 4.0 });
        let (score, g) = s.score_and_gradient(&pose);
        prop_assert!(score.is_finite());
        prop_assert!(g.force.is_finite());
        prop_assert!(g.torque.is_finite());
        prop_assert_eq!(score, s.score(&pose));
    }

    #[test]
    fn far_pose_scores_vanish(dir_seed in any::<u64>(), dist in 1e4..1e6f64) {
        let s = scorer(Kernel::Tiled, ScoringModel::LennardJones);
        let mut rng = RngStream::from_seed(dir_seed);
        let pose = RigidTransform::from_translation(rng.unit_vector() * dist);
        prop_assert!(s.score(&pose).abs() < 1e-3);
    }

    #[test]
    fn tighter_cutoff_never_adds_interactions(pose in arb_pose()) {
        // |score_grid(8Å) - full| >= |score_grid(20Å) - full| is not always
        // monotone pointwise; assert the robust property instead: both are
        // finite and the 20Å cutoff is closer or equal on average over a
        // small pose cloud. Pointwise here: 20Å error bounded by 8Å error
        // plus numerical slack fails rarely, so use the containment claim:
        // grid results equal the naive cutoff computation exactly.
        let rec = synth::synth_receptor("r", 250, 7);
        let lig = synth::synth_ligand("l", 10, 8);
        for cutoff in [8.0, 20.0] {
            let g = Scorer::new(&rec, &lig, ScorerOptions {
                model: ScoringModel::LennardJones,
                kernel: Kernel::GridCutoff { cutoff },
            });
            prop_assert!(g.score(&pose).is_finite());
        }
    }

    #[test]
    fn hbond_term_only_lowers_reasonable_contacts(pose in arb_pose()) {
        // Full model = LJC + H-bond: difference must be finite and bounded
        // (H-bond adds at most a few kcal/mol per N/O pair in contact).
        let ljc = scorer(Kernel::Tiled, ScoringModel::LennardJonesCoulomb { dielectric: 4.0 });
        let full = scorer(
            Kernel::Tiled,
            ScoringModel::Full { dielectric: 4.0, hbond_epsilon: 1.0 },
        );
        let delta = full.score(&pose) - ljc.score(&pose);
        prop_assert!(delta.is_finite());
    }

    #[test]
    fn translation_far_from_origin_preserves_pair_count(
        (dx, dy, dz) in (-5.0..5.0f64, -5.0..5.0f64, -5.0..5.0f64)
    ) {
        // Scoring is translation-covariant: moving ligand AND receptor by
        // the same offset leaves the score unchanged.
        let rec = synth::synth_receptor("r", 150, 9);
        let lig = synth::synth_ligand("l", 8, 10);
        let offset = Vec3::new(dx, dy, dz);
        let shift = RigidTransform::from_translation(offset);
        let s1 = Scorer::new(&rec, &lig, ScorerOptions::default());
        let s2 = Scorer::new(&rec.transformed(&shift), &lig, ScorerOptions::default());
        let pose = RigidTransform::from_translation(Vec3::new(15.0, 0.0, 0.0));
        let pose_shifted = RigidTransform::from_translation(Vec3::new(15.0, 0.0, 0.0) + offset);
        let a = s1.score(&pose);
        let b = s2.score(&pose_shifted);
        prop_assert!((a - b).abs() < 1e-6 * a.abs().max(1.0), "{} vs {}", a, b);
    }
}
