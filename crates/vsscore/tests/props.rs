//! Property-based tests for the scoring engine.

use proptest::prelude::*;
use vsmath::{RigidTransform, RngStream, Vec3};
use vsmol::synth;
use vsscore::scorer::{Kernel, ScorerOptions, ScoringModel};
use vsscore::{exact_cutoff_score, Exec, GridOptions, PoseScratch, ScoreBatch, Scorer};

/// The documented grid error budget (DESIGN §11): pose-score error vs the
/// dense reference at pitch `h` is within
/// `0.3·|exact| + n_lig·(0.25 + 0.75·h²)` on non-clashing poses — every
/// ligand atom in contact contributes its own trilinear interpolation
/// error, so the allowance scales with the ligand. Shared with the
/// `grid_accuracy` harness gate.
fn grid_error_budget(exact: f64, spacing: f64, lig_atoms: usize) -> f64 {
    0.3 * exact.abs() + lig_atoms as f64 * (0.25 + 0.75 * spacing * spacing)
}

fn arb_pose() -> impl Strategy<Value = RigidTransform> {
    (any::<u64>(), 0.0..40.0f64).prop_map(|(seed, r)| {
        let mut rng = RngStream::from_seed(seed);
        RigidTransform::new(rng.rotation(), rng.unit_vector() * r)
    })
}

fn scorer(kernel: Kernel, model: ScoringModel) -> Scorer {
    let rec = synth::synth_receptor("r", 250, 7);
    let lig = synth::synth_ligand("l", 10, 8);
    Scorer::new(&rec, &lig, ScorerOptions { model, kernel })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn score_is_always_finite(pose in arb_pose()) {
        for model in [
            ScoringModel::LennardJones,
            ScoringModel::LennardJonesCoulomb { dielectric: 4.0 },
            ScoringModel::Full { dielectric: 4.0, hbond_epsilon: 1.0 },
        ] {
            let s = scorer(Kernel::Tiled, model);
            prop_assert!(s.score(&pose).is_finite());
        }
    }

    #[test]
    fn kernels_agree_on_any_pose(pose in arb_pose()) {
        let naive = scorer(Kernel::Naive, ScoringModel::LennardJones);
        let tiled = scorer(Kernel::Tiled, ScoringModel::LennardJones);
        let a = naive.score(&pose);
        let b = tiled.score(&pose);
        prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{} vs {}", a, b);
    }

    #[test]
    fn run_and_fused_match_naive_on_random_frames(
        pose in arb_pose(),
        n_rec in 1usize..400,
        n_lig in 1usize..24,
        seed in any::<u64>(),
    ) {
        // Random frames × random poses × all three scoring models: the
        // run-layout kernels must reproduce the naive reference within
        // 1e-9 relative (the per-kernel agreement policy, DESIGN §7).
        let rec = synth::synth_receptor("r", n_rec, seed);
        let lig = synth::synth_ligand("l", n_lig, seed ^ 0x9e37_79b9);
        for model in [
            ScoringModel::LennardJones,
            ScoringModel::LennardJonesCoulomb { dielectric: 4.0 },
            ScoringModel::Full { dielectric: 4.0, hbond_epsilon: 1.0 },
        ] {
            let want = Scorer::new(&rec, &lig, ScorerOptions { model, kernel: Kernel::Naive })
                .score(&pose);
            for kernel in [Kernel::Run, Kernel::Fused] {
                let got = Scorer::new(&rec, &lig, ScorerOptions { model, kernel }).score(&pose);
                prop_assert!(
                    (want - got).abs() <= 1e-9 * want.abs().max(1.0),
                    "{:?}/{:?}: {} vs {}", model, kernel, want, got
                );
            }
        }
    }

    #[test]
    fn batch_matches_singles(poses in proptest::collection::vec(arb_pose(), 1..12)) {
        let s = scorer(Kernel::Tiled, ScoringModel::LennardJones);
        let mut scratch = PoseScratch::new();
        let mut batch = vec![0.0; poses.len()];
        s.score_batch(ScoreBatch::Poses { poses: &poses, out: &mut batch }, &mut scratch, Exec::Serial);
        for (p, &b) in poses.iter().zip(&batch) {
            prop_assert_eq!(s.score(p), b);
        }
        let mut par = vec![0.0; poses.len()];
        s.score_batch(ScoreBatch::Poses { poses: &poses, out: &mut par }, &mut scratch, Exec::Pool(3));
        prop_assert_eq!(batch, par);
    }

    #[test]
    fn gradient_is_finite_and_consistent(pose in arb_pose()) {
        let s = scorer(Kernel::Tiled, ScoringModel::LennardJonesCoulomb { dielectric: 4.0 });
        let (score, g) = s.score_and_gradient(&pose);
        prop_assert!(score.is_finite());
        prop_assert!(g.force.is_finite());
        prop_assert!(g.torque.is_finite());
        prop_assert_eq!(score, s.score(&pose));
    }

    #[test]
    fn far_pose_scores_vanish(dir_seed in any::<u64>(), dist in 1e4..1e6f64) {
        let s = scorer(Kernel::Tiled, ScoringModel::LennardJones);
        let mut rng = RngStream::from_seed(dir_seed);
        let pose = RigidTransform::from_translation(rng.unit_vector() * dist);
        prop_assert!(s.score(&pose).abs() < 1e-3);
    }

    #[test]
    fn tighter_cutoff_never_adds_interactions(pose in arb_pose()) {
        // |score_grid(8Å) - full| >= |score_grid(20Å) - full| is not always
        // monotone pointwise; assert the robust property instead: both are
        // finite and the 20Å cutoff is closer or equal on average over a
        // small pose cloud. Pointwise here: 20Å error bounded by 8Å error
        // plus numerical slack fails rarely, so use the containment claim:
        // grid results equal the naive cutoff computation exactly.
        let rec = synth::synth_receptor("r", 250, 7);
        let lig = synth::synth_ligand("l", 10, 8);
        for cutoff in [8.0, 20.0] {
            let g = Scorer::new(&rec, &lig, ScorerOptions {
                model: ScoringModel::LennardJones,
                kernel: Kernel::CellList { cutoff },
            });
            prop_assert!(g.score(&pose).is_finite());
        }
    }

    #[test]
    fn hbond_term_only_lowers_reasonable_contacts(pose in arb_pose()) {
        // Full model = LJC + H-bond: difference must be finite and bounded
        // (H-bond adds at most a few kcal/mol per N/O pair in contact).
        let ljc = scorer(Kernel::Tiled, ScoringModel::LennardJonesCoulomb { dielectric: 4.0 });
        let full = scorer(
            Kernel::Tiled,
            ScoringModel::Full { dielectric: 4.0, hbond_epsilon: 1.0 },
        );
        let delta = full.score(&pose) - ljc.score(&pose);
        prop_assert!(delta.is_finite());
    }

    #[test]
    fn translation_far_from_origin_preserves_pair_count(
        (dx, dy, dz) in (-5.0..5.0f64, -5.0..5.0f64, -5.0..5.0f64)
    ) {
        // Scoring is translation-covariant: moving ligand AND receptor by
        // the same offset leaves the score unchanged.
        let rec = synth::synth_receptor("r", 150, 9);
        let lig = synth::synth_ligand("l", 8, 10);
        let offset = Vec3::new(dx, dy, dz);
        let shift = RigidTransform::from_translation(offset);
        let s1 = Scorer::new(&rec, &lig, ScorerOptions::default());
        let s2 = Scorer::new(&rec.transformed(&shift), &lig, ScorerOptions::default());
        let pose = RigidTransform::from_translation(Vec3::new(15.0, 0.0, 0.0));
        let pose_shifted = RigidTransform::from_translation(Vec3::new(15.0, 0.0, 0.0) + offset);
        let a = s1.score(&pose);
        let b = s2.score(&pose_shifted);
        prop_assert!((a - b).abs() < 1e-6 * a.abs().max(1.0), "{} vs {}", a, b);
    }
}

// The grid/cell-list properties build potential grids or spatial grids per
// case, so they run fewer, heavier cases.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cell_list_matches_reference_cutoff_energies(
        pose in arb_pose(),
        n_rec in 50usize..400,
        n_lig in 4usize..20,
        seed in any::<u64>(),
        cutoff in 6.0..18.0f64,
    ) {
        // CellList is *exact* under its cutoff: whatever the frame, pose,
        // or cutoff, it must reproduce the naive cutoff reference within
        // 1e-9 relative (per-kernel agreement policy, DESIGN §7).
        let rec = synth::synth_receptor("r", n_rec, seed);
        let lig = synth::synth_ligand("l", n_lig, seed ^ 0x9e37_79b9);
        let s = Scorer::new(&rec, &lig, ScorerOptions {
            model: ScoringModel::LennardJones,
            kernel: Kernel::CellList { cutoff },
        });
        let want = exact_cutoff_score(&rec, &lig, &pose, GridOptions {
            cutoff,
            dielectric: None,
            hbond_epsilon: None,
            ..Default::default()
        });
        let got = s.score(&pose);
        prop_assert!(
            (got - want).abs() <= 1e-9 * want.abs().max(1.0),
            "cutoff {}: {} vs {}", cutoff, got, want
        );
    }

    #[test]
    fn grid_error_bounded_by_pitch_budget(seed in any::<u64>(), pose_seed in any::<u64>()) {
        // Grid-vs-Fused pose-score error stays within the pitch-derived
        // budget on non-clashing surface poses, and the budget itself
        // tightens as the pitch shrinks.
        let rec = synth::synth_receptor("r", 120, seed % 1000);
        let lig = synth::synth_ligand("l", 8, (seed >> 10) % 1000);
        let radius = rec.positions().iter().map(|p| p.norm()).fold(0.0, f64::max);
        let fused = Scorer::new(&rec, &lig, ScorerOptions {
            model: ScoringModel::LennardJones,
            kernel: Kernel::Fused,
        });
        let mut rng = RngStream::from_seed(pose_seed);
        let poses: Vec<RigidTransform> = (0..6)
            .map(|_| RigidTransform::new(
                rng.rotation(),
                rng.unit_vector() * (radius + rng.uniform_range(2.0, 6.0)),
            ))
            .collect();
        for spacing in [1.2, 0.6] {
            let g = Scorer::new(&rec, &lig, ScorerOptions {
                model: ScoringModel::LennardJones,
                kernel: Kernel::Grid { spacing },
            });
            for pose in &poses {
                let exact = fused.score(pose);
                let approx = g.score(pose);
                prop_assert!(approx.is_finite());
                if exact > 0.0 {
                    // Clash: the clamped grid only promises "repulsive".
                    prop_assert!(approx > -grid_error_budget(exact, spacing, 8));
                    continue;
                }
                prop_assert!(
                    (approx - exact).abs() <= grid_error_budget(exact, spacing, 8),
                    "pitch {}: grid {} vs fused {} (budget {})",
                    spacing, approx, exact, grid_error_budget(exact, spacing, 8)
                );
            }
        }
        prop_assert!(grid_error_budget(-10.0, 0.6, 8) < grid_error_budget(-10.0, 1.2, 8));
    }
}
