//! Ablation studies for the design choices DESIGN.md §6 calls out, plus
//! the energy-to-solution experiment motivated by the paper's §1 energy
//! discussion and Table 1's performance-per-watt row.

use crate::experiment::spot_count;
use crate::platform;
use crate::trace::synthetic_trace;
use serde::{Deserialize, Serialize};
use vsched::{schedule_trace, Strategy, WarmupConfig};
use vsmol::Dataset;

/// One point of the warm-up-length ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WarmupPoint {
    pub iterations: usize,
    /// Makespan under the heterogeneous algorithm with this warm-up.
    pub het_makespan: f64,
    /// Gain over the homogeneous algorithm.
    pub gain: f64,
}

/// Sweep the warm-up length (the paper fixes 5–10 iterations; this shows
/// why): too short measures noise-free virtual devices fine, but on the
/// real system would be noisy; too long delays the proportional split and
/// erodes the gain. Run on Hertz with the M1 workload.
pub fn warmup_sweep(dataset: Dataset, iterations: &[usize]) -> Vec<WarmupPoint> {
    let node = platform::hertz();
    let n_spots = spot_count(dataset);
    let pairs = (dataset.ligand_atoms() * dataset.receptor_atoms()) as u64;
    let trace = synthetic_trace(&metaheur::m1(1.0), n_spots);
    let hom =
        schedule_trace(node.cpu(), node.gpus(), &trace, pairs, Strategy::HomogeneousSplit).makespan;
    iterations
        .iter()
        .map(|&iterations| {
            let strat = Strategy::HeterogeneousSplit {
                warmup: WarmupConfig { iterations, ..Default::default() },
            };
            let het = schedule_trace(node.cpu(), node.gpus(), &trace, pairs, strat).makespan;
            WarmupPoint { iterations, het_makespan: het, gain: hom / het }
        })
        .collect()
}

/// One point of the dynamic-queue chunk-size ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChunkPoint {
    pub chunk: u64,
    pub makespan: f64,
    /// Relative to the heterogeneous static split.
    pub vs_heterogeneous: f64,
}

/// Sweep the dynamic queue's chunk size: small chunks balance perfectly
/// but destroy GPU occupancy and multiply launch overhead; large chunks
/// quantize badly. The static Equation 1 split avoids the trade-off, which
/// is the paper's implicit argument for it.
pub fn chunk_sweep(dataset: Dataset, chunks: &[u64]) -> Vec<ChunkPoint> {
    let node = platform::hertz();
    let n_spots = spot_count(dataset);
    let pairs = (dataset.ligand_atoms() * dataset.receptor_atoms()) as u64;
    let trace = synthetic_trace(&metaheur::m1(1.0), n_spots);
    let het = schedule_trace(
        node.cpu(),
        node.gpus(),
        &trace,
        pairs,
        Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
    )
    .makespan;
    chunks
        .iter()
        .map(|&chunk| {
            let m = schedule_trace(
                node.cpu(),
                node.gpus(),
                &trace,
                pairs,
                Strategy::DynamicQueue { chunk },
            )
            .makespan;
            ChunkPoint { chunk, makespan: m, vs_heterogeneous: m / het }
        })
        .collect()
}

/// One row of the energy experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyRow {
    pub metaheuristic: String,
    pub openmp_joules: f64,
    pub hom_joules: f64,
    pub het_joules: f64,
}

impl EnergyRow {
    /// Energy saved by the heterogeneous algorithm over the homogeneous.
    pub fn het_saving(&self) -> f64 {
        1.0 - self.het_joules / self.hom_joules
    }
}

/// Energy-to-solution on Hertz for the M1–M4 suite: the whole-node joule
/// cost of the OpenMP baseline vs the two GPU schedules. The heterogeneous
/// algorithm saves energy twice over — it finishes sooner *and* idles the
/// fast GPU less.
pub fn energy_table(dataset: Dataset) -> Vec<EnergyRow> {
    let node = platform::hertz();
    let n_spots = spot_count(dataset);
    let pairs = (dataset.ligand_atoms() * dataset.receptor_atoms()) as u64;
    metaheur::paper_suite(1.0)
        .into_iter()
        .map(|params| {
            let trace = synthetic_trace(&params, n_spots);
            let e = |s: Strategy| {
                schedule_trace(node.cpu(), node.gpus(), &trace, pairs, s).energy_joules
            };
            EnergyRow {
                metaheuristic: params.name,
                openmp_joules: e(Strategy::CpuOnly),
                hom_joules: e(Strategy::HomogeneousSplit),
                het_joules: e(Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() }),
            }
        })
        .collect()
}

/// Render the energy table.
pub fn render_energy_table(dataset: Dataset, rows: &[EnergyRow]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Energy to solution (J), PDB:{} on Hertz (whole-node accounting)",
        dataset.pdb_id()
    );
    let _ = writeln!(
        s,
        "{:<6} {:>14} {:>14} {:>14} {:>12}",
        "Meta", "OpenMP", "Hom.Alg", "Het.Alg", "Het saving"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<6} {:>14.1} {:>14.1} {:>14.1} {:>11.1}%",
            r.metaheuristic,
            r.openmp_joules,
            r.hom_joules,
            r.het_joules,
            100.0 * r.het_saving()
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_sweep_has_a_sweet_spot() {
        let pts = warmup_sweep(Dataset::TwoBsm, &[1, 5, 10, 25, 33]);
        assert_eq!(pts.len(), 5);
        // The paper's 5-10 band gains more than warming up the entire run
        // (33 batches = the whole M1 trace under equal split).
        let at = |n: usize| pts.iter().find(|p| p.iterations == n).unwrap().gain;
        assert!(at(5) > at(33), "5-iter warm-up {} vs full-run {}", at(5), at(33));
        assert!(at(10) > at(33));
        // And every configuration still at least matches the hom split.
        for p in &pts {
            assert!(p.gain > 0.99, "iterations {}: gain {}", p.iterations, p.gain);
        }
    }

    #[test]
    fn chunk_sweep_penalizes_tiny_chunks() {
        let pts = chunk_sweep(Dataset::TwoBsm, &[8, 64, 512, 2048]);
        let tiny = &pts[0];
        let big = pts.iter().find(|p| p.chunk == 512).unwrap();
        assert!(
            tiny.makespan > big.makespan,
            "8-item chunks {} should lose to 512 {}",
            tiny.makespan,
            big.makespan
        );
    }

    #[test]
    fn energy_rows_ordered_like_time_rows() {
        let rows = energy_table(Dataset::TwoBsm);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            // GPU runs cost far less energy than the OpenMP baseline.
            assert!(r.hom_joules < r.openmp_joules / 3.0, "{}", r.metaheuristic);
            // The heterogeneous algorithm saves energy over the homogeneous.
            assert!(r.het_saving() > 0.0, "{}: saving {}", r.metaheuristic, r.het_saving());
        }
    }

    #[test]
    fn energy_render_contains_rows() {
        let rows = energy_table(Dataset::TwoBsm);
        let s = render_energy_table(Dataset::TwoBsm, &rows);
        for m in ["M1", "M2", "M3", "M4"] {
            assert!(s.contains(m));
        }
    }
}
