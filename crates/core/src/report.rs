//! Machine-readable experiment reports.
//!
//! Every experiment type in this crate is `serde::Serialize`; this module
//! bundles the full reproduction into one JSON document for downstream
//! plotting/regression tooling (`tables` prints human text; CI diffs this).

use crate::ablation::{energy_table, EnergyRow};
use crate::experiment::{hertz_table, jupiter_table, ExperimentScale, TableResult};
use crate::scaling::{gpu_scaling, ScalingPoint};
use serde::{Deserialize, Serialize};
use vsmol::Dataset;

/// The whole reproduction in one structure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FullReport {
    /// Tables 6, 7 (Jupiter) and 8, 9 (Hertz).
    pub tables: Vec<TableResult>,
    /// Energy experiment (Hertz, both datasets).
    pub energy: Vec<(String, Vec<EnergyRow>)>,
    /// GPU-count scaling on Jupiter (both datasets, M1).
    pub scaling: Vec<(String, Vec<ScalingPoint>)>,
    /// The workload calibration the suite uses (evals/spot per
    /// metaheuristic at full scale).
    pub workload_calibration: Vec<(String, u64)>,
}

/// Build the full report at a given scale. Everything is deterministic and
/// virtual-timed, so two invocations produce identical JSON.
pub fn full_report(scale: ExperimentScale) -> FullReport {
    FullReport {
        tables: vec![
            jupiter_table(Dataset::TwoBsm, scale),
            jupiter_table(Dataset::TwoBxg, scale),
            hertz_table(Dataset::TwoBsm, scale),
            hertz_table(Dataset::TwoBxg, scale),
        ],
        energy: Dataset::ALL.iter().map(|&d| (d.pdb_id().to_string(), energy_table(d))).collect(),
        scaling: Dataset::ALL
            .iter()
            .map(|&d| (d.pdb_id().to_string(), gpu_scaling(d, &metaheur::m1(1.0))))
            .collect(),
        workload_calibration: metaheur::paper_suite(1.0)
            .into_iter()
            .map(|p| {
                let evals = p.evals_per_spot();
                (p.name, evals)
            })
            .collect(),
    }
}

/// Serialize the report as pretty JSON.
pub fn to_json(report: &FullReport) -> String {
    // serde_json is not in the approved dependency set; emit JSON through
    // a small hand-rolled writer over the serde data model... simpler and
    // sufficient: derive via the `serde` "serialize to string" pattern is
    // unavailable without a format crate, so write the fields directly.
    let mut s = String::new();
    use std::fmt::Write;
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"tables\": [");
    for (i, t) in report.tables.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"system\": \"{}\",", t.system);
        let _ = writeln!(s, "      \"dataset\": \"{}\",", t.dataset);
        let _ = writeln!(s, "      \"spots\": {},", t.n_spots);
        let _ = writeln!(s, "      \"rows\": [");
        for (j, r) in t.rows.iter().enumerate() {
            let hom =
                r.homogeneous_system_s.map(|v| format!("{v:.6}")).unwrap_or_else(|| "null".into());
            let _ = writeln!(
                s,
                "        {{\"meta\": \"{}\", \"openmp_s\": {:.6}, \"hom_system_s\": {}, \"het_hom_s\": {:.6}, \"het_het_s\": {:.6}, \"gain\": {:.4}, \"speedup\": {:.2}}}{}",
                r.metaheuristic,
                r.openmp_s,
                hom,
                r.het_sys_hom_comp_s,
                r.het_sys_het_comp_s,
                r.speedup_het_vs_hom(),
                r.speedup_openmp_vs_het(),
                if j + 1 < t.rows.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "      ]");
        let _ = writeln!(s, "    }}{}", if i + 1 < report.tables.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"energy\": [");
    for (i, (ds, rows)) in report.energy.iter().enumerate() {
        let _ = write!(s, "    {{\"dataset\": \"{ds}\", \"rows\": [");
        for (j, r) in rows.iter().enumerate() {
            let _ = write!(
                s,
                "{{\"meta\": \"{}\", \"openmp_j\": {:.3}, \"hom_j\": {:.3}, \"het_j\": {:.3}}}{}",
                r.metaheuristic,
                r.openmp_joules,
                r.hom_joules,
                r.het_joules,
                if j + 1 < rows.len() { ", " } else { "" }
            );
        }
        let _ = writeln!(s, "]}}{}", if i + 1 < report.energy.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"scaling\": [");
    for (i, (ds, pts)) in report.scaling.iter().enumerate() {
        let _ = write!(s, "    {{\"dataset\": \"{ds}\", \"points\": [");
        for (j, p) in pts.iter().enumerate() {
            let _ = write!(
                s,
                "{{\"gpus\": {}, \"makespan_s\": {:.6}, \"speedup\": {:.3}}}{}",
                p.gpus,
                p.makespan,
                p.speedup,
                if j + 1 < pts.len() { ", " } else { "" }
            );
        }
        let _ = writeln!(s, "]}}{}", if i + 1 < report.scaling.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"workload_calibration\": {{");
    for (i, (name, evals)) in report.workload_calibration.iter().enumerate() {
        let _ = writeln!(
            s,
            "    \"{name}\": {evals}{}",
            if i + 1 < report.workload_calibration.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_complete() {
        let r = full_report(ExperimentScale::Quick);
        assert_eq!(r.tables.len(), 4);
        assert_eq!(r.energy.len(), 2);
        assert_eq!(r.scaling.len(), 2);
        assert_eq!(r.workload_calibration.len(), 4);
    }

    #[test]
    fn report_is_deterministic() {
        let a = to_json(&full_report(ExperimentScale::Quick));
        let b = to_json(&full_report(ExperimentScale::Quick));
        assert_eq!(a, b);
    }

    #[test]
    fn json_is_structurally_balanced() {
        let j = to_json(&full_report(ExperimentScale::Quick));
        // Cheap structural checks without a JSON parser dependency.
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "brace balance");
        assert_eq!(j.matches('[').count(), j.matches(']').count(), "bracket balance");
        for key in ["\"tables\"", "\"energy\"", "\"scaling\"", "\"workload_calibration\"", "\"M4\""]
        {
            assert!(j.contains(key), "missing {key}");
        }
        assert!(!j.contains("NaN") && !j.contains("inf"), "non-finite values leaked");
    }
}
