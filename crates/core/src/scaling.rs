//! GPU-count scaling — the paper's scalability claim ("the multiGPU
//! versions prove to be scalable", §5) as an explicit sweep: the same
//! workload on 1..=6 GPUs of the Jupiter pool.

use crate::experiment::spot_count;
use crate::platform;
use crate::trace::synthetic_trace;
use serde::{Deserialize, Serialize};
use vsched::{schedule_trace, Strategy, WarmupConfig};
use vsmol::Dataset;

/// One point of the GPU-count sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingPoint {
    pub gpus: usize,
    pub makespan: f64,
    /// Speed-up over the single-GPU configuration.
    pub speedup: f64,
    /// Parallel efficiency: `speedup / gpus` is misleading on heterogeneous
    /// pools, so this is speed-up over the *throughput-weighted* ideal.
    pub efficiency: f64,
}

/// Sweep the Jupiter GPU pool from 1 to all 6 devices (GTX 590 ×4 then
/// Tesla C2075 ×2, in ordinal order) under the heterogeneous algorithm.
pub fn gpu_scaling(
    dataset: Dataset,
    metaheuristic: &metaheur::MetaheuristicParams,
) -> Vec<ScalingPoint> {
    let node = platform::jupiter();
    let n_spots = spot_count(dataset);
    let pairs = (dataset.ligand_atoms() * dataset.receptor_atoms()) as u64;
    let trace = synthetic_trace(metaheuristic, n_spots);

    let mut points = Vec::new();
    let mut t1 = 0.0;
    let rate = |i: usize| node.properties(i).sustained_lane_hz();
    let total_rate_1 = rate(0);
    for n in 1..=node.device_count() {
        let subset: Vec<usize> = (0..n).collect();
        let sub = node.subset(&subset);
        let makespan = schedule_trace(
            node.cpu(),
            sub.gpus(),
            &trace,
            pairs,
            Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() },
        )
        .makespan;
        if n == 1 {
            t1 = makespan;
        }
        let speedup = t1 / makespan;
        let ideal: f64 = (0..n).map(rate).sum::<f64>() / total_rate_1;
        points.push(ScalingPoint { gpus: n, makespan, speedup, efficiency: speedup / ideal });
    }
    points
}

/// Render the sweep.
pub fn render_scaling(dataset: Dataset, points: &[ScalingPoint]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "GPU scaling, PDB:{} on the Jupiter pool (heterogeneous algorithm)",
        dataset.pdb_id()
    );
    let _ =
        writeln!(s, "{:>6} {:>14} {:>10} {:>12}", "GPUs", "makespan (s)", "speedup", "efficiency");
    for p in points {
        let _ = writeln!(
            s,
            "{:>6} {:>14.4} {:>9.2}x {:>11.1}%",
            p.gpus,
            p.makespan,
            p.speedup,
            100.0 * p.efficiency
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_decreases_with_gpus() {
        let pts = gpu_scaling(Dataset::TwoBsm, &metaheur::m1(1.0));
        assert_eq!(pts.len(), 6);
        for w in pts.windows(2) {
            assert!(
                w[1].makespan < w[0].makespan,
                "adding a GPU must help: {} -> {}",
                w[0].makespan,
                w[1].makespan
            );
        }
    }

    #[test]
    fn speedup_reasonable_at_full_pool() {
        let pts = gpu_scaling(Dataset::TwoBxg, &metaheur::m1(1.0));
        let last = pts.last().unwrap();
        // 4x GTX590 + 2x C2075 ≈ 5.65x the single-GTX590 throughput.
        assert!(last.speedup > 3.0, "6-GPU speedup {}", last.speedup);
        assert!(last.speedup < 6.0, "superlinear: {}", last.speedup);
    }

    #[test]
    fn efficiency_degrades_gracefully() {
        // Occupancy loss with more devices reduces efficiency, but the big
        // 2BXG workload keeps it above 60%.
        let pts = gpu_scaling(Dataset::TwoBxg, &metaheur::m4(1.0));
        for p in &pts {
            assert!(
                p.efficiency > 0.6 && p.efficiency <= 1.05,
                "{} GPUs: efficiency {}",
                p.gpus,
                p.efficiency
            );
        }
    }

    #[test]
    fn render_has_all_rows() {
        let pts = gpu_scaling(Dataset::TwoBsm, &metaheur::m3(1.0));
        let s = render_scaling(Dataset::TwoBsm, &pts);
        assert_eq!(s.lines().count(), 2 + 6);
    }
}
