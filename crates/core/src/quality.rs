//! Solution-quality experiments (real scoring, host compute).
//!
//! Tables 6–9 measure *time*; the abstract also claims "a cooperative
//! scheduling of jobs optimizes the quality of the solution". This module
//! measures quality: best binding score found per algorithm at a fixed
//! evaluation budget, across the Algorithm 1 suite and the extension
//! engines (PSO, Tabu, Lamarckian), plus the cooperative-vs-independent
//! comparison.

use crate::screen::VirtualScreen;
use metaheur::{run_pso, run_tabu, ImproveStrategy, MetaheuristicParams, PsoParams, TabuParams};
use serde::{Deserialize, Serialize};
use vsched::EvaluatorSpec;
use vsmol::Dataset;

/// One algorithm's quality measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualityRow {
    pub algorithm: String,
    pub evaluations: u64,
    pub best_score: f64,
    /// Number of distinct binding-site clusters among per-spot bests
    /// (2 Å RMSD cutoff).
    pub clusters: usize,
}

/// Compare algorithm families on one dataset at comparable budgets.
///
/// `scale` scales every engine's budget (1.0 ≈ the M2 workload); `threads`
/// sets host scoring parallelism.
pub fn quality_comparison(
    dataset: Dataset,
    max_spots: usize,
    scale: f64,
    threads: usize,
    seed: u64,
) -> Vec<QualityRow> {
    let screen = VirtualScreen::builder(dataset).max_spots(max_spots).seed(seed).build();
    let spots = screen.spots().to_vec();
    let mk_eval = || EvaluatorSpec::PooledCpu { threads }.build(screen.scorer());
    let mut rows = Vec::new();

    // The Table 4 suite through the Algorithm 1 engine.
    for params in metaheur::paper_suite(scale) {
        let mut ev = mk_eval();
        let r = metaheur::run(&params, &spots, &mut ev, seed);
        rows.push(row_from(&screen, &params.name, r));
    }

    // Lamarckian variant of M2 (gradient-informed local search).
    let lam = MetaheuristicParams {
        name: "M2+Lamarckian".into(),
        improve: ImproveStrategy::Lamarckian { steps: 1, step_size: 0.3, angle_step: 0.08 },
        ..metaheur::m2(scale)
    };
    let mut ev = mk_eval();
    let r = metaheur::run(&lam, &spots, &mut ev, seed);
    rows.push(row_from(&screen, &lam.name, r));

    // PSO (distributed) and Tabu (neighborhood) extension engines, budgeted
    // near the M2 workload.
    let m2_evals = metaheur::m2(scale).evals_per_spot();
    let pso = PsoParams {
        swarm_per_spot: 64,
        iterations: ((m2_evals / 64).saturating_sub(1)).max(1) as usize,
        ..Default::default()
    };
    let mut ev = mk_eval();
    let r = run_pso(&pso, &spots, &mut ev, seed);
    rows.push(row_from(&screen, "PSO", r));

    let tabu = TabuParams {
        iterations: ((m2_evals.saturating_sub(1)) / 16).max(1) as usize,
        neighbors: 16,
        ..Default::default()
    };
    let mut ev = mk_eval();
    let r = run_tabu(&tabu, &spots, &mut ev, seed);
    rows.push(row_from(&screen, "Tabu", r));

    rows
}

fn row_from(screen: &VirtualScreen, name: &str, r: metaheur::RunResult) -> QualityRow {
    let mut ranked = r.best_per_spot.clone();
    ranked.sort_by(vsmol::conformation::score_cmp);
    let clusters = vsmol::rmsd::cluster_poses(screen.ligand(), &ranked, 2.0).len();
    QualityRow {
        algorithm: name.to_string(),
        evaluations: r.evaluations,
        best_score: r.best.score,
        clusters,
    }
}

/// Render a quality table.
pub fn render_quality(dataset: Dataset, rows: &[QualityRow]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "Solution quality, PDB:{} (real Lennard-Jones scoring)", dataset.pdb_id());
    let _ = writeln!(
        s,
        "{:<16} {:>12} {:>12} {:>10}",
        "algorithm", "evaluations", "best score", "clusters"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<16} {:>12} {:>12.2} {:>10}",
            r.algorithm, r.evaluations, r.best_score, r.clusters
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_covers_all_families() {
        let rows = quality_comparison(Dataset::TwoBsm, 3, 0.03, 4, 17);
        let names: Vec<&str> = rows.iter().map(|r| r.algorithm.as_str()).collect();
        for want in ["M1", "M2", "M3", "M4", "M2+Lamarckian", "PSO", "Tabu"] {
            assert!(names.contains(&want), "missing {want}: {names:?}");
        }
        for r in &rows {
            assert!(r.best_score.is_finite());
            assert!(
                r.best_score < 0.0,
                "{}: {} not a favorable binding",
                r.algorithm,
                r.best_score
            );
            assert!(r.clusters >= 1 && r.clusters <= 3);
            assert!(r.evaluations > 0);
        }
    }

    #[test]
    fn bigger_budget_no_worse() {
        let small = quality_comparison(Dataset::TwoBsm, 2, 0.02, 4, 5);
        let large = quality_comparison(Dataset::TwoBsm, 2, 0.06, 4, 5);
        let best = |rows: &[QualityRow], n: &str| {
            rows.iter().find(|r| r.algorithm == n).unwrap().best_score
        };
        assert!(best(&large, "M1") <= best(&small, "M1") + 1e-9);
    }

    #[test]
    fn render_contains_rows() {
        let rows = quality_comparison(Dataset::TwoBsm, 2, 0.02, 4, 2);
        let s = render_quality(Dataset::TwoBsm, &rows);
        assert!(s.contains("PSO") && s.contains("Tabu"));
    }
}
