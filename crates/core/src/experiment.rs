//! Reproduction harness for the paper's evaluation (Tables 6–9).
//!
//! Each table crosses the four metaheuristics (Table 4) with the platform
//! configurations of one system and one dataset:
//!
//! - **Jupiter** (Tables 6–7): OpenMP | homogeneous system (4×GTX 590) |
//!   heterogeneous system (6 GPUs) under the homogeneous algorithm |
//!   heterogeneous system under the heterogeneous algorithm;
//! - **Hertz** (Tables 8–9): OpenMP | heterogeneous system (K40c + GTX 580)
//!   under the homogeneous | heterogeneous algorithm.
//!
//! The metaheuristic search trajectory is independent of the scheduling
//! strategy (deterministic per-spot RNG streams), so each row replays the
//! same analytic workload trace ([`crate::trace::synthetic_trace`]) under
//! every configuration and reports virtual times and the paper's two
//! speed-up columns.

use crate::platform;
use crate::trace::synthetic_trace;
use metaheur::MetaheuristicParams;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;
use vsched::{schedule_trace, Strategy, WarmupConfig};
use vsmol::{surface, Dataset, SurfaceOptions};

/// Workload scale for the harness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExperimentScale {
    /// Fast smoke run (~5% of the calibrated workload).
    Quick,
    /// The calibrated paper-shaped workload.
    Full,
    /// Custom multiplier on the calibrated workload.
    Custom(f64),
}

impl ExperimentScale {
    pub fn factor(self) -> f64 {
        match self {
            ExperimentScale::Quick => 0.05,
            ExperimentScale::Full => 1.0,
            ExperimentScale::Custom(f) => f,
        }
    }
}

/// One row of a Tables 6–9 analog.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableRow {
    pub metaheuristic: String,
    /// OpenMP baseline time (s).
    pub openmp_s: f64,
    /// Jupiter only: the 4×GTX 590 homogeneous system (s).
    pub homogeneous_system_s: Option<f64>,
    /// Heterogeneous system, homogeneous computation (s).
    pub het_sys_hom_comp_s: f64,
    /// Heterogeneous system, heterogeneous computation (s).
    pub het_sys_het_comp_s: f64,
}

impl TableRow {
    /// "SPEED-UP Heterogeneous Computation vs Homogeneous Computation".
    pub fn speedup_het_vs_hom(&self) -> f64 {
        self.het_sys_hom_comp_s / self.het_sys_het_comp_s
    }

    /// "SPEED-UP OpenMP vs Heterogeneous Computation".
    pub fn speedup_openmp_vs_het(&self) -> f64 {
        self.openmp_s / self.het_sys_het_comp_s
    }
}

/// A full table: one system × one dataset × the M1–M4 suite.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableResult {
    pub title: String,
    pub system: String,
    pub dataset: String,
    pub n_spots: usize,
    pub rows: Vec<TableRow>,
}

/// Number of surface spots detected on a dataset's receptor with the
/// default BINDSURF options (cached: detection is deterministic).
pub fn spot_count(dataset: Dataset) -> usize {
    static CACHE: OnceLock<[usize; 2]> = OnceLock::new();
    let cache = CACHE.get_or_init(|| {
        let count =
            |d: Dataset| surface::detect_spots(&d.receptor(), &SurfaceOptions::default()).len();
        [count(Dataset::TwoBsm), count(Dataset::TwoBxg)]
    });
    match dataset {
        Dataset::TwoBsm => cache[0],
        Dataset::TwoBxg => cache[1],
    }
}

fn het_strategy() -> Strategy {
    Strategy::HeterogeneousSplit { warmup: WarmupConfig::default() }
}

/// Tables 6 (2BSM) and 7 (2BXG): the Jupiter system.
pub fn jupiter_table(dataset: Dataset, scale: ExperimentScale) -> TableResult {
    let n_spots = spot_count(dataset);
    let pairs = (dataset.ligand_atoms() * dataset.receptor_atoms()) as u64;
    let node = platform::jupiter();
    let hom_subset: Vec<usize> = (0..4).collect();
    let hom_node = node.subset(&hom_subset);

    let rows = metaheur::paper_suite(scale.factor())
        .into_iter()
        .map(|params: MetaheuristicParams| {
            let trace = synthetic_trace(&params, n_spots);
            let openmp =
                schedule_trace(node.cpu(), node.gpus(), &trace, pairs, Strategy::CpuOnly).makespan;
            let hom_sys = schedule_trace(
                node.cpu(),
                hom_node.gpus(),
                &trace,
                pairs,
                Strategy::HomogeneousSplit,
            )
            .makespan;
            let het_hom =
                schedule_trace(node.cpu(), node.gpus(), &trace, pairs, Strategy::HomogeneousSplit)
                    .makespan;
            let het_het =
                schedule_trace(node.cpu(), node.gpus(), &trace, pairs, het_strategy()).makespan;
            TableRow {
                metaheuristic: params.name,
                openmp_s: openmp,
                homogeneous_system_s: Some(hom_sys),
                het_sys_hom_comp_s: het_hom,
                het_sys_het_comp_s: het_het,
            }
        })
        .collect();

    TableResult {
        title: format!(
            "Execution time (s), PDB:{} on Jupiter (4x GTX 590 + 2x Tesla C2075)",
            dataset.pdb_id()
        ),
        system: "Jupiter".into(),
        dataset: dataset.pdb_id().into(),
        n_spots,
        rows,
    }
}

/// Tables 8 (2BSM) and 9 (2BXG): the Hertz system.
pub fn hertz_table(dataset: Dataset, scale: ExperimentScale) -> TableResult {
    let n_spots = spot_count(dataset);
    let pairs = (dataset.ligand_atoms() * dataset.receptor_atoms()) as u64;
    let node = platform::hertz();

    let rows = metaheur::paper_suite(scale.factor())
        .into_iter()
        .map(|params: MetaheuristicParams| {
            let trace = synthetic_trace(&params, n_spots);
            let openmp =
                schedule_trace(node.cpu(), node.gpus(), &trace, pairs, Strategy::CpuOnly).makespan;
            let het_hom =
                schedule_trace(node.cpu(), node.gpus(), &trace, pairs, Strategy::HomogeneousSplit)
                    .makespan;
            let het_het =
                schedule_trace(node.cpu(), node.gpus(), &trace, pairs, het_strategy()).makespan;
            TableRow {
                metaheuristic: params.name,
                openmp_s: openmp,
                homogeneous_system_s: None,
                het_sys_hom_comp_s: het_hom,
                het_sys_het_comp_s: het_het,
            }
        })
        .collect();

    TableResult {
        title: format!(
            "Execution time (s), PDB:{} on Hertz (Tesla K40c + GTX 580)",
            dataset.pdb_id()
        ),
        system: "Hertz".into(),
        dataset: dataset.pdb_id().into(),
        n_spots,
        rows,
    }
}

/// Render a table in the paper's layout (plain text).
pub fn render_table(t: &TableResult) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "{}", t.title);
    let _ = writeln!(s, "(spots: {}, virtual time from the gpusim cost model)", t.n_spots);
    let has_hom = t.rows.iter().any(|r| r.homogeneous_system_s.is_some());
    if has_hom {
        let _ = writeln!(
            s,
            "{:<6} {:>12} {:>12} {:>14} {:>14} {:>12} {:>12}",
            "Meta", "OpenMP", "Hom.System", "HetSys/HomAlg", "HetSys/HetAlg", "Het/Hom", "OMP/Het"
        );
    } else {
        let _ = writeln!(
            s,
            "{:<6} {:>12} {:>14} {:>14} {:>12} {:>12}",
            "Meta", "OpenMP", "HetSys/HomAlg", "HetSys/HetAlg", "Het/Hom", "OMP/Het"
        );
    }
    for r in &t.rows {
        if has_hom {
            let _ = writeln!(
                s,
                "{:<6} {:>12.2} {:>12.2} {:>14.2} {:>14.2} {:>12.2} {:>12.2}",
                r.metaheuristic,
                r.openmp_s,
                r.homogeneous_system_s.unwrap_or(f64::NAN),
                r.het_sys_hom_comp_s,
                r.het_sys_het_comp_s,
                r.speedup_het_vs_hom(),
                r.speedup_openmp_vs_het()
            );
        } else {
            let _ = writeln!(
                s,
                "{:<6} {:>12.2} {:>14.2} {:>14.2} {:>12.2} {:>12.2}",
                r.metaheuristic,
                r.openmp_s,
                r.het_sys_hom_comp_s,
                r.het_sys_het_comp_s,
                r.speedup_het_vs_hom(),
                r.speedup_openmp_vs_het()
            );
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spot_counts_scale_with_receptor() {
        let small = spot_count(Dataset::TwoBsm);
        let big = spot_count(Dataset::TwoBxg);
        assert!(small > 0);
        assert!(big > small, "2BXG {big} vs 2BSM {small}");
    }

    #[test]
    fn jupiter_table_shape_claims() {
        // Full scale: the paper's shape claims hold at the calibrated
        // workload (Quick-scale runs are too short for the warm-up).
        let t = jupiter_table(Dataset::TwoBsm, ExperimentScale::Full);
        assert_eq!(t.rows.len(), 4);
        for r in &t.rows {
            // GPUs beat OpenMP by tens of times.
            let su = r.speedup_openmp_vs_het();
            assert!(su > 15.0, "{}: OpenMP/Het {su}", r.metaheuristic);
            // Adding the two C2075s helps over the 4-GPU homogeneous system.
            assert!(r.het_sys_hom_comp_s < r.homogeneous_system_s.unwrap());
            // Near-identical Fermi cards: heterogeneous algorithm gains are
            // small (paper: 1.01–1.06×).
            let gain = r.speedup_het_vs_hom();
            assert!((0.95..1.30).contains(&gain), "{}: het/hom {gain}", r.metaheuristic);
        }
    }

    #[test]
    fn hertz_table_shape_claims() {
        let t = hertz_table(Dataset::TwoBsm, ExperimentScale::Full);
        assert_eq!(t.rows.len(), 4);
        for r in &t.rows {
            assert!(r.homogeneous_system_s.is_none());
            let su = r.speedup_openmp_vs_het();
            assert!(su > 15.0, "{}: OpenMP/Het {su}", r.metaheuristic);
            // Kepler + Fermi: the heterogeneous algorithm pays off
            // (paper: 1.31–1.56×).
            let gain = r.speedup_het_vs_hom();
            assert!(gain > 1.1, "{}: het/hom gain only {gain}", r.metaheuristic);
            assert!(gain < 2.0, "{}: het/hom gain suspicious {gain}", r.metaheuristic);
        }
    }

    #[test]
    fn speedup_grows_with_problem_size() {
        // §5: "the speed-up increases with the problem size".
        let small = jupiter_table(Dataset::TwoBsm, ExperimentScale::Full);
        let big = jupiter_table(Dataset::TwoBxg, ExperimentScale::Full);
        let mean = |t: &TableResult| -> f64 {
            t.rows.iter().map(|r| r.speedup_openmp_vs_het()).sum::<f64>() / t.rows.len() as f64
        };
        assert!(mean(&big) > mean(&small), "2BXG {} should beat 2BSM {}", mean(&big), mean(&small));
    }

    #[test]
    fn m4_has_best_speedup_in_row_family() {
        // §5: M4 "achiev[es] the best speed-up ratios in comparison with
        // the distributed metaheuristics".
        let t = hertz_table(Dataset::TwoBxg, ExperimentScale::Full);
        let m4 = t.rows.iter().find(|r| r.metaheuristic == "M4").unwrap();
        for r in &t.rows {
            assert!(
                m4.speedup_openmp_vs_het() >= r.speedup_openmp_vs_het() * 0.98,
                "M4 {} vs {} {}",
                m4.speedup_openmp_vs_het(),
                r.metaheuristic,
                r.speedup_openmp_vs_het()
            );
        }
    }

    #[test]
    fn m4_is_most_expensive_row() {
        let t = jupiter_table(Dataset::TwoBsm, ExperimentScale::Full);
        let m4 = t.rows.iter().find(|r| r.metaheuristic == "M4").unwrap();
        for r in &t.rows {
            assert!(m4.openmp_s >= r.openmp_s, "M4 must dominate cost");
        }
        // And M3 is the cheapest (paper: M3 < M1 < M2 << M4).
        let m3 = t.rows.iter().find(|r| r.metaheuristic == "M3").unwrap();
        for r in &t.rows {
            assert!(m3.openmp_s <= r.openmp_s, "M3 must be cheapest");
        }
    }

    #[test]
    fn render_produces_all_rows() {
        let t = hertz_table(Dataset::TwoBsm, ExperimentScale::Full);
        let s = render_table(&t);
        for m in ["M1", "M2", "M3", "M4"] {
            assert!(s.contains(m), "missing {m} in rendering:\n{s}");
        }
    }

    #[test]
    fn custom_scale_factor() {
        assert_eq!(ExperimentScale::Custom(0.5).factor(), 0.5);
        assert_eq!(ExperimentScale::Full.factor(), 1.0);
    }
}
