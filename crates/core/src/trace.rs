//! Analytic scoring-batch traces.
//!
//! The engine in `metaheur` batches every scoring request across spots and
//! is deterministic in its batch *sizes*: with a fixed-generation end
//! condition, the batch stream depends only on the parameters and the spot
//! count — never on the scores. [`synthetic_trace`] computes that stream
//! directly; `tests` prove it equal to the engine's recorded
//! [`metaheur::RunResult::batch_trace`]. The experiment harness replays
//! these traces under every scheduling strategy (`vsched::schedule_trace`)
//! to produce Tables 6–9 without recomputing identical searches.

use metaheur::params::{improved_count, MetaheuristicParams};

/// The exact scoring-batch stream `metaheur::run` emits for `params` over
/// `n_spots` spots (fixed-generation end conditions only).
///
/// # Panics
/// Panics for convergence-based end conditions, whose batch count is
/// score-dependent — record a real trace for those.
pub fn synthetic_trace(params: &MetaheuristicParams, n_spots: usize) -> Vec<u64> {
    assert!(n_spots > 0, "need at least one spot");
    assert!(
        matches!(params.end, metaheur::EndCondition::Generations(_)) || params.single_pass,
        "analytic traces require a fixed generation count"
    );
    let spots = n_spots as u64;
    let mut trace = vec![params.population_per_spot as u64 * spots];

    if params.single_pass {
        let improved =
            improved_count(params.population_per_spot, params.improve_fraction) as u64 * spots;
        let steps = params.improve.evals_per_element();
        if improved > 0 {
            trace.extend(std::iter::repeat_n(improved, steps));
        }
        return trace;
    }

    let offspring = params.offspring_per_spot as u64 * spots;
    let improved =
        improved_count(params.offspring_per_spot, params.improve_fraction) as u64 * spots;
    let steps = params.improve.evals_per_element();
    for _ in 0..params.end.max_generations() {
        trace.push(offspring);
        if improved > 0 {
            trace.extend(std::iter::repeat_n(improved, steps));
        }
    }
    trace
}

/// Total conformations in a trace.
pub fn trace_items(trace: &[u64]) -> u64 {
    trace.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaheur::SyntheticEvaluator;
    use vsmath::Vec3;
    use vsmol::Spot;

    fn spots(n: usize) -> Vec<Spot> {
        (0..n)
            .map(|i| Spot {
                id: i,
                center: Vec3::new(15.0 * i as f64, 0.0, 0.0),
                normal: Vec3::Z,
                radius: 5.0,
                anchor_atom: 0,
            })
            .collect()
    }

    fn engine_trace(params: &metaheur::MetaheuristicParams, n_spots: usize) -> Vec<u64> {
        let sp = spots(n_spots);
        let mut ev = SyntheticEvaluator::new(sp.iter().map(|s| s.center).collect());
        let r = metaheur::run(params, &sp, &mut ev, 77);
        assert_eq!(ev.evaluations, r.evaluations);
        r.batch_trace
    }

    #[test]
    fn matches_engine_for_all_paper_metaheuristics() {
        for scale in [0.05, 0.2] {
            for params in metaheur::paper_suite(scale) {
                for n_spots in [1usize, 3, 8] {
                    let analytic = synthetic_trace(&params, n_spots);
                    let recorded = engine_trace(&params, n_spots);
                    assert_eq!(analytic, recorded, "{} scale {scale} spots {n_spots}", params.name);
                }
            }
        }
    }

    #[test]
    fn matches_engine_with_partial_improvement_rounding() {
        // Fractional improve counts exercise the rounding rule.
        let params = metaheur::MetaheuristicParams {
            improve_fraction: 0.37,
            improve: metaheur::ImproveStrategy::HillClimb { steps: 3 },
            ..metaheur::m1(0.1)
        };
        assert_eq!(synthetic_trace(&params, 5), engine_trace(&params, 5));
    }

    #[test]
    fn trace_total_matches_evals_per_spot() {
        for params in metaheur::paper_suite(0.3) {
            let n = 4;
            assert_eq!(
                trace_items(&synthetic_trace(&params, n)),
                params.evals_per_spot() * n as u64,
                "{}",
                params.name
            );
        }
    }

    #[test]
    fn m4_trace_shape() {
        let p = metaheur::m4(0.1);
        let t = synthetic_trace(&p, 2);
        // init + one batch per LS step, all of size 1024×2.
        let steps = p.improve.evals_per_element();
        assert_eq!(t.len(), 1 + steps);
        assert!(t.iter().all(|&b| b == 2048));
    }

    #[test]
    fn m1_trace_shape() {
        let p = metaheur::m1(1.0);
        let t = synthetic_trace(&p, 3);
        assert_eq!(t.len(), 1 + 32); // init + 32 generations, no LS batches
        assert!(t.iter().all(|&b| b == 64 * 3));
    }

    #[test]
    #[should_panic]
    fn convergence_end_is_rejected() {
        let p = metaheur::MetaheuristicParams {
            end: metaheur::EndCondition::Convergence { patience: 2, max: 10 },
            ..metaheur::m1(0.1)
        };
        synthetic_trace(&p, 2);
    }

    #[test]
    #[should_panic]
    fn zero_spots_rejected() {
        synthetic_trace(&metaheur::m1(0.1), 0);
    }
}
