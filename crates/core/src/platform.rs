//! The paper's experimental systems (§4.1, Tables 2–3) as simulated nodes.

use gpusim::{catalog, SimNode};

/// Jupiter: two hexa-core Intel Xeon E5-2620 (12 cores) @ 2 GHz, 32 GB RAM,
/// four GeForce GTX 590 and two Tesla C2075 (all Fermi).
///
/// GPU ordinals 0–3 are the GTX 590s, 4–5 the Tesla C2075s, so
/// [`jupiter_homogeneous`]'s subset `[0,1,2,3]` is the paper's
/// "homogeneous system".
pub fn jupiter() -> SimNode {
    SimNode::new(
        "Jupiter",
        catalog::xeon_e5_2620_dual(),
        vec![
            catalog::geforce_gtx_590(),
            catalog::geforce_gtx_590(),
            catalog::geforce_gtx_590(),
            catalog::geforce_gtx_590(),
            catalog::tesla_c2075(),
            catalog::tesla_c2075(),
        ],
    )
}

/// Jupiter restricted to the four GTX 590s — the "Homogeneous System"
/// column of Tables 6–7.
pub fn jupiter_homogeneous() -> SimNode {
    jupiter().subset(&[0, 1, 2, 3])
}

/// Hertz: Intel Xeon E3-1220 (4 cores @ 3.1 GHz), 8 GB RAM, one Tesla K40c
/// (Kepler) and one GeForce GTX 580 (Fermi) — the strongly heterogeneous
/// node of Tables 8–9.
pub fn hertz() -> SimNode {
    SimNode::new(
        "Hertz",
        catalog::xeon_e3_1220(),
        vec![catalog::tesla_k40c(), catalog::geforce_gtx_580()],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jupiter_configuration() {
        let j = jupiter();
        assert_eq!(j.device_count(), 6);
        assert_eq!(j.cpu().spec().lanes(), 12);
        for i in 0..4 {
            assert_eq!(j.properties(i).name, "GeForce GTX 590");
        }
        for i in 4..6 {
            assert_eq!(j.properties(i).name, "Tesla C2075");
        }
    }

    #[test]
    fn jupiter_homogeneous_subset() {
        let h = jupiter_homogeneous();
        assert_eq!(h.device_count(), 4);
        assert!(h.gpus().iter().all(|g| g.spec().name == "GeForce GTX 590"));
    }

    #[test]
    fn hertz_configuration() {
        let h = hertz();
        assert_eq!(h.device_count(), 2);
        assert_eq!(h.cpu().spec().lanes(), 4);
        assert_eq!(h.properties(0).name, "Tesla K40c");
        assert_eq!(h.properties(1).name, "GeForce GTX 580");
    }

    #[test]
    fn hertz_two_gpus_rival_jupiter_six() {
        // §5: "the speed-up factors reported here with two GPUs are
        // equivalent to those reported with 6 GPUs in Jupiter" — total
        // sustained GPU throughput of the two nodes is comparable.
        let sum =
            |n: &SimNode| -> f64 { n.gpus().iter().map(|g| g.spec().sustained_lane_hz()).sum() };
        let j = sum(&jupiter());
        let h = sum(&hertz());
        let ratio = j.max(h) / j.min(h);
        assert!(ratio < 1.6, "nodes should be within ~1.6x: {ratio}");
    }
}
