//! Ligand-library screening — the virtual-screening product.
//!
//! §2.1: "large libraries of small molecules (ligands) are explored to
//! search for the structures which best bind to the receptor" and VS
//! provides "a ranking of chemical compounds according to the estimated
//! affinity". This module screens a whole ligand set against one receptor
//! on a simulated node and returns that ranking. Surface spots are
//! detected once (they belong to the receptor); each ligand runs the full
//! metaheuristic over them.

use crate::screen::{RunSpec, ScreenOutcome, VirtualScreen};
use gpusim::SimNode;
use metaheur::MetaheuristicParams;
use serde::{Deserialize, Serialize};
use vsched::Strategy;
use vsmol::Molecule;

/// One ligand's entry in the final ranking.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LibraryHit {
    /// Index into the input ligand list.
    pub ligand_index: usize,
    pub ligand_name: String,
    pub best_score: f64,
    pub best_spot: usize,
    pub evaluations: u64,
}

/// Result of a library screen.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LibraryRanking {
    /// Hits sorted best-first — the paper's affinity ranking.
    pub hits: Vec<LibraryHit>,
    /// Total virtual node time across all ligands, seconds.
    pub virtual_time: f64,
    /// Total scoring evaluations.
    pub evaluations: u64,
}

impl LibraryRanking {
    /// The `n` best ligand indices.
    pub fn top(&self, n: usize) -> Vec<usize> {
        self.hits.iter().take(n).map(|h| h.ligand_index).collect()
    }
}

/// Screen `ligands` against `receptor` on `node` under `strategy`,
/// returning the affinity ranking. Deterministic: ligand `i` uses seed
/// `seed + i`.
///
/// # Panics
/// Panics on an empty ligand list or a receptor without surface spots.
pub fn screen_library(
    receptor: &Molecule,
    ligands: &[Molecule],
    params: &MetaheuristicParams,
    node: &SimNode,
    strategy: Strategy,
    max_spots: usize,
    seed: u64,
) -> LibraryRanking {
    assert!(!ligands.is_empty(), "empty ligand library");

    let mut hits = Vec::with_capacity(ligands.len());
    let mut virtual_time = 0.0;
    let mut evaluations = 0;
    for (i, lig) in ligands.iter().enumerate() {
        let screen = VirtualScreen::from_molecules(receptor.clone(), lig.clone())
            .max_spots(max_spots)
            .seed(seed.wrapping_add(i as u64))
            .build();
        let out: ScreenOutcome = screen.run(RunSpec::on_node(params, node, strategy));
        virtual_time += out.virtual_time;
        evaluations += out.evaluations;
        hits.push(LibraryHit {
            ligand_index: i,
            ligand_name: lig.name.clone(),
            best_score: out.best.score,
            best_spot: out.best.spot_id,
            evaluations: out.evaluations,
        });
    }
    // PANICS: hit scores come out of the scorer, which never emits NaN.
    hits.sort_by(|a, b| a.best_score.partial_cmp(&b.best_score).expect("finite scores"));
    LibraryRanking { hits, virtual_time, evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform;
    use vsmol::synth;

    fn ligand_set(n: usize) -> Vec<Molecule> {
        (0..n).map(|i| synth::synth_ligand(&format!("lig-{i}"), 8 + i, 100 + i as u64)).collect()
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let rec = synth::synth_receptor("r", 500, 3);
        let ligands = ligand_set(4);
        let node = platform::hertz();
        let r = screen_library(
            &rec,
            &ligands,
            &metaheur::m1(0.03),
            &node,
            Strategy::HomogeneousSplit,
            2,
            7,
        );
        assert_eq!(r.hits.len(), 4);
        for w in r.hits.windows(2) {
            assert!(w[0].best_score <= w[1].best_score);
        }
        // Every ligand appears exactly once.
        let mut idx: Vec<usize> = r.hits.iter().map(|h| h.ligand_index).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3]);
        assert!(r.virtual_time > 0.0);
        assert_eq!(r.evaluations, r.hits.iter().map(|h| h.evaluations).sum::<u64>());
    }

    #[test]
    fn top_n_truncates() {
        let rec = synth::synth_receptor("r", 400, 5);
        let ligands = ligand_set(3);
        let node = platform::hertz();
        let r = screen_library(
            &rec,
            &ligands,
            &metaheur::m1(0.03),
            &node,
            Strategy::HomogeneousSplit,
            2,
            9,
        );
        assert_eq!(r.top(2).len(), 2);
        assert_eq!(r.top(2)[0], r.hits[0].ligand_index);
        assert_eq!(r.top(99).len(), 3);
    }

    #[test]
    fn ranking_is_deterministic() {
        let rec = synth::synth_receptor("r", 400, 5);
        let ligands = ligand_set(3);
        let node = platform::hertz();
        let run = || {
            screen_library(
                &rec,
                &ligands,
                &metaheur::m1(0.03),
                &node,
                Strategy::HomogeneousSplit,
                2,
                11,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(
            a.hits.iter().map(|h| h.ligand_index).collect::<Vec<_>>(),
            b.hits.iter().map(|h| h.ligand_index).collect::<Vec<_>>()
        );
        assert_eq!(a.hits[0].best_score, b.hits[0].best_score);
    }

    #[test]
    #[should_panic]
    fn empty_library_panics() {
        let rec = synth::synth_receptor("r", 200, 1);
        let node = platform::hertz();
        screen_library(&rec, &[], &metaheur::m1(0.03), &node, Strategy::HomogeneousSplit, 2, 1);
    }
}
