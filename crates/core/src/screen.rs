//! The whole-surface virtual-screening pipeline.

use gpusim::SimNode;
use metaheur::{BatchEvaluator, CpuEvaluator, EngineExec, MetaheuristicParams};
use std::sync::Arc;
use vsched::{DeviceEvaluator, EvaluatorSpec, Strategy};
use vsmol::{surface, Conformation, Dataset, Molecule, Spot, SurfaceOptions};
use vsscore::{Exec, Scorer, ScorerOptions};
use vstrace::Trace;

/// Which execution backend a [`RunSpec`] targets.
enum Backend<'a> {
    /// Host CPU threads, no virtual timing — the quality-measurement path.
    Cpu { threads: usize },
    /// Precomputed-potential-grid scoring on the host.
    Grid { opts: vsscore::GridOptions },
    /// A simulated heterogeneous node under a scheduling strategy
    /// (§3.2–3.3).
    Node { node: &'a SimNode, strategy: Strategy },
}

/// Declarative description of one screening run: metaheuristic parameters,
/// an execution backend, and (optionally) a trace sink. Consumed by
/// [`VirtualScreen::run`], the single entry point that replaced the
/// per-backend `run_*` methods.
///
/// ```no_run
/// # use vscreen::{RunSpec, VirtualScreen};
/// # use vsmol::Dataset;
/// let screen = VirtualScreen::builder(Dataset::TwoBsm).max_spots(3).build();
/// let params = metaheur::m1(0.05);
/// let outcome = screen.run(RunSpec::cpu(&params, 4));
/// # let _ = outcome;
/// ```
pub struct RunSpec<'a> {
    params: &'a MetaheuristicParams,
    backend: Backend<'a>,
    trace: Trace,
    exec: Option<EngineExec>,
}

impl<'a> RunSpec<'a> {
    /// Run on `threads` host CPU threads (real compute, no virtual time).
    pub fn cpu(params: &'a MetaheuristicParams, threads: usize) -> RunSpec<'a> {
        RunSpec { params, backend: Backend::Cpu { threads }, trace: Trace::disabled(), exec: None }
    }

    /// Run against an AutoDock-style precomputed potential grid.
    pub fn gridded(params: &'a MetaheuristicParams, opts: vsscore::GridOptions) -> RunSpec<'a> {
        RunSpec { params, backend: Backend::Grid { opts }, trace: Trace::disabled(), exec: None }
    }

    /// Run on a simulated node under `strategy`; the outcome carries the
    /// modeled makespan. Under [`Strategy::WorkSteal`] the host CPU joins
    /// the GPUs in the runtime's steal pool.
    pub fn on_node(
        params: &'a MetaheuristicParams,
        node: &'a SimNode,
        strategy: Strategy,
    ) -> RunSpec<'a> {
        RunSpec {
            params,
            backend: Backend::Node { node, strategy },
            trace: Trace::disabled(),
            exec: None,
        }
    }

    /// Attach a [`vstrace::Trace`]: the run is wrapped in a `screen` span,
    /// the engine emits generation spans and `GenerationDone` events, and
    /// the node scheduler contributes `DeviceBusy` / `BatchScored` /
    /// warm-up / `JobMigrated` events.
    pub fn traced(mut self, trace: &Trace) -> Self {
        self.trace = trace.clone();
        self
    }

    /// Select the engine execution mode (DESIGN.md §12).
    ///
    /// Without this call the run uses the classic generational loop with no
    /// host-side cost model — exactly the pre-pipeline behavior, bit for
    /// bit, virtual time included. With [`EngineExec::Lockstep`] the same
    /// trajectory is charged host variation/selection costs so it compares
    /// honestly against [`EngineExec::Pipelined`], which overlaps variation
    /// with scoring through the stage pipeline ([`metaheur::pipeline`]).
    pub fn exec(mut self, exec: EngineExec) -> Self {
        self.exec = Some(exec);
        self
    }
}

/// A prepared screening problem: receptor + ligand + detected surface spots
/// + scoring context. Build with [`VirtualScreen::builder`].
#[derive(Debug, Clone)]
pub struct VirtualScreen {
    receptor: Molecule,
    ligand: Molecule,
    spots: Vec<Spot>,
    scorer: Arc<Scorer>,
    seed: u64,
}

/// Builder for [`VirtualScreen`].
pub struct VirtualScreenBuilder {
    receptor: Molecule,
    ligand: Molecule,
    surface: SurfaceOptions,
    scorer_opts: ScorerOptions,
    seed: u64,
}

impl VirtualScreen {
    /// Start from one of the paper's benchmark datasets (Table 5).
    pub fn builder(dataset: Dataset) -> VirtualScreenBuilder {
        VirtualScreenBuilder::new(dataset.receptor(), dataset.ligand())
    }

    /// Start from arbitrary molecules (e.g. parsed from real PDB files).
    pub fn from_molecules(receptor: Molecule, ligand: Molecule) -> VirtualScreenBuilder {
        VirtualScreenBuilder::new(receptor, ligand)
    }

    pub fn receptor(&self) -> &Molecule {
        &self.receptor
    }

    pub fn ligand(&self) -> &Molecule {
        &self.ligand
    }

    /// The independent surface regions being screened (§3.1).
    pub fn spots(&self) -> &[Spot] {
        &self.spots
    }

    pub fn scorer(&self) -> Arc<Scorer> {
        self.scorer.clone()
    }

    /// Pair interactions per conformation evaluation.
    pub fn pairs_per_eval(&self) -> u64 {
        self.scorer.pairs_per_eval()
    }

    /// Run a metaheuristic as described by `spec` — the single entry point
    /// for every backend: host CPU threads, the precomputed-grid scorer,
    /// or a simulated node under a scheduling strategy (all through the
    /// unified node runtime, DESIGN.md §10). Attach a [`vstrace::Trace`]
    /// with [`RunSpec::traced`] for structured observability on any
    /// backend.
    pub fn run(&self, spec: RunSpec<'_>) -> ScreenOutcome {
        let trace = spec.trace;
        let exec = spec.exec;
        match spec.backend {
            Backend::Cpu { threads } => {
                let _screen = trace.span("screen");
                let mut ev = EvaluatorSpec::PooledCpu { threads }.build(self.scorer.clone());
                let run = run_engine(spec.params, &self.spots, &mut ev, self.seed, &trace, exec);
                ScreenOutcome::from_run(run, f64::NAN)
            }
            Backend::Grid { opts } => {
                // AutoDock-style precomputed potential grid
                // ([`vsscore::GridScorer`]) instead of exact pair scoring:
                // `O(ligand)` per evaluation after a one-time grid build —
                // the classic speed/accuracy trade-off. Final poses should
                // be re-scored exactly (e.g. via [`VirtualScreen::scorer`]).
                let _screen = trace.span("screen");
                let grid =
                    vsscore::GridScorer::new_traced(&self.receptor, &self.ligand, opts, &trace);
                let mut ev = metaheur::GridEvaluator::new(grid);
                let run = run_engine(spec.params, &self.spots, &mut ev, self.seed, &trace, exec);
                ScreenOutcome::from_run(run, f64::NAN)
            }
            Backend::Node { node, strategy } => {
                // Scores are computed for real on host threads; the
                // returned [`ScreenOutcome::virtual_time`] is the modeled
                // node makespan, including any warm-up phase.
                node.reset();
                let _screen = trace.span("screen");
                match strategy {
                    Strategy::CpuOnly => {
                        let threads = node.cpu().spec().lanes() as usize;
                        let mut ev = CpuNodeEvaluator {
                            inner: CpuEvaluator::new((*self.scorer).clone(), Exec::Pool(threads)),
                            node: node.clone(),
                        };
                        let run =
                            run_engine(spec.params, &self.spots, &mut ev, self.seed, &trace, exec);
                        ScreenOutcome::from_run(run, node.cpu().clock())
                    }
                    _ => {
                        // Work stealing and the learned oracle run the
                        // *whole* heterogeneous node: the host CPU joins the
                        // device pool as one more lane pulling chunks from
                        // the shared deques. The split strategies keep the
                        // paper's GPU-only partitioning (the CPU
                        // orchestrates).
                        let devices = if matches!(
                            strategy,
                            Strategy::WorkSteal { .. } | Strategy::Oracle { .. }
                        ) {
                            let mut d = vec![node.cpu().clone()];
                            d.extend(node.gpus().iter().cloned());
                            d
                        } else {
                            node.gpus().to_vec()
                        };
                        let mut ev = DeviceEvaluator::new(devices, self.scorer.clone(), strategy)
                            .with_trace(trace.clone());
                        let run =
                            run_engine(spec.params, &self.spots, &mut ev, self.seed, &trace, exec);
                        ScreenOutcome::from_run(run, ev.makespan())
                    }
                }
            }
        }
    }

    /// Render a docked pose as PDB text (ligand atoms transformed into
    /// receptor space) — the Figure 1 analog, loadable in any molecular
    /// viewer alongside the receptor.
    pub fn pose_pdb(&self, conf: &Conformation) -> String {
        let posed = self.ligand.centered().transformed(&conf.pose);
        vsmol::pdb::write(&posed)
    }

    /// Render the whole complex — receptor plus docked ligand — as one PDB
    /// file (chains A and B): the exact Figure 1 rendering, for any
    /// molecular viewer.
    pub fn complex_pdb(&self, conf: &Conformation) -> String {
        let posed = self.ligand.centered().transformed(&conf.pose);
        vsmol::pdb::write_complex(&self.receptor, &posed)
    }

    /// Greedy RMSD clustering of an outcome's per-spot best poses
    /// (AutoDock-style): clusters of spots whose best poses are within
    /// `rmsd_cutoff` Å of each other, best cluster first. Distinct clusters
    /// correspond to distinct candidate binding sites.
    pub fn cluster_poses(&self, outcome: &ScreenOutcome, rmsd_cutoff: f64) -> Vec<Vec<usize>> {
        vsmol::rmsd::cluster_poses(&self.ligand, &outcome.ranked, rmsd_cutoff)
    }
}

impl VirtualScreenBuilder {
    fn new(receptor: Molecule, ligand: Molecule) -> VirtualScreenBuilder {
        assert!(!receptor.is_empty() && !ligand.is_empty(), "empty molecule");
        VirtualScreenBuilder {
            receptor,
            ligand,
            surface: SurfaceOptions::default(),
            scorer_opts: ScorerOptions::default(),
            seed: 0xD0C5,
        }
    }

    /// Replace the surface/spot-detection options wholesale.
    pub fn surface_options(mut self, opts: SurfaceOptions) -> Self {
        self.surface = opts;
        self
    }

    /// Cap the number of detected spots (0 = unlimited).
    pub fn max_spots(mut self, n: usize) -> Self {
        self.surface.max_spots = n;
        self
    }

    /// Replace the scoring options (model/kernel).
    pub fn scorer_options(mut self, opts: ScorerOptions) -> Self {
        self.scorer_opts = opts;
        self
    }

    /// Root seed for the stochastic search.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Detect spots and prepare the scorer.
    ///
    /// # Panics
    /// Panics if no spots are found (e.g. a degenerate receptor).
    pub fn build(self) -> VirtualScreen {
        let spots = surface::detect_spots(&self.receptor, &self.surface);
        assert!(!spots.is_empty(), "no surface spots detected on {}", self.receptor.name);
        let scorer = Arc::new(Scorer::new(&self.receptor, &self.ligand, self.scorer_opts));
        VirtualScreen {
            receptor: self.receptor,
            ligand: self.ligand,
            spots,
            scorer,
            seed: self.seed,
        }
    }
}

/// Result of one screening run.
#[derive(Debug, Clone)]
pub struct ScreenOutcome {
    /// Best pose over the whole surface.
    pub best: Conformation,
    /// Best pose per spot, ranked best-first — the paper's "ranking of
    /// chemical compounds according to the estimated affinity".
    pub ranked: Vec<Conformation>,
    /// Total scoring evaluations.
    pub evaluations: u64,
    /// Generations executed.
    pub generations_run: usize,
    /// Modeled node execution time in seconds (`NaN` for host-only runs).
    pub virtual_time: f64,
}

impl ScreenOutcome {
    fn from_run(run: metaheur::RunResult, virtual_time: f64) -> ScreenOutcome {
        let mut ranked = run.best_per_spot.clone();
        ranked.sort_by(vsmol::conformation::score_cmp);
        ScreenOutcome {
            best: run.best,
            ranked,
            evaluations: run.evaluations,
            generations_run: run.generations_run,
            virtual_time,
        }
    }

    /// Distribution of best scores over the protein surface — BINDSURF's
    /// spot-discovery analysis ("the distribution of scoring function
    /// values over the entire protein surface", §2.1). `None` when no spot
    /// has a finite score.
    pub fn score_histogram(&self, bins: usize) -> Option<vsmath::Histogram> {
        let scores: Vec<f64> =
            self.ranked.iter().map(|c| c.score).filter(|s| s.is_finite()).collect();
        vsmath::Histogram::auto(&scores, bins)
    }
}

/// Dispatch to the classic loop (no exec mode requested — the historical
/// behavior, untouched) or to the mode-aware entry point
/// ([`metaheur::run_exec`]), which charges host costs under `Lockstep` and
/// runs the stage pipeline under `Pipelined`.
fn run_engine<E: BatchEvaluator + Send>(
    params: &MetaheuristicParams,
    spots: &[vsmol::Spot],
    ev: &mut E,
    seed: u64,
    trace: &Trace,
    exec: Option<EngineExec>,
) -> metaheur::RunResult {
    match exec {
        None => metaheur::run_traced(params, spots, ev, seed, trace),
        Some(exec) => metaheur::run_exec(params, spots, ev, seed, &[], trace, exec),
    }
}

/// CPU-only evaluator that also charges the node's CPU virtual clock — the
/// paper's OpenMP baseline with timing.
struct CpuNodeEvaluator {
    inner: CpuEvaluator,
    node: SimNode,
}

impl BatchEvaluator for CpuNodeEvaluator {
    fn evaluate(&mut self, confs: &mut [Conformation]) {
        self.inner.evaluate(confs);
        // Charge the CPU clock in the scorer's own cost regime (pairs for
        // the dense kernels, ligand atoms for Grid, shell pairs for
        // CellList) so CPU-only virtual times stay comparable to the
        // device strategies.
        let profile = vsched::work_profile(self.inner.scorer());
        self.node.cpu().execute(&profile.batch(confs.len() as u64));
    }

    fn pairs_per_eval(&self) -> u64 {
        self.inner.pairs_per_eval()
    }

    fn evaluate_after(&mut self, confs: &mut [Conformation], release: f64) -> f64 {
        // A batch can't start before the host hands it over.
        self.node.cpu().sync_to(release);
        self.evaluate(confs);
        self.node.cpu().clock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform;
    use vsched::WarmupConfig;

    fn quick_screen() -> VirtualScreen {
        VirtualScreen::builder(Dataset::TwoBsm).max_spots(3).seed(7).build()
    }

    #[test]
    fn builder_detects_spots_and_prepares_scorer() {
        let s = quick_screen();
        assert_eq!(s.spots().len(), 3);
        assert_eq!(s.pairs_per_eval(), (45 * 3264) as u64);
        assert_eq!(s.receptor().len(), 3264);
        assert_eq!(s.ligand().len(), 45);
    }

    #[test]
    fn cpu_run_produces_ranked_spots() {
        let s = quick_screen();
        let p = metaheur::m1(0.03);
        let out = s.run(RunSpec::cpu(&p, 4));
        assert_eq!(out.ranked.len(), 3);
        for w in out.ranked.windows(2) {
            assert!(w[0].score <= w[1].score, "ranking out of order");
        }
        assert_eq!(out.best.score, out.ranked[0].score);
        assert!(out.virtual_time.is_nan());
    }

    #[test]
    fn node_run_reports_virtual_time() {
        let s = quick_screen();
        let node = platform::hertz();
        let p = metaheur::m1(0.03);
        let out = s.run(RunSpec::on_node(
            &p,
            &node,
            Strategy::HeterogeneousSplit {
                warmup: WarmupConfig { iterations: 2, ..Default::default() },
            },
        ));
        assert!(out.virtual_time > 0.0);
        assert!(out.best.is_scored());
    }

    #[test]
    fn cpu_only_strategy_charges_cpu_clock() {
        let s = quick_screen();
        let node = platform::hertz();
        let p = metaheur::m1(0.03);
        let out = s.run(RunSpec::on_node(&p, &node, Strategy::CpuOnly));
        assert!(out.virtual_time > 0.0);
        assert_eq!(node.cpu().clock(), out.virtual_time);
        assert_eq!(node.gpu(0).clock(), 0.0, "GPUs must stay idle");
    }

    #[test]
    fn gpu_beats_cpu_virtual_time() {
        let s = quick_screen();
        let node = platform::hertz();
        let p = metaheur::m1(0.03);
        let t_cpu = s.run(RunSpec::on_node(&p, &node, Strategy::CpuOnly)).virtual_time;
        let t_gpu = s.run(RunSpec::on_node(&p, &node, Strategy::HomogeneousSplit)).virtual_time;
        assert!(t_cpu / t_gpu > 5.0, "GPU speedup only {}", t_cpu / t_gpu);
    }

    #[test]
    fn same_seed_same_result_across_strategies() {
        // Scheduling must not change the search trajectory (per-spot RNG
        // streams): identical best scores on CPU and on the node, whatever
        // the strategy — including work stealing, where chunk migration
        // changes which device scores what but never the numbers.
        let s = quick_screen();
        let node = platform::hertz();
        let p = metaheur::m1(0.03);
        let a = s.run(RunSpec::on_node(&p, &node, Strategy::CpuOnly));
        let b = s.run(RunSpec::on_node(&p, &node, Strategy::HomogeneousSplit));
        let c = s.run(RunSpec::on_node(
            &p,
            &node,
            Strategy::WorkSteal {
                warmup: WarmupConfig { iterations: 2, ..Default::default() },
                divisor: 2,
            },
        ));
        assert_eq!(a.best.score, b.best.score);
        assert_eq!(a.best.pose, b.best.pose);
        assert_eq!(a.best.score.to_bits(), c.best.score.to_bits());
        assert_eq!(a.best.pose, c.best.pose);
    }

    #[test]
    fn work_steal_runs_whole_node() {
        // Under WorkSteal the host CPU is one more lane in the steal pool:
        // it gets seeded work (or steals), so its clock advances alongside
        // the GPUs'.
        let s = quick_screen();
        let node = platform::hertz();
        let p = metaheur::m1(0.03);
        let out = s.run(RunSpec::on_node(
            &p,
            &node,
            Strategy::WorkSteal {
                warmup: WarmupConfig { iterations: 2, ..Default::default() },
                divisor: 2,
            },
        ));
        assert!(out.virtual_time > 0.0);
        assert!(node.cpu().clock() > 0.0, "CPU lane must participate");
        assert!(node.gpu(0).clock() > 0.0);
    }

    #[test]
    fn grid_and_cell_list_kernels_reach_every_backend() {
        // The first-class kernels must be selectable at the RunSpec level
        // and bit-identical between the host-CPU path and the
        // whole-node work-stealing path.
        use vsscore::Kernel;
        let node = platform::hertz();
        let p = metaheur::m1(0.03);
        for kernel in [Kernel::Grid { spacing: 0.75 }, Kernel::CellList { cutoff: 12.0 }] {
            let s = VirtualScreen::builder(Dataset::TwoBsm)
                .max_spots(2)
                .seed(7)
                .scorer_options(ScorerOptions { kernel, ..Default::default() })
                .build();
            let cpu = s.run(RunSpec::cpu(&p, 2));
            assert!(cpu.best.is_scored(), "{kernel:?} cpu run");
            let steal = s.run(RunSpec::on_node(
                &p,
                &node,
                Strategy::WorkSteal {
                    warmup: WarmupConfig { iterations: 2, ..Default::default() },
                    divisor: 2,
                },
            ));
            assert_eq!(cpu.best.score.to_bits(), steal.best.score.to_bits(), "{kernel:?}");
            assert!(steal.virtual_time > 0.0);
        }
    }

    #[test]
    fn pose_pdb_is_parseable_and_in_receptor_frame() {
        let s = quick_screen();
        let p = metaheur::m1(0.02);
        let out = s.run(RunSpec::cpu(&p, 2));
        let pdb = s.pose_pdb(&out.best);
        let reparsed = vsmol::pdb::parse(&pdb, "pose").unwrap();
        assert_eq!(reparsed.len(), s.ligand().len());
        // The posed ligand sits near its spot, not at the origin.
        let spot = s.spots()[out.best.spot_id];
        assert!(reparsed.centroid().dist(spot.center) <= spot.radius + 1e-6);
    }

    #[test]
    fn gridded_search_agrees_with_exact_search() {
        let s = quick_screen();
        let p = metaheur::m1(0.05);
        let exact = s.run(RunSpec::cpu(&p, 4));
        let gridded = s.run(RunSpec::gridded(
            &p,
            vsscore::GridOptions { spacing: 0.75, ..Default::default() },
        ));
        assert!(exact.best.score < 0.0);
        assert!(gridded.best.score < 0.0, "gridded search found no binding");
        // Re-score the gridded winner exactly: still a genuine binding.
        let rescore = s.scorer().score(&gridded.best.pose);
        assert!(rescore < 0.0, "gridded winner rescored to {rescore}");
    }

    #[test]
    fn complex_pdb_holds_receptor_and_ligand() {
        let s = quick_screen();
        let p = metaheur::m1(0.02);
        let out = s.run(RunSpec::cpu(&p, 2));
        let text = s.complex_pdb(&out.best);
        let complex = vsmol::pdb::parse_structure(&text, "complex").unwrap();
        assert_eq!(complex.protein().len(), s.receptor().len());
        let ligs = complex.ligands();
        assert_eq!(ligs.len(), 1);
        assert_eq!(ligs[0].len(), s.ligand().len());
    }

    #[test]
    fn score_histogram_covers_all_spots() {
        let s = quick_screen();
        let p = metaheur::m1(0.03);
        let out = s.run(RunSpec::cpu(&p, 4));
        let h = out.score_histogram(4).expect("scored spots");
        assert_eq!(h.total() as usize, s.spots().len());
    }

    #[test]
    fn pose_clustering_partitions_spots() {
        let s = quick_screen();
        let p = metaheur::m1(0.03);
        let out = s.run(RunSpec::cpu(&p, 4));
        let clusters = s.cluster_poses(&out, 4.0);
        let covered: usize = clusters.iter().map(|c| c.len()).sum();
        assert_eq!(covered, out.ranked.len());
        // Best cluster is seeded by the best pose.
        assert_eq!(out.ranked[clusters[0][0]].score, out.best.score);
    }

    #[test]
    fn exec_modes_preserve_search_trajectory() {
        // The engine execution mode changes *when* work happens, never
        // *what* is computed: default (no mode), charged Lockstep, and
        // Pipelined at several depths must all land on bit-identical poses.
        let s = quick_screen();
        let node = platform::hertz();
        let p = metaheur::m1(0.03);
        let base = s.run(RunSpec::on_node(&p, &node, Strategy::HomogeneousSplit));
        for exec in [
            EngineExec::Lockstep,
            EngineExec::Pipelined { depth: 1 },
            EngineExec::Pipelined { depth: 2 },
        ] {
            let out = s.run(RunSpec::on_node(&p, &node, Strategy::HomogeneousSplit).exec(exec));
            assert_eq!(base.best.score.to_bits(), out.best.score.to_bits(), "{exec:?}");
            assert_eq!(base.best.pose, out.best.pose, "{exec:?}");
            assert_eq!(base.evaluations, out.evaluations, "{exec:?}");
            assert!(out.virtual_time > 0.0, "{exec:?}");
        }
    }

    #[test]
    fn exec_modes_run_on_every_backend() {
        let s = quick_screen();
        let p = metaheur::m1(0.02);
        let exec = EngineExec::Pipelined { depth: 2 };
        let cpu = s.run(RunSpec::cpu(&p, 2).exec(exec));
        assert!(cpu.best.is_scored());
        let grid = s.run(
            RunSpec::gridded(&p, vsscore::GridOptions { spacing: 0.75, ..Default::default() })
                .exec(exec),
        );
        assert!(grid.best.is_scored());
        let node = platform::hertz();
        let cpu_node = s.run(RunSpec::on_node(&p, &node, Strategy::CpuOnly).exec(exec));
        assert!(cpu_node.best.is_scored());
        assert!(cpu_node.virtual_time > 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_ligand_rejected() {
        VirtualScreen::from_molecules(Dataset::TwoBsm.receptor(), Molecule::new("x", vec![]));
    }

    #[test]
    fn custom_molecules_roundtrip() {
        let rec = vsmol::synth::synth_receptor("custom", 500, 11);
        let lig = vsmol::synth::synth_ligand("lig", 10, 12);
        let s = VirtualScreen::from_molecules(rec, lig).max_spots(2).build();
        assert!(!s.spots().is_empty());
        let p = metaheur::m1(0.02);
        let out = s.run(RunSpec::cpu(&p, 2));
        assert!(out.best.is_scored());
    }
}
