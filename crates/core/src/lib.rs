//! # vscreen — metaheuristic-based virtual screening for heterogeneous systems
//!
//! The top-level engine reproducing Imbernón, Cecilia & Giménez,
//! *Enhancing Metaheuristic-based Virtual Screening Methods on Massively
//! Parallel and Heterogeneous Systems* (PMAM'16): BINDSURF-style
//! whole-surface virtual screening driven by the parameterized
//! metaheuristic template, scheduled across heterogeneous
//! multicore + multi-GPU nodes.
//!
//! ## Quickstart
//!
//! ```
//! use vscreen::prelude::*;
//!
//! // Synthetic benchmark compounds with the paper's atom counts (Table 5);
//! // real PDB files load through vsmol::pdb::parse.
//! let screen = VirtualScreen::builder(Dataset::TwoBsm)
//!     .max_spots(4)
//!     .seed(42)
//!     .build();
//!
//! // Run the M3 metaheuristic on the simulated Hertz node with the
//! // paper's heterogeneity-aware scheduling.
//! let node = platform::hertz();
//! let params = metaheur::m3(0.05);
//! let outcome = screen.run(RunSpec::on_node(&params, &node, Strategy::HeterogeneousSplit {
//!     warmup: WarmupConfig::default(),
//! }));
//! assert!(outcome.best.is_scored());
//! println!("best score {:.2} at spot {} in {:.3} virtual s",
//!          outcome.best.score, outcome.best.spot_id, outcome.virtual_time);
//! ```
//!
//! ## Crate map
//!
//! - [`platform`] — the paper's two experimental systems as simulated
//!   nodes: Jupiter (12-core Xeon + 4×GTX 590 + 2×Tesla C2075) and Hertz
//!   (4-core Xeon + Tesla K40c + GTX 580);
//! - [`screen`] — the [`screen::VirtualScreen`] pipeline: surface spot
//!   detection → scorer preparation → metaheuristic execution;
//! - [`trace`] — analytic scoring-batch traces (proven equal to the
//!   engine's recorded traces) used to replay workloads under every
//!   scheduling strategy;
//! - [`experiment`] — the reproduction harness for the paper's Tables 6–9.
#![forbid(unsafe_code)]

pub mod ablation;
pub mod experiment;
pub mod library;
pub mod platform;
pub mod quality;
pub mod report;
pub mod scaling;
pub mod screen;
pub mod trace;

pub use screen::{RunSpec, ScreenOutcome, VirtualScreen, VirtualScreenBuilder};

/// Convenient single-import surface for downstream code and examples.
pub mod prelude {
    pub use crate::ablation;
    pub use crate::experiment::{self, ExperimentScale};
    pub use crate::library::{screen_library, LibraryRanking};
    pub use crate::platform;
    pub use crate::quality;
    pub use crate::scaling;
    pub use crate::screen::{RunSpec, ScreenOutcome, VirtualScreen, VirtualScreenBuilder};
    pub use crate::trace::synthetic_trace;
    pub use metaheur::{self, EngineExec, MetaheuristicParams};
    pub use vsched::{Strategy, WarmupConfig};
    pub use vsmol::{Dataset, Molecule};
}
