//! BINDSURF-style surface extraction and spot detection.
//!
//! The paper's VS technique "divides the whole protein surface into
//! arbitrary and independent regions (or spots)", identified "by finding
//! out a specific type of atoms in the protein" (§3.1). This module
//! implements that: surface atoms are detected by neighbor-count burial
//! analysis, anchor-element surface atoms (N/O/S — the hydrogen-bonding
//! heteroatoms) seed spots, and a greedy separation pass spreads spots over
//! the whole surface. All spots are independent, which is exactly the
//! data parallelism the multi-GPU scheduler exploits.

use crate::Molecule;
use serde::{Deserialize, Serialize};
use vsmath::{SpatialGrid, Vec3};

/// One independent surface region where docking simulations run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spot {
    /// Stable id, `0..n_spots`.
    pub id: usize,
    /// Anchor point just outside the protein surface, where ligand copies
    /// are initially placed.
    pub center: Vec3,
    /// Outward surface normal at the anchor.
    pub normal: Vec3,
    /// Radius of the search region around `center`.
    pub radius: f64,
    /// Index of the receptor atom that anchors the spot.
    pub anchor_atom: usize,
}

/// Tunables for surface extraction and spot detection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SurfaceOptions {
    /// Neighborhood radius (Å) for the burial count.
    pub neighbor_radius: f64,
    /// Fraction of the *maximum* burial count below which an atom counts as
    /// surface-exposed (interior atoms in a globular protein sit near the
    /// maximum).
    pub burial_fraction: f64,
    /// Minimum distance between spot anchors (Å); controls spot count.
    pub spot_separation: f64,
    /// How far outside the anchor atom the spot center is pushed (Å).
    pub standoff: f64,
    /// Search-region radius per spot (Å).
    pub spot_radius: f64,
    /// Hard cap on the number of spots (0 = unlimited).
    pub max_spots: usize,
    /// Restrict anchors to hydrogen-bonding heteroatoms
    /// ([`Element::is_spot_anchor`]); when false, any surface atom anchors.
    pub anchors_only: bool,
}

impl Default for SurfaceOptions {
    fn default() -> Self {
        SurfaceOptions {
            neighbor_radius: 6.0,
            burial_fraction: 0.62,
            spot_separation: 8.0,
            standoff: 3.0,
            spot_radius: 5.0,
            max_spots: 0,
            anchors_only: true,
        }
    }
}

/// Burial count (neighbors within `neighbor_radius`) for every atom.
pub fn burial_counts(mol: &Molecule, neighbor_radius: f64) -> Vec<usize> {
    let grid = SpatialGrid::build(mol.positions(), neighbor_radius.max(1.0));
    mol.positions()
        .iter()
        .map(|&p| grid.count_within(p, neighbor_radius).saturating_sub(1))
        .collect()
}

/// Indices of surface-exposed atoms: burial below
/// `burial_fraction × max_burial`.
pub fn surface_atoms(mol: &Molecule, opts: &SurfaceOptions) -> Vec<usize> {
    if mol.is_empty() {
        return Vec::new();
    }
    let counts = burial_counts(mol, opts.neighbor_radius);
    // PANICS: the empty-molecule case returned early above.
    let max = *counts.iter().max().expect("non-empty") as f64;
    let cutoff = opts.burial_fraction * max;
    counts.iter().enumerate().filter(|(_, &c)| (c as f64) < cutoff).map(|(i, _)| i).collect()
}

/// Solvent-accessible-surface exposure per atom (Shrake–Rupley): fraction
/// of `n_points` probe positions on each atom's expanded sphere
/// (`vdW + probe`) that no neighboring atom's expanded sphere covers.
/// 1.0 = fully exposed, 0.0 = fully buried. The classic alternative to the
/// burial-count heuristic; `probe_radius` of 1.4 Å models water.
pub fn sas_exposure(mol: &Molecule, probe_radius: f64, n_points: usize) -> Vec<f64> {
    assert!(probe_radius >= 0.0, "probe radius must be non-negative");
    assert!(n_points > 0, "need at least one probe point");
    if mol.is_empty() {
        return Vec::new();
    }

    // Deterministic quasi-uniform sphere points (Fibonacci lattice).
    let golden = std::f64::consts::PI * (3.0 - 5f64.sqrt());
    let sphere: Vec<Vec3> = (0..n_points)
        .map(|i| {
            let y = 1.0 - 2.0 * (i as f64 + 0.5) / n_points as f64;
            let r = (1.0 - y * y).max(0.0).sqrt();
            let th = golden * i as f64;
            Vec3::new(r * th.cos(), y, r * th.sin())
        })
        .collect();

    let max_expanded =
        mol.elements().iter().map(|e| e.vdw_radius() + probe_radius).fold(0.0, f64::max);
    let grid = SpatialGrid::build(mol.positions(), (2.0 * max_expanded).max(1.0));

    mol.positions()
        .iter()
        .zip(mol.elements())
        .enumerate()
        .map(|(i, (&p, &e))| {
            let r_i = e.vdw_radius() + probe_radius;
            // Neighbors whose expanded spheres can cover our probe points.
            let mut neighbors: Vec<(Vec3, f64)> = Vec::new();
            grid.for_each_within(p, r_i + max_expanded, |j, q, _| {
                if j != i {
                    let r_j = mol.elements()[j].vdw_radius() + probe_radius;
                    neighbors.push((q, r_j * r_j));
                }
            });
            let accessible = sphere
                .iter()
                .filter(|&&dir| {
                    let probe = p + dir * r_i;
                    !neighbors.iter().any(|&(q, r2)| probe.dist_sq(q) < r2)
                })
                .count();
            accessible as f64 / n_points as f64
        })
        .collect()
}

/// Surface atoms by the SAS criterion: exposure above `min_exposure`.
pub fn surface_atoms_sas(
    mol: &Molecule,
    probe_radius: f64,
    n_points: usize,
    min_exposure: f64,
) -> Vec<usize> {
    sas_exposure(mol, probe_radius, n_points)
        .iter()
        .enumerate()
        .filter(|(_, &x)| x > min_exposure)
        .map(|(i, _)| i)
        .collect()
}

/// Detect independent spots over the whole protein surface.
///
/// Greedy max-separation selection: candidate anchors are surface atoms
/// (optionally restricted to N/O/S), processed most-exposed-first; an anchor
/// is accepted if no already-accepted anchor lies within `spot_separation`.
pub fn detect_spots(mol: &Molecule, opts: &SurfaceOptions) -> Vec<Spot> {
    if mol.is_empty() {
        return Vec::new();
    }
    let counts = burial_counts(mol, opts.neighbor_radius);
    // PANICS: the empty-molecule case returned early above.
    let max = *counts.iter().max().expect("non-empty") as f64;
    let cutoff = opts.burial_fraction * max;
    let centroid = mol.centroid();

    // Candidates: (burial, atom index), most exposed (lowest burial) first.
    let mut candidates: Vec<(usize, usize)> = mol
        .elements()
        .iter()
        .enumerate()
        .filter(|(i, e)| (counts[*i] as f64) < cutoff && (!opts.anchors_only || e.is_spot_anchor()))
        .map(|(i, _)| (counts[i], i))
        .collect();
    candidates.sort_unstable();

    let sep_sq = opts.spot_separation * opts.spot_separation;
    let mut spots: Vec<Spot> = Vec::new();
    for (_, atom_idx) in candidates {
        if opts.max_spots > 0 && spots.len() >= opts.max_spots {
            break;
        }
        let p = mol.positions()[atom_idx];
        if spots.iter().any(|s| mol.positions()[s.anchor_atom].dist_sq(p) < sep_sq) {
            continue;
        }
        let normal = (p - centroid).normalized().unwrap_or(Vec3::Z);
        spots.push(Spot {
            id: spots.len(),
            center: p + normal * opts.standoff,
            normal,
            radius: opts.spot_radius,
            anchor_atom: atom_idx,
        });
    }
    spots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synth_receptor;
    use crate::Element;
    use crate::{Atom, Dataset};
    use vsmath::Vec3;

    fn small_receptor() -> Molecule {
        synth_receptor("test-receptor", 600, 42)
    }

    #[test]
    fn burial_interior_exceeds_surface() {
        let m = small_receptor();
        let counts = burial_counts(&m, 6.0);
        let centroid = m.centroid();
        let r_max = m.bounding_radius();
        // Average burial of inner-third atoms must exceed outer-third atoms.
        let (mut inner, mut ninner, mut outer, mut nouter) = (0usize, 0usize, 0usize, 0usize);
        for (i, &p) in m.positions().iter().enumerate() {
            let d = p.dist(centroid);
            if d < r_max / 3.0 {
                inner += counts[i];
                ninner += 1;
            } else if d > 2.0 * r_max / 3.0 {
                outer += counts[i];
                nouter += 1;
            }
        }
        assert!(ninner > 0 && nouter > 0);
        assert!(
            inner as f64 / ninner as f64 > 1.3 * (outer as f64 / nouter as f64),
            "burial contrast too weak"
        );
    }

    #[test]
    fn surface_atoms_sit_near_boundary() {
        let m = small_receptor();
        let surf = surface_atoms(&m, &SurfaceOptions::default());
        assert!(!surf.is_empty());
        assert!(surf.len() < m.len(), "not every atom can be surface");
        let centroid = m.centroid();
        let r_max = m.bounding_radius();
        let mean_r: f64 =
            surf.iter().map(|&i| m.positions()[i].dist(centroid)).sum::<f64>() / surf.len() as f64;
        assert!(mean_r > 0.7 * r_max, "surface atoms at mean radius {mean_r} of {r_max}");
    }

    #[test]
    fn empty_molecule_yields_nothing() {
        let m = Molecule::new("empty", vec![]);
        assert!(surface_atoms(&m, &SurfaceOptions::default()).is_empty());
        assert!(detect_spots(&m, &SurfaceOptions::default()).is_empty());
    }

    #[test]
    fn spots_have_sequential_ids_and_valid_anchors() {
        let m = small_receptor();
        let spots = detect_spots(&m, &SurfaceOptions::default());
        assert!(!spots.is_empty());
        for (k, s) in spots.iter().enumerate() {
            assert_eq!(s.id, k);
            assert!(s.anchor_atom < m.len());
            assert!((s.normal.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn spots_respect_separation() {
        let m = small_receptor();
        let opts = SurfaceOptions::default();
        let spots = detect_spots(&m, &opts);
        for a in &spots {
            for b in &spots {
                if a.id != b.id {
                    let d = m.positions()[a.anchor_atom].dist(m.positions()[b.anchor_atom]);
                    assert!(
                        d >= opts.spot_separation - 1e-9,
                        "spots {}/{} at {d} < {}",
                        a.id,
                        b.id,
                        opts.spot_separation
                    );
                }
            }
        }
    }

    #[test]
    fn spot_centers_outside_anchor() {
        let m = small_receptor();
        let opts = SurfaceOptions::default();
        let centroid = m.centroid();
        for s in detect_spots(&m, &opts) {
            let anchor_d = m.positions()[s.anchor_atom].dist(centroid);
            let center_d = s.center.dist(centroid);
            assert!(center_d > anchor_d, "spot {} not pushed outward", s.id);
        }
    }

    #[test]
    fn anchors_only_restricts_elements() {
        let m = small_receptor();
        let opts = SurfaceOptions { anchors_only: true, ..Default::default() };
        for s in detect_spots(&m, &opts) {
            assert!(m.elements()[s.anchor_atom].is_spot_anchor());
        }
    }

    #[test]
    fn anchors_any_yields_at_least_as_many_spots() {
        let m = small_receptor();
        let restricted =
            detect_spots(&m, &SurfaceOptions { anchors_only: true, ..Default::default() });
        let open = detect_spots(&m, &SurfaceOptions { anchors_only: false, ..Default::default() });
        assert!(open.len() >= restricted.len());
    }

    #[test]
    fn max_spots_cap_enforced() {
        let m = small_receptor();
        let opts = SurfaceOptions { max_spots: 3, ..Default::default() };
        assert!(detect_spots(&m, &opts).len() <= 3);
    }

    #[test]
    fn bigger_receptor_more_spots() {
        // Paper §5: spot count scales with protein surface; 2BXG (8609 atoms)
        // must expose more spots than 2BSM (3264 atoms).
        let opts = SurfaceOptions::default();
        let s_small = detect_spots(&Dataset::TwoBsm.receptor(), &opts).len();
        let s_big = detect_spots(&Dataset::TwoBxg.receptor(), &opts).len();
        assert!(s_big > s_small, "2BXG {s_big} vs 2BSM {s_small}");
    }

    #[test]
    fn single_atom_molecule_degenerate_normal() {
        let m = Molecule::new("one", vec![Atom::new(Vec3::ZERO, Element::O)]);
        let spots = detect_spots(&m, &SurfaceOptions::default());
        // One atom: burial 0 = max 0 → cutoff 0, nothing strictly below it.
        assert!(spots.is_empty());
    }

    #[test]
    fn sas_single_atom_fully_exposed() {
        let m = Molecule::new("one", vec![Atom::new(Vec3::ZERO, Element::C)]);
        let e = sas_exposure(&m, 1.4, 64);
        assert_eq!(e, vec![1.0]);
    }

    #[test]
    fn sas_buried_atom_has_zero_exposure() {
        // One atom at the center of a tight cage of 26 others.
        let mut atoms = vec![Atom::new(Vec3::ZERO, Element::C)];
        for x in -1..=1 {
            for y in -1..=1 {
                for z in -1..=1 {
                    if (x, y, z) != (0, 0, 0) {
                        atoms.push(Atom::new(
                            Vec3::new(x as f64, y as f64, z as f64) * 2.0,
                            Element::C,
                        ));
                    }
                }
            }
        }
        let m = Molecule::new("cage", atoms);
        let e = sas_exposure(&m, 1.4, 128);
        assert_eq!(e[0], 0.0, "caged atom exposure {}", e[0]);
        // Cage corners remain partly exposed.
        assert!(e[1..].iter().any(|&x| x > 0.2));
    }

    #[test]
    fn sas_agrees_with_burial_count_on_globule() {
        // The two surface criteria must broadly agree: SAS-exposed atoms
        // sit at larger radius than SAS-buried ones.
        let m = small_receptor();
        let exposure = sas_exposure(&m, 1.4, 64);
        let centroid = m.centroid();
        let (mut r_exposed, mut n_exposed, mut r_buried, mut n_buried) = (0.0, 0, 0.0, 0);
        for (i, &p) in m.positions().iter().enumerate() {
            if exposure[i] > 0.25 {
                r_exposed += p.dist(centroid);
                n_exposed += 1;
            } else if exposure[i] == 0.0 {
                r_buried += p.dist(centroid);
                n_buried += 1;
            }
        }
        assert!(n_exposed > 0 && n_buried > 0);
        assert!(
            r_exposed / n_exposed as f64 > r_buried / n_buried as f64 + 2.0,
            "SAS radial separation too weak"
        );
    }

    #[test]
    fn sas_surface_atom_selection() {
        let m = small_receptor();
        let surf = surface_atoms_sas(&m, 1.4, 64, 0.2);
        assert!(!surf.is_empty());
        assert!(surf.len() < m.len());
    }

    #[test]
    fn bigger_probe_reduces_exposure() {
        let m = small_receptor();
        let fine = sas_exposure(&m, 0.5, 64);
        let coarse = sas_exposure(&m, 3.0, 64);
        let sum = |v: &[f64]| v.iter().sum::<f64>();
        assert!(sum(&coarse) < sum(&fine), "larger probe must see less surface");
    }

    #[test]
    #[should_panic]
    fn sas_zero_points_panics() {
        sas_exposure(&small_receptor(), 1.4, 0);
    }

    #[test]
    fn spot_detection_is_deterministic() {
        let m = small_receptor();
        let a = detect_spots(&m, &SurfaceOptions::default());
        let b = detect_spots(&m, &SurfaceOptions::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.anchor_atom, y.anchor_atom);
        }
    }
}
