//! Minimal PDB-format reader and writer.
//!
//! Supports the fixed-column `ATOM`/`HETATM` records needed to load real
//! Protein Data Bank structures (the paper screens PDB:2BSM and PDB:2BXG)
//! and to dump docked poses for visualization (Figure 1 analog). Everything
//! else (`REMARK`, `TER`, `CONECT`, ...) is skipped on read.

use crate::{Atom, Element, Molecule};
use std::fmt::Write as _;
use vsmath::Vec3;

/// Errors from PDB parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PdbError {
    /// A coordinate field failed to parse as a float.
    BadCoordinate { line_no: usize, field: &'static str },
    /// An ATOM/HETATM line is too short to hold coordinates.
    TruncatedRecord { line_no: usize },
}

impl std::fmt::Display for PdbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PdbError::BadCoordinate { line_no, field } => {
                write!(f, "line {line_no}: bad {field} coordinate")
            }
            PdbError::TruncatedRecord { line_no } => {
                write!(f, "line {line_no}: truncated ATOM/HETATM record")
            }
        }
    }
}

impl std::error::Error for PdbError {}

fn slice_cols(line: &str, start: usize, end: usize) -> &str {
    // PDB columns are 1-based inclusive; lines are ASCII so byte slicing is safe.
    let bytes = line.as_bytes();
    let s = (start - 1).min(bytes.len());
    let e = end.min(bytes.len());
    std::str::from_utf8(&bytes[s..e]).unwrap_or("").trim()
}

/// Parse PDB text into a molecule. Both `ATOM` and `HETATM` records are
/// collected; the element is taken from columns 77–78 when present, falling
/// back to the first letter of the atom name.
pub fn parse(text: &str, name: impl Into<String>) -> Result<Molecule, PdbError> {
    let mut atoms = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if !(line.starts_with("ATOM") || line.starts_with("HETATM")) {
            continue;
        }
        if line.len() < 54 {
            return Err(PdbError::TruncatedRecord { line_no });
        }
        let x: f64 = slice_cols(line, 31, 38)
            .parse()
            .map_err(|_| PdbError::BadCoordinate { line_no, field: "x" })?;
        let y: f64 = slice_cols(line, 39, 46)
            .parse()
            .map_err(|_| PdbError::BadCoordinate { line_no, field: "y" })?;
        let z: f64 = slice_cols(line, 47, 54)
            .parse()
            .map_err(|_| PdbError::BadCoordinate { line_no, field: "z" })?;

        let elem_field = slice_cols(line, 77, 78);
        let element = if elem_field.is_empty() {
            // Fall back to the first alphabetic character of the atom name.
            let atom_name = slice_cols(line, 13, 16);
            match atom_name.chars().find(|c| c.is_ascii_alphabetic()) {
                Some(c) => Element::from_symbol(&c.to_string()),
                None => Element::Other,
            }
        } else {
            Element::from_symbol(elem_field)
        };

        atoms.push(Atom::new(Vec3::new(x, y, z), element));
    }
    Ok(Molecule::new(name, atoms))
}

/// One parsed `ATOM`/`HETATM` record with its residue/chain context.
#[derive(Debug, Clone, PartialEq)]
pub struct PdbRecord {
    pub serial: u32,
    pub atom_name: String,
    pub res_name: String,
    pub chain: char,
    pub res_seq: i32,
    pub atom: Atom,
    /// True for `HETATM` records.
    pub het: bool,
}

/// A fully parsed PDB structure, retaining residue and chain context so
/// protein and ligand can be separated — how real 2BSM/2BXG files are
/// prepared for screening.
#[derive(Debug, Clone, Default)]
pub struct PdbStructure {
    pub name: String,
    pub records: Vec<PdbRecord>,
}

/// Water residue names excluded from ligand extraction.
const WATER_NAMES: [&str; 3] = ["HOH", "WAT", "DOD"];

impl PdbStructure {
    /// The receptor: all `ATOM` records as one molecule.
    pub fn protein(&self) -> Molecule {
        Molecule::new(
            format!("{}-protein", self.name),
            self.records.iter().filter(|r| !r.het).map(|r| r.atom).collect(),
        )
    }

    /// Candidate ligands: `HETATM` records grouped by
    /// (chain, residue number, residue name), with waters removed, largest
    /// group first.
    pub fn ligands(&self) -> Vec<Molecule> {
        let mut groups: Vec<((char, i32, String), Vec<Atom>)> = Vec::new();
        for r in self.records.iter().filter(|r| r.het) {
            if WATER_NAMES.contains(&r.res_name.as_str()) {
                continue;
            }
            let key = (r.chain, r.res_seq, r.res_name.clone());
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, atoms)) => atoms.push(r.atom),
                None => groups.push((key, vec![r.atom])),
            }
        }
        groups.sort_by_key(|(_, atoms)| std::cmp::Reverse(atoms.len()));
        groups
            .into_iter()
            .map(|((chain, seq, res), atoms)| {
                Molecule::new(format!("{}-{res}-{chain}{seq}", self.name), atoms)
            })
            .collect()
    }

    /// Distinct chain identifiers, in order of first appearance.
    pub fn chains(&self) -> Vec<char> {
        let mut out = Vec::new();
        for r in &self.records {
            if !out.contains(&r.chain) {
                out.push(r.chain);
            }
        }
        out
    }

    /// Number of distinct (chain, residue) pairs among `ATOM` records.
    pub fn residue_count(&self) -> usize {
        let mut seen: Vec<(char, i32)> = Vec::new();
        for r in self.records.iter().filter(|r| !r.het) {
            let key = (r.chain, r.res_seq);
            if !seen.contains(&key) {
                seen.push(key);
            }
        }
        seen.len()
    }
}

/// Parse PDB text keeping full residue/chain context.
pub fn parse_structure(text: &str, name: impl Into<String>) -> Result<PdbStructure, PdbError> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let het = line.starts_with("HETATM");
        if !(line.starts_with("ATOM") || het) {
            continue;
        }
        if line.len() < 54 {
            return Err(PdbError::TruncatedRecord { line_no });
        }
        let coord = |a: usize, b: usize, field: &'static str| -> Result<f64, PdbError> {
            slice_cols(line, a, b).parse().map_err(|_| PdbError::BadCoordinate { line_no, field })
        };
        let x = coord(31, 38, "x")?;
        let y = coord(39, 46, "y")?;
        let z = coord(47, 54, "z")?;

        let elem_field = slice_cols(line, 77, 78);
        let atom_name = slice_cols(line, 13, 16).to_string();
        let element = if elem_field.is_empty() {
            match atom_name.chars().find(|c| c.is_ascii_alphabetic()) {
                Some(c) => Element::from_symbol(&c.to_string()),
                None => Element::Other,
            }
        } else {
            Element::from_symbol(elem_field)
        };

        records.push(PdbRecord {
            serial: slice_cols(line, 7, 11).parse().unwrap_or(0),
            atom_name,
            res_name: slice_cols(line, 18, 20).to_string(),
            chain: line.as_bytes().get(21).map(|&b| b as char).unwrap_or(' '),
            res_seq: slice_cols(line, 23, 26).parse().unwrap_or(0),
            atom: Atom::new(Vec3::new(x, y, z), element),
            het,
        });
    }
    Ok(PdbStructure { name: name.into(), records })
}

/// Serialize a molecule as `HETATM` records plus `END`, suitable for pose
/// dumps consumed by standard molecular viewers.
pub fn write(mol: &Molecule) -> String {
    let mut out = String::with_capacity(mol.len() * 82 + 16);
    for (i, a) in mol.atoms().iter().enumerate() {
        let serial = (i + 1) % 100_000;
        let sym = a.element.symbol();
        // Atom name = element symbol; residue LIG 1, chain A.
        let _ = writeln!(
            out,
            "HETATM{serial:>5} {name:<4} {res:<3} A{resseq:>4}    {x:>8.3}{y:>8.3}{z:>8.3}{occ:>6.2}{b:>6.2}          {el:>2}",
            serial = serial,
            name = sym,
            res = "LIG",
            resseq = 1,
            x = a.position.x,
            y = a.position.y,
            z = a.position.z,
            occ = 1.0,
            b = 0.0,
            el = sym.to_ascii_uppercase(),
        );
    }
    out.push_str("END\n");
    out
}

/// Serialize a receptor–ligand complex: the receptor as `ATOM` records
/// (residue `REC`, chain A), the posed ligand as `HETATM` records (residue
/// `LIG`, chain B), plus `TER`/`END` — one file a molecular viewer renders
/// exactly like the paper's Figure 1.
pub fn write_complex(receptor: &Molecule, posed_ligand: &Molecule) -> String {
    let mut out = String::with_capacity((receptor.len() + posed_ligand.len()) * 82 + 32);
    let mut serial = 0usize;
    let mut record = |out: &mut String, kind: &str, a: &Atom, res: &str, chain: char| {
        serial = (serial + 1) % 100_000;
        let sym = a.element.symbol();
        let _ = writeln!(
            out,
            "{kind:<6}{serial:>5} {name:<4} {res:<3} {chain}{resseq:>4}    {x:>8.3}{y:>8.3}{z:>8.3}{occ:>6.2}{b:>6.2}          {el:>2}",
            serial = serial,
            name = sym,
            res = res,
            chain = chain,
            resseq = 1,
            x = a.position.x,
            y = a.position.y,
            z = a.position.z,
            occ = 1.0,
            b = 0.0,
            el = sym.to_ascii_uppercase(),
        );
    };
    for a in receptor.atoms() {
        record(&mut out, "ATOM", a, "REC", 'A');
    }
    out.push_str("TER\n");
    for a in posed_ligand.atoms() {
        record(&mut out, "HETATM", a, "LIG", 'B');
    }
    out.push_str("END\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
HEADER    TEST
REMARK    a remark line
ATOM      1  N   ALA A   1      11.104   6.134  -6.504  1.00  0.00           N
ATOM      2  CA  ALA A   1      11.639   6.071  -5.147  1.00  0.00           C
HETATM    3  O   HOH A   2       1.000   2.000   3.000  1.00  0.00           O
TER
END
";

    #[test]
    fn parses_atom_and_hetatm() {
        let m = parse(SAMPLE, "test").unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.elements(), &[Element::N, Element::C, Element::O]);
        assert!((m.positions()[0].x - 11.104).abs() < 1e-9);
        assert!((m.positions()[2].z - 3.0).abs() < 1e-9);
    }

    #[test]
    fn skips_non_atom_records() {
        let m = parse("REMARK hi\nEND\n", "empty").unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn element_fallback_from_atom_name() {
        // No element columns (line ends at coordinate field + occupancy).
        let line = "ATOM      1  CA  ALA A   1      11.639   6.071  -5.147";
        let m = parse(line, "fb").unwrap();
        assert_eq!(m.elements(), &[Element::C]);
    }

    #[test]
    fn negative_coordinates() {
        let line = "ATOM      1  O   ALA A   1     -11.639  -6.071  -5.147  1.00  0.00           O";
        let m = parse(line, "neg").unwrap();
        assert_eq!(m.positions()[0], Vec3::new(-11.639, -6.071, -5.147));
    }

    #[test]
    fn truncated_record_is_error() {
        let err = parse("ATOM      1  N   ALA A   1      11.104", "t").unwrap_err();
        assert_eq!(err, PdbError::TruncatedRecord { line_no: 1 });
    }

    #[test]
    fn bad_coordinate_is_error() {
        let line = "ATOM      1  N   ALA A   1      xx.xxx   6.134  -6.504  1.00  0.00           N";
        let err = parse(line, "t").unwrap_err();
        assert_eq!(err, PdbError::BadCoordinate { line_no: 1, field: "x" });
    }

    #[test]
    fn roundtrip_write_parse() {
        let m = parse(SAMPLE, "orig").unwrap();
        let text = write(&m);
        let m2 = parse(&text, "rt").unwrap();
        assert_eq!(m.len(), m2.len());
        for (a, b) in m.atoms().iter().zip(m2.atoms()) {
            assert_eq!(a.element, b.element);
            assert!((a.position - b.position).max_abs_component() < 1e-3);
        }
    }

    #[test]
    fn written_records_have_fixed_width_coords() {
        let m = parse(SAMPLE, "w").unwrap();
        for line in write(&m).lines() {
            if line.starts_with("HETATM") {
                assert!(line.len() >= 78, "short record: {line:?}");
                // x field occupies columns 31-38.
                let x = slice_cols(line, 31, 38);
                assert!(x.parse::<f64>().is_ok(), "bad x field {x:?}");
            }
        }
    }

    const COMPLEX: &str = "\
ATOM      1  N   ALA A   1      11.104   6.134  -6.504  1.00  0.00           N
ATOM      2  CA  ALA A   1      11.639   6.071  -5.147  1.00  0.00           C
ATOM      3  N   GLY A   2      12.000   7.000  -4.000  1.00  0.00           N
ATOM      4  CA  GLY B   5      13.000   8.000  -3.000  1.00  0.00           C
HETATM    5  C1  LIG A 100       1.000   2.000   3.000  1.00  0.00           C
HETATM    6  O1  LIG A 100       2.000   2.000   3.000  1.00  0.00           O
HETATM    7  O   HOH A 200       9.000   9.000   9.000  1.00  0.00           O
HETATM    8  C1  FRG B 300       5.000   5.000   5.000  1.00  0.00           C
END
";

    #[test]
    fn structure_separates_protein_and_ligands() {
        let s = parse_structure(COMPLEX, "test").unwrap();
        assert_eq!(s.records.len(), 8);
        let protein = s.protein();
        assert_eq!(protein.len(), 4);
        let ligands = s.ligands();
        // Water excluded; LIG (2 atoms) before FRG (1 atom).
        assert_eq!(ligands.len(), 2);
        assert_eq!(ligands[0].len(), 2);
        assert!(ligands[0].name.contains("LIG"));
        assert_eq!(ligands[1].len(), 1);
        assert!(ligands[1].name.contains("FRG"));
    }

    #[test]
    fn structure_chains_and_residues() {
        let s = parse_structure(COMPLEX, "test").unwrap();
        assert_eq!(s.chains(), vec!['A', 'B']);
        // ATOM residues: A1, A2, B5.
        assert_eq!(s.residue_count(), 3);
    }

    #[test]
    fn structure_record_fields() {
        let s = parse_structure(COMPLEX, "test").unwrap();
        let r = &s.records[0];
        assert_eq!(r.serial, 1);
        assert_eq!(r.atom_name, "N");
        assert_eq!(r.res_name, "ALA");
        assert_eq!(r.chain, 'A');
        assert_eq!(r.res_seq, 1);
        assert!(!r.het);
        assert!(s.records[4].het);
        assert_eq!(s.records[4].res_seq, 100);
    }

    #[test]
    fn structure_parse_matches_flat_parse() {
        let s = parse_structure(SAMPLE, "t").unwrap();
        let flat = parse(SAMPLE, "t").unwrap();
        assert_eq!(s.records.len(), flat.len());
        for (r, a) in s.records.iter().zip(flat.atoms()) {
            assert_eq!(r.atom.position, a.position);
            assert_eq!(r.atom.element, a.element);
        }
    }

    #[test]
    fn complex_separates_chains_on_reparse() {
        let rec = crate::synth::synth_receptor("r", 50, 1);
        let lig = crate::synth::synth_ligand("l", 8, 2);
        let text = write_complex(&rec, &lig);
        let s = parse_structure(&text, "complex").unwrap();
        assert_eq!(s.protein().len(), 50);
        let ligands = s.ligands();
        assert_eq!(ligands.len(), 1);
        assert_eq!(ligands[0].len(), 8);
        assert_eq!(s.chains(), vec!['A', 'B']);
        assert!(text.contains("TER\n"));
    }

    #[test]
    fn structure_errors_propagate() {
        assert!(parse_structure("ATOM      1  N   ALA A   1      11.104", "t").is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let e = PdbError::BadCoordinate { line_no: 3, field: "y" };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains('y'));
    }
}
