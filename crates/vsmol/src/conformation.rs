//! Docking conformations — the individuals of the metaheuristic populations.
//!
//! "The computation places copies of the same ligand at each of those spots.
//! These copies (a.k.a. individual or conformation) are different from each
//! other as they have a different position and orientation with respect to
//! each spot." (§3.1)

use crate::Spot;
use serde::{Deserialize, Serialize};
use vsmath::{RigidTransform, RngStream};

/// A rigid ligand pose anchored at a surface spot, with its cached score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Conformation {
    /// Pose mapping the centered ligand's local frame into receptor space.
    pub pose: RigidTransform,
    /// The spot this conformation belongs to.
    pub spot_id: usize,
    /// Scoring-function value (lower is better); `NAN` until evaluated.
    pub score: f64,
}

impl Conformation {
    /// Unevaluated conformation.
    pub fn new(pose: RigidTransform, spot_id: usize) -> Conformation {
        Conformation { pose, spot_id, score: f64::NAN }
    }

    /// Whether the scoring function has been evaluated for this pose.
    pub fn is_scored(&self) -> bool {
        !self.score.is_nan()
    }

    /// Random conformation in a spot's search region: translation uniform in
    /// the spot ball, orientation uniform over SO(3).
    pub fn random_at(spot: &Spot, rng: &mut RngStream) -> Conformation {
        let t = spot.center + rng.in_ball(spot.radius);
        Conformation::new(RigidTransform::new(rng.rotation(), t), spot.id)
    }

    /// Local-search move: perturb position by at most `max_shift` Å and
    /// orientation by at most `max_angle` radians ("moving, translating
    /// and/or rotating with respect to each spot", §3.1).
    pub fn perturbed(&self, max_shift: f64, max_angle: f64, rng: &mut RngStream) -> Conformation {
        let dq = rng.small_rotation(max_angle);
        let dt = rng.in_ball(max_shift);
        Conformation::new(
            RigidTransform::new(
                (dq * self.pose.rotation).renormalize(),
                self.pose.translation + dt,
            ),
            self.spot_id,
        )
    }

    /// Recombine two parent poses: translation is a random convex blend,
    /// orientation a slerp at the same blend factor. Used by the combine
    /// step of the population metaheuristics.
    pub fn crossover(a: &Conformation, b: &Conformation, rng: &mut RngStream) -> Conformation {
        debug_assert_eq!(a.spot_id, b.spot_id, "crossover across spots");
        let t = rng.uniform();
        Conformation::new(
            RigidTransform::new(
                a.pose.rotation.slerp(b.pose.rotation, t),
                a.pose.translation.lerp(b.pose.translation, t),
            ),
            a.spot_id,
        )
    }

    /// Clamp the translation back inside the spot ball; keeps local search
    /// from drifting away from the region this spot owns.
    pub fn clamped_to(&self, spot: &Spot) -> Conformation {
        let d = self.pose.translation - spot.center;
        let n = d.norm();
        if n <= spot.radius {
            *self
        } else {
            Conformation::new(
                RigidTransform::new(self.pose.rotation, spot.center + d * (spot.radius / n)),
                self.spot_id,
            )
        }
    }

    /// Distance between two conformations' translations.
    pub fn translation_distance(&self, o: &Conformation) -> f64 {
        self.pose.translation.dist(o.pose.translation)
    }

    /// Geodesic angle between two conformations' orientations (radians).
    pub fn rotation_distance(&self, o: &Conformation) -> f64 {
        self.pose.rotation.angle_to(o.pose.rotation)
    }
}

/// Order conformations by score, unevaluated (NaN) last.
pub fn score_cmp(a: &Conformation, b: &Conformation) -> std::cmp::Ordering {
    match (a.score.is_nan(), b.score.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        // PANICS: the NaN arms above already returned; both scores are non-NaN here.
        (false, false) => a.score.partial_cmp(&b.score).unwrap(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsmath::Vec3;

    fn spot() -> Spot {
        Spot {
            id: 3,
            center: Vec3::new(10.0, 0.0, 0.0),
            normal: Vec3::X,
            radius: 5.0,
            anchor_atom: 0,
        }
    }

    #[test]
    fn new_is_unscored() {
        let c = Conformation::new(RigidTransform::IDENTITY, 0);
        assert!(!c.is_scored());
        let mut d = c;
        d.score = -1.5;
        assert!(d.is_scored());
    }

    #[test]
    fn random_at_inside_spot() {
        let s = spot();
        let mut rng = RngStream::from_seed(5);
        for _ in 0..200 {
            let c = Conformation::random_at(&s, &mut rng);
            assert_eq!(c.spot_id, 3);
            assert!(c.pose.translation.dist(s.center) <= s.radius + 1e-9);
            assert!((c.pose.rotation.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn perturbed_stays_within_bounds() {
        let s = spot();
        let mut rng = RngStream::from_seed(6);
        let c = Conformation::random_at(&s, &mut rng);
        for _ in 0..100 {
            let p = c.perturbed(0.5, 0.1, &mut rng);
            assert!(c.translation_distance(&p) <= 0.5 + 1e-9);
            assert!(c.rotation_distance(&p) <= 0.1 + 1e-9);
            assert_eq!(p.spot_id, c.spot_id);
            assert!(!p.is_scored(), "perturbed pose must be re-scored");
        }
    }

    #[test]
    fn crossover_blends_translation() {
        let mut rng = RngStream::from_seed(7);
        let a = Conformation::new(RigidTransform::from_translation(Vec3::ZERO), 1);
        let b = Conformation::new(RigidTransform::from_translation(Vec3::new(4.0, 0.0, 0.0)), 1);
        for _ in 0..50 {
            let c = Conformation::crossover(&a, &b, &mut rng);
            assert!(c.pose.translation.x >= -1e-9 && c.pose.translation.x <= 4.0 + 1e-9);
            assert!(c.pose.translation.y.abs() < 1e-9);
            assert_eq!(c.spot_id, 1);
        }
    }

    #[test]
    fn clamp_pulls_back_into_ball() {
        let s = spot();
        let outside =
            Conformation::new(RigidTransform::from_translation(Vec3::new(100.0, 0.0, 0.0)), 3);
        let clamped = outside.clamped_to(&s);
        assert!((clamped.pose.translation.dist(s.center) - s.radius).abs() < 1e-9);
        // Already-inside poses are untouched.
        let inside =
            Conformation::new(RigidTransform::from_translation(Vec3::new(11.0, 0.0, 0.0)), 3);
        // Compare pose fields: whole-struct equality would fail on NaN score.
        assert_eq!(inside.clamped_to(&s).pose, inside.pose);
    }

    #[test]
    fn score_ordering_puts_nan_last() {
        let mut a = Conformation::new(RigidTransform::IDENTITY, 0);
        a.score = -2.0;
        let mut b = a;
        b.score = 1.0;
        let c = Conformation::new(RigidTransform::IDENTITY, 0); // NaN
        let mut v = [c, b, a];
        v.sort_by(score_cmp);
        assert_eq!(v[0].score, -2.0);
        assert_eq!(v[1].score, 1.0);
        assert!(v[2].score.is_nan());
    }
}
