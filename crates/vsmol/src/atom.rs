//! Atoms: position + element + partial charge.

use crate::Element;
use serde::{Deserialize, Serialize};
use vsmath::Vec3;

/// A single atom. Partial charges drive the Coulomb term of the extended
/// scoring function; the paper's baseline scoring uses only Lennard-Jones,
/// for which `element` alone suffices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Atom {
    pub position: Vec3,
    pub element: Element,
    /// Partial charge in elementary-charge units.
    pub charge: f64,
}

impl Atom {
    pub fn new(position: Vec3, element: Element) -> Atom {
        Atom { position, element, charge: 0.0 }
    }

    pub fn with_charge(position: Vec3, element: Element, charge: f64) -> Atom {
        Atom { position, element, charge }
    }

    /// The atom translated by `delta`.
    pub fn translated(mut self, delta: Vec3) -> Atom {
        self.position += delta;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_atom_is_neutral() {
        let a = Atom::new(Vec3::X, Element::C);
        assert_eq!(a.charge, 0.0);
        assert_eq!(a.element, Element::C);
        assert_eq!(a.position, Vec3::X);
    }

    #[test]
    fn with_charge_sets_charge() {
        let a = Atom::with_charge(Vec3::ZERO, Element::O, -0.4);
        assert_eq!(a.charge, -0.4);
    }

    #[test]
    fn translated_moves_position_only() {
        let a = Atom::with_charge(Vec3::X, Element::N, 0.2).translated(Vec3::Y);
        assert_eq!(a.position, Vec3::new(1.0, 1.0, 0.0));
        assert_eq!(a.element, Element::N);
        assert_eq!(a.charge, 0.2);
    }
}
