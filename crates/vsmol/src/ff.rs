//! Force-field parameters for the non-bonded potentials.
//!
//! The paper's scoring function is based on the Lennard-Jones potential
//! (§3.1); the LJ well depth ε and collision diameter σ are tabulated per
//! element and combined per atom pair with Lorentz–Berthelot rules:
//! `σ_ij = (σ_i + σ_j)/2`, `ε_ij = sqrt(ε_i ε_j)`. The pair table is
//! precomputed and flattened so the scoring hot loop is two loads and a
//! handful of FLOPs per pair.

use crate::Element;
use serde::{Deserialize, Serialize};

/// Lennard-Jones parameters for one atom pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LjParams {
    /// Collision diameter σ in Å (potential crosses zero at r = σ).
    pub sigma: f64,
    /// Well depth ε in kcal/mol.
    pub epsilon: f64,
}

impl LjParams {
    /// Per-element parameters (OPLS-like magnitudes: σ in Å, ε in kcal/mol).
    pub fn of(e: Element) -> LjParams {
        let (sigma, epsilon) = match e {
            Element::H => (2.50, 0.030),
            Element::C => (3.40, 0.086),
            Element::N => (3.25, 0.170),
            Element::O => (3.00, 0.210),
            Element::S => (3.55, 0.250),
            Element::P => (3.74, 0.200),
            Element::F => (2.95, 0.061),
            Element::Cl => (3.52, 0.276),
            Element::Br => (3.73, 0.389),
            Element::I => (3.96, 0.550),
            Element::Other => (3.40, 0.100),
        };
        LjParams { sigma, epsilon }
    }

    /// Lorentz–Berthelot combination of two single-element parameter sets.
    pub fn combine(a: LjParams, b: LjParams) -> LjParams {
        LjParams { sigma: 0.5 * (a.sigma + b.sigma), epsilon: (a.epsilon * b.epsilon).sqrt() }
    }

    /// The pair energy `4ε[(σ/r)¹² − (σ/r)⁶]` at squared distance `r²`.
    ///
    /// Kept on the params struct for tests and references; the batch kernels
    /// in `vsscore` inline the same math over flattened tables.
    #[inline]
    pub fn energy_at_sq(self, r_sq: f64) -> f64 {
        let s2 = self.sigma * self.sigma / r_sq;
        let s6 = s2 * s2 * s2;
        4.0 * self.epsilon * (s6 * s6 - s6)
    }
}

/// Precomputed all-pairs LJ table, indexed by `Element::index()` pairs.
///
/// Stores `(sigma², 4ε)` so the kernel computes `s6 = (σ²/r²)³` directly
/// from squared distances without any square roots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LjTable {
    /// `sigma_sq[i * COUNT + j]`
    sigma_sq: Vec<f64>,
    /// `four_eps[i * COUNT + j]`
    four_eps: Vec<f64>,
}

impl LjTable {
    pub fn standard() -> LjTable {
        let n = Element::COUNT;
        let mut sigma_sq = vec![0.0; n * n];
        let mut four_eps = vec![0.0; n * n];
        for a in Element::ALL {
            for b in Element::ALL {
                let p = LjParams::combine(LjParams::of(a), LjParams::of(b));
                let k = a.index() * n + b.index();
                sigma_sq[k] = p.sigma * p.sigma;
                four_eps[k] = 4.0 * p.epsilon;
            }
        }
        LjTable { sigma_sq, four_eps }
    }

    /// `(σ², 4ε)` for an element pair.
    #[inline]
    pub fn pair(&self, a: Element, b: Element) -> (f64, f64) {
        let k = a.index() * Element::COUNT + b.index();
        (self.sigma_sq[k], self.four_eps[k])
    }

    /// Raw rows for the flattened kernels: `(σ², 4ε)` slices of length
    /// `Element::COUNT` for a fixed first element.
    #[inline]
    pub fn row(&self, a: Element) -> (&[f64], &[f64]) {
        let n = Element::COUNT;
        let s = a.index() * n;
        (&self.sigma_sq[s..s + n], &self.four_eps[s..s + n])
    }

    /// LJ pair energy at squared distance `r_sq`.
    #[inline]
    pub fn energy(&self, a: Element, b: Element, r_sq: f64) -> f64 {
        let (s2, e4) = self.pair(a, b);
        let q = s2 / r_sq;
        let s6 = q * q * q;
        e4 * (s6 * s6 - s6)
    }
}

impl Default for LjTable {
    fn default() -> Self {
        LjTable::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsmath::approx_eq;

    #[test]
    fn energy_zero_at_sigma() {
        let p = LjParams::of(Element::C);
        let e = p.energy_at_sq(p.sigma * p.sigma);
        assert!(e.abs() < 1e-12, "LJ must vanish at r = sigma, got {e}");
    }

    #[test]
    fn minimum_at_r_min() {
        // LJ minimum is at r = 2^(1/6) σ with energy exactly -ε.
        let p = LjParams::of(Element::O);
        let r_min = 2f64.powf(1.0 / 6.0) * p.sigma;
        let e = p.energy_at_sq(r_min * r_min);
        assert!(approx_eq(e, -p.epsilon, 1e-12), "{e} vs {}", -p.epsilon);
        // Slightly off the minimum is higher energy.
        assert!(p.energy_at_sq((r_min * 1.05).powi(2)) > e);
        assert!(p.energy_at_sq((r_min * 0.95).powi(2)) > e);
    }

    #[test]
    fn strongly_repulsive_at_short_range() {
        let p = LjParams::of(Element::C);
        assert!(p.energy_at_sq((0.5 * p.sigma).powi(2)) > 100.0 * p.epsilon);
    }

    #[test]
    fn attractive_tail_decays() {
        let p = LjParams::of(Element::N);
        let e1 = p.energy_at_sq((2.0 * p.sigma).powi(2));
        let e2 = p.energy_at_sq((4.0 * p.sigma).powi(2));
        assert!(e1 < 0.0 && e2 < 0.0);
        assert!(e2 > e1, "tail must decay toward zero: {e1} -> {e2}");
    }

    #[test]
    fn combine_is_symmetric() {
        let a = LjParams::of(Element::C);
        let b = LjParams::of(Element::O);
        let ab = LjParams::combine(a, b);
        let ba = LjParams::combine(b, a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn combine_identical_is_identity() {
        let a = LjParams::of(Element::S);
        let aa = LjParams::combine(a, a);
        assert!(approx_eq(aa.sigma, a.sigma, 1e-15));
        assert!(approx_eq(aa.epsilon, a.epsilon, 1e-15));
    }

    #[test]
    fn table_matches_params() {
        let t = LjTable::standard();
        for a in Element::ALL {
            for b in Element::ALL {
                let p = LjParams::combine(LjParams::of(a), LjParams::of(b));
                let r_sq = 10.0;
                assert!(
                    approx_eq(t.energy(a, b, r_sq), p.energy_at_sq(r_sq), 1e-12),
                    "mismatch for {a}-{b}"
                );
            }
        }
    }

    #[test]
    fn table_is_symmetric() {
        let t = LjTable::standard();
        for a in Element::ALL {
            for b in Element::ALL {
                assert_eq!(t.pair(a, b), t.pair(b, a));
            }
        }
    }

    #[test]
    fn row_matches_pair() {
        let t = LjTable::standard();
        let (s2, e4) = t.row(Element::C);
        for b in Element::ALL {
            assert_eq!((s2[b.index()], e4[b.index()]), t.pair(Element::C, b));
        }
    }
}
