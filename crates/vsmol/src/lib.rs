//! # vsmol — molecular substrate
//!
//! Everything the virtual-screening engine needs to know about molecules:
//!
//! - [`element::Element`] and per-element force-field parameters ([`ff`]);
//! - [`atom::Atom`] and [`molecule::Molecule`] (receptors and ligands);
//! - a PDB-format reader/writer ([`pdb`]) for real Protein Data Bank files;
//! - a deterministic synthetic structure generator ([`synth`]) reproducing
//!   the paper's benchmark compounds (Table 5: 2BSM receptor 3264 atoms /
//!   ligand 45 atoms; 2BXG receptor 8609 atoms / ligand 32 atoms) for
//!   environments without the original crystal structures;
//! - BINDSURF-style surface extraction and spot detection ([`surface`]):
//!   the whole protein surface is divided into independent regions (spots),
//!   each screened simultaneously;
//! - docking [`conformation::Conformation`]s — rigid ligand poses anchored
//!   at a spot, the *individuals* of the metaheuristic populations.
#![forbid(unsafe_code)]

pub mod atom;
pub mod conformation;
pub mod element;
pub mod ff;
pub mod molecule;
pub mod pdb;
pub mod rmsd;
pub mod sdf;
pub mod surface;
pub mod synth;

pub use atom::Atom;
pub use conformation::Conformation;
pub use element::Element;
pub use ff::{LjParams, LjTable};
pub use molecule::Molecule;
pub use surface::{Spot, SurfaceOptions};
pub use synth::Dataset;
