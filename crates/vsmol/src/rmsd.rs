//! RMSD metrics and Kabsch superposition — the standard docking-pose
//! comparison tools (AutoDock-family codes cluster results by ligand RMSD).

use crate::{Conformation, Molecule};
use vsmath::{Mat3, Quat, RigidTransform, Vec3};

/// Root-mean-square deviation between two equal-length point sets, with no
/// alignment (coordinates compared as-is).
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn rmsd(a: &[Vec3], b: &[Vec3]) -> f64 {
    assert_eq!(a.len(), b.len(), "point sets must match");
    assert!(!a.is_empty(), "empty point sets");
    let msd: f64 = a.iter().zip(b).map(|(p, q)| p.dist_sq(*q)).sum::<f64>() / a.len() as f64;
    msd.sqrt()
}

/// RMSD between the ligand poses of two conformations: the centered ligand
/// coordinates are placed by each pose and compared atom-by-atom. This is
/// the metric pose clustering uses.
pub fn pose_rmsd(ligand: &Molecule, a: &Conformation, b: &Conformation) -> f64 {
    let local = ligand.centered();
    let pa: Vec<Vec3> = local.positions().iter().map(|&p| a.pose.apply(p)).collect();
    let pb: Vec<Vec3> = local.positions().iter().map(|&p| b.pose.apply(p)).collect();
    rmsd(&pa, &pb)
}

/// Kabsch superposition: the rigid transform minimizing the RMSD of
/// `mobile` onto `target`, plus the residual RMSD after alignment.
///
/// Uses the quaternion eigen formulation (Horn): builds the 3×3 covariance,
/// promotes it to the Davenport K-matrix... here implemented via the
/// classic covariance-SVD route using the symmetric eigen-solver on
/// `HᵀH`, with the proper-rotation (det = +1) correction.
pub fn kabsch(mobile: &[Vec3], target: &[Vec3]) -> (RigidTransform, f64) {
    assert_eq!(mobile.len(), target.len(), "point sets must match");
    assert!(mobile.len() >= 3, "need at least 3 points for a unique alignment");

    let cm = Vec3::centroid(mobile);
    let ct = Vec3::centroid(target);

    // Covariance H = Σ (m_i - cm)(t_i - ct)ᵀ.
    let mut h = Mat3::ZERO;
    for (m, t) in mobile.iter().zip(target) {
        h = h + Mat3::outer(*m - cm, *t - ct);
    }

    // SVD via eigen-decomposition: HᵀH = V Σ² Vᵀ, U = H V Σ⁻¹. Point sets
    // are often (near-)planar — any 3-point set is — so U is rebuilt with
    // Gram–Schmidt against a *relative* rank tolerance instead of trusting
    // noise-amplified `H v / σ` columns for tiny σ.
    let (vals, v) = (h.transpose() * h).symmetric_eigen();
    let s_max = vals[0].max(0.0).sqrt().max(1e-300);
    let tol = 1e-8 * s_max;
    let col_u = |i: usize| -> Option<Vec3> {
        let s = vals[i].max(0.0).sqrt();
        if s > tol {
            (h.mul_vec(v.col(i)) / s).normalized()
        } else {
            None
        }
    };
    // PANICS: s_max > tol was established above, so the largest direction normalizes.
    let u0 = col_u(0).expect("largest singular direction must be valid");
    let u1 = match col_u(1) {
        Some(c) => {
            // Orthonormalize against u0 (defensive for near-degenerate σ₁).
            (c - u0 * c.dot(u0)).normalized().unwrap_or_else(|| orthogonal_to(u0))
        }
        None => orthogonal_to(u0),
    };
    let mut u_cols = [u0, u1, u0.cross(u1)];
    let build_u = |cols: &[Vec3; 3]| {
        Mat3::from_rows(
            Vec3::new(cols[0].x, cols[1].x, cols[2].x),
            Vec3::new(cols[0].y, cols[1].y, cols[2].y),
            Vec3::new(cols[0].z, cols[1].z, cols[2].z),
        )
    };
    // With H = U S Vᵀ and t ≈ R m, the optimal rotation is R = V Uᵀ
    // (for t = R₀ m exactly: H = A R₀ᵀ with A symmetric PSD, so U holds
    // A's eigenvectors, V = R₀ U, and V Uᵀ = R₀). Reflections are
    // corrected by flipping the smallest-singular-value column of U.
    let mut r = v * build_u(&u_cols).transpose();
    if r.determinant() < 0.0 {
        u_cols[2] = -u_cols[2];
        r = v * build_u(&u_cols).transpose();
    }

    let rot: Quat = r.to_quat();
    let translation = ct - rot.rotate(cm);
    let tf = RigidTransform::new(rot, translation);

    let aligned: Vec<Vec3> = mobile.iter().map(|&p| tf.apply(p)).collect();
    let residual = rmsd(&aligned, target);
    (tf, residual)
}

/// An arbitrary unit vector orthogonal to `v` (assumed unit).
fn orthogonal_to(v: Vec3) -> Vec3 {
    let trial = if v.x.abs() < 0.9 { Vec3::X } else { Vec3::Y };
    // PANICS: the trial axis is chosen non-parallel to v, so the projection cannot vanish.
    (trial - v * trial.dot(v)).normalized().expect("non-parallel trial axis")
}

/// Greedy RMSD clustering of scored conformations (AutoDock-style): sort by
/// score, take the best unclustered pose as a cluster seed, absorb every
/// pose within `cutoff` RMSD of the seed. Returns clusters as index lists
/// into the input, best cluster first; each cluster is seeded by its best
/// member.
pub fn cluster_poses(ligand: &Molecule, poses: &[Conformation], cutoff: f64) -> Vec<Vec<usize>> {
    assert!(cutoff >= 0.0, "cutoff must be non-negative");
    let mut order: Vec<usize> = (0..poses.len()).collect();
    order.sort_by(|&a, &b| crate::conformation::score_cmp(&poses[a], &poses[b]));

    let mut clusters: Vec<Vec<usize>> = Vec::new();
    let mut assigned = vec![false; poses.len()];
    for &i in &order {
        if assigned[i] {
            continue;
        }
        let mut members = vec![i];
        assigned[i] = true;
        for &j in &order {
            if !assigned[j] && pose_rmsd(ligand, &poses[i], &poses[j]) <= cutoff {
                members.push(j);
                assigned[j] = true;
            }
        }
        clusters.push(members);
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;
    use vsmath::RngStream;

    fn cloud(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = RngStream::from_seed(seed);
        (0..n).map(|_| rng.in_ball(10.0)).collect()
    }

    #[test]
    fn rmsd_identical_is_zero() {
        let a = cloud(20, 1);
        assert_eq!(rmsd(&a, &a), 0.0);
    }

    #[test]
    fn rmsd_uniform_shift() {
        let a = cloud(20, 2);
        let b: Vec<Vec3> = a.iter().map(|&p| p + Vec3::new(3.0, 0.0, 4.0)).collect();
        assert!((rmsd(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rmsd_mismatched_lengths_panic() {
        rmsd(&cloud(3, 1), &cloud(4, 1));
    }

    #[test]
    fn kabsch_recovers_known_transform() {
        let mut rng = RngStream::from_seed(3);
        for trial in 0..20 {
            let a = cloud(15, 100 + trial);
            let tf_true = RigidTransform::new(rng.rotation(), rng.in_ball(20.0));
            let b: Vec<Vec3> = a.iter().map(|&p| tf_true.apply(p)).collect();
            let (tf, residual) = kabsch(&a, &b);
            assert!(residual < 1e-8, "trial {trial}: residual {residual}");
            // Recovered transform maps a onto b.
            for (p, q) in a.iter().zip(&b) {
                assert!((tf.apply(*p) - *q).max_abs_component() < 1e-7);
            }
        }
    }

    #[test]
    fn kabsch_rotation_is_proper() {
        let mut rng = RngStream::from_seed(4);
        for trial in 0..10 {
            let a = cloud(8, 200 + trial);
            let b: Vec<Vec3> = a
                .iter()
                .map(|&p| p + rng.in_ball(0.5)) // noisy copy
                .collect();
            let (tf, _) = kabsch(&a, &b);
            let m = Mat3::from_quat(tf.rotation);
            assert!((m.determinant() - 1.0).abs() < 1e-6, "det {}", m.determinant());
        }
    }

    #[test]
    fn kabsch_noisy_alignment_reduces_rmsd() {
        let mut rng = RngStream::from_seed(5);
        let a = cloud(30, 6);
        let tf_true = RigidTransform::new(rng.rotation(), Vec3::new(5.0, -2.0, 1.0));
        let b: Vec<Vec3> = a.iter().map(|&p| tf_true.apply(p) + rng.in_ball(0.3)).collect();
        let before = rmsd(&a, &b);
        let (_, after) = kabsch(&a, &b);
        assert!(after < before * 0.2, "alignment {before} -> {after}");
        assert!(after < 0.4, "residual should be noise-level: {after}");
    }

    #[test]
    fn pose_rmsd_zero_for_same_pose() {
        let lig = synth::synth_ligand("l", 10, 1);
        let mut rng = RngStream::from_seed(7);
        let pose = RigidTransform::new(rng.rotation(), rng.in_ball(10.0));
        let a = Conformation::new(pose, 0);
        assert!(pose_rmsd(&lig, &a, &a) < 1e-12);
    }

    #[test]
    fn pose_rmsd_translation_equals_shift() {
        let lig = synth::synth_ligand("l", 10, 1);
        let a = Conformation::new(RigidTransform::from_translation(Vec3::ZERO), 0);
        let b = Conformation::new(RigidTransform::from_translation(Vec3::new(2.0, 0.0, 0.0)), 0);
        assert!((pose_rmsd(&lig, &a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_groups_nearby_poses() {
        let lig = synth::synth_ligand("l", 8, 2);
        let mut rng = RngStream::from_seed(8);
        let base_rot = rng.rotation();
        let mk = |t: Vec3, score: f64| {
            let mut c = Conformation::new(RigidTransform::new(base_rot, t), 0);
            c.score = score;
            c
        };
        let poses = vec![
            mk(Vec3::ZERO, -5.0),
            mk(Vec3::new(0.3, 0.0, 0.0), -4.0),  // near pose 0
            mk(Vec3::new(20.0, 0.0, 0.0), -3.0), // far
            mk(Vec3::new(20.2, 0.0, 0.0), -6.0), // near pose 2, best overall
        ];
        let clusters = cluster_poses(&lig, &poses, 1.0);
        assert_eq!(clusters.len(), 2);
        // Best cluster is seeded by index 3 (score -6).
        assert_eq!(clusters[0][0], 3);
        assert!(clusters[0].contains(&2));
        assert!(clusters[1].contains(&0) && clusters[1].contains(&1));
    }

    #[test]
    fn clustering_zero_cutoff_singletons() {
        let lig = synth::synth_ligand("l", 6, 3);
        let mut rng = RngStream::from_seed(9);
        let poses: Vec<Conformation> = (0..5)
            .map(|i| {
                let mut c =
                    Conformation::new(RigidTransform::new(rng.rotation(), rng.in_ball(30.0)), 0);
                c.score = i as f64;
                c
            })
            .collect();
        let clusters = cluster_poses(&lig, &poses, 0.0);
        assert_eq!(clusters.len(), 5);
        assert!(clusters.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn clustering_covers_every_pose_exactly_once() {
        let lig = synth::synth_ligand("l", 6, 3);
        let mut rng = RngStream::from_seed(10);
        let poses: Vec<Conformation> = (0..30)
            .map(|i| {
                let mut c =
                    Conformation::new(RigidTransform::new(rng.rotation(), rng.in_ball(15.0)), 0);
                c.score = -(i as f64);
                c
            })
            .collect();
        let clusters = cluster_poses(&lig, &poses, 3.0);
        let mut seen: Vec<usize> = clusters.concat();
        seen.sort_unstable();
        assert_eq!(seen, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn empty_pose_set_clusters_empty() {
        let lig = synth::synth_ligand("l", 5, 4);
        assert!(cluster_poses(&lig, &[], 1.0).is_empty());
    }
}
