//! Minimal SDF/MDL-molfile (V2000) reader and writer.
//!
//! Screening libraries ("many databases comprise hundreds of thousands of
//! ligands", §2.1) ship as multi-record SDF files; this module reads the
//! atom blocks of V2000 records — coordinates, element symbols and charge
//! fields — and writes them back, so real libraries drive
//! `vscreen::library::screen_library` directly.

use crate::{Atom, Element, Molecule};
use std::fmt::Write as _;
use vsmath::Vec3;

/// Errors from SDF parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SdfError {
    /// The counts line (line 4) is malformed.
    BadCountsLine { record: usize },
    /// An atom line failed to parse.
    BadAtomLine { record: usize, line: usize },
    /// Record truncated before its atom block finished.
    Truncated { record: usize },
}

impl std::fmt::Display for SdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SdfError::BadCountsLine { record } => write!(f, "record {record}: bad counts line"),
            SdfError::BadAtomLine { record, line } => {
                write!(f, "record {record}, atom line {line}: parse failure")
            }
            SdfError::Truncated { record } => write!(f, "record {record}: truncated atom block"),
        }
    }
}

impl std::error::Error for SdfError {}

/// MDL charge-field code → partial charge (the molfile convention stores
/// formal charges as 4 - code for codes 1..=7, 0 otherwise).
fn charge_from_code(code: i32) -> f64 {
    match code {
        1..=7 => (4 - code) as f64,
        _ => 0.0,
    }
}

fn code_from_charge(q: f64) -> i32 {
    let rounded = q.round() as i32;
    if rounded != 0 && (-3..=3).contains(&rounded) {
        4 - rounded
    } else {
        0
    }
}

/// Parse a (possibly multi-record) SDF file into molecules. Record names
/// come from each record's title line (line 1), falling back to
/// `name-<index>`.
pub fn parse(text: &str, fallback_name: &str) -> Result<Vec<Molecule>, SdfError> {
    let mut molecules = Vec::new();
    // Split on the record delimiter; ignore trailing empty chunk.
    for (rec_idx, chunk) in text.split("$$$$").enumerate() {
        // Strip only the delimiter's trailing newline (records after the
        // first) — a record's title line may legitimately be blank.
        let chunk = if rec_idx > 0 {
            chunk.strip_prefix("\r\n").or_else(|| chunk.strip_prefix('\n')).unwrap_or(chunk)
        } else {
            chunk
        };
        let lines: Vec<&str> = chunk.lines().collect();
        if lines.len() < 4 {
            if lines.iter().all(|l| l.trim().is_empty()) {
                continue; // trailing whitespace chunk
            }
            return Err(SdfError::Truncated { record: rec_idx });
        }
        let title = lines[0].trim();
        let counts = lines[3];
        if counts.len() < 6 {
            return Err(SdfError::BadCountsLine { record: rec_idx });
        }
        let n_atoms: usize =
            counts[0..3].trim().parse().map_err(|_| SdfError::BadCountsLine { record: rec_idx })?;
        if lines.len() < 4 + n_atoms {
            return Err(SdfError::Truncated { record: rec_idx });
        }

        let mut atoms = Vec::with_capacity(n_atoms);
        for (ai, line) in lines[4..4 + n_atoms].iter().enumerate() {
            let bad = || SdfError::BadAtomLine { record: rec_idx, line: ai };
            if line.len() < 34 {
                return Err(bad());
            }
            let x: f64 = line[0..10].trim().parse().map_err(|_| bad())?;
            let y: f64 = line[10..20].trim().parse().map_err(|_| bad())?;
            let z: f64 = line[20..30].trim().parse().map_err(|_| bad())?;
            let sym = line[31..34].trim();
            let element = Element::from_symbol(sym);
            let charge_code: i32 =
                line.get(36..39).map(|s| s.trim().parse().unwrap_or(0)).unwrap_or(0);
            atoms.push(Atom::with_charge(
                Vec3::new(x, y, z),
                element,
                charge_from_code(charge_code),
            ));
        }
        let name =
            if title.is_empty() { format!("{fallback_name}-{rec_idx}") } else { title.to_string() };
        molecules.push(Molecule::new(name, atoms));
    }
    Ok(molecules)
}

/// Write molecules as a multi-record V2000 SDF (atom blocks only, no
/// bonds — docking treats ligands as rigid atom clouds here).
pub fn write(molecules: &[Molecule]) -> String {
    let mut out = String::new();
    for m in molecules {
        let _ = writeln!(out, "{}", m.name);
        let _ = writeln!(out, "  vscreen");
        let _ = writeln!(out);
        let _ = writeln!(out, "{:>3}{:>3}  0  0  0  0  0  0  0  0999 V2000", m.len(), 0);
        for a in m.atoms() {
            let _ = writeln!(
                out,
                "{:>10.4}{:>10.4}{:>10.4} {:<3}{:>2}{:>3}",
                a.position.x,
                a.position.y,
                a.position.z,
                a.element.symbol(),
                0,
                code_from_charge(a.charge),
            );
        }
        let _ = writeln!(out, "M  END");
        let _ = writeln!(out, "$$$$");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    const SAMPLE: &str = "\
aspirin-ish
  test

  3  2  0  0  0  0  0  0  0  0999 V2000
    1.2000    0.0000    0.0000 C   0  0
   -1.2000    0.5000    0.0000 O   0  5
    0.0000   -1.0000    0.3000 N   0  3
  1  2  1  0
  2  3  1  0
M  END
$$$$
";

    #[test]
    fn parses_single_record() {
        let mols = parse(SAMPLE, "fb").unwrap();
        assert_eq!(mols.len(), 1);
        let m = &mols[0];
        assert_eq!(m.name, "aspirin-ish");
        assert_eq!(m.len(), 3);
        assert_eq!(m.elements(), &[Element::C, Element::O, Element::N]);
        assert!((m.positions()[0].x - 1.2).abs() < 1e-9);
        // Charge codes: 0 -> 0, 5 -> -1, 3 -> +1.
        assert_eq!(m.atoms()[0].charge, 0.0);
        assert_eq!(m.atoms()[1].charge, -1.0);
        assert_eq!(m.atoms()[2].charge, 1.0);
    }

    #[test]
    fn parses_multi_record() {
        let text = format!("{SAMPLE}{SAMPLE}");
        let mols = parse(&text, "fb").unwrap();
        assert_eq!(mols.len(), 2);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let lib: Vec<Molecule> = (0..3)
            .map(|i| synth::synth_ligand(&format!("lig{i}"), 10 + i, 50 + i as u64))
            .collect();
        let text = write(&lib);
        let back = parse(&text, "fb").unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in lib.iter().zip(&back) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.atoms().iter().zip(b.atoms()) {
                assert!((x.position - y.position).max_abs_component() < 1e-3);
                assert_eq!(x.element, y.element);
            }
        }
    }

    #[test]
    fn truncated_record_errors() {
        let text = "name\n  prog\n\n  5  0  0 V2000\n    0.0       0.0       0.0      C\n";
        assert!(matches!(parse(text, "fb"), Err(SdfError::Truncated { .. })));
    }

    #[test]
    fn bad_counts_line_errors() {
        let text = "name\n  prog\n\nxxx\n";
        assert!(matches!(parse(text, "fb"), Err(SdfError::BadCountsLine { .. })));
    }

    #[test]
    fn bad_atom_line_errors() {
        let text = "name\n  prog\n\n  1  0  0  0  0  0  0  0  0  0999 V2000\n    abc       0.0       0.0 C\n";
        assert!(matches!(parse(text, "fb"), Err(SdfError::BadAtomLine { .. })));
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert_eq!(parse("", "fb").unwrap().len(), 0);
        assert_eq!(parse("\n\n", "fb").unwrap().len(), 0);
    }

    #[test]
    fn untitled_record_gets_fallback_name() {
        let text = "\n  prog\n\n  1  0  0  0  0  0  0  0  0  0999 V2000\n    0.0000    0.0000    0.0000 C   0  0\nM  END\n$$$$\n";
        let mols = parse(text, "lib").unwrap();
        assert_eq!(mols[0].name, "lib-0");
    }

    #[test]
    fn charge_code_roundtrip() {
        for q in [-3.0, -1.0, 0.0, 1.0, 3.0] {
            let code = code_from_charge(q);
            assert_eq!(charge_from_code(code), q, "charge {q} via code {code}");
        }
    }

    #[test]
    fn error_display() {
        let e = SdfError::BadAtomLine { record: 2, line: 5 };
        assert!(e.to_string().contains("record 2"));
    }
}
