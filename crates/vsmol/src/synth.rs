//! Deterministic synthetic structure generation.
//!
//! The paper benchmarks against PDB crystal structures 2BSM and 2BXG (Human
//! Serum Albumin templates, Table 5). Those files are not redistributable
//! here, so this module synthesizes structures with the *same atom counts*,
//! protein-like element composition, and realistic packing density. The
//! scoring workload per conformation is `ligand_atoms × receptor_atoms` pair
//! interactions over a globular surface — exactly the quantities the
//! generator reproduces — so all performance behaviour of the paper's
//! experiments is preserved (see DESIGN.md §1). Users with the real PDB
//! files can load them through [`crate::pdb::parse`] instead.

use crate::{Atom, Element, Molecule};
use serde::{Deserialize, Serialize};
use vsmath::{RngStream, Vec3};

/// The paper's benchmark compounds (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// PDB:2BSM — receptor 3264 atoms, ligand 45 atoms.
    TwoBsm,
    /// PDB:2BXG — receptor 8609 atoms, ligand 32 atoms (≈2.7× larger receptor).
    TwoBxg,
}

impl Dataset {
    pub const ALL: [Dataset; 2] = [Dataset::TwoBsm, Dataset::TwoBxg];

    /// PDB identifier string.
    pub fn pdb_id(self) -> &'static str {
        match self {
            Dataset::TwoBsm => "2BSM",
            Dataset::TwoBxg => "2BXG",
        }
    }

    /// Receptor heavy-atom count (Table 5).
    pub fn receptor_atoms(self) -> usize {
        match self {
            Dataset::TwoBsm => 3264,
            Dataset::TwoBxg => 8609,
        }
    }

    /// Ligand atom count (Table 5).
    pub fn ligand_atoms(self) -> usize {
        match self {
            Dataset::TwoBsm => 45,
            Dataset::TwoBxg => 32,
        }
    }

    /// Synthesize the receptor (deterministic per dataset).
    pub fn receptor(self) -> Molecule {
        synth_receptor(
            &format!("{}-receptor", self.pdb_id()),
            self.receptor_atoms(),
            match self {
                Dataset::TwoBsm => 0x2B5A,
                Dataset::TwoBxg => 0x2B36,
            },
        )
    }

    /// Synthesize the ligand (deterministic per dataset).
    pub fn ligand(self) -> Molecule {
        synth_ligand(
            &format!("{}-ligand", self.pdb_id()),
            self.ligand_atoms(),
            match self {
                Dataset::TwoBsm => 0x15A0,
                Dataset::TwoBxg => 0x15A1,
            },
        )
    }
}

/// Protein heavy-atom composition (crystal structures omit hydrogens):
/// roughly 63% C, 17% N, 19% O, 1% S, matching globular proteins.
fn protein_element(rng: &mut RngStream) -> Element {
    let u = rng.uniform();
    if u < 0.63 {
        Element::C
    } else if u < 0.80 {
        Element::N
    } else if u < 0.99 {
        Element::O
    } else {
        Element::S
    }
}

/// Drug-like ligand composition: mostly carbon with polar decorations.
fn ligand_element(rng: &mut RngStream) -> Element {
    let u = rng.uniform();
    if u < 0.68 {
        Element::C
    } else if u < 0.80 {
        Element::N
    } else if u < 0.94 {
        Element::O
    } else if u < 0.97 {
        Element::S
    } else {
        Element::Cl
    }
}

/// Small partial charge consistent with the element's electronegativity.
fn partial_charge(e: Element, rng: &mut RngStream) -> f64 {
    let base = match e {
        Element::O => -0.45,
        Element::N => -0.35,
        Element::S => -0.15,
        Element::Cl | Element::F | Element::Br | Element::I => -0.10,
        Element::C => 0.10,
        Element::H => 0.20,
        _ => 0.0,
    };
    base + 0.05 * rng.normal()
}

/// Generate a globular protein-like receptor with exactly `n` atoms.
///
/// Atoms are placed on a jittered cubic lattice clipped to a ball whose
/// radius gives protein-like heavy-atom density (~0.045 atoms/Å³), so the
/// minimum interatomic separation stays bonded-chain-like (≳1.3 Å) and the
/// surface-to-volume ratio scales like a real globular protein.
pub fn synth_receptor(name: &str, n: usize, seed: u64) -> Molecule {
    assert!(n > 0, "receptor needs at least one atom");
    let mut rng = RngStream::derive(seed, 0);

    // Ball radius for target density.
    let density = 0.045_f64; // heavy atoms per Å³
    let radius = (3.0 * n as f64 / (4.0 * std::f64::consts::PI * density)).cbrt();

    // Lattice spacing chosen so the ball holds comfortably more sites than n.
    let spacing = (1.0 / density).cbrt(); // ≈ 2.81 Å
                                          // Generate sites in a slightly inflated ball (the lattice-in-ball count
                                          // equals n only on average; the margin guarantees a surplus), then keep
                                          // the n sites closest to the center.
    let gen_radius = radius * 1.08 + spacing;
    let half_cells = (gen_radius / spacing).ceil() as i64 + 1;

    let mut sites: Vec<Vec3> = Vec::new();
    for ix in -half_cells..=half_cells {
        for iy in -half_cells..=half_cells {
            for iz in -half_cells..=half_cells {
                let p = Vec3::new(ix as f64, iy as f64, iz as f64) * spacing;
                if p.norm() <= gen_radius {
                    sites.push(p);
                }
            }
        }
    }
    assert!(sites.len() >= n, "lattice underfilled: {} sites for {} atoms", sites.len(), n);

    // Keep the n sites closest to the center (preserves the globular shape),
    // then jitter each within its cell to break lattice artifacts.
    // PANICS: site norms are finite, so the sort comparator is total.
    sites.sort_by(|a, b| a.norm_sq().partial_cmp(&b.norm_sq()).unwrap());
    sites.truncate(n);
    let jitter = spacing * 0.22;
    let atoms = sites
        .into_iter()
        .map(|p| {
            let q = p + Vec3::new(
                rng.uniform_range(-jitter, jitter),
                rng.uniform_range(-jitter, jitter),
                rng.uniform_range(-jitter, jitter),
            );
            let e = protein_element(&mut rng);
            let c = partial_charge(e, &mut rng);
            Atom::with_charge(q, e, c)
        })
        .collect();
    Molecule::new(name, atoms)
}

/// Generate a drug-like ligand with exactly `n` atoms as a self-avoiding
/// random walk with bond-length steps, then centered at the origin.
pub fn synth_ligand(name: &str, n: usize, seed: u64) -> Molecule {
    assert!(n > 0, "ligand needs at least one atom");
    let mut rng = RngStream::derive(seed, 1);
    let bond = 1.45; // typical C–C bond length, Å
    let min_sep = 1.15;

    let mut positions: Vec<Vec3> = vec![Vec3::ZERO];
    'grow: while positions.len() < n {
        // Branch from a random existing atom (drug-like molecules branch).
        for _attempt in 0..200 {
            let from = positions[rng.index(positions.len())];
            let cand = from + rng.unit_vector() * bond;
            // Keep compact: stay within a drug-like envelope.
            if cand.norm() > 2.2 * (n as f64).cbrt() + 2.0 {
                continue;
            }
            if positions.iter().all(|p| p.dist_sq(cand) >= min_sep * min_sep) {
                positions.push(cand);
                continue 'grow;
            }
        }
        // Could not extend compactly: relax the envelope by walking from the
        // most recently placed atom outward.
        // PANICS: the seed atom is placed before the grow loop, so `positions` is never empty.
        let from = *positions.last().unwrap();
        positions.push(from + rng.unit_vector() * bond);
    }

    let atoms: Vec<Atom> = positions
        .into_iter()
        .map(|p| {
            let e = ligand_element(&mut rng);
            let c = partial_charge(e, &mut rng);
            Atom::with_charge(p, e, c)
        })
        .collect();
    Molecule::new(name, atoms).centered()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_atom_counts_exact() {
        assert_eq!(Dataset::TwoBsm.receptor().len(), 3264);
        assert_eq!(Dataset::TwoBsm.ligand().len(), 45);
        assert_eq!(Dataset::TwoBxg.receptor().len(), 8609);
        assert_eq!(Dataset::TwoBxg.ligand().len(), 32);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::TwoBsm.receptor();
        let b = Dataset::TwoBsm.receptor();
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.elements(), b.elements());
        let la = Dataset::TwoBsm.ligand();
        let lb = Dataset::TwoBsm.ligand();
        assert_eq!(la.positions(), lb.positions());
    }

    #[test]
    fn datasets_differ() {
        let a = Dataset::TwoBsm.receptor();
        let b = Dataset::TwoBxg.receptor();
        assert_ne!(a.len(), b.len());
    }

    #[test]
    fn receptor_is_globular() {
        let r = synth_receptor("t", 2000, 7);
        // Radius of gyration of a uniform ball of radius R is R·sqrt(3/5).
        let density = 0.045_f64;
        let ball_r = (3.0 * 2000.0 / (4.0 * std::f64::consts::PI * density)).cbrt();
        let expect_gyr = ball_r * (3.0f64 / 5.0).sqrt();
        let gyr = r.radius_of_gyration();
        assert!((gyr - expect_gyr).abs() / expect_gyr < 0.15, "gyr {gyr} vs expected {expect_gyr}");
    }

    #[test]
    fn receptor_atoms_well_separated() {
        let r = synth_receptor("t", 800, 3);
        let g = vsmath::SpatialGrid::build(r.positions(), 3.0);
        let mut min_d2 = f64::INFINITY;
        for (i, &p) in r.positions().iter().enumerate() {
            g.for_each_within(p, 2.0, |j, _, d2| {
                if j != i {
                    min_d2 = min_d2.min(d2);
                }
            });
        }
        assert!(min_d2.sqrt() > 1.0, "atoms too close: {}", min_d2.sqrt());
    }

    #[test]
    fn receptor_composition_protein_like() {
        let r = Dataset::TwoBxg.receptor();
        let n = r.len() as f64;
        let c = r.count_element(Element::C) as f64 / n;
        let o = r.count_element(Element::O) as f64 / n;
        let nn = r.count_element(Element::N) as f64 / n;
        assert!((c - 0.63).abs() < 0.05, "C fraction {c}");
        assert!((o - 0.19).abs() < 0.05, "O fraction {o}");
        assert!((nn - 0.17).abs() < 0.05, "N fraction {nn}");
        assert_eq!(r.count_element(Element::H), 0, "crystal structures have no H");
    }

    #[test]
    fn ligand_is_centered_and_compact() {
        let l = Dataset::TwoBsm.ligand();
        assert!(l.centroid().norm() < 1e-9);
        // A 45-atom drug-like molecule spans a few Å, not tens.
        assert!(l.bounding_radius() < 15.0, "radius {}", l.bounding_radius());
        assert!(l.bounding_radius() > 2.0);
    }

    #[test]
    fn ligand_atoms_separated() {
        let l = Dataset::TwoBxg.ligand();
        for i in 0..l.len() {
            for j in (i + 1)..l.len() {
                let d = l.positions()[i].dist(l.positions()[j]);
                assert!(d > 1.0, "atoms {i},{j} at {d}");
            }
        }
    }

    #[test]
    fn ligand_is_connected_chain() {
        // Every atom must be within ~2 bond lengths of some other atom.
        let l = Dataset::TwoBsm.ligand();
        for (i, &p) in l.positions().iter().enumerate() {
            let near = l.positions().iter().enumerate().any(|(j, q)| j != i && p.dist(*q) < 2.9);
            assert!(near, "atom {i} is isolated");
        }
    }

    #[test]
    fn charges_roughly_neutral() {
        let r = Dataset::TwoBsm.receptor();
        // Mean |charge| is bounded; net charge per atom is small.
        assert!(r.total_charge().abs() / (r.len() as f64) < 0.2);
    }

    #[test]
    #[should_panic]
    fn zero_atom_receptor_panics() {
        synth_receptor("bad", 0, 1);
    }

    #[test]
    #[should_panic]
    fn zero_atom_ligand_panics() {
        synth_ligand("bad", 0, 1);
    }
}
