//! Molecules: named collections of atoms with geometric helpers.

use crate::{Atom, Element};
use serde::{Deserialize, Serialize};
use vsmath::{Aabb, RigidTransform, Vec3};

/// A molecule — receptor protein or small-molecule ligand.
///
/// Structure-of-arrays accessors ([`Molecule::positions`],
/// [`Molecule::elements`]) feed the flattened scoring kernels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Molecule {
    pub name: String,
    atoms: Vec<Atom>,
    // Cached SoA views, rebuilt on mutation.
    positions: Vec<Vec3>,
    elements: Vec<Element>,
}

impl Molecule {
    pub fn new(name: impl Into<String>, atoms: Vec<Atom>) -> Molecule {
        let positions = atoms.iter().map(|a| a.position).collect();
        let elements = atoms.iter().map(|a| a.element).collect();
        Molecule { name: name.into(), atoms, positions, elements }
    }

    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Atom positions as a dense slice (SoA view for kernels).
    pub fn positions(&self) -> &[Vec3] {
        &self.positions
    }

    /// Atom elements as a dense slice (SoA view for kernels).
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Partial charges as a freshly collected vector.
    pub fn charges(&self) -> Vec<f64> {
        self.atoms.iter().map(|a| a.charge).collect()
    }

    /// Unweighted geometric centroid.
    pub fn centroid(&self) -> Vec3 {
        Vec3::centroid(&self.positions)
    }

    /// Mass-weighted center of mass.
    pub fn center_of_mass(&self) -> Vec3 {
        if self.atoms.is_empty() {
            return Vec3::ZERO;
        }
        let mut sum = Vec3::ZERO;
        let mut total = 0.0;
        for a in &self.atoms {
            let m = a.element.mass();
            sum += a.position * m;
            total += m;
        }
        sum / total
    }

    /// Tight axis-aligned bounding box of the atom centers.
    pub fn bounding_box(&self) -> Aabb {
        Aabb::from_points(&self.positions)
    }

    /// Radius of gyration about the centroid (size measure used to pick
    /// search-space extents per spot).
    pub fn radius_of_gyration(&self) -> f64 {
        if self.atoms.is_empty() {
            return 0.0;
        }
        let c = self.centroid();
        let msd: f64 = self.positions.iter().map(|p| p.dist_sq(c)).sum::<f64>() / self.len() as f64;
        msd.sqrt()
    }

    /// Radius of the smallest origin-centered sphere containing all atoms of
    /// the *centered* molecule (max distance from centroid).
    pub fn bounding_radius(&self) -> f64 {
        let c = self.centroid();
        self.positions.iter().map(|p| p.dist(c)).fold(0.0, f64::max)
    }

    /// A copy translated so the centroid sits at the origin. Ligands are
    /// centered before screening so a conformation's translation is the
    /// world-space position of the ligand center.
    pub fn centered(&self) -> Molecule {
        let c = self.centroid();
        self.transformed(&RigidTransform::from_translation(-c))
    }

    /// A copy with `tf` applied to every atom position.
    pub fn transformed(&self, tf: &RigidTransform) -> Molecule {
        let atoms =
            self.atoms.iter().map(|a| Atom { position: tf.apply(a.position), ..*a }).collect();
        Molecule::new(self.name.clone(), atoms)
    }

    /// Count of atoms of a given element.
    pub fn count_element(&self, e: Element) -> usize {
        self.elements.iter().filter(|&&x| x == e).count()
    }

    /// A copy with all hydrogens removed — NMR/computed PDB structures
    /// carry explicit hydrogens, but the scoring parameterization (like the
    /// paper's, whose Table 5 counts are heavy atoms) is heavy-atom based.
    pub fn without_hydrogens(&self) -> Molecule {
        Molecule::new(
            self.name.clone(),
            self.atoms.iter().filter(|a| a.element != Element::H).copied().collect(),
        )
    }

    /// Total charge.
    pub fn total_charge(&self) -> f64 {
        self.atoms.iter().map(|a| a.charge).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsmath::{approx_eq, Quat};

    fn water() -> Molecule {
        // Geometry is approximate; only topology matters for these tests.
        Molecule::new(
            "water",
            vec![
                Atom::with_charge(Vec3::ZERO, Element::O, -0.8),
                Atom::with_charge(Vec3::new(0.96, 0.0, 0.0), Element::H, 0.4),
                Atom::with_charge(Vec3::new(-0.24, 0.93, 0.0), Element::H, 0.4),
            ],
        )
    }

    #[test]
    fn soa_views_match_atoms() {
        let m = water();
        assert_eq!(m.len(), 3);
        assert_eq!(m.positions().len(), 3);
        assert_eq!(m.elements(), &[Element::O, Element::H, Element::H]);
        for (a, p) in m.atoms().iter().zip(m.positions()) {
            assert_eq!(a.position, *p);
        }
    }

    #[test]
    fn centroid_and_com_differ_for_heterogeneous_molecule() {
        let m = water();
        let c = m.centroid();
        let com = m.center_of_mass();
        // COM is pulled toward the heavy oxygen at the origin.
        assert!(com.norm() < c.norm());
    }

    #[test]
    fn centered_molecule_has_zero_centroid() {
        let m = water().centered();
        assert!(m.centroid().norm() < 1e-12);
    }

    #[test]
    fn empty_molecule_geometry() {
        let m = Molecule::new("empty", vec![]);
        assert!(m.is_empty());
        assert_eq!(m.centroid(), Vec3::ZERO);
        assert_eq!(m.center_of_mass(), Vec3::ZERO);
        assert_eq!(m.radius_of_gyration(), 0.0);
        assert_eq!(m.bounding_radius(), 0.0);
    }

    #[test]
    fn transform_preserves_internal_distances() {
        let m = water();
        let tf = RigidTransform::new(
            Quat::from_axis_angle(Vec3::new(1.0, 1.0, 0.2), 1.3),
            Vec3::new(5.0, -2.0, 7.0),
        );
        let t = m.transformed(&tf);
        for i in 0..m.len() {
            for j in 0..m.len() {
                assert!(approx_eq(
                    m.positions()[i].dist(m.positions()[j]),
                    t.positions()[i].dist(t.positions()[j]),
                    1e-10
                ));
            }
        }
    }

    #[test]
    fn bounding_box_contains_all_atoms() {
        let m = water();
        let bb = m.bounding_box();
        for p in m.positions() {
            assert!(bb.contains(*p));
        }
    }

    #[test]
    fn gyration_le_bounding_radius() {
        let m = water();
        assert!(m.radius_of_gyration() <= m.bounding_radius() + 1e-12);
    }

    #[test]
    fn hydrogen_stripping() {
        let m = water();
        let heavy = m.without_hydrogens();
        assert_eq!(heavy.len(), 1);
        assert_eq!(heavy.elements(), &[Element::O]);
        assert_eq!(heavy.name, m.name);
        // Idempotent.
        assert_eq!(heavy.without_hydrogens().len(), 1);
    }

    #[test]
    fn element_count_and_charge() {
        let m = water();
        assert_eq!(m.count_element(Element::H), 2);
        assert_eq!(m.count_element(Element::O), 1);
        assert_eq!(m.count_element(Element::C), 0);
        assert!(approx_eq(m.total_charge(), 0.0, 1e-12));
    }
}
