//! Chemical elements relevant to protein–ligand systems.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The element set covering protein receptors and drug-like ligands.
///
/// `Other` is a catch-all for exotic HETATM species in real PDB files; it
/// carries carbon-like force-field parameters so screening still proceeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Element {
    H,
    C,
    N,
    O,
    S,
    P,
    F,
    Cl,
    Br,
    I,
    /// Metals and anything else (Zn, Fe, Mg, ...).
    Other,
}

impl Element {
    /// All distinct variants, in a fixed order (used to index parameter tables).
    pub const ALL: [Element; 11] = [
        Element::H,
        Element::C,
        Element::N,
        Element::O,
        Element::S,
        Element::P,
        Element::F,
        Element::Cl,
        Element::Br,
        Element::I,
        Element::Other,
    ];

    /// Dense index into per-element tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Element::H => 0,
            Element::C => 1,
            Element::N => 2,
            Element::O => 3,
            Element::S => 4,
            Element::P => 5,
            Element::F => 6,
            Element::Cl => 7,
            Element::Br => 8,
            Element::I => 9,
            Element::Other => 10,
        }
    }

    pub const COUNT: usize = 11;

    /// Parse a PDB element symbol (case-insensitive, trimmed).
    pub fn from_symbol(sym: &str) -> Element {
        match sym.trim().to_ascii_uppercase().as_str() {
            "H" | "D" => Element::H,
            "C" => Element::C,
            "N" => Element::N,
            "O" => Element::O,
            "S" => Element::S,
            "P" => Element::P,
            "F" => Element::F,
            "CL" => Element::Cl,
            "BR" => Element::Br,
            "I" => Element::I,
            _ => Element::Other,
        }
    }

    /// Canonical symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Element::H => "H",
            Element::C => "C",
            Element::N => "N",
            Element::O => "O",
            Element::S => "S",
            Element::P => "P",
            Element::F => "F",
            Element::Cl => "Cl",
            Element::Br => "Br",
            Element::I => "I",
            Element::Other => "X",
        }
    }

    /// Van der Waals radius in Å (Bondi radii; `Other` uses a metal-ish value).
    pub fn vdw_radius(self) -> f64 {
        match self {
            Element::H => 1.20,
            Element::C => 1.70,
            Element::N => 1.55,
            Element::O => 1.52,
            Element::S => 1.80,
            Element::P => 1.80,
            Element::F => 1.47,
            Element::Cl => 1.75,
            Element::Br => 1.85,
            Element::I => 1.98,
            Element::Other => 1.60,
        }
    }

    /// Atomic mass in Dalton (rounded standard weights).
    pub fn mass(self) -> f64 {
        match self {
            Element::H => 1.008,
            Element::C => 12.011,
            Element::N => 14.007,
            Element::O => 15.999,
            Element::S => 32.06,
            Element::P => 30.974,
            Element::F => 18.998,
            Element::Cl => 35.45,
            Element::Br => 79.904,
            Element::I => 126.904,
            Element::Other => 55.85, // iron-like default
        }
    }

    /// Whether this element type anchors a binding spot in the BINDSURF-style
    /// surface search. The paper identifies spots "by finding out a specific
    /// type of atoms in the protein"; polar heteroatoms (N, O, S) are the
    /// natural choice since they mediate hydrogen bonding.
    pub fn is_spot_anchor(self) -> bool {
        matches!(self, Element::N | Element::O | Element::S)
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; Element::COUNT];
        for e in Element::ALL {
            assert!(!seen[e.index()], "duplicate index for {e}");
            seen[e.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn symbol_roundtrip() {
        for e in Element::ALL {
            if e != Element::Other {
                assert_eq!(Element::from_symbol(e.symbol()), e);
            }
        }
    }

    #[test]
    fn symbol_parsing_flexibility() {
        assert_eq!(Element::from_symbol(" c "), Element::C);
        assert_eq!(Element::from_symbol("cl"), Element::Cl);
        assert_eq!(Element::from_symbol("CL"), Element::Cl);
        assert_eq!(Element::from_symbol("ZN"), Element::Other);
        assert_eq!(Element::from_symbol("D"), Element::H); // deuterium
        assert_eq!(Element::from_symbol(""), Element::Other);
    }

    #[test]
    fn radii_are_physical() {
        for e in Element::ALL {
            let r = e.vdw_radius();
            assert!((1.0..2.5).contains(&r), "{e}: {r}");
        }
        // Hydrogen is the smallest.
        assert!(Element::ALL.iter().all(|e| e.vdw_radius() >= Element::H.vdw_radius()));
    }

    #[test]
    fn masses_positive_and_ordered() {
        assert!(Element::H.mass() < Element::C.mass());
        assert!(Element::C.mass() < Element::S.mass());
        for e in Element::ALL {
            assert!(e.mass() > 0.0);
        }
    }

    #[test]
    fn spot_anchors_are_polar_heteroatoms() {
        assert!(Element::N.is_spot_anchor());
        assert!(Element::O.is_spot_anchor());
        assert!(Element::S.is_spot_anchor());
        assert!(!Element::C.is_spot_anchor());
        assert!(!Element::H.is_spot_anchor());
    }

    #[test]
    fn display_matches_symbol() {
        assert_eq!(Element::Cl.to_string(), "Cl");
        assert_eq!(Element::Other.to_string(), "X");
    }
}
