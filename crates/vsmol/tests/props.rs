//! Property-based tests for the molecular substrate.

use proptest::prelude::*;
use vsmath::{RigidTransform, RngStream, Vec3};
use vsmol::{pdb, rmsd, synth, Atom, Element, Molecule};

fn arb_element() -> impl Strategy<Value = Element> {
    (0..Element::COUNT).prop_map(|i| Element::ALL[i])
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    ((-500.0..500.0f64, -500.0..500.0f64, -500.0..500.0f64), arb_element(), -1.0..1.0f64)
        .prop_map(|((x, y, z), e, q)| Atom::with_charge(Vec3::new(x, y, z), e, q))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pdb_roundtrip_preserves_geometry(atoms in proptest::collection::vec(arb_atom(), 1..60)) {
        let m = Molecule::new("prop", atoms);
        let text = pdb::write(&m);
        let back = pdb::parse(&text, "back").unwrap();
        prop_assert_eq!(back.len(), m.len());
        for (a, b) in m.atoms().iter().zip(back.atoms()) {
            // PDB coordinates carry 3 decimals.
            prop_assert!((a.position - b.position).max_abs_component() < 1.5e-3);
            prop_assert_eq!(a.element, b.element);
        }
    }

    #[test]
    fn centered_molecule_centroid_is_origin(atoms in proptest::collection::vec(arb_atom(), 1..40)) {
        let m = Molecule::new("prop", atoms).centered();
        prop_assert!(m.centroid().norm() < 1e-6);
    }

    #[test]
    fn bounding_radius_dominates_gyration(atoms in proptest::collection::vec(arb_atom(), 1..40)) {
        let m = Molecule::new("prop", atoms);
        prop_assert!(m.radius_of_gyration() <= m.bounding_radius() + 1e-9);
    }

    #[test]
    fn synth_receptor_exact_count(n in 1usize..600, seed in any::<u64>()) {
        let m = synth::synth_receptor("p", n, seed);
        prop_assert_eq!(m.len(), n);
    }

    #[test]
    fn synth_ligand_exact_count(n in 1usize..40, seed in any::<u64>()) {
        let m = synth::synth_ligand("p", n, seed);
        prop_assert_eq!(m.len(), n);
        prop_assert!(m.centroid().norm() < 1e-9);
    }

    #[test]
    fn kabsch_recovers_arbitrary_rigid_motion(
        seed in any::<u64>(),
        n in 3usize..30,
        angle in -3.0..3.0f64,
        (tx, ty, tz) in (-50.0..50.0f64, -50.0..50.0f64, -50.0..50.0f64),
    ) {
        let mut rng = RngStream::from_seed(seed);
        let pts: Vec<Vec3> = (0..n).map(|_| rng.in_ball(10.0)).collect();
        let axis = rng.unit_vector();
        let tf = RigidTransform::new(
            vsmath::Quat::from_axis_angle(axis, angle),
            Vec3::new(tx, ty, tz),
        );
        let moved: Vec<Vec3> = pts.iter().map(|&p| tf.apply(p)).collect();
        let (_, residual) = rmsd::kabsch(&pts, &moved);
        prop_assert!(residual < 1e-6, "residual {}", residual);
    }

    #[test]
    fn rmsd_is_a_metric_on_translations(
        (ax, ay, az) in (-20.0..20.0f64, -20.0..20.0f64, -20.0..20.0f64),
        (bx, by, bz) in (-20.0..20.0f64, -20.0..20.0f64, -20.0..20.0f64),
    ) {
        let lig = synth::synth_ligand("m", 8, 1);
        let a = vsmol::Conformation::new(
            RigidTransform::from_translation(Vec3::new(ax, ay, az)), 0);
        let b = vsmol::Conformation::new(
            RigidTransform::from_translation(Vec3::new(bx, by, bz)), 0);
        let d_ab = rmsd::pose_rmsd(&lig, &a, &b);
        let d_ba = rmsd::pose_rmsd(&lig, &b, &a);
        prop_assert!((d_ab - d_ba).abs() < 1e-9, "symmetry");
        prop_assert!(d_ab >= 0.0);
        // Pure translations: RMSD equals the translation distance exactly.
        let want = Vec3::new(ax - bx, ay - by, az - bz).norm();
        prop_assert!((d_ab - want).abs() < 1e-9);
    }

    #[test]
    fn clustering_partitions_any_pose_set(
        seed in any::<u64>(),
        n in 0usize..25,
        cutoff in 0.0..10.0f64,
    ) {
        let lig = synth::synth_ligand("m", 6, 2);
        let mut rng = RngStream::from_seed(seed);
        let poses: Vec<vsmol::Conformation> = (0..n)
            .map(|i| {
                let mut c = vsmol::Conformation::new(
                    RigidTransform::new(rng.rotation(), rng.in_ball(20.0)),
                    0,
                );
                c.score = i as f64;
                c
            })
            .collect();
        let clusters = rmsd::cluster_poses(&lig, &poses, cutoff);
        let mut all: Vec<usize> = clusters.concat();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        // Cluster seeds are ordered by score.
        for w in clusters.windows(2) {
            prop_assert!(poses[w[0][0]].score <= poses[w[1][0]].score);
        }
    }

    #[test]
    fn element_symbol_roundtrip_via_parser(e in arb_element()) {
        if e != Element::Other {
            prop_assert_eq!(Element::from_symbol(e.symbol()), e);
        }
    }
}
