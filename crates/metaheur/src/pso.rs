//! Particle Swarm Optimization over docking poses.
//!
//! §2.2 lists PSO among the distributed metaheuristics and §1 singles out
//! population-based, nature-inspired methods as "better suited for the
//! current massively parallel landscape"; this engine adds a PSO instance
//! beside the Algorithm 1 template. One independent swarm per spot; every
//! velocity/position update is batched across spots like the template
//! engine, so the same schedulers drive it.
//!
//! Pose space is ℝ³ × SO(3); velocities live in the tangent space:
//! a translation velocity plus a rotation-vector (axis × angle) velocity
//! applied as a small rotation each step.

use crate::engine::RunResult;
use crate::evaluator::BatchEvaluator;
use serde::{Deserialize, Serialize};
use vsmath::{Quat, RigidTransform, RngStream, Vec3};
use vsmol::{conformation::score_cmp, Conformation, Spot};

/// PSO parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PsoParams {
    pub name: String,
    /// Particles per spot.
    pub swarm_per_spot: usize,
    /// Velocity-update iterations.
    pub iterations: usize,
    /// Inertia weight `w`.
    pub inertia: f64,
    /// Cognitive coefficient `c1` (pull toward the particle's own best).
    pub cognitive: f64,
    /// Social coefficient `c2` (pull toward the swarm's best).
    pub social: f64,
    /// Translation speed clamp, Å per iteration.
    pub max_speed: f64,
    /// Angular speed clamp, radians per iteration.
    pub max_angular_speed: f64,
}

impl Default for PsoParams {
    fn default() -> Self {
        PsoParams {
            name: "PSO".into(),
            swarm_per_spot: 64,
            iterations: 40,
            inertia: 0.72,
            cognitive: 1.49,
            social: 1.49,
            max_speed: 1.5,
            max_angular_speed: 0.5,
        }
    }
}

impl PsoParams {
    pub fn validate(&self) -> Result<(), String> {
        if self.swarm_per_spot == 0 {
            return Err("swarm_per_spot must be > 0".into());
        }
        if self.inertia < 0.0 || self.inertia >= 1.0 {
            return Err("inertia must be in [0,1)".into());
        }
        if self.cognitive < 0.0 || self.social < 0.0 {
            return Err("coefficients must be non-negative".into());
        }
        if self.max_speed <= 0.0 || self.max_angular_speed <= 0.0 {
            return Err("speed clamps must be positive".into());
        }
        Ok(())
    }

    /// Exact scoring evaluations per spot.
    pub fn evals_per_spot(&self) -> u64 {
        self.swarm_per_spot as u64 * (1 + self.iterations) as u64
    }
}

struct Particle {
    current: Conformation,
    velocity: Vec3,
    angular_velocity: Vec3,
    personal_best: Conformation,
}

/// Run PSO over `spots`. Deterministic per (seed, spot id), like the
/// template engine.
pub fn run_pso<E: BatchEvaluator>(
    params: &PsoParams,
    spots: &[Spot],
    evaluator: &mut E,
    seed: u64,
) -> RunResult {
    // PANICS: invalid parameters are a caller programming error; fail fast.
    params.validate().expect("invalid PSO parameters");
    assert!(!spots.is_empty(), "need at least one spot");

    let mut rngs: Vec<RngStream> =
        spots.iter().map(|s| RngStream::derive(seed, s.id as u64 + 1)).collect();
    let mut evaluations = 0u64;
    let mut batch_trace = Vec::new();

    // Initialize swarms and score them in one batch.
    let mut flat: Vec<Conformation> = Vec::with_capacity(params.swarm_per_spot * spots.len());
    for (si, spot) in spots.iter().enumerate() {
        for _ in 0..params.swarm_per_spot {
            flat.push(Conformation::random_at(spot, &mut rngs[si]));
        }
    }
    evaluator.evaluate(&mut flat);
    evaluations += flat.len() as u64;
    batch_trace.push(flat.len() as u64);

    let mut swarms: Vec<Vec<Particle>> = flat
        .chunks(params.swarm_per_spot)
        .enumerate()
        .map(|(si, chunk)| {
            chunk
                .iter()
                .map(|&c| Particle {
                    current: c,
                    velocity: rngs[si].in_ball(params.max_speed * 0.5),
                    angular_velocity: rngs[si].in_ball(params.max_angular_speed * 0.5),
                    personal_best: c,
                })
                .collect()
        })
        .collect();
    let mut global_best: Vec<Conformation> = swarms
        .iter()
        // PANICS: swarms are non-empty (validated) and scores finite by construction.
        .map(|sw| *sw.iter().map(|p| &p.personal_best).min_by(|a, b| score_cmp(a, b)).unwrap())
        .collect();

    let overall =
        |gb: &[Conformation]| -> f64 { gb.iter().map(|c| c.score).fold(f64::INFINITY, f64::min) };
    let mut best_history = vec![overall(&global_best)];

    for _ in 0..params.iterations {
        // Velocity + position update, then one flat scoring batch.
        let mut proposals: Vec<Conformation> = Vec::with_capacity(flat.len());
        for (si, swarm) in swarms.iter_mut().enumerate() {
            let spot = &spots[si];
            let gbest = global_best[si];
            let rng = &mut rngs[si];
            for p in swarm.iter_mut() {
                let r1 = rng.uniform();
                let r2 = rng.uniform();
                p.velocity = p.velocity * params.inertia
                    + (p.personal_best.pose.translation - p.current.pose.translation)
                        * (params.cognitive * r1)
                    + (gbest.pose.translation - p.current.pose.translation) * (params.social * r2);
                if p.velocity.norm() > params.max_speed {
                    // PANICS: norm exceeds max_speed > 0, so the vector is normalizable.
                    p.velocity = p.velocity.normalized().unwrap() * params.max_speed;
                }

                // Rotational pull: rotation vectors toward the bests.
                let r3 = rng.uniform();
                let r4 = rng.uniform();
                let to_pbest =
                    rotation_vector(p.current.pose.rotation, p.personal_best.pose.rotation);
                let to_gbest = rotation_vector(p.current.pose.rotation, gbest.pose.rotation);
                p.angular_velocity = p.angular_velocity * params.inertia
                    + to_pbest * (params.cognitive * r3)
                    + to_gbest * (params.social * r4);
                if p.angular_velocity.norm() > params.max_angular_speed {
                    p.angular_velocity =
                        // PANICS: norm exceeds max_angular_speed > 0, so the vector is normalizable.
                        p.angular_velocity.normalized().unwrap() * params.max_angular_speed;
                }

                let t = p.current.pose.translation + p.velocity;
                let dq = Quat::from_axis_angle(
                    p.angular_velocity.normalized().unwrap_or(Vec3::Z),
                    p.angular_velocity.norm(),
                );
                let rot = (dq * p.current.pose.rotation).renormalize();
                let cand = Conformation::new(RigidTransform::new(rot, t), p.current.spot_id)
                    .clamped_to(spot);
                proposals.push(cand);
            }
        }
        evaluator.evaluate(&mut proposals);
        evaluations += proposals.len() as u64;
        batch_trace.push(proposals.len() as u64);

        // Write back and update bests.
        let mut it = proposals.into_iter();
        for (si, swarm) in swarms.iter_mut().enumerate() {
            for p in swarm.iter_mut() {
                // PANICS: the proposal batch was sized at one entry per particle above.
                let cand = it.next().expect("proposal per particle");
                p.current = cand;
                if cand.score < p.personal_best.score {
                    p.personal_best = cand;
                }
                if cand.score < global_best[si].score {
                    global_best[si] = cand;
                }
            }
        }
        best_history.push(overall(&global_best));
    }

    // PANICS: non-empty by caller contract.
    let best = *global_best.iter().min_by(|a, b| score_cmp(a, b)).expect("non-empty");
    RunResult {
        best,
        best_per_spot: global_best,
        evaluations,
        generations_run: params.iterations,
        batch_trace,
        best_history,
        diversity_history: Vec::new(),
    }
}

/// Rotation vector (axis × angle) taking `from` to `to`, for the tangent
/// space velocity update.
fn rotation_vector(from: Quat, to: Quat) -> Vec3 {
    let d = (to * from.conjugate()).renormalize();
    let angle = d.angle();
    let axis = Vec3::new(d.x, d.y, d.z).normalized().unwrap_or(Vec3::ZERO);
    // Quaternion double-cover: take the short way.
    let sign = if d.w >= 0.0 { 1.0 } else { -1.0 };
    axis * (angle * sign)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SyntheticEvaluator;

    fn spots(n: usize) -> Vec<Spot> {
        (0..n)
            .map(|i| Spot {
                id: i,
                center: Vec3::new(14.0 * i as f64, 0.0, 0.0),
                normal: Vec3::Z,
                radius: 5.0,
                anchor_atom: 0,
            })
            .collect()
    }

    fn ev(spots: &[Spot]) -> SyntheticEvaluator {
        SyntheticEvaluator::new(spots.iter().map(|s| s.center + Vec3::new(1.0, 1.0, 0.0)).collect())
    }

    fn quick() -> PsoParams {
        PsoParams { swarm_per_spot: 24, iterations: 30, ..Default::default() }
    }

    #[test]
    fn pso_converges_on_synthetic_landscape() {
        let sp = spots(3);
        let mut e = ev(&sp);
        let r = run_pso(&quick(), &sp, &mut e, 5);
        assert!(
            r.best_history.last().unwrap() < &(r.best_history[0] * 0.2),
            "history {:?}",
            r.best_history
        );
        assert!(r.best.score < 3.0, "best {}", r.best.score);
    }

    #[test]
    fn pso_eval_accounting() {
        let sp = spots(2);
        let mut e = ev(&sp);
        let p = quick();
        let r = run_pso(&p, &sp, &mut e, 1);
        assert_eq!(r.evaluations, p.evals_per_spot() * 2);
        assert_eq!(e.evaluations, r.evaluations);
        assert_eq!(r.batch_trace.len(), 1 + p.iterations);
    }

    #[test]
    fn pso_is_deterministic() {
        let sp = spots(2);
        let mut e1 = ev(&sp);
        let mut e2 = ev(&sp);
        let a = run_pso(&quick(), &sp, &mut e1, 9);
        let b = run_pso(&quick(), &sp, &mut e2, 9);
        assert_eq!(a.best.score, b.best.score);
        assert_eq!(a.best.pose, b.best.pose);
    }

    #[test]
    fn pso_best_history_monotone() {
        let sp = spots(2);
        let mut e = ev(&sp);
        let r = run_pso(&quick(), &sp, &mut e, 3);
        for w in r.best_history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn pso_particles_respect_spot_bounds() {
        let sp = spots(1);
        let mut e = ev(&sp);
        let r = run_pso(&quick(), &sp, &mut e, 7);
        assert!(r.best.pose.translation.dist(sp[0].center) <= sp[0].radius + 1e-9);
    }

    #[test]
    fn rotation_vector_roundtrip() {
        let mut rng = RngStream::from_seed(11);
        for _ in 0..30 {
            let from = rng.rotation();
            let to = rng.rotation();
            let rv = rotation_vector(from, to);
            let back = (Quat::from_axis_angle(rv.normalized().unwrap_or(Vec3::Z), rv.norm())
                * from)
                .renormalize();
            assert!(back.angle_to(to) < 1e-9, "drift {}", back.angle_to(to));
        }
    }

    #[test]
    fn validation_rejects_bad_params() {
        assert!(PsoParams { swarm_per_spot: 0, ..Default::default() }.validate().is_err());
        assert!(PsoParams { inertia: 1.0, ..Default::default() }.validate().is_err());
        assert!(PsoParams { cognitive: -0.1, ..Default::default() }.validate().is_err());
        assert!(PsoParams { max_speed: 0.0, ..Default::default() }.validate().is_err());
        assert!(PsoParams::default().validate().is_ok());
    }
}
