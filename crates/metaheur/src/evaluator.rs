//! Scoring backends for the metaheuristic engine.
//!
//! The engine only ever asks "score this batch of conformations"; *where*
//! that happens — serial CPU, multithreaded CPU (the OpenMP baseline), or a
//! scheduled set of simulated GPUs (`vsched`) — is an [`BatchEvaluator`]
//! implementation. This is the seam the paper's parallelization strategy
//! plugs into.

use vsmath::Vec3;
use vsmol::Conformation;
use vsscore::{Exec, PoseScratch, RigidGradient, ScoreBatch, Scorer};
use vstrace::{Event, Trace, BATCH_TRACK};

/// A batch scoring backend. Implementations fill `score` for every
/// conformation in the slice.
pub trait BatchEvaluator {
    /// Score all conformations in place.
    fn evaluate(&mut self, confs: &mut [Conformation]);

    /// Pair interactions per single evaluation (workload metadata consumed
    /// by the device cost model).
    fn pairs_per_eval(&self) -> u64;

    /// Score all conformations in place *and* return the rigid-body
    /// gradients (force + torque) — the hook for the Lamarckian improver.
    /// Backends without gradient support return `None`, making Lamarckian
    /// local search fall back to stochastic hill climbing.
    fn evaluate_with_gradients(
        &mut self,
        confs: &mut [Conformation],
    ) -> Option<Vec<RigidGradient>> {
        let _ = confs;
        None
    }

    /// Score a *streamed* batch that becomes ready at virtual time
    /// `release` (seconds on the evaluator's device clocks): the batch may
    /// not start executing before `release`, and the returned value is its
    /// virtual completion time. This is how the pipelined engine
    /// ([`crate::pipeline`]) threads host-side stage clocks through the
    /// device scheduler so overlap (and the lack of it in lockstep mode)
    /// shows up as measured device idle time.
    ///
    /// Backends without a virtual clock just score and echo `release`;
    /// scores are identical to [`BatchEvaluator::evaluate`] either way.
    fn evaluate_after(&mut self, confs: &mut [Conformation], release: f64) -> f64 {
        self.evaluate(confs);
        release
    }
}

impl<E: BatchEvaluator + ?Sized> BatchEvaluator for Box<E> {
    fn evaluate(&mut self, confs: &mut [Conformation]) {
        (**self).evaluate(confs);
    }

    fn pairs_per_eval(&self) -> u64 {
        (**self).pairs_per_eval()
    }

    fn evaluate_with_gradients(
        &mut self,
        confs: &mut [Conformation],
    ) -> Option<Vec<RigidGradient>> {
        (**self).evaluate_with_gradients(confs)
    }

    fn evaluate_after(&mut self, confs: &mut [Conformation], release: f64) -> f64 {
        (**self).evaluate_after(confs, release)
    }
}

/// CPU evaluator over the real scoring function — the paper's OpenMP
/// baseline path.
///
/// The execution policy is an [`Exec`] handed straight to
/// [`Scorer::score_batch`]: `Exec::Serial` keeps everything on the calling
/// thread with a private [`PoseScratch`], `Exec::Pool(n)` draws workers
/// from the process-wide persistent pool ([`vsscore::shared_pool`]),
/// matching the paper's long-lived OpenMP thread team. Either way,
/// repeated `evaluate` calls allocate nothing.
pub struct CpuEvaluator {
    scorer: Scorer,
    exec: Exec,
    scratch: PoseScratch,
    trace: Trace,
}

impl CpuEvaluator {
    /// CPU evaluator with the given execution policy.
    pub fn new(scorer: Scorer, exec: Exec) -> CpuEvaluator {
        CpuEvaluator { scorer, exec, scratch: PoseScratch::new(), trace: Trace::disabled() }
    }

    /// Emit a `BatchScored` event per batch (no virtual device clock on the
    /// CPU path, so the virtual-time fields stay zero).
    pub fn with_trace(mut self, trace: Trace) -> CpuEvaluator {
        self.trace = trace;
        self
    }

    pub fn scorer(&self) -> &Scorer {
        &self.scorer
    }
}

impl BatchEvaluator for CpuEvaluator {
    fn evaluate(&mut self, confs: &mut [Conformation]) {
        self.scorer.score_batch(ScoreBatch::Confs(confs), &mut self.scratch, self.exec);
        self.trace.emit(Event::BatchScored {
            device: BATCH_TRACK,
            items: confs.len() as u64,
            pairs_per_item: self.scorer.pairs_per_eval(),
            vt_start: 0.0,
            vt_end: 0.0,
        });
    }

    fn pairs_per_eval(&self) -> u64 {
        self.scorer.pairs_per_eval()
    }

    fn evaluate_with_gradients(
        &mut self,
        confs: &mut [Conformation],
    ) -> Option<Vec<RigidGradient>> {
        let mut grads = Vec::with_capacity(confs.len());
        for c in confs.iter_mut() {
            let (score, g) = self.scorer.score_and_gradient_with(&c.pose, &mut self.scratch);
            c.score = score;
            grads.push(g);
        }
        Some(grads)
    }
}

/// A synthetic landscape for fast, deterministic tests: the score of a
/// conformation is the squared distance of its translation to a hidden
/// per-spot optimum plus an orientation penalty. Smooth, single-basin per
/// spot — any sane optimizer must descend it.
pub struct SyntheticEvaluator {
    /// Hidden optimum translation per spot id.
    pub optima: Vec<Vec3>,
    /// Weight of the orientation term.
    pub angle_weight: f64,
    /// Evaluation counter (for tests asserting batch sizes).
    pub evaluations: u64,
}

impl SyntheticEvaluator {
    pub fn new(optima: Vec<Vec3>) -> SyntheticEvaluator {
        SyntheticEvaluator { optima, angle_weight: 1.0, evaluations: 0 }
    }
}

impl BatchEvaluator for SyntheticEvaluator {
    fn evaluate(&mut self, confs: &mut [Conformation]) {
        self.evaluations += confs.len() as u64;
        for c in confs.iter_mut() {
            let target = self.optima[c.spot_id % self.optima.len()];
            let d2 = c.pose.translation.dist_sq(target);
            let ang = c.pose.rotation.angle();
            c.score = d2 + self.angle_weight * ang * ang;
        }
    }

    fn pairs_per_eval(&self) -> u64 {
        1
    }

    fn evaluate_with_gradients(
        &mut self,
        confs: &mut [Conformation],
    ) -> Option<Vec<RigidGradient>> {
        self.evaluate(confs);
        // Analytic gradient of the synthetic landscape: for the score
        // d² + w·θ², force = −2(t − target) and torque = −2wθ·û where û is
        // the rotation axis (small extra rotation δ about n changes θ by
        // δ(n·û), so ∇_rot E = 2wθ û).
        let grads = confs
            .iter()
            .map(|c| {
                let target = self.optima[c.spot_id % self.optima.len()];
                let force = (target - c.pose.translation) * 2.0;
                let q = c.pose.rotation;
                let theta = q.angle();
                let axis = Vec3::new(q.x, q.y, q.z).normalized().unwrap_or(Vec3::ZERO)
                    * if q.w >= 0.0 { 1.0 } else { -1.0 };
                let torque = -axis * (2.0 * self.angle_weight * theta);
                RigidGradient { force, torque }
            })
            .collect();
        Some(grads)
    }
}

/// Evaluator over a precomputed potential grid
/// ([`vsscore::GridScorer`]) — `O(ligand)` scoring after a one-time build,
/// the AutoDock-style speed/accuracy trade-off.
pub struct GridEvaluator {
    grid: vsscore::GridScorer,
}

impl GridEvaluator {
    pub fn new(grid: vsscore::GridScorer) -> GridEvaluator {
        GridEvaluator { grid }
    }
}

impl BatchEvaluator for GridEvaluator {
    fn evaluate(&mut self, confs: &mut [Conformation]) {
        for c in confs.iter_mut() {
            c.score = self.grid.score(&c.pose);
        }
    }

    fn pairs_per_eval(&self) -> u64 {
        // Interpolation cost is per ligand atom, not per pair; report the
        // ligand atom count as the workload unit.
        self.grid.ligand_atoms() as u64
    }
}

/// A rugged multi-basin landscape: Gaussian wells of different depths and
/// widths around each spot. Unlike [`SyntheticEvaluator`]'s single smooth
/// basin, this one punishes pure exploitation — local search from the
/// wrong start converges into a shallow well — which is what docking
/// landscapes actually look like and what distinguishes the population
/// metaheuristics from hill climbing.
pub struct RuggedEvaluator {
    /// Per spot: wells as (center offset from spot center, depth > 0, width).
    pub wells: Vec<Vec<(Vec3, f64, f64)>>,
    /// Spot centers, index-aligned with `wells` by spot id.
    pub centers: Vec<Vec3>,
    pub evaluations: u64,
}

impl RuggedEvaluator {
    /// Standard fixture: one deep narrow well off to the side and two
    /// shallow wide wells near the middle of each spot ball.
    pub fn standard(spot_centers: &[Vec3]) -> RuggedEvaluator {
        let wells = spot_centers
            .iter()
            .map(|_| {
                vec![
                    (Vec3::new(3.2, 2.4, 0.0), 10.0, 0.7), // deep, narrow, off-center
                    (Vec3::new(-0.5, 0.3, 0.2), 3.0, 2.0), // shallow, wide, central
                    (Vec3::new(0.8, -1.5, -0.6), 2.5, 1.8),
                ]
            })
            .collect();
        RuggedEvaluator { wells, centers: spot_centers.to_vec(), evaluations: 0 }
    }

    /// The global minimum value of one spot's landscape (approximately the
    /// deepest well's depth, negated).
    pub fn global_min(&self) -> f64 {
        -self.wells.iter().flat_map(|ws| ws.iter().map(|&(_, d, _)| d)).fold(0.0, f64::max)
    }
}

impl BatchEvaluator for RuggedEvaluator {
    fn evaluate(&mut self, confs: &mut [Conformation]) {
        self.evaluations += confs.len() as u64;
        for c in confs.iter_mut() {
            let si = c.spot_id % self.centers.len();
            let rel = c.pose.translation - self.centers[si];
            let mut score = 0.0;
            for &(offset, depth, width) in &self.wells[si] {
                let d2 = rel.dist_sq(offset);
                score -= depth * (-d2 / (width * width)).exp();
            }
            c.score = score;
        }
    }

    fn pairs_per_eval(&self) -> u64 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsmath::{RigidTransform, RngStream};
    use vsmol::synth;

    #[test]
    fn cpu_evaluator_fills_scores() {
        let rec = synth::synth_receptor("r", 200, 1);
        let lig = synth::synth_ligand("l", 8, 2);
        let mut ev = CpuEvaluator::new(Scorer::new(&rec, &lig, Default::default()), Exec::Serial);
        let mut rng = RngStream::from_seed(3);
        let mut confs: Vec<Conformation> = (0..10)
            .map(|_| Conformation::new(RigidTransform::new(rng.rotation(), rng.in_ball(30.0)), 0))
            .collect();
        assert!(confs.iter().all(|c| !c.is_scored()));
        ev.evaluate(&mut confs);
        assert!(confs.iter().all(|c| c.is_scored()));
    }

    #[test]
    fn threaded_matches_serial() {
        let rec = synth::synth_receptor("r", 200, 1);
        let lig = synth::synth_ligand("l", 8, 2);
        let scorer = Scorer::new(&rec, &lig, Default::default());
        let mut serial = CpuEvaluator::new(scorer.clone(), Exec::Serial);
        let mut par = CpuEvaluator::new(scorer, Exec::Pool(4));
        let mut rng = RngStream::from_seed(4);
        let confs: Vec<Conformation> = (0..23)
            .map(|_| Conformation::new(RigidTransform::new(rng.rotation(), rng.in_ball(30.0)), 0))
            .collect();
        let mut a = confs.clone();
        let mut b = confs;
        serial.evaluate(&mut a);
        par.evaluate(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.score, y.score);
        }
    }

    #[test]
    fn synthetic_optimum_scores_zero() {
        let target = Vec3::new(5.0, -1.0, 2.0);
        let mut ev = SyntheticEvaluator::new(vec![target]);
        let mut confs = vec![Conformation::new(RigidTransform::from_translation(target), 0)];
        ev.evaluate(&mut confs);
        assert!(confs[0].score.abs() < 1e-12);
    }

    #[test]
    fn synthetic_score_increases_with_distance() {
        let mut ev = SyntheticEvaluator::new(vec![Vec3::ZERO]);
        let mut confs = vec![
            Conformation::new(RigidTransform::from_translation(Vec3::new(1.0, 0.0, 0.0)), 0),
            Conformation::new(RigidTransform::from_translation(Vec3::new(3.0, 0.0, 0.0)), 0),
        ];
        ev.evaluate(&mut confs);
        assert!(confs[0].score < confs[1].score);
    }

    #[test]
    fn synthetic_counts_evaluations() {
        let mut ev = SyntheticEvaluator::new(vec![Vec3::ZERO]);
        let mut confs = vec![Conformation::new(RigidTransform::IDENTITY, 0); 7];
        ev.evaluate(&mut confs);
        ev.evaluate(&mut confs);
        assert_eq!(ev.evaluations, 14);
    }

    #[test]
    fn grid_evaluator_finds_bindings_like_exact_scorer() {
        let rec = synth::synth_receptor("r", 300, 1);
        let lig = synth::synth_ligand("l", 8, 2);
        let spots = vec![vsmol::Spot {
            id: 0,
            center: Vec3::new(13.5, 0.0, 0.0),
            normal: Vec3::X,
            radius: 4.0,
            anchor_atom: 0,
        }];
        let params = crate::suite::m1(0.2);
        let mut grid_ev = GridEvaluator::new(vsscore::GridScorer::new(
            &rec,
            &lig,
            vsscore::GridOptions { spacing: 0.6, ..Default::default() },
        ));
        let r_grid = crate::engine::run(&params, &spots, &mut grid_ev, 5);
        let mut exact_ev =
            CpuEvaluator::new(Scorer::new(&rec, &lig, Default::default()), Exec::Serial);
        let r_exact = crate::engine::run(&params, &spots, &mut exact_ev, 5);
        // Both searches find favorable bindings of the same magnitude.
        assert!(r_grid.best.score < 0.0, "grid search found no binding");
        assert!(r_exact.best.score < 0.0);
        // Re-score the grid-search winner with the exact function: it must
        // also be a genuine binding (the grid didn't hallucinate a minimum).
        let exact_rescore = Scorer::new(&rec, &lig, Default::default()).score(&r_grid.best.pose);
        assert!(exact_rescore < 0.0, "grid winner rescored to {exact_rescore}");
    }

    #[test]
    fn rugged_deep_well_is_global_minimum() {
        let centers = vec![Vec3::ZERO];
        let mut ev = RuggedEvaluator::standard(&centers);
        let mut at_deep =
            vec![Conformation::new(RigidTransform::from_translation(Vec3::new(3.2, 2.4, 0.0)), 0)];
        let mut at_shallow =
            vec![Conformation::new(RigidTransform::from_translation(Vec3::new(-0.5, 0.3, 0.2)), 0)];
        ev.evaluate(&mut at_deep);
        ev.evaluate(&mut at_shallow);
        assert!(at_deep[0].score < at_shallow[0].score);
        assert!(at_deep[0].score <= ev.global_min() * 0.9, "deep well ~{}", at_deep[0].score);
    }

    #[test]
    fn rugged_population_search_escapes_shallow_wells() {
        // GA with a population reliably locates the off-center deep well;
        // the landscape is designed so single-walker exploitation tends to
        // settle in the central shallow ones.
        let spots: Vec<vsmol::Spot> = (0..2)
            .map(|i| vsmol::Spot {
                id: i,
                center: Vec3::new(20.0 * i as f64, 0.0, 0.0),
                normal: Vec3::Z,
                radius: 5.0,
                anchor_atom: 0,
            })
            .collect();
        let centers: Vec<Vec3> = spots.iter().map(|s| s.center).collect();
        let mut ev = RuggedEvaluator::standard(&centers);
        let ga = crate::suite::m2(0.5);
        let r = crate::engine::run(&ga, &spots, &mut ev, 4);
        let global = RuggedEvaluator::standard(&centers).global_min();
        assert!(r.best.score < global * 0.8, "GA best {} vs global {global}", r.best.score);
    }

    #[test]
    fn synthetic_per_spot_optima() {
        let mut ev = SyntheticEvaluator::new(vec![Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0)]);
        let mut confs = vec![
            Conformation::new(RigidTransform::from_translation(Vec3::new(10.0, 0.0, 0.0)), 1),
            Conformation::new(RigidTransform::from_translation(Vec3::new(10.0, 0.0, 0.0)), 0),
        ];
        ev.evaluate(&mut confs);
        assert!(confs[0].score < 1e-12, "spot 1 optimum");
        assert!(confs[1].score > 50.0, "spot 0 is far");
    }
}
