//! The paper's four benchmark metaheuristics (Table 4).
//!
//! Table 4 fixes population sizes and the selected/improved percentages;
//! it does not publish generation counts or local-search lengths. Those
//! free parameters are chosen here so the *relative* scoring workloads of
//! M1–M4 match the relative execution times of the paper's Tables 6–9
//! (M2/M1 ≈ 1.6, M3/M1 ≈ 0.5, M4/M1 ≈ 50; the paper's M3 being cheaper
//! than M1 despite its local search indicates a convergence-driven end
//! condition — reproduced here with per-metaheuristic generation budgets).
//! See EXPERIMENTS.md for the derivation.

use crate::params::{EndCondition, ImproveStrategy, MetaheuristicParams, SelectStrategy};

/// Shared move sizes for the docking search space.
const MAX_SHIFT: f64 = 1.2;
const MAX_ANGLE: f64 = 0.5;

fn scale_count(n: usize, scale: f64) -> usize {
    ((n as f64 * scale).round() as usize).max(1)
}

/// M1 — a genetic algorithm: population 64/spot, parents from the best,
/// no local search (Table 4 row 1).
pub fn m1(scale: f64) -> MetaheuristicParams {
    MetaheuristicParams {
        name: "M1".into(),
        population_per_spot: 64,
        select: SelectStrategy::TruncationBest { fraction: 1.0 },
        offspring_per_spot: 64,
        improve_fraction: 0.0,
        improve: ImproveStrategy::None,
        mutation_prob: 0.25,
        max_shift: MAX_SHIFT,
        max_angle: MAX_ANGLE,
        end: EndCondition::Generations(scale_count(32, scale)),
        single_pass: false,
    }
}

/// M2 — evolutionary with scatter-search character: same reference set as
/// M1, every generated element improved by intensive local search
/// (Table 4 row 2).
pub fn m2(scale: f64) -> MetaheuristicParams {
    MetaheuristicParams {
        name: "M2".into(),
        population_per_spot: 64,
        select: SelectStrategy::TruncationBest { fraction: 1.0 },
        offspring_per_spot: 64,
        improve_fraction: 1.0,
        improve: ImproveStrategy::HillClimb { steps: 2 },
        mutation_prob: 0.25,
        max_shift: MAX_SHIFT,
        max_angle: MAX_ANGLE,
        end: EndCondition::Generations(scale_count(17, scale)),
        single_pass: false,
    }
}

/// M3 — like M2 but with a less intensive improvement: only 20% of new
/// elements are locally searched (Table 4 row 3).
pub fn m3(scale: f64) -> MetaheuristicParams {
    MetaheuristicParams {
        name: "M3".into(),
        population_per_spot: 64,
        select: SelectStrategy::TruncationBest { fraction: 1.0 },
        offspring_per_spot: 64,
        improve_fraction: 0.2,
        improve: ImproveStrategy::HillClimb { steps: 2 },
        mutation_prob: 0.25,
        max_shift: MAX_SHIFT,
        max_angle: MAX_ANGLE,
        end: EndCondition::Generations(scale_count(11, scale)),
        single_pass: false,
    }
}

/// M4 — a neighborhood metaheuristic: one pass of deep local search over a
/// large initial set of 1024 conformations per spot; no selection after
/// improving (Table 4 row 4).
pub fn m4(scale: f64) -> MetaheuristicParams {
    MetaheuristicParams {
        name: "M4".into(),
        population_per_spot: 1024,
        select: SelectStrategy::TruncationBest { fraction: 1.0 },
        offspring_per_spot: 0,
        improve_fraction: 1.0,
        improve: ImproveStrategy::HillClimb { steps: scale_count(103, scale) },
        mutation_prob: 0.0,
        max_shift: MAX_SHIFT,
        max_angle: MAX_ANGLE,
        end: EndCondition::Generations(0),
        single_pass: true,
    }
}

/// The full Table 4 suite at a workload scale (1.0 = the calibrated
/// paper-shaped workload; smaller values shrink generation counts and
/// local-search depth proportionally for quick runs).
pub fn paper_suite(scale: f64) -> Vec<MetaheuristicParams> {
    vec![m1(scale), m2(scale), m3(scale), m4(scale)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_populations() {
        assert_eq!(m1(1.0).population_per_spot, 64);
        assert_eq!(m2(1.0).population_per_spot, 64);
        assert_eq!(m3(1.0).population_per_spot, 64);
        assert_eq!(m4(1.0).population_per_spot, 1024);
    }

    #[test]
    fn table4_improved_fractions() {
        assert_eq!(m1(1.0).improve_fraction, 0.0);
        assert_eq!(m2(1.0).improve_fraction, 1.0);
        assert_eq!(m3(1.0).improve_fraction, 0.2);
        assert_eq!(m4(1.0).improve_fraction, 1.0);
    }

    #[test]
    fn m4_is_single_pass() {
        assert!(m4(1.0).single_pass);
        assert!(!m1(1.0).single_pass);
        assert!(!m2(1.0).single_pass);
        assert!(!m3(1.0).single_pass);
    }

    #[test]
    fn all_configs_valid() {
        for p in paper_suite(1.0) {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
        for p in paper_suite(0.1) {
            p.validate().unwrap_or_else(|e| panic!("{} (scaled): {e}", p.name));
        }
    }

    #[test]
    fn workload_ratios_match_paper_tables() {
        // Paper Table 6 (Jupiter, 2BSM, OpenMP column): M1 269.45 s,
        // M2 436.36 s, M3 136.71 s, M4 13557.29 s.
        let e1 = m1(1.0).evals_per_spot() as f64;
        let e2 = m2(1.0).evals_per_spot() as f64;
        let e3 = m3(1.0).evals_per_spot() as f64;
        let e4 = m4(1.0).evals_per_spot() as f64;
        let check = |got: f64, want: f64, tag: &str| {
            assert!(
                (got / want - 1.0).abs() < 0.15,
                "{tag}: workload ratio {got:.3} vs paper {want:.3}"
            );
        };
        check(e2 / e1, 436.36 / 269.45, "M2/M1");
        check(e3 / e1, 136.71 / 269.45, "M3/M1");
        check(e4 / e1, 13557.29 / 269.45, "M4/M1");
    }

    #[test]
    fn scaling_shrinks_workload_proportionally() {
        let full = m4(1.0).evals_per_spot() as f64;
        let quarter = m4(0.25).evals_per_spot() as f64;
        assert!((quarter / full - 0.25).abs() < 0.05, "{quarter}/{full}");
    }

    #[test]
    fn tiny_scale_still_runs() {
        for p in paper_suite(0.001) {
            assert!(p.evals_per_spot() > 0);
            p.validate().unwrap();
        }
    }

    #[test]
    fn suite_names() {
        let names: Vec<String> = paper_suite(1.0).into_iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["M1", "M2", "M3", "M4"]);
    }
}
