//! Tabu Search over docking poses.
//!
//! §2.2's canonical neighborhood metaheuristic: a single walker per spot
//! explores candidate neighbors each iteration, is *forbidden* from
//! revisiting recently seen regions (the tabu list), and accepts the best
//! non-tabu neighbor even when it is worse than the incumbent — the escape
//! mechanism that distinguishes tabu search from hill climbing. Candidate
//! generation is batched across spots like every engine in this crate.

use crate::engine::RunResult;
use crate::evaluator::BatchEvaluator;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use vsmath::RngStream;
use vsmol::{conformation::score_cmp, Conformation, Spot};

/// Tabu Search parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TabuParams {
    pub name: String,
    /// Iterations per spot.
    pub iterations: usize,
    /// Neighbors generated per iteration.
    pub neighbors: usize,
    /// Tabu tenure: how many recent solutions stay forbidden.
    pub tenure: usize,
    /// A candidate is tabu when within this translation distance (Å) *and*
    /// this rotation angle (radians) of a remembered solution.
    pub tabu_radius: f64,
    pub tabu_angle: f64,
    /// Neighbor move sizes.
    pub max_shift: f64,
    pub max_angle: f64,
}

impl Default for TabuParams {
    fn default() -> Self {
        TabuParams {
            name: "Tabu".into(),
            iterations: 60,
            neighbors: 16,
            tenure: 12,
            tabu_radius: 0.5,
            tabu_angle: 0.2,
            max_shift: 1.2,
            max_angle: 0.5,
        }
    }
}

impl TabuParams {
    pub fn validate(&self) -> Result<(), String> {
        if self.iterations == 0 || self.neighbors == 0 {
            return Err("iterations and neighbors must be > 0".into());
        }
        if self.tabu_radius < 0.0 || self.tabu_angle < 0.0 {
            return Err("tabu radii must be non-negative".into());
        }
        if self.max_shift <= 0.0 || self.max_angle <= 0.0 {
            return Err("move sizes must be positive".into());
        }
        Ok(())
    }

    /// Exact scoring evaluations per spot.
    pub fn evals_per_spot(&self) -> u64 {
        1 + (self.iterations * self.neighbors) as u64
    }
}

struct Walker {
    current: Conformation,
    best: Conformation,
    tabu: VecDeque<Conformation>,
}

impl Walker {
    fn is_tabu(&self, cand: &Conformation, params: &TabuParams) -> bool {
        self.tabu.iter().any(|t| {
            cand.translation_distance(t) < params.tabu_radius
                && cand.rotation_distance(t) < params.tabu_angle
        })
    }
}

/// Run Tabu Search over `spots` (one walker per spot, batched scoring).
pub fn run_tabu<E: BatchEvaluator>(
    params: &TabuParams,
    spots: &[Spot],
    evaluator: &mut E,
    seed: u64,
) -> RunResult {
    run_tabu_from(params, spots, evaluator, seed, &[])
}

/// Like [`run_tabu`], but walkers for spots that appear in `warm_starts`
/// begin at those poses instead of random ones — the hook the memetic
/// hybrid uses to refine GA incumbents.
pub fn run_tabu_from<E: BatchEvaluator>(
    params: &TabuParams,
    spots: &[Spot],
    evaluator: &mut E,
    seed: u64,
    warm_starts: &[Conformation],
) -> RunResult {
    // PANICS: invalid parameters are a caller programming error; fail fast.
    params.validate().expect("invalid tabu parameters");
    assert!(!spots.is_empty(), "need at least one spot");

    let mut rngs: Vec<RngStream> =
        spots.iter().map(|s| RngStream::derive(seed, s.id as u64 + 1)).collect();
    let mut evaluations = 0u64;
    let mut batch_trace = Vec::new();

    // Initial walker per spot: warm start when provided, random otherwise.
    let mut init: Vec<Conformation> = spots
        .iter()
        .enumerate()
        .map(|(si, s)| {
            warm_starts
                .iter()
                .find(|c| c.spot_id == s.id)
                .map(|c| Conformation::new(c.pose, s.id))
                .unwrap_or_else(|| Conformation::random_at(s, &mut rngs[si]))
        })
        .collect();
    evaluator.evaluate(&mut init);
    evaluations += init.len() as u64;
    batch_trace.push(init.len() as u64);

    let mut walkers: Vec<Walker> = init
        .into_iter()
        .map(|c| Walker { current: c, best: c, tabu: VecDeque::from([c]) })
        .collect();

    let overall = |ws: &[Walker]| ws.iter().map(|w| w.best.score).fold(f64::INFINITY, f64::min);
    let mut best_history = vec![overall(&walkers)];

    for _ in 0..params.iterations {
        // Generate neighbors for every walker in one batch.
        let mut candidates: Vec<Conformation> =
            Vec::with_capacity(params.neighbors * walkers.len());
        for (si, w) in walkers.iter().enumerate() {
            let spot = &spots[si];
            let rng = &mut rngs[si];
            for _ in 0..params.neighbors {
                candidates.push(
                    w.current.perturbed(params.max_shift, params.max_angle, rng).clamped_to(spot),
                );
            }
        }
        evaluator.evaluate(&mut candidates);
        evaluations += candidates.len() as u64;
        batch_trace.push(candidates.len() as u64);

        // Per walker: best non-tabu candidate; aspiration criterion —
        // a tabu candidate that beats the all-time best is always allowed.
        for (si, w) in walkers.iter_mut().enumerate() {
            let group = &candidates[si * params.neighbors..(si + 1) * params.neighbors];
            let mut chosen: Option<Conformation> = None;
            for cand in group {
                let aspirated = cand.score < w.best.score;
                if !aspirated && w.is_tabu(cand, params) {
                    continue;
                }
                if chosen.is_none_or(|c| cand.score < c.score) {
                    chosen = Some(*cand);
                }
            }
            // Whole neighborhood tabu: take the least-bad candidate anyway
            // (stagnation breaker).
            let next = chosen.unwrap_or_else(|| {
                // PANICS: non-empty by caller contract.
                *group.iter().min_by(|a, b| score_cmp(a, b)).expect("non-empty")
            });
            w.current = next;
            if next.score < w.best.score {
                w.best = next;
            }
            w.tabu.push_back(next);
            while w.tabu.len() > params.tenure {
                w.tabu.pop_front();
            }
        }
        best_history.push(overall(&walkers));
    }

    let best_per_spot: Vec<Conformation> = walkers.iter().map(|w| w.best).collect();
    // PANICS: non-empty by caller contract.
    let best = *best_per_spot.iter().min_by(|a, b| score_cmp(a, b)).expect("non-empty");
    RunResult {
        best,
        best_per_spot,
        evaluations,
        generations_run: params.iterations,
        batch_trace,
        best_history,
        diversity_history: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SyntheticEvaluator;
    use vsmath::Vec3;

    fn spots(n: usize) -> Vec<Spot> {
        (0..n)
            .map(|i| Spot {
                id: i,
                center: Vec3::new(14.0 * i as f64, 0.0, 0.0),
                normal: Vec3::Z,
                radius: 5.0,
                anchor_atom: 0,
            })
            .collect()
    }

    fn ev(spots: &[Spot]) -> SyntheticEvaluator {
        SyntheticEvaluator::new(spots.iter().map(|s| s.center + Vec3::new(1.0, 0.5, 0.0)).collect())
    }

    fn quick() -> TabuParams {
        TabuParams { iterations: 40, neighbors: 8, ..Default::default() }
    }

    #[test]
    fn tabu_converges() {
        let sp = spots(3);
        let mut e = ev(&sp);
        let r = run_tabu(&quick(), &sp, &mut e, 3);
        assert!(
            r.best_history.last().unwrap() < &(r.best_history[0] * 0.3),
            "{:?}",
            r.best_history
        );
    }

    #[test]
    fn tabu_eval_accounting() {
        let sp = spots(2);
        let mut e = ev(&sp);
        let p = quick();
        let r = run_tabu(&p, &sp, &mut e, 1);
        assert_eq!(r.evaluations, p.evals_per_spot() * 2);
        assert_eq!(e.evaluations, r.evaluations);
        assert_eq!(r.batch_trace.len(), 1 + p.iterations);
    }

    #[test]
    fn tabu_is_deterministic() {
        let sp = spots(2);
        let mut e1 = ev(&sp);
        let mut e2 = ev(&sp);
        let a = run_tabu(&quick(), &sp, &mut e1, 7);
        let b = run_tabu(&quick(), &sp, &mut e2, 7);
        assert_eq!(a.best.score, b.best.score);
    }

    #[test]
    fn best_history_monotone_even_when_current_worsens() {
        // Tabu accepts worse moves, but the *best* tracker never regresses.
        let sp = spots(1);
        let mut e = ev(&sp);
        let r = run_tabu(&quick(), &sp, &mut e, 11);
        for w in r.best_history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn tabu_beats_tiny_tenure_on_average() {
        // With tenure 0-ish the walker can cycle; a real tenure must not be
        // worse on the smooth landscape (weak assertion, deterministic).
        let sp = spots(4);
        let with_tabu = TabuParams { tenure: 12, ..quick() };
        let no_tabu = TabuParams { tenure: 1, ..quick() };
        let mut e1 = ev(&sp);
        let mut e2 = ev(&sp);
        let a = run_tabu(&with_tabu, &sp, &mut e1, 13);
        let b = run_tabu(&no_tabu, &sp, &mut e2, 13);
        assert!(a.best.score <= b.best.score * 2.0 + 1e-9);
    }

    #[test]
    fn walkers_respect_spot_bounds() {
        let sp = spots(2);
        let mut e = ev(&sp);
        let r = run_tabu(&quick(), &sp, &mut e, 17);
        for (i, c) in r.best_per_spot.iter().enumerate() {
            assert!(c.pose.translation.dist(sp[i].center) <= sp[i].radius + 1e-9);
        }
    }

    #[test]
    fn validation_rejects_bad_params() {
        assert!(TabuParams { iterations: 0, ..Default::default() }.validate().is_err());
        assert!(TabuParams { neighbors: 0, ..Default::default() }.validate().is_err());
        assert!(TabuParams { tabu_radius: -1.0, ..Default::default() }.validate().is_err());
        assert!(TabuParams { max_shift: 0.0, ..Default::default() }.validate().is_err());
        assert!(TabuParams::default().validate().is_ok());
    }
}
