//! # metaheur — parameterized metaheuristics for virtual screening
//!
//! Implements the paper's Algorithm 1, the generic template shared by
//! population-based metaheuristics:
//!
//! ```text
//! Initialize(S)
//! while no End(S) do
//!     Select(S, Ssel)
//!     Combine(Ssel, Scom)
//!     Improve(Scom)
//!     Include(Scom, S)
//! end while
//! ```
//!
//! Each template function is a configuration point ([`params`]); providing
//! different implementations yields different metaheuristics. The paper's
//! four benchmark configurations (Table 4) are in [`suite`]:
//!
//! | | population/spot | selected | improved |
//! |---|---|---|---|
//! | M1 (genetic algorithm) | 64 | 100% | 0% |
//! | M2 (scatter-search-like, intensive LS) | 64 | 100% | 100% |
//! | M3 (light LS) | 64 | 100% | 20% |
//! | M4 (neighborhood: pure local search) | 1024 | n/a | 100% |
//!
//! The engine ([`engine`]) maintains one independent population per surface
//! spot and batches every scoring request across spots — the batch stream
//! is exactly what the device schedulers in `vsched` partition across
//! heterogeneous GPUs. Scoring goes through the [`evaluator::BatchEvaluator`]
//! abstraction so the same engine runs against the real Lennard-Jones
//! scorer, a multithreaded CPU pool, or a simulated device.
#![forbid(unsafe_code)]

pub mod diversity;
pub mod engine;
pub mod evaluator;
pub mod hybrid;
pub mod params;
pub mod pipeline;
pub mod pso;
pub mod suite;
pub mod tabu;
pub mod tuning;

mod sync;

pub use engine::{run, run_seeded, run_seeded_traced, run_traced, RunResult};
pub use evaluator::{
    BatchEvaluator, CpuEvaluator, GridEvaluator, RuggedEvaluator, SyntheticEvaluator,
};
pub use hybrid::{run_memetic, MemeticParams};
pub use params::{EndCondition, ImproveStrategy, MetaheuristicParams, SelectStrategy};
pub use pipeline::{run_exec, run_exec_cfg, run_pipelined, EngineExec, HostCosts, PipelineConfig};
pub use pso::{run_pso, PsoParams};
pub use suite::{m1, m2, m3, m4, paper_suite};
pub use tabu::{run_tabu, run_tabu_from, TabuParams};
pub use tuning::{tune, TuneReport, TuningGrid};
