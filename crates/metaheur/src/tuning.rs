//! Parameter tuning.
//!
//! §1: "for any particular metaheuristic, a tuning process is traditionally
//! conducted to select appropriate values of some parameters in the
//! metaheuristic. The experimentation with several metaheuristics and their
//! tuning process drastically increases the computational cost" — which is
//! precisely why the engine batches everything for GPUs. This module is
//! that tuning process: a replicated grid search over the stochastic-search
//! knobs.

use crate::engine::run;
use crate::evaluator::BatchEvaluator;
use crate::params::MetaheuristicParams;
use serde::{Deserialize, Serialize};
use vsmol::Spot;

/// The tuning grid: candidate values for the three stochastic-move knobs.
/// Empty axes keep the base value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningGrid {
    pub mutation_probs: Vec<f64>,
    pub max_shifts: Vec<f64>,
    pub max_angles: Vec<f64>,
}

impl Default for TuningGrid {
    fn default() -> Self {
        TuningGrid {
            mutation_probs: vec![0.1, 0.25, 0.5],
            max_shifts: vec![0.6, 1.2, 2.4],
            max_angles: vec![0.25, 0.5, 1.0],
        }
    }
}

/// One evaluated grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunePoint {
    pub mutation_prob: f64,
    pub max_shift: f64,
    pub max_angle: f64,
    /// Mean best score over the replicas (lower is better).
    pub mean_best: f64,
}

/// Grid-search outcome: every point plus the winner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneReport {
    pub points: Vec<TunePoint>,
    pub best: TunePoint,
    pub total_evaluations: u64,
}

impl TuneReport {
    /// The base configuration with the winning knob values applied.
    pub fn apply_to(&self, base: &MetaheuristicParams) -> MetaheuristicParams {
        MetaheuristicParams {
            mutation_prob: self.best.mutation_prob,
            max_shift: self.best.max_shift,
            max_angle: self.best.max_angle,
            ..base.clone()
        }
    }
}

/// Replicated grid search: every grid point runs `replicas` independent
/// searches (distinct seeds) and is ranked by mean best score.
///
/// `make_evaluator` supplies a fresh evaluator per run.
pub fn tune<E, F>(
    base: &MetaheuristicParams,
    grid: &TuningGrid,
    spots: &[Spot],
    mut make_evaluator: F,
    seed: u64,
    replicas: usize,
) -> TuneReport
where
    E: BatchEvaluator,
    F: FnMut() -> E,
{
    assert!(replicas > 0, "need at least one replica");
    let axis = |v: &Vec<f64>, default: f64| -> Vec<f64> {
        if v.is_empty() {
            vec![default]
        } else {
            v.clone()
        }
    };
    let probs = axis(&grid.mutation_probs, base.mutation_prob);
    let shifts = axis(&grid.max_shifts, base.max_shift);
    let angles = axis(&grid.max_angles, base.max_angle);

    let mut points = Vec::new();
    let mut total_evaluations = 0;
    for &mp in &probs {
        for &ms in &shifts {
            for &ma in &angles {
                let params = MetaheuristicParams {
                    mutation_prob: mp,
                    max_shift: ms,
                    max_angle: ma,
                    ..base.clone()
                };
                let mut sum = 0.0;
                for rep in 0..replicas {
                    let mut ev = make_evaluator();
                    let r = run(
                        &params,
                        spots,
                        &mut ev,
                        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(rep as u64),
                    );
                    total_evaluations += r.evaluations;
                    sum += r.best.score;
                }
                points.push(TunePoint {
                    mutation_prob: mp,
                    max_shift: ms,
                    max_angle: ma,
                    mean_best: sum / replicas as f64,
                });
            }
        }
    }

    let best = points
        .iter()
        // PANICS: inputs are non-empty by caller contract and scores/clocks are finite.
        .min_by(|a, b| a.mean_best.partial_cmp(&b.mean_best).expect("finite scores"))
        .expect("non-empty grid")
        .clone();
    TuneReport { points, best, total_evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SyntheticEvaluator;
    use crate::suite::m1;
    use vsmath::Vec3;

    fn spots(n: usize) -> Vec<Spot> {
        (0..n)
            .map(|i| Spot {
                id: i,
                center: Vec3::new(14.0 * i as f64, 0.0, 0.0),
                normal: Vec3::Z,
                radius: 5.0,
                anchor_atom: 0,
            })
            .collect()
    }

    fn ev_for(sp: &[Spot]) -> impl Fn() -> SyntheticEvaluator + '_ {
        move || SyntheticEvaluator::new(sp.iter().map(|s| s.center).collect())
    }

    #[test]
    fn grid_explores_all_points() {
        let sp = spots(1);
        let grid = TuningGrid {
            mutation_probs: vec![0.1, 0.3],
            max_shifts: vec![0.5, 1.5],
            max_angles: vec![0.3],
        };
        let r = tune(&m1(0.05), &grid, &sp, ev_for(&sp), 1, 2);
        assert_eq!(r.points.len(), 4);
        assert_eq!(r.total_evaluations, m1(0.05).evals_per_spot() * 4 * 2);
    }

    #[test]
    fn best_is_minimum_of_points() {
        let sp = spots(2);
        let r = tune(&m1(0.05), &TuningGrid::default(), &sp, ev_for(&sp), 2, 1);
        let min = r.points.iter().map(|p| p.mean_best).fold(f64::INFINITY, f64::min);
        assert_eq!(r.best.mean_best, min);
    }

    #[test]
    fn empty_axes_use_base_values() {
        let sp = spots(1);
        let base = m1(0.05);
        let grid =
            TuningGrid { mutation_probs: vec![], max_shifts: vec![], max_angles: vec![0.2, 0.8] };
        let r = tune(&base, &grid, &sp, ev_for(&sp), 3, 1);
        assert_eq!(r.points.len(), 2);
        assert!(r.points.iter().all(|p| p.mutation_prob == base.mutation_prob));
        assert!(r.points.iter().all(|p| p.max_shift == base.max_shift));
    }

    #[test]
    fn apply_to_overrides_knobs_only() {
        let sp = spots(1);
        let base = m1(0.05);
        let r = tune(&base, &TuningGrid::default(), &sp, ev_for(&sp), 4, 1);
        let tuned = r.apply_to(&base);
        assert_eq!(tuned.mutation_prob, r.best.mutation_prob);
        assert_eq!(tuned.max_shift, r.best.max_shift);
        assert_eq!(tuned.population_per_spot, base.population_per_spot);
        assert_eq!(tuned.end, base.end);
    }

    #[test]
    fn tuning_is_deterministic() {
        let sp = spots(1);
        let a = tune(&m1(0.05), &TuningGrid::default(), &sp, ev_for(&sp), 5, 2);
        let b = tune(&m1(0.05), &TuningGrid::default(), &sp, ev_for(&sp), 5, 2);
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn tuned_config_not_worse_than_default_knobs() {
        // The winner of a grid that includes the base point can't lose to it.
        let sp = spots(2);
        let base = m1(0.1);
        let grid = TuningGrid {
            mutation_probs: vec![base.mutation_prob, 0.05, 0.6],
            max_shifts: vec![base.max_shift],
            max_angles: vec![base.max_angle],
        };
        let r = tune(&base, &grid, &sp, ev_for(&sp), 6, 2);
        let base_point =
            r.points.iter().find(|p| p.mutation_prob == base.mutation_prob).expect("base in grid");
        assert!(r.best.mean_best <= base_point.mean_best);
    }

    #[test]
    #[should_panic]
    fn zero_replicas_panics() {
        let sp = spots(1);
        tune(&m1(0.05), &TuningGrid::default(), &sp, ev_for(&sp), 1, 0);
    }
}
