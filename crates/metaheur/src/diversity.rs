//! Population-diversity metrics.
//!
//! Population metaheuristics live or die by diversity: once the reference
//! set collapses around one basin, Combine produces clones and the search
//! degenerates to local polishing. These metrics quantify that collapse;
//! the tuning harness and the cooperative scheduler both consume them when
//! deciding whether exploration knobs (mutation, move sizes) are too small.

use vsmol::Conformation;

/// Mean pairwise translation distance within a population (Å).
/// 0.0 for populations of fewer than two members.
pub fn translation_diversity(pop: &[Conformation]) -> f64 {
    if pop.len() < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut count = 0u64;
    for i in 0..pop.len() {
        for j in (i + 1)..pop.len() {
            sum += pop[i].translation_distance(&pop[j]);
            count += 1;
        }
    }
    sum / count as f64
}

/// Mean pairwise rotation angle within a population (radians).
pub fn rotation_diversity(pop: &[Conformation]) -> f64 {
    if pop.len() < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut count = 0u64;
    for i in 0..pop.len() {
        for j in (i + 1)..pop.len() {
            sum += pop[i].rotation_distance(&pop[j]);
            count += 1;
        }
    }
    sum / count as f64
}

/// Score spread: standard deviation of the population's scores (NaN scores
/// excluded). A near-zero spread plus low translation diversity signals
/// convergence.
pub fn score_spread(pop: &[Conformation]) -> f64 {
    let scores: Vec<f64> = pop.iter().map(|c| c.score).filter(|s| s.is_finite()).collect();
    if scores.len() < 2 {
        return 0.0;
    }
    let mean = scores.iter().sum::<f64>() / scores.len() as f64;
    (scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / scores.len() as f64).sqrt()
}

/// Convergence verdict from the three metrics against thresholds tuned for
/// docking pose spaces (Å-scale translations).
pub fn is_converged(pop: &[Conformation]) -> bool {
    translation_diversity(pop) < 0.25 && rotation_diversity(pop) < 0.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsmath::{RigidTransform, RngStream, Vec3};

    fn conf(t: Vec3, score: f64) -> Conformation {
        let mut c = Conformation::new(RigidTransform::from_translation(t), 0);
        c.score = score;
        c
    }

    #[test]
    fn identical_population_has_zero_diversity() {
        let pop = vec![conf(Vec3::X, -1.0); 5];
        assert_eq!(translation_diversity(&pop), 0.0);
        assert_eq!(rotation_diversity(&pop), 0.0);
        assert_eq!(score_spread(&pop), 0.0);
        assert!(is_converged(&pop));
    }

    #[test]
    fn spread_population_is_diverse() {
        let mut rng = RngStream::from_seed(3);
        let pop: Vec<Conformation> = (0..10)
            .map(|i| {
                let mut c =
                    Conformation::new(RigidTransform::new(rng.rotation(), rng.in_ball(5.0)), 0);
                c.score = -(i as f64);
                c
            })
            .collect();
        assert!(translation_diversity(&pop) > 1.0);
        assert!(rotation_diversity(&pop) > 0.5);
        assert!(score_spread(&pop) > 1.0);
        assert!(!is_converged(&pop));
    }

    #[test]
    fn two_point_translation_diversity_is_distance() {
        let pop = vec![conf(Vec3::ZERO, 0.0), conf(Vec3::new(3.0, 4.0, 0.0), 0.0)];
        assert!((translation_diversity(&pop) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_populations() {
        assert_eq!(translation_diversity(&[]), 0.0);
        assert_eq!(score_spread(&[conf(Vec3::ZERO, 1.0)]), 0.0);
        // NaN scores are excluded from the spread.
        let pop = vec![
            Conformation::new(RigidTransform::IDENTITY, 0), // NaN score
            conf(Vec3::ZERO, 1.0),
            conf(Vec3::ZERO, 3.0),
        ];
        assert_eq!(score_spread(&pop), 1.0);
    }

    #[test]
    fn ga_reduces_diversity_over_time() {
        // An elitist GA on a single-basin landscape must contract its
        // population around the optimum.
        use crate::evaluator::SyntheticEvaluator;
        let spot =
            vsmol::Spot { id: 0, center: Vec3::ZERO, normal: Vec3::Z, radius: 5.0, anchor_atom: 0 };
        let mut rng = RngStream::from_seed(5);
        let initial: Vec<Conformation> =
            (0..32).map(|_| Conformation::random_at(&spot, &mut rng)).collect();
        let initial_div = translation_diversity(&initial);

        let params = crate::MetaheuristicParams { mutation_prob: 0.05, ..crate::m1(0.6) };
        let mut ev = SyntheticEvaluator::new(vec![Vec3::new(1.0, 0.5, 0.0)]);
        let r = crate::run(&params, &[spot], &mut ev, 5);
        let final_div = translation_diversity(&r.best_per_spot);
        // best_per_spot is one element — use the spread of the best over
        // start instead: the search moved close to the optimum.
        assert!(final_div == 0.0);
        assert!(initial_div > 2.0, "initial spread {initial_div}");
        assert!(r.best.pose.translation.dist(Vec3::new(1.0, 0.5, 0.0)) < initial_div);
    }
}
