//! Pipelined generational engine: channel-connected stages that overlap
//! variation with scoring (DESIGN.md §12).
//!
//! The lockstep engine in [`crate::engine`] alternates host phases
//! (Select/Combine/Improve proposal construction) with device phases
//! (batch scoring): while the host breeds generation N+1, every device
//! sits idle, and while the devices score, the host waits. This module
//! restructures the engine into a ring of four stages connected by
//! bounded SPSC channels:
//!
//! ```text
//!   selector(driver) → seeder → breeder → evaluator → selector …
//! ```
//!
//! Each surface spot circulates as a token carrying its population, RNG
//! stream and per-lap scoring batch. Independent spots advance through
//! their generations asynchronously — spot A can breed generation 5 while
//! spot B's generation 3 proposals are still on a device — so the
//! evaluator stage always has work and per-device deques never drain at a
//! generation boundary.
//!
//! # Determinism contract
//!
//! *Per-spot* trajectories are bit-identical to the lockstep engine: every
//! RNG draw a spot makes happens in exactly the order the lockstep engine
//! would make it (the two engines share the per-spot operators in
//! [`crate::engine`]). Under [`EndCondition::Generations`] every spot runs
//! the same number of generations in both modes, so `best`,
//! `best_per_spot`, `best_history`, `diversity_history` and `evaluations`
//! are bit-identical across modes. What *does* differ is batch
//! composition: the evaluator coalesces batches across spots at different
//! generations, so `batch_trace` is a different (but still deterministic)
//! sequence — see [`RunResult::batch_trace`].
//!
//! Under [`EndCondition::Convergence`] the lockstep engine stops on
//! *global* staleness while the pipelined engine retires each spot on its
//! own staleness (a global check would reintroduce the barrier), so
//! results agree only within search tolerance.
//!
//! # Learned-oracle re-seeding
//!
//! When the evaluator underneath is a `vsched` executor running
//! `Strategy::Oracle`, every coalesced batch this engine submits flows
//! through the same `evaluate_after` seam as the lockstep engine's
//! generation batches. The executor re-queries its learned cost model for
//! fresh deque seeds at each such call, so the pipelined engine re-seeds
//! at (cross-spot) generation boundaries for free — no extra coupling
//! between the variation stages and the scheduler is needed, and the
//! determinism contract above is unchanged (the oracle consumes only
//! virtual-time measurements).
//!
//! # Deadlock freedom
//!
//! All four channels hold at most `depth` tokens and at most `4·depth`
//! tokens are admitted to the ring at once. A send-cycle deadlock needs
//! every channel full plus one token held by each of the four blocked
//! stages — `4·depth + 4` tokens, more than can exist. Retiring spots
//! make one final farewell lap (phase [`Phase::Retire`]) so the evaluator
//! can track the live-token count it needs for its flush rule; farewell
//! tokens are replaced, not added, preserving the bound. The `model_*`
//! tests exhaustively check the channel protocol under the `vscheck-model`
//! feature.

use crate::engine::{
    self, accept_spot, breed_spot, include_spot, inject_seeds_spot, lamarckian_trials,
    propose_spot, seed_spot, RunResult,
};
use crate::evaluator::BatchEvaluator;
use crate::params::{improved_count, EndCondition, ImproveStrategy, MetaheuristicParams};
use crate::sync::{Condvar, Mutex};
use std::collections::VecDeque;
use vsmath::RngStream;
use vsmol::{conformation::score_cmp, Conformation, Spot};
use vstrace::{Event, Trace};

/// Execution mode for the generational engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineExec {
    /// The classic engine: every scoring batch is a barrier between the
    /// host's variation/selection work and the devices. Trajectories are
    /// bit-identical to [`crate::run`] (Tables 6–9 reproduce exactly).
    #[default]
    Lockstep,
    /// The stage pipeline with channels of capacity `depth`. Overlaps
    /// variation of one generation with scoring of another; per-spot
    /// deterministic (see the module docs for the exact contract).
    Pipelined {
        /// Bounded capacity of each stage channel (≥ 1).
        depth: usize,
    },
}

impl std::str::FromStr for EngineExec {
    type Err = String;

    /// Parse `lockstep`, `pipelined` or `pipelined:<depth>` (the CLI
    /// syntax of `dock --exec`).
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "lockstep" => Ok(EngineExec::Lockstep),
            "pipelined" => Ok(EngineExec::Pipelined { depth: PipelineConfig::DEFAULT_DEPTH }),
            other => match other.strip_prefix("pipelined:") {
                Some(d) => d
                    .parse::<usize>()
                    .map_err(|e| format!("bad pipeline depth {d:?}: {e}"))
                    .map(|depth| EngineExec::Pipelined { depth: depth.max(1) }),
                None => Err(format!("unknown exec mode {other:?} (lockstep | pipelined[:depth])")),
            },
        }
    }
}

/// Modeled host-side costs, charged on the engine's virtual-time axis so
/// lockstep and pipelined runs are compared honestly: both modes charge
/// the *same* per-conformation variation/selection work and per-batch
/// submission overhead; they differ only in whether that host time
/// serializes with device time (lockstep) or overlaps it (pipelined).
#[derive(Debug, Clone, Copy)]
pub struct HostCosts {
    /// Host seconds to construct one conformation (Select/Combine draw,
    /// crossover, perturbation) on the seeder/breeder stages.
    pub variation_per_conf_s: f64,
    /// Host seconds to sort/accept/include one scored conformation on the
    /// selector stage.
    pub select_per_conf_s: f64,
    /// Fixed host seconds to marshal and submit one scoring batch.
    pub submit_per_batch_s: f64,
}

impl Default for HostCosts {
    fn default() -> Self {
        // Calibrated against the gpusim pair-sweep model so host work is a
        // comparable fraction of device time on the Table 5 complexes —
        // the regime where the per-generation barrier actually hurts.
        HostCosts {
            variation_per_conf_s: 3.0e-7,
            select_per_conf_s: 1.0e-7,
            submit_per_batch_s: 1.0e-5,
        }
    }
}

impl HostCosts {
    /// Total host seconds the lockstep engine charges for one batch of
    /// `n` conformations (variation + selection + submission).
    fn lockstep_batch_s(&self, n: usize) -> f64 {
        n as f64 * (self.variation_per_conf_s + self.select_per_conf_s) + self.submit_per_batch_s
    }
}

/// Tunables of the pipelined engine.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Bounded capacity of each stage channel; at most `4·depth` spot
    /// tokens circulate at once.
    pub depth: usize,
    /// The evaluator coalesces per-spot batches until at least this many
    /// conformations are pending (or every live token has arrived), then
    /// submits them as one scoring batch — keeping device occupancy close
    /// to the lockstep engine's spot-spanning batches.
    pub coalesce_items: usize,
    /// Host-side cost model shared by both execution modes.
    pub costs: HostCosts,
}

impl PipelineConfig {
    /// Default channel depth used by `EngineExec::Pipelined` when parsed
    /// from `"pipelined"` without an explicit depth.
    pub const DEFAULT_DEPTH: usize = 2;

    /// A config with the given channel depth and default coalescing/costs.
    pub fn with_depth(depth: usize) -> PipelineConfig {
        PipelineConfig { depth: depth.max(1), ..PipelineConfig::default() }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            depth: Self::DEFAULT_DEPTH,
            coalesce_items: 512,
            costs: HostCosts::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// Bounded stage channel.
// ---------------------------------------------------------------------------

struct ChannelState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO channel between two pipeline stages (used SPSC here,
/// though the protocol is safe for any number of endpoints). `send` blocks
/// on a full queue (backpressure — this is what throttles how far ahead
/// the variation stages can run), `recv` blocks on an empty one. Closing
/// wakes all waiters: pending items can still be drained, further sends
/// return the rejected value so no batch is silently lost on teardown.
pub(crate) struct Channel<T> {
    state: Mutex<ChannelState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    cap: usize,
    stage: &'static str,
    trace: Trace,
}

impl<T> Channel<T> {
    pub(crate) fn new(cap: usize, stage: &'static str, trace: Trace) -> Channel<T> {
        Channel {
            state: Mutex::new(ChannelState { queue: VecDeque::with_capacity(cap), closed: false }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            cap: cap.max(1),
            stage,
            trace,
        }
    }

    /// Blocking send. Returns the value back if the channel was closed
    /// before it could be enqueued.
    pub(crate) fn send(&self, value: T) -> Result<(), T> {
        // PANICS: lock poisoning means a stage already panicked; propagate.
        let mut st = self.state.lock().expect("stage channel poisoned");
        loop {
            if st.closed {
                return Err(value);
            }
            if st.queue.len() < self.cap {
                break;
            }
            // PANICS: lock poisoning means a stage already panicked.
            st = self.not_full.wait(st).expect("stage channel poisoned");
        }
        st.queue.push_back(value);
        let depth = st.queue.len() as u32;
        self.not_empty.notify_one();
        drop(st);
        self.trace.emit(Event::StageDepth { stage: self.stage, depth });
        Ok(())
    }

    /// Blocking receive; `None` once the channel is closed *and* drained.
    pub(crate) fn recv(&self) -> Option<T> {
        // PANICS: lock poisoning means a stage already panicked; propagate.
        let mut st = self.state.lock().expect("stage channel poisoned");
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.not_full.notify_one();
                return Some(v);
            }
            if st.closed {
                return None;
            }
            // PANICS: lock poisoning means a stage already panicked.
            st = self.not_empty.wait(st).expect("stage channel poisoned");
        }
    }

    /// Close the channel and wake every blocked sender/receiver.
    pub(crate) fn close(&self) {
        // PANICS: lock poisoning means a stage already panicked; propagate.
        let mut st = self.state.lock().expect("stage channel poisoned");
        st.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

/// Closes a channel when dropped, so a panicking stage tears the ring
/// down instead of deadlocking its neighbours.
struct CloseGuard<'a, T>(&'a Channel<T>);

impl<T> Drop for CloseGuard<'_, T> {
    fn drop(&mut self) {
        self.0.close();
    }
}

// ---------------------------------------------------------------------------
// Spot tokens.
// ---------------------------------------------------------------------------

/// What the next lap around the ring does for this token. Every lap except
/// the farewell [`Phase::Retire`] lap carries a batch to score, so the
/// evaluator stage sees a continuous stream of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Seeder builds the initial population batch.
    Seed,
    /// Breeder builds the offspring batch (Select + Combine).
    Breed,
    /// Breeder builds one local-search step's perturbation proposals.
    Propose,
    /// Breeder copies the improving elements out for a gradient batch
    /// (Lamarckian step, first half).
    LamGather,
    /// Breeder builds gradient-directed trial moves (Lamarckian step,
    /// second half).
    LamPropose,
    /// Farewell lap: no batch; the evaluator decrements its live-token
    /// count and the selector harvests the final population.
    Retire,
}

/// One surface spot circulating through the ring.
struct SpotToken {
    si: usize,
    phase: Phase,
    /// Set on tokens admitted after the initial wave (the evaluator bumps
    /// its live count on first sight).
    fresh: bool,
    rng: RngStream,
    /// Sorted population (the lockstep engine's `populations[si]`).
    pop: Vec<Conformation>,
    /// Offspring group being improved this generation.
    group: Vec<Conformation>,
    /// Lamarckian: freshly scored originals from the gather half-step.
    saved: Vec<Conformation>,
    /// Lamarckian: gradients for `saved` (None → stochastic fallback).
    grads: Option<Vec<vsscore::RigidGradient>>,
    /// This lap's scoring payload.
    batch: Vec<Conformation>,
    /// This lap's batch wants gradients (Lamarckian gather).
    wants_grads: bool,
    /// Improving elements per group this generation.
    k: usize,
    /// Local-search step within the current improve phase.
    step: usize,
    /// Generations completed.
    gen: usize,
    stale: usize,
    best_so_far: f64,
    /// Virtual time at which this token's current contents are ready
    /// (drives the host↔device overlap accounting).
    ready_vt: f64,
}

impl SpotToken {
    fn new(si: usize, spot: &Spot, seed: u64, fresh: bool) -> Box<SpotToken> {
        Box::new(SpotToken {
            si,
            phase: Phase::Seed,
            fresh,
            rng: RngStream::derive(seed, spot.id as u64 + 1),
            pop: Vec::new(),
            group: Vec::new(),
            saved: Vec::new(),
            grads: None,
            batch: Vec::new(),
            wants_grads: false,
            k: 0,
            step: 0,
            gen: 0,
            stale: 0,
            best_so_far: f64::INFINITY,
            ready_vt: 0.0,
        })
    }
}

#[derive(Clone, Copy)]
enum ImproveKind {
    None,
    Climb { steps: usize },
    Lamarck { steps: usize },
}

fn improve_kind(params: &MetaheuristicParams) -> ImproveKind {
    match params.improve {
        ImproveStrategy::None => ImproveKind::None,
        ImproveStrategy::HillClimb { steps } => ImproveKind::Climb { steps },
        ImproveStrategy::SimulatedAnnealing { steps, .. } => ImproveKind::Climb { steps },
        ImproveStrategy::Lamarckian { steps, .. } => ImproveKind::Lamarck { steps },
    }
}

impl ImproveKind {
    fn steps(self) -> usize {
        match self {
            ImproveKind::None => 0,
            ImproveKind::Climb { steps } | ImproveKind::Lamarck { steps } => steps,
        }
    }

    fn first_phase(self) -> Phase {
        match self {
            ImproveKind::None => Phase::Breed, // unreachable: gated on steps() > 0
            ImproveKind::Climb { .. } => Phase::Propose,
            ImproveKind::Lamarck { .. } => Phase::LamGather,
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

/// Run the generational engine in the chosen execution mode. Both arms
/// charge the [`HostCosts`] model so their virtual-time traces compare
/// honestly; `EngineExec::Lockstep` otherwise produces bit-identical
/// results to [`crate::run_seeded_traced`].
pub fn run_exec<E: BatchEvaluator + Send>(
    params: &MetaheuristicParams,
    spots: &[Spot],
    evaluator: &mut E,
    seed: u64,
    seed_confs: &[Conformation],
    trace: &Trace,
    exec: EngineExec,
) -> RunResult {
    run_exec_cfg(
        params,
        spots,
        evaluator,
        seed,
        seed_confs,
        trace,
        exec,
        &PipelineConfig::default(),
    )
}

/// [`run_exec`] with explicit pipeline tunables (an explicit
/// `EngineExec::Pipelined { depth }` overrides `cfg.depth`).
#[allow(clippy::too_many_arguments)]
pub fn run_exec_cfg<E: BatchEvaluator + Send>(
    params: &MetaheuristicParams,
    spots: &[Spot],
    evaluator: &mut E,
    seed: u64,
    seed_confs: &[Conformation],
    trace: &Trace,
    exec: EngineExec,
    cfg: &PipelineConfig,
) -> RunResult {
    match exec {
        EngineExec::Lockstep => {
            let mut staged = StagedHost {
                inner: evaluator,
                costs: cfg.costs,
                host_vt: 0.0,
                last_completion: 0.0,
            };
            engine::run_seeded_traced(params, spots, &mut staged, seed, seed_confs, trace)
        }
        EngineExec::Pipelined { depth } => {
            let cfg = PipelineConfig { depth: depth.max(1), ..*cfg };
            run_pipelined(params, spots, evaluator, seed, seed_confs, trace, &cfg)
        }
    }
}

/// Wraps an evaluator so the lockstep engine's host phases are charged on
/// the virtual-time axis: each batch submission is released only after
/// the host has re-done selection on the previous results and bred the
/// batch — exactly the serialization the pipeline removes.
struct StagedHost<'e, E: ?Sized> {
    inner: &'e mut E,
    costs: HostCosts,
    host_vt: f64,
    last_completion: f64,
}

impl<E: BatchEvaluator + ?Sized> BatchEvaluator for StagedHost<'_, E> {
    fn evaluate(&mut self, confs: &mut [Conformation]) {
        self.host_vt =
            self.host_vt.max(self.last_completion) + self.costs.lockstep_batch_s(confs.len());
        self.last_completion = self.inner.evaluate_after(confs, self.host_vt);
    }

    fn evaluate_with_gradients(
        &mut self,
        confs: &mut [Conformation],
    ) -> Option<Vec<vsscore::RigidGradient>> {
        let grads = self.inner.evaluate_with_gradients(confs);
        if grads.is_some() {
            // Host-evaluated gradients: charge the host work, no device
            // release involved. The None fallback re-enters `evaluate`,
            // which charges there instead.
            self.host_vt =
                self.host_vt.max(self.last_completion) + self.costs.lockstep_batch_s(confs.len());
            self.last_completion = self.host_vt;
        }
        grads
    }

    fn pairs_per_eval(&self) -> u64 {
        self.inner.pairs_per_eval()
    }
}

/// Run the stage pipeline. See the module docs for topology, determinism
/// and deadlock-freedom arguments.
pub fn run_pipelined<E: BatchEvaluator + Send>(
    params: &MetaheuristicParams,
    spots: &[Spot],
    evaluator: &mut E,
    seed: u64,
    seed_confs: &[Conformation],
    trace: &Trace,
    cfg: &PipelineConfig,
) -> RunResult {
    // PANICS: invalid parameters are a caller programming error; fail fast.
    params.validate().expect("invalid metaheuristic parameters");
    assert!(!spots.is_empty(), "need at least one spot");

    let depth = cfg.depth.max(1);
    let admit = 4 * depth;
    let wave = admit.min(spots.len());
    let costs = cfg.costs;
    let coalesce = cfg.coalesce_items.max(1);

    let c_seed: Channel<Box<SpotToken>> = Channel::new(depth, "seed", trace.clone());
    let c_breed: Channel<Box<SpotToken>> = Channel::new(depth, "breed", trace.clone());
    let c_eval: Channel<Box<SpotToken>> = Channel::new(depth, "score", trace.clone());
    let c_out: Channel<Box<SpotToken>> = Channel::new(depth, "select", trace.clone());

    // DETERMINISM: structured `thread::scope` — joins before returning, stage order is fixed by the channel graph, reviewed with the facade.
    let (evaluations, batch_trace, driver) = std::thread::scope(|scope| {
        let (cs, cb, ce, co) = (&c_seed, &c_breed, &c_eval, &c_out);
        let seeder = scope.spawn(move || seeder_loop(params, spots, cs, cb, trace, costs));
        let breeder = scope.spawn(move || breeder_loop(params, spots, cb, ce, trace, costs));
        let ev = &mut *evaluator;
        let scorer = scope.spawn(move || evaluator_loop(ev, ce, co, wave, coalesce, trace, costs));

        let mut driver = Driver::new(params, spots, seed_confs, trace, costs);
        driver.drive(seed, wave, &c_seed, &c_out);

        // Shut the ring down: the close cascades seeder → breeder →
        // evaluator via each stage's exit path.
        c_seed.close();
        // PANICS: propagate a stage panic to the caller.
        seeder.join().expect("seeder stage panicked");
        breeder.join().expect("breeder stage panicked");
        // PANICS: propagate a stage panic to the caller.
        let (evaluations, batch_trace) = scorer.join().expect("evaluator stage panicked");
        (evaluations, batch_trace, driver)
    });

    driver.into_result(params, evaluations, batch_trace)
}

// ---------------------------------------------------------------------------
// Stage loops.
// ---------------------------------------------------------------------------

fn seeder_loop(
    params: &MetaheuristicParams,
    spots: &[Spot],
    input: &Channel<Box<SpotToken>>,
    output: &Channel<Box<SpotToken>>,
    trace: &Trace,
    costs: HostCosts,
) {
    let _close_in = CloseGuard(input);
    let _close_out = CloseGuard(output);
    let _span = trace.span("stage:seed");
    let mut clock = 0.0f64;
    while let Some(mut tok) = input.recv() {
        if tok.phase == Phase::Seed {
            tok.batch = seed_spot(params, &spots[tok.si], &mut tok.rng);
            tok.wants_grads = false;
            clock = clock.max(tok.ready_vt) + tok.batch.len() as f64 * costs.variation_per_conf_s;
            tok.ready_vt = clock;
        }
        if output.send(tok).is_err() {
            break;
        }
    }
}

fn breeder_loop(
    params: &MetaheuristicParams,
    spots: &[Spot],
    input: &Channel<Box<SpotToken>>,
    output: &Channel<Box<SpotToken>>,
    trace: &Trace,
    costs: HostCosts,
) {
    let _close_in = CloseGuard(input);
    let _close_out = CloseGuard(output);
    let _span = trace.span("stage:breed");
    let mut clock = 0.0f64;
    while let Some(mut tok) = input.recv() {
        let spot = &spots[tok.si];
        let built = match tok.phase {
            Phase::Breed => {
                tok.batch = breed_spot(params, spot, &tok.pop, &mut tok.rng);
                tok.wants_grads = false;
                true
            }
            Phase::Propose => {
                tok.batch = propose_spot(params, spot, &tok.group, tok.k, &mut tok.rng);
                tok.wants_grads = false;
                true
            }
            Phase::LamGather => {
                let n = tok.group.len().min(tok.k);
                tok.batch = tok.group[..n].to_vec();
                tok.wants_grads = true;
                true
            }
            Phase::LamPropose => {
                tok.batch =
                    lamarckian_trials(params, spot, &tok.saved, tok.grads.as_deref(), &mut tok.rng);
                tok.wants_grads = false;
                true
            }
            Phase::Seed | Phase::Retire => false,
        };
        if built {
            clock = clock.max(tok.ready_vt) + tok.batch.len() as f64 * costs.variation_per_conf_s;
            tok.ready_vt = clock;
        }
        if output.send(tok).is_err() {
            break;
        }
    }
}

fn evaluator_loop<E: BatchEvaluator>(
    evaluator: &mut E,
    input: &Channel<Box<SpotToken>>,
    output: &Channel<Box<SpotToken>>,
    initial_live: usize,
    coalesce: usize,
    trace: &Trace,
    costs: HostCosts,
) -> (u64, Vec<u64>) {
    let _close_in = CloseGuard(input);
    let _close_out = CloseGuard(output);
    let _span = trace.span("stage:score");
    let mut live = initial_live;
    let mut buf: Vec<Box<SpotToken>> = Vec::new();
    let mut pending_items = 0usize;
    let mut clock = 0.0f64;
    let mut evaluations = 0u64;
    let mut batch_trace: Vec<u64> = Vec::new();
    let mut alive = true;

    while let Some(mut tok) = input.recv() {
        if tok.fresh {
            tok.fresh = false;
            live += 1;
        }
        if tok.phase == Phase::Retire {
            live -= 1;
            if output.send(tok).is_err() {
                alive = false;
                break;
            }
        } else {
            pending_items += tok.batch.len();
            buf.push(tok);
        }
        // Flush when enough work is pending to keep the devices saturated,
        // or when every live token has arrived (waiting longer could not
        // grow the batch — and guarantees progress at any fleet size).
        if !buf.is_empty() && (pending_items >= coalesce || buf.len() >= live) {
            if !flush(
                evaluator,
                &mut buf,
                &mut clock,
                &mut evaluations,
                &mut batch_trace,
                output,
                costs,
            ) {
                alive = false;
                break;
            }
            pending_items = 0;
        }
    }
    // Teardown: never lose a buffered batch (a stage upstream may have
    // closed early on a panic; the tokens still carry spot state).
    if alive && !buf.is_empty() {
        flush(evaluator, &mut buf, &mut clock, &mut evaluations, &mut batch_trace, output, costs);
    }
    (evaluations, batch_trace)
}

/// Score everything pending: one coalesced submission for the plain
/// batches, one for the gradient batches, then forward every token in
/// arrival order. Returns false if the downstream channel closed.
// Tokens stay boxed: `buf` is a staging area for channel items and every
// entry is forwarded into the boxed `output` channel untouched.
#[allow(clippy::vec_box)]
fn flush<E: BatchEvaluator>(
    evaluator: &mut E,
    buf: &mut Vec<Box<SpotToken>>,
    clock: &mut f64,
    evaluations: &mut u64,
    batch_trace: &mut Vec<u64>,
    output: &Channel<Box<SpotToken>>,
    costs: HostCosts,
) -> bool {
    for grad_class in [false, true] {
        let idxs: Vec<usize> = buf
            .iter()
            .enumerate()
            .filter(|(_, t)| t.wants_grads == grad_class && !t.batch.is_empty())
            .map(|(i, _)| i)
            .collect();
        if idxs.is_empty() {
            continue;
        }
        let mut flat: Vec<Conformation> = Vec::new();
        let mut ranges: Vec<(usize, usize, usize)> = Vec::with_capacity(idxs.len());
        let mut release = 0.0f64;
        for &i in &idxs {
            let start = flat.len();
            flat.extend_from_slice(&buf[i].batch);
            ranges.push((i, start, flat.len()));
            release = release.max(buf[i].ready_vt);
        }
        // The submission leaves the host once the latest contributor is
        // ready; scoring completes at the device's pace after that.
        *clock = clock.max(release) + costs.submit_per_batch_s;
        let completion = if grad_class {
            match evaluator.evaluate_with_gradients(&mut flat) {
                Some(gs) => {
                    for &(i, s, e) in &ranges {
                        buf[i].grads = Some(gs[s..e].to_vec());
                    }
                    *clock
                }
                None => {
                    // Fallback path still needs the scores (same
                    // accounting as the lockstep engine: one batch).
                    for &(i, ..) in &ranges {
                        buf[i].grads = None;
                    }
                    evaluator.evaluate_after(&mut flat, *clock)
                }
            }
        } else {
            evaluator.evaluate_after(&mut flat, *clock)
        };
        *evaluations += flat.len() as u64;
        batch_trace.push(flat.len() as u64);
        for (i, s, e) in ranges {
            buf[i].batch.copy_from_slice(&flat[s..e]);
            buf[i].ready_vt = completion;
        }
    }
    for tok in buf.drain(..) {
        if output.send(tok).is_err() {
            return false;
        }
    }
    true
}

// ---------------------------------------------------------------------------
// The selector/driver.
// ---------------------------------------------------------------------------

struct Driver<'a> {
    params: &'a MetaheuristicParams,
    spots: &'a [Spot],
    seed_confs: &'a [Conformation],
    trace: &'a Trace,
    costs: HostCosts,
    improve: ImproveKind,
    max_gens: usize,
    clock: f64,
    /// Per-spot best score after init and after each generation.
    hist: Vec<Vec<f64>>,
    /// Per-spot translation diversity at the same checkpoints.
    div: Vec<Vec<f64>>,
    /// Per-spot cumulative evaluations at the same checkpoints.
    evals: Vec<Vec<u64>>,
    evals_cum: Vec<u64>,
    /// `completed[j]` = spots that have finished generation `j` (1-based);
    /// index 0 (initialization) starts complete.
    completed: Vec<usize>,
    next_gd: usize,
    pops: Vec<Option<Vec<Conformation>>>,
    harvested: usize,
}

enum Handled {
    Recirculate,
    Harvested,
}

impl<'a> Driver<'a> {
    fn new(
        params: &'a MetaheuristicParams,
        spots: &'a [Spot],
        seed_confs: &'a [Conformation],
        trace: &'a Trace,
        costs: HostCosts,
    ) -> Driver<'a> {
        let n = spots.len();
        Driver {
            params,
            spots,
            seed_confs,
            trace,
            costs,
            improve: improve_kind(params),
            max_gens: params.end.max_generations(),
            clock: 0.0,
            hist: vec![Vec::new(); n],
            div: vec![Vec::new(); n],
            evals: vec![Vec::new(); n],
            evals_cum: vec![0; n],
            completed: vec![n],
            next_gd: 1,
            pops: (0..n).map(|_| None).collect(),
            harvested: 0,
        }
    }

    /// Admit the initial wave, then process scored tokens until every spot
    /// has been harvested (or a stage dies, detected as a closed channel).
    fn drive(
        &mut self,
        seed: u64,
        wave: usize,
        c_seed: &Channel<Box<SpotToken>>,
        c_out: &Channel<Box<SpotToken>>,
    ) {
        let _span = self.trace.span("stage:select");
        let mut next_spot = wave;
        for si in 0..wave {
            if c_seed.send(SpotToken::new(si, &self.spots[si], seed, false)).is_err() {
                return;
            }
        }
        while self.harvested < self.spots.len() {
            let Some(mut tok) = c_out.recv() else { return };
            match self.handle(&mut tok) {
                Handled::Recirculate => {
                    if c_seed.send(tok).is_err() {
                        return;
                    }
                }
                Handled::Harvested => {
                    if next_spot < self.spots.len() {
                        let t = SpotToken::new(next_spot, &self.spots[next_spot], seed, true);
                        next_spot += 1;
                        if c_seed.send(t).is_err() {
                            return;
                        }
                    }
                }
            }
        }
    }

    fn handle(&mut self, tok: &mut SpotToken) -> Handled {
        if tok.phase == Phase::Retire {
            self.pops[tok.si] = Some(std::mem::take(&mut tok.pop));
            self.harvested += 1;
            return Handled::Harvested;
        }
        // Selection work on the scored batch happens on the selector's
        // own clock, after the batch's scores are available.
        self.clock =
            self.clock.max(tok.ready_vt) + tok.batch.len() as f64 * self.costs.select_per_conf_s;
        tok.ready_vt = self.clock;
        self.evals_cum[tok.si] += tok.batch.len() as u64;

        match tok.phase {
            Phase::Seed => {
                let mut pop = std::mem::take(&mut tok.batch);
                pop.sort_by(score_cmp);
                inject_seeds_spot(&self.spots[tok.si], &mut pop, self.seed_confs);
                tok.best_so_far = pop[0].score;
                self.record_init(tok.si, &pop);
                tok.pop = pop;
                self.after_init(tok);
            }
            Phase::Breed => {
                let mut group = std::mem::take(&mut tok.batch);
                group.sort_by(score_cmp);
                tok.group = group;
                tok.k =
                    improved_count(self.params.offspring_per_spot, self.params.improve_fraction);
                if tok.k > 0 && self.improve.steps() > 0 {
                    tok.step = 0;
                    tok.phase = self.improve.first_phase();
                } else {
                    self.include_and_advance(tok);
                }
            }
            Phase::Propose => {
                let cands = std::mem::take(&mut tok.batch);
                accept_spot(self.params, tok.step, &mut tok.group, &cands, &mut tok.rng);
                tok.step += 1;
                if tok.step < self.improve.steps() {
                    tok.phase = Phase::Propose;
                } else {
                    self.end_improve(tok);
                }
            }
            Phase::LamGather => {
                tok.saved = std::mem::take(&mut tok.batch);
                tok.phase = Phase::LamPropose;
            }
            Phase::LamPropose => {
                let cands = std::mem::take(&mut tok.batch);
                for ((dst, &cand), &cur) in tok.group.iter_mut().zip(&cands).zip(&tok.saved) {
                    // The gathered copy carries the freshly evaluated score
                    // of the original; keep whichever is better.
                    *dst = if cand.score < cur.score { cand } else { cur };
                }
                tok.saved.clear();
                tok.grads = None;
                tok.step += 1;
                if tok.step < self.improve.steps() {
                    tok.phase = Phase::LamGather;
                } else {
                    self.end_improve(tok);
                }
            }
            Phase::Retire => unreachable!("handled above"),
        }
        Handled::Recirculate
    }

    /// After the initial population is in place: branch into the M4
    /// single-pass improve, straight retirement (zero generations), or the
    /// generational loop.
    fn after_init(&mut self, tok: &mut SpotToken) {
        if self.params.single_pass {
            let k = improved_count(self.params.population_per_spot, self.params.improve_fraction);
            if k > 0 && self.improve.steps() > 0 {
                tok.group = std::mem::take(&mut tok.pop);
                tok.k = k;
                tok.step = 0;
                tok.phase = self.improve.first_phase();
            } else {
                // Improve is a no-op; the lockstep engine still records a
                // second (unchanged) diversity checkpoint.
                let d = self.div[tok.si][0];
                self.div[tok.si].push(d);
                tok.phase = Phase::Retire;
            }
        } else if self.max_gens == 0 {
            tok.phase = Phase::Retire;
        } else {
            tok.phase = Phase::Breed;
        }
    }

    /// The improve loop for this generation (or the M4 single pass) is
    /// done: fold the group back and decide what happens next.
    fn end_improve(&mut self, tok: &mut SpotToken) {
        if self.params.single_pass {
            let mut pop = std::mem::take(&mut tok.group);
            pop.sort_by(score_cmp);
            self.div[tok.si].push(crate::diversity::translation_diversity(&pop));
            tok.pop = pop;
            tok.phase = Phase::Retire;
        } else {
            self.include_and_advance(tok);
        }
    }

    /// Include the offspring group into the population, record the
    /// generation checkpoint, and either retire the spot (end condition
    /// met) or start the next generation.
    fn include_and_advance(&mut self, tok: &mut SpotToken) {
        include_spot(self.params.population_per_spot, &mut tok.pop, std::mem::take(&mut tok.group));
        tok.gen += 1;
        self.record_gen(tok.si, tok.gen, tok.pop[0].score, &tok.pop);
        let done = match self.params.end {
            EndCondition::Generations(g) => tok.gen >= g,
            EndCondition::Convergence { patience, max } => {
                let now_best = tok.pop[0].score;
                if now_best < tok.best_so_far - 1e-12 {
                    tok.best_so_far = now_best;
                    tok.stale = 0;
                } else {
                    tok.stale += 1;
                }
                tok.stale >= patience || tok.gen >= max
            }
        };
        tok.phase = if done { Phase::Retire } else { Phase::Breed };
    }

    fn record_init(&mut self, si: usize, pop: &[Conformation]) {
        self.hist[si].push(pop[0].score);
        self.div[si].push(crate::diversity::translation_diversity(pop));
        self.evals[si].push(self.evals_cum[si]);
    }

    fn record_gen(&mut self, si: usize, gen: usize, best: f64, pop: &[Conformation]) {
        self.hist[si].push(best);
        self.div[si].push(crate::diversity::translation_diversity(pop));
        self.evals[si].push(self.evals_cum[si]);
        if self.completed.len() <= gen {
            self.completed.resize(gen + 1, 0);
        }
        self.completed[gen] += 1;
        // Emit GenerationDone exactly when the slowest spot finishes a
        // generation — same values the lockstep engine would report.
        while self.next_gd < self.completed.len()
            && self.completed[self.next_gd] == self.spots.len()
        {
            let j = self.next_gd;
            let best = self.hist.iter().map(|h| h[j]).fold(f64::INFINITY, f64::min);
            let evaluations = self.evals.iter().map(|e| e[j]).sum();
            self.trace.emit(Event::GenerationDone {
                generation: (j - 1) as u32,
                best_score: best,
                evaluations,
            });
            self.next_gd += 1;
        }
    }

    /// Reconstruct the lockstep-shaped [`RunResult`] from the per-spot
    /// records (spots may have retired at different generations under
    /// `Convergence`; a retired spot's last checkpoint carries forward).
    fn into_result(
        mut self,
        params: &MetaheuristicParams,
        evaluations: u64,
        batch_trace: Vec<u64>,
    ) -> RunResult {
        let pops: Vec<Vec<Conformation>> = self
            .pops
            .iter_mut()
            // PANICS: only on an abnormal ring teardown (a stage panicked
            // mid-run); the stage join has already surfaced that panic.
            .map(|p| p.take().expect("pipeline retired every spot"))
            .collect();
        let best_per_spot: Vec<Conformation> = pops.iter().map(|pop| pop[0]).collect();
        // PANICS: non-empty by caller contract.
        let best = *best_per_spot.iter().min_by(|a, b| score_cmp(a, b)).expect("non-empty spots");

        let generations_run = if params.single_pass {
            0
        } else {
            self.hist.iter().map(|h| h.len() - 1).max().unwrap_or(0)
        };
        let at = |v: &Vec<f64>, j: usize| v[j.min(v.len() - 1)];
        let best_history: Vec<f64> = (0..=generations_run)
            .map(|j| self.hist.iter().map(|h| at(h, j)).fold(f64::INFINITY, f64::min))
            .collect();
        let div_len = self.div.iter().map(Vec::len).max().unwrap_or(1);
        let diversity_history: Vec<f64> = (0..div_len)
            .map(|j| self.div.iter().map(|d| at(d, j)).sum::<f64>() / self.spots.len() as f64)
            .collect();

        RunResult {
            best,
            best_per_spot,
            evaluations,
            generations_run,
            batch_trace,
            best_history,
            diversity_history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SyntheticEvaluator;
    use crate::params::SelectStrategy;
    use crate::{run, run_seeded};
    use vsmath::Vec3;

    fn spots(n: usize) -> Vec<Spot> {
        (0..n)
            .map(|i| Spot {
                id: i,
                center: Vec3::new(10.0 * i as f64, 0.0, 0.0),
                normal: Vec3::Z,
                radius: 5.0,
                anchor_atom: 0,
            })
            .collect()
    }

    fn evaluator_for(spots: &[Spot]) -> SyntheticEvaluator {
        SyntheticEvaluator::new(spots.iter().map(|s| s.center + Vec3::new(1.0, 1.0, 0.5)).collect())
    }

    fn ga(gens: usize) -> MetaheuristicParams {
        MetaheuristicParams {
            name: "pipe-ga".into(),
            population_per_spot: 16,
            select: SelectStrategy::TruncationBest { fraction: 0.5 },
            offspring_per_spot: 16,
            improve_fraction: 0.0,
            improve: ImproveStrategy::None,
            mutation_prob: 0.3,
            max_shift: 1.0,
            max_angle: 0.4,
            end: EndCondition::Generations(gens),
            single_pass: false,
        }
    }

    fn assert_bit_identical(a: &RunResult, b: &RunResult) {
        assert_eq!(a.best.score.to_bits(), b.best.score.to_bits());
        assert_eq!(a.best.pose, b.best.pose);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.generations_run, b.generations_run);
        assert_eq!(a.best_per_spot.len(), b.best_per_spot.len());
        for (x, y) in a.best_per_spot.iter().zip(&b.best_per_spot) {
            assert_eq!(x.score.to_bits(), y.score.to_bits());
            assert_eq!(x.pose, y.pose);
        }
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.best_history), bits(&b.best_history));
        assert_eq!(bits(&a.diversity_history), bits(&b.diversity_history));
        assert_eq!(
            a.batch_trace.iter().sum::<u64>(),
            b.batch_trace.iter().sum::<u64>(),
            "same total items, possibly different coalescing"
        );
    }

    fn pipelined(params: &MetaheuristicParams, sp: &[Spot], seed: u64, depth: usize) -> RunResult {
        let mut ev = evaluator_for(sp);
        run_pipelined(
            params,
            sp,
            &mut ev,
            seed,
            &[],
            &Trace::disabled(),
            &PipelineConfig::with_depth(depth),
        )
    }

    #[test]
    fn pipelined_matches_lockstep_plain_ga() {
        let sp = spots(5);
        let p = ga(7);
        let mut ev = evaluator_for(&sp);
        let lock = run(&p, &sp, &mut ev, 42);
        for depth in [1, 2, 4] {
            assert_bit_identical(&lock, &pipelined(&p, &sp, 42, depth));
        }
    }

    #[test]
    fn pipelined_matches_lockstep_hill_climb() {
        let sp = spots(3);
        let p = MetaheuristicParams {
            improve_fraction: 0.5,
            improve: ImproveStrategy::HillClimb { steps: 3 },
            ..ga(5)
        };
        let mut ev = evaluator_for(&sp);
        let lock = run(&p, &sp, &mut ev, 7);
        assert_bit_identical(&lock, &pipelined(&p, &sp, 7, 2));
    }

    #[test]
    fn pipelined_matches_lockstep_simulated_annealing() {
        let sp = spots(2);
        let p = MetaheuristicParams {
            improve_fraction: 1.0,
            improve: ImproveStrategy::SimulatedAnnealing { steps: 4, t0: 1.0, cooling: 0.8 },
            ..ga(4)
        };
        let mut ev = evaluator_for(&sp);
        let lock = run(&p, &sp, &mut ev, 19);
        assert_bit_identical(&lock, &pipelined(&p, &sp, 19, 3));
    }

    #[test]
    fn pipelined_matches_lockstep_tournament() {
        let sp = spots(4);
        let p = MetaheuristicParams { select: SelectStrategy::Tournament { k: 3 }, ..ga(6) };
        let mut ev = evaluator_for(&sp);
        let lock = run(&p, &sp, &mut ev, 17);
        assert_bit_identical(&lock, &pipelined(&p, &sp, 17, 2));
    }

    #[test]
    fn pipelined_matches_lockstep_lamarckian() {
        let sp = spots(3);
        let p = MetaheuristicParams {
            improve_fraction: 0.5,
            improve: ImproveStrategy::Lamarckian { steps: 3, step_size: 0.25, angle_step: 0.05 },
            mutation_prob: 0.0,
            ..ga(4)
        };
        let mut ev = evaluator_for(&sp);
        let lock = run(&p, &sp, &mut ev, 51);
        assert_bit_identical(&lock, &pipelined(&p, &sp, 51, 2));
    }

    #[test]
    fn pipelined_matches_lockstep_single_pass() {
        let sp = spots(3);
        let p = MetaheuristicParams {
            population_per_spot: 64,
            improve_fraction: 1.0,
            improve: ImproveStrategy::HillClimb { steps: 6 },
            single_pass: true,
            ..ga(0)
        };
        let mut ev = evaluator_for(&sp);
        let lock = run(&p, &sp, &mut ev, 3);
        assert_bit_identical(&lock, &pipelined(&p, &sp, 3, 2));
    }

    #[test]
    fn pipelined_matches_lockstep_zero_generations() {
        let sp = spots(2);
        let p = ga(0);
        let mut ev = evaluator_for(&sp);
        let lock = run(&p, &sp, &mut ev, 31);
        assert_bit_identical(&lock, &pipelined(&p, &sp, 31, 1));
    }

    #[test]
    fn pipelined_more_spots_than_admitted_tokens() {
        // depth 1 admits 4 tokens; 9 spots forces replacement admissions.
        let sp = spots(9);
        let p = MetaheuristicParams {
            improve_fraction: 0.25,
            improve: ImproveStrategy::HillClimb { steps: 2 },
            ..ga(4)
        };
        let mut ev = evaluator_for(&sp);
        let lock = run(&p, &sp, &mut ev, 23);
        assert_bit_identical(&lock, &pipelined(&p, &sp, 23, 1));
    }

    #[test]
    fn pipelined_seeded_injects_warm_start() {
        let sp = spots(2);
        let mut seed_conf = Conformation::new(
            vsmath::RigidTransform::from_translation(sp[0].center + Vec3::new(1.0, 1.0, 0.5)),
            0,
        );
        seed_conf.score = 0.0;
        let p = ga(0);
        let mut e1 = evaluator_for(&sp);
        let lock = run_seeded(&p, &sp, &mut e1, 31, &[seed_conf]);
        let mut e2 = evaluator_for(&sp);
        let pipe = run_pipelined(
            &p,
            &sp,
            &mut e2,
            31,
            &[seed_conf],
            &Trace::disabled(),
            &PipelineConfig::with_depth(2),
        );
        assert_bit_identical(&lock, &pipe);
        assert_eq!(pipe.best.score, 0.0);
    }

    #[test]
    fn pipelined_batch_trace_is_deterministic() {
        let sp = spots(6);
        let p = MetaheuristicParams {
            improve_fraction: 0.5,
            improve: ImproveStrategy::HillClimb { steps: 2 },
            ..ga(5)
        };
        let r1 = pipelined(&p, &sp, 13, 2);
        let r2 = pipelined(&p, &sp, 13, 2);
        assert_eq!(r1.batch_trace, r2.batch_trace, "flush composition must be reproducible");
        assert_eq!(r1.batch_trace.iter().sum::<u64>(), r1.evaluations);
    }

    #[test]
    fn pipelined_convergence_reaches_similar_best() {
        // Per-spot vs global staleness: trajectories diverge, but both
        // must converge on the synthetic landscape.
        let sp = spots(2);
        let p = MetaheuristicParams {
            end: EndCondition::Convergence { patience: 4, max: 60 },
            mutation_prob: 0.0,
            ..ga(0)
        };
        let mut ev = evaluator_for(&sp);
        let lock = run(&p, &sp, &mut ev, 13);
        let pipe = pipelined(&p, &sp, 13, 2);
        assert!(pipe.generations_run <= 60);
        assert!(
            (pipe.best.score - lock.best.score).abs() < 1.0,
            "pipelined {} vs lockstep {}",
            pipe.best.score,
            lock.best.score
        );
    }

    #[test]
    fn lockstep_exec_is_bit_identical_to_plain_run() {
        let sp = spots(3);
        let p = MetaheuristicParams {
            improve_fraction: 0.5,
            improve: ImproveStrategy::HillClimb { steps: 2 },
            ..ga(6)
        };
        let mut e1 = evaluator_for(&sp);
        let plain = run(&p, &sp, &mut e1, 11);
        let mut e2 = evaluator_for(&sp);
        let staged = run_exec(&p, &sp, &mut e2, 11, &[], &Trace::disabled(), EngineExec::Lockstep);
        assert_bit_identical(&plain, &staged);
        assert_eq!(plain.batch_trace, staged.batch_trace, "lockstep keeps program order");
    }

    #[test]
    fn run_exec_pipelined_matches_lockstep() {
        let sp = spots(4);
        let p = ga(5);
        let mut e1 = evaluator_for(&sp);
        let lock = run_exec(&p, &sp, &mut e1, 5, &[], &Trace::disabled(), EngineExec::Lockstep);
        let mut e2 = evaluator_for(&sp);
        let pipe = run_exec(
            &p,
            &sp,
            &mut e2,
            5,
            &[],
            &Trace::disabled(),
            EngineExec::Pipelined { depth: 2 },
        );
        assert_bit_identical(&lock, &pipe);
    }

    #[test]
    fn pipelined_emits_stage_events() {
        let sp = spots(3);
        let p = ga(4);
        let trace = Trace::new();
        let mut ev = evaluator_for(&sp);
        let r = run_pipelined(&p, &sp, &mut ev, 9, &[], &trace, &PipelineConfig::with_depth(2));
        let data = trace.snapshot();
        let mut stages = std::collections::BTreeSet::new();
        let mut gen_done = 0;
        for s in data.events() {
            match s.event {
                Event::StageDepth { stage, depth } => {
                    assert!(depth >= 1);
                    stages.insert(stage);
                }
                Event::GenerationDone { .. } => gen_done += 1,
                _ => {}
            }
        }
        for expect in ["seed", "breed", "score", "select"] {
            assert!(stages.contains(expect), "missing StageDepth for {expect}: {stages:?}");
        }
        assert_eq!(gen_done, r.generations_run);
    }

    #[test]
    fn exec_mode_parses_from_cli_syntax() {
        assert_eq!("lockstep".parse::<EngineExec>().unwrap(), EngineExec::Lockstep);
        assert_eq!(
            "pipelined".parse::<EngineExec>().unwrap(),
            EngineExec::Pipelined { depth: PipelineConfig::DEFAULT_DEPTH }
        );
        assert_eq!(
            "pipelined:4".parse::<EngineExec>().unwrap(),
            EngineExec::Pipelined { depth: 4 }
        );
        assert!("warp".parse::<EngineExec>().is_err());
        assert!("pipelined:x".parse::<EngineExec>().is_err());
    }
}

/// Exhaustive interleaving checks of the stage-channel protocol (run with
/// `cargo test -p metaheur --features vscheck-model model_`).
#[cfg(all(test, feature = "vscheck-model"))]
mod model_tests {
    use super::Channel;
    use std::sync::Arc;
    use vscheck::{explore, Config};
    use vstrace::Trace;

    /// Producer → bounded channel → consumer: every interleaving delivers
    /// all items in FIFO order despite backpressure at capacity 1.
    #[test]
    fn model_channel_delivers_in_order() {
        let report = explore(Config::with_bound(2), || {
            let ch: Arc<Channel<u32>> = Arc::new(Channel::new(1, "model", Trace::disabled()));
            let producer = {
                let ch = Arc::clone(&ch);
                vscheck::thread::Builder::new()
                    .name("producer".into())
                    .spawn(move || {
                        for i in 0..3 {
                            ch.send(i).expect("consumer closed early");
                        }
                    })
                    .expect("spawn")
            };
            let mut got = Vec::new();
            for _ in 0..3 {
                got.push(ch.recv().expect("producer closed early"));
            }
            producer.join().expect("producer panicked");
            assert_eq!(got, vec![0, 1, 2]);
            ch.close();
            assert!(ch.recv().is_none());
        });
        report.assert_passed();
        assert!(report.complete, "exploration exhausted");
    }

    /// The consumer abandons the stream early (the pipelined engine's
    /// Convergence end retires spots before producers drain): no
    /// deadlock, and every item is accounted for — received, drained
    /// after close, or rejected back to the sender. Nothing is lost.
    #[test]
    fn model_channel_early_exit_loses_nothing() {
        let report = explore(Config::with_bound(2), || {
            let ch: Arc<Channel<u32>> = Arc::new(Channel::new(1, "model", Trace::disabled()));
            let producer = {
                let ch = Arc::clone(&ch);
                vscheck::thread::Builder::new()
                    .name("producer".into())
                    .spawn(move || {
                        let mut rejected = 0u32;
                        for i in 0..4 {
                            if ch.send(i).is_err() {
                                rejected += 1;
                            }
                        }
                        rejected
                    })
                    .expect("spawn")
            };
            let first = ch.recv().expect("at least one item");
            assert_eq!(first, 0, "FIFO: the first send arrives first");
            ch.close(); // early exit: stop consuming
            let mut drained = 0u32;
            while ch.recv().is_some() {
                drained += 1;
            }
            let rejected = producer.join().expect("producer panicked");
            assert_eq!(1 + drained + rejected, 4, "an item vanished in teardown");
        });
        report.assert_passed();
        assert!(report.complete, "exploration exhausted");
    }

    /// A miniature ring — driver → channel a → stage → channel b →
    /// driver — with more tokens admitted than any one channel holds and
    /// tokens recirculating before retirement, then an orderly shutdown:
    /// the close must cascade through the stage without deadlock.
    #[test]
    fn model_ring_shutdown_cascades() {
        let report = explore(Config::with_bound(2), || {
            let a: Arc<Channel<u32>> = Arc::new(Channel::new(1, "a", Trace::disabled()));
            let b: Arc<Channel<u32>> = Arc::new(Channel::new(1, "b", Trace::disabled()));
            let stage = {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                vscheck::thread::Builder::new()
                    .name("stage".into())
                    .spawn(move || {
                        while let Some(t) = a.recv() {
                            if b.send(t).is_err() {
                                break;
                            }
                        }
                        b.close(); // cascade the shutdown downstream
                    })
                    .expect("spawn")
            };
            // Two tokens (encoded tens digit = identity, ones digit =
            // lap), each making two laps around the ring.
            a.send(10).expect("open");
            a.send(20).expect("open");
            let mut done = 0;
            while done < 2 {
                let t = b.recv().expect("stage alive while tokens circulate");
                if t.is_multiple_of(10) {
                    a.send(t + 1).expect("ring open while tokens live");
                } else {
                    done += 1; // retired
                }
            }
            a.close();
            stage.join().expect("stage panicked");
            assert!(b.recv().is_none(), "ring drained after shutdown");
        });
        report.assert_passed();
        assert!(report.complete, "exploration exhausted");
    }
}
