//! Hybrid (memetic) metaheuristics.
//!
//! §1: "additional experiments need to be carried out with different
//! metaheuristics and hybridations of basic metaheuristics to discover the
//! best solution" — this module provides the canonical hybridization:
//! alternating epochs of a population search (Algorithm 1 GA) and a
//! neighborhood search (Tabu), each warm-started from the other's
//! incumbents.

use crate::engine::{run_seeded, RunResult};
use crate::evaluator::BatchEvaluator;
use crate::params::MetaheuristicParams;
use crate::tabu::{run_tabu_from, TabuParams};
use serde::{Deserialize, Serialize};
use vsmol::{conformation::score_cmp, Conformation, Spot};

/// Memetic configuration: a GA phase and a Tabu phase per epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemeticParams {
    pub name: String,
    /// The population phase (its end condition bounds one epoch's GA work).
    pub ga: MetaheuristicParams,
    /// The refinement phase.
    pub tabu: TabuParams,
    /// Alternation count.
    pub epochs: usize,
}

impl MemeticParams {
    pub fn validate(&self) -> Result<(), String> {
        if self.epochs == 0 {
            return Err("epochs must be > 0".into());
        }
        self.ga.validate()?;
        self.tabu.validate()
    }

    /// Exact scoring evaluations per spot.
    pub fn evals_per_spot(&self) -> u64 {
        self.epochs as u64 * (self.ga.evals_per_spot() + self.tabu.evals_per_spot())
    }
}

/// Run the memetic hybrid: GA explores, Tabu refines the per-spot bests,
/// the refined incumbents seed the next GA epoch.
pub fn run_memetic<E: BatchEvaluator>(
    params: &MemeticParams,
    spots: &[Spot],
    evaluator: &mut E,
    seed: u64,
) -> RunResult {
    // PANICS: invalid parameters are a caller programming error; fail fast.
    params.validate().expect("invalid memetic parameters");
    assert!(!spots.is_empty(), "need at least one spot");

    let mut incumbents: Vec<Conformation> = Vec::new();
    let mut evaluations = 0;
    let mut batch_trace = Vec::new();
    let mut best_history = Vec::new();
    let mut generations = 0;

    for epoch in 0..params.epochs {
        let epoch_seed = seed.wrapping_add(epoch as u64 * 0x9E37_79B9);
        let ga = run_seeded(&params.ga, spots, evaluator, epoch_seed, &incumbents);
        evaluations += ga.evaluations;
        batch_trace.extend(ga.batch_trace);
        best_history.extend(ga.best_history.iter().copied());
        generations += ga.generations_run;

        let tabu = run_tabu_from(
            &params.tabu,
            spots,
            evaluator,
            epoch_seed ^ 0xABCD_EF01,
            &ga.best_per_spot,
        );
        evaluations += tabu.evaluations;
        batch_trace.extend(tabu.batch_trace);
        best_history.extend(tabu.best_history.iter().copied());
        generations += tabu.generations_run;

        // Keep the better incumbent per spot.
        incumbents = ga
            .best_per_spot
            .iter()
            .zip(&tabu.best_per_spot)
            .map(|(g, t)| if t.score < g.score { *t } else { *g })
            .collect();
    }

    // Global best tracker over the concatenated history (phases restart
    // from scratch histories, so enforce the running minimum).
    let mut running = f64::INFINITY;
    for h in best_history.iter_mut() {
        running = running.min(*h);
        *h = running;
    }

    // PANICS: non-empty by caller contract.
    let best = *incumbents.iter().min_by(|a, b| score_cmp(a, b)).expect("non-empty");
    RunResult {
        best,
        best_per_spot: incumbents,
        evaluations,
        generations_run: generations,
        batch_trace,
        best_history,
        diversity_history: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SyntheticEvaluator;
    use crate::suite::m1;
    use vsmath::Vec3;

    fn spots(n: usize) -> Vec<Spot> {
        (0..n)
            .map(|i| Spot {
                id: i,
                center: Vec3::new(14.0 * i as f64, 0.0, 0.0),
                normal: Vec3::Z,
                radius: 5.0,
                anchor_atom: 0,
            })
            .collect()
    }

    fn ev(sp: &[Spot]) -> SyntheticEvaluator {
        SyntheticEvaluator::new(sp.iter().map(|s| s.center + Vec3::new(0.8, 0.8, 0.0)).collect())
    }

    fn quick() -> MemeticParams {
        MemeticParams {
            name: "GA+Tabu".into(),
            ga: m1(0.1),
            tabu: TabuParams { iterations: 10, neighbors: 8, ..Default::default() },
            epochs: 2,
        }
    }

    #[test]
    fn memetic_eval_accounting() {
        let sp = spots(2);
        let p = quick();
        let mut e = ev(&sp);
        let r = run_memetic(&p, &sp, &mut e, 3);
        assert_eq!(r.evaluations, p.evals_per_spot() * 2);
        assert_eq!(e.evaluations, r.evaluations);
        assert_eq!(r.batch_trace.iter().sum::<u64>(), r.evaluations);
    }

    #[test]
    fn memetic_history_monotone() {
        let sp = spots(2);
        let mut e = ev(&sp);
        let r = run_memetic(&quick(), &sp, &mut e, 5);
        for w in r.best_history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn memetic_converges_at_equal_budget() {
        let sp = spots(3);
        let p = quick();
        let mut e1 = ev(&sp);
        let hybrid = run_memetic(&p, &sp, &mut e1, 7);

        let tabu_alone = TabuParams {
            iterations: (p.evals_per_spot() as usize - 1) / 8,
            neighbors: 8,
            ..Default::default()
        };
        let mut e2 = ev(&sp);
        let plain_tabu = crate::tabu::run_tabu(&tabu_alone, &sp, &mut e2, 7);
        let ratio = plain_tabu.evaluations as f64 / hybrid.evaluations as f64;
        assert!((0.9..1.1).contains(&ratio), "budget mismatch {ratio}");
        // On a smooth single-basin landscape all three families converge;
        // assert the hybrid lands in the same converged regime (sub-unit
        // score from an initial ~25) rather than a seed-lottery ordering.
        assert!(hybrid.best.score < 1.0, "hybrid failed to converge: {}", hybrid.best.score);
        assert!(plain_tabu.best.score < 1.0);
    }

    #[test]
    fn memetic_deterministic() {
        let sp = spots(2);
        let mut e1 = ev(&sp);
        let mut e2 = ev(&sp);
        let a = run_memetic(&quick(), &sp, &mut e1, 11);
        let b = run_memetic(&quick(), &sp, &mut e2, 11);
        assert_eq!(a.best.score, b.best.score);
    }

    #[test]
    fn warm_started_tabu_keeps_good_incumbent() {
        // A tabu phase started from a good pose can't lose it: best ≤ start.
        let sp = spots(1);
        let mut e = ev(&sp);
        let mut start = Conformation::new(
            vsmath::RigidTransform::from_translation(sp[0].center + Vec3::new(0.8, 0.8, 0.0)),
            0,
        );
        start.score = f64::NAN; // will be re-scored by the init batch
        let r = run_tabu_from(
            &TabuParams { iterations: 5, neighbors: 4, ..Default::default() },
            &sp,
            &mut e,
            13,
            &[start],
        );
        assert!(r.best.score < 0.1, "warm start lost: {}", r.best.score);
    }

    #[test]
    #[should_panic]
    fn zero_epochs_panics() {
        let sp = spots(1);
        let mut e = ev(&sp);
        run_memetic(&MemeticParams { epochs: 0, ..quick() }, &sp, &mut e, 1);
    }
}
