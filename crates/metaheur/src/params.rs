//! Metaheuristic configuration — the template functions of Algorithm 1 as
//! data.

use serde::{Deserialize, Serialize};

/// `Select(S, Ssel)` — how parents are chosen from the population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SelectStrategy {
    /// Keep the best `fraction` of the population as the parent pool
    /// ("Elements are selected for combination from the best ones", §4.2.1).
    TruncationBest { fraction: f64 },
    /// k-way tournament selection (extension beyond the paper's suite).
    Tournament { k: usize },
}

/// `Improve(Scom)` — the local-search operator applied to new elements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ImproveStrategy {
    /// No improvement (M1).
    None,
    /// First-improvement hill climbing: `steps` perturbations, each kept
    /// only if it scores better ("local search in the neighborhood of each
    /// element", §4.2.1).
    HillClimb { steps: usize },
    /// Simulated annealing walk (extension): worse moves accepted with
    /// probability `exp(-Δ/T)`, `T` cooled geometrically per step.
    SimulatedAnnealing { steps: usize, t0: f64, cooling: f64 },
    /// Lamarckian gradient descent (extension; AutoDock's approach, the
    /// paper's ref [24]): each step moves `step_size` Å along the net force
    /// and `angle_step` radians about the net torque, keeping improvements.
    /// Falls back to hill climbing on evaluators without gradient support.
    Lamarckian { steps: usize, step_size: f64, angle_step: f64 },
}

impl ImproveStrategy {
    /// Scoring evaluations one improved element costs. Lamarckian steps
    /// cost two each: the gradient evaluation plus the trial-point score.
    pub fn evals_per_element(&self) -> usize {
        match *self {
            ImproveStrategy::None => 0,
            ImproveStrategy::HillClimb { steps } => steps,
            ImproveStrategy::SimulatedAnnealing { steps, .. } => steps,
            ImproveStrategy::Lamarckian { steps, .. } => 2 * steps,
        }
    }
}

/// `End(S)` — when the metaheuristic stops.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EndCondition {
    /// Fixed number of generations.
    Generations(usize),
    /// Stop when the global best has not improved for `patience`
    /// consecutive generations, with a hard cap of `max` generations.
    Convergence { patience: usize, max: usize },
}

impl EndCondition {
    /// Upper bound on generations.
    pub fn max_generations(&self) -> usize {
        match *self {
            EndCondition::Generations(g) => g,
            EndCondition::Convergence { max, .. } => max,
        }
    }
}

/// A fully parameterized metaheuristic: one instantiation of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetaheuristicParams {
    /// Display name ("M1" ... "M4" for the paper suite).
    pub name: String,
    /// Individuals per spot in the reference set `S` (Table 4 column 2).
    pub population_per_spot: usize,
    /// Fraction of `S` eligible as parents (Table 4 column 3).
    pub select: SelectStrategy,
    /// New elements generated per spot per generation by `Combine`.
    pub offspring_per_spot: usize,
    /// Fraction of new elements passed to `Improve` (Table 4 column 4).
    pub improve_fraction: f64,
    /// The local-search operator.
    pub improve: ImproveStrategy,
    /// Mutation probability applied to each offspring after crossover.
    pub mutation_prob: f64,
    /// Local move sizes: translation (Å) and rotation (radians).
    pub max_shift: f64,
    pub max_angle: f64,
    /// Termination.
    pub end: EndCondition,
    /// Neighborhood mode (M4): skip Select/Combine/Include entirely — one
    /// pass of Improve over a large initial set ("M4 applies only one
    /// step, and so there is no selection of elements after improving").
    pub single_pass: bool,
}

impl MetaheuristicParams {
    /// Exact number of scoring evaluations this configuration performs per
    /// spot (the engine is deterministic in its evaluation count).
    pub fn evals_per_spot(&self) -> u64 {
        let init = self.population_per_spot as u64;
        if self.single_pass {
            let improved = improved_count(self.population_per_spot, self.improve_fraction) as u64;
            return init + improved * self.improve.evals_per_element() as u64;
        }
        let per_gen = self.offspring_per_spot as u64
            + improved_count(self.offspring_per_spot, self.improve_fraction) as u64
                * self.improve.evals_per_element() as u64;
        init + self.end.max_generations() as u64 * per_gen
    }

    /// Sanity-check invariants; call after hand-building configurations.
    pub fn validate(&self) -> Result<(), String> {
        if self.population_per_spot == 0 {
            return Err("population_per_spot must be > 0".into());
        }
        if !(0.0..=1.0).contains(&self.improve_fraction) {
            return Err("improve_fraction must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.mutation_prob) {
            return Err("mutation_prob must be in [0,1]".into());
        }
        if let SelectStrategy::TruncationBest { fraction } = self.select {
            if !(0.0..=1.0).contains(&fraction) || fraction == 0.0 {
                return Err("selection fraction must be in (0,1]".into());
            }
        }
        if let SelectStrategy::Tournament { k } = self.select {
            if k == 0 {
                return Err("tournament k must be > 0".into());
            }
        }
        if !self.single_pass && self.offspring_per_spot == 0 {
            return Err("offspring_per_spot must be > 0 for population metaheuristics".into());
        }
        if self.max_shift < 0.0 || self.max_angle < 0.0 {
            return Err("move sizes must be non-negative".into());
        }
        Ok(())
    }
}

/// How many of `n` elements are improved at `fraction` (rounded, but at
/// least 1 when the fraction is nonzero — matching "20% of elements" in
/// Table 4 staying meaningful for small populations).
pub fn improved_count(n: usize, fraction: f64) -> usize {
    if fraction <= 0.0 || n == 0 {
        0
    } else {
        (((n as f64) * fraction).round() as usize).clamp(1, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> MetaheuristicParams {
        MetaheuristicParams {
            name: "test".into(),
            population_per_spot: 64,
            select: SelectStrategy::TruncationBest { fraction: 1.0 },
            offspring_per_spot: 64,
            improve_fraction: 0.0,
            improve: ImproveStrategy::None,
            mutation_prob: 0.1,
            max_shift: 1.0,
            max_angle: 0.3,
            end: EndCondition::Generations(10),
            single_pass: false,
        }
    }

    #[test]
    fn evals_counting_no_improvement() {
        // init 64 + 10 gens × 64 offspring.
        assert_eq!(base().evals_per_spot(), 64 + 10 * 64);
    }

    #[test]
    fn evals_counting_with_hill_climb() {
        let p = MetaheuristicParams {
            improve_fraction: 1.0,
            improve: ImproveStrategy::HillClimb { steps: 2 },
            ..base()
        };
        // init 64 + 10 × (64 + 64×2).
        assert_eq!(p.evals_per_spot(), 64 + 10 * (64 + 128));
    }

    #[test]
    fn evals_counting_partial_improvement() {
        let p = MetaheuristicParams {
            improve_fraction: 0.2,
            improve: ImproveStrategy::HillClimb { steps: 3 },
            ..base()
        };
        // 20% of 64 ≈ 13 improved.
        assert_eq!(p.evals_per_spot(), 64 + 10 * (64 + 13 * 3));
    }

    #[test]
    fn evals_counting_single_pass() {
        let p = MetaheuristicParams {
            population_per_spot: 1024,
            improve_fraction: 1.0,
            improve: ImproveStrategy::HillClimb { steps: 100 },
            single_pass: true,
            ..base()
        };
        assert_eq!(p.evals_per_spot(), 1024 + 1024 * 100);
    }

    #[test]
    fn improved_count_rounding() {
        assert_eq!(improved_count(64, 0.2), 13);
        assert_eq!(improved_count(64, 1.0), 64);
        assert_eq!(improved_count(64, 0.0), 0);
        assert_eq!(improved_count(0, 0.5), 0);
        // Nonzero fraction on a tiny set still improves one element.
        assert_eq!(improved_count(3, 0.01), 1);
    }

    #[test]
    fn validation_accepts_base() {
        assert!(base().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(MetaheuristicParams { population_per_spot: 0, ..base() }.validate().is_err());
        assert!(MetaheuristicParams { improve_fraction: 1.5, ..base() }.validate().is_err());
        assert!(MetaheuristicParams { mutation_prob: -0.1, ..base() }.validate().is_err());
        assert!(MetaheuristicParams {
            select: SelectStrategy::TruncationBest { fraction: 0.0 },
            ..base()
        }
        .validate()
        .is_err());
        assert!(MetaheuristicParams { select: SelectStrategy::Tournament { k: 0 }, ..base() }
            .validate()
            .is_err());
        assert!(MetaheuristicParams { offspring_per_spot: 0, ..base() }.validate().is_err());
        assert!(MetaheuristicParams { max_shift: -1.0, ..base() }.validate().is_err());
    }

    #[test]
    fn single_pass_allows_zero_offspring() {
        let p = MetaheuristicParams { single_pass: true, offspring_per_spot: 0, ..base() };
        assert!(p.validate().is_ok());
    }

    #[test]
    fn end_condition_max_generations() {
        assert_eq!(EndCondition::Generations(7).max_generations(), 7);
        assert_eq!(EndCondition::Convergence { patience: 3, max: 50 }.max_generations(), 50);
    }

    #[test]
    fn improve_evals_per_element() {
        assert_eq!(ImproveStrategy::None.evals_per_element(), 0);
        assert_eq!(ImproveStrategy::HillClimb { steps: 5 }.evals_per_element(), 5);
        assert_eq!(
            ImproveStrategy::SimulatedAnnealing { steps: 9, t0: 1.0, cooling: 0.9 }
                .evals_per_element(),
            9
        );
    }
}
